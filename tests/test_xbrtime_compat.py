"""Tests for the C-API compatibility facade (repro.xbrtime)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import xbrtime as xr
from repro.runtime import Machine

from .conftest import small_config


class TestSurface:
    def test_core_calls_exist(self):
        for name in ("xbrtime_init", "xbrtime_close", "xbrtime_mype",
                     "xbrtime_num_pes", "xbrtime_malloc", "xbrtime_free",
                     "xbrtime_barrier"):
            assert callable(getattr(xr, name))

    def test_paper_typed_calls_exist(self):
        """The exact names the paper prints in sections 3.3-4.6."""
        for name in (
            "xbrtime_int_put", "xbrtime_int_get",
            "xbrtime_double_broadcast", "xbrtime_long_reduce_sum",
            "xbrtime_uint64_reduce_max", "xbrtime_char_scatter",
            "xbrtime_ptrdiff_gather", "xbrtime_longdouble_put",
        ):
            assert callable(getattr(xr, name)), name

    def test_full_surface_size(self):
        # 24 types x (4 p2p + bcast + scatter + gather) + reductions
        # (+ bitwise for integral) + AMOs for 64-bit integral types.
        assert len(xr.__all__) > 300

    def test_no_bitwise_float_reductions(self):
        assert not hasattr(xr, "xbrtime_double_reduce_xor")
        assert hasattr(xr, "xbrtime_uint_reduce_xor")


class TestEndToEnd:
    def test_paper_style_program(self):
        """A program written with the C names, end to end."""
        def main(ctx):
            xr.xbrtime_init(ctx)
            me = xr.xbrtime_mype(ctx)
            n = xr.xbrtime_num_pes(ctx)
            buf = xr.xbrtime_malloc(ctx, 8 * n)
            src = ctx.private_malloc(8)
            ctx.view(src, "long", 1)[0] = me * 3
            for pe in range(n):
                xr.xbrtime_long_put(ctx, buf + 8 * me, src, 1, 1, pe)
            xr.xbrtime_barrier(ctx)
            got = list(ctx.view(buf, "long", n))

            out = ctx.private_malloc(8 * n)
            xr.xbrtime_long_reduce_sum(ctx, out, buf, n, 1, 0)
            total = (int(ctx.view(out, "long", 1)[0] + 0)
                     if me == 0 else None)
            red = list(ctx.view(out, "long", n)) if me == 0 else None
            xr.xbrtime_free(ctx, buf)
            xr.xbrtime_close(ctx)
            return got, red

        machine = Machine(small_config(4))
        results = machine.run(main)
        assert results[1][0] == [0, 3, 6, 9]
        # reduce over n copies of the same symmetric buffer: x4 each
        assert results[0][1] == [0, 12, 24, 36]

    def test_broadcast_and_gather_names(self):
        def main(ctx):
            xr.xbrtime_init(ctx)
            me, n = ctx.my_pe(), ctx.num_pes()
            b = xr.xbrtime_malloc(ctx, 8 * 2)
            if me == 1:
                ctx.view(b, "long", 2)[:] = [8, 9]
            xr.xbrtime_double_broadcast(ctx, b, b, 0, 1, 1)  # degenerate
            xr.xbrtime_long_broadcast(ctx, b, b, 2, 1, 1)
            src = xr.xbrtime_malloc(ctx, 8)
            ctx.view(src, "long", 1)[0] = me
            dst = ctx.private_malloc(8 * n)
            xr.xbrtime_long_gather(ctx, dst, src, [1] * n,
                                   list(range(n)), n, 0)
            got = (list(ctx.view(dst, "long", n)) if me == 0 else None)
            bval = list(ctx.view(b, "long", 2))
            xr.xbrtime_close(ctx)
            return bval, got

        machine = Machine(small_config(3))
        results = machine.run(main)
        assert all(r[0] == [8, 9] for r in results)
        assert results[0][1] == [0, 1, 2]
