"""Multi-tenant serving on the real worker pool (``stress`` marker).

The tentpole acceptance properties, against one ``ServePool`` process
lifetime on the mp backend:

* **throughput** — a 4-PE pool sustains 200+ mixed collective jobs
  across 8 tenants;
* **crash isolation** — a seeded tenant crash (Python raise or hard
  ``os._exit``) fails exactly its own job; every other job's digest is
  byte-identical to a fault-free run of the same workload;
* **admission control** — saturation triggers backpressure, starvation
  triggers bounded-wait rejection, and both paths leave the pool
  serving;
* **leak census** — no worker process and no ``/dev/shm`` segment
  outlives the pool, and mid-run slot rebuilds reuse the existing
  segments instead of re-creating them.
"""

from __future__ import annotations

import dataclasses
import time

import pytest

from repro.errors import QueueFullError
from repro.serve import COLLECTIVES, JobSpec, ServePool

from ..backends.conftest import xbgas_children, xbgas_segments
from ..conftest import small_config

pytestmark = pytest.mark.stress


def _pool(**kw) -> ServePool:
    kw.setdefault("config", small_config(4))
    return ServePool(4, backend="mp", **kw)


def _workload(n_jobs: int, tenants: int, fault_every: int) -> list[JobSpec]:
    """Deterministic mixed-collective workload; every ``fault_every``-th
    job carries a seeded crash (alternating raise / hard exit)."""
    specs = []
    for i in range(n_jobs):
        coll = COLLECTIVES[i % len(COLLECTIVES)]
        n_pes = 4 if i % 9 == 0 else (i % 2) + 1 if coll == "barrier" else 2
        fault = None
        if fault_every and i % fault_every == fault_every - 1:
            fault = "exit" if (i // fault_every) % 2 else "raise"
        specs.append(JobSpec(
            tenant=f"tenant{i % tenants}", collective=coll, n_pes=n_pes,
            nelems=16 + (i % 5) * 24, dtype="double" if i % 3 else "long",
            seed=i, fault=fault, fault_rank=i % n_pes,
        ))
    return specs


def _run_workload(specs: list[JobSpec], **pool_kw) -> dict[int, object]:
    """One pool lifetime; returns results keyed by submission index."""
    with _pool(**pool_kw) as pool:
        for spec in specs:
            while True:
                try:
                    pool.submit(spec)
                    break
                except QueueFullError:
                    pool.pump(0.02)
        results = pool.drain(timeout_s=300.0)
        snap = pool.snapshot()
    by_id = {r.job_id: r for r in results}
    assert sorted(by_id) == list(range(len(specs))), \
        "exactly one terminal result per submitted job"
    return {"results": by_id, "snapshot": snap}


@pytest.mark.timeout(300)
def test_acceptance_200_jobs_8_tenants_crash_isolated():
    before_segs = xbgas_segments()
    before_pids = {p.pid for p in xbgas_children()}
    specs = _workload(n_jobs=210, tenants=8, fault_every=35)
    faulted_idx = {i for i, s in enumerate(specs) if s.fault}
    assert len(specs) - len(faulted_idx) >= 200

    run = _run_workload(specs)

    # Exactly the seeded-fault jobs failed; nothing spilled over.
    failures = {i for i, r in run["results"].items() if not r.ok}
    assert failures == faulted_idx, (
        f"cross-tenant failure spill: unexpected {sorted(failures - faulted_idx)}, "
        f"missing {sorted(faulted_idx - failures)}"
    )
    snap = run["snapshot"]
    assert len(snap["tenants"]) == 8
    assert snap["totals"]["completed"] >= 200
    assert snap["totals"]["failed"] == len(faulted_idx)
    for acct in snap["tenants"].values():
        assert acct["pe_seconds"] > 0.0

    # Differential: the same workload with the faults stripped must give
    # byte-identical digests on every non-faulted job.
    clean = _run_workload([dataclasses.replace(s, fault=None)
                           for s in specs])
    for i in sorted(set(range(len(specs))) - faulted_idx):
        got, want = run["results"][i], clean["results"][i]
        assert got.digest == want.digest, (
            f"job {i} ({specs[i].tenant}, {specs[i].collective}): digest "
            f"diverged from the fault-free run"
        )

    # Census: both pool lifetimes cleaned up completely.
    assert [p for p in xbgas_children() if p.pid not in before_pids] == []
    assert xbgas_segments() == before_segs


@pytest.mark.timeout(300)
def test_admission_saturation_backpressure():
    with _pool(max_queue_depth=4) as pool:
        # A full-width job pins every PE, so followers can only queue.
        pool.submit(JobSpec(tenant="pinner", collective="alltoall",
                            n_pes=4, nelems=4096, seed=1))
        with pytest.raises(QueueFullError):
            for i in range(pool.scheduler.max_queue_depth + 1):
                pool.submit(JobSpec(tenant=f"t{i}", collective="barrier",
                                    n_pes=2, seed=i))
        assert pool.scheduler.depth == 4, \
            "the rejected submit must not occupy a queue slot"
        results = pool.drain(timeout_s=120.0)
    assert all(r.ok for r in results)
    assert len(results) == 5  # pinner + the four admitted followers


@pytest.mark.timeout(300)
def test_bounded_wait_rejects_starved_job_and_pool_recovers():
    with _pool(max_wait_s=0.05) as pool:
        pool.submit(JobSpec(tenant="pinner", collective="alltoall",
                            n_pes=4, nelems=4096, seed=2))
        victim = pool.submit(JobSpec(tenant="starved", collective="barrier",
                                     n_pes=4, seed=3))
        time.sleep(0.12)  # exceed the wait bound before the next pump
        results = pool.drain(timeout_s=120.0)
        by_id = {r.job_id: r for r in results}
        assert by_id[victim].rejected
        assert "AdmissionTimeoutError" in by_id[victim].error
        assert by_id[victim].ranks == (), "a rejected job never held PEs"
        # The pool still serves after the rejection.
        pool.submit(JobSpec(tenant="after", collective="allreduce",
                            n_pes=2, nelems=32, seed=4))
        [late] = pool.drain(timeout_s=120.0)
        assert late.ok
    snap = pool.snapshot()
    assert snap["tenants"]["starved"]["rejected"] == 1
    assert snap["tenants"]["starved"]["pe_seconds"] == 0.0


@pytest.mark.timeout(300)
def test_hard_crash_rebuild_reuses_segments_midrun():
    """A tenant's dead worker is rebuilt in place: same segment names,
    and a concurrent tenant's job matches its fault-free digest."""
    good = JobSpec(tenant="good", collective="scan", n_pes=2, nelems=64,
                   seed=9)
    with ServePool(2, backend="sim",
                   config=small_config(2)) as ref_pool:
        ref_pool.submit(good)
        [ref] = ref_pool.drain(timeout_s=60.0)

    with _pool() as pool:
        segs_live = xbgas_segments()
        pool.submit(good)
        pool.submit(JobSpec(tenant="evil", collective="allreduce", n_pes=2,
                            nelems=64, seed=10, fault="exit", fault_rank=1))
        results = pool.drain(timeout_s=120.0)
        assert xbgas_segments() == segs_live, \
            "slot rebuild must reuse segments, not unlink/recreate"
        outcomes = {r.tenant: r for r in results}
        assert outcomes["good"].ok
        assert outcomes["good"].digest == ref.digest
        assert not outcomes["evil"].ok
        assert "died" in outcomes["evil"].error
        # The rebuilt pool keeps serving both tenants.
        pool.submit(dataclasses.replace(good, seed=11))
        [again] = pool.drain(timeout_s=120.0)
        assert again.ok


@pytest.mark.timeout(300)
def test_batched_dispatch_on_workers_matches_solo_digests():
    """Opportunistic batching on the real worker pool: same-shape jobs
    from different tenants fuse into one superstep per team, and every
    digest matches its solo (batch_window=1) run."""
    specs = [JobSpec(tenant=f"tenant{i % 3}", collective="allreduce",
                     n_pes=4, nelems=24, dtype="long", seed=i)
             for i in range(6)]

    def digests(batch_window: int) -> dict[int, str]:
        with _pool(batch_window=batch_window) as pool:
            ids = {pool.submit(spec): spec.seed for spec in specs}
            results = pool.drain(timeout_s=300.0)
        assert all(r.ok for r in results), [r.error for r in results
                                            if not r.ok]
        return {ids[r.job_id]: r.digest for r in results}

    solo = digests(1)
    batched = digests(6)
    assert batched == solo
    assert len(set(solo.values())) == len(specs)
