"""Unit tests for serving admission control — no clock, no workers.

The scheduler is driven with explicit ``now`` timestamps, so every
policy decision (backpressure, bounded wait, conservative backfill,
lowest-rank carving) is checked deterministically here; the pool tests
only have to cover the glue.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends.mp import TIMEOUT_BYTES_PER_S, scaled_timeout
from repro.errors import CollectiveArgumentError, QueueFullError
from repro.serve import JobSpec, TeamScheduler, percentile


def _spec(n_pes: int = 2, tenant: str = "t") -> JobSpec:
    return JobSpec(tenant=tenant, n_pes=n_pes)


# -- carving ----------------------------------------------------------------


def test_carves_lowest_free_ranks():
    sched = TeamScheduler(4)
    sched.offer(0, _spec(2), now=0.0)
    [(qj, ranks)] = sched.dispatchable(now=0.0)
    assert qj.job_id == 0 and ranks == (0, 1)
    sched.offer(1, _spec(2), now=0.0)
    [(qj, ranks)] = sched.dispatchable(now=0.0)
    assert qj.job_id == 1 and ranks == (2, 3)
    assert sched.free_pes == 0


def test_release_returns_ranks_and_packs_low():
    sched = TeamScheduler(4)
    sched.offer(0, _spec(2), now=0.0)
    sched.offer(1, _spec(2), now=0.0)
    dispatched = dict((qj.job_id, ranks)
                      for qj, ranks in sched.dispatchable(now=0.0))
    sched.release(dispatched[0])  # (0, 1) free again
    sched.offer(2, _spec(1), now=1.0)
    [(qj, ranks)] = sched.dispatchable(now=1.0)
    assert ranks == (0,), "freed low ranks must be re-used first"
    assert sched.free_pes == 1


def test_double_release_raises():
    sched = TeamScheduler(2)
    sched.offer(0, _spec(2), now=0.0)
    [(_, ranks)] = sched.dispatchable(now=0.0)
    sched.release(ranks)
    with pytest.raises(ValueError, match="released twice"):
        sched.release(ranks)


# -- admission policy -------------------------------------------------------


def test_fifo_order_with_conservative_backfill():
    """A stuck wide head must not block a narrow job that fits now."""
    sched = TeamScheduler(4)
    sched.offer(0, _spec(2), now=0.0)
    [(_, busy)] = sched.dispatchable(now=0.0)  # 2 PEs left
    sched.offer(1, _spec(4, "wide"), now=0.0)   # cannot fit yet
    sched.offer(2, _spec(2, "narrow"), now=0.0)
    started = sched.dispatchable(now=0.0)
    assert [qj.job_id for qj, _ in started] == [2], "backfill skips the head"
    assert sched.depth == 1, "the wide job keeps its queue position"
    # Once everything drains, the wide head goes first.
    sched.release(busy)
    sched.release(started[0][1])
    assert [qj.job_id for qj, _ in sched.dispatchable(now=0.0)] == [1]


def test_backpressure_at_depth_limit():
    sched = TeamScheduler(1, max_queue_depth=2)
    sched.offer(0, _spec(1), now=0.0)
    sched.dispatchable(now=0.0)  # job 0 occupies the only PE
    sched.offer(1, _spec(1), now=0.0)
    sched.offer(2, _spec(1), now=0.0)
    with pytest.raises(QueueFullError):
        sched.offer(3, _spec(1), now=0.0)
    assert sched.depth == 2, "a rejected offer must not consume a slot"


def test_bounded_wait_expires_old_jobs_only():
    sched = TeamScheduler(1, max_wait_s=5.0)
    sched.offer(0, _spec(1), now=0.0)
    sched.dispatchable(now=0.0)
    sched.offer(1, _spec(1, "old"), now=1.0)
    sched.offer(2, _spec(1, "young"), now=4.0)
    assert sched.expired(now=5.0) == []  # 4.0s wait: still within bounds
    expired = sched.expired(now=6.5)
    assert [qj.job_id for qj in expired] == [1]
    assert sched.depth == 1, "the young job stays queued"


def test_wider_than_pool_rejected_up_front():
    sched = TeamScheduler(2)
    with pytest.raises(ValueError, match="pool has only"):
        sched.offer(0, _spec(4), now=0.0)
    assert sched.depth == 0


def test_idle_tracks_queue_and_free_set():
    sched = TeamScheduler(2)
    assert sched.idle
    sched.offer(0, _spec(2), now=0.0)
    assert not sched.idle
    [(_, ranks)] = sched.dispatchable(now=0.0)
    assert not sched.idle
    sched.release(ranks)
    assert sched.idle


def test_constructor_validation():
    with pytest.raises(ValueError):
        TeamScheduler(0)
    with pytest.raises(ValueError):
        TeamScheduler(2, max_queue_depth=0)
    with pytest.raises(ValueError):
        TeamScheduler(2, max_wait_s=0.0)


# -- opportunistic batching -------------------------------------------------


def _batchable(job_id: int, tenant: str = "t", **kw) -> JobSpec:
    base = dict(tenant=tenant, collective="allreduce", n_pes=2, nelems=8,
                dtype="long", seed=job_id)
    base.update(kw)
    return JobSpec(**base)


def test_dispatch_batches_absorbs_same_shape_jobs():
    """Same-shape jobs from *different tenants* share one team."""
    sched = TeamScheduler(2)
    for i in range(3):
        sched.offer(i, _batchable(i, tenant=f"t{i}"), now=0.0)
    [(batch, ranks)] = sched.dispatch_batches(now=0.0, max_batch=4)
    assert [qj.job_id for qj in batch] == [0, 1, 2]
    assert ranks == (0, 1)
    assert sched.depth == 0
    assert sched.free_pes == 0, "one team serves the whole batch"


def test_dispatch_batches_respects_max_batch():
    sched = TeamScheduler(4)
    for i in range(3):
        sched.offer(i, _batchable(i), now=0.0)
    out = sched.dispatch_batches(now=0.0, max_batch=2)
    assert [[qj.job_id for qj in b] for b, _ in out] == [[0, 1], [2]]
    assert [ranks for _, ranks in out] == [(0, 1), (2, 3)]


def test_dispatch_batches_skips_mismatched_shapes():
    sched = TeamScheduler(2)
    sched.offer(0, _batchable(0), now=0.0)
    sched.offer(1, _batchable(1, nelems=16), now=0.0)   # different key
    sched.offer(2, _batchable(2), now=0.0)              # matches the head
    [(batch, _)] = sched.dispatch_batches(now=0.0, max_batch=4)
    assert [qj.job_id for qj in batch] == [0, 2]
    assert sched.depth == 1, "the mismatched job keeps its queue slot"


def test_fault_jobs_never_batch():
    sched = TeamScheduler(2)
    sched.offer(0, _batchable(0, fault="raise", fault_rank=0,
                              tenant="evil"), now=0.0)
    sched.offer(1, _batchable(1, fault="raise", fault_rank=0,
                              tenant="evil"), now=0.0)
    assert _batchable(9, fault="raise", fault_rank=0).batch_key is None
    [(batch, ranks)] = sched.dispatch_batches(now=0.0, max_batch=4)
    assert [qj.job_id for qj in batch] == [0]
    sched.release(ranks)
    [(batch2, _)] = sched.dispatch_batches(now=0.0, max_batch=4)
    assert [qj.job_id for qj in batch2] == [1]


def test_dispatchable_is_batch_size_one():
    sched = TeamScheduler(2)
    for i in range(3):
        sched.offer(i, _batchable(i), now=0.0)
    [(qj, ranks)] = sched.dispatchable(now=0.0)
    assert qj.job_id == 0 and ranks == (0, 1)
    assert sched.depth == 2, "plain dispatch never absorbs"


def test_batch_key_distinguishes_roots_and_dtypes():
    a = _batchable(0, collective="broadcast", root=1)
    assert a.batch_key == _batchable(1, collective="broadcast",
                                     root=1).batch_key
    assert a.batch_key != _batchable(2, collective="broadcast",
                                     root=0).batch_key
    assert _batchable(3).batch_key != _batchable(4, dtype="double").batch_key
    assert _batchable(5).batch_key != _batchable(6, n_pes=1).batch_key


# -- job specs --------------------------------------------------------------


@pytest.mark.parametrize("kw", [
    {"tenant": ""},
    {"collective": "allfancy"},
    {"n_pes": 0},
    {"nelems": -1},
    {"root": 2, "n_pes": 2},
    {"fault": "segv"},
    {"fault_rank": 5, "n_pes": 2},
])
def test_jobspec_rejects_malformed(kw):
    base = dict(tenant="t", n_pes=2)
    base.update(kw)
    with pytest.raises(CollectiveArgumentError):
        JobSpec(**base)


def test_jobspec_payload_scales_with_fanout():
    dense = JobSpec(tenant="t", collective="allreduce", n_pes=4, nelems=8,
                    dtype="long")
    fanned = JobSpec(tenant="t", collective="alltoall", n_pes=4, nelems=8,
                     dtype="long")
    assert dense.payload_nbytes == 8 * 8 * 4
    assert fanned.payload_nbytes == 8 * 8 * 4 * 4


def test_jobspec_wire_roundtrips_program_fields():
    spec = JobSpec(tenant="t", collective="scan", n_pes=3, nelems=5,
                   dtype="double", root=1, seed=9, fault="raise",
                   fault_rank=2)
    wire = spec.as_wire()
    assert wire["collective"] == "scan" and wire["fault_rank"] == 2
    assert "tenant" not in wire, "tenancy is pool metadata, not program input"


# -- stats helpers ----------------------------------------------------------


def test_percentile_matches_numpy():
    vals = [5.0, 1.0, 9.0, 3.0, 7.0, 2.0]
    for q in (0, 25, 50, 75, 95, 99, 100):
        assert percentile(vals, q) == pytest.approx(
            float(np.percentile(vals, q)))
    assert percentile([], 50) == 0.0
    assert percentile([4.2], 99) == 4.2
    with pytest.raises(ValueError):
        percentile(vals, 101)


# -- watchdog scaling (satellite: payload-aware deadlines) ------------------


def test_scaled_timeout_grows_with_payload():
    assert scaled_timeout(10.0) == 10.0
    assert scaled_timeout(10.0, 0) == 10.0
    one_second = TIMEOUT_BYTES_PER_S
    assert scaled_timeout(10.0, one_second) == pytest.approx(11.0)
    assert scaled_timeout(10.0, 8 * one_second) == pytest.approx(18.0)
    # Garbage payload sizes never *shrink* the deadline.
    assert scaled_timeout(10.0, -12345) == 10.0
