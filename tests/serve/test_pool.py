"""ServePool behaviour on the in-process (sim/vec) engines.

These run everywhere — including the coreless CI runner — and pin down
the backend-independent serving semantics: digests, accounting, fault
isolation, rejection paths and tracing.  The mp-specific concurrency
and crash-isolation properties live in ``test_serve_mp.py``.
"""

from __future__ import annotations

import pytest

from repro.errors import ServeError
from repro.serve import COLLECTIVES, JobSpec, ServePool

from ..conftest import small_config


@pytest.fixture(autouse=True)
def _no_backend_override(monkeypatch):
    monkeypatch.delenv("XBGAS_SERVE_BACKEND", raising=False)


def _pool(backend: str = "sim", **kw) -> ServePool:
    kw.setdefault("config", small_config(4))
    return ServePool(4, backend=backend, **kw)


def _mixed_specs() -> list[JobSpec]:
    return [
        JobSpec(tenant=f"tenant{i % 3}", collective=coll,
                n_pes=2 if coll != "alltoall" else 4,
                nelems=24, dtype="long", seed=i)
        for i, coll in enumerate(COLLECTIVES)
    ]


def test_runs_mixed_jobs_and_bills_every_tenant():
    with _pool() as pool:
        specs = _mixed_specs()
        for spec in specs:
            pool.submit(spec)
        results = pool.drain(timeout_s=120.0)
    assert len(results) == len(specs)
    assert all(r.ok and r.digest for r in results)
    snap = pool.snapshot()
    assert snap["totals"]["completed"] == len(specs)
    assert snap["totals"]["failed"] == 0
    assert set(snap["tenants"]) == {"tenant0", "tenant1", "tenant2"}
    for acct in snap["tenants"].values():
        assert acct["pe_seconds"] > 0.0
        assert acct["latency_s"]["p50"] <= acct["latency_s"]["p99"]
    assert snap["pool"]["backend"] == "sim"
    assert snap["pool"]["free_pes"] == 4


@pytest.mark.parametrize("backend", ["sim", "vec"])
def test_digests_deterministic_across_pool_lifetimes(backend):
    spec = JobSpec(tenant="t", collective="allreduce", n_pes=3, nelems=33,
                   dtype="double", seed=17)

    def digest_once() -> str:
        with _pool(backend) as pool:
            pool.submit(spec)
            [result] = pool.drain(timeout_s=60.0)
        assert result.ok
        return result.digest

    assert digest_once() == digest_once()


def test_fault_fails_only_its_own_job():
    evil = JobSpec(tenant="evil", collective="allreduce", n_pes=2,
                   nelems=16, seed=3, fault="raise", fault_rank=1)
    good = [JobSpec(tenant=f"good{i}", collective="scan", n_pes=2,
                    nelems=16, seed=i) for i in range(4)]
    with _pool() as pool:
        for spec in [good[0], evil, *good[1:]]:
            pool.submit(spec)
        results = pool.drain(timeout_s=120.0)
    failed = [r for r in results if not r.ok]
    assert [r.tenant for r in failed] == ["evil"]
    assert "injected tenant fault" in failed[0].error
    assert all(r.ok for r in results if r.tenant != "evil")
    snap = pool.snapshot()
    assert snap["tenants"]["evil"]["failed"] == 1
    # A failed job still occupied PEs: the tenant is billed for them.
    assert snap["tenants"]["evil"]["pe_seconds"] > 0.0


def test_exit_fault_degrades_to_raise_in_process():
    """In-process engines must never let a tenant kill the server."""
    spec = JobSpec(tenant="evil", collective="barrier", n_pes=2,
                   fault="exit", fault_rank=0)
    with _pool() as pool:
        pool.submit(spec)
        [result] = pool.drain(timeout_s=60.0)
    assert not result.ok and "injected tenant fault" in result.error


def test_rejects_spec_wider_than_pool():
    with _pool() as pool:
        with pytest.raises(ValueError, match="pool has only"):
            pool.submit(JobSpec(tenant="t", n_pes=8))
        assert pool.pending == 0


def test_submit_after_close_raises():
    pool = _pool()
    pool.close()
    pool.close()  # idempotent
    with pytest.raises(ServeError, match="after close"):
        pool.submit(JobSpec(tenant="t"))
    with pytest.raises(ServeError, match="after close"):
        pool.pump()


def test_unknown_backend_rejected():
    with pytest.raises(ServeError, match="unknown serving backend"):
        ServePool(2, backend="cuda", config=small_config(2))


def test_env_var_overrides_backend(monkeypatch):
    monkeypatch.setenv("XBGAS_SERVE_BACKEND", "sim")
    with ServePool(2, backend="vec", config=small_config(2)) as pool:
        assert pool.backend_name == "sim"


def test_trace_records_serving_spans():
    with _pool(trace=True) as pool:
        pool.submit(JobSpec(tenant="a", collective="allreduce", n_pes=2,
                            nelems=8))
        pool.submit(JobSpec(tenant="b", collective="broadcast", n_pes=2,
                            nelems=8))
        pool.drain(timeout_s=60.0)
    spans = pool.trace.spans()
    assert len(spans) == 2
    details = {e.detail for e in spans}
    assert details == {"collective:serve:allreduce",
                       "collective:serve:broadcast"}
    tenants = {e.attrs["tenant"] for e in spans}
    assert tenants == {"a", "b"}
    assert all(e.dur_ns > 0 for e in spans)


def test_batch_window_validation():
    with pytest.raises(ValueError):
        ServePool(2, backend="sim", config=small_config(2), batch_window=0)


def test_batched_digests_match_solo_runs():
    """Same-shape jobs fused into one superstep return exactly the
    digests the same specs produce when served one at a time."""
    specs = [JobSpec(tenant=f"t{i % 3}", collective="allreduce", n_pes=4,
                     nelems=24, dtype="long", seed=i) for i in range(6)]

    def digests(batch_window: int) -> dict[str, str]:
        with _pool(batch_window=batch_window) as pool:
            ids = {pool.submit(spec): spec.seed for spec in specs}
            results = pool.drain(timeout_s=120.0)
        assert all(r.ok for r in results)
        return {ids[r.job_id]: r.digest for r in results}

    solo = digests(1)
    batched = digests(4)
    assert batched == solo
    assert len(set(solo.values())) == len(specs), (
        "distinct seeds must produce distinct digests — otherwise the "
        "demux could pass by collision")


def test_batched_results_keep_per_job_accounting():
    specs = [JobSpec(tenant=f"t{i}", collective="broadcast", n_pes=2,
                     nelems=16, dtype="long", seed=i, root=1)
             for i in range(3)]
    with _pool(batch_window=8) as pool:
        ids = [pool.submit(spec) for spec in specs]
        results = pool.drain(timeout_s=120.0)
    by_id = {r.job_id: r for r in results}
    assert sorted(by_id) == sorted(ids)
    for r in results:
        assert r.ok and r.ranks == (0, 1)
        assert r.pe_seconds == pytest.approx(2 * r.service_s)
    snap = pool.snapshot()
    assert snap["pool"]["batch_window"] == 8
    assert snap["pool"]["free_pes"] == 4, "batched ranks released once"
    assert snap["totals"]["completed"] == 3
    assert set(snap["tenants"]) == {"t0", "t1", "t2"}


def test_mixed_shapes_still_complete_with_batching_on():
    """A batching pool serving *non*-batchable mixtures (different
    shapes, plus a fault job) degrades to solo dispatch untouched."""
    evil = JobSpec(tenant="evil", collective="allreduce", n_pes=2,
                   nelems=16, seed=3, fault="raise", fault_rank=1)
    specs = _mixed_specs()
    with _pool(batch_window=4) as pool:
        for spec in [*specs[:2], evil, *specs[2:]]:
            pool.submit(spec)
        results = pool.drain(timeout_s=120.0)
    failed = [r for r in results if not r.ok]
    assert [r.tenant for r in failed] == ["evil"]
    assert len(results) == len(specs) + 1


def test_result_records_team_and_timing():
    with _pool() as pool:
        job_id = pool.submit(JobSpec(tenant="t", collective="reduce",
                                     n_pes=3, nelems=12, root=2, seed=5))
        [result] = pool.drain(timeout_s=60.0)
    assert result.job_id == job_id
    assert result.ranks == (0, 1, 2)
    assert result.pe_seconds == pytest.approx(3 * result.service_s)
    assert result.latency_s >= result.service_s >= 0.0
    assert result.latency_s >= result.queue_wait_s >= 0.0
