"""Integration tests: every example program must run end to end.

Table-driven: ``_EXAMPLES`` maps each ``examples/*.py`` file to its CLI
arguments, the substrings its stdout must contain, and an optional
post-check over artifacts it writes.  ``test_every_example_is_listed``
fails the moment someone adds an example without wiring it in here, so
the smoke coverage can't silently decay.
"""

from __future__ import annotations

import json
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


@dataclass(frozen=True)
class Example:
    """One smoke-test row: how to run the script and what to expect."""

    args: tuple[str, ...] = ()
    expect: tuple[str, ...] = ()
    #: Replaced by a tmp file path at run time (for trace writers).
    wants_tmp_json: bool = False
    #: Extra validation over the written JSON document.
    check_json: Callable[[dict], None] | None = None
    marks: tuple = ()


def _check_broadcast_trace(doc: dict) -> None:
    stages = [e for e in doc["traceEvents"]
              if e.get("ph") == "X" and e.get("cat") == "stage"]
    assert len(stages) == 3 * 8  # 3 stages per participating PE
    assert doc["otherData"]["dropped"] == 0


def _check_faulty_trace(doc: dict) -> None:
    faults = [e for e in doc["traceEvents"]
              if e.get("ph") == "i" and e.get("cat") == "fault"]
    assert any(e["name"] == "fault:crash" for e in faults)
    assert any(e["name"] == "fault:drop" for e in faults)
    assert any(e["name"] == "retry" for e in faults)


_EXAMPLES: dict[str, Example] = {
    "quickstart.py": Example(
        expect=("sum of squares over 4 PEs = 30", "gather assembled"),
    ),
    "transport_comparison.py": Example(expect=("ordering holds",)),
    "mailbox_allreduce.py": Example(
        expect=("bit-identical to one-sided", "exact on every PE"),
    ),
    "xbgas_assembly.py": Example(
        expect=("sum of remote values: 828 (expected 828)",
                "PE 1 memory at 0x1000: [100, 101"),
    ),
    "histogram_teams.py": Example(
        expect=("global histogram over 6000 samples",
                "even team's tallest local bin"),
    ),
    "heat_diffusion.py": Example(expect=("max residual", "total heat")),
    "chrome_trace_broadcast.py": Example(
        expect=("3 stages, 7 messages",),
        wants_tmp_json=True,
        check_json=_check_broadcast_trace,
    ),
    "faulty_allreduce.py": Example(
        expect=("drops healed by retry; expected 36",
                "over survivors (0, 1, 2, 3, 4, 6, 7) (expected 30)",
                "all survivors agree on the contribution mask"),
        wants_tmp_json=True,
        check_json=_check_faulty_trace,
        marks=(pytest.mark.faults,),
    ),
    "mp_allreduce.py": Example(
        args=("4", "32"),
        expect=("backends agree bit-for-bit on 4 PEs x 32 elements",),
    ),
    "pipelined_allreduce.py": Example(
        args=("6", "512"),
        expect=("dual-pipelined matches ring bit-for-bit on "
                "6 PEs x 512 elements",
                "ring/dual-pipelined makespan ratio"),
    ),
    "superstep_batching.py": Example(
        args=("4", "8", "8"),
        expect=("superstep flush matches eager bit-for-bit on "
                "4 PEs x 8 x 8 elements",
                "eager/superstep makespan ratio"),
    ),
    "serve_multi_tenant.py": Example(
        args=("sim", "16"),
        expect=("16 jobs completed across 4 tenants",
                "fault isolated to tenant 'evil'",
                "repeat digests match"),
    ),
    "gups_demo.py": Example(
        args=("128",),
        expect=("shape check",),
        marks=(pytest.mark.slow,),
    ),
    "integer_sort.py": Example(
        args=("S-scaled",),
        expect=("partial verification PASS",),
        marks=(pytest.mark.slow,),
    ),
}


def test_every_example_is_listed():
    on_disk = {p.name for p in EXAMPLES.glob("*.py")}
    assert on_disk == set(_EXAMPLES), (
        "examples/ and the smoke table disagree — add the new example "
        "to _EXAMPLES (or remove the stale row)"
    )


@pytest.mark.parametrize(
    "name",
    [pytest.param(n, marks=ex.marks) for n, ex in sorted(_EXAMPLES.items())],
)
def test_example_smoke(name, tmp_path):
    ex = _EXAMPLES[name]
    args: list[str] = list(ex.args)
    json_path = None
    if ex.wants_tmp_json:
        json_path = tmp_path / "out.json"
        args.append(str(json_path))
    out = run_example(name, *args)
    for needle in ex.expect:
        assert needle in out, f"{name}: {needle!r} not in output"
    if ex.check_json is not None:
        ex.check_json(json.loads(json_path.read_text()))
