"""Integration tests: the example programs must run end to end."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "sum of squares over 4 PEs = 30" in out
    assert "gather assembled" in out

def test_transport_comparison():
    out = run_example("transport_comparison.py")
    assert "ordering holds" in out


def test_xbgas_assembly():
    out = run_example("xbgas_assembly.py")
    assert "sum of remote values: 828 (expected 828)" in out
    assert "PE 1 memory at 0x1000: [100, 101" in out


def test_histogram_teams():
    out = run_example("histogram_teams.py")
    assert "global histogram over 6000 samples" in out
    assert "even team's tallest local bin" in out


def test_heat_diffusion():
    out = run_example("heat_diffusion.py")
    assert "max residual" in out
    assert "total heat" in out


def test_chrome_trace_broadcast(tmp_path):
    import json

    path = tmp_path / "trace.json"
    out = run_example("chrome_trace_broadcast.py", str(path))
    assert "3 stages, 7 messages" in out
    doc = json.loads(path.read_text())
    stages = [e for e in doc["traceEvents"]
              if e.get("ph") == "X" and e.get("cat") == "stage"]
    # 3 stages per participating PE.
    assert len(stages) == 3 * 8
    assert doc["otherData"]["dropped"] == 0


@pytest.mark.faults
def test_faulty_allreduce(tmp_path):
    import json

    path = tmp_path / "faulty.json"
    out = run_example("faulty_allreduce.py", str(path))
    assert "drops healed by retry; expected 36" in out
    assert "over survivors (0, 1, 2, 3, 4, 6, 7) (expected 30)" in out
    assert "all survivors agree on the contribution mask" in out
    doc = json.loads(path.read_text())
    faults = [e for e in doc["traceEvents"]
              if e.get("ph") == "i" and e.get("cat") == "fault"]
    assert any(e["name"] == "fault:crash" for e in faults)
    assert any(e["name"] == "fault:drop" for e in faults)
    assert any(e["name"] == "retry" for e in faults)


@pytest.mark.slow
def test_gups_demo():
    out = run_example("gups_demo.py", "128")
    assert "shape check" in out


@pytest.mark.slow
def test_integer_sort_demo():
    out = run_example("integer_sort.py", "S-scaled")
    assert "partial verification PASS" in out
