"""PE-crash recovery: degraded barriers, tree rebuild, partial results.

The acceptance property: with a PE crashed mid-collective the survivors
must *complete* — via a virtual-rank rebuild over the survivor group (or
an eventually consistent result with a contribution mask) — instead of
hanging or dying with them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PeerFailedError, SimulationError
from repro.faults.plan import CRASHED, FaultPlan, crash
from repro.runtime import Machine

from ..conftest import small_config

pytestmark = pytest.mark.faults

#: Past every test body's setup phase (mallocs + one barrier), so the
#: crash consistently fires at the victim's first runtime call inside
#: the collective under test (everyone computes past this instant
#: first — see ``arm_crash``).
CRASH_AT = 50_000.0


def crash_machine(n_pes, *victims, trace=False):
    plan = FaultPlan(rules=tuple(crash(v, CRASH_AT) for v in victims))
    return Machine(small_config(n_pes), faults=plan, trace=trace)


def arm_crash(ctx):
    """Advance every PE past the crash trigger time, so the victim dies
    at its next runtime call — deterministically, whatever the config's
    timing parameters make of the setup phase."""
    ctx.compute(CRASH_AT + 10_000.0)


class TestResilientAllreduce:
    def test_survivors_complete_with_contribution_mask(self):
        n, victim = 8, 3
        per_pe = [np.arange(4, dtype=np.int64) + 10 * r for r in range(n)]
        survivors = [r for r in range(n) if r != victim]
        expect = np.sum([per_pe[r] for r in survivors], axis=0)

        def body(ctx):
            ctx.init()
            me = ctx.my_pe()
            src = ctx.malloc(8 * 4)
            dest = ctx.malloc(8 * 4)
            ctx.view(src, "long", 4)[:] = per_pe[me]
            ctx.barrier()
            arm_crash(ctx)
            res = ctx.resilient_allreduce(dest, src, 4, 1, "sum", "long")
            got = np.array(ctx.view(dest, "long", 4), copy=True)
            ctx.close()
            return res, got

        m = crash_machine(n, victim)
        results = m.run(body)
        assert results[victim] is CRASHED
        for r in range(n):
            if r == victim:
                continue
            res, got = results[r]
            np.testing.assert_array_equal(got, expect)
            assert res.contributors == tuple(survivors)
            assert res.dead == (victim,)
            assert res.restarts >= 1
            assert not res.complete

    def test_double_crash(self):
        n = 8
        victims = {2, 5}
        survivors = [r for r in range(n) if r not in victims]

        def body(ctx):
            ctx.init()
            me = ctx.my_pe()
            src = ctx.malloc(8)
            dest = ctx.malloc(8)
            ctx.view(src, "long", 1)[0] = me + 1
            ctx.barrier()
            arm_crash(ctx)
            res = ctx.resilient_allreduce(dest, src, 1, 1, "sum", "long")
            got = int(ctx.view(dest, "long", 1)[0])
            ctx.close()
            return res, got

        m = crash_machine(n, *victims)
        results = m.run(body)
        expect = sum(r + 1 for r in survivors)
        for r in survivors:
            res, got = results[r]
            assert got == expect
            assert set(res.dead) == victims


class TestResilientReduce:
    def test_partial_sum_lands_on_root(self):
        n, victim, root = 4, 2, 0

        def body(ctx):
            ctx.init()
            me = ctx.my_pe()
            src = ctx.malloc(8)
            dest = ctx.private_malloc(8)
            ctx.view(src, "long", 1)[0] = 1 << me
            ctx.barrier()
            arm_crash(ctx)
            res = ctx.resilient_reduce(dest, src, 1, 1, root, "sum", "long")
            got = int(ctx.view(dest, "long", 1)[0]) if me == root else None
            ctx.close()
            return res, got

        m = crash_machine(n, victim)
        results = m.run(body)
        res, got = results[root]
        assert got == sum(1 << r for r in range(n) if r != victim)
        assert res.root == root  # the root survived; no remap
        assert res.dead == (victim,)


class TestResilientBroadcast:
    def test_leaf_crash_payload_delivered(self):
        n, victim, root = 4, 3, 0
        data = np.arange(8, dtype=np.int64) + 42

        def body(ctx):
            ctx.init()
            me = ctx.my_pe()
            dest = ctx.malloc(8 * 8)
            src = ctx.private_malloc(8 * 8)
            if me == root:
                ctx.view(src, "long", 8)[:] = data
            ctx.barrier()
            arm_crash(ctx)
            res = ctx.resilient_broadcast(dest, src, 8, 1, root, "long")
            got = np.array(ctx.view(dest, "long", 8), copy=True)
            ctx.close()
            return res, got

        m = crash_machine(n, victim)
        results = m.run(body)
        for r in range(n):
            if r == victim:
                continue
            res, got = results[r]
            np.testing.assert_array_equal(got, data)
            assert res.root == root
            assert res.dead == (victim,)

    def test_root_crash_reroots_to_smallest_virtual_rank(self):
        n, root = 4, 2  # virtual order from root 2: [2, 3, 0, 1]

        def body(ctx):
            ctx.init()
            me = ctx.my_pe()
            dest = ctx.malloc(8)
            src = ctx.private_malloc(8)
            ctx.view(dest, "long", 1)[0] = -1
            if me == root:
                ctx.view(src, "long", 1)[0] = 7
            ctx.barrier()
            arm_crash(ctx)
            res = ctx.resilient_broadcast(dest, src, 1, 1, root, "long")
            got = int(ctx.view(dest, "long", 1)[0])
            ctx.close()
            return res, got

        m = crash_machine(n, root)
        results = m.run(body)
        for r in range(n):
            if r == root:
                continue
            res, got = results[r]
            assert res.root == 3  # PE 3 is virtual rank 1 under root 2
            assert res.dead == (root,)
            # The root died before sending, so survivors converge on the
            # new root's dest contents — agreement, not resurrection.
            assert got == results[3][1]


class TestFailStopWithoutResilience:
    def test_plain_collective_fails_loudly_not_hangs(self):
        """Without the resilient wrapper a crash must surface as a typed
        error on the survivors — never a hang."""

        def body(ctx):
            ctx.init()
            src = ctx.malloc(8)
            dest = ctx.malloc(8)
            ctx.view(src, "long", 1)[0] = 1
            ctx.barrier()
            arm_crash(ctx)
            ctx.allreduce(dest, src, 1, 1, "sum", "long")
            ctx.close()

        m = crash_machine(4, 1)
        with pytest.raises(SimulationError) as exc:
            m.run(body)
        assert isinstance(exc.value.__cause__, PeerFailedError)
        assert exc.value.__cause__.dead == frozenset({1})

    def test_survivor_sees_consistent_dead_set_in_barrier(self):
        def body(ctx):
            ctx.init()
            ctx.barrier()
            arm_crash(ctx)
            try:
                ctx.barrier()
            except PeerFailedError as err:
                dead = tuple(sorted(err.dead))
            else:
                dead = None
            ctx.close()
            return dead

        m = crash_machine(4, 2)
        results = m.run(body)
        for r in (0, 1, 3):
            assert results[r] == (2,)
        assert results[2] is CRASHED
