"""Injector behaviour at the transport and runtime-call boundaries."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults.plan import (
    CRASHED,
    FaultPlan,
    FiredFault,
    RetryConfig,
    crash,
    degrade,
    delay,
    drop,
    stall,
)
from repro.faults.injector import FaultInjector
from repro.runtime import Machine

from ..conftest import small_config

pytestmark = pytest.mark.faults


def machine(n_pes=2, plan=None, retry=None, trace=False):
    return Machine(small_config(n_pes), trace=trace, faults=plan, retry=retry)


def put_body(ctx):
    """PE 0 puts one marker word to PE 1; returns PE-local dest value."""
    ctx.init()
    buf = ctx.malloc(16)
    ctx.view(buf, "long", 2)[:] = [ctx.my_pe() + 10, 0]
    ctx.barrier()
    if ctx.my_pe() == 0:
        ctx.put(buf + 8, buf, 1, 1, 1, "long")
    ctx.barrier()
    got = list(ctx.view(buf, "long", 2))
    ctx.close()
    return got


class TestMessageFaults:
    def test_no_plan_no_injector(self):
        m = machine()
        assert m.faults is None
        assert m.network.injector is None
        assert m.run(put_body)[1] == [11, 10]

    def test_drop_without_retry_is_silent_loss(self):
        m = machine(plan=FaultPlan(rules=(drop(1.0),)))
        res = m.run(put_body)
        assert res[1] == [11, 0]  # payload never landed
        assert [f[1] for f in m.faults.fired] == ["drop"]

    def test_drop_with_retry_recovers(self):
        m = machine(plan=FaultPlan(rules=(drop(1.0, count=2),)),
                    retry=RetryConfig(timeout_ns=1_000.0))
        res = m.run(put_body)
        assert res[1] == [11, 10]
        assert m.stats.retries == 2
        assert m.stats.faults_injected["drop"] == 2

    def test_corrupt_flips_exactly_one_deterministic_bit(self):
        view = np.zeros(8, dtype=np.int64)
        fault = FiredFault(kind="corrupt", rule_index=0, seq=0, salt=0xABCDEF)
        FaultInjector.corrupt_payload(view, fault)
        assert np.count_nonzero(view) == 1
        changed = int(np.flatnonzero(view)[0])
        assert bin(int(view[changed]) & ((1 << 64) - 1)).count("1") == 1
        # Deterministic: the same fault flips the same bit.
        view2 = np.zeros(8, dtype=np.int64)
        FaultInjector.corrupt_payload(view2, fault)
        assert np.array_equal(view, view2)

    def test_corrupt_empty_payload_is_noop(self):
        fault = FiredFault(kind="corrupt", rule_index=0, seq=0, salt=99)
        FaultInjector.corrupt_payload(np.zeros(0, dtype=np.int64), fault)

    def test_degrade_and_delay_slow_but_deliver(self):
        def two_puts(ctx):
            ctx.init()
            buf = ctx.malloc(32)
            ctx.view(buf, "long", 4)[:] = [ctx.my_pe() + 10, 0, 0, 0]
            ctx.barrier()
            if ctx.my_pe() == 0:
                ctx.put(buf + 8, buf, 1, 1, 1, "long")
                ctx.put(buf + 16, buf, 1, 1, 1, "long")
            ctx.barrier()
            got = list(ctx.view(buf, "long", 4))
            ctx.close()
            return got

        clean = machine()
        clean.run(two_puts)
        slow = machine(plan=FaultPlan(
            rules=(delay(5_000.0, 1.0, count=1), degrade(4.0, 1.0))))
        res = slow.run(two_puts)
        assert res[1] == [11, 10, 10, 0]  # data intact
        assert slow.elapsed_ns > clean.elapsed_ns
        kinds = {f[1] for f in slow.faults.fired}
        assert kinds == {"delay", "degrade"}

    def test_local_messages_never_sampled(self):
        def local_put(ctx):
            ctx.init()
            buf = ctx.malloc(16)
            ctx.view(buf, "long", 2)[:] = [3, 0]
            ctx.put(buf + 8, buf, 1, 1, ctx.my_pe(), "long")
            ctx.barrier()
            got = list(ctx.view(buf, "long", 2))
            ctx.close()
            return got

        m = machine(plan=FaultPlan(rules=(drop(1.0),)))
        assert m.run(local_put) == [[3, 3]] * 2
        assert m.faults.fired == []


class TestPeFaults:
    def test_stall_fires_once_and_is_recorded(self):
        m = machine(plan=FaultPlan(rules=(stall(1, 0.0, 7_777.0),)))
        res = m.run(put_body)
        assert res[1] == [11, 10]  # stall perturbs time, not data
        stalls = [f for f in m.faults.fired if f[1] == "stall"]
        assert len(stalls) == 1
        assert stalls[0][2] == 1  # the victim rank

    def test_crash_yields_sentinel_and_dead_set(self):
        def body(ctx):
            ctx.init()
            me = ctx.my_pe()
            ctx.compute(10_000.0)
            try:
                ctx.barrier()
            except Exception:
                pass
            ctx.close()
            return me

        m = machine(plan=FaultPlan(rules=(crash(1, 5_000.0),)))
        res = m.run(body)
        assert res[0] == 0
        assert res[1] is CRASHED
        assert repr(res[1]) == "CRASHED"
        assert m.failed_pes == frozenset({1})
        assert m.faults.dead_pes == frozenset({1})
        assert any(f[1] == "crash" and f[2] == 1 for f in m.faults.fired)

    def test_crash_before_trigger_time_does_not_fire(self):
        m = machine(plan=FaultPlan(rules=(crash(1, 1e15),)))
        res = m.run(put_body)
        assert res[1] == [11, 10]
        assert m.failed_pes == frozenset()
