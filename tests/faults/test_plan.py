"""Fault-plan unit tests: validation and deterministic sampling."""

from __future__ import annotations

import pytest

from repro.errors import FaultPlanError
from repro.faults.plan import (
    FaultPlan,
    FaultRule,
    RetryConfig,
    corrupt,
    crash,
    degrade,
    delay,
    drop,
    keyed_salt,
    keyed_u01,
    stall,
)

pytestmark = pytest.mark.faults


class TestValidation:
    def test_unknown_kind(self):
        with pytest.raises(FaultPlanError, match="unknown fault kind"):
            FaultPlan(rules=(FaultRule("frob"),))

    def test_probability_range(self):
        with pytest.raises(FaultPlanError, match="probability"):
            FaultPlan(rules=(drop(1.5),))
        with pytest.raises(FaultPlanError, match="probability"):
            FaultPlan(rules=(drop(-0.1),))

    def test_pe_kinds_need_victim(self):
        with pytest.raises(FaultPlanError, match="victim"):
            FaultPlan(rules=(FaultRule("crash"),))
        with pytest.raises(FaultPlanError, match="victim"):
            FaultPlan(rules=(FaultRule("stall"),))

    def test_negative_delay(self):
        with pytest.raises(FaultPlanError, match="delay_ns"):
            FaultPlan(rules=(delay(-1.0),))

    def test_degrade_factor_below_one(self):
        with pytest.raises(FaultPlanError, match="factor"):
            FaultPlan(rules=(degrade(0.5),))

    def test_negative_stall_duration(self):
        with pytest.raises(FaultPlanError, match="stall"):
            FaultPlan(rules=(stall(0, 0.0, -1.0),))

    def test_negative_detector_timeout(self):
        with pytest.raises(FaultPlanError, match="detector_timeout_ns"):
            FaultPlan(detector_timeout_ns=-1.0)

    def test_retry_config_validation(self):
        with pytest.raises(FaultPlanError):
            RetryConfig(max_retries=-1)
        with pytest.raises(FaultPlanError):
            RetryConfig(timeout_ns=0.0)
        with pytest.raises(FaultPlanError):
            RetryConfig(backoff=0.5)

    def test_constructors_set_kind(self):
        assert drop().kind == "drop"
        assert delay(5.0).kind == "delay"
        assert corrupt().kind == "corrupt"
        assert degrade(2.0).kind == "degrade"
        assert stall(1, 0.0, 10.0).kind == "stall"
        assert crash(1, 0.0).kind == "crash"


class TestKeyedDraws:
    def test_u01_deterministic_and_in_range(self):
        for args in [(0, 0, 0), (1, 2, 3), (0x5EED, 4, 100)]:
            a, b = keyed_u01(*args), keyed_u01(*args)
            assert a == b
            assert 0.0 <= a < 1.0

    def test_u01_decorrelated(self):
        draws = {keyed_u01(7, 0, m) for m in range(64)}
        assert len(draws) == 64  # no collisions on a small stream

    def test_salt_deterministic(self):
        assert keyed_salt(3, 1, 9) == keyed_salt(3, 1, 9)
        assert keyed_salt(3, 1, 9) != keyed_salt(3, 1, 10)


class TestSampling:
    def test_same_inputs_same_schedule(self):
        plan = FaultPlan(seed=11, rules=(drop(0.3), delay(100.0, 0.3)))

        def schedule():
            counts = [0] * len(plan.rules)
            out = []
            for m in range(200):
                f = plan.sample_message(m, 0.0, 0, 1, counts)
                if f is not None:
                    counts[f.rule_index] += 1
                    out.append((f.seq, f.kind, f.rule_index, f.salt))
            return out

        first = schedule()
        assert first == schedule()
        assert first  # the seed must actually fire something

    def test_first_matching_rule_wins(self):
        plan = FaultPlan(rules=(drop(1.0), delay(100.0, 1.0)))
        f = plan.sample_message(0, 0.0, 0, 1, [0, 0])
        assert f is not None and f.kind == "drop"

    def test_count_cap_respected(self):
        plan = FaultPlan(rules=(drop(1.0, count=2),))
        counts = [0]
        fired = []
        for m in range(10):
            f = plan.sample_message(m, 0.0, 0, 1, counts)
            if f is not None:
                counts[0] += 1
                fired.append(m)
        assert fired == [0, 1]

    def test_src_dst_filters(self):
        plan = FaultPlan(rules=(drop(1.0, src=0, dst=2),))
        assert plan.sample_message(0, 0.0, 0, 2, [0]) is not None
        assert plan.sample_message(1, 0.0, 0, 1, [0]) is None
        assert plan.sample_message(2, 0.0, 1, 2, [0]) is None

    def test_time_window(self):
        plan = FaultPlan(rules=(drop(1.0, after_ns=100.0, until_ns=200.0),))
        assert plan.sample_message(0, 50.0, 0, 1, [0]) is None
        assert plan.sample_message(1, 100.0, 0, 1, [0]) is not None
        assert plan.sample_message(2, 200.0, 0, 1, [0]) is None

    def test_retries_get_fresh_draws(self):
        """A retransmission has a new message index, so a p<1 rule must
        not be doomed to strike every attempt."""
        plan = FaultPlan(seed=5, rules=(drop(0.5),))
        verdicts = {plan.sample_message(m, 0.0, 0, 1, [0]) is None
                    for m in range(32)}
        assert verdicts == {True, False}

    def test_pe_rules_selector(self):
        plan = FaultPlan(rules=(drop(0.5), crash(2, 10.0), stall(1, 0.0, 5.0)))
        assert [i for i, _ in plan.pe_rules("crash")] == [1]
        assert [i for i, _ in plan.pe_rules("stall")] == [2]
