"""Seeded determinism: same plan + seed ⇒ byte-identical runs.

The acceptance criterion of the fault subsystem: two machines built
from the same config and fault plan must produce identical fault
schedules, identical results, and identical traces — down to the JSON
bytes of the Chrome-trace export.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.faults.plan import CRASHED, FaultPlan, RetryConfig, crash, delay, drop
from repro.runtime import Machine

from ..conftest import small_config

pytestmark = pytest.mark.faults

PLAN = FaultPlan(
    seed=0xD15EA5E,
    rules=(drop(0.3), delay(600.0, 0.3), crash(5, 40_000.0)),
)
RETRY = RetryConfig(max_retries=8, timeout_ns=3_000.0)


def one_run():
    """A noisy 8-PE program: lossy allreduce, then a crash survived via
    the resilient path."""
    per_pe = [np.arange(4, dtype=np.int64) * (r + 1) for r in range(8)]

    def body(ctx):
        ctx.init()
        me = ctx.my_pe()
        src = ctx.malloc(8 * 4)
        dest = ctx.malloc(8 * 4)
        ctx.view(src, "long", 4)[:] = per_pe[me]
        ctx.allreduce(dest, src, 4, 1, "sum", "long")
        first = [int(v) for v in ctx.view(dest, "long", 4)]
        ctx.compute(60_000.0)  # run past the crash trigger
        res = ctx.resilient_allreduce(dest, src, 4, 1, "sum", "long")
        second = [int(v) for v in ctx.view(dest, "long", 4)]
        ctx.close()
        return first, second, res.contributors, res.dead, res.restarts

    machine = Machine(small_config(8), trace=True, faults=PLAN, retry=RETRY)
    results = machine.run(body)
    return machine, results


class TestDeterminism:
    def test_two_runs_byte_identical(self):
        m1, r1 = one_run()
        m2, r2 = one_run()
        # 1. The fault schedule (every firing, in order, with times).
        assert m1.faults.fired == m2.faults.fired
        assert len(m1.faults.fired) > 0
        # 2. The program results, crash sentinel included.
        assert r1 == r2
        assert r1[5] is CRASHED
        # 3. The full trace, to the serialized byte.
        doc1 = json.dumps(m1.chrome_trace(), sort_keys=True)
        doc2 = json.dumps(m2.chrome_trace(), sort_keys=True)
        assert doc1 == doc2
        # 4. Aggregate stats agree too.
        assert m1.stats.retries == m2.stats.retries
        assert m1.stats.faults_injected == m2.stats.faults_injected

    def test_run_is_correct_despite_noise(self):
        m, results = one_run()
        survivors = [r for r in range(8) if r != 5]
        full = [int(v) for v in np.sum(
            [np.arange(4, dtype=np.int64) * (r + 1) for r in range(8)],
            axis=0)]
        partial = [int(v) for v in np.sum(
            [np.arange(4, dtype=np.int64) * (r + 1) for r in survivors],
            axis=0)]
        for r in survivors:
            first, second, contributors, dead, restarts = results[r]
            assert first == full  # pre-crash allreduce saw everyone
            assert second == partial  # post-crash folds survivors only
            assert contributors == tuple(survivors)
            assert dead == (5,)

    def test_different_seed_different_schedule(self):
        """The seed must actually steer the schedule (no hidden global
        RNG): changing it changes which messages fault."""
        def fired_with(seed):
            plan = FaultPlan(seed=seed, rules=(drop(0.3),))
            data = np.arange(8, dtype=np.int64)

            def body(ctx):
                ctx.init()
                dest = ctx.malloc(8 * 8)
                src = ctx.private_malloc(8 * 8)
                if ctx.my_pe() == 0:
                    ctx.view(src, "long", 8)[:] = data
                ctx.long_broadcast(dest, src, 8, 1, 0)
                ctx.close()

            m = Machine(small_config(8), faults=plan, retry=RETRY)
            m.run(body)
            return [f[0] for f in m.faults.fired]  # the struck seqs

        a, b = fired_with(1), fired_with(2)
        assert a != b
