"""Collectives over a lossy transport must still match the numpy oracles.

Every test runs a real collective on a machine whose network drops,
delays or corrupts messages, with the ack/retry layer enabled, and
asserts the results are byte-identical to the fault-free semantics —
the whole point of the resilience layer.  Each test also asserts that
faults actually fired, so a quiet plan can't turn these into no-ops.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError, TransferTimeoutError
from repro.faults.plan import FaultPlan, RetryConfig, corrupt, delay, drop
from repro.runtime import Machine

from ..conftest import small_config

pytestmark = pytest.mark.faults

#: Drops and delays a quarter of all messages — noisy but recoverable.
LOSSY = FaultPlan(seed=0xBAD1, rules=(drop(0.25), delay(800.0, 0.25)))
RETRY = RetryConfig(max_retries=8, timeout_ns=4_000.0)


def lossy_machine(n_pes, plan=LOSSY, retry=RETRY):
    return Machine(small_config(n_pes), faults=plan, retry=retry)


def assert_faults_fired(machine, *kinds):
    seen = {f[1] for f in machine.faults.fired}
    for kind in kinds:
        assert kind in seen, f"plan never fired a {kind!r}: {seen}"


class TestLossyCollectives:
    N_PES = 8
    NELEMS = 16

    def test_broadcast(self):
        data = np.arange(self.NELEMS, dtype=np.int64) * 3 + 1

        def body(ctx):
            ctx.init()
            dest = ctx.malloc(8 * self.NELEMS)
            src = ctx.private_malloc(8 * self.NELEMS)
            if ctx.my_pe() == 2:
                ctx.view(src, "long", self.NELEMS)[:] = data
            ctx.long_broadcast(dest, src, self.NELEMS, 1, 2)
            got = np.array(ctx.view(dest, "long", self.NELEMS), copy=True)
            ctx.close()
            return got

        m = lossy_machine(self.N_PES)
        for got in m.run(body):
            np.testing.assert_array_equal(got, data)
        assert_faults_fired(m, "drop")
        assert m.stats.retries > 0

    def test_reduce(self):
        per_pe = [np.arange(self.NELEMS, dtype=np.int64) + 7 * r
                  for r in range(self.N_PES)]

        def body(ctx):
            ctx.init()
            me = ctx.my_pe()
            src = ctx.malloc(8 * self.NELEMS)
            dest = ctx.private_malloc(8 * self.NELEMS)
            ctx.view(src, "long", self.NELEMS)[:] = per_pe[me]
            ctx.long_reduce_sum(dest, src, self.NELEMS, 1, 0)
            got = (np.array(ctx.view(dest, "long", self.NELEMS), copy=True)
                   if me == 0 else None)
            ctx.close()
            return got

        m = lossy_machine(self.N_PES)
        res = m.run(body)
        np.testing.assert_array_equal(res[0], np.sum(per_pe, axis=0))
        assert_faults_fired(m, "drop")

    def test_scatter_gather_roundtrip(self):
        n = self.N_PES
        msgs = [i + 1 for i in range(n)]
        disp = list(np.cumsum([0] + msgs[:-1]))
        total = sum(msgs)
        data = np.arange(total, dtype=np.int64) - 5

        def body(ctx):
            ctx.init()
            me = ctx.my_pe()
            src = ctx.malloc(8 * total)
            mid = ctx.private_malloc(8 * max(msgs))
            out = ctx.malloc(8 * total)
            if me == 1:
                ctx.view(src, "long", total)[:] = data
            ctx.long_scatter(mid, src, msgs, disp, total, 1)
            back = ctx.malloc(8 * max(msgs))
            ctx.view(back, "long", msgs[me])[:] = ctx.view(mid, "long",
                                                           msgs[me])
            ctx.long_gather(out, back, msgs, disp, total, 1)
            got = (np.array(ctx.view(out, "long", total), copy=True)
                   if me == 1 else None)
            ctx.close()
            return got

        m = lossy_machine(n)
        res = m.run(body)
        np.testing.assert_array_equal(res[1], data)
        assert_faults_fired(m, "drop")

    @pytest.mark.parametrize("algorithm", ["doubling", "rabenseifner"])
    def test_allreduce(self, algorithm):
        per_pe = [np.arange(self.NELEMS, dtype=np.int64) * (r + 1)
                  for r in range(self.N_PES)]
        expect = np.sum(per_pe, axis=0)

        def body(ctx):
            ctx.init()
            me = ctx.my_pe()
            src = ctx.malloc(8 * self.NELEMS)
            dest = ctx.private_malloc(8 * self.NELEMS)
            ctx.view(src, "long", self.NELEMS)[:] = per_pe[me]
            from repro.collectives.allreduce import allreduce

            allreduce(ctx, dest, src, self.NELEMS, 1, "sum",
                      np.dtype(np.int64), algorithm=algorithm)
            got = np.array(ctx.view(dest, "long", self.NELEMS), copy=True)
            ctx.close()
            return got

        m = lossy_machine(self.N_PES)
        for got in m.run(body):
            np.testing.assert_array_equal(got, expect)
        assert_faults_fired(m, "drop")


class TestRetryEdgeCases:
    def test_corruption_is_retransmitted(self):
        data = np.arange(8, dtype=np.int64) + 100

        def body(ctx):
            ctx.init()
            dest = ctx.malloc(8 * 8)
            src = ctx.private_malloc(8 * 8)
            if ctx.my_pe() == 0:
                ctx.view(src, "long", 8)[:] = data
            ctx.long_broadcast(dest, src, 8, 1, 0)
            got = np.array(ctx.view(dest, "long", 8), copy=True)
            ctx.close()
            return got

        m = Machine(small_config(4),
                    faults=FaultPlan(rules=(corrupt(1.0, count=3),)),
                    retry=RetryConfig(timeout_ns=2_000.0))
        for got in m.run(body):
            np.testing.assert_array_equal(got, data)
        assert m.stats.faults_injected["corrupt"] == 3
        assert m.stats.retries == 3

    def test_retries_exhausted_raises_timeout(self):
        def body(ctx):
            ctx.init()
            buf = ctx.malloc(8)
            if ctx.my_pe() == 0:
                ctx.put(buf, buf, 1, 1, 1, "long")
            ctx.barrier()
            ctx.close()

        m = Machine(small_config(2), faults=FaultPlan(rules=(drop(1.0),)),
                    retry=RetryConfig(max_retries=2, timeout_ns=1_000.0))
        with pytest.raises(SimulationError) as exc:
            m.run(body)
        assert isinstance(exc.value.__cause__, TransferTimeoutError)
        assert "max_retries=2" in str(exc.value.__cause__)

    def test_delay_without_retry_is_still_correct(self):
        """Pure delays need no retry layer: the barrier quiescence
        horizon absorbs late deliveries."""
        data = np.arange(16, dtype=np.int64) * 2

        def body(ctx):
            ctx.init()
            dest = ctx.malloc(8 * 16)
            src = ctx.private_malloc(8 * 16)
            if ctx.my_pe() == 0:
                ctx.view(src, "long", 16)[:] = data
            ctx.long_broadcast(dest, src, 16, 1, 0)
            got = np.array(ctx.view(dest, "long", 16), copy=True)
            ctx.close()
            return got

        m = Machine(small_config(8),
                    faults=FaultPlan(rules=(delay(10_000.0, 0.5),)))
        for got in m.run(body):
            np.testing.assert_array_equal(got, data)
        assert m.stats.faults_injected["delay"] > 0
        assert m.stats.retries == 0
