"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro import errors


def test_everything_derives_from_xbgas_error():
    for name in errors.__all__:
        exc = getattr(errors, name)
        assert issubclass(exc, errors.XbgasError), name


def test_isa_family():
    for exc in (errors.DecodeError, errors.AssemblerError,
                errors.OlbMissError):
        assert issubclass(exc, errors.IsaError)


def test_deadlock_is_simulation_error():
    assert issubclass(errors.DeadlockError, errors.SimulationError)


def test_typename_error_is_keyerror():
    """Callers treating TYPENAME lookup as a mapping get KeyError."""
    assert issubclass(errors.TypeNameError, KeyError)


def test_collective_argument_error_is_valueerror():
    assert issubclass(errors.CollectiveArgumentError, ValueError)


def test_catchable_as_library_failure():
    from repro.types import typeinfo

    with pytest.raises(errors.XbgasError):
        typeinfo("no-such-type")
