"""Regression tests for shared-memory teardown.

The bug class under test: a session's ``/dev/shm`` segments must be
unlinked **exactly once** by the owning process, no matter which
combination of double ``close()``, repeated ``unlink()``, attacher
teardown and interpreter-exit (atexit) paths runs — and a segment that
an external cleaner already removed must be tolerated, not raised.
"""

from __future__ import annotations

import os

import pytest

from repro.backends import MPSession
from repro.backends.shm import SegmentGroup, control_bytes, segment_prefix
from repro.errors import RuntimeStateError, WorkerFailedError

from ..conftest import small_config
from .conftest import SHM_DIR, xbgas_segments


def _session_segments(token: str) -> list[str]:
    prefix = segment_prefix(token)
    return [s for s in xbgas_segments() if s.startswith(prefix)]


@pytest.fixture
def group():
    token = SegmentGroup.new_token()
    g = SegmentGroup(token, 2, 4096, control_bytes(2), create=True)
    yield g
    g.close()
    g.unlink()


def test_unlink_exactly_once_survives_double_close(group):
    token = group.token
    assert len(_session_segments(token)) == 3  # 2 PEs + control
    group.close()
    group.close()  # double close: idempotent, segments still linked
    assert len(_session_segments(token)) == 3
    group.unlink()
    assert group.unlinked
    assert _session_segments(token) == []
    # Second unlink is a no-op, not a FileNotFoundError storm.
    group.unlink()
    assert _session_segments(token) == []


def test_unlink_before_close_is_safe(group):
    """POSIX allows unlink-while-mapped; teardown order must not matter."""
    token = group.token
    group.unlink()
    assert _session_segments(token) == []
    group.close()  # mappings dropped after the name is gone: fine
    group.unlink()  # and a late unlink stays a no-op


def test_attacher_never_unlinks(group):
    """Only the owner removes segments; workers just drop mappings."""
    token = group.token
    attacher = SegmentGroup(token, 2, 4096, control_bytes(2), create=False)
    assert not attacher.owner
    attacher.close()
    attacher.unlink()  # non-owner: must be a no-op
    assert not attacher.unlinked
    assert len(_session_segments(token)) == 3


def test_unlink_tolerates_externally_removed_segment(group):
    """A cleaner (or crash reaper) racing us must not break teardown."""
    victim = group.segments[0].name
    os.unlink(os.path.join(SHM_DIR, victim))
    group.close()
    group.unlink()  # FileNotFoundError on the victim is swallowed
    assert group.unlinked
    assert _session_segments(group.token) == []


def test_partial_construction_leaks_nothing():
    """If segment creation fails midway, earlier segments are removed."""
    token = SegmentGroup.new_token()
    # Pre-create the *control* segment so the group's own creation of it
    # fails after the PE segments were already made.
    blocker = SegmentGroup(token, 0, 4096, control_bytes(2), create=True)
    try:
        with pytest.raises(FileExistsError):
            SegmentGroup(token, 2, 4096, control_bytes(2), create=True)
        assert len(_session_segments(token)) == 1  # only the blocker's ctl
    finally:
        blocker.close()
        blocker.unlink()
    assert _session_segments(token) == []


def test_session_double_close_unlinks_once():
    """MPSession.close() is idempotent through every teardown path."""
    before = xbgas_segments()
    session = MPSession(small_config(2), timeout=30.0)
    token = session.token
    assert _session_segments(token)
    session.close()
    assert _session_segments(token) == []
    session.close()  # second close: no error, no tracker spam
    with pytest.raises(RuntimeStateError):
        session.run(_noop)
    assert xbgas_segments() == before


def test_rebuild_after_killed_worker_reuses_segments():
    """Worker-pool repair must re-attach, not unlink/recreate.

    Segment layout depends only on the immutable session config, so a
    rebuild after a hard worker death keeps the exact same ``/dev/shm``
    entries — and therefore cannot leak (or orphan) any segment no
    matter how many times the pool is repaired.
    """
    before = xbgas_segments()
    session = MPSession(small_config(2), timeout=30.0)
    try:
        live = _session_segments(session.token)
        assert live, "session must own segments while open"
        with pytest.raises(WorkerFailedError):
            session.run(_dies_hard)
        assert _session_segments(session.token) == live, \
            "repair must reuse the existing segments byte-for-byte"
        assert [s for s in xbgas_segments() if s not in before + live] == []
        # The rebuilt pool runs on those same segments.
        assert session.run(_noop) == [b"ok", b"ok"]
        assert _session_segments(session.token) == live
    finally:
        session.close()
    assert xbgas_segments() == before, "no segment survives close()"


def _dies_hard(ctx) -> bytes:
    ctx.init()
    if ctx.my_pe() == 1:
        os._exit(23)
    ctx.barrier()
    ctx.close()
    return b"ok"


def _noop(ctx) -> bytes:
    ctx.init()
    ctx.close()
    return b"ok"
