"""Cross-backend conformance: byte-identical collectives, sim vs mp vs vec.

Every collective compiles to one schedule executed purely through the
PE context protocol, so the *same* program must produce byte-identical
output buffers on the deterministic simulator, on true-parallel worker
processes and on the vectorized batch evaluator.  This suite runs one
generic driver program per (collective, payload) pair on all three
backends at 1-16 PEs — including non-powers-of-two, ragged counts and
zero counts — and compares the raw result bytes.  At 1-8 PEs every
case additionally runs on the simulator's *mailbox* transport
(``transport="mailbox"``), which lowers each compiled schedule onto
matched send/recv pairs; those bytes must equal the one-sided run too.

The driver returns only bytes the collective's contract defines (the
root's dest for rooted calls, each rank's slice for scatter, ...);
untouched memory differs by construction (fresh zeroed machine vs
reused shared segments) and is exactly what the contract does not
promise.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from ..conftest import small_config

#: PE counts swept by every conformance case (non-powers-of-2 included).
PE_COUNTS = (1, 2, 3, 4, 8, 16)

_DTYPES = (np.dtype(np.int64), np.dtype(np.uint64), np.dtype(np.int32),
           np.dtype(np.float64))
_INT_DTYPES = tuple(dt for dt in _DTYPES if dt.kind in "iu")


def _payload(rank: int, nelems: int, dtype: np.dtype,
             seed: int) -> np.ndarray:
    """Deterministic per-rank input data, safe for every op/dtype."""
    raw = (np.arange(nelems, dtype=np.int64) * 13 + rank * 5 + seed) % 23
    if dtype.kind == "u":
        return raw.astype(dtype)
    if dtype.kind == "i":
        return (raw - 11).astype(dtype)
    return ((raw - 11) * 0.5).astype(dtype)


def _alloc_strided(ctx, nelems: int, stride: int, itemsize: int) -> int:
    span = ((max(nelems, 1) - 1) * stride + 1) * itemsize
    return ctx.malloc(max(span, 16))


def _collective_program(ctx, spec: dict) -> bytes:
    """Run one collective per ``spec``; return its contract-defined bytes.

    Top-level (picklable) so the multiprocessing backend can ship it to
    the PE workers; the simulator calls it directly.
    """
    kind = spec["kind"]
    dt = spec["dtype"]
    nelems = spec.get("nelems", 0)
    stride = spec.get("stride", 1)
    seed = spec.get("seed", 0)
    root = spec.get("root", 0)
    op = spec.get("op", "sum")

    ctx.init()
    me, n = ctx.my_pe(), ctx.num_pes()
    out = b""

    def read(addr: int, count: int) -> bytes:
        return ctx.view(addr, dt, count, stride).copy().tobytes()

    if kind in ("broadcast", "ibroadcast", "resilient_broadcast"):
        src = _alloc_strided(ctx, nelems, stride, dt.itemsize)
        dest = _alloc_strided(ctx, nelems, stride, dt.itemsize)
        if me == root:
            ctx.view(src, dt, nelems, stride)[:] = _payload(
                root, nelems, dt, seed)
        ctx.barrier()
        if kind == "broadcast":
            ctx.broadcast(dest, src, nelems, stride, root, dt)
        elif kind == "ibroadcast":
            from repro.collectives.nonblocking import ibroadcast

            ibroadcast(ctx, dest, src, nelems, stride, root, dt).wait()
        else:
            res = ctx.resilient_broadcast(dest, src, nelems, stride, root,
                                          dt)
            assert res.complete and not res.restarts
        out = read(dest, nelems)
    elif kind in ("reduce", "ireduce", "resilient_reduce"):
        src = _alloc_strided(ctx, nelems, stride, dt.itemsize)
        dest = _alloc_strided(ctx, nelems, stride, dt.itemsize)
        ctx.view(src, dt, nelems, stride)[:] = _payload(me, nelems, dt, seed)
        ctx.barrier()
        if kind == "reduce":
            ctx.reduce(dest, src, nelems, stride, root, op, dt)
        elif kind == "ireduce":
            from repro.collectives.nonblocking import ireduce

            ireduce(ctx, dest, src, nelems, stride, root, op, dt).wait()
        else:
            res = ctx.resilient_reduce(dest, src, nelems, stride, root,
                                       op, dt)
            assert res.complete and res.contributors == tuple(range(n))
        out = read(dest, nelems) if me == root else b""
    elif kind in ("allreduce", "reduce_all", "scan", "resilient_allreduce"):
        src = _alloc_strided(ctx, nelems, stride, dt.itemsize)
        dest = _alloc_strided(ctx, nelems, stride, dt.itemsize)
        ctx.view(src, dt, nelems, stride)[:] = _payload(me, nelems, dt, seed)
        ctx.barrier()
        if kind == "allreduce":
            ctx.allreduce(dest, src, nelems, stride, op, dt,
                          algorithm=spec.get("algorithm", "doubling"),
                          segments=spec.get("segments"))
        elif kind == "reduce_all":
            ctx.reduce_all(dest, src, nelems, stride, op, dt)
        elif kind == "scan":
            ctx.scan(dest, src, nelems, stride, op, dt,
                     inclusive=spec.get("inclusive", True))
        else:
            res = ctx.resilient_allreduce(dest, src, nelems, stride, op, dt)
            assert res.complete
        out = read(dest, nelems)
    elif kind in ("scatter", "iscatter"):
        counts, disps = spec["counts"], spec["disps"]
        total = sum(counts)
        extent = max((d + c for d, c in zip(disps, counts)), default=0)
        src = ctx.malloc(max(extent * dt.itemsize, 16))
        dest = ctx.malloc(max(max(counts, default=0) * dt.itemsize, 16))
        if me == root:
            ctx.view(src, dt, extent)[:] = _payload(root, extent, dt, seed)
        ctx.barrier()
        if kind == "scatter":
            ctx.scatter(dest, src, counts, disps, total, root, dt)
        else:
            from repro.collectives.nonblocking import iscatter

            iscatter(ctx, dest, src, counts, disps, total, root, dt).wait()
        out = ctx.view(dest, dt, counts[me]).copy().tobytes()
    elif kind in ("gather", "igather", "allgather"):
        counts, disps = spec["counts"], spec["disps"]
        total = sum(counts)
        extent = max((d + c for d, c in zip(disps, counts)), default=0)
        src = ctx.malloc(max(max(counts, default=0) * dt.itemsize, 16))
        dest = ctx.malloc(max(extent * dt.itemsize, 16))
        ctx.view(src, dt, counts[me])[:] = _payload(me, counts[me], dt, seed)
        ctx.barrier()
        if kind == "gather":
            ctx.gather(dest, src, counts, disps, total, root, dt)
            out = (ctx.view(dest, dt, extent).copy().tobytes()
                   if me == root else b"")
        elif kind == "igather":
            from repro.collectives.nonblocking import igather

            igather(ctx, dest, src, counts, disps, total, root, dt).wait()
            out = (ctx.view(dest, dt, extent).copy().tobytes()
                   if me == root else b"")
        else:
            ctx.allgather(dest, src, counts, disps, total, dt,
                          algorithm=spec.get("algorithm", "tree"),
                          segments=spec.get("segments", 1))
            out = ctx.view(dest, dt, extent).copy().tobytes()
    elif kind == "reduce_scatter":
        counts, disps = spec["counts"], spec["disps"]
        total = sum(counts)
        src = ctx.malloc(max(total * dt.itemsize, 16))
        dest = ctx.malloc(max(max(counts, default=0) * dt.itemsize, 16))
        ctx.view(src, dt, total)[:] = _payload(me, total, dt, seed)
        ctx.barrier()
        ctx.reduce_scatter(dest, src, counts, disps, total, op, dt,
                           algorithm=spec.get("algorithm", "auto"),
                           segments=spec.get("segments", 1))
        out = ctx.view(dest, dt, counts[me]).copy().tobytes()
    elif kind == "alltoall":
        blk = spec["block"]
        src = ctx.malloc(max(blk * n * dt.itemsize, 16))
        dest = ctx.malloc(max(blk * n * dt.itemsize, 16))
        ctx.view(src, dt, blk * n)[:] = _payload(me, blk * n, dt, seed)
        ctx.barrier()
        ctx.alltoall(dest, src, blk, dt)
        out = ctx.view(dest, dt, blk * n).copy().tobytes()
    elif kind == "put_ring":
        src = _alloc_strided(ctx, nelems, stride, dt.itemsize)
        dest = _alloc_strided(ctx, nelems, stride, dt.itemsize)
        ctx.view(dest, dt, nelems, stride)[:] = _payload(-1, nelems, dt, 0)
        ctx.view(src, dt, nelems, stride)[:] = _payload(me, nelems, dt, seed)
        ctx.barrier()
        ctx.put(dest, src, nelems, stride, (me + 1) % n, dt)
        ctx.barrier()
        out = read(dest, nelems)
    elif kind == "get_ring":
        src = _alloc_strided(ctx, nelems, stride, dt.itemsize)
        dest = _alloc_strided(ctx, nelems, stride, dt.itemsize)
        ctx.view(src, dt, nelems, stride)[:] = _payload(me, nelems, dt, seed)
        ctx.barrier()
        h = ctx.get_nb(dest, src, nelems, stride, (me + 1) % n, dt)
        ctx.wait(h)
        ctx.quiet()
        out = read(dest, nelems)
    elif kind == "amo":
        cell = ctx.malloc(16)
        if me == 0:
            ctx.view(cell, np.dtype(np.uint64), 1)[0] = seed % 1000
        ctx.barrier()
        # Commutative ops only: the final value is order-independent,
        # which is what makes it comparable across backends.
        ctx.amo(cell, (me + 1) * 3 + seed % 7, 0, op, np.dtype(np.uint64))
        ctx.barrier()
        out = ctx.view_on(0, cell, np.dtype(np.uint64), 1).copy().tobytes()
    elif kind == "superstep_batch":
        # K same-shape allreduces, eager then deferred through one
        # superstep flush (the widened path at stride 1, per-request
        # execution otherwise).  The contract is byte-identity: the
        # deferred results must equal the eager ones on every backend.
        batch = spec.get("batch", 4)
        srcs, eag, dfr = [], [], []
        for j in range(batch):
            srcs.append(_alloc_strided(ctx, nelems, stride, dt.itemsize))
            eag.append(_alloc_strided(ctx, nelems, stride, dt.itemsize))
            dfr.append(_alloc_strided(ctx, nelems, stride, dt.itemsize))
            ctx.view(srcs[j], dt, nelems, stride)[:] = _payload(
                me, nelems, dt, seed + j)
        ctx.barrier()
        for j in range(batch):
            ctx.allreduce(eag[j], srcs[j], nelems, stride, op, dt)
        with ctx.superstep():
            for j in range(batch):
                ctx.allreduce(dfr[j], srcs[j], nelems, stride, op, dt)
        for j in range(batch):
            assert read(dfr[j], nelems) == read(eag[j], nelems), (
                f"superstep batch request {j} diverged from eager")
        out = b"".join(read(dfr[j], nelems) for j in range(batch))
    elif kind == "superstep_mixed":
        # A mixed superstep — broadcast + reduce + allreduce at
        # different roots plus a deferred ring put — exercising the
        # fused-schedule path and transfer coalescing, checked
        # byte-for-byte against the eager sequence.
        r2 = (root + 1) % n
        bufs = {}
        for name in ("bsrc", "rsrc", "asrc", "psrc",
                     "beag", "reag", "aeag", "peag",
                     "bdfr", "rdfr", "adfr", "pdfr"):
            bufs[name] = _alloc_strided(ctx, nelems, 1, dt.itemsize)
        if me == root:
            ctx.view(bufs["bsrc"], dt, nelems)[:] = _payload(
                root, nelems, dt, seed)
        ctx.view(bufs["rsrc"], dt, nelems)[:] = _payload(me, nelems, dt,
                                                         seed + 1)
        ctx.view(bufs["asrc"], dt, nelems)[:] = _payload(me, nelems, dt,
                                                         seed + 2)
        ctx.view(bufs["psrc"], dt, nelems)[:] = _payload(me, nelems, dt,
                                                         seed + 3)
        for name in ("peag", "pdfr"):
            ctx.view(bufs[name], dt, nelems)[:] = _payload(-1, nelems,
                                                           dt, 0)
        ctx.barrier()
        peer = (me + 1) % n
        ctx.broadcast(bufs["beag"], bufs["bsrc"], nelems, 1, root, dt)
        ctx.reduce(bufs["reag"], bufs["rsrc"], nelems, 1, r2, op, dt)
        ctx.allreduce(bufs["aeag"], bufs["asrc"], nelems, 1, op, dt)
        ctx.put(bufs["peag"], bufs["psrc"], nelems, 1, peer, dt)
        ctx.barrier()
        with ctx.superstep():
            ctx.put(bufs["pdfr"], bufs["psrc"], nelems, 1, peer, dt)
            ctx.broadcast(bufs["bdfr"], bufs["bsrc"], nelems, 1, root, dt)
            ctx.reduce(bufs["rdfr"], bufs["rsrc"], nelems, 1, r2, op, dt)
            ctx.allreduce(bufs["adfr"], bufs["asrc"], nelems, 1, op, dt)
        ctx.barrier()
        pairs = [("bdfr", "beag"), ("adfr", "aeag"), ("pdfr", "peag")]
        if me == r2:
            pairs.append(("rdfr", "reag"))
        for dfr_name, eag_name in pairs:
            assert read(bufs[dfr_name], nelems) == read(
                bufs[eag_name], nelems), (
                f"superstep {dfr_name} diverged from eager")
        out = b"".join(read(bufs[d], nelems) for d, _ in pairs)
    elif kind == "team_barrier":
        # Two disjoint teams exchange data guarded only by team barriers.
        team = tuple(r for r in range(n) if r % 2 == me % 2)
        dest = ctx.malloc(16)
        ctx.view(dest, np.dtype(np.int64), 1)[0] = -1
        ctx.barrier()
        if len(team) > 1:
            idx = team.index(me)
            peer = team[(idx + 1) % len(team)]
            src = ctx.private_malloc(8)
            ctx.view(src, np.dtype(np.int64), 1)[0] = me * 101 + seed
            ctx.put(dest, src, 1, 1, peer, np.dtype(np.int64))
            ctx.barrier_team(team)
        out = ctx.view(dest, np.dtype(np.int64), 1).copy().tobytes()
    else:  # pragma: no cover - spec typo guard
        raise ValueError(f"unknown conformance kind {kind!r}")

    ctx.close()
    return out


def _run_all(mp_sessions, sim_backend, vec_backend, n_pes: int,
             spec: dict) -> None:
    """Run the spec on every backend/transport and compare per-rank bytes."""
    args = [(spec,) for _ in range(n_pes)]
    sim = sim_backend.run(_collective_program, args,
                          config=small_config(n_pes))
    vec = vec_backend.run(_collective_program, args,
                          config=small_config(n_pes))
    assert sim == vec, (
        f"sim/vec divergence for {spec} at {n_pes} PEs: "
        f"{[s[:32] for s in sim]} != {[v[:32] for v in vec]}"
    )
    if n_pes <= 8:
        # The mailbox transport lowers every schedule onto send/recv
        # pairs; results must stay byte-identical to one-sided.  Capped
        # at 8 PEs to keep the per-example simulation cost bounded.
        mbx = sim_backend.run(_collective_program, args,
                              config=small_config(n_pes),
                              transport="mailbox")
        assert sim == mbx, (
            f"onesided/mailbox divergence for {spec} at {n_pes} PEs: "
            f"{[s[:32] for s in sim]} != {[m[:32] for m in mbx]}"
        )
    mp_res = mp_sessions.get(n_pes).run(_collective_program, args)
    assert sim == mp_res, (
        f"sim/mp divergence for {spec} at {n_pes} PEs: "
        f"{[s[:32] for s in sim]} != {[m[:32] for m in mp_res]}"
    )


def _ragged(draw, n_pes: int):
    """Ragged per-PE counts (zeros included) with packed displacements."""
    counts = draw(st.lists(st.integers(0, 4), min_size=n_pes,
                           max_size=n_pes))
    disps, acc = [], 0
    for c in counts:
        disps.append(acc)
        acc += c
    return counts, disps


@st.composite
def _dense_spec(draw):
    return {
        "n_pes": draw(st.sampled_from(PE_COUNTS)),
        "nelems": draw(st.integers(0, 17)),
        "stride": draw(st.integers(1, 3)),
        "seed": draw(st.integers(0, 999)),
        "dtype": draw(st.sampled_from(_DTYPES)),
    }


_SETTINGS = settings(
    max_examples=8, deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@pytest.mark.parametrize("kind", ["broadcast", "ibroadcast",
                                  "resilient_broadcast"])
@given(spec=_dense_spec(), root_pick=st.integers(0, 7))
@_SETTINGS
def test_broadcast_family(mp_sessions, sim_backend, vec_backend, kind,
                          spec, root_pick):
    n = spec.pop("n_pes")
    spec.update(kind=kind, root=root_pick % n)
    _run_all(mp_sessions, sim_backend, vec_backend, n, spec)


@pytest.mark.parametrize("kind", ["reduce", "ireduce", "resilient_reduce"])
@given(spec=_dense_spec(), root_pick=st.integers(0, 7),
       op=st.sampled_from(["sum", "min", "max", "prod", "xor"]))
@_SETTINGS
def test_reduce_family(mp_sessions, sim_backend, vec_backend, kind, spec,
                       root_pick, op):
    n = spec.pop("n_pes")
    if op == "xor" and spec["dtype"].kind == "f":
        spec["dtype"] = np.dtype(np.int64)
    spec.update(kind=kind, root=root_pick % n, op=op)
    _run_all(mp_sessions, sim_backend, vec_backend, n, spec)


@pytest.mark.parametrize("kind,algorithm", [
    ("allreduce", "doubling"),
    ("allreduce", "ring"),
    ("allreduce", "rabenseifner"),
    ("allreduce", "dual-pipelined"),
    ("reduce_all", None),
    ("scan", None),
    ("resilient_allreduce", None),
])
@given(spec=_dense_spec(), op=st.sampled_from(["sum", "min", "max"]),
       inclusive=st.booleans(), segments=st.integers(1, 5))
@_SETTINGS
def test_allreduce_family(mp_sessions, sim_backend, vec_backend, kind,
                          algorithm, spec, op, inclusive, segments):
    n = spec.pop("n_pes")
    spec.update(kind=kind, op=op, inclusive=inclusive)
    if algorithm:
        spec["algorithm"] = algorithm
    if algorithm == "dual-pipelined":
        spec["segments"] = segments
    _run_all(mp_sessions, sim_backend, vec_backend, n, spec)


@given(spec=_dense_spec(), op=st.sampled_from(["sum", "min", "max"]),
       batch=st.integers(2, 6))
@_SETTINGS
def test_superstep_batch(mp_sessions, sim_backend, vec_backend, spec, op,
                         batch):
    """K deferred same-shape allreduces flushed as one superstep stay
    byte-identical to the eager sequence (asserted inside the program)
    AND across sim/mp/vec."""
    n = spec.pop("n_pes")
    spec.update(kind="superstep_batch", op=op, batch=batch)
    _run_all(mp_sessions, sim_backend, vec_backend, n, spec)


@given(spec=_dense_spec(), op=st.sampled_from(["sum", "min", "max"]),
       root_pick=st.integers(0, 7))
@_SETTINGS
def test_superstep_mixed(mp_sessions, sim_backend, vec_backend, spec, op,
                         root_pick):
    """A mixed superstep — deferred put + broadcast + reduce +
    allreduce at different roots — flushes through the fused-schedule
    path byte-identically to eager on all three backends."""
    n = spec.pop("n_pes")
    spec.update(kind="superstep_mixed", op=op, root=root_pick % n,
                stride=1)
    _run_all(mp_sessions, sim_backend, vec_backend, n, spec)


@pytest.mark.parametrize("kind", ["scatter", "iscatter", "gather",
                                  "igather", "allgather"])
@given(data=st.data())
@_SETTINGS
def test_vector_family(mp_sessions, sim_backend, vec_backend, kind, data):
    n = data.draw(st.sampled_from(PE_COUNTS))
    counts, disps = _ragged(data.draw, n)
    spec = {
        "kind": kind,
        "counts": counts,
        "disps": disps,
        "root": data.draw(st.integers(0, n - 1)),
        "seed": data.draw(st.integers(0, 999)),
        "dtype": data.draw(st.sampled_from(_DTYPES)),
    }
    _run_all(mp_sessions, sim_backend, vec_backend, n, spec)


@pytest.mark.parametrize("kind,algorithm,segments", [
    ("allgather", "dissemination", 1),
    ("allgather", "pat", 1),
    ("allgather", "pat", 3),
    ("reduce_scatter", "ring", 1),
    ("reduce_scatter", "pat", 1),
    ("reduce_scatter", "pat", 3),
])
@given(data=st.data())
@_SETTINGS
def test_vector_algorithms(mp_sessions, sim_backend, vec_backend, kind,
                           algorithm, segments, data):
    """The compiled vector-collective algorithms — including the
    pipelined PAT schedules — stay byte-identical across backends on
    hypothesis-drawn ragged shapes (zero-count PEs included)."""
    n = data.draw(st.sampled_from(PE_COUNTS))
    counts, disps = _ragged(data.draw, n)
    spec = {
        "kind": kind,
        "counts": counts,
        "disps": disps,
        "algorithm": algorithm,
        "segments": segments,
        "op": data.draw(st.sampled_from(["sum", "max"])),
        "seed": data.draw(st.integers(0, 999)),
        "dtype": data.draw(st.sampled_from(_DTYPES)),
    }
    _run_all(mp_sessions, sim_backend, vec_backend, n, spec)


@given(data=st.data())
@_SETTINGS
def test_alltoall(mp_sessions, sim_backend, vec_backend, data):
    n = data.draw(st.sampled_from(PE_COUNTS))
    spec = {
        "kind": "alltoall",
        "block": data.draw(st.integers(1, 4)),
        "seed": data.draw(st.integers(0, 999)),
        "dtype": data.draw(st.sampled_from(_DTYPES)),
    }
    _run_all(mp_sessions, sim_backend, vec_backend, n, spec)


@pytest.mark.parametrize("kind", ["put_ring", "get_ring"])
@given(spec=_dense_spec())
@_SETTINGS
def test_one_sided(mp_sessions, sim_backend, vec_backend, kind, spec):
    n = spec.pop("n_pes")
    spec["kind"] = kind
    _run_all(mp_sessions, sim_backend, vec_backend, n, spec)


@given(data=st.data())
@_SETTINGS
def test_amo(mp_sessions, sim_backend, vec_backend, data):
    n = data.draw(st.sampled_from(PE_COUNTS))
    spec = {
        "kind": "amo",
        "op": data.draw(st.sampled_from(["add", "xor", "min", "max"])),
        "seed": data.draw(st.integers(0, 999)),
        "dtype": np.dtype(np.uint64),
    }
    _run_all(mp_sessions, sim_backend, vec_backend, n, spec)


@given(seed=st.integers(0, 999))
@_SETTINGS
def test_team_barrier(mp_sessions, sim_backend, vec_backend, seed):
    for n in (1, 4, 8, 16):
        _run_all(mp_sessions, sim_backend, vec_backend, n,
                  {"kind": "team_barrier", "seed": seed,
                   "dtype": np.dtype(np.int64)})


def test_disjoint_teams_concurrent_matches_sequential(mp_sessions):
    """Two teams running *different* collectives at the same time on one
    mp session produce exactly the bytes the same runs produce back to
    back — team-scoped scheduling adds no cross-talk."""
    from repro.serve.programs import run_collective_job

    session = mp_sessions.get(4)
    job_a = {"collective": "allreduce", "nelems": 96, "dtype": "long",
             "seed": 11}
    job_b = {"collective": "allgather", "nelems": 32, "dtype": "double",
             "seed": 12}

    ticket_a = session.submit(run_collective_job, [(job_a,)] * 2,
                              ranks=(0, 1))
    ticket_b = session.submit(run_collective_job, [(job_b,)] * 2,
                              ranks=(2, 3))
    concurrent = (session.wait(ticket_a), session.wait(ticket_b))

    sequential = tuple(
        session.wait(session.submit(run_collective_job, [(job,)] * 2,
                                    ranks=ranks))
        for job, ranks in ((job_a, (0, 1)), (job_b, (2, 3)))
    )
    assert concurrent == sequential

    # Placement independence: payloads are group-relative, so the same
    # jobs swapped onto the *other* ranks still return the same bytes.
    swapped = (
        session.wait(session.submit(run_collective_job, [(job_a,)] * 2,
                                    ranks=(2, 3))),
        session.wait(session.submit(run_collective_job, [(job_b,)] * 2,
                                    ranks=(0, 1))),
    )
    assert swapped == sequential
