"""Unit tests for team-scoped (rank-subset) runs on the mp session.

The ticket API (`submit`/`pump`/`wait`/`finish`) is what the serving
layer multiplexes tenants with; these tests pin its contract directly:
admission validation, disjointness, group-scoped synchronisation and
the payload-scaled watchdog.
"""

from __future__ import annotations

import pytest

from repro.errors import RuntimeStateError

from ..conftest import small_config


def _team_sum(ctx) -> int:
    """Allreduce each member's world rank over the (default) group."""
    ctx.init()
    buf = ctx.malloc(8)
    ctx.view(buf, "long", 1)[0] = ctx.my_pe()
    ctx.barrier()
    ctx.allreduce(buf, buf, 1, 1, "sum", "long")
    total = int(ctx.view(buf, "long", 1)[0])
    ctx.close()
    return total


def test_subset_run_scopes_collectives_to_the_team(mp_sessions):
    session = mp_sessions.get(4)
    assert session.wait(session.submit(_team_sum, ranks=(0, 2))) == [2, 2]
    assert session.wait(session.submit(_team_sum, ranks=(1, 3))) == [4, 4]
    # World submission still sums everyone.
    assert session.run(_team_sum) == [6, 6, 6, 6]


def test_disjoint_subsets_run_concurrently(mp_sessions):
    session = mp_sessions.get(4)
    low = session.submit(_team_sum, ranks=(0, 1))
    high = session.submit(_team_sum, ranks=(2, 3))
    assert session.wait(high) == [5, 5]
    assert session.wait(low) == [1, 1]


def test_overlapping_submit_rejected_while_outstanding(mp_sessions):
    session = mp_sessions.get(4)
    ticket = session.submit(_team_sum, ranks=(0, 1))
    try:
        with pytest.raises(RuntimeStateError, match="busy"):
            session.submit(_team_sum, ranks=(1, 2))
        with pytest.raises(RuntimeStateError):
            session.submit(_team_sum)  # world needs every PE free
    finally:
        assert session.wait(ticket) == [1, 1]
    # Once released, the previously-overlapping ranks are usable again.
    assert session.wait(session.submit(_team_sum, ranks=(1, 2))) == [3, 3]


def test_submit_validates_rank_lists(mp_sessions):
    session = mp_sessions.get(4)
    with pytest.raises(ValueError, match="zero ranks"):
        session.submit(_team_sum, ranks=())
    with pytest.raises(ValueError, match="duplicate"):
        session.submit(_team_sum, ranks=(1, 1))
    with pytest.raises(ValueError, match="out of range"):
        session.submit(_team_sum, ranks=(0, 4))
    assert session.run(_team_sum) == [6, 6, 6, 6]


def test_finish_requires_completion_and_is_single_shot(mp_sessions):
    session = mp_sessions.get(4)
    ticket = session.submit(_team_sum, ranks=(0, 1))
    while not ticket.complete:
        session.pump(0.05)
    assert session.finish(ticket) == [1, 1]
    with pytest.raises(RuntimeStateError, match="already finalized"):
        session.finish(ticket)


def test_payload_scales_the_watchdog_deadline(mp_sessions):
    from repro.backends.mp import TIMEOUT_BYTES_PER_S

    session = mp_sessions.get(4)
    nbytes = 16 * TIMEOUT_BYTES_PER_S
    ticket = session.submit(_team_sum, ranks=(0, 1), timeout=5.0,
                            payload_nbytes=nbytes)
    assert ticket.limit == pytest.approx(21.0)
    assert session.wait(ticket) == [1, 1]
