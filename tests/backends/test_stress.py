"""Torture tests for the multiprocessing backend (``stress`` marker).

Randomised put/get/amo/barrier storms across true-parallel workers,
plus the failure paths that matter in production: a worker raising
mid-collective, a deliberate deadlock hitting the watchdog, and the
orphan checks that no worker process or shared-memory segment survives
any of it.  Slow by design — run with ``-m stress`` (CI's backends job
does; the default run excludes them).
"""

from __future__ import annotations

import multiprocessing as mp
import os

import numpy as np
import pytest

from repro.backends import MPSession
from repro.backends.shm import segment_prefix
from repro.errors import BackendTimeoutError, WorkerFailedError

from ..conftest import small_config
from .conftest import xbgas_children, xbgas_segments

pytestmark = pytest.mark.stress


def _torture(ctx, seed: int, rounds: int) -> bytes:
    """Randomised one-sided traffic with single-writer disjoint regions.

    Each PE owns slot ``rank`` of a symmetric table on every peer; only
    PE ``r`` ever writes slot ``r``, so despite the random traffic the
    final state is deterministic and identical on every backend run.
    """
    ctx.init()
    me, n = ctx.my_pe(), ctx.num_pes()
    slots = 8
    table = ctx.malloc(8 * n * slots)
    counter = ctx.malloc(16)
    view = ctx.view(table, "uint64", n * slots)
    view[me * slots:(me + 1) * slots] = 0
    if me == 0:
        ctx.view(counter, "uint64", 1)[0] = 0
    ctx.barrier()

    rng = np.random.default_rng(seed * 1000 + me)
    scratch = ctx.private_malloc(8 * slots)
    sv = ctx.view(scratch, "uint64", slots)
    for round_no in range(rounds):
        target = int(rng.integers(0, n))
        slot_base = table + 8 * me * slots
        sv[:] = rng.integers(0, 2**32, size=slots, dtype=np.uint64)
        op = int(rng.integers(0, 3))
        if op == 0:
            ctx.put(slot_base, scratch, slots, 1, target, "uint64")
        elif op == 1:
            ctx.get(scratch, slot_base, slots, 1, target, "uint64")
        else:
            ctx.amo(counter, 1, 0, "add", "uint64")
        if round_no % 7 == 0:  # rank-uniform: every PE barriers together
            ctx.barrier()
    ctx.barrier()
    # Every PE wrote its own slots last under a closing barrier, so the
    # AMO counter equals the global number of op==2 draws.
    total = int(ctx.view_on(0, counter, "uint64", 1)[0])
    ctx.close()
    return total.to_bytes(8, "little")


def _raises_mid_collective(ctx) -> bytes:
    ctx.init()
    buf = ctx.malloc(64)
    ctx.view(buf, "long", 8)[:] = ctx.my_pe()
    if ctx.my_pe() == 2:
        raise RuntimeError("injected worker failure")
    ctx.allreduce(buf, buf, 8, 1, "sum", "long")
    ctx.close()
    return b"survived"


def _deadlocks(ctx) -> bytes:
    ctx.init()
    if ctx.my_pe() == 0:
        ctx.close()  # PE 0 leaves: everyone else waits forever
        return b"left"
    ctx.barrier()
    ctx.close()
    return b"unreachable"


@pytest.mark.timeout(300)
def test_randomized_torture(mp_sessions):
    """Many randomised rounds; AMO totals must agree across repeats."""
    session = mp_sessions.get(4)
    first = session.run(_torture, [(7, 60) for _ in range(4)])
    again = session.run(_torture, [(7, 60) for _ in range(4)])
    assert first == again, "same seed must reproduce the same final state"
    assert len(set(first)) == 1, "all PEs must agree on the AMO total"


@pytest.mark.timeout(300)
def test_worker_failure_recovers_and_session_survives(mp_sessions):
    """A raising worker aborts peers, reports, and leaves a usable pool."""
    session = mp_sessions.get(4)
    with pytest.raises(WorkerFailedError) as err:
        session.run(_raises_mid_collective)
    assert 2 in err.value.failures
    assert "injected worker failure" in err.value.failures[2]
    # Same pool, next run: clean.
    result = session.run(_torture, [(3, 10) for _ in range(4)])
    assert len(set(result)) == 1
    assert xbgas_children(), "pool should still be alive after recovery"


@pytest.mark.timeout(300)
def test_deadlock_hits_watchdog_not_forever():
    """A mismatched barrier ends in a timeout error, not a hang."""
    before = {p.pid for p in xbgas_children()}
    session = MPSession(small_config(3), timeout=3.0)
    try:
        with pytest.raises((BackendTimeoutError, WorkerFailedError)) as err:
            session.run(_deadlocks)
        # Whichever side noticed first, the diagnosis names a timeout.
        assert "imed out" in str(err.value) or "exceeded" in str(err.value) \
            or "BackendTimeoutError" in str(err.value)
        # The session recovered: it can still run programs.
        out = session.run(_torture, [(1, 5) for _ in range(3)])
        assert len(set(out)) == 1
    finally:
        session.close()
    leaked = [p for p in xbgas_children() if p.pid not in before]
    assert leaked == [], "workers leaked past close()"


@pytest.mark.timeout(300)
def test_no_leaks_after_worker_raise():
    """Teardown right after a failed run leaks nothing."""
    before = xbgas_segments()
    before_pids = {p.pid for p in xbgas_children()}
    session = MPSession(small_config(4), timeout=30.0)
    token = session.token
    with pytest.raises(WorkerFailedError):
        session.run(_raises_mid_collective)
    session.close()
    assert not [s for s in xbgas_segments()
                if s.startswith(segment_prefix(token))]
    assert xbgas_segments() == before
    assert [p for p in xbgas_children() if p.pid not in before_pids] == []


@pytest.mark.timeout(300)
def test_many_sessions_no_accumulation():
    """Open/run/close in a loop: stable process and segment census."""
    before_seg = xbgas_segments()
    before_pids = {p.pid for p in xbgas_children()}
    for i in range(3):
        with MPSession(small_config(2), timeout=30.0) as session:
            out = session.run(_torture, [(i, 8), (i, 8)])
            assert len(set(out)) == 1
    assert xbgas_segments() == before_seg
    assert [p for p in xbgas_children() if p.pid not in before_pids] == []


@pytest.mark.timeout(300)
def test_concurrent_amo_no_lost_updates():
    """The AMO lock serialises fetch-and-add: exact count, no losses."""

    session = MPSession(small_config(4), timeout=60.0)
    try:
        out = session.run(_amo_hammer, [(500,) for _ in range(4)])
        assert all(v == (4 * 500).to_bytes(8, "little") for v in out)
    finally:
        session.close()


def _amo_hammer(ctx, updates: int) -> bytes:
    ctx.init()
    cell = ctx.malloc(16)
    if ctx.my_pe() == 0:
        ctx.view(cell, "uint64", 1)[0] = 0
    ctx.barrier()
    for _ in range(updates):
        ctx.amo(cell, 1, 0, "add", "uint64")
    ctx.barrier()
    value = int(ctx.view_on(0, cell, "uint64", 1)[0])
    ctx.close()
    return value.to_bytes(8, "little")
