"""Fixtures for the backend suites: cached worker pools + leak checks.

Spawning a worker pool per test would dominate the suite's runtime, so
one :class:`~repro.backends.mp.MPSession` per PE count is shared across
the whole session and torn down at the end — which is itself a test:
the session-level finalizer asserts that closing the pools leaves no
worker process and no ``/dev/shm`` segment behind.
"""

from __future__ import annotations

import multiprocessing as mp
import os

import pytest

from repro.backends import MPSession, SimulatorBackend, VecBackend

from ..conftest import small_config

#: Where POSIX shared memory lives (segment leak checks).
SHM_DIR = "/dev/shm"


def xbgas_segments() -> list[str]:
    """All xbgas shared-memory segments currently in ``/dev/shm``."""
    try:
        return sorted(f for f in os.listdir(SHM_DIR) if f.startswith("xbgas-"))
    except FileNotFoundError:  # non-tmpfs platform: skip-only suites
        return []


def xbgas_children() -> list[mp.Process]:
    """Live PE worker processes spawned from this process."""
    return [p for p in mp.active_children()
            if (p.name or "").startswith("xbgas-pe")]


class _SessionCache:
    """Lazily built, session-shared MPSession per PE count."""

    def __init__(self):
        self._sessions: dict[int, MPSession] = {}

    def get(self, n_pes: int) -> MPSession:
        if n_pes not in self._sessions:
            self._sessions[n_pes] = MPSession(small_config(n_pes),
                                              timeout=60.0)
        return self._sessions[n_pes]

    def close_all(self) -> None:
        for session in self._sessions.values():
            session.close()
        self._sessions.clear()


@pytest.fixture(scope="session")
def mp_sessions():
    """Shared MPSession cache; the teardown doubles as a leak test."""
    before_segments = xbgas_segments()
    cache = _SessionCache()
    yield cache
    cache.close_all()
    assert xbgas_children() == [], "worker processes leaked past close()"
    leaked = [s for s in xbgas_segments() if s not in before_segments]
    assert leaked == [], f"shared-memory segments leaked: {leaked}"


@pytest.fixture(scope="session")
def sim_backend() -> SimulatorBackend:
    return SimulatorBackend()


@pytest.fixture(scope="session")
def vec_backend() -> VecBackend:
    """Vectorized backend; worlds are per-run, so no cache is needed."""
    return VecBackend()
