"""The vectorized evaluator: outputs, makespans, determinism, scale.

Four properties anchor the ``vec`` substrate:

* **Outputs are exact** — the standalone
  :func:`~repro.collectives.schedule.evaluate.evaluate_schedule` produces
  the same bytes as the schedule's mathematical contract and as a vec
  *session* running the full runtime (the three-way suite in
  ``test_conformance.py`` already ties sessions to sim and mp).
* **Makespans track the simulator** — the closed-form cost model stays
  within a pinned relative tolerance of the simulator's modelled ``ns``
  across collectives, algorithms, payload sizes and PE counts.
* **Evaluation is deterministic** — same schedule, same bytes, same
  clocks, every time.
* **It scales** — a 4096-PE allreduce produces outputs *and* makespans
  in seconds (the acceptance bound is 5 s wall-clock).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.collectives.allreduce import compile_allreduce
from repro.collectives.broadcast import compile_broadcast
from repro.collectives.extra import compile_allgather, compile_alltoall
from repro.collectives.gather import compile_gather
from repro.collectives.reduce import compile_reduce
from repro.collectives.scatter import compile_scatter
from repro.collectives.schedule.evaluate import (
    LiteNetwork,
    evaluate_schedule,
)
from repro.collectives.teams import Team
from repro.errors import SimulationError
from repro.params import MachineConfig

from ..conftest import small_config

I64 = np.dtype(np.int64)


def _rank_payload(n: int, nelems: int) -> np.ndarray:
    return (np.arange(nelems, dtype=np.int64)[None, :] * 3
            + np.arange(n, dtype=np.int64)[:, None] * 7 + 1)


# -- standalone outputs -------------------------------------------------------


@pytest.mark.parametrize("n_pes", [1, 2, 3, 4, 8, 16])
def test_broadcast_outputs(n_pes):
    nelems, root = 13, n_pes // 2
    payload = _rank_payload(n_pes, nelems)
    sched = compile_broadcast(n_pes, root, nelems, 1, 8)
    ev = evaluate_schedule(sched, small_config(n_pes), dtype=I64,
                           inputs={"src": payload})
    for r in range(n_pes):
        assert np.array_equal(ev.buffer("dest", r), payload[root])
    assert ev.elapsed_ns > 0
    assert len(ev.makespans) == n_pes


@pytest.mark.parametrize("algorithm", ["doubling", "ring", "rabenseifner"])
@pytest.mark.parametrize("n_pes", [2, 3, 4, 7, 8, 16])
def test_allreduce_outputs(n_pes, algorithm):
    nelems = 16
    payload = _rank_payload(n_pes, nelems)
    sched = compile_allreduce(n_pes, nelems, 1, 8, "sum",
                              algorithm=algorithm)
    ev = evaluate_schedule(sched, small_config(n_pes), dtype=I64,
                           inputs={"src": payload})
    expect = payload.sum(axis=0)
    for r in range(n_pes):
        assert np.array_equal(ev.buffer("dest", r), expect), (
            f"{algorithm} rank {r}"
        )


@pytest.mark.parametrize("n_pes", [1, 3, 5, 8])
def test_reduce_outputs(n_pes):
    nelems, root = 9, n_pes - 1
    payload = _rank_payload(n_pes, nelems)
    sched = compile_reduce(n_pes, root, nelems, 1, 8, "max")
    ev = evaluate_schedule(sched, small_config(n_pes), dtype=I64,
                           inputs={"src": payload})
    assert np.array_equal(ev.buffer("dest", root), payload.max(axis=0))


def test_scatter_gather_ragged_and_zero_counts():
    """Ragged per-PE counts (zeros included) through the standalone path."""
    n, root = 5, 2
    counts = (3, 0, 2, 4, 0)
    disps, acc = [], 0
    for c in counts:
        disps.append(acc)
        acc += c
    total = sum(counts)
    flat = np.arange(total, dtype=np.int64) * 11 + 5

    sched = compile_scatter(n, root, counts, tuple(disps), total, 8)
    ev = evaluate_schedule(
        sched, small_config(n), dtype=I64,
        inputs={"src": [flat if r == root else np.empty(0, np.int64)
                        for r in range(n)]},
    )
    for r in range(n):
        expect = flat[disps[r]:disps[r] + counts[r]]
        assert np.array_equal(ev.buffer("dest", r), expect)

    gsched = compile_gather(n, root, counts, tuple(disps), total, 8)
    per_rank = [flat[disps[r]:disps[r] + counts[r]] for r in range(n)]
    gev = evaluate_schedule(gsched, small_config(n), dtype=I64,
                            inputs={"src": per_rank})
    assert np.array_equal(gev.buffer("dest", root), flat)


def test_allgather_and_alltoall_outputs():
    n = 6
    counts = tuple([2, 1, 0, 3, 2, 1])
    disps, acc = [], 0
    for c in counts:
        disps.append(acc)
        acc += c
    total = sum(counts)
    flat = np.arange(total, dtype=np.int64) - 4
    per_rank = [flat[disps[r]:disps[r] + counts[r]] for r in range(n)]
    sched = compile_allgather(n, counts, tuple(disps), total, 8)
    ev = evaluate_schedule(sched, small_config(n), dtype=I64,
                           inputs={"src": per_rank})
    for r in range(n):
        assert np.array_equal(ev.buffer("dest", r), flat), f"rank {r}"

    blk = 3
    payload = _rank_payload(n, blk * n)
    asched = compile_alltoall(n, blk, 8)
    aev = evaluate_schedule(asched, small_config(n), dtype=I64,
                            inputs={"src": payload})
    for r in range(n):
        expect = payload[:, r * blk:(r + 1) * blk].reshape(-1)
        assert np.array_equal(aev.buffer("dest", r), expect), f"rank {r}"


def test_empty_payload_is_barrier_only():
    sched = compile_broadcast(4, 0, 0, 1, 8)
    ev = evaluate_schedule(sched, small_config(4), dtype=I64)
    assert ev.stats.bytes_put == 0
    assert ev.stats.bytes_on_wire == 0
    assert ev.stats.barriers >= 1
    assert ev.elapsed_ns > 0


# -- standalone vs session ----------------------------------------------------


def _session_allreduce(ctx, nelems):
    ctx.init()
    src = ctx.malloc(8 * nelems)
    dest = ctx.malloc(8 * nelems)
    ctx.view(src, I64, nelems)[:] = _rank_payload(ctx.num_pes(),
                                                  nelems)[ctx.rank]
    ctx.barrier()
    t0 = ctx.pe.clock
    ctx.allreduce(dest, src, nelems, 1, "sum", I64, algorithm="doubling")
    t1 = ctx.pe.clock
    out = ctx.view(dest, I64, nelems).copy()
    ctx.close()
    return out.tobytes(), t0, t1


def test_standalone_matches_vec_session():
    """One schedule, two vec paths (session rendezvous vs compact arena):
    identical bytes and identical modelled duration."""
    from repro.backends import get_backend

    n, nelems = 8, 16
    cfg = small_config(n)
    res = get_backend("vec").run(_session_allreduce, [(nelems,)] * n,
                                 config=cfg)
    sched = compile_allreduce(n, nelems, 1, 8, "sum", algorithm="doubling")
    ev = evaluate_schedule(sched, cfg, dtype=I64,
                           inputs={"src": _rank_payload(n, nelems)})
    for r in range(n):
        assert res[r][0] == ev.buffer("dest", r).tobytes()
    # Durations are close but not identical: the session places buffers
    # on the symmetric heap while the arena packs them at offset 0, so
    # line/page counts (and hence modelled memory cost) differ slightly.
    session_ns = max(t1 for _, _, t1 in res) - max(t0 for _, t0, _ in res)
    assert session_ns == pytest.approx(ev.elapsed_ns, rel=0.2)


# -- makespan agreement with the simulator ------------------------------------


def _timed_collective(ctx, kind, nelems, algo):
    ctx.init()
    src = ctx.malloc(8 * nelems)
    dest = ctx.malloc(8 * nelems)
    ctx.view(src, I64, nelems)[:] = ctx.rank
    ctx.barrier()
    t0 = ctx.pe.clock
    if kind == "allreduce":
        ctx.allreduce(dest, src, nelems, 1, "sum", I64, algorithm=algo)
    elif kind == "broadcast":
        ctx.broadcast(dest, src, nelems, 1, 0, I64)
    else:
        ctx.reduce(dest, src, nelems, 1, 0, "sum", I64)
    t1 = ctx.pe.clock
    ctx.close()
    return t0, t1


#: Pinned agreement bound between the vec cost model and simulated ns.
#: Small payloads diverge most (stateful cache warm-up vs closed form);
#: measured worst case is ~30%, large payloads stay within ~3%.
MAKESPAN_RTOL = 0.35
MAKESPAN_RTOL_LARGE = 0.05


@pytest.mark.parametrize("n_pes,kind,algo,nelems", [
    (4, "broadcast", None, 64),
    (8, "broadcast", None, 1024),
    (8, "reduce", None, 64),
    (4, "allreduce", "doubling", 64),
    (8, "allreduce", "ring", 256),
    (8, "allreduce", "rabenseifner", 1024),
    (16, "allreduce", "doubling", 64),
    (16, "broadcast", None, 1024),
])
def test_makespan_tracks_simulator(n_pes, kind, algo, nelems):
    from repro.backends import get_backend

    cfg = small_config(n_pes)
    res = get_backend("sim").run(_timed_collective,
                                 [(kind, nelems, algo)] * n_pes, config=cfg)
    sim_ns = max(t1 for _, t1 in res) - max(t0 for t0, _ in res)
    if kind == "allreduce":
        sched = compile_allreduce(n_pes, nelems, 1, 8, "sum", algorithm=algo)
    elif kind == "broadcast":
        sched = compile_broadcast(n_pes, 0, nelems, 1, 8)
    else:
        sched = compile_reduce(n_pes, 0, nelems, 1, 8, "sum")
    ev = evaluate_schedule(sched, cfg, dtype=I64)
    rtol = MAKESPAN_RTOL_LARGE if nelems >= 1024 else MAKESPAN_RTOL
    rel = abs(ev.elapsed_ns - sim_ns) / sim_ns
    assert rel <= rtol, (
        f"vec makespan {ev.elapsed_ns:.0f} ns vs sim {sim_ns:.0f} ns: "
        f"relative error {rel:.1%} exceeds the pinned {rtol:.0%}"
    )


# -- determinism --------------------------------------------------------------


def test_evaluation_is_deterministic():
    n, nelems = 8, 64
    payload = _rank_payload(n, nelems)
    sched = compile_allreduce(n, nelems, 1, 8, "sum", algorithm="doubling")
    evs = [evaluate_schedule(sched, small_config(n), dtype=I64,
                             inputs={"src": payload}) for _ in range(2)]
    assert np.array_equal(evs[0].makespans, evs[1].makespans)
    for r in range(n):
        assert np.array_equal(evs[0].buffer("dest", r),
                              evs[1].buffer("dest", r))
    assert evs[0].stats.puts == evs[1].stats.puts
    assert evs[0].stats.messages == evs[1].stats.messages


# -- teams / hierarchy on vec (sim-identical) ---------------------------------


def _team_program(ctx, shape):
    """Team collectives over strided / singleton / full-world member sets."""
    ctx.init()
    me, n = ctx.my_pe(), ctx.num_pes()
    if shape == "strided":
        members = tuple(range(0, n, 2))
    elif shape == "singleton":
        members = (n - 1,)
    else:
        members = tuple(range(n))
    nelems = 8
    src = ctx.malloc(8 * nelems)
    dest = ctx.malloc(8 * nelems)
    acc = ctx.malloc(8 * nelems)
    ctx.view(src, I64, nelems)[:] = _rank_payload(n, nelems)[me]
    ctx.view(dest, I64, nelems)[:] = -1
    ctx.view(acc, I64, nelems)[:] = -1
    ctx.barrier()
    if me in members:
        team = Team(ctx, members)
        team.broadcast(dest, src, nelems, 1, 0, I64)
        team.reduce_all(acc, src, nelems, 1, "sum", I64)
        team.barrier()
    ctx.barrier()
    out = (ctx.view(dest, I64, nelems).copy().tobytes(),
           ctx.view(acc, I64, nelems).copy().tobytes())
    ctx.close()
    return out


@pytest.mark.parametrize("shape", ["strided", "singleton", "world"])
@pytest.mark.parametrize("n_pes", [4, 8])
def test_team_collectives_match_sim(shape, n_pes):
    from repro.backends import get_backend

    cfg = small_config(n_pes)
    sim = get_backend("sim").run(_team_program, [(shape,)] * n_pes,
                                 config=cfg)
    vec = get_backend("vec").run(_team_program, [(shape,)] * n_pes,
                                 config=cfg)
    assert sim == vec


def _hierarchical_program(ctx):
    ctx.init()
    nelems = 8
    src = ctx.malloc(8 * nelems)
    dest = ctx.malloc(8 * nelems)
    ctx.view(src, I64, nelems)[:] = _rank_payload(ctx.num_pes(),
                                                  nelems)[ctx.my_pe()]
    ctx.barrier()
    ctx.reduce(dest, src, nelems, 1, 0, "sum", I64, algorithm="hierarchical")
    out = (ctx.view(dest, I64, nelems).copy().tobytes()
           if ctx.my_pe() == 0 else b"")
    ctx.close()
    return out


def test_hierarchical_reduce_matches_sim():
    """Composed two-level trees rendezvous per sub-schedule on vec."""
    from repro.backends import get_backend

    cfg = small_config(8, cores_per_node=4)
    sim = get_backend("sim").run(_hierarchical_program, config=cfg)
    vec = get_backend("vec").run(_hierarchical_program, config=cfg)
    assert sim == vec


# -- scale (the acceptance bound) ---------------------------------------------


@pytest.mark.parametrize("algorithm", ["doubling", "rabenseifner"])
def test_4096_pe_allreduce_under_five_seconds(algorithm):
    """Acceptance: outputs + makespans for a 4096-PE allreduce in < 5 s."""
    n, nelems = 4096, 8
    payload = _rank_payload(n, nelems)
    t0 = time.perf_counter()
    sched = compile_allreduce(n, nelems, 1, 8, "sum", algorithm=algorithm)
    ev = evaluate_schedule(sched, dtype=I64, inputs={"src": payload})
    wall = time.perf_counter() - t0
    assert wall < 5.0, f"4096-PE allreduce took {wall:.1f}s (budget 5s)"
    expect = payload.sum(axis=0)
    for r in (0, 1, 2047, 4095):
        assert np.array_equal(ev.buffer("dest", r), expect)
    assert len(ev.makespans) == n
    assert np.isfinite(ev.makespans).all()
    assert (ev.makespans > 0).all()


def test_64k_pe_cost_only_evaluation():
    """collect_data=False keeps no arena: 64k-PE makespans, no bytes."""
    n = 65536
    sched = compile_broadcast(n, 0, 4, 1, 8)
    t0 = time.perf_counter()
    ev = evaluate_schedule(sched, dtype=I64, collect_data=False)
    wall = time.perf_counter() - t0
    assert wall < 10.0, f"64k-PE evaluation took {wall:.1f}s (budget 10s)"
    assert len(ev.makespans) == n
    assert float(ev.makespans.min()) > 0
    with pytest.raises(SimulationError):
        ev.buffer("dest", 0)


# -- guard rails --------------------------------------------------------------


def test_session_pe_cap():
    from repro.backends import get_backend
    from repro.errors import RuntimeStateError

    with pytest.raises(RuntimeStateError, match="evaluate_schedule"):
        get_backend("vec").session(n_pes=2048)


def test_lite_network_rejects_huge_graph_topologies():
    cfg = MachineConfig(n_pes=65536, cores_per_node=1, topology="ring")
    with pytest.raises(SimulationError, match="too "):
        LiteNetwork(cfg)


def test_lite_network_matches_network_formulas():
    """Same send/fetch arithmetic as the stateful Network (no faults)."""
    from repro.machine.network import Network
    from repro.sim.trace import SimStats

    cfg = small_config(8, cores_per_node=2)
    real = Network(cfg, SimStats())
    lite = LiteNetwork(cfg)
    seq = [(0.0, 0, 1, 64), (10.0, 0, 5, 256), (12.0, 3, 4, 8),
           (50.0, 7, 0, 1024), (60.0, 2, 2, 16)]
    for t, s, d, nb in seq:
        r = real.send(t, s, d, nb)
        free, deliv = lite.send(t, s, d, nb)
        assert free == pytest.approx(r.t_source_free)
        assert deliv == pytest.approx(r.t_delivered)
    for t, s, d, nb in seq:
        r = real.fetch(t, s, d, nb)
        assert lite.fetch(t, s, d, nb) == pytest.approx(r.t_complete)
    assert lite.quiescence_time() == pytest.approx(real.quiescence_time())
