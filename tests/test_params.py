"""Tests for machine/cost-model parameters."""

from __future__ import annotations

import pytest

from repro.params import (
    CacheParams,
    MachineConfig,
    MemoryParams,
    mpi_transport,
    paper_machine,
    rdma_transport,
    xbgas_transport,
)


class TestCacheParams:
    def test_paper_l1_geometry(self):
        l1 = MemoryParams().l1
        assert l1.size_bytes == 16 * 1024
        assert l1.ways == 8
        assert l1.n_sets == 32  # 256 lines / 8 ways

    def test_paper_l2_geometry(self):
        l2 = MemoryParams().l2
        assert l2.size_bytes == 8 * 1024 * 1024
        assert l2.ways == 8
        assert l2.n_lines == 131072

    def test_paper_tlb(self):
        assert MemoryParams().tlb.entries == 256

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            CacheParams(size_bytes=0, ways=8)
        with pytest.raises(ValueError):
            CacheParams(size_bytes=1000, ways=4, line_bytes=64)


class TestTransportPresets:
    def test_overhead_ordering(self):
        """Section 3.1: xBGAS < RDMA < MPI per-message overhead."""
        xb, rd, mp = xbgas_transport(), rdma_transport(), mpi_transport()
        assert xb.o_send < rd.o_send < mp.o_send

    def test_only_xbgas_avoids_kernel(self):
        assert xbgas_transport().kernel_ns == 0
        assert mpi_transport().kernel_ns > 0

    def test_only_mpi_is_two_sided(self):
        assert not xbgas_transport().two_sided
        assert not rdma_transport().two_sided
        assert mpi_transport().two_sided

    def test_mpi_has_rendezvous(self):
        mp = mpi_transport()
        assert mp.handshake_ns > 0
        assert mp.eager_threshold > 0

    def test_with_replaces(self):
        t = xbgas_transport().with_(o_send=99.0)
        assert t.o_send == 99.0
        assert t.name == "xbgas"


class TestMachineConfig:
    def test_defaults_are_paper_platform(self):
        cfg = MachineConfig()
        assert cfg.cores_per_node == 12  # the 12-core simulation host
        assert cfg.mem.tlb.entries == 256
        assert cfg.transport.name == "xbgas"

    def test_node_mapping_sequential(self):
        cfg = MachineConfig(n_pes=8, cores_per_node=4)
        assert cfg.n_nodes == 2
        assert [cfg.node_of(i) for i in range(8)] == [0, 0, 0, 0, 1, 1, 1, 1]

    def test_node_of_out_of_range(self):
        with pytest.raises(ValueError):
            MachineConfig(n_pes=4).node_of(4)

    def test_with_transport(self):
        cfg = MachineConfig().with_transport("mpi")
        assert cfg.transport.two_sided
        with pytest.raises(ValueError):
            MachineConfig().with_transport("carrier-pigeon")

    def test_heap_must_fit(self):
        with pytest.raises(ValueError):
            MachineConfig(memory_bytes_per_pe=1 << 20,
                          symmetric_heap_bytes=1 << 21)

    def test_scratch_must_fit_heap(self):
        with pytest.raises(ValueError):
            MachineConfig(symmetric_heap_bytes=1 << 20,
                          collective_scratch_bytes=1 << 21)

    def test_cycle_time(self):
        assert MachineConfig(clock_ghz=2.0).cycle_ns == 0.5

    def test_fidelity_validation(self):
        with pytest.raises(ValueError):
            MachineConfig(fidelity="cycle-accurate")

    def test_paper_machine_helper(self):
        cfg = paper_machine(4)
        assert cfg.n_pes == 4
