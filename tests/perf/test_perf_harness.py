"""Smoke tests for the wall-clock perf-regression harness.

The heavy full-size measurements run in the CI perf-smoke job
(``python -m repro.perf --check``); here we verify the harness itself —
that quick-size benchmarks run both arms, the check logic flags
regressions, and the committed ``BENCH_simwall.json`` baseline is
well-formed and records the speedups the fast paths claim.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.perf import (
    BENCH_FILENAME,
    CHECK_FLOORS,
    SCHEMA,
    BenchResult,
    bench_engine_switch,
    run_all,
)
from repro.perf.__main__ import _check

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE = REPO_ROOT / BENCH_FILENAME


class TestHarness:
    def test_bench_result_speedup(self):
        r = BenchResult(name="x", detail="", repeats=3, before_s=2.0,
                        after_s=0.5)
        assert r.speedup == 4.0
        assert r.as_dict()["speedup"] == 4.0

    def test_engine_switch_quick_runs_both_arms(self):
        r = bench_engine_switch(repeats=1, quick=True)
        assert r.before_s > 0 and r.after_s > 0
        assert r.repeats == 1

    @pytest.mark.slow
    def test_run_all_quick_document_shape(self):
        doc = run_all(repeats=1, quick=True)
        assert doc["schema"] == SCHEMA
        assert doc["quick"] is True
        assert set(doc["benchmarks"]) == set(CHECK_FLOORS)
        for row in doc["benchmarks"].values():
            assert row["before_s"] > 0 and row["after_s"] > 0


class TestCheckLogic:
    def _doc(self, speedup, after_s=1.0):
        return {
            "benchmarks": {
                "engine_switch": {
                    "before_s": after_s * speedup,
                    "after_s": after_s,
                    "speedup": speedup,
                }
            }
        }

    def test_ok_when_fast_and_within_budget(self):
        assert _check(self._doc(3.0), self._doc(3.0), 2.0) == []

    def test_flags_speedup_below_floor(self):
        problems = _check(self._doc(1.0), self._doc(3.0), 2.0)
        assert any("below floor" in p for p in problems)

    def test_flags_absolute_slowdown(self):
        problems = _check(self._doc(3.0, after_s=10.0),
                          self._doc(3.0, after_s=1.0), 2.0)
        assert any("exceeds" in p for p in problems)

    def test_flags_missing_benchmark(self):
        problems = _check(self._doc(3.0), {"benchmarks": {}}, 2.0)
        assert any("missing from baseline" in p for p in problems)


class TestCommittedBaseline:
    def test_baseline_exists_and_is_current_schema(self):
        doc = json.loads(BASELINE.read_text())
        assert doc["schema"] == SCHEMA
        assert doc["quick"] is False
        assert set(doc["benchmarks"]) == set(CHECK_FLOORS)

    def test_baseline_records_claimed_speedups(self):
        """The committed numbers must back the PR's perf claims."""
        doc = json.loads(BASELINE.read_text())
        bench = doc["benchmarks"]
        assert bench["bulk_costing"]["speedup"] >= 3.0
        assert bench["collectives_micro"]["speedup"] >= 1.5
        assert bench["engine_switch"]["speedup"] >= 2.0
        # gups is the scalar guard: the fast paths must not cost it.
        assert bench["gups_slice"]["speedup"] >= 0.9
