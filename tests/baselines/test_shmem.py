"""Tests for the OpenSHMEM-style API surface (paper section 4.7)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.shmem import ShmemAPI, active_set
from repro.errors import CollectiveArgumentError
from repro.runtime import Machine

from ..conftest import small_config


def run(n_pes, fn, **cfg_kw):
    machine = Machine(small_config(n_pes, **cfg_kw))
    return machine.run(fn)


class TestActiveSet:
    def test_expansion(self):
        assert active_set(0, 0, 4, 8) == (0, 1, 2, 3)
        assert active_set(1, 1, 3, 8) == (1, 3, 5)
        assert active_set(0, 2, 2, 8) == (0, 4)

    def test_bounds(self):
        with pytest.raises(CollectiveArgumentError):
            active_set(4, 1, 3, 8)  # 4,6,8 exceeds
        with pytest.raises(CollectiveArgumentError):
            active_set(0, 0, 0, 8)


class TestBroadcastSemantics:
    def test_root_dest_not_updated(self):
        """The paper's section 4.7 observation: OpenSHMEM broadcast does
        not copy into the root's dest; the xBGAS call does."""
        def body(ctx):
            ctx.init()
            sh = ShmemAPI(ctx)
            src = ctx.malloc(32)
            dest = ctx.malloc(32)
            ctx.view(dest, "long", 1)[0] = -9
            if ctx.my_pe() == 1:
                ctx.view(src, "long", 1)[0] = 7
            sh.broadcast64(dest, src, 1, 1)
            shmem_got = int(ctx.view(dest, "long", 1)[0])
            # Same operation through the xBGAS call updates everyone.
            ctx.long_broadcast(dest, src, 1, 1, 1)
            xbgas_got = int(ctx.view(dest, "long", 1)[0])
            ctx.close()
            return shmem_got, xbgas_got

        results = run(4, body)
        assert results[1][0] == -9      # root untouched by shmem call
        assert results[0][0] == 7       # others received
        assert all(x == 7 for _, x in results)  # xBGAS updates the root too

    def test_broadcast32(self):
        def body(ctx):
            ctx.init()
            sh = ShmemAPI(ctx)
            src = ctx.malloc(16)
            dest = ctx.malloc(16)
            if ctx.my_pe() == 0:
                ctx.view(src, "uint32", 3)[:] = [1, 2, 3]
            sh.broadcast32(dest, src, 3, 0)
            got = list(ctx.view(dest, "uint32", 3)) if ctx.my_pe() else None
            ctx.close()
            return got

        results = run(3, body)
        assert results[1] == [1, 2, 3]

    def test_active_set_broadcast(self):
        def body(ctx):
            ctx.init()
            sh = ShmemAPI(ctx)
            src = ctx.malloc(16)
            dest = ctx.malloc(16)
            ctx.view(dest, "long", 1)[0] = -1
            me = ctx.my_pe()
            if me % 2 == 0:  # active set = even PEs
                if me == 0:
                    ctx.view(src, "long", 1)[0] = 55
                sh.broadcast64(dest, src, 1, 0, pe_start=0,
                               log_pe_stride=1, pe_size=2)
            ctx.barrier()
            got = int(ctx.view(dest, "long", 1)[0])
            ctx.close()
            return got

        results = run(4, body)
        assert results[2] == 55
        assert results[1] == -1 and results[3] == -1


class TestToAllReductions:
    def test_sum_to_all_via_getattr(self):
        def body(ctx):
            ctx.init()
            sh = ShmemAPI(ctx)
            src = ctx.malloc(16)
            dest = ctx.malloc(16)
            ctx.view(src, "int", 1)[0] = ctx.my_pe() + 1
            sh.int_sum_to_all(dest, src, 1)
            got = int(ctx.view(dest, "int", 1)[0])
            ctx.close()
            return got

        results = run(4, body)
        assert all(r == 10 for r in results)

    def test_double_max_to_all(self):
        def body(ctx):
            ctx.init()
            sh = ShmemAPI(ctx)
            src = ctx.malloc(16)
            dest = ctx.malloc(16)
            ctx.view(src, "double", 1)[0] = float(ctx.my_pe())
            sh.double_max_to_all(dest, src, 1)
            got = float(ctx.view(dest, "double", 1)[0])
            ctx.close()
            return got

        assert all(r == 4.0 for r in run(5, body))

    def test_unknown_type_rejected(self):
        def body(ctx):
            ctx.init()
            sh = ShmemAPI(ctx)
            with pytest.raises(CollectiveArgumentError):
                sh.reduce_to_all("uint128", "sum", 0, 0, 1)
            with pytest.raises(AttributeError):
                sh.uint128_sum_to_all
            ctx.barrier()
            ctx.close()

        run(2, body)

    def test_stride_gap(self):
        """Section 4.7: OpenSHMEM reductions have no stride parameter —
        the API surface simply does not accept one."""
        import inspect

        sig = inspect.signature(ShmemAPI.reduce_to_all)
        assert "stride" not in sig.parameters

    def test_no_scatter_in_shmem(self):
        """Section 4.7: OpenSHMEM offers no scatter."""
        assert not hasattr(ShmemAPI, "scatter")
        assert not hasattr(ShmemAPI, "scatter64")


class TestCollect:
    def test_fcollect64(self):
        def body(ctx):
            ctx.init()
            n = ctx.num_pes()
            sh = ShmemAPI(ctx)
            src = ctx.malloc(8)
            dest = ctx.malloc(8 * n)
            ctx.view(src, "long", 1)[0] = ctx.my_pe() * 3
            sh.fcollect64(dest, src, 1)
            got = list(ctx.view(dest, "long", n))
            ctx.close()
            return got

        results = run(4, body)
        assert all(r == [0, 3, 6, 9] for r in results)

    def test_collect_variable(self):
        def body(ctx):
            ctx.init()
            n, me = ctx.num_pes(), ctx.my_pe()
            sh = ShmemAPI(ctx)
            cnt = me + 1
            total = sum(range(1, n + 1))
            src = ctx.malloc(8 * n)
            dest = ctx.malloc(8 * total)
            ctx.view(src, "long", cnt)[:] = me * 10 + np.arange(cnt)
            sh.collect64(dest, src, cnt)
            got = list(ctx.view(dest, "long", total))
            ctx.close()
            return got

        results = run(3, body)
        want = [0, 10, 11, 20, 21, 22]
        assert all(r == want for r in results)
