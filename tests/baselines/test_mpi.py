"""Tests for the MPI-style collective baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import mpi
from repro.runtime import Machine

from ..conftest import small_config


def run(n_pes, fn, **cfg_kw):
    machine = Machine(small_config(n_pes, **cfg_kw).with_transport("mpi"))
    return machine, machine.run(fn)


class TestBcast:
    @pytest.mark.parametrize("n_pes", [1, 2, 3, 4, 7, 8])
    @pytest.mark.parametrize("root", [0, 1])
    def test_bcast(self, n_pes, root):
        if root >= n_pes:
            pytest.skip("root out of range")

        def body(ctx):
            ctx.init()
            buf = ctx.private_malloc(8 * 4)
            if ctx.my_pe() == root:
                ctx.view(buf, "long", 4)[:] = [4, 3, 2, 1]
            mpi.bcast(ctx, buf, 4, np.int64, root=root)
            got = list(ctx.view(buf, "long", 4))
            ctx.close()
            return got

        _, results = run(n_pes, body)
        assert all(r == [4, 3, 2, 1] for r in results)


class TestReduce:
    @pytest.mark.parametrize("n_pes", [1, 2, 5, 8])
    @pytest.mark.parametrize("op", ["sum", "max", "xor"])
    def test_reduce(self, n_pes, op):
        def body(ctx):
            ctx.init()
            src = ctx.private_malloc(8 * 2)
            dest = ctx.private_malloc(8 * 2)
            ctx.view(src, "long", 2)[:] = [ctx.my_pe() + 1, 3]
            mpi.reduce(ctx, dest, src, 2, np.int64, op, root=0)
            got = (list(ctx.view(dest, "long", 2))
                   if ctx.my_pe() == 0 else None)
            ctx.close()
            return got

        _, results = run(n_pes, body)
        vals = [pe + 1 for pe in range(n_pes)]
        if op == "sum":
            want = [sum(vals), 3 * n_pes]
        elif op == "max":
            want = [max(vals), 3]
        else:
            x = 0
            for v in vals:
                x ^= v
            y = 0
            for _ in range(n_pes):
                y ^= 3
            want = [x, y]
        assert results[0] == want


class TestAllreduce:
    @pytest.mark.parametrize("n_pes", [1, 2, 3, 4, 5, 7, 8])
    def test_allreduce_sum(self, n_pes):
        """Recursive doubling including the non-power-of-two fold."""
        def body(ctx):
            ctx.init()
            src = ctx.private_malloc(8)
            dest = ctx.private_malloc(8)
            ctx.view(src, "long", 1)[0] = ctx.my_pe() + 1
            mpi.allreduce(ctx, dest, src, 1, np.int64, "sum")
            got = int(ctx.view(dest, "long", 1)[0])
            ctx.close()
            return got

        _, results = run(n_pes, body)
        want = sum(range(1, n_pes + 1))
        assert all(r == want for r in results)

    def test_allreduce_min(self):
        def body(ctx):
            ctx.init()
            src = ctx.private_malloc(8)
            dest = ctx.private_malloc(8)
            ctx.view(src, "long", 1)[0] = (ctx.my_pe() * 7) % 5
            mpi.allreduce(ctx, dest, src, 1, np.int64, "min")
            got = int(ctx.view(dest, "long", 1)[0])
            ctx.close()
            return got

        _, results = run(6, body)
        want = min((pe * 7) % 5 for pe in range(6))
        assert all(r == want for r in results)


class TestScattervGatherv:
    def test_scatterv(self):
        def body(ctx):
            ctx.init()
            n = ctx.num_pes()
            counts = [i + 1 for i in range(n)]
            displs = [sum(counts[:i]) for i in range(n)]
            src = ctx.private_malloc(8 * sum(counts))
            dest = ctx.private_malloc(8 * n)
            if ctx.my_pe() == 0:
                ctx.view(src, "long", sum(counts))[:] = np.arange(sum(counts))
            mpi.scatterv(ctx, dest, src, counts, displs, np.int64, root=0)
            got = list(ctx.view(dest, "long", counts[ctx.my_pe()]))
            ctx.close()
            return got

        _, results = run(4, body)
        assert results == [[0], [1, 2], [3, 4, 5], [6, 7, 8, 9]]

    def test_gatherv(self):
        def body(ctx):
            ctx.init()
            n, me = ctx.num_pes(), ctx.my_pe()
            counts = [2] * n
            displs = [2 * i for i in range(n)]
            src = ctx.private_malloc(8 * 2)
            dest = ctx.private_malloc(8 * 2 * n)
            ctx.view(src, "long", 2)[:] = [me, me * 2]
            mpi.gatherv(ctx, dest, src, counts, displs, np.int64, root=1)
            got = (list(ctx.view(dest, "long", 2 * n))
                   if me == 1 else None)
            ctx.close()
            return got

        _, results = run(3, body)
        assert results[1] == [0, 0, 1, 2, 2, 4]


class TestCostComparison:
    def test_mpi_collective_slower_than_xbgas(self):
        """The paper's overhead thesis at the collective level."""
        def mpi_body(ctx):
            ctx.init()
            buf = ctx.private_malloc(8 * 64)
            ctx.barrier()
            t0 = ctx.pe.clock
            mpi.bcast(ctx, buf, 64, np.int64, root=0)
            ctx.barrier()
            dt = ctx.pe.clock - t0
            ctx.close()
            return dt

        def xb_body(ctx):
            ctx.init()
            buf = ctx.malloc(8 * 64)
            src = ctx.private_malloc(8 * 64)
            ctx.barrier()
            t0 = ctx.pe.clock
            ctx.long_broadcast(buf, src, 64, 1, 0)
            ctx.barrier()
            dt = ctx.pe.clock - t0
            ctx.close()
            return dt

        _, mpi_dt = run(8, mpi_body)
        xb = Machine(small_config(8))
        xb_dt = xb.run(xb_body)
        assert max(mpi_dt) > max(xb_dt)
