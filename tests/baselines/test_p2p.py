"""Tests for the two-sided message layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.p2p import ANY_SOURCE, ANY_TAG, attach_message_layer
from repro.errors import DeadlockError, SimulationError
from repro.runtime import Machine

from ..conftest import small_config


def run(n_pes, fn, **cfg_kw):
    machine = Machine(small_config(n_pes, **cfg_kw).with_transport("mpi"))
    return machine, machine.run(fn)


class TestSendRecv:
    def test_simple_message(self):
        def body(ctx):
            ctx.init()
            layer = attach_message_layer(ctx.machine)
            buf = ctx.private_malloc(32)
            if ctx.my_pe() == 0:
                ctx.view(buf, "long", 4)[:] = [1, 2, 3, 4]
                layer.send(ctx, 1, buf, 4, np.int64, tag=7)
                got = None
            else:
                layer.recv(ctx, 0, buf, 4, np.int64, tag=7)
                got = list(ctx.view(buf, "long", 4))
            ctx.close()
            return got

        _, results = run(2, body)
        assert results[1] == [1, 2, 3, 4]

    def test_recv_blocks_until_send(self):
        def body(ctx):
            ctx.init()
            layer = attach_message_layer(ctx.machine)
            buf = ctx.private_malloc(8)
            if ctx.my_pe() == 1:
                # Receiver posts early and must wait for the late sender.
                layer.recv(ctx, 0, buf, 1, np.int64)
                t = ctx.pe.clock
            else:
                ctx.compute(10_000.0)
                ctx.view(buf, "long", 1)[0] = 5
                layer.send(ctx, 1, buf, 1, np.int64)
                t = None
            ctx.close()
            return t

        _, results = run(2, body)
        assert results[1] > 10_000.0

    def test_fifo_per_source(self):
        def body(ctx):
            ctx.init()
            layer = attach_message_layer(ctx.machine)
            buf = ctx.private_malloc(8)
            if ctx.my_pe() == 0:
                for v in (10, 20, 30):
                    ctx.view(buf, "long", 1)[0] = v
                    layer.send(ctx, 1, buf, 1, np.int64)
                got = None
            else:
                got = []
                for _ in range(3):
                    layer.recv(ctx, 0, buf, 1, np.int64)
                    got.append(int(ctx.view(buf, "long", 1)[0]))
            ctx.close()
            return got

        _, results = run(2, body)
        assert results[1] == [10, 20, 30]

    def test_tag_matching(self):
        def body(ctx):
            ctx.init()
            layer = attach_message_layer(ctx.machine)
            buf = ctx.private_malloc(8)
            if ctx.my_pe() == 0:
                ctx.view(buf, "long", 1)[0] = 1
                layer.send(ctx, 1, buf, 1, np.int64, tag=5)
                ctx.view(buf, "long", 1)[0] = 2
                layer.send(ctx, 1, buf, 1, np.int64, tag=9)
                got = None
            else:
                layer.recv(ctx, 0, buf, 1, np.int64, tag=9)  # out of order
                got = [int(ctx.view(buf, "long", 1)[0])]
                layer.recv(ctx, 0, buf, 1, np.int64, tag=5)
                got.append(int(ctx.view(buf, "long", 1)[0]))
            ctx.close()
            return got

        _, results = run(2, body)
        assert results[1] == [2, 1]

    def test_wildcards(self):
        def body(ctx):
            ctx.init()
            layer = attach_message_layer(ctx.machine)
            buf = ctx.private_malloc(8)
            if ctx.my_pe() == 2:
                src = layer.recv(ctx, ANY_SOURCE, buf, 1, np.int64,
                                 tag=ANY_TAG)
                got = (src, int(ctx.view(buf, "long", 1)[0]))
            else:
                ctx.compute(100.0 * (ctx.my_pe() + 1))
                ctx.view(buf, "long", 1)[0] = ctx.my_pe() * 10
                layer.send(ctx, 2, buf, 1, np.int64, tag=ctx.my_pe())
                got = None
            ctx.close()
            return got

        _, results = run(3, body)
        src, val = results[2]
        assert val == src * 10

    def test_type_mismatch_detected(self):
        def body(ctx):
            ctx.init()
            layer = attach_message_layer(ctx.machine)
            buf = ctx.private_malloc(32)
            if ctx.my_pe() == 0:
                layer.send(ctx, 1, buf, 2, np.int64)
            else:
                layer.recv(ctx, 0, buf, 4, np.int64)
            ctx.close()

        with pytest.raises(SimulationError):
            run(2, body)

    def test_unmatched_recv_deadlocks_cleanly(self):
        def body(ctx):
            ctx.init()
            layer = attach_message_layer(ctx.machine)
            buf = ctx.private_malloc(8)
            if ctx.my_pe() == 1:
                layer.recv(ctx, 0, buf, 1, np.int64)  # never sent
            ctx.close()

        with pytest.raises(DeadlockError):
            run(2, body)

    def test_sendrecv_head_to_head(self):
        def body(ctx):
            ctx.init()
            layer = attach_message_layer(ctx.machine)
            a = ctx.private_malloc(8)
            b = ctx.private_malloc(8)
            me, n = ctx.my_pe(), ctx.num_pes()
            ctx.view(a, "long", 1)[0] = me
            layer.sendrecv(ctx, (me + 1) % n, a, (me - 1) % n, b, 1,
                           np.int64)
            got = int(ctx.view(b, "long", 1)[0])
            ctx.close()
            return got

        _, results = run(4, body)
        assert results == [3, 0, 1, 2]

    def test_two_sided_charges_both_ends(self):
        """MPI-class messages must cost more than the xBGAS put of the
        same payload (section 3.1)."""
        def body(ctx):
            ctx.init()
            layer = attach_message_layer(ctx.machine)
            buf = ctx.private_malloc(1024)
            ctx.barrier()
            t0 = ctx.pe.clock
            if ctx.my_pe() == 0:
                layer.send(ctx, 1, buf, 128, np.int64)
            else:
                layer.recv(ctx, 0, buf, 128, np.int64)
            ctx.barrier()
            dt = ctx.pe.clock - t0
            ctx.close()
            return dt

        def xbgas_body(ctx):
            ctx.init()
            buf = ctx.malloc(1024)
            src = ctx.private_malloc(1024)
            ctx.barrier()
            t0 = ctx.pe.clock
            if ctx.my_pe() == 0:
                ctx.put(buf, src, 128, 1, 1, "long")
            ctx.barrier()
            dt = ctx.pe.clock - t0
            ctx.close()
            return dt

        _, mpi_res = run(2, body)
        m2 = Machine(small_config(2))
        xb_res = m2.run(xbgas_body)
        assert max(mpi_res) > max(xb_res)
