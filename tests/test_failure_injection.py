"""Failure-injection tests: the simulator must fail loudly and precisely.

A mis-used PGAS runtime on real hardware corrupts memory or hangs; the
reproduction instead raises typed errors that identify the failing PE
and the cause.  These tests drive each failure path.
"""

from __future__ import annotations

import pytest

from repro.errors import (
    AddressError,
    AllocationError,
    DeadlockError,
    OlbMissError,
    SimulationError,
)
from repro.runtime import Machine

from .conftest import small_config


def failing_machine(n_pes=2, **kw):
    return Machine(small_config(n_pes, **kw))


class TestMemoryFailures:
    def test_put_outside_memory_names_pe(self):
        def body(ctx):
            ctx.init()
            a = ctx.malloc(64)
            if ctx.my_pe() == 1:
                ctx.put(2 ** 40, a, 1, 1, 0, "long")
            ctx.barrier()
            ctx.close()

        with pytest.raises(SimulationError, match="PE 1") as exc:
            failing_machine().run(body)
        assert isinstance(exc.value.__cause__, AddressError)

    def test_view_beyond_allocation_is_bounds_checked(self):
        def body(ctx):
            ctx.init()
            with pytest.raises(AddressError):
                ctx.view(ctx.machine.config.memory_bytes_per_pe - 4,
                         "long", 2)
            ctx.barrier()
            ctx.close()

        failing_machine().run(body)

    def test_heap_exhaustion_reports_free_bytes(self):
        def body(ctx):
            ctx.init()
            with pytest.raises(AllocationError, match="out of memory"):
                ctx.malloc(1 << 30)
            ctx.barrier()
            ctx.close()

        failing_machine().run(body)

    def test_scratch_exhaustion_names_config_knob(self):
        def body(ctx):
            ctx.init()
            with pytest.raises(AllocationError,
                               match="collective_scratch_bytes"):
                ctx.scratch_alloc(1 << 30)
            ctx.barrier()
            ctx.close()

        failing_machine().run(body)


class TestCollectiveMisuse:
    def test_divergent_collective_malloc(self):
        """PEs calling malloc with different sizes is a program bug the
        heap detects rather than silently desynchronising."""
        def body(ctx):
            ctx.init()
            ctx.malloc(64 if ctx.my_pe() == 0 else 128)
            ctx.barrier()
            ctx.close()

        with pytest.raises(SimulationError) as exc:
            failing_machine().run(body)
        assert isinstance(exc.value.__cause__, AllocationError)
        assert "divergent" in str(exc.value.__cause__)

    def test_mismatched_barrier_participation_deadlocks(self):
        def body(ctx):
            ctx.init()
            if ctx.my_pe() == 0:
                ctx.barrier()  # PE 1 never arrives
            ctx.close()

        with pytest.raises(DeadlockError):
            failing_machine().run(body)

    def test_partial_collective_participation_deadlocks(self):
        def body(ctx):
            ctx.init()
            buf = ctx.malloc(64)
            if ctx.my_pe() == 0:
                ctx.long_broadcast(buf, buf, 1, 1, 0)
            ctx.close()

        with pytest.raises(DeadlockError):
            failing_machine().run(body)


class TestOlbFailures:
    def test_unmapped_object_id(self):
        """Erasing an OLB entry makes remote access fail like real
        xBGAS would fault on a missing translation."""
        def body(ctx):
            ctx.init()
            buf = ctx.malloc(64)
            if ctx.my_pe() == 0:
                ctx.put(buf, buf, 1, 1, 1, "long")
            ctx.barrier()
            ctx.close()

        m = failing_machine(fidelity="isa")
        m.olbs[0]._map.clear()  # inject: PE 0 loses all translations
        with pytest.raises(SimulationError) as exc:
            m.run(body)
        assert isinstance(exc.value.__cause__, OlbMissError)


class TestEngineRobustness:
    def test_failure_in_one_pe_reported_not_hung(self):
        def body(ctx):
            ctx.init()
            if ctx.my_pe() == 1:
                raise RuntimeError("injected fault")
            ctx.barrier()  # would wait for PE 1 forever
            ctx.close()

        with pytest.raises(SimulationError, match="PE 1") as exc:
            failing_machine().run(body)
        assert isinstance(exc.value.__cause__, RuntimeError)

    def test_machine_reusable_after_failed_run(self):
        """A failed simulation must not poison a fresh machine build."""
        def bad(ctx):
            raise ValueError("nope")

        def good(ctx):
            ctx.init()
            me = ctx.my_pe()
            ctx.barrier()
            ctx.close()
            return me

        with pytest.raises(SimulationError):
            failing_machine().run(bad)
        assert failing_machine().run(good) == [0, 1]
