"""Tests for the Machine / XBRTime runtime context."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import AllocationError, RuntimeStateError
from repro.runtime import Machine

from ..conftest import small_config


def run(n_pes, fn, **cfg_kw):
    machine = Machine(small_config(n_pes, **cfg_kw))
    return machine, machine.run(fn)


class TestLifecycle:
    def test_init_close(self):
        def body(ctx):
            ctx.init()
            assert ctx.num_pes() == 2
            ctx.close()

        run(2, body)

    def test_use_before_init_rejected(self):
        def body(ctx):
            with pytest.raises(RuntimeStateError):
                ctx.my_pe()
            ctx.init()
            ctx.close()

        run(2, body)

    def test_double_init_rejected(self):
        def body(ctx):
            ctx.init()
            with pytest.raises(RuntimeStateError):
                ctx.init()
            ctx.close()

        run(1, body)

    def test_use_after_close_rejected(self):
        def body(ctx):
            ctx.init()
            ctx.close()
            with pytest.raises(RuntimeStateError):
                ctx.barrier()

        run(1, body)

    def test_my_pe_matches_rank(self):
        def body(ctx):
            ctx.init()
            me = ctx.my_pe()
            ctx.close()
            return me

        _, results = run(4, body)
        assert results == [0, 1, 2, 3]


class TestSymmetricMemory:
    def test_same_address_on_all_pes(self):
        """Figure 2: same offset of the shared segment everywhere."""
        def body(ctx):
            ctx.init()
            a = ctx.malloc(256)
            b = ctx.malloc(64)
            ctx.close()
            return (a, b)

        _, results = run(4, body)
        assert len(set(results)) == 1

    def test_malloc_is_in_shared_segment(self):
        def body(ctx):
            ctx.init()
            a = ctx.malloc(64)
            assert ctx.is_symmetric(a)
            p = ctx.private_malloc(64)
            assert not ctx.is_symmetric(p)
            ctx.close()

        run(2, body)

    def test_free_allows_reuse(self):
        def body(ctx):
            ctx.init()
            a = ctx.malloc(1024)
            ctx.free(a)
            b = ctx.malloc(1024)
            ctx.free(b)
            ctx.close()
            return (a, b)

        _, results = run(2, body)
        assert results[0] == results[1]

    def test_private_segments_independent(self):
        def body(ctx):
            ctx.init()
            p = ctx.private_malloc(128)
            v = ctx.view(p, "long", 1)
            v[0] = ctx.my_pe() * 11
            ctx.barrier()
            got = int(ctx.view_on(ctx.my_pe(), p, "long", 1)[0])
            ctx.private_free(p)
            ctx.close()
            return got

        _, results = run(3, body)
        assert results == [0, 11, 22]

    def test_view_aliases_simulated_memory(self):
        def body(ctx):
            ctx.init()
            a = ctx.malloc(64)
            ctx.view(a, "int32", 4)[:] = [1, 2, 3, 4]
            raw = ctx.machine.memories[ctx.rank].load(a, 4)
            ctx.close()
            return raw

        _, results = run(1, body)
        assert results == [1]

    def test_scratch_lifo(self):
        def body(ctx):
            ctx.init()
            s1 = ctx.scratch_alloc(64)
            s2 = ctx.scratch_alloc(64)
            with pytest.raises(AllocationError):
                ctx.scratch_free(s1)
            ctx.scratch_free(s2)
            ctx.scratch_free(s1)
            ctx.close()

        run(1, body)


class TestTimeCharging:
    def test_compute_advances_clock(self):
        def body(ctx):
            ctx.init()
            t0 = ctx.time_ns
            ctx.compute(123.0)
            dt = ctx.time_ns - t0
            ctx.close()
            return dt

        _, results = run(1, body)
        assert results[0] == pytest.approx(123.0)

    def test_dilation_applies_beyond_host_capacity(self):
        def body(ctx):
            ctx.init()
            t0 = ctx.time_ns
            ctx.compute(100.0)
            dt = ctx.time_ns - t0
            ctx.close()
            return dt

        # 8 PEs x 2.25 host cores / 12 = 1.5x dilation.
        m = Machine(small_config(8, host_cores=12, host_cores_per_pe=2.25))
        results = m.run(body)
        assert results[0] == pytest.approx(150.0)

    def test_charge_access_uses_hierarchy(self):
        def body(ctx):
            ctx.init()
            a = ctx.malloc(64)
            cold = ctx.charge_access(a, 8)
            warm = ctx.charge_access(a, 8)
            ctx.close()
            return cold > warm

        _, results = run(1, body)
        assert all(results)


class TestMachine:
    def test_stats_folded_after_run(self):
        def body(ctx):
            ctx.init()
            a = ctx.malloc(64)
            ctx.charge_access(a, 8)
            ctx.close()

        m, _ = run(2, body)
        st = m.stats
        assert st.l1_hits + st.l1_misses > 0
        assert st.barriers >= 2  # init + close

    def test_heap_layout_identical_across_pes(self):
        m = Machine(small_config(4))
        bases = {s.base for s in m.scratch_stacks}
        assert len(bases) == 1
        assert m.heap.base == m.heap_base + m.config.collective_scratch_bytes

    def test_elapsed_ns(self):
        def body(ctx):
            ctx.init()
            ctx.compute(10.0 * (ctx.my_pe() + 1))
            ctx.close()

        m, _ = run(4, body)
        assert m.elapsed_ns > 0


class TestTypedSurface:
    def test_all_typed_methods_exist(self):
        from repro.runtime.typed import TYPED_METHOD_NAMES
        from repro.runtime.context import XBRTime

        assert len(TYPED_METHOD_NAMES) > 200
        for name in TYPED_METHOD_NAMES:
            assert hasattr(XBRTime, name), name

    def test_paper_call_names_present(self):
        from repro.runtime.context import XBRTime

        # Spot-check the calls the paper writes out explicitly.
        for name in (
            "int_put", "int_get", "double_broadcast", "long_reduce_sum",
            "uint64_reduce_max", "float_reduce_min", "char_scatter",
            "ptrdiff_gather", "size_put_nb", "longdouble_get_nb",
            "ulonglong_reduce_prod", "int32_reduce_xor",
        ):
            assert hasattr(XBRTime, name), name

    def test_float_types_lack_bitwise_reductions(self):
        """Section 4.4: AND/OR/XOR only for non-floating-point types."""
        from repro.runtime.context import XBRTime

        for t in ("float", "double", "longdouble"):
            for op in ("and", "or", "xor"):
                assert not hasattr(XBRTime, f"{t}_reduce_{op}")
        for op in ("and", "or", "xor"):
            assert hasattr(XBRTime, f"uint_reduce_{op}")

    def test_typed_put_dispatches_dtype(self):
        def body(ctx):
            ctx.init()
            a = ctx.malloc(64)
            src = ctx.private_malloc(64)
            ctx.view(src, "int16", 4)[:] = [1, -2, 3, -4]
            ctx.int16_put(a, src, 4, 1, ctx.my_pe())
            got = list(ctx.view(a, "int16", 4))
            ctx.close()
            return got

        _, results = run(1, body)
        assert results[0] == [1, -2, 3, -4]


class TestOneShot:
    def test_machine_cannot_run_twice(self):
        from repro.errors import RuntimeStateError

        def body(ctx):
            ctx.init()
            ctx.close()

        m = Machine(small_config(2))
        m.run(body)
        with pytest.raises(RuntimeStateError, match="fresh"):
            m.run(body)
