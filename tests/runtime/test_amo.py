"""Tests for remote atomics (xBGAS eamo*.d) through the runtime."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CollectiveArgumentError
from repro.isa.cpu import amo_apply
from repro.runtime import Machine

from ..conftest import small_config


def run(n_pes, fn, **cfg_kw):
    machine = Machine(small_config(n_pes, **cfg_kw))
    return machine, machine.run(fn)


class TestAmoApply:
    @pytest.mark.parametrize("op,old,val,want", [
        ("swap", 5, 9, 9),
        ("add", 5, 9, 14),
        ("add", (1 << 64) - 1, 2, 1),          # wraps
        ("xor", 0b1100, 0b1010, 0b0110),
        ("and", 0b1100, 0b1010, 0b1000),
        ("or", 0b1100, 0b1010, 0b1110),
        ("min", 5, (1 << 64) - 1, (1 << 64) - 1),   # -1 signed < 5
        ("max", 5, (1 << 64) - 1, 5),
    ])
    def test_semantics(self, op, old, val, want):
        assert amo_apply(op, old, val) == want

    def test_unknown_op(self):
        from repro.errors import IsaError

        with pytest.raises(IsaError):
            amo_apply("nand", 1, 2)


class TestRuntimeAmo:
    @pytest.mark.parametrize("fidelity", ["model", "isa"])
    def test_fetch_and_add_returns_old(self, fidelity):
        def body(ctx):
            ctx.init()
            cell = ctx.malloc(8)
            ctx.view(cell, "uint64", 1)[0] = 100
            ctx.barrier()
            old = None
            if ctx.my_pe() == 1:
                old = ctx.amo(cell, 5, 0, "add", "uint64")
            ctx.barrier()
            final = int(ctx.view(cell, "uint64", 1)[0]) if ctx.my_pe() == 0 else None
            ctx.close()
            return old, final

        _, results = run(2, body, fidelity=fidelity)
        assert results[1][0] == 100
        assert results[0][1] == 105

    @pytest.mark.parametrize("fidelity", ["model", "isa"])
    def test_concurrent_adds_never_lose_updates(self, fidelity):
        def body(ctx):
            ctx.init()
            counter = ctx.malloc(8)
            ctx.view(counter, "uint64", 1)[0] = 0
            ctx.barrier()
            for _ in range(25):
                ctx.uint64_atomic_add(counter, 1, 0)
            ctx.barrier()
            got = int(ctx.view(counter, "uint64", 1)[0])
            ctx.close()
            return got

        _, results = run(8, body, fidelity=fidelity)
        assert results[0] == 8 * 25

    def test_signed_result(self):
        def body(ctx):
            ctx.init()
            cell = ctx.malloc(8)
            ctx.view(cell, "long", 1)[0] = -7
            ctx.barrier()
            old = None
            if ctx.my_pe() == 1:
                old = ctx.long_atomic_swap(cell, 3, 0)
            ctx.barrier()
            ctx.close()
            return old

        _, results = run(2, body)
        assert results[1] == -7

    def test_min_max(self):
        def body(ctx):
            ctx.init()
            cell = ctx.malloc(8)
            ctx.view(cell, "long", 1)[0] = 50
            ctx.barrier()
            ctx.long_atomic_min(cell, ctx.my_pe() * 100 - 100, 0)
            ctx.barrier()
            got = int(ctx.view(cell, "long", 1)[0])
            ctx.close()
            return got

        _, results = run(4, body)
        assert results[0] == -100  # min over {50, -100, 0, 100, 200}

    def test_non_64bit_type_rejected(self):
        def body(ctx):
            ctx.init()
            cell = ctx.malloc(8)
            with pytest.raises(CollectiveArgumentError):
                ctx.amo(cell, 1, 0, "add", "int32")
            with pytest.raises(CollectiveArgumentError):
                ctx.amo(cell, 1, 0, "add", "double")
            ctx.barrier()
            ctx.close()

        run(2, body)

    def test_counts_in_stats(self):
        def body(ctx):
            ctx.init()
            cell = ctx.malloc(8)
            ctx.barrier()
            ctx.uint64_atomic_xor(cell, 3, (ctx.my_pe() + 1) % 2)
            ctx.barrier()
            ctx.close()

        m, _ = run(2, body)
        assert m.stats.amos == 2

    def test_typed_surface_integral_64_only(self):
        from repro.runtime.context import XBRTime

        for name in ("uint64_atomic_add", "long_atomic_xor",
                     "size_atomic_max", "ptrdiff_atomic_swap",
                     "ulonglong_atomic_or"):
            assert hasattr(XBRTime, name), name
        for name in ("double_atomic_add", "int32_atomic_add",
                     "float_atomic_xor", "char_atomic_or"):
            assert not hasattr(XBRTime, name), name

    def test_amo_is_single_transaction(self):
        """One AMO is a single network round trip and cheaper than the
        three-message get-modify-put idiom it replaces."""
        def body(ctx, mode):
            ctx.init()
            cell = ctx.malloc(8)
            scratch = ctx.private_malloc(8)
            ctx.barrier()
            t0 = ctx.pe.clock
            if ctx.my_pe() == 0:
                if mode == "gmp":
                    ctx.get(scratch, cell, 1, 1, 1, "uint64")
                    v = ctx.view(scratch, "uint64", 1)
                    v[0] ^= np.uint64(3)
                    ctx.put(cell, scratch, 1, 1, 1, "uint64")
                else:
                    ctx.amo(cell, 3, 1, "xor", "uint64")
            dt = ctx.pe.clock - t0
            ctx.barrier()
            ctx.close()
            return dt

        def measure(mode):
            m = Machine(small_config(2, cores_per_node=1))
            dt = m.run(body, [(mode,), (mode,)])[0]
            return dt, m.stats.messages

        gmp_dt, gmp_msgs = measure("gmp")
        amo_dt, amo_msgs = measure("amo")
        assert amo_msgs < gmp_msgs       # 2 (request+response) vs 3
        assert amo_dt < gmp_dt


class TestGupsAmoMode:
    def test_zero_errors_and_faster_remote(self):
        from repro.bench.gups import GupsParams, run_gups
        from repro.params import MachineConfig

        cfg = MachineConfig(
            n_pes=4,
            memory_bytes_per_pe=4 * 1024 * 1024,
            symmetric_heap_bytes=2 * 1024 * 1024,
            collective_scratch_bytes=256 * 1024,
        )
        base = dict(log2_table_size=12, updates_per_pe=256)
        gmp = run_gups(cfg, GupsParams(**base, use_amo=False))
        amo = run_gups(cfg, GupsParams(**base, use_amo=True))
        assert amo.errors == 0
        assert amo.mops_total >= gmp.mops_total
