"""Tests for barrier synchronisation (world and team)."""

from __future__ import annotations

import pytest

from repro.errors import CollectiveArgumentError
from repro.runtime import Machine

from ..conftest import small_config


def run(n_pes, fn, **cfg_kw):
    machine = Machine(small_config(n_pes, **cfg_kw))
    return machine, machine.run(fn)


class TestWorldBarrier:
    def test_clocks_merge(self):
        def body(ctx):
            ctx.init()
            ctx.compute(100.0 * (ctx.my_pe() + 1))
            ctx.barrier()
            t = ctx.pe.clock
            ctx.close()
            return t

        _, results = run(4, body)
        assert len(set(results)) == 1  # all released at the same instant

    def test_release_no_earlier_than_latest_arrival(self):
        def body(ctx):
            ctx.init()
            ctx.compute(0.0 if ctx.my_pe() else 5000.0)
            ctx.barrier()
            t = ctx.pe.clock
            ctx.close()
            return t

        _, results = run(2, body)
        assert min(results) >= 5000.0

    def test_barrier_drains_pending_puts(self):
        """Quiescence: a put issued before the barrier is visible after."""
        def body(ctx):
            ctx.init()
            buf = ctx.malloc(64)
            ctx.view(buf, "long", 1)[0] = 0
            ctx.barrier()
            if ctx.my_pe() == 0:
                src = ctx.private_malloc(64)
                ctx.view(src, "long", 1)[0] = 77
                ctx.put(buf, src, 1, 1, 1, "long")
            ctx.barrier()
            got = int(ctx.view(buf, "long", 1)[0])
            ctx.close()
            return got

        _, results = run(2, body)
        assert results[1] == 77

    def test_barrier_cost_scales_logarithmically(self):
        def time_barrier(n):
            def body(ctx):
                ctx.init()
                ctx.barrier()
                t0 = ctx.pe.clock
                ctx.barrier()
                dt = ctx.pe.clock - t0
                ctx.close()
                return dt

            _, results = run(n, body)
            return results[0]

        t2, t8 = time_barrier(2), time_barrier(8)
        assert t8 > t2          # more rounds
        assert t8 < 10 * t2     # but only log-factor more

    def test_counts_in_stats(self):
        def body(ctx):
            ctx.init()
            ctx.barrier()
            ctx.barrier()
            ctx.close()

        m, _ = run(2, body)
        assert m.stats.barriers == 4  # init + 2 + close


class TestTeamBarrier:
    def test_disjoint_teams_independent(self):
        def body(ctx):
            ctx.init()
            me = ctx.my_pe()
            team = (0, 1) if me < 2 else (2, 3)
            ctx.compute(100.0 * me)
            ctx.barrier_team(team)
            t = ctx.pe.clock
            ctx.barrier()
            ctx.close()
            return t

        _, results = run(4, body)
        # Within each team clocks merged; across teams they differ.
        assert results[0] == results[1]
        assert results[2] == results[3]
        assert results[0] != results[2]

    def test_non_member_rejected(self):
        def body(ctx):
            ctx.init()
            if ctx.my_pe() == 3:
                with pytest.raises(CollectiveArgumentError):
                    ctx.barrier_team((0, 1))
            else:
                pass
            ctx.barrier()
            ctx.close()

        run(4, body)

    def test_single_member_team(self):
        def body(ctx):
            ctx.init()
            ctx.barrier_team((ctx.my_pe(),))
            ctx.close()

        run(2, body)
