"""Tests for one-sided get/put (blocking, non-blocking, strided)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AddressError, CollectiveArgumentError
from repro.runtime import Machine
from repro.types import TYPENAMES, typeinfo

from ..conftest import small_config


def run(n_pes, fn, **cfg_kw):
    machine = Machine(small_config(n_pes, **cfg_kw))
    return machine.run(fn)


class TestPut:
    def test_remote_put_lands(self):
        def body(ctx):
            ctx.init()
            buf = ctx.malloc(8 * 4)
            v = ctx.view(buf, "long", 4)
            v[:] = -1
            src = ctx.private_malloc(8 * 4)
            ctx.view(src, "long", 4)[:] = ctx.my_pe() * 10 + np.arange(4)
            ctx.put(buf, src, 4, 1, (ctx.my_pe() + 1) % ctx.num_pes(), "long")
            ctx.barrier()
            got = list(v)
            ctx.close()
            return got

        results = run(4, body)
        for me, got in enumerate(results):
            prev = (me - 1) % 4
            assert got == list(prev * 10 + np.arange(4))

    def test_local_put_is_copy(self):
        def body(ctx):
            ctx.init()
            a = ctx.malloc(64)
            b = ctx.malloc(64)
            ctx.view(a, "int", 4)[:] = [9, 8, 7, 6]
            ctx.put(b, a, 4, 1, ctx.my_pe(), "int")
            got = list(ctx.view(b, "int", 4))
            ctx.close()
            return got

        assert run(1, body)[0] == [9, 8, 7, 6]

    def test_strided_put(self):
        """Paper: stride applies at both src and dest."""
        def body(ctx):
            ctx.init()
            buf = ctx.malloc(8 * 16)
            ctx.view(buf, "long", 16)[:] = 0
            src = ctx.private_malloc(8 * 16)
            sv = ctx.view(src, "long", 5, stride=3)
            sv[:] = [1, 2, 3, 4, 5]
            ctx.put(buf, src, 5, 3, (ctx.my_pe() + 1) % 2, "long")
            ctx.barrier()
            got = list(ctx.view(buf, "long", 16))
            ctx.close()
            return got

        got = run(2, body)[0]
        assert got[0::3][:5] == [1, 2, 3, 4, 5]
        assert got[1] == 0 and got[2] == 0  # gaps untouched

    def test_zero_elements_noop(self):
        def body(ctx):
            ctx.init()
            a = ctx.malloc(64)
            ctx.put(a, a, 0, 1, 0, "long")
            ctx.get(a, a, 0, 1, 0, "long")
            ctx.close()

        run(2, body)

    def test_bad_args_rejected(self):
        def body(ctx):
            ctx.init()
            a = ctx.malloc(64)
            with pytest.raises(CollectiveArgumentError):
                ctx.put(a, a, -1, 1, 0, "long")
            with pytest.raises(CollectiveArgumentError):
                ctx.put(a, a, 1, 0, 0, "long")
            with pytest.raises(CollectiveArgumentError):
                ctx.put(a, a, 1, 1, 99, "long")
            with pytest.raises(AddressError):
                ctx.put(2 ** 40, a, 1, 1, 0, "long")
            ctx.close()

        run(2, body)

    def test_remote_put_sender_returns_before_delivery(self):
        """One-sided puts are fire-and-forget: the sender is freed as
        soon as the message is injected, well before remote delivery."""
        def body(ctx):
            ctx.init()
            a = ctx.malloc(4096)
            src = ctx.private_malloc(4096)
            ctx.barrier()
            t0 = ctx.pe.clock
            ctx.put(a, src, 64, 1, (ctx.my_pe() + 1) % 2, "long")
            sender_dt = ctx.pe.clock - t0
            delivery = ctx.machine.network.quiescence_time() - t0
            ctx.barrier()
            ctx.close()
            return sender_dt, delivery

        # One PE per node so the remote path crosses the network.
        sender_dt, delivery = run(2, body, cores_per_node=1)[0]
        assert sender_dt < delivery
        assert delivery > 450  # at least the wire latency


class TestGet:
    def test_remote_get(self):
        def body(ctx):
            ctx.init()
            buf = ctx.malloc(8 * 4)
            ctx.view(buf, "long", 4)[:] = ctx.my_pe() * 100 + np.arange(4)
            ctx.barrier()
            dst = ctx.private_malloc(8 * 4)
            target = (ctx.my_pe() + 1) % ctx.num_pes()
            ctx.get(dst, buf, 4, 1, target, "long")
            got = list(ctx.view(dst, "long", 4))
            ctx.close()
            return got

        results = run(3, body)
        for me, got in enumerate(results):
            t = (me + 1) % 3
            assert got == list(t * 100 + np.arange(4))

    def test_get_blocks_for_round_trip(self):
        def body(ctx):
            ctx.init()
            buf = ctx.malloc(64)
            ctx.barrier()
            t0 = ctx.time_ns
            dst = ctx.private_malloc(64)
            ctx.get(dst, buf, 1, 1, (ctx.my_pe() + 1) % 2, "long")
            dt = ctx.time_ns - t0
            ctx.barrier()
            ctx.close()
            return dt

        dt = run(2, body, cores_per_node=1)[0]
        # Must include at least one wire round trip.
        assert dt >= 2 * 450


class TestNonBlocking:
    def test_put_nb_then_wait(self):
        def body(ctx):
            ctx.init()
            buf = ctx.malloc(64)
            ctx.view(buf, "long", 1)[0] = -1
            src = ctx.private_malloc(64)
            ctx.view(src, "long", 1)[0] = 42
            h = ctx.put_nb(buf, src, 1, 1, (ctx.my_pe() + 1) % 2, "long")
            ctx.wait(h)
            assert h.done
            ctx.barrier()
            got = int(ctx.view(buf, "long", 1)[0])
            ctx.close()
            return got

        assert run(2, body) == [42, 42]

    def test_get_nb_then_wait(self):
        def body(ctx):
            ctx.init()
            buf = ctx.malloc(64)
            ctx.view(buf, "long", 1)[0] = ctx.my_pe() + 7
            ctx.barrier()
            dst = ctx.private_malloc(64)
            h = ctx.get_nb(dst, buf, 1, 1, (ctx.my_pe() + 1) % 2, "long")
            ctx.wait(h)
            got = int(ctx.view(dst, "long", 1)[0])
            ctx.close()
            return got

        assert run(2, body) == [8, 7]

    def test_quiet_completes_all(self):
        def body(ctx):
            ctx.init()
            buf = ctx.malloc(8 * 8)
            src = ctx.private_malloc(8 * 8)
            handles = [
                ctx.put_nb(buf + 8 * i, src + 8 * i, 1, 1,
                           (ctx.my_pe() + 1) % 2, "long")
                for i in range(8)
            ]
            ctx.quiet()
            assert all(h.done for h in handles)
            ctx.barrier()
            ctx.close()

        run(2, body)

    def test_nb_initiation_cheaper_than_blocking_get(self):
        def body(ctx):
            ctx.init()
            buf = ctx.malloc(8 * 512)
            ctx.barrier()
            dst = ctx.private_malloc(8 * 512)
            other = (ctx.my_pe() + 1) % 2
            t0 = ctx.time_ns
            ctx.get(dst, buf, 512, 1, other, "long")
            blocking = ctx.time_ns - t0
            t0 = ctx.time_ns
            h = ctx.get_nb(dst, buf, 512, 1, other, "long")
            initiation = ctx.time_ns - t0
            ctx.wait(h)
            ctx.barrier()
            ctx.close()
            return blocking, initiation

        blocking, initiation = run(2, body, cores_per_node=1)[0]
        assert initiation < blocking


class TestUnrolling:
    def test_loop_overhead_drops_above_threshold(self):
        """Section 3.3: the generated loop unrolls past the threshold."""
        m = Machine(small_config(1, unroll_threshold=8, unroll_factor=4))
        eng = m.transfers[0]
        below = eng.loop_overhead_ns(8) / 8
        above = eng.loop_overhead_ns(800) / 800
        assert above < below


class TestAllTypes:
    @pytest.mark.parametrize("typename", TYPENAMES)
    def test_put_roundtrip_every_table1_type(self, typename):
        info = typeinfo(typename)

        def body(ctx):
            ctx.init()
            eb = info.nbytes
            buf = ctx.malloc(eb * 4, align=16)
            src = ctx.private_malloc(eb * 4, align=16)
            sv = ctx.view(src, info.dtype, 4)
            sv[:] = np.array([0, 1, 2, 3], dtype=info.dtype)
            getattr(ctx, f"{typename}_put")(buf, src, 4, 1,
                                            (ctx.my_pe() + 1) % 2)
            ctx.barrier()
            got = ctx.view(buf, info.dtype, 4)
            ok = bool(np.all(got == sv))
            ctx.close()
            return ok

        machine = Machine(small_config(2))
        assert all(machine.run(body))


class TestPropertyBased:
    @settings(max_examples=25, deadline=None)
    @given(
        nelems=st.integers(1, 32),
        stride=st.integers(1, 4),
        seed=st.integers(0, 2 ** 31),
    )
    def test_put_get_inverse(self, nelems, stride, seed):
        """get(put(x)) == x for random shapes."""
        rng = np.random.default_rng(seed)
        data = rng.integers(-(2 ** 62), 2 ** 62, size=nelems)

        def body(ctx):
            ctx.init()
            span = 8 * ((nelems - 1) * stride + 1)
            buf = ctx.malloc(span)
            src = ctx.private_malloc(span)
            back = ctx.private_malloc(span)
            if ctx.my_pe() == 0:
                ctx.view(src, "long", nelems, stride)[:] = data
                ctx.put(buf, src, nelems, stride, 1, "long")
            ctx.barrier()
            ok = True
            if ctx.my_pe() == 0:
                ctx.get(back, buf, nelems, stride, 1, "long")
                ok = bool(np.all(
                    ctx.view(back, "long", nelems, stride) == data))
            ctx.close()
            return ok

        machine = Machine(small_config(2))
        assert all(machine.run(body))


class TestPendingBookkeeping:
    """wait/quiet must stay O(1) per handle: the pending registry is
    keyed by id and never compares or scans handles."""

    def test_wait_and_quiet_never_compare_handles(self, monkeypatch):
        from repro.runtime.transfer import TransferHandle

        def bomb(self, other):
            raise AssertionError(
                "pending bookkeeping compared handles (O(n) scan?)"
            )

        monkeypatch.setattr(TransferHandle, "__eq__", bomb)

        def body(ctx):
            ctx.init()
            n = 64
            buf = ctx.malloc(8 * n)
            src = ctx.private_malloc(8 * n)
            handles = [
                ctx.put_nb(buf + 8 * i, src + 8 * i, 1, 1,
                           (ctx.my_pe() + 1) % 2, "long")
                for i in range(n)
            ]
            ctx.wait(handles[0])
            ctx.wait(handles[0])  # double-wait is a no-op, not an error
            ctx.quiet()
            assert all(h.done for h in handles)
            ctx.barrier()
            ctx.close()

        run(2, body)

    def test_registry_empties_and_reuses_no_stale_ids(self):
        seen = {}

        def body(ctx):
            ctx.init()
            buf = ctx.malloc(8 * 8)
            src = ctx.private_malloc(8 * 8)
            eng = ctx._transfer
            for round_ in range(20):
                handles = [
                    ctx.put_nb(buf + 8 * i, src + 8 * i, 1, 1,
                               (ctx.my_pe() + 1) % 2, "long")
                    for i in range(8)
                ]
                assert len(eng._pending) == 8
                for h in handles:
                    ctx.wait(h)
                assert not eng._pending
            seen[ctx.my_pe()] = True
            ctx.barrier()
            ctx.close()

        run(2, body)
        assert seen == {0: True, 1: True}
