"""Superstep deferred-execution tests (runtime layer).

Byte-identity against eager execution is covered per backend in
``tests/backends/test_conformance.py``; this file covers the superstep
*mechanics* on the simulator — deferral and flush bookkeeping, transfer
coalescing, batching/widening decisions, stats accounting and the edge
cases (empty flush, zero-count collectives, nesting, body exceptions).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import RuntimeStateError
from repro.runtime import Machine

from ..conftest import small_config


def run(n_pes, fn, **cfg_kw):
    machine = Machine(small_config(n_pes, **cfg_kw))
    return machine.run(fn), machine


def _fill(ctx, addr, nelems, salt=0):
    ctx.view(addr, "long", nelems, 1)[:] = (
        np.arange(nelems, dtype=np.int64) * 3 + ctx.my_pe() * 7 + salt
    ) % 89


class TestDeferral:
    def test_collectives_defer_until_exit(self):
        def body(ctx):
            ctx.init()
            src = ctx.malloc(8 * 4)
            dest = ctx.malloc(8 * 4)
            _fill(ctx, src, 4)
            ctx.view(dest, "long", 4, 1)[:] = -1
            ctx.barrier()
            with ctx.superstep() as step:
                ctx.allreduce(dest, src, 4, 1, "sum", "long")
                assert step.pending == 1
                # nothing ran yet: dest untouched
                before = list(ctx.view(dest, "long", 4, 1))
            after = list(ctx.view(dest, "long", 4, 1))
            ctx.barrier()
            ctx.close()
            return before, after, step.flushes

        results, _ = run(4, body)
        for before, after, flushes in results:
            assert before == [-1] * 4
            assert after != before
            assert flushes == 1

    def test_transfers_defer_until_exit(self):
        def body(ctx):
            ctx.init()
            buf = ctx.malloc(8 * 4)
            src = ctx.private_malloc(8 * 4)
            ctx.view(buf, "long", 4, 1)[:] = -1
            ctx.view(src, "long", 4, 1)[:] = ctx.my_pe() * 10 + np.arange(4)
            ctx.barrier()
            right = (ctx.my_pe() + 1) % ctx.num_pes()
            with ctx.superstep() as step:
                ctx.put(buf, src, 4, 1, right, "long")
                deferred = step.pending == 1
            ctx.barrier()
            got = list(ctx.view(buf, "long", 4, 1))
            ctx.close()
            return deferred, got

        results, _ = run(4, body)
        for me, (deferred, got) in enumerate(results):
            assert deferred
            prev = (me - 1) % 4
            assert got == list(prev * 10 + np.arange(4))

    def test_empty_flush_is_noop(self):
        def body(ctx):
            ctx.init()
            with ctx.superstep() as step:
                pass
            ctx.close()
            return step.flushes, step.pending

        results, machine = run(2, body)
        assert all(r == (0, 0) for r in results)
        assert "superstep:flush" not in machine.stats.collective_calls

    def test_zero_count_collectives(self):
        """Zero-element requests defer, batch and flush correctly."""
        def body(ctx):
            ctx.init()
            src = ctx.malloc(16)
            dest = ctx.malloc(16)
            ctx.view(dest, "long", 2, 1)[:] = 7
            ctx.barrier()
            with ctx.superstep():
                ctx.allreduce(dest, src, 0, 1, "sum", "long")
                ctx.allreduce(dest, src, 0, 1, "sum", "long")
            ctx.barrier()
            got = list(ctx.view(dest, "long", 2, 1))
            ctx.close()
            return got

        results, machine = run(3, body)
        assert all(r == [7, 7] for r in results)
        assert machine.stats.collective_calls["allreduce:doubling"] == 2

    def test_nested_superstep_rejected(self):
        def body(ctx):
            ctx.init()
            try:
                with ctx.superstep():
                    with ctx.superstep():
                        pass
            except RuntimeStateError:
                caught = True
            else:
                caught = False
            # the outer step's unwinding must restore eager mode
            eager = ctx._superstep is None
            ctx.close()
            return caught, eager

        results, _ = run(2, body)
        assert all(r == (True, True) for r in results)

    def test_body_exception_discards_queue(self):
        def body(ctx):
            ctx.init()
            src = ctx.malloc(8 * 4)
            dest = ctx.malloc(8 * 4)
            _fill(ctx, src, 4)
            ctx.view(dest, "long", 4, 1)[:] = -1
            ctx.barrier()
            try:
                with ctx.superstep():
                    ctx.allreduce(dest, src, 4, 1, "sum", "long")
                    raise ValueError("abandon step")
            except ValueError:
                pass
            ctx.barrier()
            got = list(ctx.view(dest, "long", 4, 1))
            eager = ctx._superstep is None
            ctx.close()
            return got, eager

        results, machine = run(2, body)
        for got, eager in results:
            assert got == [-1] * 4  # the deferred allreduce never ran
            assert eager
        assert "allreduce:doubling" not in machine.stats.collective_calls

    def test_resilient_collectives_refuse_deferral(self):
        def body(ctx):
            ctx.init()
            src = ctx.malloc(8 * 4)
            dest = ctx.malloc(8 * 4)
            ctx.barrier()
            with ctx.superstep():
                with pytest.raises(RuntimeStateError):
                    ctx.resilient_allreduce(dest, src, 4, 1, "sum", "long")
            ctx.barrier()
            ctx.close()

        run(2, body)

    def test_invalid_call_raises_at_call_site(self):
        """Validation happens at the deferred call, not at the flush."""
        from repro.errors import CollectiveArgumentError

        def body(ctx):
            ctx.init()
            src = ctx.malloc(8 * 4)
            dest = ctx.malloc(8 * 4)
            ctx.barrier()
            with ctx.superstep() as step:
                with pytest.raises(CollectiveArgumentError):
                    ctx.broadcast(dest, src, 4, 1, 99, "long")  # bad root
                assert step.pending == 0
            ctx.barrier()
            ctx.close()

        run(2, body)


class TestCoalescing:
    def test_contiguous_puts_merge(self):
        from repro.runtime.superstep import Superstep, _Transfer

        dt = np.dtype(np.int64)
        xfers = [
            _Transfer("put", 1000, 2000, 4, 1, 1, dt),
            _Transfer("put", 1032, 2032, 4, 1, 1, dt),   # contiguous
            _Transfer("put", 1100, 2100, 2, 1, 1, dt),   # gap
            _Transfer("put", 1000, 2000, 4, 1, 2, dt),   # other peer
            _Transfer("get", 1032, 2032, 4, 1, 1, dt),   # other kind
        ]
        merged = list(Superstep._coalesce(xfers))
        put_p1 = [t for t in merged if t.kind == "put" and t.pe == 1]
        assert [(t.dest, t.nelems) for t in put_p1] == [(1000, 8), (1100, 2)]
        assert len([t for t in merged if t.pe == 2]) == 1
        assert len([t for t in merged if t.kind == "get"]) == 1

    def test_dest_contiguous_src_gap_not_merged(self):
        from repro.runtime.superstep import Superstep, _Transfer

        dt = np.dtype(np.int64)
        xfers = [
            _Transfer("put", 1000, 2000, 4, 1, 1, dt),
            _Transfer("put", 1032, 2064, 4, 1, 1, dt),  # src jumps
        ]
        assert len(list(Superstep._coalesce(xfers))) == 2

    def test_strided_transfers_pass_through(self):
        from repro.runtime.superstep import Superstep, _Transfer

        dt = np.dtype(np.int64)
        xfers = [
            _Transfer("put", 1000, 2000, 4, 2, 1, dt),
            _Transfer("put", 1064, 2064, 4, 2, 1, dt),
        ]
        assert len(list(Superstep._coalesce(xfers))) == 2


class TestBatching:
    def test_same_shape_allreduces_widen(self):
        """K same-shape allreduces flush as one widened schedule: the
        per-request stats still count, but no fused-flush entry."""
        def body(ctx):
            ctx.init()
            srcs = [ctx.malloc(8 * 4) for _ in range(4)]
            dsts = [ctx.malloc(8 * 4) for _ in range(4)]
            for j, s in enumerate(srcs):
                _fill(ctx, s, 4, salt=j)
            ctx.barrier()
            with ctx.superstep():
                for s, d in zip(srcs, dsts):
                    ctx.allreduce(d, s, 4, 1, "sum", "long")
            ctx.barrier()
            out = [list(ctx.view(d, "long", 4, 1)) for d in dsts]
            ctx.close()
            return out

        results, machine = run(4, body)
        assert machine.stats.collective_calls["allreduce:doubling"] == 4
        assert "superstep:flush" not in machine.stats.collective_calls
        assert all(r == results[0] for r in results)

    def test_mixed_collectives_fuse(self):
        def body(ctx):
            ctx.init()
            srcs = [ctx.malloc(8 * 4) for _ in range(3)]
            dsts = [ctx.malloc(8 * 4) for _ in range(3)]
            for j, s in enumerate(srcs):
                _fill(ctx, s, 4, salt=j)
            ctx.barrier()
            with ctx.superstep():
                ctx.broadcast(dsts[0], srcs[0], 4, 1, 0, "long")
                ctx.reduce(dsts[1], srcs[1], 4, 1, 1, "sum", "long")
                ctx.allreduce(dsts[2], srcs[2], 4, 1, "sum", "long")
            ctx.barrier()
            ctx.close()

        _, machine = run(4, body)
        calls = machine.stats.collective_calls
        assert calls["superstep:flush"] == 1
        assert calls["broadcast:binomial"] == 1
        assert calls["reduce:sum:binomial"] == 1
        assert calls["allreduce:doubling"] == 1

    def test_overlapping_buffers_split_batch(self):
        """A request whose buffers overlap an earlier one cannot join
        its batch — the flush falls back to two executions, preserving
        the eager read-after-write chain."""
        def body(ctx):
            ctx.init()
            src = ctx.malloc(8 * 4)
            mid = ctx.malloc(8 * 4)
            dest = ctx.malloc(8 * 4)
            _fill(ctx, src, 4)
            ctx.barrier()
            with ctx.superstep():
                ctx.allreduce(mid, src, 4, 1, "sum", "long")
                ctx.allreduce(dest, mid, 4, 1, "sum", "long")  # reads mid
            ctx.barrier()
            n = ctx.num_pes()
            want = [(v * n) * n for v in
                    ((np.arange(4, dtype=np.int64) * 3).tolist())]
            got = list(ctx.view(dest, "long", 4, 1))
            ctx.close()
            return got, want

        # my_pe()*7 terms: sum over PEs of (3i + 7me) = n*3i + 7*n(n-1)/2
        def eager(ctx):
            ctx.init()
            src = ctx.malloc(8 * 4)
            mid = ctx.malloc(8 * 4)
            dest = ctx.malloc(8 * 4)
            _fill(ctx, src, 4)
            ctx.barrier()
            ctx.allreduce(mid, src, 4, 1, "sum", "long")
            ctx.allreduce(dest, mid, 4, 1, "sum", "long")
            ctx.barrier()
            got = list(ctx.view(dest, "long", 4, 1))
            ctx.close()
            return got

        results, _ = run(4, body)
        expected, _ = run(4, eager)
        assert [r[0] for r in results] == expected

    def test_mid_step_barrier_flushes(self):
        def body(ctx):
            ctx.init()
            src = ctx.malloc(8 * 4)
            dest = ctx.malloc(8 * 4)
            _fill(ctx, src, 4)
            ctx.barrier()
            with ctx.superstep() as step:
                ctx.allreduce(dest, src, 4, 1, "sum", "long")
                ctx.barrier()  # flush point: results visible after
                visible = list(ctx.view(dest, "long", 4, 1))
                assert step.flushes == 1 and step.pending == 0
            ctx.close()
            return visible

        results, _ = run(2, body)
        assert all(r != [0, 0, 0, 0] for r in results)

    def test_opaque_collectives_preserve_order(self):
        """A non-fusable collective (scan) between two fusable ones
        splits the batch but keeps call order."""
        def body(ctx):
            ctx.init()
            bufs = [ctx.malloc(8 * 4) for _ in range(6)]
            for j in (0, 2, 4):
                _fill(ctx, bufs[j], 4, salt=j)
            ctx.barrier()
            with ctx.superstep():
                ctx.allreduce(bufs[1], bufs[0], 4, 1, "sum", "long")
                ctx.scan(bufs[3], bufs[2], 4, 1, "sum", "long")
                ctx.allreduce(bufs[5], bufs[4], 4, 1, "sum", "long")
            ctx.barrier()
            ctx.close()

        _, machine = run(4, body)
        calls = machine.stats.collective_calls
        assert calls["allreduce:doubling"] == 2
        assert calls["scan:inclusive"] == 1


class TestDescribe:
    """`Schedule.describe()` snapshot: Pipeline blocks render."""

    def test_plain_stages(self):
        from repro.collectives.allreduce import compile_allreduce

        sched = compile_allreduce(8, 64, 1, 8, "sum")
        assert sched.describe() == (
            "allreduce:doubling n_pes=8 root=None op=sum "
            "stages=3 [1+1+1]"
        )

    def test_pipeline_blocks(self):
        from repro.collectives.allreduce import compile_allreduce

        sched = compile_allreduce(8, 64, 1, 8, "sum",
                                  algorithm="dual-pipelined", segments=4)
        assert sched.describe() == (
            "allreduce:dual-pipelined n_pes=8 root=None op=sum "
            "stages=9 [pipe(6x4->9)]"
        )

    def test_widened_and_fused(self):
        from repro.collectives.schedule.fuse import compile_widened

        sched = compile_widened("allreduce", "doubling", 4, 0, "sum", 8,
                                (8, 8))
        text = sched.describe()
        assert text.startswith("allreduce:doubling-widened n_pes=4 ")
