"""Tests for the ISA-fidelity transfer path.

``fidelity="isa"`` must move exactly the same bytes as the analytic
``model`` path — the transfers execute as generated xBGAS assembly on
the functional cores.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime import Machine
from repro.runtime.isa_path import _gen_program
from repro.isa.assembler import assemble

from ..conftest import small_config


def isa_config(n_pes=2, **kw):
    return small_config(n_pes, fidelity="isa", **kw)


class TestGeneratedPrograms:
    @pytest.mark.parametrize("eb", [1, 2, 4, 8, 16])
    @pytest.mark.parametrize("unroll", [1, 4])
    def test_programs_assemble(self, eb, unroll):
        prog = assemble(_gen_program(eb, unroll))
        assert len(prog.words) > 0

    def test_unrolled_program_is_longer(self):
        plain = assemble(_gen_program(8, 1))
        unrolled = assemble(_gen_program(8, 4))
        assert len(unrolled.words) > len(plain.words)


class TestFunctionalEquivalence:
    @pytest.mark.parametrize("nelems,stride", [(1, 1), (5, 1), (16, 1),
                                               (7, 3), (33, 2)])
    def test_put_matches_model_path(self, nelems, stride):
        def body(ctx, data):
            ctx.init()
            span = 8 * ((nelems - 1) * stride + 1)
            buf = ctx.malloc(span)
            src = ctx.private_malloc(span)
            if ctx.my_pe() == 0:
                ctx.view(src, "long", nelems, stride)[:] = data
                ctx.put(buf, src, nelems, stride, 1, "long")
            ctx.barrier()
            got = list(ctx.view(buf, "long", nelems, stride))
            ctx.close()
            return got

        rng = np.random.default_rng(nelems * 31 + stride)
        data = rng.integers(-(2 ** 40), 2 ** 40, size=nelems)
        isa_res = Machine(isa_config()).run(body, [(data,)] * 2)
        model_res = Machine(small_config(2)).run(body, [(data,)] * 2)
        assert isa_res[1] == model_res[1] == list(data)

    def test_get_matches_model_path(self):
        def body(ctx):
            ctx.init()
            buf = ctx.malloc(8 * 12)
            ctx.view(buf, "long", 12)[:] = ctx.my_pe() * 1000 + np.arange(12)
            ctx.barrier()
            dst = ctx.private_malloc(8 * 12)
            ctx.get(dst, buf, 12, 1, (ctx.my_pe() + 1) % 2, "long")
            got = list(ctx.view(dst, "long", 12))
            ctx.close()
            return got

        isa_res = Machine(isa_config()).run(body)
        model_res = Machine(small_config(2)).run(body)
        assert isa_res == model_res

    @pytest.mark.parametrize("typename", ["char", "short", "int", "long",
                                          "longdouble"])
    def test_every_width(self, typename):
        from repro.types import typeinfo

        info = typeinfo(typename)

        def body(ctx):
            ctx.init()
            eb = info.nbytes
            buf = ctx.malloc(eb * 4, align=16)
            src = ctx.private_malloc(eb * 4, align=16)
            sv = ctx.view(src, info.dtype, 4)
            sv[:] = np.array([1, 2, 3, 4], dtype=info.dtype)
            ctx.put(buf, src, 4, 1, (ctx.my_pe() + 1) % 2, info.dtype)
            ctx.barrier()
            ok = bool(np.all(ctx.view(buf, info.dtype, 4) == sv))
            ctx.close()
            return ok

        assert all(Machine(isa_config()).run(body))


class TestCosting:
    def test_instructions_counted(self):
        def body(ctx):
            ctx.init()
            buf = ctx.malloc(8 * 64)
            src = ctx.private_malloc(8 * 64)
            ctx.put(buf, src, 64, 1, (ctx.my_pe() + 1) % 2, "long")
            ctx.barrier()
            ctx.close()

        m = Machine(isa_config())
        m.run(body)
        assert m.stats.instructions_executed > 2 * 64  # both PEs' loops

    def test_per_element_remote_stores(self):
        """The ISA path issues one remote store per element — the true
        xBGAS behaviour the model path aggregates away."""
        def body(ctx):
            ctx.init()
            buf = ctx.malloc(8 * 10)
            src = ctx.private_malloc(8 * 10)
            if ctx.my_pe() == 0:
                ctx.put(buf, src, 10, 1, 1, "long")
            ctx.barrier()
            ctx.close()

        m = Machine(isa_config())
        m.run(body)
        assert m.stats.remote_puts == 10

    def test_time_advances_with_transfer_size(self):
        def make_body(nelems):
            def body(ctx):
                ctx.init()
                buf = ctx.malloc(8 * 256)
                src = ctx.private_malloc(8 * 256)
                ctx.barrier()
                t0 = ctx.pe.clock
                if ctx.my_pe() == 0:
                    ctx.put(buf, src, nelems, 1, 1, "long")
                dt = ctx.pe.clock - t0
                ctx.barrier()
                ctx.close()
                return dt

            return body

        small = Machine(isa_config()).run(make_body(4))[0]
        large = Machine(isa_config()).run(make_body(200))[0]
        assert large > small
