"""Tests for the symmetric heap and the allocators (paper Figure 2)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import AllocationError
from repro.runtime.symmetric_heap import (
    FreeListAllocator,
    ScratchStack,
    SymmetricHeap,
)


class TestFreeListAllocator:
    def test_alloc_within_bounds(self):
        a = FreeListAllocator(0x1000, 0x1000)
        p = a.alloc(100)
        assert 0x1000 <= p < 0x2000

    def test_alignment(self):
        a = FreeListAllocator(0x1001, 0x1000)
        p = a.alloc(8, align=64)
        assert p % 64 == 0

    def test_power_of_two_alignment_required(self):
        a = FreeListAllocator(0, 256)
        with pytest.raises(AllocationError):
            a.alloc(8, align=24)

    def test_positive_size_required(self):
        a = FreeListAllocator(0, 256)
        with pytest.raises(AllocationError):
            a.alloc(0)

    def test_distinct_blocks_disjoint(self):
        a = FreeListAllocator(0, 4096)
        p1, p2 = a.alloc(100), a.alloc(100)
        assert abs(p1 - p2) >= 100

    def test_free_and_reuse(self):
        a = FreeListAllocator(0, 256)
        p1 = a.alloc(200)
        with pytest.raises(AllocationError):
            a.alloc(200)
        a.free(p1)
        assert a.alloc(200) is not None

    def test_coalescing(self):
        a = FreeListAllocator(0, 300)
        ps = [a.alloc(100, align=1) for _ in range(3)]
        for p in ps:
            a.free(p)
        # After coalescing, one 300-byte block must be available again.
        assert a.alloc(300, align=1) is not None

    def test_double_free_rejected(self):
        a = FreeListAllocator(0, 256)
        p = a.alloc(16)
        a.free(p)
        with pytest.raises(AllocationError):
            a.free(p)

    def test_free_unknown_rejected(self):
        a = FreeListAllocator(0, 256)
        with pytest.raises(AllocationError):
            a.free(0x99)

    def test_out_of_memory_message(self):
        a = FreeListAllocator(0, 128)
        with pytest.raises(AllocationError, match="out of memory"):
            a.alloc(1024)

    def test_accounting(self):
        a = FreeListAllocator(0, 1024)
        p = a.alloc(100)
        assert a.bytes_allocated >= 100
        assert a.owns(p)
        assert a.size_of(p) >= 100
        a.free(p)
        assert a.bytes_allocated == 0
        assert a.bytes_free == 1024

    @given(st.lists(st.tuples(st.integers(1, 200),
                              st.sampled_from([1, 8, 16, 64])),
                    min_size=1, max_size=40))
    def test_alloc_free_invariants(self, sizes):
        """Blocks never overlap; freeing everything restores all bytes."""
        a = FreeListAllocator(0x100, 8192)
        live: dict[int, int] = {}
        for nbytes, align in sizes:
            try:
                p = a.alloc(nbytes, align)
            except AllocationError:
                continue
            assert p % align == 0
            for q, qn in live.items():
                assert p + nbytes <= q or q + qn <= p, "overlap"
            live[p] = nbytes
        for p in list(live):
            a.free(p)
        assert a.bytes_free == 8192
        assert a.n_allocations == 0


class TestSymmetricHeap:
    def test_collective_calls_agree(self):
        """Every PE's N-th malloc returns the same address."""
        h = SymmetricHeap(0x1000, 4096, n_pes=4)
        addrs = [h.collective_malloc(0, 128) for _ in range(4)]
        assert len(set(addrs)) == 1

    def test_sequence_of_collectives(self):
        h = SymmetricHeap(0x1000, 4096, n_pes=2)
        a0 = h.collective_malloc(0, 64)
        b0 = h.collective_malloc(1, 64)
        a1 = h.collective_malloc(0, 64)
        b1 = h.collective_malloc(1, 64)
        assert (a0, b0) == (a1, b1)
        assert a0 != b0

    def test_divergent_args_detected(self):
        h = SymmetricHeap(0x1000, 4096, n_pes=2)
        h.collective_malloc(0, 64)
        with pytest.raises(AllocationError, match="divergent"):
            h.collective_malloc(0, 128)

    def test_out_of_order_call_detected(self):
        h = SymmetricHeap(0x1000, 4096, n_pes=2)
        with pytest.raises(AllocationError):
            h.collective_malloc(5, 64)

    def test_collective_free(self):
        h = SymmetricHeap(0x1000, 256, n_pes=2)
        p = h.collective_malloc(0, 200)
        h.collective_malloc(0, 200)  # second PE replays
        h.collective_free(1, p)
        h.collective_free(1, p)
        assert h.collective_malloc(2, 200) is not None


class TestScratchStack:
    def test_same_push_order_same_addresses(self):
        s1 = ScratchStack(0x8000, 4096)
        s2 = ScratchStack(0x8000, 4096)
        a1, b1 = s1.alloc(100), s1.alloc(50)
        a2, b2 = s2.alloc(100), s2.alloc(50)
        assert (a1, b1) == (a2, b2)

    def test_lifo_enforced(self):
        s = ScratchStack(0, 4096)
        a = s.alloc(64)
        b = s.alloc(64)
        with pytest.raises(AllocationError, match="LIFO"):
            s.free(a)
        s.free(b)
        s.free(a)
        assert s.bytes_used == 0

    def test_exhaustion_message_names_config(self):
        s = ScratchStack(0, 128)
        with pytest.raises(AllocationError, match="collective_scratch_bytes"):
            s.alloc(1024)

    def test_free_empty_rejected(self):
        s = ScratchStack(0, 128)
        with pytest.raises(AllocationError):
            s.free(0)

    def test_alignment(self):
        s = ScratchStack(0x11, 4096)
        assert s.alloc(8, align=16) % 16 == 0

    def test_depth(self):
        s = ScratchStack(0, 4096)
        a = s.alloc(8)
        assert s.depth == 1
        s.free(a)
        assert s.depth == 0
