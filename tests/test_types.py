"""Tests for Table 1: the xBGAS matched type names and types."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TypeNameError
from repro.types import (
    FLOAT_TYPENAMES,
    INTEGRAL_TYPENAMES,
    TYPE_TABLE,
    TYPENAMES,
    dtype_of,
    typeinfo,
)

# The paper's Table 1, row for row.
PAPER_TABLE_1 = [
    ("float", "float"),
    ("double", "double"),
    ("longdouble", "long double"),
    ("char", "char"),
    ("uchar", "unsigned char"),
    ("schar", "signed char"),
    ("ushort", "unsigned short"),
    ("short", "short"),
    ("uint", "unsigned int"),
    ("int", "int"),
    ("ulong", "unsigned long"),
    ("long", "long"),
    ("ulonglong", "unsigned long long"),
    ("longlong", "long long"),
    ("uint8", "uint8_t"),
    ("int8", "int8_t"),
    ("uint16", "uint16_t"),
    ("int16", "int16_t"),
    ("uint32", "uint32_t"),
    ("int32", "int32_t"),
    ("uint64", "uint64_t"),
    ("int64", "int64_t"),
    ("size", "size_t"),
    ("ptrdiff", "ptrdiff_t"),
]


def test_table_has_24_rows():
    assert len(TYPE_TABLE) == 24
    assert len(TYPENAMES) == 24


def test_table_matches_paper_exactly():
    ours = [(t.typename, t.ctype) for t in TYPE_TABLE]
    assert ours == PAPER_TABLE_1


@pytest.mark.parametrize("typename,_", PAPER_TABLE_1)
def test_every_typename_resolves(typename, _):
    info = typeinfo(typename)
    assert info.typename == typename
    assert info.nbytes == info.dtype.itemsize
    assert dtype_of(typename) == info.dtype


def test_unknown_typename_raises():
    with pytest.raises(TypeNameError):
        typeinfo("quadfloat")


def test_float_partition():
    assert set(FLOAT_TYPENAMES) == {"float", "double", "longdouble"}
    assert set(FLOAT_TYPENAMES) | set(INTEGRAL_TYPENAMES) == set(TYPENAMES)
    assert not set(FLOAT_TYPENAMES) & set(INTEGRAL_TYPENAMES)


@pytest.mark.parametrize(
    "typename,nbytes",
    [("char", 1), ("short", 2), ("int", 4), ("long", 8),
     ("float", 4), ("double", 8), ("uint16", 2), ("uint64", 8),
     ("size", 8), ("ptrdiff", 8)],
)
def test_c_type_sizes(typename, nbytes):
    assert typeinfo(typename).nbytes == nbytes


def test_signedness():
    assert typeinfo("int").is_signed
    assert not typeinfo("uint").is_signed
    assert typeinfo("double").is_signed
    assert not typeinfo("size").is_signed


def test_aliased_typenames_share_dtype():
    # Distinct TYPENAMEs for the same C width still get distinct calls
    # but model the same dtype.
    assert typeinfo("ulong").dtype == typeinfo("ulonglong").dtype
    assert typeinfo("long").dtype == typeinfo("longlong").dtype


def test_longdouble_is_extended():
    assert typeinfo("longdouble").dtype == np.dtype(np.longdouble)
    assert typeinfo("longdouble").is_float
