"""Tests for the deterministic PDES engine."""

from __future__ import annotations

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim.engine import Engine, PEState


class TestBasicExecution:
    def test_runs_all_pes(self):
        eng = Engine(4)
        results = eng.run(lambda pe: pe.rank * 10)
        assert results == [0, 10, 20, 30]

    def test_per_pe_args(self):
        eng = Engine(3)
        results = eng.run(lambda pe, x: x + pe.rank, [(100,), (200,), (300,)])
        assert results == [100, 201, 302]

    def test_clock_advances(self):
        eng = Engine(2)

        def body(pe):
            pe.advance(42.5)
            return pe.clock

        assert eng.run(body) == [42.5, 42.5]
        assert eng.elapsed_ns == 42.5

    def test_negative_advance_rejected(self):
        eng = Engine(1)

        def body(pe):
            pe.advance(-1)

        with pytest.raises(SimulationError):
            eng.run(body)

    def test_advance_to_only_moves_forward(self):
        eng = Engine(1)

        def body(pe):
            pe.advance_to(100)
            pe.advance_to(50)
            return pe.clock

        assert eng.run(body) == [100]

    def test_engine_not_reentrant(self):
        eng = Engine(1)

        def body(pe):
            eng.run(lambda p: None)

        with pytest.raises(SimulationError):
            eng.run(body)


class TestScheduling:
    def test_smallest_clock_runs_first(self):
        """Checkpoints order PEs by simulated clock, deterministically."""
        eng = Engine(3)
        order = []

        def body(pe):
            pe.advance((3 - pe.rank) * 100)  # PE2 smallest, PE0 largest
            eng.checkpoint()
            order.append(pe.rank)

        eng.run(body)
        assert order == [2, 1, 0]

    def test_tied_clocks_deterministic(self):
        """On clock ties the running PE continues (no switch storm) and
        the rest are scheduled in rank order — the same order each run."""
        def make_order():
            eng = Engine(4)
            order = []

            def body(pe):
                pe.advance(5.0)
                eng.checkpoint()
                order.append(pe.rank)

            eng.run(body)
            return order

        first = make_order()
        assert sorted(first) == [0, 1, 2, 3]
        assert first == make_order()

    def test_determinism_across_runs(self):
        def make_trace():
            eng = Engine(4)
            trace = []

            def body(pe):
                for i in range(5):
                    pe.advance((pe.rank * 7 + i * 3) % 11 + 1)
                    eng.checkpoint()
                    trace.append((pe.rank, pe.clock))

            eng.run(body)
            return trace

        assert make_trace() == make_trace()


class TestSuspendResume:
    def test_suspend_until_resumed(self):
        eng = Engine(2)
        log = []

        def body(pe):
            if pe.rank == 0:
                eng.suspend()
                log.append(("woke", pe.clock))
            else:
                pe.advance(500)
                eng.checkpoint()
                eng.resume(0, at_time=pe.clock)
                log.append(("resumer", pe.clock))

        eng.run(body)
        assert ("woke", 500) in log

    def test_resume_non_blocked_raises(self):
        eng = Engine(2)

        def body(pe):
            if pe.rank == 1:
                eng.resume(0)  # PE0 is runnable, not blocked

        with pytest.raises(SimulationError):
            eng.run(body)

    def test_deadlock_detected(self):
        eng = Engine(2)

        def body(pe):
            eng.suspend()  # everyone blocks, nobody resumes

        with pytest.raises(DeadlockError):
            eng.run(body)

    def test_pe_error_beats_deadlock_report(self):
        """A crash that strands peers must surface as the crash."""
        eng = Engine(2)

        def body(pe):
            if pe.rank == 0:
                eng.suspend()
            else:
                raise ValueError("boom")

        with pytest.raises(SimulationError) as exc_info:
            eng.run(body)
        assert isinstance(exc_info.value.__cause__, ValueError)

    def test_failure_annotated_with_rank(self):
        eng = Engine(3)

        def body(pe):
            if pe.rank == 2:
                raise RuntimeError("pe2 exploded")

        with pytest.raises(SimulationError, match="PE 2"):
            eng.run(body)


class TestStateQueries:
    def test_current_outside_pe_code(self):
        eng = Engine(1)
        with pytest.raises(SimulationError):
            _ = eng.current

    def test_states_after_run(self):
        eng = Engine(2)
        eng.run(lambda pe: None)
        assert all(p.state is PEState.DONE for p in eng.pes)

    def test_needs_positive_pes(self):
        with pytest.raises(SimulationError):
            Engine(0)


class TestTrace:
    def test_trace_records_when_enabled(self):
        eng = Engine(1, trace=True)

        def body(pe):
            eng.record("test-event", "hello")

        eng.run(body)
        events = eng.trace.of_kind("test-event")
        assert len(events) == 1
        assert events[0].detail == "hello"

    def test_trace_disabled_by_default(self):
        eng = Engine(1)

        def body(pe):
            eng.record("x")

        eng.run(body)
        assert len(eng.trace) == 0

    def test_trace_bounded(self):
        from repro.sim.trace import EventTrace

        t = EventTrace(enabled=True, max_events=10)
        for i in range(25):
            t.record(float(i), 0, "e")
        assert len(t) <= 10
        assert t.dropped > 0
