"""Span-tree metrics over the two-sided transport.

Regression for a latent one-sided assumption: ``_fold_ops`` used to
count only ``put``/``get`` spans, so a mailbox-lowered collective
reported zero messages moved.  Sends now fold into the stage message
counters — and only sends, because the matching recv is the *same*
wire message and folding both would double-count every transfer.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.context import Machine

from ..conftest import small_config

_I64 = np.dtype("int64")


def _allreduce_prog(ctx, nelems):
    ctx.init()
    try:
        src = ctx.malloc(_I64.itemsize * nelems)
        dest = ctx.malloc(_I64.itemsize * nelems)
        ctx.view(src, _I64, nelems)[:] = ctx.my_pe() + 1
        ctx.allreduce(dest, src, nelems, 1, dtype=_I64)
        out = ctx.view(dest, _I64, nelems).copy()
        ctx.free(dest)
        ctx.free(src)
        return out
    finally:
        ctx.close()


def _run_traced(transport):
    m = Machine(small_config(4), trace=True, transport=transport)
    results = m.run(_allreduce_prog, [(8,)] * 4)
    want = np.full(8, sum(range(1, 5)))
    for out in results:
        assert np.array_equal(out, want)
    return m


def test_mailbox_collective_reports_messages():
    m = _run_traced("mailbox")
    calls = [c for c in m.collective_metrics() if not c.nested]
    assert calls, "no collective spans were traced"
    total_msgs = sum(c.total_messages for c in calls)
    total_bytes = sum(c.total_bytes for c in calls)
    # Every wire message is counted exactly once, on the send side —
    # if recvs folded too, these would come out doubled.
    assert total_msgs == m.stats.sends
    assert total_bytes == m.stats.bytes_sent
    assert total_msgs > 0
    assert m.stats.recvs == m.stats.sends


def test_transports_agree_on_payload_accounting():
    """The two transports move the same logical payload per stage."""
    one = _run_traced("onesided")
    two = _run_traced("mailbox")

    def payload(m):
        return sum(c.total_bytes for c in m.collective_metrics()
                   if not c.nested)

    # Put payloads map 1:1 onto send payloads; get requests are
    # zero-byte control messages, so byte totals match exactly.
    assert payload(two) == payload(one)
    assert payload(one) > 0
