"""Direct-handoff scheduler vs scheduler-bounce reference.

Both strategies must produce the *identical* deterministic event order:
same per-PE results, same final clocks, same makespan, and byte-identical
event traces — across PE counts, collective shapes and blocking patterns.
The direct-handoff path only changes how threads exchange control, never
which PE runs next.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DeadlockError
from repro.params import MachineConfig
from repro.runtime.context import Machine
from repro.sim.engine import Engine


def run_engine(direct, body, n_pes, args=None):
    eng = Engine(n_pes, trace=True, direct_handoff=direct)
    results = eng.run(body, args)
    trace = [
        (e.time_ns, e.pe, e.kind, e.detail) for e in eng.trace._events
    ]
    clocks = [pe.clock for pe in eng.pes]
    return results, clocks, eng.elapsed_ns, trace


def assert_schedules_identical(body, n_pes, args=None):
    ref = run_engine(False, body, n_pes, args)
    fast = run_engine(True, body, n_pes, args)
    assert fast == ref


class TestEngineEquivalence:
    @pytest.mark.parametrize("n_pes", range(1, 13))
    def test_yield_storm(self, n_pes):
        """Unequal advances force constant reordering of the run queue."""

        def body(pe):
            for i in range(40):
                pe.advance(1.0 + ((pe.rank * 7 + i) % 5))
                pe.engine.record("tick", f"{pe.rank}:{i}")
                pe.engine.checkpoint()
            return pe.clock

        assert_schedules_identical(body, n_pes)

    @pytest.mark.parametrize("n_pes", [2, 3, 5, 8])
    def test_suspend_resume_chains(self, n_pes):
        """Neighbour wake-up chains exercise suspend/resume ordering."""

        def body(pe):
            eng = pe.engine
            for round_ in range(6):
                pe.advance(float((pe.rank + round_) % 3 + 1))
                if pe.rank == round_ % n_pes:
                    # Wake everyone else, then yield.
                    for other in eng.pes:
                        if other is not pe and other.state.value == "blocked":
                            eng.resume(other.rank, at_time=pe.clock)
                    eng.checkpoint()
                else:
                    eng.record("wait", str(round_))
                    eng.checkpoint()
            return pe.clock

        assert_schedules_identical(body, n_pes)

    def test_all_clocks_tied(self):
        """Equal clocks at every step: both strategies apply the same
        no-preemption-on-tie rule, so the interleaving stays identical."""

        def body(pe):
            for _ in range(10):
                pe.advance(1.0)  # all PEs share the same clock
                pe.engine.record("step", str(pe.rank))
                pe.engine.checkpoint()
            return pe.clock

        ref = run_engine(False, body, 6)
        fast = run_engine(True, body, 6)
        assert fast == ref
        # The very first round starts from identical NEW PEs, so it must
        # come out rank-ordered.
        first_round = [rank for _, rank, _, _ in fast[3][:6]]
        assert first_round == list(range(6))

    def test_deadlock_detected_on_both_paths(self):
        def body(pe):
            pe.engine.suspend()  # nobody will resume us

        for direct in (False, True):
            eng = Engine(2, direct_handoff=direct)
            with pytest.raises(DeadlockError):
                eng.run(body)


class TestMachineEquivalence:
    """End-to-end: full collectives through both scheduler strategies.

    ``Machine(fast_paths=...)`` flips the scheduler and memory fast paths
    together; with the costing layer already proven bit-identical
    (test_costing_equivalence), trace equality here pins the schedule.
    """

    @pytest.mark.parametrize("n_pes", [1, 2, 3, 5, 8, 12])
    @pytest.mark.parametrize("op", ["broadcast", "reduce_all", "alltoall"])
    def test_collective_traces_byte_identical(self, n_pes, op):
        def body(ctx, op):
            ctx.init()
            n = ctx.num_pes()
            nelems = 16
            src = ctx.malloc(8 * nelems * n)
            dest = ctx.malloc(8 * nelems * n)
            ctx.view(src, "int64", nelems * n)[:] = (
                np.arange(nelems * n) + ctx.my_pe()
            )
            if op == "broadcast":
                ctx.broadcast(src, src, nelems, 1, 0)
                out = ctx.view(src, "int64", nelems).copy()
            elif op == "reduce_all":
                ctx.reduce_all(dest, src, nelems, 1, "sum")
                out = ctx.view(dest, "int64", nelems).copy()
            else:
                ctx.alltoall(dest, src, nelems)
                out = ctx.view(dest, "int64", nelems * n).copy()
            t = ctx.time_ns
            ctx.close()
            return out.tolist(), t

        runs = {}
        for fast in (False, True):
            m = Machine(MachineConfig(n_pes=n_pes), fast_paths=fast,
                        trace=True)
            res = m.run(body, [(op,)] * n_pes)
            trace = [
                (e.time_ns, e.pe, e.kind, e.detail)
                for e in m.engine.trace._events
            ]
            runs[fast] = (res, m.engine.elapsed_ns, trace)
        assert runs[True] == runs[False]
