"""Tests for the hierarchical span layer over the event trace."""

from __future__ import annotations

import json

from repro.runtime import Machine
from repro.sim.chrome_trace import chrome_trace
from repro.sim.metrics import collective_metrics
from repro.sim.spans import build_span_forest, walk
from repro.sim.trace import EventTrace

from ..conftest import small_config


def _run_broadcast(n_pes: int, trace: bool) -> Machine:
    machine = Machine(small_config(n_pes), trace=trace)

    def body(ctx):
        ctx.init()
        buf = ctx.malloc(64)
        src = ctx.private_malloc(64)
        if ctx.my_pe() == 0:
            ctx.view(src, "long", 4, 1)[:] = [1, 2, 3, 4]
        ctx.broadcast(buf, src, 4, 1, 0, "long")
        ctx.close()

    machine.run(body)
    return machine


class TestDisabledMode:
    """With tracing off, span emission must be a strict no-op."""

    def test_records_nothing(self):
        machine = _run_broadcast(4, trace=False)
        trace = machine.engine.trace
        assert len(trace) == 0
        assert trace.spans() == []
        assert trace.dropped == 0
        assert trace.dropped_by_kind == {}

    def test_begin_returns_zero_and_keeps_no_state(self):
        machine = Machine(small_config(2))
        spans = machine.engine.spans
        assert spans.begin(0, "collective", "broadcast") == 0
        assert spans.depth(0) == 0
        assert spans.current(0) == 0
        spans.end(0)  # no stack underflow
        assert len(machine.engine.trace) == 0

    def test_user_span_is_noop(self):
        machine = Machine(small_config(2))

        def body(ctx):
            ctx.init()
            with ctx.span("phase", step=1):
                ctx.barrier()
            ctx.close()

        machine.run(body)
        assert len(machine.engine.trace) == 0

    def test_collective_metrics_empty(self):
        machine = _run_broadcast(4, trace=False)
        assert machine.collective_metrics() == []


class TestEnabledMode:
    def test_span_events_flow_through_trace(self):
        machine = _run_broadcast(4, trace=True)
        trace = machine.engine.trace
        spans = trace.spans()
        assert spans, "traced run must record span events"
        # All span events use the reserved kind and well-formed details.
        for e in spans:
            assert e.kind == "span"
            assert e.span_id > 0
            assert e.dur_ns >= 0.0
            kind, _, name = e.detail.partition(":")
            assert kind in ("collective", "stage", "op", "user")
            assert name
        # Instant events are untouched by span emission.
        assert len(trace.of_kind("put")) >= 3

    def test_forest_structure(self):
        machine = _run_broadcast(4, trace=True)
        forest = build_span_forest(machine.engine.trace)
        colls = [s for s in walk(forest) for _ in [0] if s.kind == "collective"]
        assert len(colls) == 4  # one broadcast span per PE
        for c in colls:
            stages = [ch for ch in c.children if ch.kind == "stage"]
            assert len(stages) == 2  # ceil(log2 4)
            for st in stages:
                assert st.t0 >= c.t0 and st.t1 <= c.t1
                ops = [o for o in st.children if o.kind == "op"]
                assert any(o.name == "barrier" for o in ops)

    def test_user_span_recorded(self):
        machine = Machine(small_config(2), trace=True)

        def body(ctx):
            ctx.init()
            with ctx.span("phase", step=3):
                ctx.barrier()
            ctx.close()

        machine.run(body)
        users = [s for s in walk(build_span_forest(machine.engine.trace))
                 if s.kind == "user"]
        assert len(users) == 2
        assert users[0].name == "phase"
        assert users[0].attrs["step"] == 3

    def test_nesting_balanced_after_run(self):
        machine = _run_broadcast(4, trace=True)
        spans = machine.engine.spans
        for pe in range(4):
            assert spans.depth(pe) == 0


class TestDropBound:
    def test_drop_oldest_half_stays_bounded(self):
        trace = EventTrace(enabled=True, max_events=10)
        for i in range(100):
            trace.record(float(i), 0, "put", f"e{i}")
        assert len(trace) <= 10
        assert trace.dropped == 100 - len(trace)
        assert trace.dropped_of_kind("put") == trace.dropped

    def test_max_events_one_does_not_grow(self):
        # Regression: drop-oldest-half used to compute ``max_events // 2``
        # which is 0 for max_events=1, so the log grew without bound.
        trace = EventTrace(enabled=True, max_events=1)
        for i in range(50):
            trace.record(float(i), 0, "get")
        assert len(trace) == 1
        assert trace.dropped == 49

    def test_of_kind_consistent_with_drop_accounting(self):
        trace = EventTrace(enabled=True, max_events=8)
        for i in range(20):
            kind = "put" if i % 2 == 0 else "get"
            trace.record(float(i), 0, kind)
        for kind in ("put", "get"):
            assert len(trace.of_kind(kind)) + trace.dropped_of_kind(kind) == 10

    def test_span_events_share_the_bound(self):
        trace = EventTrace(enabled=True, max_events=4)
        for sid in range(1, 20):
            trace.record_span(float(sid), 0, "span", "op:put", sid, 0, 1.0)
        assert len(trace) <= 4
        assert trace.dropped_of_kind("span") == trace.dropped > 0

    def test_clear_resets_drop_counters(self):
        trace = EventTrace(enabled=True, max_events=2)
        for i in range(10):
            trace.record(float(i), 0, "put")
        trace.clear()
        assert len(trace) == 0
        assert trace.dropped == 0
        assert trace.dropped_by_kind == {}

    def test_orphaned_spans_surface_as_roots(self):
        trace = EventTrace(enabled=True, max_events=4)
        # Parent closes first, so under pressure it is evicted while the
        # (later-closing) children survive.
        trace.record_span(0.0, 0, "span", "collective:broadcast", 1, 0, 9.0)
        for sid in range(2, 12):
            trace.record_span(float(sid), 0, "span", "stage:stage",
                              sid, 1, 1.0, {"index": sid})
        forest = build_span_forest(trace)
        assert forest, "surviving children must become roots"
        assert all(s.kind == "stage" for s in forest)


class TestChromeExport:
    def test_valid_json_with_metadata(self):
        machine = _run_broadcast(4, trace=True)
        doc = machine.chrome_trace()
        text = json.dumps(doc)  # must be JSON-serialisable
        parsed = json.loads(text)
        assert parsed["otherData"]["dropped"] == 0
        assert parsed["otherData"]["recorded"] == len(machine.engine.trace)
        events = parsed["traceEvents"]
        phases = {e["ph"] for e in events}
        assert {"X", "i", "M"} <= phases
        xs = [e for e in events if e["ph"] == "X"]
        assert all(e["dur"] >= 0 for e in xs)
        assert {e["tid"] for e in xs} == {0, 1, 2, 3}

    def test_dropped_reported_in_metadata(self):
        trace = EventTrace(enabled=True, max_events=4)
        for i in range(20):
            trace.record(float(i), 0, "put")
        doc = chrome_trace(trace)
        assert doc["otherData"]["dropped"] == trace.dropped > 0
        assert doc["otherData"]["dropped_by_kind"] == {"put": trace.dropped}

    def test_time_dilation_scales_timestamps(self):
        trace = EventTrace(enabled=True)
        trace.record_span(1000.0, 0, "span", "op:put", 1, 0, 2000.0)
        base = chrome_trace(trace)["traceEvents"]
        dilated = chrome_trace(trace, time_dilation=2.0)["traceEvents"]
        x0 = next(e for e in base if e["ph"] == "X")
        x1 = next(e for e in dilated if e["ph"] == "X")
        assert x1["ts"] == 2 * x0["ts"]
        assert x1["dur"] == 2 * x0["dur"]


class TestMetricsFromSpans:
    def test_broadcast_metrics_4_pes(self):
        machine = _run_broadcast(4, trace=True)
        mets = collective_metrics(machine.engine.trace)
        assert len(mets) == 1
        cm = mets[0]
        assert cm.name == "broadcast"
        assert cm.group == (0, 1, 2, 3)
        assert cm.n_stages == 2
        assert cm.total_messages == 3  # p - 1 remote puts
        assert sorted(cm.per_pe) == [0, 1, 2, 3]
        assert cm.critical_path_ns > 0
        for act in cm.per_pe.values():
            assert act.busy_ns >= 0
            assert act.blocked_ns > 0  # every PE waits in stage barriers
