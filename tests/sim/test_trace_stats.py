"""Tests for event tracing wired into the runtime, and SimStats."""

from __future__ import annotations

from repro.runtime import Machine
from repro.sim.trace import SimStats

from ..conftest import small_config


class TestRuntimeTracing:
    def test_put_get_barrier_events_recorded(self):
        machine = Machine(small_config(2), trace=True)

        def body(ctx):
            ctx.init()
            buf = ctx.malloc(64)
            src = ctx.private_malloc(64)
            ctx.put(buf, src, 4, 1, (ctx.my_pe() + 1) % 2, "long")
            ctx.barrier()
            dst = ctx.private_malloc(64)
            ctx.get(dst, buf, 2, 1, (ctx.my_pe() + 1) % 2, "long")
            ctx.close()

        machine.run(body)
        trace = machine.engine.trace
        puts = trace.of_kind("put")
        gets = trace.of_kind("get")
        barriers = trace.of_kind("barrier")
        assert len(puts) == 2
        assert len(gets) == 2
        assert len(barriers) >= 4  # init/close/explicit per PE
        assert "32B -> PE" in puts[0].detail
        # Events carry simulated timestamps in nondecreasing per-PE order.
        by_pe: dict[int, float] = {}
        for e in trace:
            assert e.time_ns >= by_pe.get(e.pe, 0.0)
            by_pe[e.pe] = e.time_ns

    def test_tracing_off_by_default(self):
        machine = Machine(small_config(2))

        def body(ctx):
            ctx.init()
            buf = ctx.malloc(64)
            src = ctx.private_malloc(64)
            ctx.put(buf, src, 1, 1, 0, "long")
            ctx.close()

        machine.run(body)
        assert len(machine.engine.trace) == 0


class TestSimStats:
    def test_merge(self):
        a, b = SimStats(), SimStats()
        a.puts, a.bytes_put, a.amos = 3, 100, 2
        a.collective_calls["broadcast:binomial"] = 1
        b.puts, b.bytes_put = 4, 50
        b.collective_calls["broadcast:binomial"] = 2
        a.merge(b)
        assert a.puts == 7
        assert a.bytes_put == 150
        assert a.amos == 2
        assert a.collective_calls["broadcast:binomial"] == 3

    def test_summary_mentions_counters(self):
        st = SimStats()
        st.puts, st.bytes_put, st.remote_puts = 5, 40, 2
        st.barriers = 3
        st.l1_hits, st.l1_misses = 90, 10
        st.collective_calls["reduce:sum:binomial"] = 1
        text = st.summary()
        assert "puts=5" in text
        assert "barriers=3" in text
        assert "reduce:sum:binomial=1" in text
        assert "90.00%" in text  # L1 hit rate

    def test_machine_summary_after_run(self):
        machine = Machine(small_config(2))

        def body(ctx):
            ctx.init()
            buf = ctx.malloc(64)
            ctx.long_broadcast(buf, buf, 2, 1, 0)
            ctx.close()

        machine.run(body)
        text = machine.stats.summary()
        assert "broadcast:binomial=1" in text
        assert "hit rate" in text
