"""Tests for the set-associative LRU cache model."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.machine.cache import Cache, CacheLevelResult
from repro.params import CacheParams


def make(size=1024, ways=2, line=64):
    return Cache(CacheParams(size_bytes=size, ways=ways, line_bytes=line))


class TestBasics:
    def test_cold_miss_then_hit(self):
        c = make()
        assert c.access(5, False) is CacheLevelResult.MISS
        assert c.access(5, False) is CacheLevelResult.HIT
        assert (c.hits, c.misses) == (1, 1)

    def test_line_of(self):
        c = make(line=64)
        assert c.line_of(0) == 0
        assert c.line_of(63) == 0
        assert c.line_of(64) == 1

    def test_conflict_eviction(self):
        c = make(size=256, ways=2, line=64)  # 4 lines, 2 sets, 2 ways
        # Lines 0, 2, 4 all map to set 0; third insert evicts line 0.
        c.access(0, False)
        c.access(2, False)
        c.access(4, False)
        assert c.access(0, False) is CacheLevelResult.MISS

    def test_lru_order(self):
        c = make(size=256, ways=2, line=64)
        c.access(0, False)
        c.access(2, False)
        c.access(0, False)        # 0 becomes MRU
        c.access(4, False)        # evicts 2 (LRU), not 0
        assert c.access(0, False) is CacheLevelResult.HIT
        assert c.access(2, False) is CacheLevelResult.MISS

    def test_dirty_eviction_counts_writeback(self):
        c = make(size=256, ways=1, line=64)  # direct-mapped, 4 sets
        c.access(0, True)     # dirty
        c.access(4, False)    # same set, evicts dirty line 0
        assert c.writebacks == 1
        c.access(8, False)
        c.access(12, False)   # clean evictions
        assert c.writebacks == 1

    def test_write_marks_dirty_on_hit(self):
        c = make(size=256, ways=1, line=64)
        c.access(0, False)
        c.access(0, True)     # hit, now dirty
        c.access(4, False)
        assert c.writebacks == 1

    def test_probe_is_side_effect_free(self):
        c = make()
        c.access(3, False)
        h, m = c.hits, c.misses
        assert c.probe(3)
        assert not c.probe(99)
        assert (c.hits, c.misses) == (h, m)

    def test_invalidate_all(self):
        c = make()
        c.access(1, True)
        c.access(2, False)
        assert c.invalidate_all() == 1  # one dirty line discarded
        assert c.occupancy == 0
        assert c.access(1, False) is CacheLevelResult.MISS

    def test_non_power_of_two_line_rejected(self):
        with pytest.raises(ValueError):
            Cache(CacheParams(size_bytes=960, ways=2, line_bytes=48))


class TestCapacityProperties:
    def test_occupancy_bounded_by_capacity(self):
        c = make(size=512, ways=2, line=64)  # 8 lines
        for line in range(100):
            c.access(line, False)
        assert c.occupancy <= 8

    def test_working_set_within_capacity_all_hits(self):
        """A working set that fits must hit 100% after the first pass."""
        c = make(size=1024, ways=4, line=64)  # 16 lines
        for _ in range(3):
            for line in range(16):
                c.access(line, False)
        assert c.misses == 16
        assert c.hits == 32

    def test_streaming_larger_than_cache_never_hits(self):
        c = make(size=512, ways=2, line=64)  # 8 lines
        for _ in range(2):
            for line in range(64):
                c.access(line, False)
        assert c.hits == 0

    @given(st.lists(st.integers(0, 200), min_size=1, max_size=300),
           st.sampled_from([1, 2, 4]))
    def test_matches_reference_lru(self, lines, ways):
        """The model must agree with a straightforward per-set LRU oracle."""
        c = make(size=ways * 4 * 64, ways=ways, line=64)  # 4 sets
        oracle: dict[int, list[int]] = {}
        for line in lines:
            s = line % c.n_sets
            lru = oracle.setdefault(s, [])
            expect_hit = line in lru
            got = c.access(line, False)
            assert (got is CacheLevelResult.HIT) == expect_hit
            if expect_hit:
                lru.remove(line)
            elif len(lru) >= ways:
                lru.pop()
            lru.insert(0, line)
