"""Tests for the 256-entry LRU TLB model."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.machine.tlb import Tlb
from repro.params import TlbParams


def make(entries=4, page=4096):
    return Tlb(TlbParams(entries=entries, page_bytes=page))


class TestTlb:
    def test_miss_then_hit(self):
        t = make()
        assert not t.access(7)
        assert t.access(7)
        assert (t.hits, t.misses) == (1, 1)

    def test_page_of(self):
        t = make(page=4096)
        assert t.page_of(0) == 0
        assert t.page_of(4095) == 0
        assert t.page_of(4096) == 1

    def test_capacity_eviction_is_lru(self):
        t = make(entries=2)
        t.access(1)
        t.access(2)
        t.access(1)      # 1 most recent
        t.access(3)      # evicts 2
        assert t.access(1)
        assert not t.access(2)

    def test_occupancy_bounded(self):
        t = make(entries=4)
        for p in range(50):
            t.access(p)
        assert t.occupancy == 4

    def test_probe_no_side_effects(self):
        t = make()
        t.access(1)
        h, m = t.hits, t.misses
        assert t.probe(1)
        assert not t.probe(9)
        assert (t.hits, t.misses) == (h, m)

    def test_flush(self):
        t = make()
        t.access(1)
        t.flush()
        assert not t.access(1)

    def test_bad_page_size(self):
        with pytest.raises(ValueError):
            Tlb(TlbParams(page_bytes=3000))

    @given(st.lists(st.integers(0, 30), min_size=1, max_size=200))
    def test_reference_lru_oracle(self, pages):
        t = make(entries=4)
        oracle: list[int] = []
        for p in pages:
            expect = p in oracle
            assert t.access(p) == expect
            if expect:
                oracle.remove(p)
            elif len(oracle) >= 4:
                oracle.pop(0)
            oracle.append(p)
