"""Property tests for the mailbox engine (two-sided transport core).

The invariants the rest of the stack leans on, checked directly against
:class:`~repro.machine.mailbox.MailboxRouter` through the ``msg_*``
context surface:

* **Exactly-once, FIFO per pair** — under arbitrary message plans and
  sender-side timing jitter, no message is lost or duplicated and the
  per-``(src, dst)`` delivery order matches program order.
* **Backpressure** — a sender blocks exactly when the target queue
  holds ``recv_depth`` messages, drains cleanly once the receiver
  consumes, and a hopeless stall fails with
  :class:`~repro.errors.MailboxBackpressureError` leaving the queue
  untouched (commit safety: all-or-nothing enqueue).
* **Fault commit safety** — with an unreliable postoffice every
  message is either delivered exactly once (in order) or counted in
  ``mbx_dropped``; with :class:`~repro.faults.RetryConfig` armed the
  same drop plan delivers everything exactly once.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MailboxBackpressureError, MailboxProtocolError
from repro.faults import FaultPlan, RetryConfig, drop
from repro.params import MailboxParams
from repro.runtime.context import Machine

from ..conftest import small_config

_SETTINGS = settings(max_examples=10, deadline=None)

_I64 = np.dtype("int64")


def _spmd(fn):
    """Bracket a test program with the runtime's init()/close() pair."""
    def wrapper(ctx, *args):
        ctx.init()
        try:
            return fn(ctx, *args)
        finally:
            ctx.close()
    return wrapper


# ---------------------------------------------------------------------------
# exactly-once + per-pair FIFO under arbitrary plans
# ---------------------------------------------------------------------------

@st.composite
def _plans(draw):
    """(n_pes, [(src, dst), ...], per-message jitter ns)."""
    n = draw(st.integers(min_value=2, max_value=4))
    k = draw(st.integers(min_value=0, max_value=14))
    pes = st.integers(min_value=0, max_value=n - 1)
    plan = [(draw(pes), draw(pes)) for _ in range(k)]
    jitter = [draw(st.integers(min_value=0, max_value=400)) for _ in range(k)]
    return n, plan, jitter


@_spmd
def _exchange(ctx, plan, jitter):
    """Send this PE's share of ``plan`` (tag = plan index), then drain."""
    me = ctx.my_pe()
    buf = ctx.malloc(_I64.itemsize)
    view = ctx.view(buf, _I64, 1)
    try:
        for i, (src, dst) in enumerate(plan):
            if src != me:
                continue
            ctx.compute(float(jitter[i]))
            view[0] = 1000 + i
            ctx.msg_send(buf, 1, 1, dst, tag=i, dtype=_I64)
        ctx.barrier()  # network quiescence: every surviving message landed
        got = []
        while True:
            res = ctx.msg_try_recv(buf, 1, 1, dtype=_I64)
            if res is None:
                break
            got.append((res[0], res[1], int(view[0])))
        return got
    finally:
        ctx.free(buf)


class TestExactlyOnceFIFO:
    @_SETTINGS
    @given(_plans())
    def test_no_loss_no_duplication_fifo(self, case):
        n, plan, jitter = case
        m = Machine(small_config(n))
        results = m.run(_exchange, [(plan, jitter)] * n)
        # Exactly once: the delivered multiset equals the plan.
        delivered = sorted((d, s, tag)
                           for d, got in enumerate(results)
                           for (s, tag, _) in got)
        expected = sorted((dst, src, i) for i, (src, dst) in enumerate(plan))
        assert delivered == expected
        # Payload integrity: each message carries its own plan index.
        for got in results:
            for _, tag, val in got:
                assert val == 1000 + tag
        # FIFO per (src, dst): delivery order matches program order.
        for d, got in enumerate(results):
            for s in range(n):
                seen = [tag for (src, tag, _) in got if src == s]
                want = [i for i, (src, dst) in enumerate(plan)
                        if src == s and dst == d]
                assert seen == want
        assert m.stats.sends == len(plan)
        assert m.stats.recvs == len(plan)
        assert m.mailbox.dropped == 0

    def test_self_send_round_trips(self):
        plan = [(0, 0), (0, 0), (1, 0)]
        m = Machine(small_config(2))
        results = m.run(_exchange, [(plan, [0, 0, 0])] * 2)
        # Cross-source drain order follows delivery time, but each pair's
        # FIFO holds — including the loopback pair.
        assert sorted((s, t) for s, t, _ in results[0]) == \
            [(0, 0), (0, 1), (1, 2)]
        assert [t for s, t, _ in results[0] if s == 0] == [0, 1]
        assert results[1] == []


# ---------------------------------------------------------------------------
# backpressure
# ---------------------------------------------------------------------------

@_spmd
def _fill_then_overflow(ctx, depth):
    me = ctx.my_pe()
    buf = ctx.malloc(_I64.itemsize)
    view = ctx.view(buf, _I64, 1)
    try:
        if me != 0:
            return None
        for i in range(depth):
            view[0] = i
            ctx.msg_send(buf, 1, 1, 1, tag=i, dtype=_I64)
        mbx = ctx.machine.mailbox
        filled = (mbx.depth(1), mbx.stalls)
        err = None
        try:
            ctx.msg_send(buf, 1, 1, 1, tag=depth, dtype=_I64)
        except MailboxBackpressureError:
            err = "backpressure"
        return filled + (err, mbx.depth(1))
    finally:
        ctx.free(buf)


class TestBackpressure:
    def test_blocks_exactly_at_depth(self):
        """``recv_depth`` sends pass stall-free; one more fails cleanly."""
        depth, retries = 4, 3
        cfg = small_config(2, mailbox=MailboxParams(recv_depth=depth,
                                                    max_retries=retries))
        m = Machine(cfg)
        (result,) = [r for r in m.run(_fill_then_overflow,
                                      [(depth,)] * 2) if r]
        depth_filled, stalls_filled, err, depth_after = result
        assert depth_filled == depth      # exactly at capacity, no stall yet
        assert stalls_filled == 0
        assert err == "backpressure"      # the (depth+1)-th send gives up
        assert depth_after == depth       # all-or-nothing: no partial enqueue
        assert m.mailbox.stalls == retries
        assert m.mailbox.peak_depth[1] == depth
        assert m.stats.sends == depth     # the failed attempt is not a send

    def test_releases_when_receiver_drains(self):
        """A shallow queue backpressures but the stream still completes."""
        depth, total = 2, 9

        @_spmd
        def prog(ctx):
            me = ctx.my_pe()
            buf = ctx.malloc(_I64.itemsize)
            view = ctx.view(buf, _I64, 1)
            try:
                if me == 0:
                    for i in range(total):
                        view[0] = 10 * i
                        ctx.msg_send(buf, 1, 1, 1, tag=i, dtype=_I64)
                    return None
                vals = []
                for i in range(total):
                    ctx.msg_recv(buf, 1, 1, 0, tag=i, dtype=_I64)
                    vals.append(int(view[0]))
                return vals
            finally:
                ctx.free(buf)

        cfg = small_config(2, mailbox=MailboxParams(recv_depth=depth))
        m = Machine(cfg)
        results = m.run(prog)
        assert results[1] == [10 * i for i in range(total)]
        assert m.mailbox.stalls > 0              # the queue did fill up
        assert m.stats.mbx_stalls == m.mailbox.stalls
        assert m.mailbox.peak_depth[1] == depth  # but never beyond depth
        assert m.mailbox.depth(1) == 0

    def test_blocking_recv_posted_before_send(self):
        """A receiver that arrives first suspends and wakes on delivery."""

        @_spmd
        def prog(ctx):
            me = ctx.my_pe()
            buf = ctx.malloc(_I64.itemsize)
            view = ctx.view(buf, _I64, 1)
            try:
                if me == 1:
                    ctx.msg_recv(buf, 1, 1, 0, tag=7, dtype=_I64)
                    return int(view[0]), ctx.pe.clock
                ctx.compute(5000.0)  # make sure PE 1 blocks first
                view[0] = 99
                ctx.msg_send(buf, 1, 1, 1, tag=7, dtype=_I64)
                return None, ctx.pe.clock
            finally:
                ctx.free(buf)

        m = Machine(small_config(2))
        results = m.run(prog)
        assert results[1][0] == 99
        assert results[1][1] >= 5000.0  # woke no earlier than the send


# ---------------------------------------------------------------------------
# protocol errors
# ---------------------------------------------------------------------------

class TestProtocol:
    def test_tag_mismatch_raises(self):
        @_spmd
        def prog(ctx):
            me = ctx.my_pe()
            buf = ctx.malloc(_I64.itemsize)
            try:
                if me == 0:
                    ctx.view(buf, _I64, 1)[0] = 1
                    ctx.msg_send(buf, 1, 1, 1, tag=3, dtype=_I64)
                    return None
                try:
                    ctx.msg_recv(buf, 1, 1, 0, tag=5, dtype=_I64)
                except MailboxProtocolError:
                    return "tag-mismatch"
                return "accepted"
            finally:
                ctx.free(buf)

        assert Machine(small_config(2)).run(prog)[1] == "tag-mismatch"

    def test_size_mismatch_raises(self):
        @_spmd
        def prog(ctx):
            me = ctx.my_pe()
            buf = ctx.malloc(4 * _I64.itemsize)
            try:
                if me == 0:
                    ctx.msg_send(buf, 4, 1, 1, tag=0, dtype=_I64)
                    return None
                try:
                    ctx.msg_recv(buf, 2, 1, 0, tag=0, dtype=_I64)
                except MailboxProtocolError:
                    return "size-mismatch"
                return "accepted"
            finally:
                ctx.free(buf)

        assert Machine(small_config(2)).run(prog)[1] == "size-mismatch"

    def test_probe_tracks_visibility(self):
        @_spmd
        def prog(ctx):
            me = ctx.my_pe()
            buf = ctx.malloc(_I64.itemsize)
            try:
                if me == 0:
                    before = ctx.msg_probe()
                    ctx.view(buf, _I64, 1)[0] = 5
                    ctx.msg_send(buf, 1, 1, 1, tag=0, dtype=_I64)
                    ctx.barrier()
                    ctx.barrier()
                    return before
                ctx.barrier()  # quiescence: the message is now visible
                mid = ctx.msg_probe(0)
                ctx.msg_recv(buf, 1, 1, 0, tag=0, dtype=_I64)
                after = ctx.msg_probe()
                ctx.barrier()
                return mid, after
            finally:
                ctx.free(buf)

        results = Machine(small_config(2)).run(prog)
        assert results[0] is False
        assert results[1] == (True, False)


# ---------------------------------------------------------------------------
# fault commit safety
# ---------------------------------------------------------------------------

@_spmd
def _lossy_stream(ctx, total):
    me = ctx.my_pe()
    buf = ctx.malloc(_I64.itemsize)
    view = ctx.view(buf, _I64, 1)
    try:
        if me == 0:
            for i in range(total):
                view[0] = 100 + i
                ctx.msg_send(buf, 1, 1, 1, tag=i, dtype=_I64)
        ctx.barrier()
        got = []
        while True:
            res = ctx.msg_try_recv(buf, 1, 1, dtype=_I64)
            if res is None:
                break
            got.append((res[1], int(view[0])))
        return got
    finally:
        ctx.free(buf)


class TestFaultCommitSafety:
    @_SETTINGS
    @given(st.integers(min_value=0, max_value=2 ** 31))
    def test_drops_never_duplicate_or_reorder(self, seed):
        """Unreliable mode: survivors arrive exactly once, in order."""
        total = 20
        plan = FaultPlan(seed=seed, rules=(drop(probability=0.3),))
        m = Machine(small_config(2), faults=plan)
        results = m.run(_lossy_stream, [(total,)] * 2)
        tags = [t for t, _ in results[1]]
        assert all(v == 100 + t for t, v in results[1])
        assert len(tags) == len(set(tags))          # never duplicated
        assert tags == sorted(tags)                 # FIFO survives the losses
        assert set(tags) <= set(range(total))
        # Ledger closes: every message is delivered or accounted dropped.
        assert len(tags) == total - m.stats.mbx_dropped
        assert m.mailbox.dropped == m.stats.mbx_dropped
        assert m.stats.sends == len(tags)

    def test_retry_makes_the_stream_reliable(self):
        """The same drop plan delivers everything once retries are armed."""
        total = 20
        plan = FaultPlan(seed=11, rules=(drop(probability=0.3),))
        retry = RetryConfig(max_retries=8, timeout_ns=500.0, backoff=2.0)
        m = Machine(small_config(2), faults=plan, retry=retry)
        results = m.run(_lossy_stream, [(total,)] * 2)
        assert [t for t, _ in results[1]] == list(range(total))
        assert all(v == 100 + t for t, v in results[1])
        assert m.stats.mbx_dropped == 0  # retries absorbed every loss
        assert m.stats.retries > 0       # ...and the plan did fire
