"""Fast-path vs per-line reference equivalence for memory costing.

The batched run classifiers (:meth:`repro.machine.cache.Cache.access_run`,
:meth:`repro.machine.tlb.Tlb.access_run` and the
:meth:`repro.machine.memsys.MemoryHierarchy` bulk entry points) must be
*bit-identical* to the per-line reference loop they replace: identical
returned nanoseconds, identical hit/miss/writeback counters, and an
identical effective cache state.  These tests drive randomized access
traces through both implementations and compare everything.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.cache import Cache
from repro.machine.memsys import MemoryHierarchy
from repro.params import CacheParams, MemoryParams, TlbParams


def make_pair(**kwargs):
    """Two identically-configured hierarchies: fast and reference."""
    params = MemoryParams(**kwargs)
    fast = MemoryHierarchy(params)
    ref = MemoryHierarchy(params)
    ref.fast_path = False
    return fast, ref


def effective_cache_state(cache: Cache) -> dict:
    """Canonical {set: [(tag, dirty), ...]} including mirror-only sets."""
    state = {
        s: [(e[0], bool(e[1])) for e in lru]
        for s, lru in cache._sets.items()
        if lru
    }
    for s in range(cache.n_sets):
        code = cache._mru[s]
        if code >= 0 and s not in cache._sets:
            state[s] = [(code >> 1, bool(code & 1))]
    return state


def assert_hierarchies_identical(fast: MemoryHierarchy, ref: MemoryHierarchy):
    assert fast.stat_tuple() == ref.stat_tuple()
    assert fast.l1.writebacks == ref.l1.writebacks
    assert fast.l2.writebacks == ref.l2.writebacks
    assert effective_cache_state(fast.l1) == effective_cache_state(ref.l1)
    assert effective_cache_state(fast.l2) == effective_cache_state(ref.l2)
    assert list(fast.tlb._entries) == list(ref.tlb._entries)  # LRU order


access_op = st.tuples(
    st.sampled_from(["range", "scalar", "strided"]),
    st.integers(min_value=0, max_value=1 << 18),  # addr
    st.integers(min_value=1, max_value=6000),     # nbytes / nelems
    st.booleans(),                                 # write
    st.booleans(),                                 # use_tlb
)


class TestRandomizedTraces:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(access_op, min_size=1, max_size=12))
    def test_trace_bit_identical(self, ops):
        # Small geometry so traces actually exercise eviction and
        # conflict paths, not just cold fills.
        fast, ref = make_pair(
            l1=CacheParams(size_bytes=1024, ways=2, hit_ns=1.0),
            l2=CacheParams(size_bytes=16 * 1024, ways=4, hit_ns=8.0),
            tlb=TlbParams(entries=4, page_bytes=4096, walk_ns=128.0),
        )
        for kind, addr, n, write, use_tlb in ops:
            if kind == "range":
                a = fast.access_range(addr, n, write, use_tlb)
                b = ref.access_range(addr, n, write, use_tlb)
            elif kind == "scalar":
                size = 1 + n % 16
                a = fast.access(addr, size, write, use_tlb)
                b = ref.access(addr, size, write, use_tlb)
            else:
                nelems = 1 + n % 64
                stride = 1 + addr % 24
                a = fast.access_strided(addr, nelems, 8, stride, write,
                                        use_tlb)
                b = ref.access_strided(addr, nelems, 8, stride, write,
                                       use_tlb)
            assert a == b  # exact float equality, not approx
            assert_hierarchies_identical(fast, ref)

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=0, max_value=1 << 16),
        st.integers(min_value=1, max_value=20000),
        st.booleans(),
    )
    def test_paper_geometry_ranges(self, addr, nbytes, write):
        fast, ref = make_pair()  # default paper geometry (16 KB / 8 MB)
        a = fast.access_range(addr, nbytes, write)
        b = ref.access_range(addr, nbytes, write)
        assert a == b
        assert_hierarchies_identical(fast, ref)


class TestBoundaries:
    def test_access_straddling_line_boundary_uses_bulk_path(self):
        """A multi-line scalar access costs the same on both paths."""
        for offset in (60, 62, 63):
            for size in (8, 16, 64, 200):
                fast, ref = make_pair()
                a = fast.access(offset, size, True)
                b = ref.access(offset, size, True)
                assert a == b
                assert_hierarchies_identical(fast, ref)

    def test_access_straddling_page_boundary(self):
        fast, ref = make_pair(
            tlb=TlbParams(entries=4, page_bytes=4096, walk_ns=100.0),
        )
        addr = 4096 - 64
        a = fast.access_range(addr, 256, False)
        b = ref.access_range(addr, 256, False)
        assert a == b
        assert fast.tlb.misses == 2  # both pages walked
        assert_hierarchies_identical(fast, ref)

    def test_streaming_cutoff_crossing(self):
        """Ranges just below / at / above the streaming regime agree."""
        kw = dict(
            l1=CacheParams(size_bytes=1024, ways=2, hit_ns=1.0),
            l2=CacheParams(size_bytes=4096, ways=4, hit_ns=8.0),
        )
        cutoff_lines = 4 * (4096 // 64)
        for n_lines in (cutoff_lines - 1, cutoff_lines, cutoff_lines + 1,
                        2 * cutoff_lines):
            fast, ref = make_pair(**kw)
            a = fast.access_range(0, n_lines * 64, True)
            b = ref.access_range(0, n_lines * 64, True)
            assert a == b
            assert_hierarchies_identical(fast, ref)

    def test_repeated_sweeps_stay_identical(self):
        """Cold fill, warm re-sweep, dirty upgrade, then conflict sweep."""
        fast, ref = make_pair()
        for base, write in ((0, False), (0, False), (0, True),
                            (1 << 21, False), (0, False)):
            a = fast.access_range(base, 8192, write)
            b = ref.access_range(base, 8192, write)
            assert a == b
        assert_hierarchies_identical(fast, ref)


class TestCacheRunOracle:
    """Cache.access_run against a literal per-line Cache.access loop."""

    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=0, max_value=4096),
        st.integers(min_value=1, max_value=700),
        st.booleans(),
        st.integers(min_value=0, max_value=4),
    )
    def test_run_matches_per_line(self, first, n_lines, write, warm):
        params = CacheParams(size_bytes=4096, ways=2, line_bytes=64)
        fast = Cache(params)
        ref = Cache(params)
        for w in range(warm):  # pre-warm both identically
            for line in range(w * 13, w * 13 + 40):
                fast.access(line, bool(w & 1))
                ref.access(line, bool(w & 1))
        hits, misses, missed = fast.access_run(
            first, n_lines, write, collect_missed=True
        )
        ref_missed = []
        h0, m0 = ref.hits, ref.misses
        for line in range(first, first + n_lines):
            if ref.access(line, write).value == "miss":
                ref_missed.append(line)
        assert hits == ref.hits - h0
        assert misses == ref.misses - m0
        assert fast.writebacks == ref.writebacks
        if missed is None:
            assert len(ref_missed) in (0, n_lines)
        else:
            assert missed.tolist() == ref_missed
        assert effective_cache_state(fast) == effective_cache_state(ref)

    def test_access_lines_matches_per_line(self):
        rng = np.random.default_rng(7)
        params = CacheParams(size_bytes=2048, ways=4, line_bytes=64)
        fast = Cache(params)
        ref = Cache(params)
        for _ in range(40):
            n = int(rng.integers(1, 60))
            lines = np.sort(rng.choice(512, size=n, replace=False))
            write = bool(rng.integers(0, 2))
            h, m = fast.access_lines(lines.astype(np.int64), write)
            h0, m0 = ref.hits, ref.misses
            for line in lines.tolist():
                ref.access(line, write)
            assert h == ref.hits - h0
            assert m == ref.misses - m0
            assert fast.writebacks == ref.writebacks
            assert effective_cache_state(fast) == effective_cache_state(ref)

    def test_invalidate_all_counts_mirror_only_dirty_lines(self):
        params = CacheParams(size_bytes=8 * 1024 * 1024, ways=8)
        c = Cache(params)
        c.access_run(0, 100, True)    # 100 dirty mirror-only lines
        c.access_run(200, 50, False)  # 50 clean ones
        c.access(0, False)
        assert c.occupancy == 150
        assert c.invalidate_all() == 100
        assert c.occupancy == 0
        assert c.probe(0) is False

    def test_occupancy_counts_mirror_only_sets(self):
        params = CacheParams(size_bytes=8 * 1024 * 1024, ways=8)
        c = Cache(params)
        c.access_run(0, 64, False)
        assert c.occupancy == 64
        # Map a second tag onto set 0 to force materialization.
        c.access(params.n_sets, False)
        assert c.occupancy == 65
        assert c.probe(0) and c.probe(params.n_sets)


@pytest.mark.parametrize("write", [False, True])
def test_grouped_ns_formula_is_exact(write):
    """The regrouped count*latency total equals left-to-right addition."""
    fast, ref = make_pair()
    total_fast = sum(
        fast.access_range(i * 8192, 8192, write) for i in range(32)
    )
    total_ref = sum(
        ref.access_range(i * 8192, 8192, write) for i in range(32)
    )
    assert total_fast == total_ref
