"""Tests for node construction and PE placement."""

from __future__ import annotations

from repro.machine.node import Node
from repro.params import MachineConfig


class TestSequentialPlacement:
    def test_paper_single_node(self):
        cfg = MachineConfig(n_pes=8)  # 12 cores per node
        node = Node(0, cfg)
        assert node.pe_ranks == tuple(range(8))
        assert len(node.hierarchies) == 8

    def test_multi_node_blocks(self):
        cfg = MachineConfig(n_pes=6, cores_per_node=4)
        n0, n1 = Node(0, cfg), Node(1, cfg)
        assert n0.pe_ranks == (0, 1, 2, 3)
        assert n1.pe_ranks == (4, 5)

    def test_private_hierarchies(self):
        """Each PE owns its own L1/L2/TLB (the paper's per-core caches)."""
        cfg = MachineConfig(n_pes=4, cores_per_node=4)
        node = Node(0, cfg)
        hiers = [node.hierarchy_of(r) for r in node.pe_ranks]
        assert len({id(h) for h in hiers}) == 4
        hiers[0].access(0, 8, False)
        assert hiers[1].l1.misses == 0  # untouched


class TestExplicitPlacement:
    def test_round_robin(self):
        cfg = MachineConfig(n_pes=6, cores_per_node=2,
                            pe_node_map=(0, 1, 2, 0, 1, 2))
        assert Node(0, cfg).pe_ranks == (0, 3)
        assert Node(2, cfg).pe_ranks == (2, 5)

    def test_machine_builds_all_nodes(self):
        from repro.runtime import Machine
        from ..conftest import small_config

        m = Machine(small_config(6, cores_per_node=2,
                                 pe_node_map=(0, 1, 2, 0, 1, 2)))
        assert len(m.nodes) == 3
        assert sorted(r for n in m.nodes for r in n.pe_ranks) == list(range(6))
