"""Tests for the per-core memory hierarchy (TLB + L1 + L2 + DRAM)."""

from __future__ import annotations

import pytest

from repro.machine.memsys import MemoryHierarchy
from repro.params import CacheParams, MemoryParams, TlbParams


def make(l1_kb=1, l2_kb=16, dram=90.0, walk=120.0):
    return MemoryHierarchy(MemoryParams(
        l1=CacheParams(size_bytes=l1_kb * 1024, ways=2, hit_ns=1.0),
        l2=CacheParams(size_bytes=l2_kb * 1024, ways=4, hit_ns=10.0),
        tlb=TlbParams(entries=4, page_bytes=4096, walk_ns=walk),
        dram_ns=dram,
    ))


class TestSingleAccess:
    def test_cold_access_pays_everything(self):
        h = make()
        ns = h.access(0, 8, False)
        # TLB walk + L1 lookup + L2 lookup + DRAM.
        assert ns == pytest.approx(120 + 1 + 10 + 90)

    def test_warm_access_is_l1_hit(self):
        h = make()
        h.access(0, 8, False)
        assert h.access(0, 8, False) == pytest.approx(1.0)

    def test_l2_hit_after_l1_eviction(self):
        h = make(l1_kb=1)  # 16 lines, 8 sets x 2 ways
        h.access(0, 8, False)
        # Evict line 0 from L1 by filling its set (lines 0, 8, 16 share
        # set 0 with 8 sets), while staying within L2.
        h.access(8 * 64, 8, False)
        h.access(16 * 64, 8, False)
        ns = h.access(0, 8, False)
        # Same page as a recently-touched one? line 0's page is page 0 —
        # still resident; so cost = L1 lookup + L2 hit.
        assert ns == pytest.approx(1 + 10)

    def test_physical_access_skips_tlb(self):
        h = make()
        ns = h.access(1 << 20, 8, False, use_tlb=False)
        assert ns == pytest.approx(1 + 10 + 90)
        assert h.tlb.misses == 0

    def test_straddling_access_charged_per_line(self):
        h = make()
        ns = h.access(60, 8, False)  # crosses a 64 B boundary
        one = make().access(0, 8, False)
        assert ns > one


class TestRanges:
    def test_range_touches_every_line(self):
        h = make()
        h.access_range(0, 64 * 10, False)
        assert h.l1.misses == 10

    def test_range_zero_bytes(self):
        assert make().access_range(0, 0) == 0.0

    def test_streaming_regime_matches_per_line_cost(self):
        """Above 4x L2 the closed form must equal the per-line sweep."""
        h1 = make(l2_kb=16)
        n = 5 * 16 * 1024  # > 4x L2
        fast = h1.access_range(0, n, False)
        # Reference: per-line model on a fresh hierarchy (same streamed
        # DRAM cost — the closed form only skips the per-line Python).
        h2 = make(l2_kb=16)
        slow = 0.0
        for line in range(n // 64):
            slow += h2._access_line(line, False, stream=True)
        # The closed form assumes every line goes to DRAM; the sweep's
        # first lines also do (cold), so totals agree up to TLB detail.
        assert fast == pytest.approx(slow, rel=0.05)

    def test_streaming_regime_leaves_tail_resident(self):
        h = make(l2_kb=16)
        n = 5 * 16 * 1024
        h.access_range(0, n, False)
        assert h.l2.probe((n - 64) // 64)

    def test_second_sweep_within_l2_hits(self):
        h = make(l2_kb=16)
        h.access_range(0, 8 * 1024, False)
        before = h.l2.hits + h.l1.hits
        h.access_range(0, 8 * 1024, False)
        after = h.l2.hits + h.l1.hits
        assert after - before == 128  # every line hits somewhere


class TestStrided:
    def test_dense_equals_range(self):
        h1, h2 = make(), make()
        a = h1.access_strided(0, 64, 8, 1, False)
        b = h2.access_range(0, 64 * 8, False)
        assert a == pytest.approx(b)

    def test_large_stride_per_element(self):
        h = make()
        ns = h.access_strided(0, 4, 8, 32, False)  # 256 B apart
        assert h.l1.misses == 4  # each element on its own line

    def test_zero_elements(self):
        assert make().access_strided(0, 0, 8, 1) == 0.0


class TestStats:
    def test_stat_tuple(self):
        h = make()
        h.access(0, 8, False)
        h.access(0, 8, False)
        l1h, l1m, l2h, l2m, th, tm = h.stat_tuple()
        assert (l1h, l1m) == (1, 1)
        assert tm == 1 and th == 1

    def test_mismatched_line_sizes_rejected(self):
        with pytest.raises(ValueError):
            MemoryHierarchy(MemoryParams(
                l1=CacheParams(size_bytes=1024, ways=2, line_bytes=32),
                l2=CacheParams(size_bytes=4096, ways=2, line_bytes=64),
            ))
