"""Tests for interconnect topologies."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import NetworkError
from repro.machine.topology import TOPOLOGY_NAMES, build_topology


class TestShapes:
    def test_fully_connected_diameter_one(self):
        t = build_topology("fully-connected", 6)
        assert t.diameter == 1
        assert t.hops(0, 5) == 1

    def test_ring_hops(self):
        t = build_topology("ring", 8)
        assert t.hops(0, 1) == 1
        assert t.hops(0, 4) == 4
        assert t.hops(0, 7) == 1  # wraps

    def test_hypercube(self):
        t = build_topology("hypercube", 8)
        assert t.diameter == 3
        assert t.hops(0, 7) == 3  # 000 -> 111
        assert t.hops(0, 1) == 1

    def test_hypercube_requires_power_of_two(self):
        with pytest.raises(NetworkError):
            build_topology("hypercube", 6)

    def test_torus_wraps(self):
        t = build_topology("torus", 16)  # 4x4
        assert t.diameter == 4  # 2+2

    def test_torus_degenerate_prime(self):
        t = build_topology("torus", 7)  # falls back to a ring
        assert t.n_nodes == 7
        assert t.hops(0, 3) == 3

    def test_star(self):
        t = build_topology("star", 5)
        assert t.hops(0, 4) == 1     # hub to leaf
        assert t.hops(1, 4) == 2     # leaf to leaf
        assert t.degree(0) == 4

    def test_single_node(self):
        for name in TOPOLOGY_NAMES:
            if name == "hypercube":
                t = build_topology(name, 1)
            else:
                t = build_topology(name, 1)
            assert t.hops(0, 0) == 0

    def test_unknown_name(self):
        with pytest.raises(NetworkError):
            build_topology("moebius", 4)

    def test_out_of_range_hops(self):
        t = build_topology("ring", 4)
        with pytest.raises(NetworkError):
            t.hops(0, 9)


class TestMetricProperties:
    @given(st.sampled_from(["fully-connected", "ring", "star"]),
           st.integers(2, 12))
    def test_hops_symmetric_and_metric(self, name, n):
        t = build_topology(name, n)
        for a in range(n):
            assert t.hops(a, a) == 0
            for b in range(n):
                assert t.hops(a, b) == t.hops(b, a)
                assert 0 <= t.hops(a, b) <= t.diameter

    @given(st.integers(1, 4))
    def test_hypercube_hops_are_hamming(self, dim):
        n = 1 << dim
        t = build_topology("hypercube", n)
        for a in range(n):
            for b in range(n):
                assert t.hops(a, b) == bin(a ^ b).count("1")
