"""Tests for the network model (links, bus, fabric, transports)."""

from __future__ import annotations

import pytest

from repro.machine.network import NODE_BUS_NS_PER_MSG, Network
from repro.params import MachineConfig, mpi_transport, xbgas_transport


def intra_net(n_pes=4):
    """All PEs on one node (the paper's default layout)."""
    return Network(MachineConfig(n_pes=n_pes, cores_per_node=12))


def inter_net(n_pes=4, topology="fully-connected"):
    """One PE per node."""
    return Network(MachineConfig(n_pes=n_pes, cores_per_node=1,
                                 topology=topology))


class TestIntraNode:
    def test_send_delivery_after_latency(self):
        net = intra_net()
        res = net.send(0.0, 0, 1, 8)
        tp = net.tp
        assert res.t_delivered >= tp.o_send + tp.intra_latency_ns

    def test_sender_freed_before_delivery(self):
        net = intra_net()
        res = net.send(0.0, 0, 1, 1024)
        assert res.t_source_free <= res.t_delivered

    def test_bus_backpressure_builds(self):
        """Back-to-back messages at one instant queue on the node bus."""
        net = intra_net()
        first = net.send(0.0, 0, 1, 8)
        second = net.send(0.0, 2, 3, 8)
        assert second.t_delivered >= first.t_delivered
        assert net.stats.fabric_queued_ns > 0

    def test_fetch_round_trip_costs_two_crossings(self):
        net = intra_net()
        one_way = net.send(0.0, 0, 1, 8).t_delivered
        net2 = intra_net()
        round_trip = net2.fetch(0.0, 0, 1, 8).t_complete
        assert round_trip > one_way

    def test_quiescence_tracks_max_delivery(self):
        net = intra_net()
        r1 = net.send(0.0, 0, 1, 64)
        assert net.quiescence_time() == pytest.approx(r1.t_delivered)
        net.note_delivery(r1.t_delivered + 100)
        assert net.quiescence_time() == pytest.approx(r1.t_delivered + 100)


class TestInterNode:
    def test_wire_latency_dominates(self):
        net = inter_net()
        res = net.send(0.0, 0, 1, 8)
        assert res.t_delivered >= net.tp.latency_ns

    def test_injection_link_serialises_per_source(self):
        net = inter_net()
        a = net.send(0.0, 0, 1, 10_000)
        b = net.send(0.0, 0, 2, 10_000)  # same source link
        assert b.t_delivered > a.t_delivered

    def test_hops_scale_latency(self):
        ring = inter_net(8, topology="ring")
        near = ring.send(0.0, 0, 1, 8).t_delivered
        far = ring.send(0.0, 2, 6, 8).t_delivered  # 4 hops
        assert far > near

    def test_fetch_completes_after_send(self):
        net = inter_net()
        s = net.send(0.0, 0, 1, 8).t_delivered
        net2 = inter_net()
        f = net2.fetch(0.0, 0, 1, 8).t_complete
        assert f > s

    def test_negative_bytes_rejected(self):
        net = inter_net()
        with pytest.raises(ValueError):
            net.send(0.0, 0, 1, -1)
        with pytest.raises(ValueError):
            net.fetch(0.0, 0, 1, -1)


class TestTransportComparison:
    """Section 3.1's overhead ordering must show up in message timing."""

    def _delivery(self, transport, nbytes, same_node=True):
        cfg = MachineConfig(
            n_pes=2,
            cores_per_node=12 if same_node else 1,
            transport=transport,
        )
        return Network(cfg).send(0.0, 0, 1, nbytes).t_delivered

    @pytest.mark.parametrize("nbytes", [8, 1024, 65536])
    def test_xbgas_beats_mpi(self, nbytes):
        assert (self._delivery(xbgas_transport(), nbytes)
                < self._delivery(mpi_transport(), nbytes))

    def test_mpi_rendezvous_kicks_in(self):
        mp = mpi_transport()
        small = self._delivery(mp, mp.eager_threshold)
        big = self._delivery(mp, mp.eager_threshold + 1)
        assert big - small > mp.handshake_ns  # handshake plus the byte

    def test_two_sided_charges_receive_side(self):
        one_sided = mpi_transport().with_(two_sided=False, o_recv=0.0)
        assert (self._delivery(one_sided, 64)
                < self._delivery(mpi_transport(), 64))

    def test_messages_counted(self):
        net = intra_net()
        net.send(0.0, 0, 1, 100)
        net.fetch(10.0, 1, 2, 50)
        assert net.stats.messages == 3  # 1 send + request & response
        assert net.stats.bytes_on_wire >= 150


class TestBusSaturation:
    def test_throughput_capped_by_bus(self):
        """Many simultaneous senders serialise at one message per
        NODE_BUS_NS_PER_MSG — the 8-PE contention mechanism."""
        net = intra_net(8)
        deliveries = [net.send(0.0, i, (i + 1) % 8, 8).t_delivered
                      for i in range(8)]
        span = max(deliveries) - min(deliveries)
        assert span >= (8 - 1) * NODE_BUS_NS_PER_MSG * 0.9
