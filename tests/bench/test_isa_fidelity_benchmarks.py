"""The full benchmark stack must compose with ``fidelity="isa"``:
GUPs and IS running their communication through generated xBGAS
assembly executed on the functional cores."""

from __future__ import annotations

import pytest

from repro.bench.gups import GupsParams, run_gups
from repro.bench.nas_is import IsParams, generate_keys, run_is
from repro.params import MachineConfig


def isa_config(n_pes, pipeline=False):
    return MachineConfig(
        n_pes=n_pes,
        fidelity="isa",
        pipeline=pipeline,
        memory_bytes_per_pe=8 * 1024 * 1024,
        symmetric_heap_bytes=4 * 1024 * 1024,
        collective_scratch_bytes=512 * 1024,
    )


@pytest.mark.slow
class TestGupsOnIsaPath:
    def test_verifies(self):
        params = GupsParams(log2_table_size=12, updates_per_pe=64)
        res = run_gups(isa_config(2), params)
        assert res.passed
        assert res.total_updates == 128

    def test_amo_mode(self):
        params = GupsParams(log2_table_size=12, updates_per_pe=64,
                            use_amo=True)
        res = run_gups(isa_config(2), params)
        assert res.errors == 0

    def test_with_pipeline_model(self):
        params = GupsParams(log2_table_size=12, updates_per_pe=32)
        plain = run_gups(isa_config(2), params)
        piped = run_gups(isa_config(2, pipeline=True), params)
        assert plain.passed and piped.passed
        # The pipeline model adds time, never removes it.
        assert piped.sim_seconds >= plain.sim_seconds


@pytest.mark.slow
class TestIsOnIsaPath:
    def test_verifies(self):
        params = IsParams(problem_class="S-scaled", max_iterations=2,
                          log2_n_buckets=6)
        keys = generate_keys(params)
        res = run_is(isa_config(2), params, keys)
        assert res.partial_verified
        assert res.full_verified

    def test_agrees_functionally_with_model_path(self):
        params = IsParams(problem_class="S-scaled", max_iterations=2,
                          log2_n_buckets=6)
        keys = generate_keys(params)
        isa_res = run_is(isa_config(2), params, keys)
        model_res = run_is(isa_config(2).with_(fidelity="model"),
                           params, keys)
        assert isa_res.full_verified == model_res.full_verified
        assert isa_res.partial_verified == model_res.partial_verified
