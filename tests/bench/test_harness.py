"""Tests for the sweep harness, shape checks and reporting."""

from __future__ import annotations

import pytest

from repro.bench.harness import (
    SweepPoint,
    bench_report,
    check_figure4_shape,
    check_figure5_shape,
    main as harness_main,
    oversubscription_gate,
    sweep_gups,
)
from repro.bench.gups import GupsParams
from repro.bench.reporting import (
    render_figure,
    render_figure3,
    render_table1,
    render_table2,
)
from repro.params import MachineConfig


def pt(n, total, per_pe, verified=True):
    return SweepPoint(n_pes=n, mops_total=total, mops_per_pe=per_pe,
                      verified=verified)


class TestShapeChecks:
    def test_paper_shape_passes_figure4(self):
        # The qualitative Figure 4 shape in made-up units.
        points = [pt(1, 2.0, 2.0), pt(2, 4.7, 2.35), pt(4, 8.8, 2.2),
                  pt(8, 12.8, 1.6)]
        assert check_figure4_shape(points) == []

    def test_flat_scaling_fails_figure4(self):
        points = [pt(1, 2.0, 2.0), pt(2, 2.2, 1.1), pt(4, 2.4, 0.6),
                  pt(8, 2.5, 0.3)]
        assert check_figure4_shape(points)

    def test_no_drop_fails_figure4(self):
        points = [pt(1, 2.0, 2.0), pt(2, 4.8, 2.4), pt(4, 9.2, 2.3),
                  pt(8, 20.0, 2.5)]
        assert "no per-PE drop at 8 PEs" in check_figure4_shape(points)

    def test_unverified_fails(self):
        points = [pt(1, 2.0, 2.0, verified=False)]
        assert "verification failed" in check_figure4_shape(points)

    def test_paper_shape_passes_figure5(self):
        points = [pt(1, 10.0, 10.0), pt(2, 20.0, 10.0), pt(4, 40.0, 10.0),
                  pt(8, 60.0, 7.5)]
        assert check_figure5_shape(points) == []

    def test_figure5_wants_25pc_drop(self):
        points = [pt(1, 10.0, 10.0), pt(2, 20.0, 10.0), pt(4, 40.0, 10.0),
                  pt(8, 79.0, 9.9)]
        bad = check_figure5_shape(points)
        assert any("drop" in b for b in bad)


class TestSweeps:
    def test_gups_sweep_returns_points(self):
        cfg = MachineConfig(
            n_pes=1,
            memory_bytes_per_pe=4 * 1024 * 1024,
            symmetric_heap_bytes=2 * 1024 * 1024,
            collective_scratch_bytes=256 * 1024,
        )
        pts = sweep_gups(pe_counts=(1, 2),
                         params=GupsParams(log2_table_size=12,
                                           updates_per_pe=64),
                         base_config=cfg)
        assert [p.n_pes for p in pts] == [1, 2]
        assert all(p.mops_total > 0 for p in pts)


class TestReporting:
    def test_table1_lists_24_types(self):
        text = render_table1()
        assert "ptrdiff" in text and "long double" in text
        assert len([l for l in text.splitlines() if l and "-" not in l[:2]
                    and "TYPENAME" not in l]) == 24

    def test_table2_matches_paper(self):
        text = render_table2()
        rows = [tuple(map(int, line.split()))
                for line in text.splitlines()[2:]]
        assert rows == [(0, 3), (1, 4), (2, 5), (3, 6), (4, 0), (5, 1),
                        (6, 2)]

    def test_figure3_renders_tree(self):
        assert "0->4" in render_figure3(8)

    def test_render_figure_rows(self):
        text = render_figure([pt(1, 2.0, 2.0), pt(8, 12.8, 1.6)], "t")
        assert "12.800" in text and "1.600" in text


class TestDescribeAndCsv:
    def test_machine_describe(self):
        from repro.runtime import Machine
        from repro.params import MachineConfig

        text = Machine(MachineConfig(n_pes=4)).describe()
        assert "4 PEs" in text
        assert "L1 16 KiB/8-way" in text
        assert "TLB 256 entries" in text
        assert "xbgas" in text

    def test_sweep_to_csv(self):
        from repro.bench.reporting import sweep_to_csv

        csv = sweep_to_csv([pt(1, 2.0, 2.0), pt(8, 12.8, 1.6, False)])
        lines = csv.strip().splitlines()
        assert lines[0] == "n_pes,mops_total,mops_per_pe,verified"
        assert lines[1].startswith("1,2.000000,2.000000,1")
        assert lines[2].endswith(",0")


class TestOversubscriptionGate:
    """--backend mp refuses to oversubscribe a small host (and says why)."""

    def test_fits_within_cores(self):
        ok, why = oversubscription_gate([1, 2, 4], cpu_count=4)
        assert ok and why == ""

    def test_refuses_more_pes_than_cores(self):
        ok, why = oversubscription_gate([1, 2, 8], cpu_count=2)
        assert not ok
        assert "8 worker processes" in why
        assert "2 core(s)" in why
        assert "--oversubscribe" in why

    def test_override_allows_it(self):
        ok, why = oversubscription_gate([64], oversubscribe=True,
                                        cpu_count=1)
        assert ok and why == ""

    def test_cli_refuses_without_override(self, capsys):
        status = harness_main(["--backend", "mp", "--pes", "1", "2", "4096"])
        assert status == 2
        out = capsys.readouterr().out
        assert "refusing --backend mp" in out
        assert "--oversubscribe" in out

    def test_report_records_gating(self):
        points = [pt(1, 1.0, 1.0), pt(4, 3.0, 0.75)]
        rep = bench_report("gups", "mp", points, oversubscribed=True)
        assert rep["host"]["oversubscribed"] is True
        assert isinstance(rep["host"]["cpu_count"], int)
        rep = bench_report("gups", "mp", points, oversubscribed=False)
        assert rep["host"]["oversubscribed"] is False

    def test_sim_reports_omit_the_flag(self):
        rep = bench_report("gups", "sim", [pt(1, 1.0, 1.0)])
        assert "oversubscribed" not in rep["host"]
