"""Tests for the NAS Integer Sort port."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.nas_is import (
    CLASS_PARAMS,
    IsParams,
    IsResult,
    _lcg_block,
    _randlc_int,
    generate_keys,
    run_is,
)
from repro.params import MachineConfig

FAST = IsParams(problem_class="S-scaled", max_iterations=3,
                log2_n_buckets=6)


def fast_config(n_pes):
    return MachineConfig(
        n_pes=n_pes,
        memory_bytes_per_pe=8 * 1024 * 1024,
        symmetric_heap_bytes=4 * 1024 * 1024,
        collective_scratch_bytes=512 * 1024,
    )


class TestKeyGeneration:
    def test_vectorised_lcg_matches_scalar(self):
        x0 = 314159265
        chunk = 64
        apow = np.empty(chunk, dtype=np.uint64)
        p = 1
        for j in range(chunk):
            p = _randlc_int(p)
            apow[j] = p
        lo = apow & np.uint64((1 << 23) - 1)
        hi = apow >> np.uint64(23)
        block = _lcg_block(x0, lo, hi)
        x = x0
        for j in range(chunk):
            x = _randlc_int(x)
            assert int(block[j]) == x

    def test_keys_in_range(self):
        p = IsParams(problem_class="S-scaled")
        keys = generate_keys(p)
        assert keys.size == p.total_keys
        assert keys.min() >= 0
        assert keys.max() < p.max_key

    def test_gaussian_shape(self):
        """Sum of 4 uniforms: mean at max_key/2, thin tails."""
        p = IsParams(problem_class="S-scaled")
        keys = generate_keys(p)
        mean = keys.mean() / p.max_key
        assert 0.48 < mean < 0.52
        tail = np.count_nonzero(keys < p.max_key // 16) / keys.size
        assert tail < 0.01

    def test_deterministic(self):
        p = IsParams(problem_class="S-scaled")
        assert np.array_equal(generate_keys(p), generate_keys(p))

    def test_npb_class_table(self):
        assert CLASS_PARAMS["B"] == (25, 21)
        assert CLASS_PARAMS["S"] == (16, 11)

    def test_unknown_class_rejected(self):
        from repro.errors import CollectiveArgumentError

        with pytest.raises(CollectiveArgumentError):
            IsParams(problem_class="Z")


class TestIsRun:
    @pytest.mark.parametrize("n_pes", [1, 2, 4])
    def test_verification(self, n_pes):
        res = run_is(fast_config(n_pes), FAST)
        assert res.partial_verified
        assert res.full_verified
        assert res.sim_seconds > 0

    def test_mops_accounting(self):
        res = IsResult(n_pes=2, problem_class="S", total_keys=1 << 16,
                       iterations=10, sim_seconds=1e-2,
                       partial_verified=True, full_verified=True)
        assert res.mops_total == pytest.approx(10 * (1 << 16) / 1e-2 / 1e6)
        assert res.mops_per_pe == res.mops_total / 2

    def test_key_reuse_across_sweep(self):
        keys = generate_keys(FAST)
        a = run_is(fast_config(2), FAST, keys)
        b = run_is(fast_config(2), FAST, keys)
        assert a.sim_seconds == b.sim_seconds

    def test_key_count_must_match_class(self):
        from repro.errors import CollectiveArgumentError

        with pytest.raises(CollectiveArgumentError):
            run_is(fast_config(2), FAST, np.zeros(10, dtype=np.int64))

    def test_uses_reduce_and_broadcast(self):
        """Section 5.2: IS exercises the reduction and broadcast
        collectives."""
        from repro.runtime import Machine
        from repro.bench.nas_is import _is_pe, _oracle_ranks

        keys = generate_keys(FAST)
        rng = np.random.default_rng(5)
        tk = rng.integers(FAST.max_key // 8, 7 * FAST.max_key // 8, size=5,
                          dtype=np.int64)
        tr = _oracle_ranks(keys, tk, FAST)
        n = 2
        chunk = FAST.total_keys // n
        m = Machine(fast_config(n))
        m.run(_is_pe, [(FAST, keys[r * chunk:(r + 1) * chunk], tk, tr)
                       for r in range(n)])
        calls = m.stats.collective_calls
        assert any(k.startswith("reduce:sum") for k in calls)
        assert any(k.startswith("broadcast") for k in calls)
        assert any(k.startswith("alltoall") for k in calls)
