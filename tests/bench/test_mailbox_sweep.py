"""Tests for the mailbox-transport sweep (BENCH_mailbox.json)."""

from __future__ import annotations

import json
import pathlib

from repro.bench.mailbox_sweep import (
    OVERHEAD_MAX,
    check_document,
    depth_point,
    mailbox_sweep,
    main as sweep_main,
    sweep_point,
)

_REFERENCE = pathlib.Path(__file__).resolve().parents[2] / \
    "BENCH_mailbox.json"


class TestSweepPoint:
    def test_point_shape(self):
        p = sweep_point(8, 1024)
        assert p["onesided_ns"] > 0
        assert p["mailbox_ns"] > 0
        assert p["overhead"] == round(p["mailbox_ns"] / p["onesided_ns"], 3)
        assert p["max_fan_in"] >= 1
        assert p["sends"] > 0
        assert p["wire_bytes"] > 0

    def test_overhead_ceiling_holds_live(self):
        """The acceptance bar, measured fresh at every sweep tier."""
        for n in (4, 8, 16):
            assert sweep_point(n, 1024)["overhead"] <= OVERHEAD_MAX

    def test_push_beats_pull_at_scale(self):
        """The lowering's eager sends overlap where gets round-trip:
        at 64 PEs the two-sided form must not be slower."""
        assert sweep_point(64, 1024)["overhead"] <= 1.0

    def test_deterministic(self):
        assert sweep_point(8, 64) == sweep_point(8, 64)


class TestDepthCurve:
    def test_depth_one_completes_stall_free_schedule(self):
        """Phase-matched lowered builtins survive even a depth-1 queue."""
        p = depth_point(1)
        assert p["elapsed_ns"] > 0
        assert p["sends"] > 0

    def test_deep_queue_never_stalls(self):
        assert depth_point(64)["stalls"] == 0


class TestDocument:
    def test_document_shape(self):
        doc = mailbox_sweep(pe_counts=(4, 8), sizes=(64,), depths=(8, 64))
        assert doc["bench"] == "mailbox-transport"
        assert len(doc["points"]) == 2
        assert len(doc["depth_curve"]) == 2
        json.dumps(doc)  # must be serialisable as-is
        assert check_document(doc, fresh_point=False) == []

    def test_check_flags_wrong_bench_key(self):
        problems = check_document({"bench": "other", "points": []},
                                  fresh_point=False)
        assert problems

    def test_check_flags_overhead_breach(self):
        doc = mailbox_sweep(pe_counts=(4,), sizes=(64,), depths=(64,))
        doc["points"][0]["overhead"] = OVERHEAD_MAX + 1
        problems = check_document(doc, fresh_point=False)
        assert any("ceiling" in p for p in problems)

    def test_check_flags_stalling_deep_queue(self):
        doc = mailbox_sweep(pe_counts=(4,), sizes=(64,), depths=(64,))
        doc["depth_curve"][-1]["stalls"] = 5
        problems = check_document(doc, fresh_point=False)
        assert any("still stalls" in p for p in problems)

    def test_committed_reference_passes(self):
        """The checked-in BENCH_mailbox.json must satisfy its own gate."""
        doc = json.loads(_REFERENCE.read_text())
        assert check_document(doc, fresh_point=False) == []

    def test_cli_writes_json(self, tmp_path, capsys):
        out = tmp_path / "mbx.json"
        status = sweep_main(["--pes", "4", "--sizes", "64", "--depths",
                             "8", "--out", str(out)])
        assert status == 0
        doc = json.loads(out.read_text())
        assert doc["pe_counts"] == [4]
        assert "overhead" in doc["points"][0]
        assert "makespan" in capsys.readouterr().out
