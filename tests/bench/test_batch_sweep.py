"""Tests for the superstep-batching sweep (BENCH_batch.json)."""

from __future__ import annotations

import json
import pathlib

from repro.bench.batch_sweep import (
    ACCEPT_MAX_BYTES,
    ACCEPT_MIN_BATCH,
    ACCEPT_SPEEDUP,
    batch_sweep,
    check_document,
    main as sweep_main,
    sweep_point,
)

_REFERENCE = pathlib.Path(__file__).resolve().parents[2] / \
    "BENCH_batch.json"


class TestSweepPoint:
    def test_point_shape(self):
        p = sweep_point(16, 64, 8)
        assert p["n_pes"] == 16 and p["nelems"] == 64
        assert p["nbytes"] == 64 * 8 and p["batch"] == 8
        assert p["eager_ns"] > 0 and p["superstep_ns"] > 0
        assert p["speedup"] > 0

    def test_deterministic(self):
        assert sweep_point(16, 64, 8) == sweep_point(16, 64, 8)

    def test_acceptance_bar_holds_live(self):
        """The tentpole bar, measured live: K >= 8 small allreduces
        fused into one superstep beat K eager runs by >= 2x."""
        p = sweep_point(16, 64, ACCEPT_MIN_BATCH)
        assert p["nbytes"] <= ACCEPT_MAX_BYTES
        assert p["speedup"] >= ACCEPT_SPEEDUP

    def test_speedup_grows_with_batch_width(self):
        narrow = sweep_point(16, 8, 8)
        wide = sweep_point(16, 8, 32)
        assert wide["speedup"] > narrow["speedup"]

    def test_speedup_decays_toward_bandwidth_bound(self):
        small = sweep_point(16, 8, 8)
        large = sweep_point(16, 512, 8)
        assert small["speedup"] > large["speedup"]


class TestDocument:
    def test_document_shape(self):
        doc = batch_sweep(pe_counts=(8, 16), sizes=(8,), batches=(8,))
        assert doc["bench"] == "superstep-batch"
        assert doc["acceptance"]["speedup_min"] == ACCEPT_SPEEDUP
        assert len(doc["points"]) == 2
        json.dumps(doc)  # must be serialisable as-is

    def test_check_flags_missing_acceptance_point(self):
        doc = batch_sweep(pe_counts=(8,), sizes=(512,), batches=(2,))
        problems = check_document(doc, fresh_point=False)
        assert any("speedup" in p for p in problems)

    def test_check_flags_wrong_bench_key(self):
        problems = check_document({"bench": "other", "points": []},
                                  fresh_point=False)
        assert problems

    def test_check_flags_truncated_points(self):
        doc = batch_sweep(pe_counts=(8,), sizes=(8,), batches=(8,))
        del doc["points"][0]["speedup"]
        problems = check_document(doc, fresh_point=False)
        assert any("missing keys" in p for p in problems)

    def test_cli_writes_json(self, tmp_path, capsys):
        out = tmp_path / "batch.json"
        status = sweep_main(["--pes", "8", "--sizes", "8", "--batches",
                             "8", "--out", str(out)])
        assert status == 0
        doc = json.loads(out.read_text())
        assert doc["pe_counts"] == [8]
        assert "speedup" in doc["points"][0]
        assert "superstep" in capsys.readouterr().out


class TestCommittedReference:
    def test_reference_passes_the_check_gate(self):
        """The committed BENCH_batch.json passes `--check` end to end —
        the same gate CI's perf-smoke job runs."""
        status = sweep_main(["--check", str(_REFERENCE)])
        assert status == 0

    def test_reference_records_the_acceptance_points(self):
        doc = json.loads(_REFERENCE.read_text())
        assert doc["bench"] == "superstep-batch"
        qualifying = [
            p for p in doc["points"]
            if p["batch"] >= ACCEPT_MIN_BATCH
            and p["nbytes"] <= ACCEPT_MAX_BYTES
            and p["speedup"] >= ACCEPT_SPEEDUP
        ]
        assert qualifying, "no committed point meets the 2x bar"
