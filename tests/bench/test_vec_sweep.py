"""Tests for the large-PE crossover sweep (the BENCH_vec.json format)."""

from __future__ import annotations

import json

from repro.bench.vec_sweep import (
    LINEAR_MAX_PES,
    RING_MAX_PES,
    crossover_sweep,
    main as sweep_main,
    sweep_point,
)


class TestSweepPoint:
    def test_all_algorithms_below_the_caps(self):
        p = sweep_point("broadcast", 64, 8)
        assert set(p["makespans_ns"]) == {"binomial", "linear", "ring"}
        assert p["winner"] in p["makespans_ns"]
        assert all(v > 0 for v in p["makespans_ns"].values())
        assert p["nbytes"] == 64

    def test_ring_capped_past_512(self):
        p = sweep_point("allreduce", RING_MAX_PES * 2, 8)
        assert "ring" not in p["makespans_ns"]
        assert {"doubling", "rabenseifner"} <= set(p["makespans_ns"])

    def test_linear_capped_past_1024(self):
        p = sweep_point("broadcast", LINEAR_MAX_PES * 4, 8)
        assert set(p["makespans_ns"]) == {"binomial"}
        # tuning may pick a capped algorithm; the point records that
        # instead of judging against a measurement that does not exist.
        if not p["tuning_pick_measured"]:
            assert p["tuning_within_1p25x"] is None

    def test_deterministic(self):
        a = sweep_point("allreduce", 64, 512)
        b = sweep_point("allreduce", 64, 512)
        assert a["makespans_ns"] == b["makespans_ns"]


class TestCrossoverDocument:
    def test_document_shape_and_caps_note(self):
        doc = crossover_sweep(pe_counts=(8, 16), sizes=(8, 512))
        assert doc["bench"] == "vec-crossover"
        assert doc["caps"]["ring_max_pes"] == RING_MAX_PES
        assert len(doc["points"]) == 2 * 2 * 2  # collectives × pes × sizes
        assert 0.0 <= doc["tuning_within_1p25x_fraction"] <= 1.0
        json.dumps(doc)  # must be serialisable as-is

    def test_cli_writes_json(self, tmp_path, capsys):
        out = tmp_path / "vec.json"
        status = sweep_main(["--pes", "8", "--sizes", "8", "--out",
                             str(out)])
        assert status == 0
        doc = json.loads(out.read_text())
        assert doc["pe_counts"] == [8]
        assert "winner" in doc["points"][0]
        assert "makespan" in capsys.readouterr().out


def test_committed_reference_matches_format():
    """BENCH_vec.json in the repo root stays loadable and well-formed."""
    import pathlib

    path = pathlib.Path(__file__).resolve().parents[2] / "BENCH_vec.json"
    doc = json.loads(path.read_text())
    assert doc["bench"] == "vec-crossover"
    assert doc["pe_counts"] == [64, 256, 1024, 4096]
    assert len(doc["points"]) == 2 * 4 * 4
    for p in doc["points"]:
        assert p["winner"] in p["makespans_ns"]
