"""Tests for the pipelined-allreduce sweep (BENCH_pipeline.json)."""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.bench.pipeline_sweep import (
    ACCEPT_MIN_BYTES,
    ACCEPT_MIN_PES,
    ACCEPT_RATIO,
    RING_MAX_PES,
    check_document,
    main as sweep_main,
    pipeline_sweep,
    sweep_point,
)

_REFERENCE = pathlib.Path(__file__).resolve().parents[2] / \
    "BENCH_pipeline.json"


class TestSweepPoint:
    def test_all_three_algorithms_below_the_cap(self):
        p = sweep_point(24, 8192)
        assert set(p["makespans_ns"]) == {"ring", "rabenseifner",
                                          "dual-pipelined"}
        assert p["winner"] in p["makespans_ns"]
        assert all(v > 0 for v in p["makespans_ns"].values())
        assert p["ring_over_dual"] > 0
        assert p["segments"] >= 2

    def test_ring_capped_past_512(self):
        p = sweep_point(RING_MAX_PES * 2, 8192)
        assert "ring" not in p["makespans_ns"]
        assert p["ring_over_dual"] is None

    def test_deterministic(self):
        a = sweep_point(33, 8192)
        b = sweep_point(33, 8192)
        assert a["makespans_ns"] == b["makespans_ns"]

    def test_acceptance_bar_holds_at_64_pes(self):
        """The PR 8 bar, measured live: >= 1.3x over ring at 64 KiB."""
        p = sweep_point(64, ACCEPT_MIN_BYTES // 8)
        assert p["n_pes"] >= ACCEPT_MIN_PES
        assert p["ring_over_dual"] >= ACCEPT_RATIO


class TestDocument:
    def test_document_shape(self):
        doc = pipeline_sweep(pe_counts=(16, 33), sizes=(8192,))
        assert doc["bench"] == "pipeline-allreduce"
        assert doc["caps"]["ring_max_pes"] == RING_MAX_PES
        assert len(doc["points"]) == 2
        assert 0.0 <= doc["tuning_within_1p25x_fraction"] <= 1.0
        json.dumps(doc)  # must be serialisable as-is

    def test_check_flags_missing_acceptance_point(self):
        doc = pipeline_sweep(pe_counts=(16,), sizes=(8,))  # tiny payload
        problems = check_document(doc, fresh_point=False)
        assert any("ring/dual" in p for p in problems)

    def test_check_flags_wrong_bench_key(self):
        problems = check_document({"bench": "other", "points": []},
                                  fresh_point=False)
        assert problems

    def test_cli_writes_json(self, tmp_path, capsys):
        out = tmp_path / "pipe.json"
        status = sweep_main(["--pes", "33", "--sizes", "8192", "--out",
                             str(out)])
        assert status == 0
        doc = json.loads(out.read_text())
        assert doc["pe_counts"] == [33]
        assert "ring_over_dual" in doc["points"][0]
        assert "makespan" in capsys.readouterr().out


class TestCommittedReference:
    def test_reference_passes_the_check_gate(self):
        """The committed BENCH_pipeline.json passes `--check` end to
        end — the same gate CI's perf-smoke job runs."""
        status = sweep_main(["--check", str(_REFERENCE)])
        assert status == 0

    def test_reference_records_the_acceptance_points(self):
        doc = json.loads(_REFERENCE.read_text())
        assert doc["bench"] == "pipeline-allreduce"
        qualifying = [
            p for p in doc["points"]
            if p["n_pes"] >= ACCEPT_MIN_PES
            and p["nbytes"] >= ACCEPT_MIN_BYTES
            and p["ring_over_dual"] is not None
            and p["ring_over_dual"] >= ACCEPT_RATIO
        ]
        assert qualifying, "no committed point meets the 1.3x bar"
        # The headline point: 64 PEs x 64 KiB, nearly 3x over ring.
        head = next(p for p in doc["points"]
                    if p["n_pes"] == 64 and p["nelems"] == 8192)
        assert head["ring_over_dual"] >= ACCEPT_RATIO
