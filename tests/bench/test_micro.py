"""Tests for the OSU/OSB-style microbenchmarks."""

from __future__ import annotations

import pytest

from repro.bench.micro import (
    MicroResult,
    get_latency,
    message_rate,
    put_bandwidth,
    put_latency,
)
from repro.params import MachineConfig


def cfg(**kw):
    base = dict(
        n_pes=2,
        cores_per_node=1,
        memory_bytes_per_pe=8 * 1024 * 1024,
        symmetric_heap_bytes=4 * 1024 * 1024,
        collective_scratch_bytes=512 * 1024,
    )
    base.update(kw)
    return MachineConfig(**base)


class TestMicroResult:
    def test_latency_accounting(self):
        r = MicroResult(nbytes=8, iterations=10, total_ns=10_000)
        assert r.latency_us == pytest.approx(1.0)

    def test_bandwidth_accounting(self):
        r = MicroResult(nbytes=1_000_000, iterations=1, total_ns=1e9)
        assert r.bandwidth_mbps == pytest.approx(1.0)

    def test_rate_accounting(self):
        r = MicroResult(nbytes=8, iterations=1000, total_ns=1e9)
        assert r.rate_mops == pytest.approx(0.001)


class TestLatency:
    def test_latency_grows_with_size(self):
        results = put_latency(sizes=(8, 32768), iterations=4, config=cfg())
        assert results[1].latency_us > results[0].latency_us

    def test_get_costs_more_than_put(self):
        """A get is a round trip; a put is fire-and-forget + quiet."""
        puts = put_latency(sizes=(8,), iterations=8, config=cfg())
        gets = get_latency(sizes=(8,), iterations=8, config=cfg())
        assert gets[0].latency_us > 0
        assert puts[0].latency_us > 0

    def test_mpi_transport_slower(self):
        xb = put_latency(sizes=(64,), iterations=8, config=cfg())
        mp = put_latency(sizes=(64,), iterations=8,
                         config=cfg().with_transport("mpi"))
        assert mp[0].latency_us > xb[0].latency_us

    def test_deterministic(self):
        a = put_latency(sizes=(64,), iterations=4, config=cfg())
        b = put_latency(sizes=(64,), iterations=4, config=cfg())
        assert a[0].total_ns == b[0].total_ns


class TestBandwidth:
    def test_bandwidth_grows_with_size(self):
        results = put_bandwidth(sizes=(64, 262144), iterations=2,
                                window=4, config=cfg())
        assert results[1].bandwidth_mbps > results[0].bandwidth_mbps

    def test_windowing_counted(self):
        results = put_bandwidth(sizes=(64,), iterations=3, window=4,
                                config=cfg())
        assert results[0].iterations == 12


class TestMessageRate:
    def test_positive_rate(self):
        mr = message_rate(iterations=64, config=cfg())
        assert mr.rate_mops > 0

    def test_nb_rate_beats_blocking_latency(self):
        """Pipelined non-blocking puts must outpace 1/latency of
        blocking puts (that's the point of the _nb API)."""
        mr = message_rate(iterations=64, config=cfg())
        lat = put_latency(sizes=(8,), iterations=16, config=cfg())[0]
        blocking_rate_mops = 1.0 / lat.latency_us
        assert mr.rate_mops > blocking_rate_mops

    def test_needs_two_pes(self):
        with pytest.raises(ValueError):
            message_rate(config=MachineConfig(n_pes=1))
