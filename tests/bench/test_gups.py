"""Tests for the GUPs benchmark port."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.gups import (
    PERIOD,
    POLY,
    GupsParams,
    GupsResult,
    _lcg_step,
    _mix64,
    hpcc_starts,
    run_gups,
)
from repro.params import MachineConfig

FAST = GupsParams(log2_table_size=12, updates_per_pe=256)


def fast_config(n_pes):
    return MachineConfig(
        n_pes=n_pes,
        memory_bytes_per_pe=4 * 1024 * 1024,
        symmetric_heap_bytes=2 * 1024 * 1024,
        collective_scratch_bytes=256 * 1024,
    )


class TestHpccGenerator:
    def test_starts_zero_is_one(self):
        assert hpcc_starts(0) == 1

    def test_starts_matches_stepping(self):
        """starts(n) must equal n sequential LCG steps from 1."""
        ran = 1
        for n in range(1, 40):
            ran = _lcg_step(ran)
            assert hpcc_starts(n) == ran

    def test_starts_jump_far(self):
        # Jump to position 10_000 and compare with stepping from 9_990.
        ran = hpcc_starts(9_990)
        for _ in range(10):
            ran = _lcg_step(ran)
        assert hpcc_starts(10_000) == ran

    def test_period_reduction(self):
        assert hpcc_starts(PERIOD + 5) == hpcc_starts(5)

    def test_poly_constant(self):
        assert POLY == 7  # x^63 + x^2 + x + 1 feedback

    def test_mix64_is_bijective_on_samples(self):
        xs = [hpcc_starts(i * 997) for i in range(200)]
        assert len({_mix64(x) for x in xs}) == len(set(xs))

    def test_mixed_indices_are_spread(self):
        """The decorrelated index stream must cover many pages."""
        ran, pages = 1, set()
        for _ in range(2048):
            ran = _lcg_step(ran)
            pages.add((_mix64(ran) & (2 ** 22 - 1)) >> 9)
        assert len(pages) > 1500


class TestGupsRun:
    @pytest.mark.parametrize("n_pes", [1, 2, 4])
    def test_verification_passes(self, n_pes):
        res = run_gups(fast_config(n_pes), FAST)
        assert res.passed
        assert res.total_updates == 256 * n_pes
        assert res.sim_seconds > 0

    def test_mops_accounting(self):
        res = GupsResult(n_pes=4, table_size=1 << 12, total_updates=4_000,
                         sim_seconds=1e-3, errors=0, verified=True)
        assert res.mops_total == pytest.approx(4.0)
        assert res.mops_per_pe == pytest.approx(1.0)
        assert res.gups == pytest.approx(0.004)

    def test_hpcc_acceptance_threshold(self):
        ok = GupsResult(2, 4096, 10_000, 1e-3, errors=100, verified=True)
        bad = GupsResult(2, 4096, 10_000, 1e-3, errors=101, verified=True)
        assert ok.passed and not bad.passed

    def test_unverified_run_always_passes(self):
        res = run_gups(fast_config(2),
                       GupsParams(log2_table_size=12, updates_per_pe=64,
                                  verify=False))
        assert res.passed and res.errors == 0

    def test_table_divisibility_enforced(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            run_gups(fast_config(3), FAST)  # 2^12 % 3 != 0

    def test_deterministic(self):
        a = run_gups(fast_config(2), FAST)
        b = run_gups(fast_config(2), FAST)
        assert a.sim_seconds == b.sim_seconds
        assert a.errors == b.errors

    def test_uses_collectives(self):
        from repro.runtime import Machine
        from repro.bench.gups import _gups_pe

        m = Machine(fast_config(2))
        m.run(_gups_pe, [(FAST,)] * 2)
        calls = m.stats.collective_calls
        assert any(k.startswith("broadcast") for k in calls)
        assert any(k.startswith("reduce:sum") for k in calls)
