"""Tests for the functional xBGAS hart (fetch/decode/execute)."""

from __future__ import annotations

import pytest

from repro.errors import IsaError, OlbMissError
from repro.isa.assembler import assemble
from repro.isa.cpu import Cpu, HaltReason
from repro.isa.memory import Memory

MASK64 = (1 << 64) - 1


def run(src: str, mem_size: int = 1 << 16, setup=None, max_instructions=100000):
    cpu = Cpu(0, Memory(mem_size))
    prog = assemble(src)
    cpu.load_program(prog.words)
    if setup:
        setup(cpu)
    reason = cpu.run(max_instructions)
    assert reason is HaltReason.EBREAK
    return cpu


class TestArithmetic:
    def test_add_sub(self):
        cpu = run("li a0, 100\nli a1, 58\nadd a2, a0, a1\nsub a3, a0, a1\nhalt\n")
        assert cpu.regs.read_x(12) == 158
        assert cpu.regs.read_x(13) == 42

    def test_wraparound(self):
        cpu = run("li a0, -1\nli a1, 1\nadd a2, a0, a1\nhalt\n")
        assert cpu.regs.read_x(12) == 0

    def test_logic_ops(self):
        cpu = run("""
            li a0, 0xF0
            li a1, 0x3C
            and a2, a0, a1
            or  a3, a0, a1
            xor a4, a0, a1
            halt
        """)
        assert cpu.regs.read_x(12) == 0x30
        assert cpu.regs.read_x(13) == 0xFC
        assert cpu.regs.read_x(14) == 0xCC

    def test_shifts(self):
        cpu = run("""
            li a0, -8
            srai a1, a0, 1
            srli a2, a0, 60
            slli a3, a0, 1
            halt
        """)
        assert cpu.regs.read_x_signed(11) == -4
        assert cpu.regs.read_x(12) == 15
        assert cpu.regs.read_x_signed(13) == -16

    def test_slt(self):
        cpu = run("""
            li a0, -1
            li a1, 1
            slt a2, a0, a1
            sltu a3, a0, a1
            halt
        """)
        assert cpu.regs.read_x(12) == 1   # signed: -1 < 1
        assert cpu.regs.read_x(13) == 0   # unsigned: 2^64-1 > 1

    def test_word_ops_sign_extend(self):
        cpu = run("""
            li a0, 0x7fffffff
            addiw a1, a0, 1
            halt
        """)
        assert cpu.regs.read_x_signed(11) == -(1 << 31)

    def test_mul_div_rem(self):
        cpu = run("""
            li a0, -7
            li a1, 2
            mul a2, a0, a1
            div a3, a0, a1
            rem a4, a0, a1
            halt
        """)
        assert cpu.regs.read_x_signed(12) == -14
        assert cpu.regs.read_x_signed(13) == -3  # truncation toward zero
        assert cpu.regs.read_x_signed(14) == -1

    def test_div_by_zero(self):
        cpu = run("li a0, 5\ndiv a1, a0, x0\nremu a2, a0, x0\nhalt\n")
        assert cpu.regs.read_x(11) == MASK64
        assert cpu.regs.read_x(12) == 5


class TestControlFlow:
    def test_loop(self):
        cpu = run("""
            li a0, 10
            li a1, 0
        loop:
            add a1, a1, a0
            addi a0, a0, -1
            bnez a0, loop
            halt
        """)
        assert cpu.regs.read_x(11) == 55

    def test_jal_link(self):
        cpu = run("""
            jal ra, func
            halt
        func:
            li a0, 99
            ret
        """)
        assert cpu.regs.read_x(10) == 99

    def test_branch_not_taken_falls_through(self):
        cpu = run("li a0, 1\nbeqz a0, skip\nli a1, 5\nskip: halt\n")
        assert cpu.regs.read_x(11) == 5

    def test_max_instruction_budget(self):
        cpu = Cpu(0, Memory(1 << 12))
        cpu.load_program(assemble("loop: j loop\n").words)
        assert cpu.run(max_instructions=10) is HaltReason.MAX_INSTRUCTIONS

    def test_stepping_halted_core_raises(self):
        cpu = run("halt\n")
        with pytest.raises(IsaError):
            cpu.step()


class TestLoadsStores:
    def test_widths_and_sign(self):
        cpu = run("""
            li a0, 0x1000
            li a1, -2
            sd a1, 0(a0)
            lb a2, 0(a0)
            lbu a3, 0(a0)
            lh a4, 0(a0)
            lhu a5, 0(a0)
            lw a6, 0(a0)
            lwu a7, 0(a0)
            halt
        """)
        assert cpu.regs.read_x_signed(12) == -2
        assert cpu.regs.read_x(13) == 0xFE
        assert cpu.regs.read_x_signed(14) == -2
        assert cpu.regs.read_x(15) == 0xFFFE
        assert cpu.regs.read_x_signed(16) == -2
        assert cpu.regs.read_x(17) == 0xFFFFFFFE


class TestXbgasLocal:
    """Extended instructions with object ID 0 behave as local accesses
    (section 3.2: 'a local memory operation is performed')."""

    def test_eld_esd_local(self):
        cpu = run("""
            li a0, 0x2000
            li a1, 1234
            esd a1, 0(a0)
            eld a2, 0(a0)
            halt
        """)
        assert cpu.regs.read_x(12) == 1234
        assert cpu.memory.load(0x2000, 8) == 1234

    def test_raw_local(self):
        cpu = run("""
            li a0, 0x2000
            li a1, 77
            ersd a1, a0, e4
            erld a2, a0, e4
            halt
        """)
        assert cpu.regs.read_x(12) == 77

    def test_address_management(self):
        cpu = run("""
            li a0, 5
            eaddie e3, a0, 2    # e3 = 7
            eaddix e4, e3, 1    # e4 = 8
            eaddi  a1, e4, -3   # a1 = 5
            halt
        """)
        assert cpu.regs.read_e(3) == 7
        assert cpu.regs.read_e(4) == 8
        assert cpu.regs.read_x(11) == 5

    def test_remote_without_port_raises(self):
        cpu = Cpu(0, Memory(1 << 12))
        cpu.olb.install(1, 0)
        src = "eaddie e10, x0, 1\nli a0, 16\neld a1, 0(a0)\nhalt\n"
        cpu.load_program(assemble(src).words)
        # rs1 of eld is a0 = x10, so its paired extended register is e10.
        with pytest.raises(IsaError):
            cpu.run()

    def test_olb_miss_surfaces(self):
        cpu = Cpu(0, Memory(1 << 12))
        src = "eaddie e10, x0, 9\nli a0, 16\neld a1, 0(a0)\nhalt\n"
        cpu.load_program(assemble(src).words)
        with pytest.raises(OlbMissError):
            cpu.run()


class TestRemotePort:
    """The base/raw instructions route through the remote port when the
    extended register holds a non-zero object ID."""

    class FakePort:
        def __init__(self):
            self.loads = []
            self.stores = []
            self.cells = {}

        def remote_load(self, pe, addr, nbytes, signed):
            self.loads.append((pe, addr, nbytes, signed))
            return self.cells.get(addr, 0), 5.0

        def remote_store(self, pe, addr, nbytes, value):
            self.stores.append((pe, addr, nbytes, value))
            self.cells[addr] = value
            return 3.0

    def make_cpu(self):
        port = self.FakePort()
        cpu = Cpu(0, Memory(1 << 12), remote_port=port)
        cpu.olb.install_default(4)
        return cpu, port

    def test_base_type_remote_store_load(self):
        cpu, port = self.make_cpu()
        src = """
            li a0, 64
            eaddie e10, x0, 3   # object 3 -> PE 2
            li a1, 555
            esd a1, 8(a0)
            eld a2, 8(a0)
            halt
        """
        cpu.load_program(assemble(src).words)
        cpu.run()
        assert port.stores == [(2, 72, 8, 555)]
        assert port.loads == [(2, 72, 8, True)]
        assert cpu.regs.read_x(12) == 555

    def test_raw_type_remote(self):
        cpu, port = self.make_cpu()
        src = """
            li a0, 128
            eaddie e7, x0, 2    # object 2 -> PE 1
            li a1, 9
            ersd a1, a0, e7
            erlw a2, a0, e7
            halt
        """
        cpu.load_program(assemble(src).words)
        cpu.run()
        assert port.stores == [(1, 128, 8, 9)]
        assert port.loads == [(1, 128, 4, True)]

    def test_remote_time_charged(self):
        cpu, port = self.make_cpu()
        src = """
            li a0, 64
            eaddie e10, x0, 2
            li a1, 1
            esd a1, 0(a0)
            halt
        """
        cpu.load_program(assemble(src).words)
        before = cpu.ns_elapsed
        cpu.run()
        # 3 ns from the port plus OLB lookup time must be included.
        assert cpu.ns_elapsed - before >= 3.0 + cpu.olb.lookup_ns


class TestCycleAccounting:
    def test_instruction_count(self):
        cpu = run("li a0, 3\nli a1, 4\nadd a2, a0, a1\nhalt\n")
        assert cpu.instructions_retired == 4

    def test_time_advances(self):
        cpu = run("li a0, 3\nmul a1, a0, a0\nhalt\n")
        assert cpu.ns_elapsed > 0

    def test_decode_cache_reused(self):
        cpu = run("""
            li a0, 100
        loop:
            addi a0, a0, -1
            bnez a0, loop
            halt
        """)
        # 1 li + 100*(addi+bnez) + halt executed, but only 4 distinct words.
        assert cpu.instructions_retired == 202
        assert len(cpu._decode_cache) == 4
