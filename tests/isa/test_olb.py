"""Tests for the Object Look-aside Buffer (paper section 3.2)."""

from __future__ import annotations

import pytest

from repro.errors import OlbMissError
from repro.isa.olb import LOCAL_OBJECT_ID, ObjectLookasideBuffer


class TestOlb:
    def test_object_id_zero_means_local(self):
        olb = ObjectLookasideBuffer(owner_pe=3)
        assert olb.is_local(LOCAL_OBJECT_ID)
        assert not olb.is_local(1)

    def test_default_mapping(self):
        """The runtime convention: object ID k maps to PE k-1."""
        olb = ObjectLookasideBuffer(owner_pe=0)
        olb.install_default(4)
        assert [olb.translate(k) for k in (1, 2, 3, 4)] == [0, 1, 2, 3]

    def test_miss_raises(self):
        olb = ObjectLookasideBuffer(owner_pe=0)
        with pytest.raises(OlbMissError):
            olb.translate(7)

    def test_miss_counted(self):
        olb = ObjectLookasideBuffer(owner_pe=0)
        olb.install(1, 0)
        olb.translate(1)
        with pytest.raises(OlbMissError):
            olb.translate(2)
        assert olb.lookups == 2
        assert olb.misses == 1

    def test_cannot_install_reserved_id(self):
        olb = ObjectLookasideBuffer(owner_pe=0)
        with pytest.raises(OlbMissError):
            olb.install(0, 1)

    def test_custom_remapping(self):
        """Location-aware remapping (paper section 7) is expressible."""
        olb = ObjectLookasideBuffer(owner_pe=0)
        olb.install(42, 3)
        assert olb.translate(42) == 3

    def test_object_id_for_reverse_lookup(self):
        olb = ObjectLookasideBuffer(owner_pe=2)
        olb.install_default(4)
        assert olb.object_id_for(2) == 0  # self = local
        assert olb.object_id_for(3) == 4
        with pytest.raises(OlbMissError):
            olb.object_id_for(9)

    def test_len(self):
        olb = ObjectLookasideBuffer(owner_pe=0)
        olb.install_default(8)
        assert len(olb) == 8
