"""Tests for the per-PE byte-addressable memory."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import AddressError
from repro.isa.memory import Memory


class TestScalarAccess:
    def test_little_endian(self):
        m = Memory(64)
        m.store(0, 4, 0x12345678)
        assert m.load(0, 1) == 0x78
        assert m.load(3, 1) == 0x12

    @pytest.mark.parametrize("width", [1, 2, 4, 8])
    def test_widths_roundtrip(self, width):
        m = Memory(64)
        value = (1 << (8 * width)) - 2
        m.store(8, width, value)
        assert m.load(8, width) == value

    def test_signed_load(self):
        m = Memory(16)
        m.store(0, 2, 0xFFFE)
        assert m.load(0, 2, signed=True) == -2
        assert m.load(0, 2, signed=False) == 0xFFFE

    def test_store_truncates(self):
        m = Memory(16)
        m.store(0, 1, 0x1FF)
        assert m.load(0, 1) == 0xFF

    def test_bad_width(self):
        m = Memory(16)
        with pytest.raises(AddressError):
            m.load(0, 3)

    @pytest.mark.parametrize("addr,nbytes", [(-1, 8), (60, 8), (64, 1)])
    def test_out_of_bounds(self, addr, nbytes):
        m = Memory(64)
        with pytest.raises(AddressError):
            m.load(addr, min(nbytes, 8))

    @given(st.integers(0, 56), st.integers(0, (1 << 64) - 1))
    def test_store_load_property(self, addr, value):
        m = Memory(64)
        m.store(addr, 8, value)
        assert m.load(addr, 8) == value


class TestViews:
    def test_view_aliases_memory(self):
        m = Memory(128)
        v = m.view(16, np.int32, 4)
        v[:] = [1, 2, 3, 4]
        assert m.load(16, 4) == 1
        assert m.load(28, 4) == 4

    def test_strided_view(self):
        m = Memory(256)
        v = m.view(0, np.int64, 4, stride=2)
        v[:] = [10, 20, 30, 40]
        assert m.load(0, 8) == 10
        assert m.load(16, 8) == 20
        assert m.load(8, 8) == 0  # the gap is untouched

    def test_view_bounds_checked(self):
        m = Memory(64)
        with pytest.raises(AddressError):
            m.view(0, np.int64, 9)
        with pytest.raises(AddressError):
            m.view(32, np.int64, 4, stride=2)

    def test_zero_count_view(self):
        m = Memory(64)
        assert m.view(0, np.int64, 0).size == 0

    def test_bad_stride(self):
        m = Memory(64)
        with pytest.raises(AddressError):
            m.view(0, np.int64, 2, stride=0)

    def test_read_bytes_is_readonly(self):
        m = Memory(64)
        v = m.read_bytes(0, 8)
        with pytest.raises(ValueError):
            v[0] = 1

    def test_write_bytes(self):
        m = Memory(64)
        m.write_bytes(4, b"\x01\x02\x03")
        assert m.load(4, 1) == 1
        assert m.load(6, 1) == 3

    def test_fill(self):
        m = Memory(64)
        m.fill(0, 64, 0xAB)
        assert m.load(10, 1) == 0xAB

    @given(st.integers(1, 16), st.integers(1, 4))
    def test_strided_view_property(self, count, stride):
        m = Memory(4096)
        v = m.view(64, np.int16, count, stride=stride)
        data = np.arange(count, dtype=np.int16)
        v[:] = data
        for i in range(count):
            assert m.load(64 + 2 * i * stride, 2) == i
