"""Differential testing of the functional core.

Generates random straight-line programs over the RV64I ALU and M
instructions, runs them on the :class:`Cpu`, and checks the final
register file against an independent Python oracle for RISC-V
semantics.  This is the miniature equivalent of running the compliance
suite against Spike.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import Cpu, Memory
from repro.isa.assembler import assemble

MASK64 = (1 << 64) - 1


def s64(v):
    v &= MASK64
    return v - (1 << 64) if v >= (1 << 63) else v


def s32(v):
    v &= 0xFFFFFFFF
    return v - (1 << 32) if v >= (1 << 31) else v


def sext32(v):
    return s32(v) & MASK64


def trunc_div(a, b):
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


# Oracle semantics: name -> f(rs1, rs2) for R-type over uint64 values.
R_ORACLE = {
    "add": lambda a, b: (a + b) & MASK64,
    "sub": lambda a, b: (a - b) & MASK64,
    "sll": lambda a, b: (a << (b & 63)) & MASK64,
    "slt": lambda a, b: int(s64(a) < s64(b)),
    "sltu": lambda a, b: int(a < b),
    "xor": lambda a, b: a ^ b,
    "srl": lambda a, b: a >> (b & 63),
    "sra": lambda a, b: (s64(a) >> (b & 63)) & MASK64,
    "or": lambda a, b: a | b,
    "and": lambda a, b: a & b,
    "addw": lambda a, b: sext32(a + b),
    "subw": lambda a, b: sext32(a - b),
    "mul": lambda a, b: (a * b) & MASK64,
    "mulhu": lambda a, b: (a * b) >> 64,
    "mulh": lambda a, b: ((s64(a) * s64(b)) >> 64) & MASK64,
    "divu": lambda a, b: a // b if b else MASK64,
    "remu": lambda a, b: a % b if b else a,
    "div": lambda a, b: (trunc_div(s64(a), s64(b)) & MASK64) if b else MASK64,
    "rem": lambda a, b: ((s64(a) - trunc_div(s64(a), s64(b)) * s64(b))
                         & MASK64) if s64(b) else a,
}

I_ORACLE = {
    "addi": lambda a, imm: (a + imm) & MASK64,
    "xori": lambda a, imm: a ^ (imm & MASK64),
    "ori": lambda a, imm: a | (imm & MASK64),
    "andi": lambda a, imm: a & (imm & MASK64),
    "slti": lambda a, imm: int(s64(a) < imm),
    "sltiu": lambda a, imm: int(a < (imm & MASK64)),
    "addiw": lambda a, imm: sext32(a + imm),
}

SH_ORACLE = {
    "slli": lambda a, sh: (a << sh) & MASK64,
    "srli": lambda a, sh: a >> sh,
    "srai": lambda a, sh: (s64(a) >> sh) & MASK64,
}


@st.composite
def straightline_program(draw):
    """A random sequence of ALU ops plus the oracle's expected regs."""
    n_instrs = draw(st.integers(1, 30))
    regs = [0] * 32
    # Seed some registers with interesting constants via li.
    lines = []
    seeds = draw(st.lists(
        st.tuples(st.integers(1, 9),
                  st.integers(-(1 << 31), (1 << 31) - 1)),
        min_size=2, max_size=5))
    for reg, val in seeds:
        lines.append(f"li x{reg}, {val}")
        regs[reg] = val & MASK64
    kinds = st.sampled_from(["R", "I", "SH"])
    for _ in range(n_instrs):
        kind = draw(kinds)
        rd = draw(st.integers(1, 15))
        rs1 = draw(st.integers(0, 15))
        if kind == "R":
            name = draw(st.sampled_from(sorted(R_ORACLE)))
            rs2 = draw(st.integers(0, 15))
            lines.append(f"{name} x{rd}, x{rs1}, x{rs2}")
            regs[rd] = R_ORACLE[name](regs[rs1], regs[rs2])
        elif kind == "I":
            name = draw(st.sampled_from(sorted(I_ORACLE)))
            imm = draw(st.integers(-2048, 2047))
            lines.append(f"{name} x{rd}, x{rs1}, {imm}")
            regs[rd] = I_ORACLE[name](regs[rs1], imm)
        else:
            name = draw(st.sampled_from(sorted(SH_ORACLE)))
            sh = draw(st.integers(0, 63))
            lines.append(f"{name} x{rd}, x{rs1}, {sh}")
            regs[rd] = SH_ORACLE[name](regs[rs1], sh)
    lines.append("halt")
    return "\n".join(lines), regs


class TestDifferential:
    @settings(max_examples=200, deadline=None)
    @given(straightline_program())
    def test_cpu_matches_oracle(self, case):
        source, expected = case
        cpu = Cpu(0, Memory(1 << 14))
        cpu.load_program(assemble(source).words)
        cpu.run()
        for i in range(16):
            assert cpu.regs.read_x(i) == expected[i], (
                f"x{i} mismatch\nprogram:\n{source}"
            )

    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, MASK64), st.integers(0, MASK64),
           st.sampled_from(sorted(R_ORACLE)))
    def test_single_r_instruction_exhaustive_values(self, a, b, name):
        src = f"{name} x3, x1, x2\nhalt\n"
        cpu = Cpu(0, Memory(1 << 12))
        cpu.load_program(assemble(src).words)
        cpu.regs.write_x(1, a)
        cpu.regs.write_x(2, b)
        cpu.run()
        assert cpu.regs.read_x(3) == R_ORACLE[name](a, b), (name, a, b)


class TestMemoryDifferential:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 63),
                              st.integers(-(1 << 31), (1 << 31) - 1),
                              st.sampled_from(["b", "h", "w", "d"])),
                    min_size=1, max_size=10))
    def test_store_load_roundtrip_program(self, ops):
        """Generated store/load pairs behave like a Python dict of
        little-endian cells."""
        width = {"b": 1, "h": 2, "w": 4, "d": 8}
        lines = ["li a0, 4096"]
        mem_oracle = {}
        for slot, val, w in ops:
            off = slot * 8
            lines.append(f"li t0, {val}")
            lines.append(f"s{w} t0, {off}(a0)")
            raw = (val & MASK64).to_bytes(8, "little")[:width[w]]
            for i, byte in enumerate(raw):
                mem_oracle[4096 + off + i] = byte
        lines.append("halt")
        cpu = Cpu(0, Memory(1 << 14))
        cpu.load_program(assemble("\n".join(lines)).words)
        cpu.run()
        for addr, byte in mem_oracle.items():
            assert cpu.memory.load(addr, 1) == byte
