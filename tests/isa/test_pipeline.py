"""Tests for the optional pipeline timing model (paper section 7)."""

from __future__ import annotations

import pytest

from repro.isa import Cpu, Memory, assemble
from repro.isa.pipeline import PipelineModel, PipelineParams
from repro.params import CacheParams


def run(src: str, pipeline: PipelineModel | None):
    cpu = Cpu(0, Memory(1 << 16), pipeline=pipeline)
    cpu.load_program(assemble(src).words)
    cpu.run()
    return cpu


class TestHazards:
    def test_load_use_stall_detected(self):
        src = """
            li a0, 0x1000
            ld a1, 0(a0)
            add a2, a1, a1   # consumes the load result immediately
            halt
        """
        pipe = PipelineModel()
        run(src, pipe)
        assert pipe.stalls == 1

    def test_independent_instruction_hides_latency(self):
        src = """
            li a0, 0x1000
            ld a1, 0(a0)
            addi a3, x0, 7   # independent: no stall
            add a2, a1, a1   # one instruction later: no stall
            halt
        """
        pipe = PipelineModel()
        run(src, pipe)
        assert pipe.stalls == 0

    def test_store_after_load_address_hazard(self):
        src = """
            li a0, 0x1000
            ld a1, 0(a0)
            sd a1, 8(a0)     # rs2 = loaded value
            halt
        """
        pipe = PipelineModel()
        run(src, pipe)
        assert pipe.stalls == 1

    def test_x0_never_hazards(self):
        src = """
            li a0, 0x1000
            lw x0, 0(a0)     # load to x0 is discarded
            add a2, x0, x0
            halt
        """
        pipe = PipelineModel()
        run(src, pipe)
        assert pipe.stalls == 0

    def test_stall_adds_time(self):
        src = "li a0, 0x1000\nld a1, 0(a0)\nadd a2, a1, a1\nhalt\n"
        with_pipe = run(src, PipelineModel()).ns_elapsed
        without = run(src, None).ns_elapsed
        assert with_pipe > without


class TestBranchFlush:
    def test_taken_branch_flushes(self):
        src = """
            li a0, 3
        loop:
            addi a0, a0, -1
            bnez a0, loop
            halt
        """
        pipe = PipelineModel()
        run(src, pipe)
        assert pipe.flushes == 2  # taken twice, falls through once

    def test_jumps_flush(self):
        src = "j skip\nnop\nskip: halt\n"
        pipe = PipelineModel()
        run(src, pipe)
        assert pipe.flushes == 1

    def test_untaken_branch_no_flush(self):
        src = "beq x0, ra, never\nnop\nnever: halt\n"
        # beq x0, ra: ra == 0 initially so it IS taken; use bne instead.
        src = "bne x0, x0, never\nnop\nnever: halt\n"
        pipe = PipelineModel()
        run(src, pipe)
        assert pipe.flushes == 0


class TestICache:
    def test_loop_body_hits_after_first_iteration(self):
        src = """
            li a0, 100
        loop:
            addi a0, a0, -1
            bnez a0, loop
            halt
        """
        pipe = PipelineModel()
        cpu = run(src, pipe)
        # One 64-byte line holds the whole program: a single cold miss.
        assert pipe.icache_misses == 1
        assert cpu.instructions_retired > 200

    def test_large_footprint_misses_more(self):
        body = "\n".join("    addi a0, a0, 1" for _ in range(64))
        src = f"li a0, 0\n{body}\nhalt\n"
        pipe = PipelineModel()
        run(src, pipe)
        assert pipe.icache_misses >= 4  # ~66 instructions over 64 B lines

    def test_miss_cost_charged(self):
        tiny_icache = PipelineParams(
            icache=CacheParams(size_bytes=128, ways=1, hit_ns=0.0),
            icache_miss_ns=50.0,
        )
        body = "\n".join("    addi a0, a0, 1" for _ in range(64))
        src = f"li a0, 0\n{body}\nhalt\n"
        slow = run(src, PipelineModel(tiny_icache)).ns_elapsed
        fast = run(src, PipelineModel()).ns_elapsed
        assert slow > fast


class TestMachineIntegration:
    def test_pipeline_config_slows_isa_transfers(self):
        from repro.runtime import Machine
        from ..conftest import small_config

        def body(ctx):
            ctx.init()
            buf = ctx.malloc(8 * 128)
            src = ctx.private_malloc(8 * 128)
            ctx.barrier()
            t0 = ctx.pe.clock
            if ctx.my_pe() == 0:
                ctx.put(buf, src, 128, 1, 1, "long")
            dt = ctx.pe.clock - t0
            ctx.barrier()
            ctx.close()
            return dt

        plain = Machine(small_config(2, fidelity="isa")).run(body)[0]
        piped = Machine(small_config(2, fidelity="isa",
                                     pipeline=True)).run(body)[0]
        assert piped > plain

    def test_functional_results_identical(self):
        from repro.runtime import Machine
        from ..conftest import small_config
        import numpy as np

        def body(ctx):
            ctx.init()
            buf = ctx.malloc(8 * 32)
            src = ctx.private_malloc(8 * 32)
            if ctx.my_pe() == 0:
                ctx.view(src, "long", 32)[:] = np.arange(32) * 9
                ctx.put(buf, src, 32, 1, 1, "long")
            ctx.barrier()
            got = list(ctx.view(buf, "long", 32))
            ctx.close()
            return got

        plain = Machine(small_config(2, fidelity="isa")).run(body)
        piped = Machine(small_config(2, fidelity="isa",
                                     pipeline=True)).run(body)
        assert plain == piped
