"""Tests for instruction encode/decode (RV64I subset + xBGAS)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DecodeError
from repro.isa.encoding import (
    INSTRUCTION_SPECS,
    Instruction,
    decode,
    encode,
    spec_of,
)

XBGAS_GROUPS = {"eload", "estore", "erload", "erstore", "eaddr"}


def _imm_strategy(spec):
    if spec.fmt == "Ish":
        return st.integers(0, 63)
    if spec.fmt == "I":
        return st.integers(-2048, 2047)
    if spec.fmt == "S":
        return st.integers(-2048, 2047)
    if spec.fmt == "B":
        return st.integers(-2048, 2047).map(lambda v: v * 2)
    if spec.fmt == "U":
        return st.integers(-(1 << 19), (1 << 19) - 1).map(lambda v: v << 12)
    if spec.fmt == "J":
        return st.integers(-(1 << 19), (1 << 19) - 1).map(lambda v: v * 2)
    return st.just(0)


class TestSpecTable:
    def test_all_mnemonics_unique(self):
        names = [s.name for s in INSTRUCTION_SPECS]
        assert len(names) == len(set(names))

    def test_xbgas_instruction_groups_present(self):
        """Section 3.2's three instruction categories all exist."""
        groups = {s.group for s in INSTRUCTION_SPECS}
        assert XBGAS_GROUPS <= groups

    def test_base_type_load_store_family(self):
        for name in ("elb", "elh", "elw", "eld", "elbu", "elhu", "elwu",
                     "esb", "esh", "esw", "esd"):
            assert spec_of(name).group in ("eload", "estore")

    def test_raw_type_family(self):
        for name in ("erlb", "erlh", "erlw", "erld", "erlbu", "erlhu",
                     "erlwu", "ersb", "ersh", "ersw", "ersd"):
            assert spec_of(name).group in ("erload", "erstore")

    def test_address_management_family(self):
        for name in ("eaddi", "eaddie", "eaddix"):
            assert spec_of(name).group == "eaddr"

    def test_raw_type_has_no_immediate_format(self):
        """Paper: raw-type instructions allow no immediate addressing."""
        for s in INSTRUCTION_SPECS:
            if s.group in ("erload", "erstore"):
                assert s.fmt == "R"

    def test_unknown_mnemonic(self):
        with pytest.raises(DecodeError):
            spec_of("vadd")


class TestRoundTrip:
    @pytest.mark.parametrize("spec", INSTRUCTION_SPECS,
                             ids=lambda s: s.name)
    def test_simple_roundtrip(self, spec):
        imm = {"I": 5, "Ish": 5, "S": 5, "B": 8, "U": 4096, "J": 8}.get(
            spec.fmt, 0)
        if spec.name == "ebreak":
            imm = 1
        instr = Instruction(spec, rd=3, rs1=4, rs2=5, imm=imm)
        if spec.name in ("ecall", "ebreak"):
            instr = Instruction(spec, imm=imm)
        word = encode(instr)
        back = decode(word)
        assert back.spec.name == spec.name
        assert encode(back) == word

    @given(st.sampled_from([s for s in INSTRUCTION_SPECS
                            if s.name not in ("ecall", "ebreak")]),
           st.integers(0, 31), st.integers(0, 31), st.integers(0, 31),
           st.data())
    def test_roundtrip_property(self, spec, rd, rs1, rs2, data):
        imm = data.draw(_imm_strategy(spec))
        instr = Instruction(spec, rd=rd, rs1=rs1, rs2=rs2, imm=imm)
        word = encode(instr)
        back = decode(word)
        assert back.spec.name == spec.name
        assert encode(back) == word
        # Field recovery by format.
        if spec.fmt in ("R", "I", "Ish", "U", "J"):
            assert back.rd == rd
        if spec.fmt in ("R", "I", "Ish", "S", "B"):
            assert back.rs1 == rs1
        if spec.fmt in ("R", "S", "B"):
            assert back.rs2 == rs2
        if spec.fmt != "R":
            assert back.imm == imm


class TestEncodeErrors:
    def test_register_out_of_range(self):
        with pytest.raises(DecodeError):
            encode(Instruction(spec_of("add"), rd=32, rs1=0, rs2=0))

    def test_immediate_overflow(self):
        with pytest.raises(DecodeError):
            encode(Instruction(spec_of("addi"), rd=1, rs1=1, imm=5000))

    def test_branch_offset_must_be_even(self):
        with pytest.raises(DecodeError):
            encode(Instruction(spec_of("beq"), rs1=0, rs2=0, imm=3))

    def test_decode_garbage(self):
        with pytest.raises(DecodeError):
            decode(0x0000007F)  # unused opcode

    def test_decode_rejects_wide_word(self):
        with pytest.raises(DecodeError):
            decode(1 << 32)


class TestSignExtension:
    def test_negative_i_imm(self):
        w = encode(Instruction(spec_of("addi"), rd=1, rs1=2, imm=-1))
        assert decode(w).imm == -1

    def test_negative_branch(self):
        w = encode(Instruction(spec_of("bne"), rs1=1, rs2=2, imm=-16))
        assert decode(w).imm == -16

    def test_negative_jal(self):
        w = encode(Instruction(spec_of("jal"), rd=1, imm=-1024))
        assert decode(w).imm == -1024

    def test_lui_upper(self):
        w = encode(Instruction(spec_of("lui"), rd=1, imm=-4096))
        assert decode(w).imm == -4096
