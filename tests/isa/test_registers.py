"""Tests for the x/e register files (paper Figure 1)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import IsaError
from repro.isa.registers import (
    ABI_NAMES,
    E_NAMES,
    X_NAMES,
    RegisterFile,
    parse_register,
)


class TestRegisterFile:
    def test_figure1_has_32_of_each(self):
        assert len(X_NAMES) == 32
        assert len(E_NAMES) == 32

    def test_x0_hardwired_zero(self):
        rf = RegisterFile()
        rf.write_x(0, 0xDEAD)
        assert rf.read_x(0) == 0

    def test_e0_is_writable(self):
        # Unlike x0, e0 is an ordinary extended register.
        rf = RegisterFile()
        rf.write_e(0, 7)
        assert rf.read_e(0) == 7

    def test_values_masked_to_64_bits(self):
        rf = RegisterFile()
        rf.write_x(5, 1 << 64)
        assert rf.read_x(5) == 0
        rf.write_x(5, -1)
        assert rf.read_x(5) == (1 << 64) - 1

    def test_signed_read(self):
        rf = RegisterFile()
        rf.write_x(3, (1 << 64) - 5)
        assert rf.read_x_signed(3) == -5
        assert rf.read_x(3) == (1 << 64) - 5

    def test_extended_address_pairs_registers(self):
        """The 128-bit extended address = (e[ext], x[base]+offset)."""
        rf = RegisterFile()
        rf.write_x(10, 0x1000)
        rf.write_e(10, 3)
        obj, addr = rf.extended_address(10, 10, offset=8)
        assert (obj, addr) == (3, 0x1008)

    def test_extended_address_wraps(self):
        rf = RegisterFile()
        rf.write_x(4, (1 << 64) - 4)
        obj, addr = rf.extended_address(4, 4, offset=8)
        assert addr == 4

    def test_snapshot_only_nonzero(self):
        rf = RegisterFile()
        rf.write_x(7, 1)
        rf.write_e(2, 9)
        assert rf.snapshot() == {"x7": 1, "e2": 9}

    @given(st.integers(min_value=1, max_value=31),
           st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_write_read_roundtrip(self, idx, value):
        rf = RegisterFile()
        rf.write_x(idx, value)
        assert rf.read_x(idx) == value
        rf.write_e(idx, value)
        assert rf.read_e(idx) == value


class TestParseRegister:
    @pytest.mark.parametrize("name,expect", [
        ("x0", ("x", 0)), ("x31", ("x", 31)),
        ("e0", ("e", 0)), ("e31", ("e", 31)),
        ("zero", ("x", 0)), ("ra", ("x", 1)), ("sp", ("x", 2)),
        ("a0", ("x", 10)), ("a7", ("x", 17)),
        ("t0", ("x", 5)), ("t6", ("x", 31)),
        ("s0", ("x", 8)), ("fp", ("x", 8)), ("s11", ("x", 27)),
    ])
    def test_valid_names(self, name, expect):
        assert parse_register(name) == expect

    @pytest.mark.parametrize("bad", ["x32", "e32", "q5", "xx1", "", "a8"])
    def test_invalid_names(self, bad):
        with pytest.raises(IsaError):
            parse_register(bad)

    def test_abi_covers_all_base_registers(self):
        assert sorted(set(ABI_NAMES.values())) == list(range(32))
