"""Tests for the disassembler (round-trips with the assembler)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.assembler import assemble
from repro.isa.disasm import disassemble, disassemble_program
from repro.isa.encoding import INSTRUCTION_SPECS, Instruction, encode


def _sample_instruction(spec):
    if spec.name in ("ecall", "fence"):
        return Instruction(spec)
    if spec.name == "ebreak":
        return Instruction(spec, imm=1)
    imm = {"I": -5, "Ish": 7, "S": 12, "B": -8, "U": 8192, "J": 16}.get(
        spec.fmt, 0)
    return Instruction(spec, rd=5, rs1=6, rs2=7, imm=imm)


class TestRoundTrip:
    @pytest.mark.parametrize("spec", INSTRUCTION_SPECS,
                             ids=lambda s: s.name)
    def test_every_mnemonic_roundtrips(self, spec):
        word = encode(_sample_instruction(spec))
        text = disassemble(word)
        prog = assemble(text)
        assert prog.words == [word], f"{text!r}"

    @settings(max_examples=150, deadline=None)
    @given(
        spec=st.sampled_from([s for s in INSTRUCTION_SPECS
                              if s.name not in ("ecall", "ebreak",
                                                "fence")]),
        rd=st.integers(0, 31), rs1=st.integers(0, 31),
        rs2=st.integers(0, 31), data=st.data(),
    )
    def test_roundtrip_property(self, spec, rd, rs1, rs2, data):
        if spec.fmt == "Ish":
            imm = data.draw(st.integers(0, 63))
        elif spec.fmt in ("I", "S"):
            imm = data.draw(st.integers(-2048, 2047))
        elif spec.fmt == "B":
            imm = data.draw(st.integers(-1024, 1023)) * 2
        elif spec.fmt == "U":
            imm = data.draw(st.integers(-(1 << 19), (1 << 19) - 1)) << 12
        elif spec.fmt == "J":
            imm = data.draw(st.integers(-(1 << 18), (1 << 18) - 1)) * 2
        else:
            imm = 0
        word = encode(Instruction(spec, rd=rd, rs1=rs1, rs2=rs2, imm=imm))
        assert assemble(disassemble(word)).words == [word]


class TestProgramListing:
    def test_listing_has_addresses(self):
        prog = assemble("addi a0, x0, 1\nhalt\n", base=0x100)
        text = disassemble_program(prog.words, base=0x100)
        assert text.splitlines()[0].startswith("0x0100:")
        assert "addi x10, x0, 1" in text
        assert "ebreak" in text

    def test_unknown_word_shown_as_data(self):
        text = disassemble_program([0x0000007F])
        assert ".word" in text

    def test_generated_transfer_loop_is_readable(self):
        from repro.runtime.isa_path import _gen_program

        prog = assemble(_gen_program(8, 4))
        text = disassemble_program(prog.words)
        assert "eld" in text and "esd" in text
