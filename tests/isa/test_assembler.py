"""Tests for the two-pass assembler."""

from __future__ import annotations

import pytest

from repro.isa.assembler import AssemblerError, assemble
from repro.isa.encoding import decode


def names(prog):
    return [decode(w).name for w in prog.words]


class TestBasics:
    def test_simple_program(self):
        prog = assemble("addi a0, x0, 5\nadd a1, a0, a0\nhalt\n")
        assert names(prog) == ["addi", "add", "ebreak"]

    def test_comments_and_blanks(self):
        prog = assemble("""
            # leading comment
            addi a0, x0, 1   # trailing comment

            halt
        """)
        assert names(prog) == ["addi", "ebreak"]

    def test_memory_operands(self):
        prog = assemble("ld t0, 8(a0)\nsd t0, -8(sp)\n")
        i0, i1 = decode(prog.words[0]), decode(prog.words[1])
        assert (i0.name, i0.imm, i0.rs1) == ("ld", 8, 10)
        assert (i1.name, i1.imm, i1.rs1) == ("sd", -8, 2)

    def test_labels_and_branches(self):
        prog = assemble("""
        top:
            addi a0, a0, -1
            bnez a0, top
            j end
            nop
        end:
            halt
        """)
        # bnez expands to bne; offset back to top = -4.
        bne = decode(prog.words[1])
        assert bne.name == "bne" and bne.imm == -4
        jal = decode(prog.words[2])
        assert jal.name == "jal" and jal.imm == 8  # skips the nop

    def test_forward_label(self):
        prog = assemble("beq x0, x0, fwd\nnop\nfwd: halt\n")
        assert decode(prog.words[0]).imm == 8

    def test_label_table(self):
        prog = assemble("a: nop\nb: nop\n", base=0x100)
        assert prog.labels == {"a": 0x100, "b": 0x104}

    def test_bytes_le(self):
        prog = assemble("nop\n")
        assert len(prog.bytes_le()) == 4


class TestPseudoInstructions:
    def test_nop_mv_ret(self):
        prog = assemble("nop\nmv a1, a2\nret\n")
        assert names(prog) == ["addi", "addi", "jalr"]

    def test_li_small(self):
        prog = assemble("li a0, -7\n")
        i = decode(prog.words[0])
        assert (i.name, i.imm, i.rs1) == ("addi", -7, 0)

    def test_li_large_expands(self):
        prog = assemble("li a0, 0x12345\n")
        assert names(prog) == ["lui", "addiw"]

    @pytest.mark.parametrize("val", [
        0x12345, -0x12345, 2047, -2048, 2048, -2049,
        (1 << 31) - 1, -(1 << 31), (1 << 31) - 2048, 0x7FFFF800,
    ])
    def test_li_loads_exact_value(self, val):
        """li must materialise the sign-extended constant exactly —
        including the values near 2^31 where lui+addi famously breaks."""
        from repro.isa import Cpu, Memory

        cpu = Cpu(0, Memory(1 << 12))
        cpu.load_program(assemble(f"li a0, {val}\nhalt\n").words)
        cpu.run()
        assert cpu.regs.read_x_signed(10) == val

    def test_li_expansion_keeps_label_offsets(self):
        prog = assemble("""
            li a0, 0x12345
            j target
        target:
            halt
        """)
        jal = decode(prog.words[2])
        assert jal.imm == 4

    def test_li_out_of_range(self):
        with pytest.raises(AssemblerError):
            assemble("li a0, 0x1_0000_0000_0\n")

    def test_halt(self):
        assert names(assemble("halt\n")) == ["ebreak"]


class TestXbgasSyntax:
    def test_extended_loads_stores(self):
        prog = assemble("eld t0, 0(a0)\nesd t0, 8(a1)\n")
        i0, i1 = decode(prog.words[0]), decode(prog.words[1])
        assert (i0.name, i0.rs1) == ("eld", 10)
        assert (i1.name, i1.rs1, i1.imm) == ("esd", 11, 8)

    def test_raw_load(self):
        prog = assemble("erld t1, a1, e10\n")
        i = decode(prog.words[0])
        assert i.name == "erld"
        assert i.rd == 6 and i.rs1 == 11 and i.rs2 == 10

    def test_raw_store(self):
        prog = assemble("ersd t1, a1, e3\n")
        i = decode(prog.words[0])
        # ersd rs1(data), rs2(addr), ext3 — the e-register rides in rd.
        assert i.name == "ersd"
        assert i.rs1 == 6 and i.rs2 == 11 and i.rd == 3

    def test_address_management(self):
        prog = assemble("""
            eaddi  t0, e5, 4
            eaddie e6, a0, -2
            eaddix e7, e6, 0
        """)
        a, b, c = (decode(w) for w in prog.words)
        assert (a.name, a.rd, a.rs1, a.imm) == ("eaddi", 5, 5, 4)
        assert (b.name, b.rd, b.rs1, b.imm) == ("eaddie", 6, 10, -2)
        assert (c.name, c.rd, c.rs1, c.imm) == ("eaddix", 7, 6, 0)

    def test_wrong_register_class_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("erld t1, a1, a2\n")  # ext operand must be e-register
        with pytest.raises(AssemblerError):
            assemble("eaddix e1, x3, 0\n")


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError):
            assemble("frobnicate a0, a1\n")

    def test_unknown_label(self):
        with pytest.raises(AssemblerError):
            assemble("j nowhere\n")

    def test_duplicate_label(self):
        with pytest.raises(AssemblerError):
            assemble("x: nop\nx: nop\n")

    def test_operand_count(self):
        with pytest.raises(AssemblerError):
            assemble("add a0, a1\n")

    def test_error_reports_line_number(self):
        with pytest.raises(AssemblerError, match="line 3"):
            assemble("nop\nnop\nbogus x0\n")


class TestDirectives:
    def test_dword(self):
        prog = assemble(".dword 0x1122334455667788\n")
        assert prog.words == [0x55667788, 0x11223344]

    def test_word(self):
        prog = assemble(".word 0xdeadbeef, 1\n")
        assert prog.words == [0xDEADBEEF, 1]
