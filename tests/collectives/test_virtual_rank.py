"""Tests for the logical ↔ virtual rank mapping (Table 2)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.collectives.virtual_rank import logical_rank, rank_table, virtual_rank
from repro.errors import CollectiveArgumentError

#: Table 2 verbatim: 7 PEs, root = 4.
PAPER_TABLE_2 = [
    (0, 3), (1, 4), (2, 5), (3, 6), (4, 0), (5, 1), (6, 2),
]


def test_matches_paper_table2():
    assert rank_table(root=4, n_pes=7) == PAPER_TABLE_2


def test_root_always_virtual_zero():
    for n in (1, 2, 5, 8, 13):
        for root in range(n):
            assert virtual_rank(root, root, n) == 0


def test_root_zero_is_identity():
    for lr in range(6):
        assert virtual_rank(lr, 0, 6) == lr


def test_consecutive_assignment():
    """Virtual ranks are allocated in sequence by logical rank relative
    to the root (section 4.3)."""
    n, root = 9, 5
    seq = [virtual_rank((root + i) % n, root, n) for i in range(n)]
    assert seq == list(range(n))


@given(st.integers(1, 64), st.data())
def test_bijection(n, data):
    root = data.draw(st.integers(0, n - 1))
    vmap = [virtual_rank(lr, root, n) for lr in range(n)]
    assert sorted(vmap) == list(range(n))
    for lr in range(n):
        assert logical_rank(vmap[lr], root, n) == lr


@given(st.integers(1, 64), st.data())
def test_logical_rank_formula(n, data):
    """log_part = (vir_part + root) mod n_pes, as in all four algorithms."""
    root = data.draw(st.integers(0, n - 1))
    for vr in range(n):
        assert logical_rank(vr, root, n) == (vr + root) % n


@pytest.mark.parametrize("bad_call", [
    lambda: virtual_rank(0, 0, 0),
    lambda: virtual_rank(5, 0, 5),
    lambda: virtual_rank(0, 5, 5),
    lambda: logical_rank(5, 0, 5),
])
def test_validation(bad_call):
    with pytest.raises(CollectiveArgumentError):
        bad_call()
