"""Tests for the extended collectives (paper section 7 future work)."""

from __future__ import annotations

import numpy as np
import pytest

from .helpers import run_machine


class TestReduceAll:
    @pytest.mark.parametrize("n_pes", [1, 2, 4, 7])
    def test_every_pe_gets_result(self, n_pes):
        def body(ctx):
            ctx.init()
            src = ctx.malloc(8 * 2)
            dest = ctx.malloc(8 * 2)
            ctx.view(src, "long", 2)[:] = [ctx.my_pe(), 1]
            ctx.reduce_all(dest, src, 2, 1, "sum", "long")
            got = list(ctx.view(dest, "long", 2))
            ctx.close()
            return got

        results = run_machine(n_pes, body)
        want = [sum(range(n_pes)), n_pes]
        assert all(r == want for r in results)

    def test_max_to_all(self):
        def body(ctx):
            ctx.init()
            src = ctx.malloc(8)
            dest = ctx.malloc(8)
            ctx.view(src, "long", 1)[0] = (ctx.my_pe() * 13) % 7
            ctx.reduce_all(dest, src, 1, 1, "max", "long")
            got = int(ctx.view(dest, "long", 1)[0])
            ctx.close()
            return got

        results = run_machine(5, body)
        want = max((pe * 13) % 7 for pe in range(5))
        assert all(r == want for r in results)


class TestAllgatherFcollect:
    def test_fcollect(self):
        def body(ctx):
            ctx.init()
            n = ctx.num_pes()
            src = ctx.malloc(8 * 2)
            dest = ctx.malloc(8 * 2 * n)
            ctx.view(src, "long", 2)[:] = [ctx.my_pe(), ctx.my_pe() * 10]
            from repro.collectives.extra import fcollect

            fcollect(ctx, dest, src, 2, np.dtype(np.int64))
            got = list(ctx.view(dest, "long", 2 * n))
            ctx.close()
            return got

        results = run_machine(4, body)
        want = []
        for pe in range(4):
            want += [pe, pe * 10]
        assert all(r == want for r in results)

    def test_variable_allgather(self):
        def body(ctx):
            ctx.init()
            n = ctx.num_pes()
            msgs = [i + 1 for i in range(n)]
            disp = [sum(msgs[:i]) for i in range(n)]
            total = sum(msgs)
            src = ctx.malloc(8 * n)
            dest = ctx.malloc(8 * total)
            me = ctx.my_pe()
            ctx.view(src, "long", msgs[me])[:] = me * 100 + np.arange(msgs[me])
            ctx.allgather(dest, src, msgs, disp, total, "long")
            got = list(ctx.view(dest, "long", total))
            ctx.close()
            return got

        results = run_machine(3, body)
        want = [0, 100, 101, 200, 201, 202]
        assert all(r == want for r in results)


class TestAllToAll:
    @pytest.mark.parametrize("n_pes", [1, 2, 4, 5, 8])
    def test_personalised_exchange(self, n_pes):
        """Block j of PE i lands as block i of PE j."""
        def body(ctx):
            ctx.init()
            n, me = ctx.num_pes(), ctx.my_pe()
            src = ctx.malloc(8 * n)
            dest = ctx.malloc(8 * n)
            ctx.view(dest, "long", n)[:] = -1
            ctx.view(src, "long", n)[:] = [me * 100 + j for j in range(n)]
            ctx.alltoall(dest, src, 1, "long")
            got = list(ctx.view(dest, "long", n))
            ctx.close()
            return got

        results = run_machine(n_pes, body)
        for j, got in enumerate(results):
            assert got == [i * 100 + j for i in range(n_pes)]

    def test_multi_element_blocks(self):
        def body(ctx):
            ctx.init()
            n, me = ctx.num_pes(), ctx.my_pe()
            blk = 3
            src = ctx.malloc(8 * n * blk)
            dest = ctx.malloc(8 * n * blk)
            sv = ctx.view(src, "long", n * blk)
            for j in range(n):
                sv[j * blk:(j + 1) * blk] = me * 1000 + j * 10 + np.arange(blk)
            ctx.alltoall(dest, src, blk, "long")
            got = np.array(ctx.view(dest, "long", n * blk), copy=True)
            ctx.close()
            return got

        results = run_machine(3, body)
        for j, got in enumerate(results):
            for i in range(3):
                want = i * 1000 + j * 10 + np.arange(3)
                assert np.array_equal(got[i * 3:(i + 1) * 3], want)

    def test_zero_block(self):
        def body(ctx):
            ctx.init()
            d = ctx.malloc(16)
            s = ctx.malloc(16)
            ctx.alltoall(d, s, 0, "long")
            ctx.close()

        run_machine(2, body)
