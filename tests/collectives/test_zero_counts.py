"""End-to-end regression tests for zero-count PEs in scatter/gather.

A PE with ``pe_msgs[i] == 0`` receives (scatter) or contributes
(gather) nothing, but must still participate in every stage barrier and
must never source a zero-length transfer that trips bounds checks.
These run through the public context wrappers (``ctx.scatter`` /
``ctx.gather``) — the full path users take — at every PE count from 1
to 12, with zeros at the root, at the edges, alternating, and all-zero.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime import Machine

from ..conftest import small_config

_DT = np.dtype("int64")


def _patterns(n_pes: int, root: int):
    """Count vectors with structurally interesting zero placements."""
    pats = [[0 if i == root else i % 3 + 1 for i in range(n_pes)]]
    pats.append([0 if i % 2 == 0 else 2 for i in range(n_pes)])
    pats.append([0] * n_pes)
    pats.append([3 if i == n_pes - 1 else 0 for i in range(n_pes)])
    pats.append([1 if i == 0 else 0 for i in range(n_pes)])
    return pats


def _disps(counts):
    out, off = [], 0
    for c in counts:
        out.append(off)
        off += c
    return out


def _run_scatter(n_pes, counts, disps, root):
    nelems = sum(counts)
    extent = max((d + c for d, c in zip(disps, counts)), default=0)
    data = np.arange(1, extent + 1, dtype=_DT)

    def body(ctx):
        ctx.init()
        me = ctx.my_pe()
        src = ctx.malloc(max(extent * 8, 16))
        dest = ctx.private_malloc(max(max(counts, default=0), 1) * 8 + 16)
        ctx.view(dest, _DT, max(counts[me], 1))[:] = -1
        if me == root:
            ctx.view(src, _DT, extent)[:] = data
        ctx.scatter(dest, src, counts, disps, nelems, root)
        got = np.array(ctx.view(dest, _DT, counts[me]), copy=True)
        ctx.close()
        return got

    results = Machine(small_config(n_pes)).run(body)
    for pe, got in enumerate(results):
        lo = disps[pe]
        assert np.array_equal(got, data[lo:lo + counts[pe]]), (
            f"PE {pe} counts={counts} root={root}")


def _run_gather(n_pes, counts, disps, root):
    nelems = sum(counts)
    extent = max((d + c for d, c in zip(disps, counts)), default=0)

    def body(ctx):
        ctx.init()
        me = ctx.my_pe()
        src = ctx.malloc(max(max(counts, default=0), 1) * 8 + 16)
        dest = ctx.private_malloc(max(extent * 8, 16))
        ctx.view(dest, _DT, extent)[:] = -1
        ctx.view(src, _DT, counts[me])[:] = \
            np.arange(disps[me] + 1, disps[me] + counts[me] + 1, dtype=_DT)
        ctx.gather(dest, src, counts, disps, nelems, root)
        got = np.array(ctx.view(dest, _DT, extent), copy=True)
        ctx.close()
        return got

    results = Machine(small_config(n_pes)).run(body)
    expect = np.arange(1, extent + 1, dtype=_DT)
    got = results[root]
    for pe in range(n_pes):
        lo = disps[pe]
        assert np.array_equal(got[lo:lo + counts[pe]],
                              expect[lo:lo + counts[pe]]), (
            f"root slice for PE {pe} counts={counts} root={root}")


@pytest.mark.parametrize("n_pes", range(1, 13))
def test_scatter_zero_count_pes(n_pes):
    for root in {0, n_pes - 1, n_pes // 2}:
        for counts in _patterns(n_pes, root):
            _run_scatter(n_pes, counts, _disps(counts), root)


@pytest.mark.parametrize("n_pes", range(1, 13))
def test_gather_zero_count_pes(n_pes):
    for root in {0, n_pes - 1, n_pes // 2}:
        for counts in _patterns(n_pes, root):
            _run_gather(n_pes, counts, _disps(counts), root)


@pytest.mark.parametrize("n_pes", [1, 2, 5, 8, 12])
def test_scatter_gather_roundtrip_with_zeros(n_pes):
    """scatter → gather with zero-count PEs restores the root's data."""
    counts = [0 if i % 3 == 1 else (i % 4) + 1 for i in range(n_pes)]
    disps = _disps(counts)
    nelems = sum(counts)
    extent = max((d + c for d, c in zip(disps, counts)), default=0)
    data = np.arange(10, 10 + extent, dtype=_DT)

    def body(ctx):
        ctx.init()
        me = ctx.my_pe()
        root_buf = ctx.malloc(max(extent * 8, 16))
        mid = ctx.malloc(max(max(counts, default=0), 1) * 8 + 16)
        back = ctx.private_malloc(max(extent * 8, 16))
        ctx.view(back, _DT, extent)[:] = -1
        if me == 0:
            ctx.view(root_buf, _DT, extent)[:] = data
        ctx.scatter(mid, root_buf, counts, disps, nelems, 0)
        ctx.gather(back, mid, counts, disps, nelems, 0)
        got = np.array(ctx.view(back, _DT, extent), copy=True)
        ctx.close()
        return got

    results = Machine(small_config(n_pes)).run(body)
    if nelems:
        assert np.array_equal(results[0], data)
