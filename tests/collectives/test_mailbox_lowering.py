"""The mailbox lowering pass, checked per builtin collective family.

For every ``(collective, algorithm)`` pair in the registry and every PE
count in 1–16 (sampled), the lowered two-sided schedule must be

* **equivalent** — byte-identical buffer contents to the one-sided
  original under the batch evaluator, for uniform, ragged and
  degenerate call shapes alike;
* **lint-clean** — zero issues from :func:`lint_schedule`, including
  the two-sided message-matching pass;
* **deadlock-free** — the evaluator's dataflow fixpoint raises
  ``SimulationError`` on any send/recv cycle, so a completed
  evaluation is a deadlock-freedom certificate for the batch model
  (the conformance suite covers the cooperative executor);
* **queue-bounded** — :func:`max_fan_in` stays within the default
  ``recv_depth``, so lowered builtins run without exhausting
  backpressure retries on an out-of-the-box machine.

The linter's message-matching pass is itself tested against hand-built
broken lowerings: unmatched sends, tag and size disagreements, and a
recv that can only deadlock.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.collectives.schedule import (
    BARRIER,
    Buffer,
    RankProgram,
    Recv,
    Schedule,
    Send,
    Stage,
    lint_schedule,
    lower_to_mailbox,
    max_fan_in,
)
from repro.collectives.schedule.evaluate import evaluate_schedule
from repro.collectives.schedule.registry import (BUILTIN_ALGORITHMS,
                                                  builtin_schedules)
from repro.params import MachineConfig, MailboxParams

from ..conftest import small_config

PE_COUNTS = (1, 2, 3, 5, 8, 16)


def _family_schedules(collective: str, algorithm: str):
    """Every builtin shape of one family at the sampled PE counts."""
    for label, sched in builtin_schedules(PE_COUNTS, nelems=12):
        if (sched.collective, sched.algorithm) == (collective, algorithm):
            yield label, sched


def _seed_inputs(sched: Schedule, seed: int):
    """Deterministic random contents for every user buffer, per rank."""
    rng = np.random.default_rng(seed)
    dt = np.dtype("int64") if sched.itemsize == 8 else np.dtype("int32")
    inputs = {}
    for buf in sched.buffers:
        if buf.kind != "user":
            continue
        inputs[buf.name] = [
            rng.integers(-1000, 1000,
                         size=buf.nbytes_on(r) // dt.itemsize).astype(dt)
            if buf.held_by(r) else np.zeros(0, dt)
            for r in range(sched.n_pes)
        ]
    return inputs


@pytest.mark.parametrize(("collective", "algorithm"), BUILTIN_ALGORITHMS,
                         ids=[f"{c}:{a}" for c, a in BUILTIN_ALGORITHMS])
def test_family_lowers_equivalently(collective, algorithm):
    """Lowered ≡ one-sided, lint-clean, bounded fan-in — every shape."""
    cfg = MachineConfig(n_pes=2)  # resized per schedule by the evaluator
    checked = 0
    for label, sched in _family_schedules(collective, algorithm):
        lowered = lower_to_mailbox(sched)
        assert lowered.algorithm == sched.algorithm + "+mailbox"
        assert lowered.n_pes == sched.n_pes

        issues = lint_schedule(lowered)
        assert issues == [], f"{label}: lowered schedule lints dirty"

        fan_in = max_fan_in(lowered)
        assert fan_in <= MailboxParams().recv_depth, \
            f"{label}: fan-in {fan_in} exceeds the default queue depth"

        inputs = _seed_inputs(sched, seed=abs(hash(label)) % (2 ** 31))
        base = evaluate_schedule(sched, cfg, inputs=inputs)
        two = evaluate_schedule(lowered, cfg, inputs=inputs)
        for buf in sched.buffers:
            for r in range(sched.n_pes):
                if not buf.held_by(r):
                    continue
                a = base.buffer(buf.name, r)
                b = two.buffer(buf.name, r)
                assert np.array_equal(a, b), \
                    f"{label}: buffer {buf.name!r} diverges on rank {r}"

        # The rewrite must conserve traffic: every remote put/get of the
        # original becomes exactly one payload send (gets add one
        # zero-payload request besides), while local copies stay local.
        assert two.stats.sends == two.stats.recvs
        remote = sum(
            1 for r in range(sched.n_pes)
            for step in sched.program(r).all_steps()
            if step.kind in ("put", "get") and step.peer != r
            and step.nelems > 0)
        if remote:
            assert two.stats.sends >= remote
        checked += 1
    assert checked > 0, "registry yielded no schedules for this family"


def test_lowering_is_cached_and_pure():
    sched = next(s for _, s in builtin_schedules((4,), nelems=8))
    assert lower_to_mailbox(sched) is lower_to_mailbox(sched)
    # And the input schedule is untouched: no send/recv leaked into it.
    assert all(step.kind not in ("send", "recv")
               for r in range(sched.n_pes)
               for step in sched.program(r).all_steps())


# ---------------------------------------------------------------------------
# the linter vs deliberately broken lowerings
# ---------------------------------------------------------------------------

def _toy(rank0_phases, rank1_phases):
    """A 2-PE schedule from per-phase step tuples (BARRIER appended)."""
    programs = []
    for r, phases in enumerate((rank0_phases, rank1_phases)):
        stages = tuple(Stage(i, tuple(steps) + (BARRIER,))
                       for i, steps in enumerate(phases))
        programs.append(RankProgram(rank=r, stages=stages))
    return Schedule(
        collective="toy", algorithm="handmade+mailbox", n_pes=2, itemsize=8,
        buffers=(Buffer("s", "scratch", 64, symmetric=True),),
        programs=tuple(programs),
    )


def _message_issues(sched):
    return [i for i in lint_schedule(sched) if i.check == "messages"]


class TestBrokenLowerings:
    def test_well_formed_toy_is_clean(self):
        sched = _toy([(Send("s", 0, 2, 1, peer=1, tag=5),)],
                     [(Recv("s", 0, 2, 1, peer=0, tag=5),)])
        assert lint_schedule(sched) == []

    def test_unmatched_send_is_flagged(self):
        sched = _toy([(Send("s", 0, 2, 1, peer=1, tag=0),)],
                     [()])
        issues = _message_issues(sched)
        assert len(issues) == 1
        assert "1 sends vs 0 recvs" in issues[0].message

    def test_tag_disagreement_is_flagged(self):
        sched = _toy([(Send("s", 0, 2, 1, peer=1, tag=3),)],
                     [(Recv("s", 0, 2, 1, peer=0, tag=4),)])
        issues = _message_issues(sched)
        assert len(issues) == 1
        assert "FIFO order disagreement" in issues[0].message

    def test_size_disagreement_is_flagged(self):
        sched = _toy([(Send("s", 0, 4, 1, peer=1, tag=0),)],
                     [(Recv("s", 0, 2, 1, peer=0, tag=0),)])
        issues = _message_issues(sched)
        assert len(issues) == 1
        assert "carries 4 elements but recv expects 2" in issues[0].message

    def test_future_send_deadlock_is_flagged(self):
        # The recv sits in phase 0 but its matching send only happens in
        # phase 1 — the sender is stuck behind the barrier the receiver
        # will never reach.
        sched = _toy([(), (Send("s", 0, 2, 1, peer=1, tag=0),)],
                     [(Recv("s", 0, 2, 1, peer=0, tag=0),), ()])
        issues = _message_issues(sched)
        assert len(issues) == 1
        assert "deadlock" in issues[0].message

    def test_fifo_order_swap_is_flagged(self):
        # Two messages whose recv order is inverted relative to send
        # order: FIFO matching pairs them crosswise, so both tags clash.
        sched = _toy(
            [(Send("s", 0, 2, 1, peer=1, tag=1),
              Send("s", 16, 2, 1, peer=1, tag=2))],
            [(Recv("s", 16, 2, 1, peer=0, tag=2),
              Recv("s", 0, 2, 1, peer=0, tag=1))],
        )
        issues = _message_issues(sched)
        assert len(issues) == 2
        assert all("FIFO order disagreement" in i.message for i in issues)


# ---------------------------------------------------------------------------
# evaluator deadlock detection (the certificate the family test relies on)
# ---------------------------------------------------------------------------

def test_evaluator_raises_on_deadlocked_lowering():
    from repro.errors import SimulationError

    sched = _toy([(), (Send("s", 0, 2, 1, peer=1, tag=0),)],
                 [(Recv("s", 0, 2, 1, peer=0, tag=0),), ()])
    with pytest.raises(SimulationError, match="deadlock"):
        evaluate_schedule(sched, MachineConfig(n_pes=2))


def test_evaluator_charges_mailbox_costs():
    """Lowered schedules pay header + routing + match time — they are
    modelled as slower, never faster, than the one-sided original."""
    sched = next(s for label, s in builtin_schedules((8,), nelems=64)
                 if (s.collective, s.algorithm) == ("allreduce", "ring")
                 and "nelems=64" in label)
    cfg = small_config(8)
    base = evaluate_schedule(sched, cfg)
    two = evaluate_schedule(lower_to_mailbox(sched), cfg)
    assert two.elapsed_ns > base.elapsed_ns
    # Payload conservation: the wire carries exactly the formerly-remote
    # put/get bytes (requests are zero-payload; local copies stay local).
    remote_bytes = sum(
        step.nelems * sched.itemsize
        for r in range(sched.n_pes)
        for step in sched.program(r).all_steps()
        if step.kind in ("put", "get") and step.peer != r)
    assert two.stats.bytes_sent == remote_bytes
