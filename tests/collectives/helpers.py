"""Shared machinery for collective-correctness tests.

Each helper runs one collective on a fresh small machine and returns
per-PE observations that the tests compare against numpy oracles.
"""

from __future__ import annotations

import numpy as np

from repro.runtime import Machine

from ..conftest import small_config

__all__ = ["run_machine", "run_broadcast", "run_reduce", "run_scatter",
           "run_gather"]


def run_machine(n_pes, fn, args=None, **cfg_kw):
    machine = Machine(small_config(n_pes, **cfg_kw))
    return machine.run(fn, args)


def run_broadcast(n_pes, nelems, stride, root, dtype, data,
                  algorithm="binomial", **cfg_kw):
    """Returns each PE's dest contents after the broadcast."""
    def body(ctx):
        ctx.init()
        span = dtype.itemsize * ((max(nelems, 1) - 1) * stride + 1)
        dest = ctx.malloc(max(span, 16))
        src = ctx.private_malloc(max(span, 16))
        ctx.view(dest, dtype, nelems, stride)[:] = 0
        if ctx.my_pe() == root:
            ctx.view(src, dtype, nelems, stride)[:] = data
        from repro.collectives.broadcast import broadcast

        broadcast(ctx, dest, src, nelems, stride, root, dtype,
                  algorithm=algorithm)
        ctx.barrier()
        got = np.array(ctx.view(dest, dtype, nelems, stride), copy=True)
        ctx.close()
        return got

    return run_machine(n_pes, body, **cfg_kw)


def run_reduce(n_pes, nelems, stride, root, op, dtype, per_pe_data,
               algorithm="binomial", **cfg_kw):
    """Returns the root's dest contents (None on other PEs)."""
    def body(ctx):
        ctx.init()
        me = ctx.my_pe()
        span = dtype.itemsize * ((max(nelems, 1) - 1) * stride + 1)
        src = ctx.malloc(max(span, 16))
        dest = ctx.private_malloc(max(span, 16))
        ctx.view(src, dtype, nelems, stride)[:] = per_pe_data[me]
        from repro.collectives.reduce import reduce

        reduce(ctx, dest, src, nelems, stride, root, op, dtype,
               algorithm=algorithm)
        got = None
        if me == root:
            got = np.array(ctx.view(dest, dtype, nelems, stride), copy=True)
        ctx.close()
        return got

    return run_machine(n_pes, body, **cfg_kw)


def run_scatter(n_pes, pe_msgs, pe_disp, root, dtype, src_data, **cfg_kw):
    """Returns each PE's received segment."""
    nelems = sum(pe_msgs)

    def body(ctx):
        ctx.init()
        me = ctx.my_pe()
        eb = dtype.itemsize
        src_span = max((max(pe_disp[i] + pe_msgs[i] for i in range(n_pes))
                        if n_pes else 1) * eb, 16)
        src = ctx.malloc(src_span)
        dest = ctx.private_malloc(max(max(pe_msgs, default=1), 1) * eb + 16)
        if me == root:
            ctx.view(src, dtype, len(src_data))[:] = src_data
        from repro.collectives.scatter import scatter

        scatter(ctx, dest, src, pe_msgs, pe_disp, nelems, root, dtype)
        got = np.array(ctx.view(dest, dtype, pe_msgs[me]), copy=True)
        ctx.close()
        return got

    return run_machine(n_pes, body, **cfg_kw)


def run_gather(n_pes, pe_msgs, pe_disp, root, dtype, per_pe_data, **cfg_kw):
    """Returns the root's assembled dest (None on other PEs)."""
    nelems = sum(pe_msgs)
    dest_len = max(pe_disp[i] + pe_msgs[i] for i in range(n_pes)) if n_pes else 1

    def body(ctx):
        ctx.init()
        me = ctx.my_pe()
        eb = dtype.itemsize
        src = ctx.malloc(max(max(pe_msgs, default=1), 1) * eb + 16)
        dest = ctx.private_malloc(max(dest_len * eb, 16))
        ctx.view(src, dtype, pe_msgs[me])[:] = per_pe_data[me]
        from repro.collectives.gather import gather

        gather(ctx, dest, src, pe_msgs, pe_disp, nelems, root, dtype)
        got = None
        if me == root:
            got = np.array(ctx.view(dest, dtype, dest_len), copy=True)
        ctx.close()
        return got

    return run_machine(n_pes, body, **cfg_kw)
