"""Tests for the reduction operators (paper section 4.4)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.collectives.ops import (
    BITWISE_OPS,
    REDUCE_OPS,
    apply_op,
    check_op,
    identity_of,
)
from repro.errors import ReductionOpError
from repro.types import FLOAT_TYPENAMES, INTEGRAL_TYPENAMES, dtype_of


class TestOpValidation:
    def test_paper_operator_set(self):
        """Sum, product, min, max + bitwise AND/OR/XOR."""
        assert set(REDUCE_OPS) == {"sum", "prod", "min", "max",
                                   "and", "or", "xor"}

    @pytest.mark.parametrize("typename", FLOAT_TYPENAMES)
    @pytest.mark.parametrize("op", BITWISE_OPS)
    def test_bitwise_rejected_for_floats(self, typename, op):
        with pytest.raises(ReductionOpError):
            check_op(op, dtype_of(typename))

    @pytest.mark.parametrize("typename", INTEGRAL_TYPENAMES)
    @pytest.mark.parametrize("op", REDUCE_OPS)
    def test_all_ops_allowed_for_integrals(self, typename, op):
        check_op(op, dtype_of(typename))

    @pytest.mark.parametrize("typename", FLOAT_TYPENAMES)
    @pytest.mark.parametrize("op", ["sum", "prod", "min", "max"])
    def test_arithmetic_allowed_for_floats(self, typename, op):
        check_op(op, dtype_of(typename))

    def test_unknown_op(self):
        with pytest.raises(ReductionOpError):
            check_op("median", np.dtype(np.int64))


class TestApply:
    def test_sum_in_place(self):
        acc = np.array([1, 2, 3], dtype=np.int64)
        apply_op("sum", acc, np.array([10, 20, 30], dtype=np.int64))
        assert list(acc) == [11, 22, 33]

    def test_min_max(self):
        acc = np.array([5, -5], dtype=np.int32)
        apply_op("min", acc, np.array([3, 0], dtype=np.int32))
        assert list(acc) == [3, -5]
        apply_op("max", acc, np.array([4, 4], dtype=np.int32))
        assert list(acc) == [4, 4]

    def test_bitwise(self):
        acc = np.array([0b1100], dtype=np.uint8)
        apply_op("and", acc, np.array([0b1010], dtype=np.uint8))
        assert acc[0] == 0b1000
        apply_op("or", acc, np.array([0b0001], dtype=np.uint8))
        assert acc[0] == 0b1001
        apply_op("xor", acc, np.array([0b1111], dtype=np.uint8))
        assert acc[0] == 0b0110

    def test_integer_wraparound_is_c_semantics(self):
        acc = np.array([200], dtype=np.uint8)
        apply_op("sum", acc, np.array([100], dtype=np.uint8))
        assert acc[0] == 44  # (200+100) mod 256

    def test_float_sum(self):
        acc = np.array([0.5], dtype=np.float64)
        apply_op("sum", acc, np.array([0.25], dtype=np.float64))
        assert acc[0] == 0.75


class TestIdentity:
    @pytest.mark.parametrize("typename",
                             ["int8", "uint16", "int32", "uint64",
                              "float", "double"])
    @pytest.mark.parametrize("op", ["sum", "prod", "min", "max"])
    def test_identity_is_neutral(self, typename, op):
        dt = dtype_of(typename)
        ident = identity_of(op, dt)
        vals = np.array([1, 2, 100], dtype=dt)
        acc = np.full(3, ident, dtype=dt)
        apply_op(op, acc, vals)
        assert np.array_equal(acc, vals)

    @pytest.mark.parametrize("typename", ["uint8", "int16", "uint64"])
    @pytest.mark.parametrize("op", BITWISE_OPS)
    def test_bitwise_identity(self, typename, op):
        dt = dtype_of(typename)
        ident = identity_of(op, dt)
        vals = np.array([0b1011, 0, 7], dtype=dt)
        acc = np.full(3, ident, dtype=dt)
        apply_op(op, acc, vals)
        assert np.array_equal(acc, vals)

    def test_bitwise_identity_rejected_for_float(self):
        with pytest.raises(ReductionOpError):
            identity_of("xor", np.dtype(np.float32))


class TestAssociativity:
    @given(st.lists(st.integers(-1000, 1000), min_size=2, max_size=10),
           st.sampled_from(["sum", "prod", "min", "max", "and", "or", "xor"]))
    def test_fold_order_irrelevant_for_ints(self, values, op):
        """Any fold order gives the same answer — the property the tree
        reduction relies on."""
        dt = np.dtype(np.int64)
        arrs = [np.array([v], dtype=dt) for v in values]
        left = arrs[0].copy()
        for a in arrs[1:]:
            apply_op(op, left, a)
        right = arrs[-1].copy()
        for a in arrs[-2::-1]:
            apply_op(op, right, a)
        assert left[0] == right[0]
