"""Tests for Algorithm 1: binomial-tree broadcast with recursive halving."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CollectiveArgumentError
from repro.runtime import Machine

from ..conftest import small_config
from .helpers import run_broadcast, run_machine


class TestCorrectness:
    @pytest.mark.parametrize("n_pes", [1, 2, 3, 4, 7, 8])
    def test_all_pes_receive(self, n_pes):
        data = np.arange(6, dtype=np.int64) * 3 + 1
        results = run_broadcast(n_pes, 6, 1, 0, np.dtype(np.int64), data)
        for got in results:
            assert np.array_equal(got, data)

    @pytest.mark.parametrize("root", [0, 1, 3, 4, 6])
    def test_nonzero_roots(self, root):
        """The virtual-rank remapping handles any root (Table 2 case)."""
        data = np.array([root * 7, -root], dtype=np.int64)
        results = run_broadcast(7, 2, 1, root, np.dtype(np.int64), data)
        for got in results:
            assert np.array_equal(got, data)

    @pytest.mark.parametrize("stride", [1, 2, 5])
    def test_strides(self, stride):
        """Unlike OpenSHMEM, broadcast supports non-default strides
        (paper section 4.7)."""
        data = np.array([11, 22, 33, 44], dtype=np.int32)
        results = run_broadcast(4, 4, stride, 1, np.dtype(np.int32), data)
        for got in results:
            assert np.array_equal(got, data)

    @pytest.mark.parametrize("typename", ["char", "ushort", "double",
                                          "uint64", "longdouble"])
    def test_types(self, typename):
        from repro.types import dtype_of

        dt = dtype_of(typename)
        data = np.array([1, 2, 3], dtype=dt)
        results = run_broadcast(4, 3, 1, 2, dt, data)
        for got in results:
            assert np.array_equal(got, data)

    def test_single_pe(self):
        data = np.array([5], dtype=np.int64)
        results = run_broadcast(1, 1, 1, 0, np.dtype(np.int64), data)
        assert np.array_equal(results[0], data)

    def test_zero_elements(self):
        results = run_broadcast(4, 0, 1, 0, np.dtype(np.int64),
                                np.empty(0, dtype=np.int64))
        for got in results:
            assert got.size == 0

    def test_prior_dest_writes_not_clobbered_race(self):
        """The entry barrier orders each PE's own writes to dest before
        the root's puts (the pSync role)."""
        def body(ctx):
            ctx.init()
            dest = ctx.malloc(64)
            v = ctx.view(dest, "long", 1)
            # A slow PE writes its dest just before the collective.
            ctx.compute(5000.0 * ctx.my_pe())
            v[0] = -1
            src = ctx.private_malloc(64)
            if ctx.my_pe() == 0:
                ctx.view(src, "long", 1)[0] = 123
            ctx.long_broadcast(dest, src, 1, 1, 0)
            got = int(v[0])
            ctx.close()
            return got

        assert run_machine(4, body) == [123] * 4


class TestAlgorithms:
    @pytest.mark.parametrize("algorithm", ["binomial", "linear", "ring"])
    def test_all_algorithms_agree(self, algorithm):
        data = np.arange(8, dtype=np.int64)
        results = run_broadcast(5, 8, 1, 2, np.dtype(np.int64), data,
                                algorithm=algorithm)
        for got in results:
            assert np.array_equal(got, data)

    def test_unknown_algorithm(self):
        with pytest.raises(Exception):
            run_broadcast(2, 1, 1, 0, np.dtype(np.int64),
                          np.array([1], dtype=np.int64),
                          algorithm="quantum")

    def test_auto_selects(self):
        data = np.array([9], dtype=np.int64)
        results = run_broadcast(4, 1, 1, 0, np.dtype(np.int64), data,
                                algorithm="auto")
        for got in results:
            assert np.array_equal(got, data)

    def test_crossover_binomial_wins_large_linear_wins_small(self):
        """The section 4.1 premise: no single algorithm wins everywhere.
        Pipelined one-sided linear wins small payloads; the tree wins
        once the root's injection link serialises the linear scheme."""
        def timing(algorithm, nelems):
            def body(ctx):
                ctx.init()
                dest = ctx.malloc(8 * nelems)
                src = ctx.private_malloc(8 * nelems)
                ctx.barrier()
                t0 = ctx.pe.clock
                from repro.collectives.broadcast import broadcast

                broadcast(ctx, dest, src, nelems, 1, 0,
                          np.dtype(np.int64), algorithm=algorithm)
                ctx.barrier()
                dt = ctx.pe.clock - t0
                ctx.close()
                return dt

            res = run_machine(
                8, body, cores_per_node=1,
                memory_bytes_per_pe=8 * 1024 * 1024,
                symmetric_heap_bytes=4 * 1024 * 1024,
                collective_scratch_bytes=1024 * 1024,
            )
            return max(res)

        assert timing("linear", 64) < timing("binomial", 64)
        assert timing("binomial", 65536) < timing("linear", 65536)


class TestValidation:
    def test_bad_root(self):
        with pytest.raises(Exception):
            run_broadcast(4, 1, 1, 9, np.dtype(np.int64),
                          np.array([1], dtype=np.int64))

    def test_private_dest_rejected(self):
        def body(ctx):
            ctx.init()
            dest = ctx.private_malloc(64)
            src = ctx.private_malloc(64)
            with pytest.raises(CollectiveArgumentError, match="symmetric"):
                ctx.long_broadcast(dest, src, 1, 1, 0)
            ctx.barrier()
            ctx.close()

        run_machine(2, body)


class TestProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        n_pes=st.integers(1, 8),
        nelems=st.integers(1, 16),
        stride=st.integers(1, 3),
        seed=st.integers(0, 10_000),
        data=st.data(),
    )
    def test_broadcast_delivers_everywhere(self, n_pes, nelems, stride,
                                           seed, data):
        root = data.draw(st.integers(0, n_pes - 1))
        rng = np.random.default_rng(seed)
        payload = rng.integers(-(2 ** 31), 2 ** 31, size=nelems)
        results = run_broadcast(n_pes, nelems, stride, root,
                                np.dtype(np.int64), payload)
        for got in results:
            assert np.array_equal(got, payload)
