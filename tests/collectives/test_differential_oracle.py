"""Property-based differential tests: collectives vs numpy oracles.

Hypothesis drives random group sizes (1–12 PEs, including non-powers of
two), roots, Table 1 dtypes, element counts, strides and the tracing
flag; each case runs the real simulated machine and compares every PE's
result against a straight numpy computation.

Numeric exactness: payload values are small non-negative integers
(``0..7``), which are exact in every Table 1 dtype — float rounding
cannot occur at these magnitudes, sums stay inside even ``int8``, and
the bitwise ops are order-independent — so the tree's fold order can
never differ from the oracle's.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.collectives.ops import identity_of
from repro.runtime import Machine
from repro.types import INTEGRAL_TYPENAMES, dtype_of

from ..conftest import small_config

#: Largest payload value; 12 PEs * 7 = 84 stays exact even in int8.
_MAX_VAL = 7

#: A spread of Table 1 rows: every width class, signed/unsigned, floats.
_TYPENAMES = ("char", "uchar", "short", "ushort", "int", "uint32",
              "long", "uint64", "float", "double", "longdouble")

_NP_OPS = {
    "sum": np.add,
    "min": np.minimum,
    "max": np.maximum,
    "and": np.bitwise_and,
    "or": np.bitwise_or,
    "xor": np.bitwise_xor,
}

_SETTINGS = settings(max_examples=20, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


@st.composite
def cases(draw, *, need_op: bool = False, max_stride: int = 2) -> dict:
    n_pes = draw(st.integers(1, 12))
    typename = draw(st.sampled_from(_TYPENAMES))
    case = {
        "n_pes": n_pes,
        "root": draw(st.integers(0, n_pes - 1)),
        "typename": typename,
        "nelems": draw(st.integers(0, 6)),
        "stride": draw(st.integers(1, max_stride)),
        "trace": draw(st.booleans()),
        "seed": draw(st.integers(0, 2**32 - 1)),
    }
    if need_op:
        ops = ["sum", "min", "max"]
        if typename in INTEGRAL_TYPENAMES:
            ops += ["and", "or", "xor"]
        case["op"] = draw(st.sampled_from(ops))
    return case


def _values(seed: int, shape, dtype: np.dtype) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, _MAX_VAL + 1, size=shape).astype(dtype)


def _machine(case: dict) -> Machine:
    return Machine(small_config(case["n_pes"]), trace=case["trace"])


def _span(nelems: int, stride: int, dtype: np.dtype) -> int:
    return max(dtype.itemsize * ((max(nelems, 1) - 1) * stride + 1), 16)


@given(case=cases())
@_SETTINGS
def test_broadcast_matches_oracle(case):
    dt = dtype_of(case["typename"])
    nelems, stride, root = case["nelems"], case["stride"], case["root"]
    data = _values(case["seed"], nelems, dt)
    nbytes = _span(nelems, stride, dt)

    def body(ctx):
        ctx.init()
        dest = ctx.malloc(nbytes)
        src = ctx.private_malloc(nbytes)
        ctx.view(dest, dt, nelems, stride)[:] = 0
        if ctx.my_pe() == root:
            ctx.view(src, dt, nelems, stride)[:] = data
        from repro.collectives.broadcast import broadcast

        broadcast(ctx, dest, src, nelems, stride, root, dt)
        got = np.array(ctx.view(dest, dt, nelems, stride), copy=True)
        ctx.close()
        return got

    for got in _machine(case).run(body):
        assert np.array_equal(got, data)


@given(case=cases(need_op=True))
@_SETTINGS
def test_reduce_matches_oracle(case):
    dt = dtype_of(case["typename"])
    nelems, stride, root, op = (case["nelems"], case["stride"],
                                case["root"], case["op"])
    data = _values(case["seed"], (case["n_pes"], nelems), dt)
    expect = _NP_OPS[op].reduce(data, axis=0) if nelems else data[0]
    nbytes = _span(nelems, stride, dt)

    def body(ctx):
        ctx.init()
        src = ctx.malloc(nbytes)
        dest = ctx.private_malloc(nbytes)
        ctx.view(src, dt, nelems, stride)[:] = data[ctx.my_pe()]
        from repro.collectives.reduce import reduce

        reduce(ctx, dest, src, nelems, stride, root, op, dt)
        got = np.array(ctx.view(dest, dt, nelems, stride), copy=True)
        ctx.close()
        return got

    results = _machine(case).run(body)
    assert np.array_equal(results[root], expect.astype(dt))


@given(case=cases(max_stride=1), msgs_seed=st.integers(0, 2**32 - 1))
@_SETTINGS
def test_scatter_matches_oracle(case, msgs_seed):
    dt = dtype_of(case["typename"])
    n_pes, root = case["n_pes"], case["root"]
    rng = np.random.default_rng(msgs_seed)
    pe_msgs = rng.integers(0, 4, size=n_pes).tolist()
    pe_disp = np.concatenate([[0], np.cumsum(pe_msgs)[:-1]]).tolist()
    nelems = int(sum(pe_msgs))
    data = _values(case["seed"], nelems, dt)

    def body(ctx):
        ctx.init()
        me = ctx.my_pe()
        src = ctx.private_malloc(max(nelems * dt.itemsize, 16))
        dest = ctx.malloc(max(max(pe_msgs) * dt.itemsize, 16))
        if me == root:
            ctx.view(src, dt, nelems, 1)[:] = data
        from repro.collectives.scatter import scatter

        scatter(ctx, dest, src, pe_msgs, pe_disp, nelems, root, dt)
        got = np.array(ctx.view(dest, dt, pe_msgs[me], 1), copy=True)
        ctx.close()
        return got

    results = _machine(case).run(body)
    for pe, got in enumerate(results):
        lo = pe_disp[pe]
        assert np.array_equal(got, data[lo:lo + pe_msgs[pe]])


@given(case=cases(max_stride=1), msgs_seed=st.integers(0, 2**32 - 1))
@_SETTINGS
def test_gather_matches_oracle(case, msgs_seed):
    dt = dtype_of(case["typename"])
    n_pes, root = case["n_pes"], case["root"]
    rng = np.random.default_rng(msgs_seed)
    pe_msgs = rng.integers(0, 4, size=n_pes).tolist()
    pe_disp = np.concatenate([[0], np.cumsum(pe_msgs)[:-1]]).tolist()
    nelems = int(sum(pe_msgs))
    data = _values(case["seed"], nelems, dt)

    def body(ctx):
        ctx.init()
        me = ctx.my_pe()
        src = ctx.private_malloc(max(max(pe_msgs) * dt.itemsize, 16))
        dest = ctx.malloc(max(nelems * dt.itemsize, 16))
        lo = pe_disp[me]
        ctx.view(src, dt, pe_msgs[me], 1)[:] = data[lo:lo + pe_msgs[me]]
        from repro.collectives.gather import gather

        gather(ctx, dest, src, pe_msgs, pe_disp, nelems, root, dt)
        got = np.array(ctx.view(dest, dt, nelems, 1), copy=True)
        ctx.close()
        return got

    results = _machine(case).run(body)
    assert np.array_equal(results[root], data)


@given(case=cases(need_op=True),
       algorithm=st.sampled_from(["doubling", "rabenseifner", "ring"]))
@_SETTINGS
def test_allreduce_matches_oracle(case, algorithm):
    dt = dtype_of(case["typename"])
    nelems, stride, op = case["nelems"], case["stride"], case["op"]
    data = _values(case["seed"], (case["n_pes"], nelems), dt)
    expect = (_NP_OPS[op].reduce(data, axis=0) if nelems
              else data[0]).astype(dt)
    nbytes = _span(nelems, stride, dt)

    def body(ctx):
        ctx.init()
        src = ctx.malloc(nbytes)
        dest = ctx.private_malloc(nbytes)
        ctx.view(src, dt, nelems, stride)[:] = data[ctx.my_pe()]
        from repro.collectives.allreduce import allreduce

        allreduce(ctx, dest, src, nelems, stride, op, dt,
                  algorithm=algorithm)
        got = np.array(ctx.view(dest, dt, nelems, stride), copy=True)
        ctx.close()
        return got

    for got in _machine(case).run(body):
        assert np.array_equal(got, expect)


@given(case=cases(need_op=True), inclusive=st.booleans())
@_SETTINGS
def test_scan_matches_oracle(case, inclusive):
    dt = dtype_of(case["typename"])
    nelems, stride, op = case["nelems"], case["stride"], case["op"]
    n_pes = case["n_pes"]
    data = _values(case["seed"], (n_pes, nelems), dt)
    ufunc = _NP_OPS[op]
    nbytes = _span(nelems, stride, dt)

    def oracle(pe: int) -> np.ndarray:
        if not inclusive:
            if pe == 0:
                return np.full(nelems, identity_of(op, dt), dtype=dt)
            return ufunc.reduce(data[:pe], axis=0).astype(dt)
        return ufunc.reduce(data[:pe + 1], axis=0).astype(dt)

    def body(ctx):
        ctx.init()
        src = ctx.malloc(nbytes)
        dest = ctx.private_malloc(nbytes)
        ctx.view(src, dt, nelems, stride)[:] = data[ctx.my_pe()]
        from repro.collectives.scan import scan

        scan(ctx, dest, src, nelems, stride, op, dt, inclusive=inclusive)
        got = np.array(ctx.view(dest, dt, nelems, stride), copy=True)
        ctx.close()
        return got

    results = _machine(case).run(body)
    for pe, got in enumerate(results):
        if nelems:
            assert np.array_equal(got, oracle(pe))
