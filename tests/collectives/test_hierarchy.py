"""Tests for location-aware hierarchical collectives (paper section 7)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime import Machine

from ..conftest import small_config
from .helpers import run_machine


def scattered_config(n_pes=8, n_nodes=4, **kw):
    """Round-robin PE placement: rank i on node i % n_nodes."""
    return small_config(
        n_pes,
        cores_per_node=-(-n_pes // n_nodes),
        pe_node_map=tuple(i % n_nodes for i in range(n_pes)),
        **kw,
    )


class TestNodeLayout:
    def test_groups_and_leaders(self):
        def body(ctx):
            ctx.init()
            from repro.collectives.hierarchy import node_layout

            groups, leaders = node_layout(ctx, range(8), root_world=5)
            ctx.barrier()
            ctx.close()
            return groups, leaders

        m = Machine(scattered_config())
        groups, leaders = m.run(body)[0]
        # Round-robin over 4 nodes: node k hosts {k, k+4}.
        assert groups == [(0, 4), (1, 5), (2, 6), (3, 7)]
        # Root 5 leads its node; others are led by their lowest rank.
        assert leaders == [0, 5, 2, 3]

    def test_sequential_layout(self):
        def body(ctx):
            ctx.init()
            from repro.collectives.hierarchy import node_layout

            out = node_layout(ctx, range(8), root_world=0)
            ctx.barrier()
            ctx.close()
            return out

        m = Machine(small_config(8, cores_per_node=4))
        groups, leaders = m.run(body)[0]
        assert groups == [(0, 1, 2, 3), (4, 5, 6, 7)]
        assert leaders == [0, 4]


class TestHierarchicalBroadcast:
    @pytest.mark.parametrize("root", [0, 3, 5, 7])
    def test_correctness_scattered(self, root):
        def body(ctx):
            ctx.init()
            dest = ctx.malloc(8 * 4)
            src = ctx.private_malloc(8 * 4)
            ctx.view(dest, "long", 4)[:] = -1
            if ctx.my_pe() == root:
                ctx.view(src, "long", 4)[:] = [root, 2, 3, 4]
            ctx.broadcast(dest, src, 4, 1, root, "long",
                          algorithm="hierarchical")
            got = list(ctx.view(dest, "long", 4))
            ctx.close()
            return got

        m = Machine(scattered_config())
        for got in m.run(body):
            assert got == [root, 2, 3, 4]

    def test_correctness_single_node(self):
        def body(ctx):
            ctx.init()
            dest = ctx.malloc(16)
            src = ctx.private_malloc(16)
            if ctx.my_pe() == 1:
                ctx.view(src, "long", 1)[0] = 77
            ctx.broadcast(dest, src, 1, 1, 1, "long",
                          algorithm="hierarchical")
            got = int(ctx.view(dest, "long", 1)[0])
            ctx.close()
            return got

        assert run_machine(4, body) == [77] * 4

    def test_fewer_inter_node_messages_when_scattered(self):
        """On a scattered placement the flat tree pays inter-node wire
        cost on most edges; the hierarchical one only between leaders."""
        def timing(algorithm):
            def body(ctx):
                ctx.init()
                dest = ctx.malloc(8 * 256)
                src = ctx.private_malloc(8 * 256)
                ctx.barrier()
                t0 = ctx.pe.clock
                ctx.broadcast(dest, src, 256, 1, 0, "long",
                              algorithm=algorithm)
                ctx.barrier()
                dt = ctx.pe.clock - t0
                ctx.close()
                return dt

            m = Machine(scattered_config(
                8, 4,
                memory_bytes_per_pe=8 * 1024 * 1024,
                symmetric_heap_bytes=4 * 1024 * 1024,
                collective_scratch_bytes=512 * 1024,
            ))
            return max(m.run(body))

        assert timing("hierarchical") < timing("binomial")


class TestHierarchicalReduce:
    @pytest.mark.parametrize("root", [0, 2, 6])
    @pytest.mark.parametrize("op", ["sum", "max"])
    def test_correctness_scattered(self, root, op):
        def body(ctx):
            ctx.init()
            src = ctx.malloc(8 * 3)
            dest = ctx.private_malloc(8 * 3)
            me = ctx.my_pe()
            ctx.view(src, "long", 3)[:] = [me, me * 2, 1]
            ctx.reduce(dest, src, 3, 1, root, op, "long",
                       algorithm="hierarchical")
            got = (list(ctx.view(dest, "long", 3))
                   if me == root else None)
            ctx.close()
            return got

        m = Machine(scattered_config())
        results = m.run(body)
        if op == "sum":
            want = [sum(range(8)), 2 * sum(range(8)), 8]
        else:
            want = [7, 14, 1]
        assert results[root] == want

    def test_agrees_with_flat_binomial(self):
        def run_with(algorithm):
            def body(ctx):
                ctx.init()
                src = ctx.malloc(8 * 5)
                dest = ctx.private_malloc(8 * 5)
                me = ctx.my_pe()
                ctx.view(src, "long", 5)[:] = (me + 1) * np.arange(1, 6)
                ctx.reduce(dest, src, 5, 1, 2, "sum", "long",
                           algorithm=algorithm)
                got = (list(ctx.view(dest, "long", 5))
                       if me == 2 else None)
                ctx.close()
                return got

            m = Machine(scattered_config(6, 3))
            return m.run(body)[2]

        assert run_with("hierarchical") == run_with("binomial")


class TestPeNodeMap:
    def test_validation(self):
        with pytest.raises(ValueError, match="entries"):
            small_config(4, pe_node_map=(0, 1))
        with pytest.raises(ValueError, match="contiguous"):
            small_config(4, pe_node_map=(0, 2, 2, 0))

    def test_node_members(self):
        cfg = scattered_config(8, 4)
        assert cfg.node_members(0) == (0, 4)
        assert cfg.node_members(3) == (3, 7)
        assert cfg.n_nodes == 4
