"""Frozen copies of the pre-IR collective implementations.

PR 4 replaced the five inline binomial-tree walks with compiled
schedules (:mod:`repro.collectives.schedule`).  This module preserves
the *exact* legacy code — validation, stats accounting, span structure,
buffer discipline and tree walks — as the oracle for
``test_schedule_equivalence.py``: the compiled path must be
bit-identical to these functions in outputs, message counts, stage
counts, span tags and simulated time.

Everything here is a verbatim copy of the deleted implementations
(modulo function renames); do not "fix" or modernise it — its value is
being frozen.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.collectives.binomial import n_stages
from repro.collectives.common import (
    charge_elementwise,
    collective_span,
    local_copy,
    private_buffer,
    resolve_group,
    scratch_buffers,
    span_bytes,
    stage_span,
    validate_counts,
    validate_root,
)
from repro.collectives.ops import apply_op, check_op, identity_of
from repro.collectives.scatter import adjusted_displacements, _validate
from repro.collectives.virtual_rank import virtual_rank

__all__ = [
    "legacy_broadcast",
    "legacy_reduce",
    "legacy_allreduce",
    "legacy_scatter",
    "legacy_gather",
    "legacy_scan",
    "legacy_alltoall",
    "legacy_reduce_all",
    "legacy_allgather",
]


# -- broadcast -------------------------------------------------------------


def legacy_broadcast(ctx, dest, src, nelems, stride, root, dtype, *,
                     algorithm="binomial", group=None,
                     copy_to_root_dest=True):
    validate_counts(nelems, stride)
    members, me = resolve_group(ctx, group)
    n_pes = len(members)
    validate_root(root, n_pes)
    if me == root:
        ctx.machine.stats.collective_calls[f"broadcast:{algorithm}"] += 1
    with collective_span(ctx, "broadcast", members, algorithm=algorithm,
                         root=root, nelems=nelems, dtype=str(dtype)):
        if algorithm == "binomial":
            _bcast_binomial(ctx, dest, src, nelems, stride, root, dtype,
                            members, me, copy_to_root_dest)
        elif algorithm == "linear":
            _bcast_linear(ctx, dest, src, nelems, stride, root, dtype,
                          members, me, copy_to_root_dest)
        elif algorithm == "ring":
            _bcast_ring(ctx, dest, src, nelems, stride, root, dtype,
                        members, me, copy_to_root_dest)
        else:  # pragma: no cover - reference misuse
            raise AssertionError(algorithm)


def _bcast_binomial(ctx, dest, src, nelems, stride, root, dtype, members,
                    me, copy_to_root_dest=True):
    n_pes = len(members)
    vir_rank = virtual_rank(me, root, n_pes)
    ctx.barrier_team(members)
    if me == root and copy_to_root_dest:
        local_copy(ctx, dest, src, nelems, stride, dtype)
    k = n_stages(n_pes)
    mask = (1 << k) - 1
    for ordinal, i in enumerate(range(k - 1, -1, -1)):
        with stage_span(ctx, ordinal):
            mask ^= 1 << i
            if (vir_rank & mask) == 0 and (vir_rank & (1 << i)) == 0:
                vir_part = (vir_rank ^ (1 << i)) % n_pes
                log_part = (vir_part + root) % n_pes
                if vir_rank < vir_part:
                    local_src = src if me == root else dest
                    ctx.put(dest, local_src, nelems, stride,
                            members[log_part], dtype)
            ctx.barrier_team(members)


def _bcast_linear(ctx, dest, src, nelems, stride, root, dtype, members, me,
                  copy_to_root_dest=True):
    ctx.barrier_team(members)
    if me == root:
        if copy_to_root_dest:
            local_copy(ctx, dest, src, nelems, stride, dtype)
        for other in range(len(members)):
            if other != root:
                ctx.put(dest, src, nelems, stride, members[other], dtype)
    ctx.barrier_team(members)


_RING_CHUNKS = 8


def _bcast_ring(ctx, dest, src, nelems, stride, root, dtype, members, me,
                copy_to_root_dest=True):
    n_pes = len(members)
    ctx.barrier_team(members)
    if me == root and copy_to_root_dest:
        local_copy(ctx, dest, src, nelems, stride, dtype)
    if n_pes == 1 or nelems == 0:
        ctx.barrier_team(members)
        return
    chunks = min(_RING_CHUNKS, nelems)
    bounds = [nelems * c // chunks for c in range(chunks + 1)]
    eb = dtype.itemsize
    pos = (me - root) % n_pes
    nxt = members[(me + 1) % n_pes]
    for step in range(n_pes - 1 + chunks - 1):
        with stage_span(ctx, step):
            c = step - pos
            if 0 <= c < chunks and pos < n_pes - 1:
                lo, hi = bounds[c], bounds[c + 1]
                if hi > lo:
                    off = lo * stride * eb
                    local_src = src if me == root else dest
                    ctx.put(dest + off, local_src + off, hi - lo, stride,
                            nxt, dtype)
            ctx.barrier_team(members)


# -- reduce ----------------------------------------------------------------


def legacy_reduce(ctx, dest, src, nelems, stride, root, op, dtype, *,
                  algorithm="binomial", group=None):
    validate_counts(nelems, stride)
    check_op(op, dtype)
    members, me = resolve_group(ctx, group)
    n_pes = len(members)
    validate_root(root, n_pes)
    if me == root:
        ctx.machine.stats.collective_calls[f"reduce:{op}:{algorithm}"] += 1
    with collective_span(ctx, "reduce", members, algorithm=algorithm,
                         root=root, op=op, nelems=nelems, dtype=str(dtype)):
        if algorithm == "binomial":
            _reduce_binomial(ctx, dest, src, nelems, stride, root, op,
                             dtype, members, me)
        elif algorithm == "linear":
            _reduce_linear(ctx, dest, src, nelems, stride, root, op, dtype,
                           members, me)
        else:  # pragma: no cover - reference misuse
            raise AssertionError(algorithm)


def _reduce_binomial(ctx, dest, src, nelems, stride, root, op, dtype,
                     members, me):
    n_pes = len(members)
    vir_rank = virtual_rank(me, root, n_pes)
    if nelems == 0 or n_pes == 1:
        if me == root:
            local_copy(ctx, dest, src, nelems, stride, dtype)
        ctx.barrier_team(members)
        return
    eb = dtype.itemsize
    nbytes = span_bytes(nelems, stride, eb)
    with scratch_buffers(ctx, nbytes) as (s_buff,), \
            private_buffer(ctx, nbytes) as l_buff:
        local_copy(ctx, s_buff, src, nelems, stride, dtype)
        s_view = ctx.view(s_buff, dtype, nelems, stride)
        l_view = ctx.view(l_buff, dtype, nelems, stride)
        ctx.barrier_team(members)
        k = n_stages(n_pes)
        mask = (1 << k) - 1
        for i in range(k):
            with stage_span(ctx, i):
                mask ^= 1 << i
                if (vir_rank | mask) == mask and (vir_rank & (1 << i)) == 0:
                    vir_part = (vir_rank ^ (1 << i)) % n_pes
                    log_part = (vir_part + root) % n_pes
                    if vir_rank < vir_part:
                        ctx.get(l_buff, s_buff, nelems, stride,
                                members[log_part], dtype)
                        apply_op(op, s_view, l_view)
                        charge_elementwise(ctx, nelems)
                ctx.barrier_team(members)
        if vir_rank == 0:
            local_copy(ctx, dest, s_buff, nelems, stride, dtype)


def _reduce_linear(ctx, dest, src, nelems, stride, root, op, dtype,
                   members, me):
    n_pes = len(members)
    if nelems == 0 or n_pes == 1:
        if me == root:
            local_copy(ctx, dest, src, nelems, stride, dtype)
        ctx.barrier_team(members)
        return
    eb = dtype.itemsize
    nbytes = span_bytes(nelems, stride, eb)
    with scratch_buffers(ctx, nbytes) as (s_buff,):
        local_copy(ctx, s_buff, src, nelems, stride, dtype)
        ctx.barrier_team(members)
        if me == root:
            with private_buffer(ctx, nbytes) as l_buff:
                acc = ctx.view(s_buff, dtype, nelems, stride)
                l_view = ctx.view(l_buff, dtype, nelems, stride)
                for other in range(n_pes):
                    if other == root:
                        continue
                    ctx.get(l_buff, s_buff, nelems, stride, members[other],
                            dtype)
                    apply_op(op, acc, l_view)
                    charge_elementwise(ctx, nelems)
                local_copy(ctx, dest, s_buff, nelems, stride, dtype)
        ctx.barrier_team(members)


# -- allreduce -------------------------------------------------------------


def legacy_allreduce(ctx, dest, src, nelems, stride, op, dtype, *,
                     algorithm="doubling", group=None):
    validate_counts(nelems, stride)
    check_op(op, dtype)
    members, me = resolve_group(ctx, group)
    if me == 0:
        ctx.machine.stats.collective_calls[f"allreduce:{algorithm}"] += 1
    with collective_span(ctx, "allreduce", members, algorithm=algorithm,
                         op=op, nelems=nelems, dtype=str(dtype)):
        _allreduce(ctx, dest, src, nelems, stride, op, dtype, algorithm,
                   members, me)


def _allreduce(ctx, dest, src, nelems, stride, op, dtype, algorithm,
               members, me):
    n_pes = len(members)
    if nelems == 0 or n_pes == 1:
        local_copy(ctx, dest, src, nelems, stride, dtype)
        ctx.barrier_team(members)
        return
    eb = dtype.itemsize
    nbytes = span_bytes(nelems, stride, eb)
    with scratch_buffers(ctx, nbytes, nbytes) as (buf_a, buf_b), \
            private_buffer(ctx, nbytes) as l_buf:
        _allreduce_buffered(ctx, dest, src, nelems, stride, op, dtype,
                            algorithm, members, me, buf_a, buf_b, l_buf)


def _allreduce_buffered(ctx, dest, src, nelems, stride, op, dtype,
                        algorithm, members, me, buf_a, buf_b, l_buf):
    n_pes = len(members)
    view_a = ctx.view(buf_a, dtype, nelems, stride)
    view_b = ctx.view(buf_b, dtype, nelems, stride)
    l_view = ctx.view(l_buf, dtype, nelems, stride)
    local_copy(ctx, buf_a, src, nelems, stride, dtype)
    cur_addr, nxt_addr = buf_a, buf_b
    cur_view, nxt_view = view_a, view_b
    ctx.barrier_team(members)

    pof2 = 1 << (n_pes.bit_length() - 1)
    if pof2 * 2 <= n_pes:
        pof2 = n_pes
    rem = n_pes - pof2
    if me < 2 * rem and me % 2 == 0:
        ctx.get(l_buf, cur_addr, nelems, stride, members[me + 1], dtype)
        apply_op(op, cur_view, l_view)
        charge_elementwise(ctx, nelems)
    ctx.barrier_team(members)

    active = me >= 2 * rem or me % 2 == 0
    newrank = (me // 2) if me < 2 * rem else me - rem
    k = n_stages(pof2)

    def unfold(new):
        return new * 2 if new < rem else new + rem

    if algorithm == "doubling":
        if active:
            for i in range(k):
                with stage_span(ctx, i):
                    partner = unfold(newrank ^ (1 << i))
                    ctx.get(l_buf, cur_addr, nelems, stride,
                            members[partner], dtype)
                    nxt_view[:] = cur_view
                    apply_op(op, nxt_view, l_view)
                    charge_elementwise(ctx, 2 * nelems)
                    cur_addr, nxt_addr = nxt_addr, cur_addr
                    cur_view, nxt_view = nxt_view, cur_view
                    ctx.barrier_team(members)
        else:
            for i in range(k):
                with stage_span(ctx, i):
                    cur_addr, nxt_addr = nxt_addr, cur_addr
                    cur_view, nxt_view = nxt_view, cur_view
                    ctx.barrier_team(members)
    else:
        _rabenseifner_core(ctx, members, me, active, newrank, unfold,
                           pof2, k, cur_addr, l_buf, nelems, stride, op,
                           dtype)

    if me < 2 * rem and me % 2 == 0:
        ctx.put(cur_addr, cur_addr, nelems, stride, members[me + 1], dtype)
    ctx.barrier_team(members)
    local_copy(ctx, dest, cur_addr, nelems, stride, dtype)


def _rabenseifner_core(ctx, members, me, active, newrank, unfold, pof2, k,
                       buf, l_buf, nelems, stride, op, dtype):
    eb = dtype.itemsize

    def bound(r):
        return nelems * r // pof2

    def off(e):
        return e * stride * eb

    def sub(base, e_lo, e_hi):
        return ctx.view(base + off(e_lo), dtype, e_hi - e_lo, stride)

    if not active:
        for i in range(2 * k):
            with stage_span(ctx, i):
                ctx.barrier_team(members)
        return

    lo_r, hi_r = 0, pof2
    trail = []
    for stage in range(k):
        with stage_span(ctx, stage, phase="reduce-scatter"):
            half = (hi_r - lo_r) // 2
            if newrank < lo_r + half:
                partner_new = newrank + half
                keep_lo, keep_hi = lo_r, lo_r + half
            else:
                partner_new = newrank - half
                keep_lo, keep_hi = lo_r + half, hi_r
            e_lo, e_hi = bound(keep_lo), bound(keep_hi)
            if e_hi > e_lo:
                partner = members[unfold(partner_new)]
                ctx.get(l_buf + off(e_lo), buf + off(e_lo), e_hi - e_lo,
                        stride, partner, dtype)
                apply_op(op, sub(buf, e_lo, e_hi), sub(l_buf, e_lo, e_hi))
                charge_elementwise(ctx, e_hi - e_lo)
            trail.append((partner_new, keep_lo, keep_hi))
            lo_r, hi_r = keep_lo, keep_hi
            ctx.barrier_team(members)

    for stage, (partner_new, keep_lo, keep_hi) in enumerate(reversed(trail),
                                                            start=k):
        with stage_span(ctx, stage, phase="allgather"):
            partner = members[unfold(partner_new)]
            span = keep_hi - keep_lo
            if partner_new < keep_lo:
                need_lo, need_hi = keep_lo - span, keep_lo
            else:
                need_lo, need_hi = keep_hi, keep_hi + span
            e_lo, e_hi = bound(need_lo), bound(need_hi)
            if e_hi > e_lo:
                ctx.get(buf + off(e_lo), buf + off(e_lo), e_hi - e_lo,
                        stride, partner, dtype)
            ctx.barrier_team(members)


# -- scatter / gather ------------------------------------------------------


def legacy_scatter(ctx, dest, src, pe_msgs, pe_disp, nelems, root, dtype, *,
                   group=None):
    members, me = resolve_group(ctx, group)
    n_pes = len(members)
    validate_root(root, n_pes)
    _validate(pe_msgs, pe_disp, nelems, n_pes, "scatter")
    if me == root:
        ctx.machine.stats.collective_calls["scatter:binomial"] += 1
    with collective_span(ctx, "scatter", members, root=root, nelems=nelems,
                         dtype=str(dtype)):
        _scatter_binomial(ctx, dest, src, pe_msgs, pe_disp, nelems, root,
                          dtype, members, me)


def _scatter_binomial(ctx, dest, src, pe_msgs, pe_disp, nelems, root, dtype,
                      members, me):
    n_pes = len(members)
    vir_rank = virtual_rank(me, root, n_pes)
    eb = dtype.itemsize
    my_count = pe_msgs[me]
    if nelems == 0:
        ctx.barrier_team(members)
        return
    if n_pes == 1:
        if my_count:
            ctx.put(dest, src + pe_disp[me] * eb, my_count, 1, ctx.rank, dtype)
        ctx.barrier_team(members)
        return
    adj = adjusted_displacements(pe_msgs, root)
    with scratch_buffers(ctx, nelems * eb) as (s_buff,):
        if vir_rank == 0:
            for vir in range(n_pes):
                log = (vir + root) % n_pes
                cnt = pe_msgs[log]
                if cnt:
                    ctx.put(s_buff + adj[vir] * eb, src + pe_disp[log] * eb,
                            cnt, 1, ctx.rank, dtype)
        k = n_stages(n_pes)
        mask = (1 << k) - 1
        for ordinal, i in enumerate(range(k - 1, -1, -1)):
            with stage_span(ctx, ordinal):
                mask ^= 1 << i
                if (vir_rank & mask) == 0 and (vir_rank & (1 << i)) == 0:
                    vir_part = (vir_rank ^ (1 << i)) % n_pes
                    log_part = (vir_part + root) % n_pes
                    if vir_rank < vir_part:
                        end = min(vir_part + (1 << i), n_pes)
                        msg_size = adj[end] - adj[vir_part]
                        if msg_size:
                            off = s_buff + adj[vir_part] * eb
                            ctx.put(off, off, msg_size, 1, members[log_part],
                                    dtype)
                ctx.barrier_team(members)
        if my_count:
            ctx.put(dest, s_buff + adj[vir_rank] * eb, my_count, 1, ctx.rank,
                    dtype)


def legacy_gather(ctx, dest, src, pe_msgs, pe_disp, nelems, root, dtype, *,
                  group=None):
    members, me = resolve_group(ctx, group)
    n_pes = len(members)
    validate_root(root, n_pes)
    _validate(pe_msgs, pe_disp, nelems, n_pes, "gather")
    if me == root:
        ctx.machine.stats.collective_calls["gather:binomial"] += 1
    with collective_span(ctx, "gather", members, root=root, nelems=nelems,
                         dtype=str(dtype)):
        _gather_binomial(ctx, dest, src, pe_msgs, pe_disp, nelems, root,
                         dtype, members, me)


def _gather_binomial(ctx, dest, src, pe_msgs, pe_disp, nelems, root, dtype,
                     members, me):
    n_pes = len(members)
    vir_rank = virtual_rank(me, root, n_pes)
    eb = dtype.itemsize
    my_count = pe_msgs[me]
    if nelems == 0:
        ctx.barrier_team(members)
        return
    if n_pes == 1:
        if my_count:
            ctx.put(dest + pe_disp[me] * eb, src, my_count, 1, ctx.rank, dtype)
        ctx.barrier_team(members)
        return
    adj = adjusted_displacements(pe_msgs, root)
    with scratch_buffers(ctx, nelems * eb) as (s_buff,):
        if my_count:
            ctx.put(s_buff + adj[vir_rank] * eb, src, my_count, 1, ctx.rank,
                    dtype)
        ctx.barrier_team(members)
        k = n_stages(n_pes)
        mask = (1 << k) - 1
        for i in range(k):
            with stage_span(ctx, i):
                mask ^= 1 << i
                if (vir_rank | mask) == mask and (vir_rank & (1 << i)) == 0:
                    vir_part = (vir_rank ^ (1 << i)) % n_pes
                    log_part = (vir_part + root) % n_pes
                    if vir_rank < vir_part:
                        end = min(vir_part + (1 << i), n_pes)
                        msg_size = adj[end] - adj[vir_part]
                        if msg_size:
                            off = s_buff + adj[vir_part] * eb
                            ctx.get(off, off, msg_size, 1, members[log_part],
                                    dtype)
                ctx.barrier_team(members)
        if vir_rank == 0:
            for vir in range(n_pes):
                log = (vir + root) % n_pes
                cnt = pe_msgs[log]
                if cnt:
                    ctx.put(dest + pe_disp[log] * eb, s_buff + adj[vir] * eb,
                            cnt, 1, ctx.rank, dtype)


# -- scan ------------------------------------------------------------------


def legacy_scan(ctx, dest, src, nelems, stride, op, dtype, *,
                inclusive=True, group=None):
    validate_counts(nelems, stride)
    check_op(op, dtype)
    members, me = resolve_group(ctx, group)
    if me == 0:
        kind = "inclusive" if inclusive else "exclusive"
        ctx.machine.stats.collective_calls[f"scan:{kind}"] += 1
    with collective_span(ctx, "scan", members, inclusive=inclusive, op=op,
                         nelems=nelems, dtype=str(dtype)):
        _hillis_steele(ctx, dest, src, nelems, stride, op, dtype, inclusive,
                       members, me)


def _hillis_steele(ctx, dest, src, nelems, stride, op, dtype, inclusive,
                   members, me):
    n_pes = len(members)
    if nelems == 0:
        ctx.barrier_team(members)
        return
    eb = dtype.itemsize
    nbytes = span_bytes(nelems, stride, eb)
    buf_a = ctx.scratch_alloc(nbytes)
    buf_b = ctx.scratch_alloc(nbytes)
    l_buf = ctx.private_malloc(nbytes)
    view_a = ctx.view(buf_a, dtype, nelems, stride)
    view_b = ctx.view(buf_b, dtype, nelems, stride)
    l_view = ctx.view(l_buf, dtype, nelems, stride)
    local_copy(ctx, buf_a, src, nelems, stride, dtype)
    cur_addr, nxt_addr = buf_a, buf_b
    cur_view, nxt_view = view_a, view_b
    ctx.barrier_team(members)
    for i in range(n_stages(n_pes)):
        with stage_span(ctx, i):
            left = me - (1 << i)
            nxt_view[:] = cur_view
            if left >= 0:
                ctx.get(l_buf, cur_addr, nelems, stride, members[left],
                        dtype)
                apply_op(op, nxt_view, l_view)
                charge_elementwise(ctx, 2 * nelems)
            cur_addr, nxt_addr = nxt_addr, cur_addr
            cur_view, nxt_view = nxt_view, cur_view
            ctx.barrier_team(members)
    if inclusive:
        local_copy(ctx, dest, cur_addr, nelems, stride, dtype)
    else:
        dview = ctx.view(dest, dtype, nelems, stride)
        if me == 0:
            dview[:] = identity_of(op, dtype)
            ctx.charge_stream(dest, nbytes, write=True)
        else:
            ctx.get(dest, cur_addr, nelems, stride, members[me - 1], dtype)
        ctx.barrier_team(members)
    ctx.private_free(l_buf)
    ctx.scratch_free(buf_b)
    ctx.scratch_free(buf_a)


# -- compositions / alltoall ----------------------------------------------


def legacy_alltoall(ctx, dest, src, nelems_per_pe, dtype, *, group=None):
    members, me = resolve_group(ctx, group)
    n = len(members)
    if me == 0:
        ctx.machine.stats.collective_calls["alltoall:rotated"] += 1
    with collective_span(ctx, "alltoall", members, nelems=nelems_per_pe,
                         dtype=str(dtype)):
        ctx.barrier_team(members)
        eb = dtype.itemsize
        blk = nelems_per_pe * eb
        if nelems_per_pe:
            for step in range(n):
                peer = (me + step) % n
                ctx.put(dest + me * blk, src + peer * blk, nelems_per_pe, 1,
                        members[peer], dtype)
        ctx.barrier_team(members)


def legacy_reduce_all(ctx, dest, src, nelems, stride, op, dtype, *,
                      group=None):
    members, _ = resolve_group(ctx, group)
    with collective_span(ctx, "reduce_all", members, op=op, nelems=nelems,
                         dtype=str(dtype)):
        legacy_reduce(ctx, dest, src, nelems, stride, 0, op, dtype,
                      group=group)
        legacy_broadcast(ctx, dest, dest, nelems, stride, 0, dtype,
                         group=group)


def legacy_allgather(ctx, dest, src, pe_msgs, pe_disp, nelems, dtype, *,
                     group=None):
    members, _ = resolve_group(ctx, group)
    with collective_span(ctx, "allgather", members, nelems=nelems,
                         dtype=str(dtype)):
        legacy_gather(ctx, dest, src, pe_msgs, pe_disp, nelems, 0, dtype,
                      group=group)
        legacy_broadcast(ctx, dest, dest, nelems, 1, 0, dtype, group=group)
