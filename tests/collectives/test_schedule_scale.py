"""Compile + lint at scale: 1k–64k PEs stay clean, fast and sub-quadratic.

The vec evaluator makes large-PE schedules routine, which makes the
*compilers* the new scaling bottleneck.  These tests pin three things
per algorithm family:

* the linter finds nothing at 1k/4k PEs (deadlock freedom, matched
  peers, bounds, phase overlap and data conservation all hold at sizes
  the 1–16 PE suites never exercise);
* compile + lint stays inside a pinned wall-clock budget (~4× headroom
  over measured times on the CI class of machine), so an accidentally
  quadratic compile path fails loudly instead of slowing every sweep;
* total step-object counts grow O(N log N), the direct structural
  check for the same regression.

Ring, linear, alltoall and dissemination-allgather schedules are
inherently Θ(N²) total steps (every rank touches every other rank or
every block), so they are exercised at 1k only and excluded from the
larger tiers by design.
"""

from __future__ import annotations

import math
import time

import pytest

from repro.collectives.allreduce import compile_allreduce
from repro.collectives.broadcast import compile_broadcast
from repro.collectives.gather import compile_gather
from repro.collectives.reduce import compile_reduce
from repro.collectives.scatter import compile_scatter
from repro.collectives.schedule.lint import lint_schedule


def _ragged(n: int) -> tuple[tuple[int, ...], tuple[int, ...], int]:
    counts = tuple(i % 3 for i in range(n))
    disps, acc = [], 0
    for c in counts:
        disps.append(acc)
        acc += c
    return counts, tuple(disps), acc


def _total_steps(sched) -> int:
    return sum(sum(1 for _ in sched.program(r).all_steps())
               for r in range(sched.n_pes))


#: (name, compile thunk factory, seconds budget by tier).  Budgets are
#: ~4× the measured compile+lint time; a quadratic regression overshoots
#: them by orders of magnitude, honest machine jitter does not.
_CASES = [
    ("broadcast-binomial",
     lambda n: compile_broadcast(n, 0, 64, 1, 8)),
    ("reduce-binomial",
     lambda n: compile_reduce(n, 0, 64, 1, 8, "sum")),
    ("allreduce-doubling",
     lambda n: compile_allreduce(n, 64, 1, 8, "sum", algorithm="doubling")),
    ("allreduce-rabenseifner",
     lambda n: compile_allreduce(n, 64, 1, 8, "sum",
                                 algorithm="rabenseifner")),
    ("scatter-ragged",
     lambda n: compile_scatter(n, 0, *_ragged(n)[:2], _ragged(n)[2], 8)),
    ("gather-ragged",
     lambda n: compile_gather(n, 0, *_ragged(n)[:2], _ragged(n)[2], 8)),
]

_BUDGET_S = {1024: 5.0, 4096: 12.0}


@pytest.mark.parametrize("n_pes", [1024, 4096])
@pytest.mark.parametrize("name,compile_fn", _CASES,
                         ids=[c[0] for c in _CASES])
def test_lint_clean_and_fast_at_scale(name, compile_fn, n_pes):
    t0 = time.perf_counter()
    sched = compile_fn(n_pes)
    issues = lint_schedule(sched)
    wall = time.perf_counter() - t0
    assert issues == [], (
        f"{name} at {n_pes} PEs: " + "; ".join(str(i) for i in issues[:5])
    )
    budget = _BUDGET_S[n_pes]
    assert wall < budget, (
        f"{name} at {n_pes} PEs: compile+lint took {wall:.1f}s "
        f"(budget {budget:.0f}s) — quadratic compile path?"
    )
    # O(N log N) structural bound: logarithmic trees/butterflies emit a
    # small constant number of steps per rank per round.
    bound = 10 * n_pes * (math.log2(n_pes) + 2)
    steps = _total_steps(sched)
    assert steps < bound, (
        f"{name} at {n_pes} PEs emits {steps} steps "
        f"(O(N log N) bound {bound:.0f})"
    )


@pytest.mark.stress
@pytest.mark.parametrize("name,compile_fn", [
    ("broadcast-binomial", lambda n: compile_broadcast(n, 0, 4, 1, 8)),
    ("reduce-binomial", lambda n: compile_reduce(n, 0, 4, 1, 8, "sum")),
])
def test_lint_clean_at_64k(name, compile_fn):
    """The 64k tier: logarithmic-depth trees only (Θ(N²) families are
    capped at the 1k tier by design, see module docstring)."""
    n_pes = 65536
    t0 = time.perf_counter()
    sched = compile_fn(n_pes)
    issues = lint_schedule(sched)
    wall = time.perf_counter() - t0
    assert issues == [], "; ".join(str(i) for i in issues[:5])
    assert wall < 45.0, (
        f"{name} at 64k PEs: compile+lint took {wall:.1f}s (budget 45s)"
    )
    assert _total_steps(sched) < 10 * n_pes * (math.log2(n_pes) + 2)


def test_quadratic_families_lint_clean_at_1k():
    """Ring/linear stay in the suite, at the largest tier that is still
    cheap for Θ(N²) step counts."""
    n = 1024
    for name, sched in (
        ("allreduce-ring",
         compile_allreduce(n, 2048, 1, 8, "sum", algorithm="ring")),
        ("broadcast-ring",
         compile_broadcast(n, 0, 2048, 1, 8, algorithm="ring")),
        ("broadcast-linear",
         compile_broadcast(n, 0, 8, 1, 8, algorithm="linear")),
        ("reduce-linear",
         compile_reduce(n, 0, 8, 1, 8, "sum", algorithm="linear")),
    ):
        issues = lint_schedule(sched)
        assert issues == [], (
            f"{name}: " + "; ".join(str(i) for i in issues[:5])
        )
