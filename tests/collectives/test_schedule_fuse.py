"""Unit tests for schedule widening and fusion (repro.collectives.schedule.fuse)."""

from __future__ import annotations

import pytest

from repro.collectives.allreduce import compile_allreduce
from repro.collectives.broadcast import compile_broadcast
from repro.collectives.reduce import compile_reduce
from repro.collectives.schedule.fuse import (
    WIDENABLE,
    compile_widened,
    fuse_schedules,
)
from repro.collectives.schedule.lint import lint_fused_schedule, lint_schedule
from repro.errors import FusionError, XbgasError


class TestCompileWidened:
    @pytest.mark.parametrize("n_pes", [1, 2, 3, 4, 8])
    def test_widened_allreduce_lints_clean(self, n_pes):
        sched = compile_widened("allreduce", "doubling", n_pes, 0, "sum",
                                8, (8, 16, 8))
        assert sched.algorithm == "doubling-widened"
        assert lint_schedule(sched) == []

    @pytest.mark.parametrize("collective,algorithm", sorted(WIDENABLE))
    def test_every_widenable_pair_compiles(self, collective, algorithm):
        sched = compile_widened(collective, algorithm, 4, 1, "sum", 8,
                                (4, 4))
        assert sched.collective == collective
        assert lint_schedule(sched) == []

    def test_per_request_user_buffers(self):
        sched = compile_widened("allreduce", "doubling", 4, 0, "sum", 8,
                                (8, 16))
        names = {b.name for b in sched.buffers}
        assert {"src0", "dest0", "src1", "dest1",
                "w:src", "w:dest"} <= names
        assert sched.buffer("src1").nbytes == 16 * 8
        assert sched.buffer("w:src").nbytes == 24 * 8

    def test_deliver_covers_every_request(self):
        sched = compile_widened("allreduce", "doubling", 3, 0, "sum", 8,
                                (8, 16))
        delivered = {(r, name) for r, name, _lo, _hi in sched.deliver}
        for r in range(3):
            assert (r, "dest0") in delivered
            assert (r, "dest1") in delivered

    def test_reduce_delivers_to_root_only(self):
        sched = compile_widened("reduce", "binomial", 4, 2, "sum", 8,
                                (8, 8))
        ranks = {r for r, _name, _lo, _hi in sched.deliver}
        assert ranks == {2}

    def test_zero_count_requests_skip_copies(self):
        sched = compile_widened("allreduce", "doubling", 2, 0, "sum", 8,
                                (8, 0, 8))
        delivered = {name for _r, name, _lo, _hi in sched.deliver}
        assert "dest1" not in delivered
        assert delivered >= {"dest0", "dest2"}

    def test_non_widenable_algorithm_rejected(self):
        with pytest.raises(FusionError):
            compile_widened("allreduce", "ring", 8, 0, "sum", 8, (8, 8))
        with pytest.raises(FusionError):
            compile_widened("allreduce", "rabenseifner", 8, 0, "sum", 8,
                            (8, 8))

    def test_bad_counts_rejected(self):
        with pytest.raises(FusionError):
            compile_widened("allreduce", "doubling", 4, 0, "sum", 8, ())
        with pytest.raises(FusionError):
            compile_widened("allreduce", "doubling", 4, 0, "sum", 8,
                            (8, -8))
        with pytest.raises(FusionError):
            compile_widened("allreduce", "doubling", 4, 0, "sum", 8,
                            (0, 0))

    def test_fusion_error_is_xbgas_error(self):
        """The flush path catches XbgasError-family failures to fall
        back to sequential execution."""
        assert issubclass(FusionError, XbgasError)

    def test_cached(self):
        a = compile_widened("allreduce", "doubling", 4, 0, "sum", 8,
                            (8, 8))
        b = compile_widened("allreduce", "doubling", 4, 0, "sum", 8,
                            (8, 8))
        assert a is b


class TestFuseSchedules:
    def _parts(self, n_pes=4):
        root = min(1, n_pes - 1)
        return (
            compile_broadcast(n_pes, 0, 8, 1, 8, algorithm="binomial"),
            compile_reduce(n_pes, root, 4, 1, 8, "sum",
                           algorithm="binomial"),
            compile_allreduce(n_pes, 16, 1, 8, "sum", algorithm="doubling"),
        )

    @pytest.mark.parametrize("n_pes", [1, 2, 3, 4, 8, 16])
    def test_fused_mixed_batch_lints_clean(self, n_pes):
        fused = fuse_schedules(self._parts(n_pes))
        assert fused.collective == "superstep"
        assert fused.algorithm == "fused"
        assert lint_fused_schedule(fused) == []

    def test_buffers_renamed_per_request(self):
        fused = fuse_schedules(self._parts())
        names = {b.name for b in fused.buffers}
        assert "r0:dest" in names and "r2:dest" in names
        assert all(":" in n for n in names)

    def test_deliver_remapped(self):
        parts = self._parts()
        fused = fuse_schedules(parts)
        want = {(r, f"r{i}:{name}", lo, hi)
                for i, s in enumerate(parts)
                for r, name, lo, hi in s.deliver}
        assert set(fused.deliver) == want

    def test_barrier_counts_align_across_ranks(self):
        """Every rank of the fused schedule passes the same number of
        barriers — the deadlock-freedom invariant fusion must keep."""
        from repro.collectives.schedule.lint import _barrier_count

        fused = fuse_schedules(self._parts(8))
        counts = {_barrier_count(fused, r) for r in range(8)}
        assert len(counts) == 1

    def test_single_schedule_fuses_to_itself_renamed(self):
        one = compile_allreduce(4, 8, 1, 8, "sum", algorithm="doubling")
        fused = fuse_schedules((one,))
        assert fused.n_pes == 4
        assert lint_fused_schedule(fused) == []

    def test_widened_schedules_fuse(self):
        """The flush path fuses *widened* sub-batches; the composition
        must still lint clean."""
        a = compile_widened("allreduce", "doubling", 4, 0, "sum", 8,
                            (8, 8))
        b = compile_widened("broadcast", "binomial", 4, 1, None, 8,
                            (4, 4, 4))
        fused = fuse_schedules((a, b))
        assert lint_fused_schedule(fused) == []

    def test_empty_rejected(self):
        with pytest.raises(FusionError):
            fuse_schedules(())

    def test_mismatched_group_size_rejected(self):
        a = compile_allreduce(4, 8, 1, 8, "sum", algorithm="doubling")
        b = compile_allreduce(8, 8, 1, 8, "sum", algorithm="doubling")
        with pytest.raises(FusionError):
            fuse_schedules((a, b))

    def test_mismatched_itemsize_rejected(self):
        a = compile_allreduce(4, 8, 1, 8, "sum", algorithm="doubling")
        b = compile_allreduce(4, 8, 1, 4, "sum", algorithm="doubling")
        with pytest.raises(FusionError):
            fuse_schedules((a, b))

    def test_mixed_ops_rejected(self):
        a = compile_allreduce(4, 8, 1, 8, "sum", algorithm="doubling")
        b = compile_allreduce(4, 8, 1, 8, "max", algorithm="doubling")
        with pytest.raises(FusionError):
            fuse_schedules((a, b))

    def test_op_survives_alongside_opless_schedules(self):
        bcast = compile_broadcast(4, 0, 8, 1, 8, algorithm="binomial")
        ar = compile_allreduce(4, 8, 1, 8, "max", algorithm="doubling")
        fused = fuse_schedules((bcast, ar))
        assert fused.op == "max"

    def test_pipeline_geometry_merges(self):
        """Two pipelined schedules with identical geometry merge
        round-for-round into one Pipeline block."""
        a = compile_allreduce(8, 64, 1, 8, "sum",
                              algorithm="dual-pipelined", segments=4)
        b = compile_allreduce(8, 64, 1, 8, "sum",
                              algorithm="dual-pipelined", segments=4)
        fused = fuse_schedules((a, b))
        assert lint_fused_schedule(fused) == []
        n_pipes = sum(
            1 for slot in fused.programs[0].stages
            if type(slot).__name__ == "Pipeline")
        assert n_pipes == sum(
            1 for slot in a.programs[0].stages
            if type(slot).__name__ == "Pipeline")

    def test_mismatched_pipeline_geometry_runs_sequentially(self):
        """Different segment counts cannot merge positionally — fusion
        still succeeds, emitting the blocks back-to-back."""
        a = compile_allreduce(8, 64, 1, 8, "sum",
                              algorithm="dual-pipelined", segments=4)
        b = compile_allreduce(8, 64, 1, 8, "sum",
                              algorithm="dual-pipelined", segments=2)
        fused = fuse_schedules((a, b))
        assert lint_fused_schedule(fused) == []
