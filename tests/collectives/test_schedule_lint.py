"""The schedule linter: builtins lint clean, broken schedules get caught.

The first half is the CI ``schedule-lint`` gate in-process: every
builtin ``(collective, algorithm)`` pair compiles and lints clean at
1–16 PEs.  The second half hand-builds minimally broken schedules — one
per lint check — and asserts the right check fires, so the linter can't
silently rot into always-green.
"""

from __future__ import annotations

import pytest

from repro.collectives.schedule import lint_schedule
from repro.collectives.schedule.ir import (
    BARRIER,
    Buffer,
    Copy,
    Get,
    Put,
    RankProgram,
    Schedule,
    Stage,
)
from repro.collectives.schedule.registry import (
    BUILTIN_ALGORITHMS,
    builtin_schedules,
)


@pytest.mark.parametrize("collective,algorithm", BUILTIN_ALGORITHMS)
def test_builtin_algorithms_lint_clean(collective, algorithm):
    seen = 0
    for label, sched in builtin_schedules():
        if not label.startswith(f"{collective}:{algorithm} "):
            continue
        seen += 1
        issues = lint_schedule(sched)
        assert not issues, (
            f"{label}: " + "; ".join(str(i) for i in issues))
    # 16 PE counts × at least one shape each.
    assert seen >= 16


def _two_rank(buffers, prog0, prog1, deliver=()):
    return Schedule(
        collective="test", algorithm="test", n_pes=2, itemsize=8,
        buffers=buffers, programs=(prog0, prog1), deliver=deliver,
    )


_SYM = Buffer("s", "scratch", 64, symmetric=True)
_DST = Buffer("dest", "user", 64)


def _checks(issues):
    return {i.check for i in issues}


class TestBrokenSchedules:
    def test_mismatched_barrier_counts_is_deadlock(self):
        sched = _two_rank(
            (_DST, _SYM),
            RankProgram(0, (BARRIER, BARRIER)),
            RankProgram(1, (BARRIER,)),
        )
        assert "deadlock" in _checks(lint_schedule(sched))

    def test_self_peer_is_flagged(self):
        sched = _two_rank(
            (_DST, _SYM),
            RankProgram(0, (Put("s", 0, "s", 0, 1, 1, 0), BARRIER)),
            RankProgram(1, (BARRIER,)),
        )
        assert "peers" in _checks(lint_schedule(sched))

    def test_peer_out_of_range(self):
        sched = _two_rank(
            (_DST, _SYM),
            RankProgram(0, (Get("s", 0, "s", 0, 1, 1, 5), BARRIER)),
            RankProgram(1, (BARRIER,)),
        )
        assert "peers" in _checks(lint_schedule(sched))

    def test_remote_access_to_private_buffer(self):
        priv = Buffer("p", "private", 64)
        sched = _two_rank(
            (_DST, _SYM, priv),
            RankProgram(0, (Get("s", 0, "p", 0, 1, 1, 1), BARRIER)),
            RankProgram(1, (BARRIER,)),
        )
        issues = lint_schedule(sched)
        assert any("non-symmetric" in i.message for i in issues), issues

    def test_out_of_bounds_access(self):
        sched = _two_rank(
            (_DST, _SYM),
            RankProgram(0, (Copy("dest", 0, "s", 0, 100, 1), BARRIER)),
            RankProgram(1, (BARRIER,)),
        )
        assert "bounds" in _checks(lint_schedule(sched))

    def test_write_write_overlap_in_one_phase(self):
        # Ranks 1 and 2 both put into rank 0's scratch bytes 0..8 with
        # no barrier between: a data race across origins.
        sched = Schedule(
            collective="test", algorithm="test", n_pes=3, itemsize=8,
            buffers=(_DST, _SYM),
            programs=(
                RankProgram(0, (BARRIER,)),
                RankProgram(1, (Put("s", 0, "s", 8, 1, 1, 0), BARRIER)),
                RankProgram(2, (Put("s", 0, "s", 8, 1, 1, 0), BARRIER)),
            ),
        )
        assert "overlap" in _checks(lint_schedule(sched))

    def test_remote_write_vs_local_read_overlap(self):
        sched = _two_rank(
            (_DST, _SYM),
            RankProgram(0, (Copy("dest", 0, "s", 0, 1, 1), BARRIER)),
            RankProgram(1, (Put("s", 0, "s", 8, 1, 1, 0), BARRIER)),
        )
        assert "overlap" in _checks(lint_schedule(sched))

    def test_barrier_separates_conflicting_phases(self):
        # Same steps as above but with a barrier between them: clean.
        sched = _two_rank(
            (_DST, _SYM),
            RankProgram(0, (BARRIER, Copy("dest", 0, "s", 0, 1, 1),
                            BARRIER)),
            RankProgram(1, (Put("s", 0, "s", 8, 1, 1, 0), BARRIER, BARRIER)),
        )
        assert lint_schedule(sched) == []

    def test_unfulfilled_deliver_contract(self):
        sched = _two_rank(
            (_DST, _SYM),
            RankProgram(0, (BARRIER,)),
            RankProgram(1, (BARRIER,)),
            deliver=((0, "dest", 0, 16),),
        )
        assert "conservation" in _checks(lint_schedule(sched))

    def test_deliver_satisfied_by_local_copy(self):
        sched = _two_rank(
            (_DST, _SYM),
            RankProgram(0, (Copy("dest", 0, "s", 0, 2, 1), BARRIER)),
            RankProgram(1, (BARRIER,)),
            deliver=((0, "dest", 0, 16),),
        )
        assert lint_schedule(sched) == []

    def test_deliver_satisfied_by_incoming_put(self):
        sched = _two_rank(
            (Buffer("dest", "user", 64, symmetric=True), _SYM),
            RankProgram(0, (BARRIER,)),
            RankProgram(1, (Put("dest", 0, "s", 0, 2, 1, 0), BARRIER)),
            deliver=((0, "dest", 0, 16),),
        )
        assert lint_schedule(sched) == []

    def test_non_symmetric_scratch_rejected(self):
        bad = Buffer("s", "scratch", 64, symmetric=False)
        sched = _two_rank(
            (_DST, bad),
            RankProgram(0, (BARRIER,)),
            RankProgram(1, (BARRIER,)),
        )
        assert "buffers" in _checks(lint_schedule(sched))

    def test_stage_count_mismatch(self):
        sched = _two_rank(
            (_DST, _SYM),
            RankProgram(0, (), (Stage(0, (BARRIER,)),)),
            RankProgram(1, (), (Stage(0, (BARRIER,)),
                                Stage(1, (BARRIER,)))),
        )
        issues = lint_schedule(sched)
        assert issues  # structure issues short-circuit the rest
