"""The schedule linter: builtins lint clean, broken schedules get caught.

The first half is the CI ``schedule-lint`` gate in-process: every
builtin ``(collective, algorithm)`` pair compiles and lints clean at
1–16 PEs.  The second half hand-builds minimally broken schedules — one
per lint check — and asserts the right check fires, so the linter can't
silently rot into always-green.
"""

from __future__ import annotations

import pytest

from repro.collectives.schedule import lint_schedule
from repro.collectives.schedule.ir import (
    BARRIER,
    Buffer,
    Copy,
    Get,
    Pipeline,
    Put,
    RankProgram,
    Schedule,
    Stage,
)
from repro.collectives.schedule.registry import (
    BUILTIN_ALGORITHMS,
    builtin_schedules,
)


@pytest.mark.parametrize("collective,algorithm", BUILTIN_ALGORITHMS)
def test_builtin_algorithms_lint_clean(collective, algorithm):
    seen = 0
    for label, sched in builtin_schedules():
        if not label.startswith(f"{collective}:{algorithm} "):
            continue
        seen += 1
        issues = lint_schedule(sched)
        assert not issues, (
            f"{label}: " + "; ".join(str(i) for i in issues))
    # 16 PE counts × at least one shape each.
    assert seen >= 16


def _two_rank(buffers, prog0, prog1, deliver=()):
    return Schedule(
        collective="test", algorithm="test", n_pes=2, itemsize=8,
        buffers=buffers, programs=(prog0, prog1), deliver=deliver,
    )


_SYM = Buffer("s", "scratch", 64, symmetric=True)
_DST = Buffer("dest", "user", 64)


def _checks(issues):
    return {i.check for i in issues}


class TestBrokenSchedules:
    def test_mismatched_barrier_counts_is_deadlock(self):
        sched = _two_rank(
            (_DST, _SYM),
            RankProgram(0, (BARRIER, BARRIER)),
            RankProgram(1, (BARRIER,)),
        )
        assert "deadlock" in _checks(lint_schedule(sched))

    def test_self_peer_is_flagged(self):
        sched = _two_rank(
            (_DST, _SYM),
            RankProgram(0, (Put("s", 0, "s", 0, 1, 1, 0), BARRIER)),
            RankProgram(1, (BARRIER,)),
        )
        assert "peers" in _checks(lint_schedule(sched))

    def test_peer_out_of_range(self):
        sched = _two_rank(
            (_DST, _SYM),
            RankProgram(0, (Get("s", 0, "s", 0, 1, 1, 5), BARRIER)),
            RankProgram(1, (BARRIER,)),
        )
        assert "peers" in _checks(lint_schedule(sched))

    def test_remote_access_to_private_buffer(self):
        priv = Buffer("p", "private", 64)
        sched = _two_rank(
            (_DST, _SYM, priv),
            RankProgram(0, (Get("s", 0, "p", 0, 1, 1, 1), BARRIER)),
            RankProgram(1, (BARRIER,)),
        )
        issues = lint_schedule(sched)
        assert any("non-symmetric" in i.message for i in issues), issues

    def test_out_of_bounds_access(self):
        sched = _two_rank(
            (_DST, _SYM),
            RankProgram(0, (Copy("dest", 0, "s", 0, 100, 1), BARRIER)),
            RankProgram(1, (BARRIER,)),
        )
        assert "bounds" in _checks(lint_schedule(sched))

    def test_write_write_overlap_in_one_phase(self):
        # Ranks 1 and 2 both put into rank 0's scratch bytes 0..8 with
        # no barrier between: a data race across origins.
        sched = Schedule(
            collective="test", algorithm="test", n_pes=3, itemsize=8,
            buffers=(_DST, _SYM),
            programs=(
                RankProgram(0, (BARRIER,)),
                RankProgram(1, (Put("s", 0, "s", 8, 1, 1, 0), BARRIER)),
                RankProgram(2, (Put("s", 0, "s", 8, 1, 1, 0), BARRIER)),
            ),
        )
        assert "overlap" in _checks(lint_schedule(sched))

    def test_remote_write_vs_local_read_overlap(self):
        sched = _two_rank(
            (_DST, _SYM),
            RankProgram(0, (Copy("dest", 0, "s", 0, 1, 1), BARRIER)),
            RankProgram(1, (Put("s", 0, "s", 8, 1, 1, 0), BARRIER)),
        )
        assert "overlap" in _checks(lint_schedule(sched))

    def test_barrier_separates_conflicting_phases(self):
        # Same steps as above but with a barrier between them: clean.
        sched = _two_rank(
            (_DST, _SYM),
            RankProgram(0, (BARRIER, Copy("dest", 0, "s", 0, 1, 1),
                            BARRIER)),
            RankProgram(1, (Put("s", 0, "s", 8, 1, 1, 0), BARRIER, BARRIER)),
        )
        assert lint_schedule(sched) == []

    def test_unfulfilled_deliver_contract(self):
        sched = _two_rank(
            (_DST, _SYM),
            RankProgram(0, (BARRIER,)),
            RankProgram(1, (BARRIER,)),
            deliver=((0, "dest", 0, 16),),
        )
        assert "conservation" in _checks(lint_schedule(sched))

    def test_deliver_satisfied_by_local_copy(self):
        sched = _two_rank(
            (_DST, _SYM),
            RankProgram(0, (Copy("dest", 0, "s", 0, 2, 1), BARRIER)),
            RankProgram(1, (BARRIER,)),
            deliver=((0, "dest", 0, 16),),
        )
        assert lint_schedule(sched) == []

    def test_deliver_satisfied_by_incoming_put(self):
        sched = _two_rank(
            (Buffer("dest", "user", 64, symmetric=True), _SYM),
            RankProgram(0, (BARRIER,)),
            RankProgram(1, (Put("dest", 0, "s", 0, 2, 1, 0), BARRIER)),
            deliver=((0, "dest", 0, 16),),
        )
        assert lint_schedule(sched) == []

    def test_non_symmetric_scratch_rejected(self):
        bad = Buffer("s", "scratch", 64, symmetric=False)
        sched = _two_rank(
            (_DST, bad),
            RankProgram(0, (BARRIER,)),
            RankProgram(1, (BARRIER,)),
        )
        assert "buffers" in _checks(lint_schedule(sched))

    def test_stage_count_mismatch(self):
        sched = _two_rank(
            (_DST, _SYM),
            RankProgram(0, (), (Stage(0, (BARRIER,)),)),
            RankProgram(1, (), (Stage(0, (BARRIER,)),
                                Stage(1, (BARRIER,)))),
        )
        issues = lint_schedule(sched)
        assert issues  # structure issues short-circuit the rest


class TestBrokenPipelines:
    """Hand-built broken Pipeline blocks: each new hazard rule fires."""

    def _pipe_pair(self, pipe0, pipe1):
        return _two_rank(
            (_DST, _SYM),
            RankProgram(0, (), (pipe0,)),
            RankProgram(1, (), (pipe1,)),
        )

    def test_clean_pipeline_passes(self):
        """Producer writes segment k in round k; the consumer reads it
        one round later — exactly the wavefront contract."""
        producer = Pipeline(0, 2, (
            ((Copy("s", 0, "dest", 0, 1, 1),),
             (Copy("s", 8, "dest", 8, 1, 1),)),
            ((), ()),
        ))
        consumer = Pipeline(0, 2, (
            ((), ()),
            ((Get("dest", 0, "s", 0, 1, 1, 0),),
             (Get("dest", 8, "s", 8, 1, 1, 0),)),
        ))
        sched = _two_rank(
            (_DST, _SYM),
            RankProgram(0, (), (producer,)),
            RankProgram(1, (), (consumer,)),
        )
        assert lint_schedule(sched) == []

    def test_ragged_group_is_flagged(self):
        ragged = Pipeline(0, 2, ((((),)),))  # 1 segment tuple, S=2
        ok = Pipeline(0, 2, (((), ()),))
        issues = lint_schedule(self._pipe_pair(ragged, ok))
        assert "pipeline" in _checks(issues)

    def test_barrier_inside_group_is_flagged(self):
        bad = Pipeline(0, 1, (((BARRIER,),),))
        issues = lint_schedule(self._pipe_pair(bad, bad))
        assert "pipeline" in _checks(issues)

    def test_segment_count_mismatch_is_deadlock(self):
        """Ranks disagreeing on S lower to different round counts — the
        structure signature catches it before any barrier hangs."""
        two = Pipeline(0, 2, (((), ()),))
        three = Pipeline(0, 3, (((), (), ()),))
        issues = lint_schedule(self._pipe_pair(two, three))
        assert "deadlock" in _checks(issues)

    def test_cross_segment_ordering_violation(self):
        """A remote read of bytes produced only in a *later* round of
        the same pipeline observes stale data — the staleness bug that
        wrong segment boundaries introduce."""
        reader = Pipeline(0, 1, (
            ((Get("dest", 0, "s", 0, 1, 1, 1),),),
            ((),),
        ))
        writer = Pipeline(0, 1, (
            ((),),
            ((Copy("s", 0, "dest", 0, 1, 1),),),
        ))
        issues = lint_schedule(self._pipe_pair(reader, writer))
        assert any(i.check == "pipeline" and "cross-segment" in i.message
                   for i in issues)
