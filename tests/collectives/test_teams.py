"""Tests for PE-subset (team) collectives (paper section 7)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.collectives.teams import Team
from repro.errors import CollectiveArgumentError

from .helpers import run_machine


class TestTeamBasics:
    def test_identity(self):
        def body(ctx):
            ctx.init()
            if ctx.my_pe() in (1, 3, 5):
                team = Team(ctx, [1, 3, 5])
                out = (team.my_pe(), team.num_pes(), team.world_rank(2))
            else:
                out = None
            ctx.barrier()
            ctx.close()
            return out

        results = run_machine(6, body)
        assert results[1] == (0, 3, 5)
        assert results[3] == (1, 3, 5)
        assert results[5] == (2, 3, 5)

    def test_nonmember_construction_rejected(self):
        def body(ctx):
            ctx.init()
            if ctx.my_pe() == 0:
                with pytest.raises(CollectiveArgumentError):
                    Team(ctx, [1, 2])
            ctx.barrier()
            ctx.close()

        run_machine(3, body)

    def test_empty_and_duplicate_rejected(self):
        def body(ctx):
            ctx.init()
            with pytest.raises(CollectiveArgumentError):
                Team(ctx, [])
            with pytest.raises(CollectiveArgumentError):
                Team(ctx, [0, 0])
            ctx.barrier()
            ctx.close()

        run_machine(1, body)


class TestTeamCollectives:
    def test_team_broadcast_leaves_outsiders_alone(self):
        def body(ctx):
            ctx.init()
            buf = ctx.malloc(8)
            v = ctx.view(buf, "long", 1)
            v[0] = -1
            src = ctx.private_malloc(8)
            me = ctx.my_pe()
            if me in (0, 2):
                team = Team(ctx, [0, 2])
                if me == 0:
                    ctx.view(src, "long", 1)[0] = 42
                team.broadcast(buf, src, 1, 1, 0, "long")
            ctx.barrier()
            got = int(v[0])
            ctx.close()
            return got

        results = run_machine(4, body)
        assert results[0] == 42 and results[2] == 42
        assert results[1] == -1 and results[3] == -1

    def test_team_reduce_with_team_relative_root(self):
        def body(ctx):
            ctx.init()
            src = ctx.malloc(8)
            dest = ctx.private_malloc(8)
            me = ctx.my_pe()
            ctx.view(src, "long", 1)[0] = me
            got = None
            if me in (1, 2, 3):
                team = Team(ctx, [1, 2, 3])
                team.reduce(dest, src, 1, 1, root=2, op="sum", dtype="long")
                if team.my_pe() == 2:  # world rank 3
                    got = int(ctx.view(dest, "long", 1)[0])
            ctx.barrier()
            ctx.close()
            return got

        results = run_machine(4, body)
        assert results[3] == 1 + 2 + 3

    def test_disjoint_teams_concurrently(self):
        """Two disjoint teams run collectives at the same time without
        interference (the scratch-stack symmetry guarantee)."""
        def body(ctx):
            ctx.init()
            me, n = ctx.my_pe(), ctx.num_pes()
            members = [r for r in range(n) if r % 2 == me % 2]
            team = Team(ctx, members)
            src = ctx.malloc(8)
            dest = ctx.private_malloc(8)
            ctx.view(src, "long", 1)[0] = me + 1
            team.reduce(dest, src, 1, 1, 0, "sum", "long")
            got = None
            if team.my_pe() == 0:
                got = int(ctx.view(dest, "long", 1)[0])
            ctx.barrier()
            ctx.close()
            return got

        results = run_machine(8, body)
        evens = sum(r + 1 for r in range(8) if r % 2 == 0)
        odds = sum(r + 1 for r in range(8) if r % 2 == 1)
        assert results[0] == evens
        assert results[1] == odds

    def test_team_scatter_gather(self):
        def body(ctx):
            ctx.init()
            me = ctx.my_pe()
            got = None
            if me in (0, 1, 3):
                team = Team(ctx, [0, 1, 3])
                msgs, disp = [2, 2, 2], [0, 2, 4]
                src = ctx.malloc(8 * 6)
                dest = ctx.private_malloc(8 * 2)
                if team.my_pe() == 1:  # world rank 1 is the root
                    ctx.view(src, "long", 6)[:] = np.arange(6) * 7
                team.scatter(dest, src, msgs, disp, 6, 1, "long")
                got = list(ctx.view(dest, "long", 2))
            ctx.barrier()
            ctx.close()
            return got

        results = run_machine(4, body)
        assert results[0] == [0, 7]
        assert results[1] == [14, 21]
        assert results[3] == [28, 35]
        assert results[2] is None

    def test_team_alltoall(self):
        def body(ctx):
            ctx.init()
            me = ctx.my_pe()
            got = None
            if me in (0, 2):
                team = Team(ctx, [0, 2])
                src = ctx.malloc(8 * 2)
                dest = ctx.malloc(8 * 2)
                ctx.view(src, "long", 2)[:] = [me * 10, me * 10 + 1]
                team.alltoall(dest, src, 1, "long")
                got = list(ctx.view(dest, "long", 2))
            ctx.barrier()
            ctx.close()
            return got

        results = run_machine(4, body)
        assert results[0] == [0, 20]
        assert results[2] == [1, 21]
