"""Tests for Algorithms 3-4: scatter and gather with pe_msgs/pe_disp."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives.scatter import adjusted_displacements
from repro.errors import CollectiveArgumentError

from .helpers import run_gather, run_machine, run_scatter


def dense_layout(msgs):
    """Contiguous displacements for the given counts."""
    return [sum(msgs[:i]) for i in range(len(msgs))]


class TestAdjustedDisplacements:
    def test_root_zero_is_prefix_sum(self):
        assert adjusted_displacements([2, 3, 1], 0) == [0, 2, 5, 6]

    def test_nonzero_root_reorders_by_virtual_rank(self):
        """The paper's example: with root 4 of 7, virtual order is
        logical 4,5,6,0,1,2,3."""
        msgs = [10, 11, 12, 13, 14, 15, 16]
        adj = adjusted_displacements(msgs, 4)
        # Segment sizes in virtual order:
        sizes = [adj[i + 1] - adj[i] for i in range(7)]
        assert sizes == [14, 15, 16, 10, 11, 12, 13]

    def test_total(self):
        assert adjusted_displacements([1, 2, 3], 1)[-1] == 6


class TestScatter:
    @pytest.mark.parametrize("n_pes", [1, 2, 3, 4, 7, 8])
    def test_equal_counts(self, n_pes):
        msgs = [3] * n_pes
        disp = dense_layout(msgs)
        src = np.arange(3 * n_pes, dtype=np.int64) * 5
        results = run_scatter(n_pes, msgs, disp, 0, np.dtype(np.int64), src)
        for pe, got in enumerate(results):
            assert np.array_equal(got, src[disp[pe]:disp[pe] + 3])

    def test_distinct_counts(self):
        """The pe_msgs versatility: a different count per PE."""
        msgs = [1, 4, 0, 2]
        disp = dense_layout(msgs)
        src = np.arange(7, dtype=np.int64) + 100
        results = run_scatter(4, msgs, disp, 0, np.dtype(np.int64), src)
        assert np.array_equal(results[0], [100])
        assert np.array_equal(results[1], [101, 102, 103, 104])
        assert results[2].size == 0
        assert np.array_equal(results[3], [105, 106])

    @pytest.mark.parametrize("root", [0, 1, 4, 6])
    def test_nonzero_root_noncontiguous_case(self, root):
        """The exact scenario of section 4.5: with a non-zero root the
        virtual-rank segments are non-contiguous in src, and the
        adj_disp reordering must still deliver the right pieces."""
        n = 7
        msgs = [i + 1 for i in range(n)]
        disp = dense_layout(msgs)
        src = np.arange(sum(msgs), dtype=np.int64)
        results = run_scatter(n, msgs, disp, root, np.dtype(np.int64), src)
        for pe, got in enumerate(results):
            want = src[disp[pe]:disp[pe] + msgs[pe]]
            assert np.array_equal(got, want), f"pe {pe}"

    def test_scattered_displacements(self):
        """pe_disp need not be dense or ordered."""
        msgs = [2, 2]
        disp = [4, 0]  # PE0's data sits after PE1's in src
        src = np.array([10, 11, 99, 99, 20, 21], dtype=np.int64)
        results = run_scatter(2, msgs, disp, 0, np.dtype(np.int64), src)
        assert np.array_equal(results[0], [20, 21])
        assert np.array_equal(results[1], [10, 11])

    @pytest.mark.parametrize("msgs,disp,nelems,needle", [
        ([1], [0], 1, "pe_msgs"),            # wrong length
        ([2, 3], [0, 2], 4, "nelems"),       # sum(pe_msgs) != nelems
        ([-1, 5], [0, 0], 4, "negative"),    # negative count
        ([2, 2], [0, -1], 4, "negative"),    # negative displacement
    ])
    def test_validation(self, msgs, disp, nelems, needle):
        from repro.collectives.scatter import _validate

        with pytest.raises(CollectiveArgumentError, match=needle):
            _validate(msgs, disp, nelems, 2, "scatter")


class TestGather:
    @pytest.mark.parametrize("n_pes", [1, 2, 3, 4, 7, 8])
    def test_equal_counts(self, n_pes):
        msgs = [2] * n_pes
        disp = dense_layout(msgs)
        per_pe = [np.array([pe * 10, pe * 10 + 1]) for pe in range(n_pes)]
        results = run_gather(n_pes, msgs, disp, 0, np.dtype(np.int64), per_pe)
        want = np.concatenate(per_pe)
        assert np.array_equal(results[0], want)

    def test_distinct_counts(self):
        msgs = [2, 0, 3, 1]
        disp = dense_layout(msgs)
        per_pe = [np.arange(m) + pe * 100 for pe, m in enumerate(msgs)]
        results = run_gather(4, msgs, disp, 0, np.dtype(np.int64), per_pe)
        want = np.concatenate([p for p in per_pe if p.size])
        assert np.array_equal(results[0], want)

    @pytest.mark.parametrize("root", [0, 3, 5])
    def test_nonzero_roots(self, root):
        n = 6
        msgs = [(i % 3) + 1 for i in range(n)]
        disp = dense_layout(msgs)
        per_pe = [np.arange(m) + pe * 50 for pe, m in enumerate(msgs)]
        results = run_gather(n, msgs, disp, root, np.dtype(np.int64), per_pe)
        want = np.concatenate(per_pe)
        assert np.array_equal(results[root], want)

    def test_gather_then_scatter_roundtrip(self):
        """scatter(gather(x)) == x."""
        def body(ctx):
            ctx.init()
            me, n = ctx.my_pe(), ctx.num_pes()
            msgs = [i + 1 for i in range(n)]
            disp = [sum(msgs[:i]) for i in range(n)]
            total = sum(msgs)
            mine = np.arange(msgs[me]) + me * 1000
            src = ctx.malloc(8 * max(msgs))
            mid = ctx.malloc(8 * total)
            back = ctx.private_malloc(8 * max(msgs))
            ctx.view(src, "long", msgs[me])[:] = mine
            ctx.long_gather(mid, src, msgs, disp, total, 0)
            ctx.long_scatter(back, mid, msgs, disp, total, 0)
            ok = bool(np.array_equal(ctx.view(back, "long", msgs[me]), mine))
            ctx.close()
            return ok

        assert all(run_machine(5, body))


class TestProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        n_pes=st.integers(1, 6),
        seed=st.integers(0, 10_000),
        data=st.data(),
    )
    def test_scatter_oracle(self, n_pes, seed, data):
        root = data.draw(st.integers(0, n_pes - 1))
        rng = np.random.default_rng(seed)
        msgs = [int(x) for x in rng.integers(0, 6, size=n_pes)]
        if sum(msgs) == 0:
            msgs[0] = 1
        disp = dense_layout(msgs)
        src = rng.integers(-(2 ** 40), 2 ** 40, size=sum(msgs))
        results = run_scatter(n_pes, msgs, disp, root, np.dtype(np.int64), src)
        for pe, got in enumerate(results):
            assert np.array_equal(got, src[disp[pe]:disp[pe] + msgs[pe]])

    @settings(max_examples=15, deadline=None)
    @given(
        n_pes=st.integers(1, 6),
        seed=st.integers(0, 10_000),
        data=st.data(),
    )
    def test_gather_oracle(self, n_pes, seed, data):
        root = data.draw(st.integers(0, n_pes - 1))
        rng = np.random.default_rng(seed)
        msgs = [int(x) for x in rng.integers(0, 6, size=n_pes)]
        if sum(msgs) == 0:
            msgs[-1] = 2
        disp = dense_layout(msgs)
        per_pe = [rng.integers(-(2 ** 40), 2 ** 40, size=m) for m in msgs]
        results = run_gather(n_pes, msgs, disp, root, np.dtype(np.int64),
                             per_pe)
        want = np.concatenate([p for p in per_pe]) if sum(msgs) else None
        got = results[root]
        assert np.array_equal(got[:sum(msgs)], want)
