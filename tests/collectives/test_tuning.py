"""Tests for the dynamic algorithm-selection layer (section 4.1)."""

from __future__ import annotations

import pytest

from repro.collectives.tuning import (
    DEFAULT_POLICY,
    SelectionPolicy,
    select_algorithm,
)
from repro.errors import CollectiveArgumentError


class TestSelection:
    def test_tiny_pe_counts_use_linear(self):
        assert select_algorithm("broadcast", 10 ** 6, 2) == "linear"
        assert select_algorithm("reduce", 8, 1) == "linear"

    def test_small_messages_use_linear(self):
        """One-sided fire-and-forget puts favour the pipelined linear
        scheme for small payloads (this repo's measured crossover)."""
        assert select_algorithm("broadcast", 512, 8) == "linear"

    def test_medium_messages_use_binomial(self):
        assert select_algorithm("broadcast", 1 << 16, 8) == "binomial"
        assert select_algorithm("reduce", 1 << 20, 8) == "binomial"

    def test_huge_pe_count_never_linear(self):
        assert select_algorithm("broadcast", 64, 64) == "binomial"

    def test_huge_broadcasts_use_pipelined_ring(self):
        big = 2 << 20
        assert select_algorithm("broadcast", big, 8, "ring") == "ring"
        assert select_algorithm("broadcast", big, 8,
                                "fully-connected") == "ring"
        # ...but not with too few PEs to pipeline across.
        assert select_algorithm("broadcast", big, 3) == "binomial"

    def test_reduce_never_ring(self):
        assert select_algorithm("reduce", 2 << 20, 8, "ring") == "binomial"

    def test_huge_pe_count_medium_payload_binomial(self):
        assert select_algorithm("broadcast", 8 * 1024, 64) == "binomial"

    def test_custom_policy(self):
        policy = SelectionPolicy(linear_max_bytes=0, linear_max_pes=0)
        assert select_algorithm("broadcast", 8, 4, policy=policy) == "binomial"

    def test_unknown_collective(self):
        with pytest.raises(CollectiveArgumentError):
            select_algorithm("alltoallw", 8, 4)

    def test_invalid_sizes(self):
        with pytest.raises(CollectiveArgumentError):
            select_algorithm("broadcast", -1, 4)
        with pytest.raises(CollectiveArgumentError):
            select_algorithm("broadcast", 8, 0)

    def test_default_policy_is_consistent(self):
        assert DEFAULT_POLICY.linear_max_pes < DEFAULT_POLICY.linear_pe_limit

    def test_single_pe(self):
        """Degenerate 1-PE 'collectives' are local copies — linear,
        whatever the payload."""
        assert select_algorithm("broadcast", 0, 1) == "linear"
        assert select_algorithm("broadcast", 1 << 30, 1) == "linear"
        assert select_algorithm("reduce", 1 << 30, 1) == "linear"

    def test_zero_byte_payloads(self):
        """nbytes=0 is legal (empty collectives still synchronise)."""
        assert select_algorithm("broadcast", 0, 2) == "linear"
        assert select_algorithm("broadcast", 0, 8) == "linear"
        assert select_algorithm("reduce", 0, 8) == "linear"
        # The PE-count rules still dominate an empty payload.
        assert select_algorithm("broadcast", 0, 64) == "binomial"

    def test_linear_byte_threshold_boundary(self):
        """linear_max_bytes is inclusive: the crossover payload itself
        still picks linear; one byte more tips to binomial."""
        at = DEFAULT_POLICY.linear_max_bytes
        assert select_algorithm("broadcast", at, 8) == "linear"
        assert select_algorithm("broadcast", at + 1, 8) == "binomial"
        assert select_algorithm("reduce", at, 8) == "linear"
        assert select_algorithm("reduce", at + 1, 8) == "binomial"

    def test_linear_pe_boundaries(self):
        """linear_max_pes and linear_pe_limit are both inclusive."""
        at_pes = DEFAULT_POLICY.linear_max_pes
        big = 1 << 20
        assert select_algorithm("broadcast", big, at_pes) == "linear"
        assert select_algorithm("broadcast", big, at_pes + 1) == "binomial"
        limit = DEFAULT_POLICY.linear_pe_limit
        small = DEFAULT_POLICY.linear_max_bytes
        assert select_algorithm("broadcast", small, limit) == "linear"
        assert select_algorithm("broadcast", small, limit + 1) == "binomial"

    def test_ring_boundaries(self):
        """ring_min_bytes / ring_min_pes are inclusive lower bounds."""
        at = DEFAULT_POLICY.ring_min_bytes
        pes = DEFAULT_POLICY.ring_min_pes
        assert select_algorithm("broadcast", at, pes) == "ring"
        assert select_algorithm("broadcast", at - 1, pes) == "binomial"
        assert select_algorithm("broadcast", at, pes - 1) == "binomial"


class TestAllreduceSelection:
    def test_small_payloads_use_doubling(self):
        at = DEFAULT_POLICY.allreduce_large_bytes
        assert select_algorithm("allreduce", at - 1, 8) == "doubling"
        assert select_algorithm("allreduce", 0, 13) == "doubling"

    def test_tiny_groups_use_doubling(self):
        assert select_algorithm("allreduce", 1 << 24, 2) == "doubling"
        assert select_algorithm("allreduce", 1 << 24, 1) == "doubling"

    def test_large_power_of_two_uses_rabenseifner(self):
        at = DEFAULT_POLICY.allreduce_large_bytes
        assert select_algorithm("allreduce", at, 8) == "rabenseifner"
        assert select_algorithm("allreduce", 1 << 24, 16) == "rabenseifner"

    def test_large_non_power_of_two_uses_ring(self):
        """The ring pays no power-of-two fold penalty (measured in
        ``bench_ablation_algorithms.py``)."""
        at = DEFAULT_POLICY.allreduce_large_bytes
        assert select_algorithm("allreduce", at, 6) == "ring"
        assert select_algorithm("allreduce", 1 << 24, 12) == "ring"

    def test_mid_band_non_pof2_uses_dual_pipelined(self):
        """Off power-of-two in the 32..63 PE band, the pipelined
        dual-root trees beat the ring's 2·(N-1) rounds (measured in
        ``BENCH_pipeline.json``)."""
        at = DEFAULT_POLICY.allreduce_large_bytes
        assert select_algorithm("allreduce", at, 33) == "dual-pipelined"
        assert select_algorithm("allreduce", 1 << 20, 48) == "dual-pipelined"

    def test_huge_non_pof2_returns_to_rabenseifner(self):
        """Past the band the Rabenseifner fold amortises even off
        power-of-two."""
        assert select_algorithm("allreduce", 1 << 20, 96) == "rabenseifner"
        assert select_algorithm("allreduce", 1 << 20, 100) == "rabenseifner"

    def test_pipelined_never_picked_for_small_payloads(self):
        at = DEFAULT_POLICY.allreduce_large_bytes
        assert select_algorithm("allreduce", at - 1, 33) == "doubling"


#: Every crossover in ``SelectionPolicy``, probed exactly at the
#: boundary and one step to either side (bytes and PE counts), for
#: power-of-two and non-power-of-two group sizes.  The table is the
#: spec: a threshold change that silently moves a crossover fails here
#: with the offending row in the test id.
_P = DEFAULT_POLICY
_CROSSOVER_TABLE = [
    # -- broadcast: linear_max_bytes at the 8-PE operating point
    ("broadcast", _P.linear_max_bytes - 1, 8, "linear"),
    ("broadcast", _P.linear_max_bytes, 8, "linear"),
    ("broadcast", _P.linear_max_bytes + 1, 8, "binomial"),
    # -- broadcast: linear_max_pes (trivial groups are always linear)
    ("broadcast", 1 << 20, _P.linear_max_pes, "linear"),
    ("broadcast", 1 << 20, _P.linear_max_pes + 1, "binomial"),
    # -- broadcast: linear_pe_limit at a small payload
    ("broadcast", _P.linear_max_bytes, _P.linear_pe_limit, "linear"),
    ("broadcast", _P.linear_max_bytes, _P.linear_pe_limit + 1, "binomial"),
    # -- broadcast: ring_min_bytes × ring_min_pes corner
    ("broadcast", _P.ring_min_bytes - 1, _P.ring_min_pes, "binomial"),
    ("broadcast", _P.ring_min_bytes, _P.ring_min_pes, "ring"),
    ("broadcast", _P.ring_min_bytes, _P.ring_min_pes - 1, "binomial"),
    ("broadcast", _P.ring_min_bytes, _P.ring_min_pes + 1, "ring"),
    ("broadcast", _P.ring_min_bytes, 33, "ring"),   # ring beats pe_limit
    # -- reduce: same linear boundaries, but never ring
    ("reduce", _P.linear_max_bytes, 8, "linear"),
    ("reduce", _P.linear_max_bytes + 1, 8, "binomial"),
    ("reduce", _P.ring_min_bytes, 8, "binomial"),
    ("reduce", 1 << 20, _P.linear_max_pes, "linear"),
    ("reduce", 1 << 20, _P.linear_max_pes + 1, "binomial"),
    # -- allreduce: small/large payload crossover, pof2 group
    ("allreduce", _P.allreduce_large_bytes - 1, 8, "doubling"),
    ("allreduce", _P.allreduce_large_bytes, 8, "rabenseifner"),
    # -- allreduce: same crossover, non-pof2 group → ring past it
    ("allreduce", _P.allreduce_large_bytes - 1, 6, "doubling"),
    ("allreduce", _P.allreduce_large_bytes, 6, "ring"),
    ("allreduce", _P.allreduce_large_bytes, 7, "ring"),
    # -- allreduce: the n<=2 override beats any payload
    ("allreduce", 1 << 24, 2, "doubling"),
    ("allreduce", 1 << 24, 3, "ring"),
    ("allreduce", 1 << 24, 4, "rabenseifner"),
    # -- allreduce: the dual-pipelined band [min_pes, max_pes) off
    #    power-of-two (31/33/63/65 straddle the 32 and 64 boundaries
    #    with non-pof2 probes; the pof2 values themselves fold to
    #    Rabenseifner regardless)
    ("allreduce", 1 << 20, _P.allreduce_pipelined_min_pes - 1, "ring"),
    ("allreduce", 1 << 20, _P.allreduce_pipelined_min_pes + 1,
     "dual-pipelined"),
    ("allreduce", 1 << 20, _P.allreduce_pipelined_min_pes, "rabenseifner"),
    ("allreduce", 1 << 20, _P.allreduce_pipelined_max_pes - 1,
     "dual-pipelined"),
    ("allreduce", 1 << 20, _P.allreduce_pipelined_max_pes + 1,
     "rabenseifner"),
    ("allreduce", _P.allreduce_large_bytes - 1,
     _P.allreduce_pipelined_min_pes + 1, "doubling"),
    # -- allgather: dissemination_min_pes boundary, payload-independent
    #    (past it the dest-direct PAT schedule wins at every measured
    #    payload, so the compiled choice is "pat")
    ("allgather", 8, _P.allgather_dissemination_min_pes - 1, "tree"),
    ("allgather", 8, _P.allgather_dissemination_min_pes, "pat"),
    ("allgather", 1 << 20, _P.allgather_dissemination_min_pes - 1, "tree"),
    ("allgather", 1 << 20, _P.allgather_dissemination_min_pes, "pat"),
    # -- reduce_scatter: pat_min_pes boundary, pof2 and non-pof2
    ("reduce_scatter", 1 << 20, _P.reduce_scatter_pat_min_pes - 1, "ring"),
    ("reduce_scatter", 1 << 20, _P.reduce_scatter_pat_min_pes, "pat"),
    ("reduce_scatter", 8, _P.reduce_scatter_pat_min_pes, "pat"),
    ("reduce_scatter", 1 << 20, _P.reduce_scatter_pat_min_pes + 9, "pat"),
]


class TestCrossoverTable:
    @pytest.mark.parametrize(
        "op,nbytes,n_pes,expected", _CROSSOVER_TABLE,
        ids=[f"{op}-{nbytes}B-{n}pes" for op, nbytes, n, _
             in _CROSSOVER_TABLE])
    def test_boundary(self, op, nbytes, n_pes, expected):
        assert select_algorithm(op, nbytes, n_pes) == expected

    def test_every_choice_is_a_supported_algorithm(self):
        """The table only ever names algorithms the compilers accept."""
        from repro.collectives.tuning import _SUPPORTED

        for op, _, _, expected in _CROSSOVER_TABLE:
            assert expected in _SUPPORTED[op], (op, expected)

    def test_table_covers_every_policy_field(self):
        """Adding a threshold to SelectionPolicy without extending the
        table is an error — the crossover would ship unpinned."""
        import dataclasses

        assert {f.name for f in dataclasses.fields(SelectionPolicy)} == {
            "linear_max_bytes", "linear_max_pes", "linear_pe_limit",
            "ring_min_bytes", "ring_min_pes", "allreduce_large_bytes",
            "allreduce_pipelined_min_pes", "allreduce_pipelined_max_pes",
            "allgather_dissemination_min_pes", "reduce_scatter_pat_min_pes",
        }, "new SelectionPolicy field: add its boundary rows to the table"


class TestAllgatherSelection:
    def test_small_groups_use_tree(self):
        pes = DEFAULT_POLICY.allgather_dissemination_min_pes
        assert select_algorithm("allgather", 1 << 20, pes - 1) == "tree"

    def test_larger_groups_use_pat(self):
        """Past the tree cutoff the dest-direct PAT schedule wins at
        every measured payload (it skips the dissemination variant's
        per-rank unrotate copy)."""
        pes = DEFAULT_POLICY.allgather_dissemination_min_pes
        assert select_algorithm("allgather", 8, pes) == "pat"
        assert select_algorithm("allgather", 1 << 20, 16) == "pat"


class TestReduceScatterSelection:
    def test_small_groups_use_ring(self):
        pes = DEFAULT_POLICY.reduce_scatter_pat_min_pes
        assert select_algorithm("reduce_scatter", 1 << 20, pes - 1) == "ring"

    def test_larger_groups_use_pat(self):
        pes = DEFAULT_POLICY.reduce_scatter_pat_min_pes
        assert select_algorithm("reduce_scatter", 8, pes) == "pat"
        assert select_algorithm("reduce_scatter", 1 << 20, 64) == "pat"
