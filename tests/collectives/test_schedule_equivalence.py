"""Compiled schedules must be bit-identical to the legacy tree walks.

PR 4 replaced the inline collective implementations with compiled
schedules; :mod:`tests.collectives.legacy_reference` froze the old code
verbatim.  These property tests run each collective twice — once through
the frozen legacy implementation, once through the compiled path — on
two machines with identical configuration and inputs, and require the
two runs to agree on *everything observable*:

* every PE's output buffer, element for element;
* the statistics counters (puts/gets, bytes moved, remote transfer
  counts, barriers, per-algorithm collective-call tallies);
* the recorded span events — same order, same PEs, same
  ``collective:``/``stage:`` tags, same attribute payloads, same start
  times and durations;
* the simulated makespan.

Hypothesis drives group sizes 1–16 (either side of every power of two),
all roots, random element counts, strides, reduction ops and — for the
vector collectives — random ragged counts/displacements including
zero-count PEs.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.runtime import Machine
from repro.types import dtype_of

from ..conftest import small_config
from . import legacy_reference as legacy

_SETTINGS = settings(max_examples=15, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])

_TYPENAMES = ("long", "int", "double", "float")

#: Small non-negative integers are exact in every dtype above, so the
#: fold order can never introduce rounding differences.
_MAX_VAL = 7


def _values(seed, shape, dtype):
    rng = np.random.default_rng(seed)
    return rng.integers(0, _MAX_VAL + 1, size=shape).astype(dtype)


def _observe(n_pes, body):
    """Run ``body`` on a fresh traced machine; return all observables."""
    machine = Machine(small_config(n_pes), trace=True)
    outputs = machine.run(body)
    st_ = machine.stats
    stats = {
        "puts": st_.puts,
        "gets": st_.gets,
        "bytes_put": st_.bytes_put,
        "bytes_got": st_.bytes_got,
        "remote_puts": st_.remote_puts,
        "remote_gets": st_.remote_gets,
        "barriers": st_.barriers,
        "collective_calls": dict(st_.collective_calls),
    }
    spans = [
        (e.time_ns, e.pe, e.detail, e.dur_ns,
         tuple((e.attrs or {}).items()))
        for e in machine.engine.trace.spans()
    ]
    return outputs, stats, spans, machine.elapsed_ns


def _assert_identical(n_pes, body_legacy, body_new):
    out_l, stats_l, spans_l, t_l = _observe(n_pes, body_legacy)
    out_n, stats_n, spans_n, t_n = _observe(n_pes, body_new)
    for pe, (gl, gn) in enumerate(zip(out_l, out_n)):
        assert np.array_equal(gl, gn), f"PE {pe} output differs"
    assert stats_n == stats_l
    assert spans_n == spans_l
    assert t_n == t_l


@st.composite
def _cases(draw, *, need_op=False, max_stride=2, min_pes=1):
    n_pes = draw(st.integers(min_pes, 16))
    case = {
        "n_pes": n_pes,
        "root": draw(st.integers(0, n_pes - 1)),
        "typename": draw(st.sampled_from(_TYPENAMES)),
        "nelems": draw(st.integers(0, 6)),
        "stride": draw(st.integers(1, max_stride)),
        "seed": draw(st.integers(0, 2**32 - 1)),
    }
    if need_op:
        case["op"] = draw(st.sampled_from(["sum", "min", "max"]))
    return case


def _span_nbytes(nelems, stride, dt):
    return max(dt.itemsize * ((max(nelems, 1) - 1) * stride + 1), 16)


# -- dense collectives -----------------------------------------------------


def _dense_body(call, dt, nelems, stride, fill_src):
    """Shared harness: allocate, fill src, run ``call``, read dest.

    Both buffers come from the symmetric heap so one harness satisfies
    every collective's symmetry requirement (broadcast wants ``dest``
    symmetric, the reductions want ``src``).
    """
    nbytes = _span_nbytes(nelems, stride, dt)

    def body(ctx):
        ctx.init()
        dest = ctx.malloc(nbytes)
        src = ctx.malloc(nbytes)
        ctx.view(dest, dt, nelems, stride)[:] = 0
        fill_src(ctx, dest, src)
        call(ctx, dest, src)
        got = np.array(ctx.view(dest, dt, nelems, stride), copy=True)
        ctx.close()
        return got

    return body


@given(case=_cases(),
       algorithm=st.sampled_from(["binomial", "linear", "ring"]))
@_SETTINGS
def test_broadcast_equivalence(case, algorithm):
    dt = dtype_of(case["typename"])
    nelems, stride, root = case["nelems"], case["stride"], case["root"]
    data = _values(case["seed"], nelems, dt)

    def fill(ctx, dest, src):
        if ctx.my_pe() == root:
            ctx.view(src, dt, nelems, stride)[:] = data

    def make(fn):
        def call(ctx, dest, src):
            fn(ctx, dest, src, nelems, stride, root, dt,
               algorithm=algorithm)
        return _dense_body(call, dt, nelems, stride, fill)

    from repro.collectives.broadcast import broadcast

    _assert_identical(case["n_pes"], make(legacy.legacy_broadcast),
                      make(broadcast))


@given(case=_cases(need_op=True),
       algorithm=st.sampled_from(["binomial", "linear"]))
@_SETTINGS
def test_reduce_equivalence(case, algorithm):
    dt = dtype_of(case["typename"])
    nelems, stride, root, op = (case["nelems"], case["stride"],
                                case["root"], case["op"])
    data = _values(case["seed"], (case["n_pes"], nelems), dt)

    def fill(ctx, dest, src):
        ctx.view(src, dt, nelems, stride)[:] = data[ctx.my_pe()]

    def make(fn):
        def call(ctx, dest, src):
            fn(ctx, dest, src, nelems, stride, root, op, dt,
               algorithm=algorithm)
        return _dense_body(call, dt, nelems, stride, fill)

    from repro.collectives.reduce import reduce

    _assert_identical(case["n_pes"], make(legacy.legacy_reduce),
                      make(reduce))


@given(case=_cases(need_op=True),
       algorithm=st.sampled_from(["doubling", "rabenseifner"]))
@_SETTINGS
def test_allreduce_equivalence(case, algorithm):
    dt = dtype_of(case["typename"])
    nelems, stride, op = case["nelems"], case["stride"], case["op"]
    data = _values(case["seed"], (case["n_pes"], nelems), dt)

    def fill(ctx, dest, src):
        ctx.view(src, dt, nelems, stride)[:] = data[ctx.my_pe()]

    def make(fn):
        def call(ctx, dest, src):
            fn(ctx, dest, src, nelems, stride, op, dt, algorithm=algorithm)
        return _dense_body(call, dt, nelems, stride, fill)

    from repro.collectives.allreduce import allreduce

    _assert_identical(case["n_pes"], make(legacy.legacy_allreduce),
                      make(allreduce))


@given(case=_cases(need_op=True), inclusive=st.booleans())
@_SETTINGS
def test_scan_equivalence(case, inclusive):
    dt = dtype_of(case["typename"])
    nelems, stride, op = case["nelems"], case["stride"], case["op"]
    data = _values(case["seed"], (case["n_pes"], nelems), dt)

    def fill(ctx, dest, src):
        ctx.view(src, dt, nelems, stride)[:] = data[ctx.my_pe()]

    def make(fn):
        def call(ctx, dest, src):
            fn(ctx, dest, src, nelems, stride, op, dt, inclusive=inclusive)
        return _dense_body(call, dt, nelems, stride, fill)

    from repro.collectives.scan import scan

    _assert_identical(case["n_pes"], make(legacy.legacy_scan), make(scan))


@given(case=_cases(need_op=True, max_stride=1))
@_SETTINGS
def test_reduce_all_alias_equivalence(case):
    """``ctx.reduce_all`` is a deprecated alias of ``ctx.allreduce``:
    byte-identical results, plus the :class:`DeprecationWarning`."""
    import warnings

    dt = dtype_of(case["typename"])
    nelems, op = case["nelems"], case["op"]
    data = _values(case["seed"], (case["n_pes"], nelems), dt)
    nbytes = _span_nbytes(nelems, 1, dt)

    def make(use_alias):
        def body(ctx):
            ctx.init()
            src = ctx.malloc(nbytes)
            dest = ctx.malloc(nbytes)
            ctx.view(src, dt, nelems, 1)[:] = data[ctx.my_pe()]
            ctx.view(dest, dt, nelems, 1)[:] = 0
            if use_alias:
                with warnings.catch_warnings(record=True) as caught:
                    warnings.simplefilter("always")
                    ctx.reduce_all(dest, src, nelems, 1, op, dt)
                assert any(issubclass(w.category, DeprecationWarning)
                           for w in caught)
            else:
                ctx.allreduce(dest, src, nelems, 1, op, dt,
                              algorithm="doubling")
            got = np.array(ctx.view(dest, dt, nelems, 1), copy=True)
            ctx.close()
            return got
        return body

    _assert_identical(case["n_pes"], make(True), make(False))


# -- vector collectives (ragged counts, zero-count PEs) --------------------


@st.composite
def _ragged_cases(draw):
    n_pes = draw(st.integers(1, 16))
    counts = draw(st.lists(st.integers(0, 4), min_size=n_pes,
                           max_size=n_pes))
    disps, off = [], 0
    for c in counts:
        disps.append(off)
        off += c
    if draw(st.booleans()) and n_pes > 1:
        # Shuffled, gapped layout: displacements need not be packed.
        extra = draw(st.integers(0, 3))
        disps = [d + i * 0 + extra for i, d in enumerate(disps)]
    return {
        "n_pes": n_pes,
        "root": draw(st.integers(0, n_pes - 1)),
        "typename": draw(st.sampled_from(_TYPENAMES)),
        "counts": counts,
        "disps": disps,
        "seed": draw(st.integers(0, 2**32 - 1)),
    }


def _vector_extent(counts, disps):
    return max((d + c for d, c in zip(disps, counts)), default=0)


@given(case=_ragged_cases())
@_SETTINGS
def test_scatter_equivalence(case):
    dt = dtype_of(case["typename"])
    n_pes, root = case["n_pes"], case["root"]
    counts, disps = case["counts"], case["disps"]
    nelems = sum(counts)
    extent = _vector_extent(counts, disps)
    data = _values(case["seed"], extent, dt)

    def make(fn):
        def body(ctx):
            ctx.init()
            me = ctx.my_pe()
            src = ctx.malloc(max(extent * dt.itemsize, 16))
            dest = ctx.private_malloc(max(max(counts, default=0), 1)
                                      * dt.itemsize + 16)
            if me == root:
                ctx.view(src, dt, extent)[:] = data
            fn(ctx, dest, src, counts, disps, nelems, root, dt)
            got = np.array(ctx.view(dest, dt, counts[me]), copy=True)
            ctx.close()
            return got
        return body

    from repro.collectives.scatter import scatter

    _assert_identical(n_pes, make(legacy.legacy_scatter), make(scatter))


@given(case=_ragged_cases())
@_SETTINGS
def test_gather_equivalence(case):
    dt = dtype_of(case["typename"])
    n_pes, root = case["n_pes"], case["root"]
    counts, disps = case["counts"], case["disps"]
    nelems = sum(counts)
    extent = _vector_extent(counts, disps)

    def make(fn):
        def body(ctx):
            ctx.init()
            me = ctx.my_pe()
            src = ctx.malloc(max(max(counts, default=0), 1)
                             * dt.itemsize + 16)
            dest = ctx.private_malloc(max(extent * dt.itemsize, 16))
            ctx.view(dest, dt, extent)[:] = 0
            ctx.view(src, dt, counts[me])[:] = \
                _values(case["seed"] + me, counts[me], dt)
            fn(ctx, dest, src, counts, disps, nelems, root, dt)
            got = np.array(ctx.view(dest, dt, extent), copy=True)
            ctx.close()
            return got
        return body

    from repro.collectives.gather import gather

    _assert_identical(n_pes, make(legacy.legacy_gather), make(gather))


@given(case=_ragged_cases())
@_SETTINGS
def test_allgather_tree_equivalence(case):
    """The default ``tree`` composition must match the legacy one."""
    dt = dtype_of(case["typename"])
    n_pes = case["n_pes"]
    counts = case["counts"]
    disps, off = [], 0
    for c in counts:  # tree allgather broadcasts the packed dest
        disps.append(off)
        off += c
    nelems = sum(counts)
    extent = _vector_extent(counts, disps)

    def make(fn):
        def body(ctx):
            ctx.init()
            me = ctx.my_pe()
            src = ctx.malloc(max(max(counts, default=0), 1)
                             * dt.itemsize + 16)
            dest = ctx.malloc(max(extent * dt.itemsize, 16))
            ctx.view(dest, dt, extent)[:] = 0
            ctx.view(src, dt, counts[me])[:] = \
                _values(case["seed"] + me, counts[me], dt)
            fn(ctx, dest, src, counts, disps, nelems, dt)
            got = np.array(ctx.view(dest, dt, extent), copy=True)
            ctx.close()
            return got
        return body

    from repro.collectives.extra import allgather

    _assert_identical(n_pes, make(legacy.legacy_allgather), make(allgather))


@given(n_pes=st.integers(1, 16), nelems_per_pe=st.integers(0, 4),
       typename=st.sampled_from(_TYPENAMES),
       seed=st.integers(0, 2**32 - 1))
@_SETTINGS
def test_alltoall_equivalence(n_pes, nelems_per_pe, typename, seed):
    dt = dtype_of(typename)
    total = n_pes * nelems_per_pe
    data = _values(seed, (n_pes, total), dt)

    def make(fn):
        def body(ctx):
            ctx.init()
            me = ctx.my_pe()
            nbytes = max(total * dt.itemsize, 16)
            src = ctx.malloc(nbytes)
            dest = ctx.malloc(nbytes)
            ctx.view(dest, dt, total)[:] = 0
            ctx.view(src, dt, total)[:] = data[me]
            fn(ctx, dest, src, nelems_per_pe, dt)
            got = np.array(ctx.view(dest, dt, total), copy=True)
            ctx.close()
            return got
        return body

    from repro.collectives.extra import alltoall

    _assert_identical(n_pes, make(legacy.legacy_alltoall), make(alltoall))


# -- algorithm differentials (no legacy twin: algorithms must agree) -------
#
# The PAT schedules have no frozen legacy reference, so their oracle is
# the *other* algorithm for the same collective: on every
# hypothesis-drawn irregular shape (non-power-of-two groups, ragged
# counts, zero-count PEs) the dest bytes must match element for element
# — including with the payload pipelined over several segments.


def _assert_same_output(n_pes, body_a, body_b, label):
    out_a = Machine(small_config(n_pes)).run(body_a)
    out_b = Machine(small_config(n_pes)).run(body_b)
    for pe, (ga, gb) in enumerate(zip(out_a, out_b)):
        assert np.array_equal(ga, gb), f"{label}: PE {pe} differs"


@given(case=_ragged_cases(), segments=st.integers(1, 5))
@_SETTINGS
def test_allgather_pat_matches_dissemination(case, segments):
    """Dest-direct PAT allgather ≡ dissemination on irregular shapes."""
    dt = dtype_of(case["typename"])
    n_pes = case["n_pes"]
    counts, disps = case["counts"], case["disps"]
    nelems = sum(counts)
    extent = _vector_extent(counts, disps)

    def make(algorithm):
        def body(ctx):
            ctx.init()
            me = ctx.my_pe()
            src = ctx.malloc(max(max(counts, default=0), 1)
                             * dt.itemsize + 16)
            dest = ctx.malloc(max(extent * dt.itemsize, 16))
            ctx.view(dest, dt, extent)[:] = 0
            ctx.view(src, dt, counts[me])[:] = \
                _values(case["seed"] + me, counts[me], dt)
            ctx.allgather(dest, src, counts, disps, nelems, dt,
                          algorithm=algorithm, segments=segments)
            got = np.array(ctx.view(dest, dt, extent), copy=True)
            ctx.close()
            return got
        return body

    _assert_same_output(n_pes, make("dissemination"), make("pat"),
                        f"allgather pat segments={segments}")


@given(case=_ragged_cases(), segments=st.integers(1, 5),
       op=st.sampled_from(["sum", "min", "max"]))
@_SETTINGS
def test_reduce_scatter_pat_matches_ring(case, segments, op):
    """PAT reduce-scatter ≡ ring on irregular shapes, any segments."""
    dt = dtype_of(case["typename"])
    n_pes = case["n_pes"]
    counts, disps = case["counts"], case["disps"]
    nelems = sum(counts)
    extent = _vector_extent(counts, disps)

    def make(algorithm):
        def body(ctx):
            ctx.init()
            me = ctx.my_pe()
            src = ctx.private_malloc(max(extent * dt.itemsize, 16))
            dest = ctx.private_malloc(max(max(counts, default=0), 1)
                                      * dt.itemsize + 16)
            ctx.view(src, dt, extent)[:] = \
                _values(case["seed"] + me, extent, dt)
            ctx.view(dest, dt, counts[me])[:] = 0
            ctx.reduce_scatter(dest, src, counts, disps, nelems, op, dt,
                               algorithm=algorithm, segments=segments)
            got = np.array(ctx.view(dest, dt, counts[me]), copy=True)
            ctx.close()
            return got
        return body

    _assert_same_output(n_pes, make("ring"), make("pat"),
                        f"reduce_scatter pat segments={segments}")
