"""Gossip collectives: exact convergence, with and without message loss.

The acceptance bar for the eventually-consistent layer: under a seeded
5% drop plan with no retry machinery at all, every PE must still hold
the exact broadcast/allreduce result once the default
``2*ceil(log2 n) + 4`` push rounds run out — redundancy (fanout 2 plus
idempotent per-origin merging) absorbs the losses.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.collectives.gossip import (default_rounds, gossip_allreduce,
                                      gossip_broadcast)
from repro.faults import FaultPlan, drop
from repro.runtime.context import Machine

from ..conftest import small_config

_I64 = np.dtype("int64")

#: Fault-plan seeds the suite pins (distinct drop patterns, 59–77 drops
#: per allreduce run at n=8 — convergence is not one lucky draw).
DROP_SEEDS = (7, 1, 2, 3, 11)


def _bcast_prog(ctx, nelems, root, stride):
    ctx.init()
    try:
        me = ctx.my_pe()
        esz = _I64.itemsize
        src = ctx.malloc(esz * max(1, nelems * stride))
        dest = ctx.malloc(esz * max(1, nelems * stride))
        if me == root and nelems:
            ctx.view(src, _I64, nelems, stride)[:] = \
                np.arange(nelems) * 7 + 3
        have = gossip_broadcast(ctx, dest, src, nelems, stride, root,
                                dtype=_I64)
        out = ctx.view(dest, _I64, nelems, stride).copy() if nelems else None
        ctx.free(dest)
        ctx.free(src)
        return have, out
    finally:
        ctx.close()


def _allreduce_prog(ctx, nelems, stride, op):
    ctx.init()
    try:
        me = ctx.my_pe()
        esz = _I64.itemsize
        src = ctx.malloc(esz * max(1, nelems * stride))
        dest = ctx.malloc(esz * max(1, nelems * stride))
        if nelems:
            ctx.view(src, _I64, nelems, stride)[:] = \
                np.arange(nelems) + 100 * me
        merged = gossip_allreduce(ctx, dest, src, nelems, stride, op=op,
                                  dtype=_I64)
        out = ctx.view(dest, _I64, nelems, stride).copy() if nelems else None
        ctx.free(dest)
        ctx.free(src)
        return merged, out
    finally:
        ctx.close()


def test_default_rounds_scale():
    assert default_rounds(1) == 1
    assert default_rounds(2) == 6
    assert default_rounds(8) == 10
    assert default_rounds(9) == 12


class TestReliableConvergence:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8])
    def test_broadcast_exact(self, n):
        results = Machine(small_config(n)).run(
            _bcast_prog, [(6, n - 1, 2)] * n)
        want = np.arange(6) * 7 + 3
        for have, out in results:
            assert have is True
            assert np.array_equal(out, want)

    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8])
    def test_allreduce_exact(self, n):
        results = Machine(small_config(n)).run(
            _allreduce_prog, [(5, 1, "sum")] * n)
        want = np.arange(5) * n + 100 * sum(range(n))
        for merged, out in results:
            assert merged == n
            assert np.array_equal(out, want)

    def test_allreduce_max(self):
        n = 4
        results = Machine(small_config(n)).run(
            _allreduce_prog, [(3, 1, "max")] * n)
        want = np.arange(3) + 100 * (n - 1)
        for merged, out in results:
            assert merged == n
            assert np.array_equal(out, want)

    def test_zero_elements_degenerate(self):
        n = 3
        results = Machine(small_config(n)).run(_bcast_prog, [(0, 0, 1)] * n)
        assert all(have for have, _ in results)


class TestLossyConvergence:
    @pytest.mark.parametrize("seed", DROP_SEEDS)
    def test_broadcast_survives_5pct_drops(self, seed):
        n = 8
        plan = FaultPlan(seed=seed, rules=(drop(probability=0.05),))
        m = Machine(small_config(n), faults=plan)
        results = m.run(_bcast_prog, [(6, 0, 1)] * n)
        want = np.arange(6) * 7 + 3
        for have, out in results:
            assert have is True
            assert np.array_equal(out, want)

    @pytest.mark.parametrize("seed", DROP_SEEDS)
    def test_allreduce_survives_5pct_drops(self, seed):
        n = 8
        plan = FaultPlan(seed=seed, rules=(drop(probability=0.05),))
        m = Machine(small_config(n), faults=plan)
        results = m.run(_allreduce_prog, [(5, 1, "sum")] * n)
        want = np.arange(5) * n + 100 * sum(range(n))
        for merged, out in results:
            assert merged == n  # full origin set: the result is exact
            assert np.array_equal(out, want)
        # The plan genuinely fired — this is convergence under loss,
        # not a run the injector happened to spare.
        assert m.stats.mbx_dropped > 0

    def test_duplicates_are_idempotent(self):
        """Extra rounds (hence many duplicate deliveries) stay exact."""
        n = 4

        def prog(ctx):
            ctx.init()
            try:
                me = ctx.my_pe()
                src = ctx.malloc(_I64.itemsize * 4)
                dest = ctx.malloc(_I64.itemsize * 4)
                ctx.view(src, _I64, 4)[:] = me + 1
                merged = gossip_allreduce(ctx, dest, src, 4, 1,
                                          dtype=_I64, rounds=12)
                out = ctx.view(dest, _I64, 4).copy()
                ctx.free(dest)
                ctx.free(src)
                return merged, out
            finally:
                ctx.close()

        results = Machine(small_config(n)).run(prog)
        for merged, out in results:
            assert merged == n
            assert np.array_equal(out, np.full(4, sum(range(1, n + 1))))
