"""Tests for the deferred non-blocking collectives (paper section 7)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.collectives.nonblocking import (
    CollectiveHandle,
    ibroadcast,
    igather,
    ireduce,
    iscatter,
)
from repro.errors import CollectiveArgumentError

from .helpers import run_machine


class TestNonBlocking:
    def test_ibroadcast(self):
        def body(ctx):
            ctx.init()
            dest = ctx.malloc(8 * 2)
            src = ctx.private_malloc(8 * 2)
            if ctx.my_pe() == 0:
                ctx.view(src, "long", 2)[:] = [5, 6]
            h = ibroadcast(ctx, dest, src, 2, 1, 0, np.dtype(np.int64))
            assert not h.test()
            ctx.compute(100.0)  # overlapped local work
            h.wait()
            assert h.test()
            got = list(ctx.view(dest, "long", 2))
            ctx.close()
            return got

        assert run_machine(4, body) == [[5, 6]] * 4

    def test_ireduce(self):
        def body(ctx):
            ctx.init()
            src = ctx.malloc(8)
            dest = ctx.private_malloc(8)
            ctx.view(src, "long", 1)[0] = ctx.my_pe() + 1
            h = ireduce(ctx, dest, src, 1, 1, 0, "sum", np.dtype(np.int64))
            h.wait()
            got = int(ctx.view(dest, "long", 1)[0]) if ctx.my_pe() == 0 else None
            ctx.close()
            return got

        assert run_machine(4, body)[0] == 10

    def test_iscatter_igather_pipeline(self):
        def body(ctx):
            ctx.init()
            n, me = ctx.num_pes(), ctx.my_pe()
            msgs = [2] * n
            disp = [2 * i for i in range(n)]
            total = 2 * n
            src = ctx.malloc(8 * total)
            mid = ctx.private_malloc(8 * 2)
            out = ctx.malloc(8 * total)
            if me == 0:
                ctx.view(src, "long", total)[:] = np.arange(total)
            h1 = iscatter(ctx, mid, src, msgs, disp, total, 0,
                          np.dtype(np.int64))
            h1.wait()
            back = ctx.malloc(8 * 2)
            ctx.view(back, "long", 2)[:] = ctx.view(mid, "long", 2)
            h2 = igather(ctx, out, back, msgs, disp, total, 0,
                         np.dtype(np.int64))
            h2.wait()
            got = list(ctx.view(out, "long", total)) if me == 0 else None
            ctx.close()
            return got

        results = run_machine(3, body)
        assert results[0] == list(range(6))

    def test_double_wait_is_idempotent(self):
        def body(ctx):
            ctx.init()
            dest = ctx.malloc(8)
            src = ctx.private_malloc(8)
            if ctx.my_pe() == 0:
                ctx.view(src, "long", 1)[0] = 9
            h = ibroadcast(ctx, dest, src, 1, 1, 0, np.dtype(np.int64))
            h.wait()
            t = ctx.pe.clock
            h.wait()  # no further effect
            assert ctx.pe.clock == t
            ctx.barrier()
            ctx.close()

        run_machine(2, body)

    def test_wait_on_never_initiated_handle_raises(self):
        h = CollectiveHandle(name="ibroadcast")
        with pytest.raises(CollectiveArgumentError, match="never-initiated"):
            h.wait()
        # Still waitable-looking afterwards: the error must not mark it done.
        assert not h.test()

    def test_wait_from_wrong_pe_raises(self):
        handles = {}

        def body(ctx):
            ctx.init()
            me = ctx.my_pe()
            dest = ctx.malloc(8)
            src = ctx.private_malloc(8)
            if me == 0:
                ctx.view(src, "long", 1)[0] = 7
            h = ibroadcast(ctx, dest, src, 1, 1, 0, np.dtype(np.int64))
            handles[me] = h
            ctx.barrier()
            raised = False
            if me == 1:
                try:
                    handles[0].wait()  # PE 0's handle, not mine
                except CollectiveArgumentError:
                    raised = True
            ctx.barrier()
            h.wait()
            got = int(ctx.view(dest, "long", 1)[0])
            ctx.close()
            return raised, got

        results = run_machine(2, body)
        assert results[1][0] is True  # misuse rejected on PE 1
        assert [r[1] for r in results] == [7, 7]  # collective still correct

    def test_wait_from_wrong_pe_raises_even_when_done(self):
        handles = {}

        def body(ctx):
            ctx.init()
            me = ctx.my_pe()
            dest = ctx.malloc(8)
            src = ctx.private_malloc(8)
            if me == 0:
                ctx.view(src, "long", 1)[0] = 4
            h = ibroadcast(ctx, dest, src, 1, 1, 0, np.dtype(np.int64))
            handles[me] = h
            h.wait()
            ctx.barrier()
            raised = False
            if me == 1:
                try:
                    handles[0].wait()  # completed, but still not mine
                except CollectiveArgumentError:
                    raised = True
            ctx.barrier()
            ctx.close()
            return raised

        assert run_machine(2, body)[1] is True
