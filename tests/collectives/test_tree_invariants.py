"""Structural invariants of the binomial trees, checked via span metrics.

The paper's complexity claims (section 4) are tree-shape facts: a
broadcast or reduction over ``p`` PEs moves exactly ``p - 1`` messages
through ``ceil(log2 p)`` stages, a barrier closes every stage, and the
scatter/gather adjusted displacements make every stage message one
contiguous transfer.  The tracing layer lets the tests assert those
facts on the *recorded* execution rather than re-deriving them from the
code under test.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.collectives.binomial import n_stages
from repro.collectives.scatter import adjusted_displacements
from repro.runtime import Machine
from repro.sim.spans import build_span_forest, walk

from ..conftest import small_config

PE_COUNTS = list(range(1, 13))


def _traced_machine(n_pes: int) -> Machine:
    return Machine(small_config(n_pes), trace=True)


def _top_metrics(machine: Machine, name: str):
    mets = [m for m in machine.collective_metrics()
            if m.name == name and not m.nested]
    assert len(mets) == 1, f"expected one {name} call, got {mets}"
    return mets[0]


def _stage_ops(machine: Machine, name: str) -> dict[int, list[dict]]:
    """Remote put/get attrs per stage index of the named collective."""
    out: dict[int, list[dict]] = {}
    for span in walk(build_span_forest(machine.engine.trace)):
        if span.kind != "collective" or span.name != name:
            continue
        for stage in span.children:
            if stage.kind != "stage":
                continue
            idx = int(stage.attrs["index"])
            for op in stage.children:
                if (op.kind == "op" and op.name in ("put", "get")
                        and op.attrs.get("remote")):
                    out.setdefault(idx, []).append(dict(op.attrs))
    return out


class TestBroadcastTree:
    @pytest.mark.parametrize("n_pes", PE_COUNTS)
    def test_messages_stages_barriers(self, n_pes):
        machine = _traced_machine(n_pes)

        def body(ctx):
            ctx.init()
            buf = ctx.malloc(64)
            src = ctx.private_malloc(64)
            if ctx.my_pe() == min(1, n_pes - 1):
                ctx.view(src, "long", 4, 1)[:] = [9, 8, 7, 6]
            ctx.broadcast(buf, src, 4, 1, min(1, n_pes - 1), "long")
            ctx.close()

        machine.run(body)
        cm = _top_metrics(machine, "broadcast")
        assert cm.n_stages == n_stages(n_pes)
        # Every tree edge carries exactly one message: p - 1 in total.
        # The root's local src->dest copy is not a message.
        assert cm.total_messages == n_pes - 1
        assert cm.extra_messages == 0
        for stage in cm.stages:
            # A barrier closes every stage, entered by every participant.
            assert stage.barriers == n_pes
        # The entry barrier (pre-stage ordering) is also per participant.
        assert cm.entry_barriers == n_pes
        assert sorted(cm.per_pe) == list(range(n_pes))

    @pytest.mark.parametrize("n_pes", [2, 5, 8, 12])
    def test_stage_fanout_doubles(self, n_pes):
        """Recursive halving: senders double each stage (until the
        non-power-of-two tail truncates the last stages)."""
        machine = _traced_machine(n_pes)

        def body(ctx):
            ctx.init()
            buf = ctx.malloc(16)
            ctx.broadcast(buf, buf, 1, 1, 0, "long")
            ctx.close()

        machine.run(body)
        cm = _top_metrics(machine, "broadcast")
        for stage in cm.stages:
            assert stage.messages <= 2 ** stage.index
        assert sum(s.messages for s in cm.stages) == n_pes - 1


class TestReduceTree:
    @pytest.mark.parametrize("n_pes", PE_COUNTS)
    def test_messages_stages_barriers(self, n_pes):
        machine = _traced_machine(n_pes)
        root = n_pes // 2

        def body(ctx):
            ctx.init()
            src = ctx.malloc(64)
            dest = ctx.private_malloc(64)
            ctx.view(src, "long", 4, 1)[:] = ctx.my_pe() + 1
            ctx.reduce(dest, src, 4, 1, root, "sum", "long")
            ctx.close()

        machine.run(body)
        cm = _top_metrics(machine, "reduce")
        assert cm.n_stages == n_stages(n_pes)
        # Recursive doubling pulls one get per tree edge: p - 1 in total.
        assert cm.total_messages == n_pes - 1
        for stage in cm.stages:
            assert stage.barriers == n_pes
        # The pre-stage barrier ordering the s_buff loads.
        assert cm.entry_barriers == n_pes


class TestScatterGatherContiguity:
    """The adjusted displacements guarantee one contiguous (stride-1)
    transfer per tree edge, sized to the receiver's whole subtree."""

    @staticmethod
    def _scatter_oracle(pe_msgs, root):
        """Expected per-stage message element counts (sorted)."""
        p = len(pe_msgs)
        adj = adjusted_displacements(pe_msgs, root)
        k = n_stages(p)
        mask = (1 << k) - 1
        expect: dict[int, list[int]] = {}
        for ordinal, i in enumerate(range(k - 1, -1, -1)):
            mask ^= 1 << i
            sizes = []
            for vir in range(p):
                if (vir & mask) == 0 and (vir & (1 << i)) == 0:
                    part = (vir ^ (1 << i)) % p
                    if vir < part:
                        end = min(part + (1 << i), p)
                        size = adj[end] - adj[part]
                        if size:
                            sizes.append(size)
            if sizes:
                expect[ordinal] = sorted(sizes)
        return expect

    @staticmethod
    def _gather_oracle(pe_msgs, root):
        p = len(pe_msgs)
        adj = adjusted_displacements(pe_msgs, root)
        k = n_stages(p)
        mask = (1 << k) - 1
        expect: dict[int, list[int]] = {}
        for i in range(k):
            mask ^= 1 << i
            sizes = []
            for vir in range(p):
                if (vir | mask) == mask and (vir & (1 << i)) == 0:
                    part = (vir ^ (1 << i)) % p
                    if vir < part:
                        end = min(part + (1 << i), p)
                        size = adj[end] - adj[part]
                        if size:
                            sizes.append(size)
            if sizes:
                expect[i] = sorted(sizes)
        return expect

    @pytest.mark.parametrize("n_pes", PE_COUNTS)
    @pytest.mark.parametrize("root", [0, "mid"])
    def test_scatter_stage_messages_match_adj_disp(self, n_pes, root):
        root = n_pes // 2 if root == "mid" else 0
        pe_msgs = [(i % 3) + 1 for i in range(n_pes)]
        pe_disp = np.concatenate([[0], np.cumsum(pe_msgs)[:-1]]).tolist()
        nelems = sum(pe_msgs)
        machine = _traced_machine(n_pes)

        def body(ctx):
            ctx.init()
            src = ctx.private_malloc(max(nelems * 8, 16))
            dest = ctx.malloc(64)
            if ctx.my_pe() == root:
                ctx.view(src, "long", nelems, 1)[:] = np.arange(nelems)
            ctx.scatter(dest, src, pe_msgs, pe_disp, nelems, root, "long")
            ctx.close()

        machine.run(body)
        ops = _stage_ops(machine, "scatter")
        expect = self._scatter_oracle(pe_msgs, root)
        got = {idx: sorted(o["nelems"] for o in stage_ops)
               for idx, stage_ops in ops.items()}
        assert got == expect
        for stage_ops in ops.values():
            for op in stage_ops:
                assert op["stride"] == 1  # contiguity from adj_disp
        # One message per tree edge.
        cm = _top_metrics(machine, "scatter")
        assert sum(s.messages for s in cm.stages) == max(n_pes - 1, 0)
        assert cm.n_stages == n_stages(n_pes)

    @pytest.mark.parametrize("n_pes", PE_COUNTS)
    @pytest.mark.parametrize("root", [0, "mid"])
    def test_gather_stage_messages_match_adj_disp(self, n_pes, root):
        root = n_pes // 2 if root == "mid" else 0
        pe_msgs = [(i % 4) + 1 for i in range(n_pes)]
        pe_disp = np.concatenate([[0], np.cumsum(pe_msgs)[:-1]]).tolist()
        nelems = sum(pe_msgs)
        machine = _traced_machine(n_pes)

        def body(ctx):
            ctx.init()
            src = ctx.private_malloc(64)
            dest = ctx.malloc(max(nelems * 8, 16))
            me = ctx.my_pe()
            ctx.view(src, "long", pe_msgs[me], 1)[:] = me
            ctx.gather(dest, src, pe_msgs, pe_disp, nelems, root, "long")
            ctx.close()

        machine.run(body)
        ops = _stage_ops(machine, "gather")
        expect = self._gather_oracle(pe_msgs, root)
        got = {idx: sorted(o["nelems"] for o in stage_ops)
               for idx, stage_ops in ops.items()}
        assert got == expect
        for stage_ops in ops.values():
            for op in stage_ops:
                assert op["stride"] == 1
        cm = _top_metrics(machine, "gather")
        assert sum(s.messages for s in cm.stages) == max(n_pes - 1, 0)
        assert cm.n_stages == n_stages(n_pes)


class TestAllreduceScanStages:
    @pytest.mark.parametrize("n_pes", [2, 3, 6, 8])
    def test_doubling_stage_count(self, n_pes):
        machine = _traced_machine(n_pes)

        def body(ctx):
            ctx.init()
            src = ctx.malloc(32)
            dest = ctx.private_malloc(32)
            ctx.view(src, "long", 2, 1)[:] = ctx.my_pe()
            ctx.allreduce(dest, src, 2, 1, "sum", "long")
            ctx.close()

        machine.run(body)
        cm = _top_metrics(machine, "allreduce")
        pof2 = 1 << (n_pes.bit_length() - 1)
        if pof2 * 2 <= n_pes:
            pof2 = n_pes
        assert cm.n_stages == n_stages(pof2)
        for stage in cm.stages:
            assert stage.barriers == n_pes

    @pytest.mark.parametrize("n_pes", [2, 5, 8])
    def test_scan_stage_count(self, n_pes):
        machine = _traced_machine(n_pes)

        def body(ctx):
            ctx.init()
            src = ctx.malloc(32)
            dest = ctx.private_malloc(32)
            ctx.view(src, "long", 2, 1)[:] = ctx.my_pe() + 1
            ctx.scan(dest, src, 2, 1, "sum", "long")
            ctx.close()

        machine.run(body)
        cm = _top_metrics(machine, "scan")
        assert cm.n_stages == n_stages(n_pes)
        # Hillis-Steele: stage i has p - 2^i readers.
        for stage in cm.stages:
            assert stage.messages == n_pes - (1 << stage.index)
            assert stage.barriers == n_pes
