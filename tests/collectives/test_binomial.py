"""Tests for the binomial-tree schedules (Figure 3)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.collectives.binomial import (
    n_stages,
    render_tree,
    subtree_span,
    tree_children,
    tree_parent,
    tree_stages,
)
from repro.errors import CollectiveArgumentError


class TestStageCount:
    @pytest.mark.parametrize("n,k", [(1, 0), (2, 1), (3, 2), (4, 2),
                                     (7, 3), (8, 3), (9, 4), (16, 4)])
    def test_ceil_log2(self, n, k):
        """The paper's O(ceil(log2 N)) communication-step bound."""
        assert n_stages(n) == k

    def test_rejects_nonpositive(self):
        with pytest.raises(CollectiveArgumentError):
            n_stages(0)


class TestHalving:
    def test_eight_pes_figure3(self):
        """The 8-PE broadcast tree: 0→4, then 0→2/4→6, then odd pairs."""
        stages = tree_stages(8, "halving")
        assert stages[0] == [(0, 4)]
        assert stages[1] == [(0, 2), (4, 6)]
        assert stages[2] == [(0, 1), (2, 3), (4, 5), (6, 7)]

    def test_non_power_of_two_skips_absent_partners(self):
        stages = tree_stages(7, "halving")
        flat = [pair for stage in stages for pair in stage]
        receivers = [to for _, to in flat]
        assert sorted(receivers) == [1, 2, 3, 4, 5, 6]  # each once

    def test_every_rank_reached_exactly_once(self):
        for n in range(2, 33):
            flat = [to for stage in tree_stages(n, "halving")
                    for _, to in stage]
            assert sorted(flat) == list(range(1, n))

    def test_sender_has_data_before_sending(self):
        """A PE only forwards after the stage that delivered to it."""
        for n in (5, 8, 12, 16):
            have = {0}
            for stage in tree_stages(n, "halving"):
                for frm, to in stage:
                    assert frm in have
                new = {to for _, to in stage}
                have |= new


class TestDoubling:
    def test_mirror_of_halving(self):
        """Doubling is halving reversed (leaves first, flipped arrows)."""
        for n in (3, 8, 11):
            h = tree_stages(n, "halving")
            d = tree_stages(n, "doubling")
            assert d == [[(b, a) for a, b in stage] for stage in h[::-1]]

    def test_root_collects_everything(self):
        for n in range(2, 20):
            collected = {v: {v} for v in range(n)}
            for stage in tree_stages(n, "doubling"):
                for child, parent in stage:
                    collected[parent] |= collected[child]
            assert collected[0] == set(range(n))


class TestTreeQueries:
    def test_children_of_root_in_8(self):
        assert tree_children(0, 8) == [4, 2, 1]

    def test_parent(self):
        assert tree_parent(0, 8) is None
        assert tree_parent(6, 8) == 4
        assert tree_parent(5, 8) == 4
        assert tree_parent(3, 8) == 2

    def test_parent_child_consistency(self):
        for n in (6, 8, 13):
            for v in range(1, n):
                p = tree_parent(v, n)
                assert v in tree_children(p, n)

    def test_subtree_span(self):
        # At stage i a partner owns 2^i consecutive virtual ranks.
        assert subtree_span(4, 2, 8) == (4, 8)
        assert subtree_span(4, 1, 8) == (4, 6)
        assert subtree_span(6, 1, 7) == (6, 7)  # clamped at n_pes

    def test_invalid_direction(self):
        with pytest.raises(CollectiveArgumentError):
            tree_stages(4, "sideways")


class TestRender:
    def test_render_contains_stages(self):
        text = render_tree(8)
        assert "stage 0: 0->4" in text
        assert "3 stages" in text


class TestMaskArithmetic:
    """The schedules must equal what the paper's mask loops compute."""

    @given(st.integers(2, 40))
    def test_halving_matches_mask_loop(self, n):
        k = n_stages(n)
        mask = (1 << k) - 1
        loop_pairs = []
        for i in range(k - 1, -1, -1):
            mask ^= 1 << i
            stage = []
            for vir in range(n):
                if (vir & mask) == 0 and (vir & (1 << i)) == 0:
                    part = (vir ^ (1 << i)) % n
                    if vir < part:
                        stage.append((vir, part))
            loop_pairs.append(stage)
        assert loop_pairs == tree_stages(n, "halving")

    @given(st.integers(2, 40))
    def test_doubling_matches_mask_loop(self, n):
        k = n_stages(n)
        mask = (1 << k) - 1
        loop_pairs = []
        for i in range(k):
            mask ^= 1 << i
            stage = []
            for vir in range(n):
                if (vir | mask) == mask and (vir & (1 << i)) == 0:
                    part = (vir ^ (1 << i)) % n
                    if vir < part:
                        stage.append((part, vir))
            loop_pairs.append(stage)
        assert loop_pairs == tree_stages(n, "doubling")
