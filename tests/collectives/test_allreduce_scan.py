"""Tests for the one-sided allreduce and prefix scan (section 7)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import Machine

from ..conftest import small_config
from .helpers import run_machine


class TestAllreduce:
    @pytest.mark.parametrize("n_pes", [1, 2, 3, 4, 5, 7, 8])
    @pytest.mark.parametrize("op", ["sum", "max", "xor"])
    def test_every_pe_gets_result(self, n_pes, op):
        def body(ctx):
            ctx.init()
            src = ctx.malloc(8 * 3)
            dest = ctx.private_malloc(8 * 3)
            me = ctx.my_pe()
            ctx.view(src, "long", 3)[:] = [me + 1, me * 2, 5]
            ctx.allreduce(dest, src, 3, 1, op, "long")
            got = list(ctx.view(dest, "long", 3))
            ctx.close()
            return got

        results = run_machine(n_pes, body)
        cols = [[pe + 1 for pe in range(n_pes)],
                [pe * 2 for pe in range(n_pes)],
                [5] * n_pes]
        if op == "sum":
            want = [sum(c) for c in cols]
        elif op == "max":
            want = [max(c) for c in cols]
        else:
            want = []
            for c in cols:
                x = 0
                for v in c:
                    x ^= v
                want.append(x)
        assert all(r == want for r in results), (results, want)

    def test_agrees_with_reduce_all_composition(self):
        def body(ctx):
            ctx.init()
            src = ctx.malloc(8 * 4)
            a = ctx.malloc(8 * 4)
            b = ctx.private_malloc(8 * 4)
            me = ctx.my_pe()
            ctx.view(src, "long", 4)[:] = (me + 2) * np.arange(1, 5)
            ctx.reduce_all(a, src, 4, 1, "sum", "long")
            ctx.allreduce(b, src, 4, 1, "sum", "long")
            same = list(ctx.view(a, "long", 4)) == list(ctx.view(b, "long", 4))
            ctx.close()
            return same

        assert all(run_machine(6, body))

    def test_fewer_synchronisation_stages_than_composition(self):
        """Recursive doubling needs fewer barrier rounds than the
        reduce+broadcast composition at power-of-two PE counts (one
        tree depth instead of two)."""
        def barrier_count(which):
            def body(ctx):
                ctx.init()
                src = ctx.malloc(8 * 64)
                dest = ctx.malloc(8 * 64)
                if which == "composed":
                    ctx.reduce(dest, src, 64, 1, 0, "sum", "long")
                    ctx.broadcast(dest, dest, 64, 1, 0, "long")
                else:
                    ctx.allreduce(dest, src, 64, 1, "sum", "long")
                ctx.close()

            m = Machine(small_config(8, cores_per_node=1))
            m.run(body)
            return m.stats.barriers

        assert barrier_count("doubling") < barrier_count("composed")

    def test_strided(self):
        def body(ctx):
            ctx.init()
            src = ctx.malloc(8 * 8)
            dest = ctx.private_malloc(8 * 8)
            ctx.view(src, "long", 3, stride=2)[:] = ctx.my_pe() + 1
            ctx.allreduce(dest, src, 3, 2, "sum", "long")
            got = list(ctx.view(dest, "long", 3, stride=2))
            ctx.close()
            return got

        results = run_machine(4, body)
        assert all(r == [10, 10, 10] for r in results)

    @settings(max_examples=15, deadline=None)
    @given(n_pes=st.integers(1, 8), seed=st.integers(0, 9999))
    def test_oracle_property(self, n_pes, seed):
        rng = np.random.default_rng(seed)
        data = rng.integers(-50, 50, size=(n_pes, 4))

        def body(ctx, row):
            ctx.init()
            src = ctx.malloc(8 * 4)
            dest = ctx.private_malloc(8 * 4)
            ctx.view(src, "long", 4)[:] = row
            ctx.allreduce(dest, src, 4, 1, "sum", "long")
            got = list(ctx.view(dest, "long", 4))
            ctx.close()
            return got

        m = Machine(small_config(n_pes))
        results = m.run(body, [(data[r],) for r in range(n_pes)])
        want = list(data.sum(axis=0))
        assert all(r == want for r in results)


class TestScan:
    @pytest.mark.parametrize("n_pes", [1, 2, 3, 5, 8])
    def test_inclusive_matches_cumsum(self, n_pes):
        def body(ctx):
            ctx.init()
            src = ctx.malloc(8 * 2)
            dest = ctx.private_malloc(8 * 2)
            me = ctx.my_pe()
            ctx.view(src, "long", 2)[:] = [me + 1, 10 * (me + 1)]
            ctx.scan(dest, src, 2, 1, "sum", "long")
            got = list(ctx.view(dest, "long", 2))
            ctx.close()
            return got

        results = run_machine(n_pes, body)
        c1 = np.cumsum([pe + 1 for pe in range(n_pes)])
        c2 = np.cumsum([10 * (pe + 1) for pe in range(n_pes)])
        for pe, got in enumerate(results):
            assert got == [c1[pe], c2[pe]]

    @pytest.mark.parametrize("n_pes", [1, 2, 4, 6])
    def test_exclusive(self, n_pes):
        def body(ctx):
            ctx.init()
            src = ctx.malloc(8)
            dest = ctx.private_malloc(8)
            ctx.view(src, "long", 1)[0] = ctx.my_pe() + 1
            ctx.scan(dest, src, 1, 1, "sum", "long", inclusive=False)
            got = int(ctx.view(dest, "long", 1)[0])
            ctx.close()
            return got

        results = run_machine(n_pes, body)
        want = [sum(range(1, pe + 1)) for pe in range(n_pes)]
        assert results == want

    def test_max_scan(self):
        def body(ctx):
            ctx.init()
            src = ctx.malloc(8)
            dest = ctx.private_malloc(8)
            vals = [3, 1, 4, 1, 5, 9, 2, 6]
            ctx.view(src, "long", 1)[0] = vals[ctx.my_pe()]
            ctx.scan(dest, src, 1, 1, "max", "long")
            got = int(ctx.view(dest, "long", 1)[0])
            ctx.close()
            return got

        results = run_machine(8, body)
        assert results == [3, 3, 4, 4, 5, 9, 9, 9]

    def test_scan_use_case_offsets(self):
        """The classic use: exclusive sum scan of per-PE counts gives
        each PE its write offset into a shared array."""
        def body(ctx):
            ctx.init()
            me, n = ctx.my_pe(), ctx.num_pes()
            count = me + 1
            cnt = ctx.malloc(8)
            off = ctx.private_malloc(8)
            ctx.view(cnt, "long", 1)[0] = count
            ctx.scan(off, cnt, 1, 1, "sum", "long", inclusive=False)
            offset = int(ctx.view(off, "long", 1)[0])
            total = sum(range(1, n + 1))
            shared = ctx.malloc(8 * total)
            src = ctx.private_malloc(8 * count)
            ctx.view(src, "long", count)[:] = me
            ctx.barrier()
            ctx.put(shared + 8 * offset, src, count, 1, 0, "long")
            ctx.barrier()
            got = (list(ctx.view(shared, "long", total))
                   if me == 0 else None)
            ctx.close()
            return got

        results = run_machine(4, body)
        assert results[0] == [0, 1, 1, 2, 2, 2, 3, 3, 3, 3]


class TestRabenseifner:
    @pytest.mark.parametrize("n_pes", [1, 2, 3, 4, 5, 6, 7, 8])
    @pytest.mark.parametrize("op", ["sum", "max"])
    def test_matches_doubling(self, n_pes, op):
        def body(ctx):
            ctx.init()
            src = ctx.malloc(8 * 13)
            a = ctx.private_malloc(8 * 13)
            b = ctx.private_malloc(8 * 13)
            me = ctx.my_pe()
            ctx.view(src, "long", 13)[:] = (me + 1) * np.arange(1, 14) % 37
            ctx.allreduce(a, src, 13, 1, op, "long", algorithm="doubling")
            ctx.allreduce(b, src, 13, 1, op, "long",
                          algorithm="rabenseifner")
            same = list(ctx.view(a, "long", 13)) == list(ctx.view(b, "long", 13))
            ctx.close()
            return same

        assert all(run_machine(n_pes, body))

    def test_strided(self):
        def body(ctx):
            ctx.init()
            src = ctx.malloc(8 * 24)
            dest = ctx.private_malloc(8 * 24)
            ctx.view(src, "long", 6, stride=3)[:] = ctx.my_pe() + 1
            ctx.allreduce(dest, src, 6, 3, "sum", "long",
                          algorithm="rabenseifner")
            got = list(ctx.view(dest, "long", 6, stride=3))
            ctx.close()
            return got

        results = run_machine(4, body)
        assert all(r == [10] * 6 for r in results)

    def test_fewer_elements_than_pes(self):
        """Segments can be empty when nelems < PEs — still correct."""
        def body(ctx):
            ctx.init()
            src = ctx.malloc(8 * 2)
            dest = ctx.private_malloc(8 * 2)
            ctx.view(src, "long", 2)[:] = [ctx.my_pe(), 1]
            ctx.allreduce(dest, src, 2, 1, "sum", "long",
                          algorithm="rabenseifner")
            got = list(ctx.view(dest, "long", 2))
            ctx.close()
            return got

        results = run_machine(8, body)
        assert all(r == [sum(range(8)), 8] for r in results)

    def test_moves_fewer_bytes_than_doubling_for_large_payloads(self):
        """Rabenseifner's point: O(2 nbytes) on the wire per PE instead
        of O(log N * nbytes)."""
        def bytes_moved(algorithm):
            def body(ctx):
                ctx.init()
                src = ctx.malloc(8 * 4096)
                dest = ctx.private_malloc(8 * 4096)
                ctx.allreduce(dest, src, 4096, 1, "sum", "long",
                              algorithm=algorithm)
                ctx.close()

            m = Machine(small_config(
                8,
                memory_bytes_per_pe=8 * 1024 * 1024,
                symmetric_heap_bytes=4 * 1024 * 1024,
                collective_scratch_bytes=1024 * 1024,
            ))
            m.run(body)
            return m.stats.bytes_got

        # Theory at N=8: 2*(N-1)/N / log2(N) = (2*7/8)/3 = 0.583.
        ratio = bytes_moved("rabenseifner") / bytes_moved("doubling")
        assert ratio == pytest.approx(0.583, abs=0.02)

    def test_unknown_algorithm(self):
        from repro.errors import SimulationError

        def body(ctx):
            ctx.init()
            src = ctx.malloc(8)
            ctx.allreduce(src, src, 1, 1, "sum", "long", algorithm="magic")
            ctx.close()

        with pytest.raises(SimulationError):
            run_machine(2, body)
