"""Tests for Algorithm 2: binomial-tree reduction with recursive doubling."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CollectiveArgumentError, ReductionOpError

from .helpers import run_machine, run_reduce


def oracle(op, per_pe_data, dtype):
    acc = np.array(per_pe_data[0], dtype=dtype)
    for d in per_pe_data[1:]:
        v = np.array(d, dtype=dtype)
        with np.errstate(over="ignore"):
            if op == "sum":
                acc = acc + v
            elif op == "prod":
                acc = acc * v
            elif op == "min":
                acc = np.minimum(acc, v)
            elif op == "max":
                acc = np.maximum(acc, v)
            elif op == "and":
                acc = acc & v
            elif op == "or":
                acc = acc | v
            elif op == "xor":
                acc = acc ^ v
    return acc


class TestCorrectness:
    @pytest.mark.parametrize("n_pes", [1, 2, 3, 4, 7, 8])
    def test_sum(self, n_pes):
        dt = np.dtype(np.int64)
        data = [np.arange(4) * (pe + 1) for pe in range(n_pes)]
        results = run_reduce(n_pes, 4, 1, 0, "sum", dt, data)
        assert np.array_equal(results[0], oracle("sum", data, dt))
        assert all(r is None for r in results[1:])

    @pytest.mark.parametrize("op", ["sum", "prod", "min", "max",
                                    "and", "or", "xor"])
    def test_all_ops(self, op):
        dt = np.dtype(np.uint32)
        rng = np.random.default_rng(hash(op) % 1000)
        data = [rng.integers(1, 50, size=5) for _ in range(5)]
        results = run_reduce(5, 5, 1, 0, op, dt, data)
        assert np.array_equal(results[0], oracle(op, data, dt))

    @pytest.mark.parametrize("root", [0, 2, 5, 6])
    def test_nonzero_roots(self, root):
        dt = np.dtype(np.int64)
        data = [np.full(3, pe + 1) for pe in range(7)]
        results = run_reduce(7, 3, 1, root, "sum", dt, data)
        assert np.array_equal(results[root], np.full(3, 28))

    @pytest.mark.parametrize("stride", [1, 2, 4])
    def test_strides(self, stride):
        """Strided reduction — OpenSHMEM can't (section 4.7)."""
        dt = np.dtype(np.int32)
        data = [np.array([pe, pe * 2], dtype=dt) for pe in range(4)]
        results = run_reduce(4, 2, stride, 0, "sum", dt, data)
        assert np.array_equal(results[0], np.array([6, 12], dtype=dt))

    def test_float_sum_tolerance(self):
        dt = np.dtype(np.float64)
        rng = np.random.default_rng(3)
        data = [rng.random(8) for _ in range(8)]
        results = run_reduce(8, 8, 1, 0, "sum", dt, data)
        # Tree fold order differs from sequential: allow float slack.
        np.testing.assert_allclose(results[0], oracle("sum", data, dt),
                                   rtol=1e-12)

    def test_min_max_float(self):
        dt = np.dtype(np.float32)
        data = [np.array([pe * 1.5, -pe], dtype=dt) for pe in range(6)]
        results = run_reduce(6, 2, 1, 0, "max", dt, data)
        assert np.array_equal(results[0], np.array([7.5, 0.0], dtype=dt))

    def test_single_pe(self):
        dt = np.dtype(np.int64)
        results = run_reduce(1, 3, 1, 0, "sum", dt, [np.array([1, 2, 3])])
        assert np.array_equal(results[0], [1, 2, 3])

    def test_zero_elements(self):
        dt = np.dtype(np.int64)
        results = run_reduce(4, 0, 1, 0, "sum", dt,
                             [np.empty(0)] * 4)
        assert results[0].size == 0

    def test_source_unchanged(self):
        """The s_buff/l_buff staging protects src from overwrites."""
        def body(ctx):
            ctx.init()
            src = ctx.malloc(8 * 4)
            dest = ctx.private_malloc(8 * 4)
            mine = (ctx.my_pe() + 1) * np.arange(1, 5)
            ctx.view(src, "long", 4)[:] = mine
            ctx.long_reduce_sum(dest, src, 4, 1, 0)
            unchanged = bool(np.array_equal(ctx.view(src, "long", 4), mine))
            ctx.close()
            return unchanged

        assert all(run_machine(4, body))


class TestValidation:
    def test_bitwise_on_float_rejected(self):
        from repro.errors import SimulationError

        dt = np.dtype(np.float64)
        with pytest.raises(SimulationError) as exc_info:
            run_reduce(2, 1, 1, 0, "xor", dt, [np.zeros(1)] * 2)
        assert isinstance(exc_info.value.__cause__, ReductionOpError)

    def test_private_src_rejected(self):
        """Section 4.4: src must be a shared symmetric address."""
        def body(ctx):
            ctx.init()
            src = ctx.private_malloc(64)
            dest = ctx.private_malloc(64)
            with pytest.raises(CollectiveArgumentError, match="symmetric"):
                ctx.long_reduce_sum(dest, src, 1, 1, 0)
            ctx.barrier()
            ctx.close()

        run_machine(2, body)

    def test_dest_may_be_private(self):
        """dest, significant only on the root, may be private."""
        def body(ctx):
            ctx.init()
            src = ctx.malloc(64)
            dest = ctx.private_malloc(64)
            ctx.view(src, "long", 1)[0] = 2
            ctx.long_reduce_sum(dest, src, 1, 1, 0)
            got = int(ctx.view(dest, "long", 1)[0]) if ctx.my_pe() == 0 else None
            ctx.close()
            return got

        assert run_machine(3, body)[0] == 6


class TestLinearAlgorithm:
    def test_linear_agrees_with_binomial(self):
        dt = np.dtype(np.int64)
        data = [np.arange(6) * (pe + 3) for pe in range(6)]
        a = run_reduce(6, 6, 1, 2, "sum", dt, data, algorithm="binomial")
        b = run_reduce(6, 6, 1, 2, "sum", dt, data, algorithm="linear")
        assert np.array_equal(a[2], b[2])


class TestProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        n_pes=st.integers(1, 8),
        nelems=st.integers(1, 8),
        op=st.sampled_from(["sum", "prod", "min", "max", "xor"]),
        seed=st.integers(0, 10_000),
        data=st.data(),
    )
    def test_matches_numpy_oracle(self, n_pes, nelems, op, seed, data):
        root = data.draw(st.integers(0, n_pes - 1))
        dt = np.dtype(np.int64)
        rng = np.random.default_rng(seed)
        per_pe = [rng.integers(-100, 100, size=nelems) for _ in range(n_pes)]
        results = run_reduce(n_pes, nelems, 1, root, op, dt, per_pe)
        assert np.array_equal(results[root], oracle(op, per_pe, dt))
