"""Shared fixtures for the test suite.

``small_config`` keeps per-PE memory small so machines build quickly;
tests that need the paper's full 8 MB L2 construct their own
:class:`MachineConfig`.
"""

from __future__ import annotations

import pytest

from repro.params import CacheParams, MachineConfig, MemoryParams, TlbParams


def small_memory() -> MemoryParams:
    """A scaled-down hierarchy for fast unit tests."""
    return MemoryParams(
        l1=CacheParams(size_bytes=1024, ways=2, line_bytes=64, hit_ns=1.0),
        l2=CacheParams(size_bytes=16 * 1024, ways=4, line_bytes=64,
                       hit_ns=10.0),
        tlb=TlbParams(entries=16, page_bytes=4096, walk_ns=120.0),
        dram_ns=90.0,
    )


def small_config(n_pes: int = 4, **kw) -> MachineConfig:
    """A small, fast machine configuration."""
    defaults = dict(
        n_pes=n_pes,
        memory_bytes_per_pe=4 * 1024 * 1024,
        symmetric_heap_bytes=2 * 1024 * 1024,
        collective_scratch_bytes=512 * 1024,
        mem=small_memory(),
    )
    defaults.update(kw)
    return MachineConfig(**defaults)


@pytest.fixture
def config4() -> MachineConfig:
    return small_config(4)


@pytest.fixture
def config8() -> MachineConfig:
    return small_config(8)
