"""Shared fixtures for the test suite.

``small_config`` keeps per-PE memory small so machines build quickly;
tests that need the paper's full 8 MB L2 construct their own
:class:`MachineConfig`.

This conftest also provides the suite's hang protection.  The faults
and backends suites exercise code whose failure mode is a deadlock
(barrier bugs, stuck worker processes), so every test there gets a
``timeout`` marker by default.  When the ``pytest-timeout`` plugin is
installed (CI) it enforces the markers; when it is not (this image does
not ship it), a SIGALRM fallback enforces them for the main thread so a
hang still fails the test instead of wedging the run.
"""

from __future__ import annotations

import signal
import sys

import pytest

from repro.params import CacheParams, MachineConfig, MemoryParams, TlbParams

#: Default per-test watchdog (seconds) for the deadlock-prone suites.
DEADLOCK_SUITE_TIMEOUT = 120
_DEADLOCK_SUITES = ("tests/faults/", "tests/backends/", "tests/serve/")


def _has_timeout_plugin(config) -> bool:
    return config.pluginmanager.hasplugin("timeout")


def pytest_configure(config):
    if not _has_timeout_plugin(config):
        # Register the marker ourselves so --strict-markers stays clean
        # and the SIGALRM fallback below can read it.
        config.addinivalue_line(
            "markers",
            "timeout(seconds): fail the test if it runs longer "
            "(pytest-timeout when installed, SIGALRM fallback otherwise)",
        )


def pytest_collection_modifyitems(config, items):
    for item in items:
        path = item.nodeid.replace("\\", "/")
        if any(path.startswith(p) for p in _DEADLOCK_SUITES):
            if item.get_closest_marker("timeout") is None:
                item.add_marker(pytest.mark.timeout(DEADLOCK_SUITE_TIMEOUT))


def _marker_timeout(item) -> float | None:
    marker = item.get_closest_marker("timeout")
    if marker is None:
        return None
    if marker.args:
        return float(marker.args[0])
    if "seconds" in marker.kwargs:
        return float(marker.kwargs["seconds"])
    return None


@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item):
    """SIGALRM fallback enforcement of ``timeout`` markers.

    Active only when pytest-timeout is absent and SIGALRM is usable
    (POSIX main thread).  The alarm raises inside the test, which also
    breaks pure-Python spin loops.
    """
    seconds = _marker_timeout(item)
    usable = (
        seconds is not None
        and not _has_timeout_plugin(item.config)
        and hasattr(signal, "SIGALRM")
        and sys.platform != "win32"
    )
    if not usable:
        return (yield)

    def on_alarm(signum, frame):
        raise TimeoutError(
            f"test exceeded its {seconds:.0f}s timeout marker "
            "(SIGALRM fallback; install pytest-timeout for richer output)"
        )

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        return (yield)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


def small_memory() -> MemoryParams:
    """A scaled-down hierarchy for fast unit tests."""
    return MemoryParams(
        l1=CacheParams(size_bytes=1024, ways=2, line_bytes=64, hit_ns=1.0),
        l2=CacheParams(size_bytes=16 * 1024, ways=4, line_bytes=64,
                       hit_ns=10.0),
        tlb=TlbParams(entries=16, page_bytes=4096, walk_ns=120.0),
        dram_ns=90.0,
    )


def small_config(n_pes: int = 4, **kw) -> MachineConfig:
    """A small, fast machine configuration."""
    defaults = dict(
        n_pes=n_pes,
        memory_bytes_per_pe=4 * 1024 * 1024,
        symmetric_heap_bytes=2 * 1024 * 1024,
        collective_scratch_bytes=512 * 1024,
        mem=small_memory(),
    )
    defaults.update(kw)
    return MachineConfig(**defaults)


@pytest.fixture
def config4() -> MachineConfig:
    return small_config(4)


@pytest.fixture
def config8() -> MachineConfig:
    return small_config(8)
