"""C-API compatibility facade: the paper's function names, verbatim.

The xbrtime runtime is a C library; this module exposes its exact call
surface as module-level functions so code translated from the paper (or
from the real `tactcomplabs/xbgas-runtime`) reads one-to-one:

====================================================  =============
C                                                     here
====================================================  =============
``xbrtime_init()``                                    ``xbrtime_init(ctx)``
``xbrtime_close()``                                   ``xbrtime_close(ctx)``
``xbrtime_mype()``                                    ``xbrtime_mype(ctx)``
``xbrtime_num_pes()``                                 ``xbrtime_num_pes(ctx)``
``xbrtime_malloc(sz)``                                ``xbrtime_malloc(ctx, sz)``
``xbrtime_free(ptr)``                                 ``xbrtime_free(ctx, ptr)``
``xbrtime_barrier()``                                 ``xbrtime_barrier(ctx)``
``xbrtime_TYPE_put(dest, src, nelems, stride, pe)``    ``xbrtime_TYPE_put(ctx, ...)``
``xbrtime_TYPE_get(dest, src, nelems, stride, pe)``    ``xbrtime_TYPE_get(ctx, ...)``
``xbrtime_TYPE_broadcast(dest, src, n, stride, root)`` ``xbrtime_TYPE_broadcast(ctx, ...)``
``xbrtime_TYPE_reduce_OP(dest, src, n, stride, root)`` ``xbrtime_TYPE_reduce_OP(ctx, ...)``
``xbrtime_TYPE_scatter(dest, src, msgs, disp, n, r)``  ``xbrtime_TYPE_scatter(ctx, ...)``
``xbrtime_TYPE_gather(dest, src, msgs, disp, n, r)``   ``xbrtime_TYPE_gather(ctx, ...)``
====================================================  =============

The only systematic difference is the explicit ``ctx`` first argument —
C hides the runtime state in globals; an SPMD simulation cannot.

>>> from repro import Machine, MachineConfig
>>> from repro.xbrtime import *
>>> def main(ctx):
...     xbrtime_init(ctx)
...     buf = xbrtime_malloc(ctx, 8)
...     xbrtime_barrier(ctx)
...     xbrtime_free(ctx, buf)
...     xbrtime_close(ctx)
>>> Machine(MachineConfig(n_pes=2)).run(main)
[None, None]
"""

from __future__ import annotations

from typing import TYPE_CHECKING

# Importing the runtime package installs the typed API (and with it the
# full method-name registry this module forwards to).
from . import runtime as _runtime  # noqa: F401
from .runtime.typed import TYPED_METHOD_NAMES

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .runtime.context import XBRTime


def init(backend: str = "sim", *, n_pes: int | None = None,
         config=None, **opts):
    """Open an execution session on the chosen backend.

    ``backend`` is ``"sim"`` (the deterministic simulator) or ``"mp"``
    (true-parallel worker processes over shared memory); ``opts`` are
    forwarded to the backend session (e.g. ``trace=True`` on sim,
    ``timeout=...`` on mp).  The returned
    :class:`~repro.backends.base.BackendSession` is a context manager::

        import repro.xbrtime as xbr

        with xbr.init("mp", n_pes=8) as session:
            results = session.run(program)
    """
    from .backends import get_backend

    return get_backend(backend).session(config, n_pes=n_pes, **opts)


def run(fn, *, backend: str = "sim", n_pes: int | None = None,
        config=None, args_per_pe=None, **opts):
    """One-shot convenience: ``init(...)``, run once, close."""
    with init(backend, n_pes=n_pes, config=config, **opts) as session:
        return session.run(fn, args_per_pe)


def xbrtime_init(ctx: "XBRTime") -> None:
    """Initialise the runtime environment (collective)."""
    ctx.init()


def xbrtime_close(ctx: "XBRTime") -> None:
    """Tear the runtime environment down (collective)."""
    ctx.close()


def xbrtime_mype(ctx: "XBRTime") -> int:
    """The unique ID of the calling processing element."""
    return ctx.my_pe()


def xbrtime_num_pes(ctx: "XBRTime") -> int:
    """The number of running processing elements."""
    return ctx.num_pes()


def xbrtime_malloc(ctx: "XBRTime", sz: int) -> int:
    """Allocate ``sz`` bytes of symmetric shared memory (collective)."""
    return ctx.malloc(sz)


def xbrtime_free(ctx: "XBRTime", ptr: int) -> None:
    """Free a symmetric allocation (collective)."""
    ctx.free(ptr)


def xbrtime_barrier(ctx: "XBRTime") -> None:
    """Synchronise every processing element."""
    ctx.barrier()


def _make_forwarder(method_name: str):
    def forwarder(ctx, *args):
        return getattr(ctx, method_name)(*args)

    forwarder.__name__ = f"xbrtime_{method_name}"
    forwarder.__qualname__ = forwarder.__name__
    forwarder.__doc__ = (
        f"C-compatible alias for ``ctx.{method_name}(...)`` — see "
        f":meth:`repro.runtime.context.XBRTime.{method_name}`."
    )
    return forwarder


# Generate xbrtime_<TYPENAME>_<op> for the entire typed surface
# (put/get/_nb, broadcast, reduce_OP, scatter, gather, atomic_OP).
_GENERATED: list[str] = []
for _name in TYPED_METHOD_NAMES:
    _fn = _make_forwarder(_name)
    globals()[_fn.__name__] = _fn
    _GENERATED.append(_fn.__name__)

__all__ = [
    "init",
    "run",
    "xbrtime_init",
    "xbrtime_close",
    "xbrtime_mype",
    "xbrtime_num_pes",
    "xbrtime_malloc",
    "xbrtime_free",
    "xbrtime_barrier",
    *_GENERATED,
]
