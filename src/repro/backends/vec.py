"""Vectorized backend: compiled schedules evaluated as numpy batches.

The third execution substrate (``"vec"``).  It keeps the simulator's
cooperative engine for program control flow — init/close, mallocs, raw
one-sided transfers, barriers, teams — but intercepts every *compiled
schedule* through the ``schedule_evaluator`` hook of
:func:`~repro.collectives.schedule.executor.execute_schedule`: the
first ``n-1`` participants of a collective park at a rendezvous, the
last arrival evaluates the whole schedule for every rank at once with
:func:`~repro.collectives.schedule.evaluate.evaluate_group`, then
resumes each peer at its modelled completion time.  Data movement is
exact (byte-identical to the simulator and the multiprocessing backend
— the three-way conformance suite proves it); time is the closed-form
LogGP/cache model of :mod:`repro.collectives.schedule.evaluate`, so
``time_ns`` values *track* the simulator rather than matching it
exactly.

Per-PE memory is one row of a dense ``(n_pes, bytes_per_pe)`` uint8
matrix — the symmetric-address property (paper Figure 2) holds by
construction, and a batched stage touches all rows in one fancy-indexed
gather/scatter.  Raw ``put``/``get``/``amo`` outside schedules run
per-call against the same closed-form cost model, so mixed programs
(schedule collectives + hand-rolled rings + AMO counters) stay
supported.

Session PE counts are capped (threads are per-PE); for 1k-64k PE cost
sweeps use :func:`~repro.collectives.schedule.evaluate.evaluate_schedule`
directly — no engine, no threads.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from ..collectives.schedule.evaluate import (
    OLB_LOOKUP_NS,
    CostModel,
    LiteNetwork,
    evaluate_group,
)
from ..errors import (
    AddressError,
    CollectiveArgumentError,
    RuntimeStateError,
    SimulationError,
)
from ..isa.cpu import amo_apply
from ..params import MachineConfig
from ..runtime.barrier import BarrierController
from ..runtime.collective_api import CollectiveAPI, resolve_dtype
from ..runtime.context import CODE_REGION_BYTES
from ..runtime.symmetric_heap import (
    FreeListAllocator,
    ScratchStack,
    SymmetricHeap,
)
from ..runtime.transfer import TransferHandle
from ..sim.engine import Engine, PEProcess
from .base import Backend, BackendSession, resolve_config
from .mp import _NO_SPANS, MASK64

__all__ = ["VecBackend", "VecSession", "VecContext", "VecWorld"]

#: Sessions run one engine thread per PE; beyond this, use the
#: standalone evaluator (``evaluate_schedule``) which needs neither.
MAX_SESSION_PES = 1024

#: Modelled setup costs, identical to the simulator runtime.
_INIT_NS = 200.0
_MALLOC_NS = 50.0
_FREE_NS = 30.0


class _Rendezvous:
    """One in-progress schedule rendezvous (keyed by participant set)."""

    __slots__ = ("sched", "dtype", "addrs", "clocks", "count")

    def __init__(self, sched, dtype, n: int):
        self.sched = sched
        self.dtype = dtype
        self.addrs: list[dict | None] = [None] * n
        self.clocks = np.zeros(n)
        self.count = 0


class VecWorld:
    """Shared state of one vec run: the memory matrix, the engine and
    the (closed-form) network, cost and barrier models.

    Duck-types the slice of :class:`~repro.runtime.context.Machine` that
    :class:`~repro.runtime.barrier.BarrierController` reads — ``config``,
    ``engine``, ``network``, ``faults``, ``stats``.
    """

    def __init__(self, config: MachineConfig):
        self.config = config
        self.engine = Engine(config.n_pes)
        self.stats = self.engine.stats
        self.network = LiteNetwork(config, self.stats)
        self.faults = None
        self.barriers = BarrierController(self)
        self.mem = np.zeros((config.n_pes, config.memory_bytes_per_pe),
                            dtype=np.uint8)
        self.cost = CostModel(config, config.n_pes,
                              config.memory_bytes_per_pe)
        #: participants tuple -> in-progress schedule rendezvous
        self.rendezvous: dict[tuple[int, ...], _Rendezvous] = {}


class VecContext(CollectiveAPI):
    """Per-PE context over one :class:`VecWorld` row.

    The protocol surface mirrors :class:`~repro.backends.mp.MPContext`
    (same layout arithmetic, same guard messages) but time is modelled:
    raw transfers charge the transfer engine's formulas with closed-form
    memory costs, and ``time_ns`` reads the engine clock.
    """

    backend_name = "vec"

    def __init__(self, world: VecWorld, pe: PEProcess):
        self.world = world
        self.pe = pe
        self.rank = pe.rank
        self.config = world.config
        self.world_group = tuple(range(world.config.n_pes))
        self._mem_bytes = world.config.memory_bytes_per_pe
        # Same layout arithmetic as Machine.__init__ (Figure 2).
        heap_base = (world.config.memory_bytes_per_pe
                     - world.config.symmetric_heap_bytes)
        scratch = world.config.collective_scratch_bytes
        self._heap_base = heap_base
        self._scratch = ScratchStack(heap_base, scratch)
        self._heap = SymmetricHeap(
            heap_base + scratch,
            world.config.symmetric_heap_bytes - scratch,
            world.config.n_pes,
        )
        self._private = FreeListAllocator(
            CODE_REGION_BYTES, heap_base - CODE_REGION_BYTES
        )
        self._heap_calls = 0
        self._pending: dict[int, TransferHandle] = {}
        self._active = False
        self._closed = False

    # -- protocol accessors ------------------------------------------------

    @property
    def spans(self):
        return _NO_SPANS

    def count_collective(self, stats_key: str) -> None:
        self.world.stats.collective_calls[stats_key] += 1

    def executing_rank(self) -> int | None:
        try:
            return self.world.engine.current.rank
        except SimulationError:
            return None

    # -- lifecycle ---------------------------------------------------------

    def init(self) -> None:
        """``xbrtime_init``: bring the runtime up; synchronises all PEs."""
        if self._active:
            raise RuntimeStateError(f"PE {self.rank}: init() called twice")
        if self._closed:
            raise RuntimeStateError(f"PE {self.rank}: init() after close()")
        self._active = True
        self.pe.advance(_INIT_NS)
        self.world.barriers.barrier(self.rank)

    def close(self) -> None:
        """``xbrtime_close``: tear the runtime down; synchronises all PEs."""
        self._require_active()
        self.world.barriers.barrier(self.rank)
        self._active = False
        self._closed = True

    def _require_active(self) -> None:
        if not self._active:
            raise RuntimeStateError(
                f"PE {self.rank}: runtime used outside init()/close()"
            )

    # -- identity ----------------------------------------------------------

    def my_pe(self) -> int:
        """``xbrtime_mype``."""
        self._require_active()
        return self.rank

    def num_pes(self) -> int:
        """``xbrtime_num_pes``."""
        self._require_active()
        return self.config.n_pes

    def failed_pes(self) -> frozenset[int]:
        """Fault injection does not exist here: nobody is ever dead."""
        return frozenset()

    def live_pes(self) -> tuple[int, ...]:
        return self.world_group

    @property
    def time_ns(self) -> float:
        """Modelled nanoseconds on this PE's clock."""
        return self.pe.clock * self.config.time_dilation

    # -- memory management -------------------------------------------------

    def malloc(self, nbytes: int, align: int = 16) -> int:
        """Collective symmetric allocation (same address on every PE)."""
        self._require_active()
        self.pe.advance(_MALLOC_NS)
        idx = self._heap_calls
        self._heap_calls += 1
        return self._heap.collective_malloc(idx, nbytes, align)

    def free(self, addr: int) -> None:
        """Collective symmetric free."""
        self._require_active()
        self.pe.advance(_FREE_NS)
        idx = self._heap_calls
        self._heap_calls += 1
        self._heap.collective_free(idx, addr)

    def scratch_alloc(self, nbytes: int, align: int = 16) -> int:
        self._require_active()
        return self._scratch.alloc(nbytes, align)

    def scratch_free(self, addr: int) -> None:
        self._require_active()
        self._scratch.free(addr)

    def private_malloc(self, nbytes: int, align: int = 16) -> int:
        self._require_active()
        return self._private.alloc(nbytes, align)

    def private_free(self, addr: int) -> None:
        self._require_active()
        self._private.free(addr)

    def is_symmetric(self, addr: int) -> bool:
        return addr >= self._heap_base

    def _segment_view(self, pe: int, addr: int, dtype: np.dtype,
                      count: int, stride: int) -> np.ndarray:
        """:meth:`repro.isa.memory.Memory.view` over PE ``pe``'s row."""
        if count < 0:
            raise AddressError("count must be non-negative")
        if stride < 1:
            raise AddressError(f"stride must be >= 1, got {stride}")
        if count == 0:
            return np.empty(0, dtype=dtype)
        span = ((count - 1) * stride + 1) * dtype.itemsize
        if addr < 0 or addr + span > self._mem_bytes:
            raise AddressError(
                f"access [{addr:#x}, {addr + span:#x}) outside memory "
                f"of {self._mem_bytes:#x} bytes"
            )
        dense = self.world.mem[pe, addr : addr + span].view(dtype)
        return dense[::stride]

    def view(self, addr: int, dtype: str | np.dtype, count: int,
             stride: int = 1) -> np.ndarray:
        """A numpy view of local memory (aliases this PE's row)."""
        return self._segment_view(self.rank, addr, resolve_dtype(dtype),
                                  count, stride)

    def view_on(self, pe: int, addr: int, dtype: str | np.dtype, count: int,
                stride: int = 1) -> np.ndarray:
        """A view of another PE's row — tests/verification only."""
        return self._segment_view(pe, addr, resolve_dtype(dtype), count,
                                  stride)

    # -- time charging -----------------------------------------------------

    def compute(self, ns: float) -> None:
        """Add modelled compute time to this PE's clock."""
        self.pe.advance(ns)

    def _range_ns(self, row: int, addr: int, nbytes: int,
                  use_tlb: bool = True) -> float:
        cost = self.world.cost
        return float(cost.range_ns(np.array([row]), np.array([addr]),
                                   nbytes, use_tlb)[0])

    def charge_access(self, addr: int, nbytes: int = 8,
                      write: bool = False) -> float:
        ns = self._range_ns(self.rank, addr, nbytes)
        self.pe.advance(ns)
        return ns

    def charge_stream(self, addr: int, nbytes: int,
                      write: bool = False) -> float:
        ns = self._range_ns(self.rank, addr, nbytes)
        self.pe.advance(ns)
        return ns

    # -- synchronisation ---------------------------------------------------

    def barrier(self) -> None:
        """``xbrtime_barrier`` over the modelled dissemination barrier."""
        self._require_active()
        self.world.barriers.barrier(self.rank)

    def barrier_team(self, members: Sequence[int]) -> None:
        self._require_active()
        self.world.barriers.barrier(self.rank, tuple(members))

    # -- one-sided communication -------------------------------------------

    def _check_args(self, nelems: int, stride: int, target: int) -> None:
        if nelems < 0:
            raise CollectiveArgumentError(f"nelems must be >= 0, got {nelems}")
        if stride < 1:
            raise CollectiveArgumentError(f"stride must be >= 1, got {stride}")
        if not 0 <= target < self.config.n_pes:
            raise CollectiveArgumentError(
                f"pe {target} out of range [0, {self.config.n_pes})"
            )

    def _strided_ns(self, row: int, addr: int, nelems: int, elem_bytes: int,
                    stride: int, use_tlb: bool = True) -> float:
        return self.world.cost.strided_ns_one(row, addr, nelems, elem_bytes,
                                              stride, use_tlb)

    def put(self, dest: int, src: int, nelems: int, stride: int, pe: int,
            dtype: str | np.dtype = "long") -> None:
        """``xbrtime_TYPE_put``: blocks until the source is reusable."""
        self._require_active()
        self._check_args(nelems, stride, pe)
        stats = self.world.stats
        stats.puts += 1
        if nelems == 0:
            return
        dt = resolve_dtype(dtype)
        nbytes = nelems * dt.itemsize
        stats.bytes_put += nbytes
        sview = self._segment_view(self.rank, src, dt, nelems, stride)
        dview = self._segment_view(pe, dest, dt, nelems, stride)
        self.world.engine.checkpoint()
        me = self.pe
        me.advance(self.world.cost.loop_overhead_ns(nelems))
        me.advance(self._strided_ns(self.rank, src, nelems, dt.itemsize,
                                    stride))
        if pe == self.rank:
            me.advance(self._strided_ns(self.rank, dest, nelems, dt.itemsize,
                                        stride))
            dview[:] = sview.copy()
            return
        stats.remote_puts += 1
        me.advance(OLB_LOOKUP_NS)
        t_free, t_delivered = self.world.network.send(me.clock, self.rank,
                                                      pe, nbytes)
        me.advance_to(t_free)
        wcost = self._strided_ns(pe, dest, nelems, dt.itemsize, stride,
                                 use_tlb=False)
        self.world.network.note_delivery(t_delivered + wcost)
        dview[:] = sview

    def get(self, dest: int, src: int, nelems: int, stride: int, pe: int,
            dtype: str | np.dtype = "long") -> None:
        """``xbrtime_TYPE_get``: blocks until the data has landed."""
        self._require_active()
        self._check_args(nelems, stride, pe)
        stats = self.world.stats
        stats.gets += 1
        if nelems == 0:
            return
        dt = resolve_dtype(dtype)
        nbytes = nelems * dt.itemsize
        stats.bytes_got += nbytes
        sview = self._segment_view(pe, src, dt, nelems, stride)
        dview = self._segment_view(self.rank, dest, dt, nelems, stride)
        self.world.engine.checkpoint()
        me = self.pe
        me.advance(self.world.cost.loop_overhead_ns(nelems))
        if pe == self.rank:
            me.advance(self._strided_ns(self.rank, src, nelems, dt.itemsize,
                                        stride))
            me.advance(self._strided_ns(self.rank, dest, nelems, dt.itemsize,
                                        stride))
            dview[:] = sview.copy()
            return
        stats.remote_gets += 1
        me.advance(OLB_LOOKUP_NS)
        rcost = self._strided_ns(pe, src, nelems, dt.itemsize, stride,
                                 use_tlb=False)
        t_done = self.world.network.fetch(me.clock, self.rank, pe, nbytes)
        me.advance_to(t_done + rcost)
        me.advance(self._strided_ns(self.rank, dest, nelems, dt.itemsize,
                                    stride))
        dview[:] = sview

    def put_nb(self, dest: int, src: int, nelems: int, stride: int, pe: int,
               dtype: str | np.dtype = "long") -> TransferHandle:
        """Non-blocking put: returns once the source is reusable."""
        self._require_active()
        self._check_args(nelems, stride, pe)
        stats = self.world.stats
        stats.puts += 1
        me = self.pe
        if nelems == 0:
            return TransferHandle("put", 0, me.clock, done=True)
        dt = resolve_dtype(dtype)
        nbytes = nelems * dt.itemsize
        stats.bytes_put += nbytes
        sview = self._segment_view(self.rank, src, dt, nelems, stride)
        dview = self._segment_view(pe, dest, dt, nelems, stride)
        self.world.engine.checkpoint()
        me.advance(self.world.cost.loop_overhead_ns(nelems))
        me.advance(self._strided_ns(self.rank, src, nelems, dt.itemsize,
                                    stride))
        if pe == self.rank:
            me.advance(self._strided_ns(self.rank, dest, nelems, dt.itemsize,
                                        stride))
            dview[:] = sview.copy()
            return TransferHandle("put", nbytes, me.clock, done=True)
        stats.remote_puts += 1
        me.advance(OLB_LOOKUP_NS)
        t_free, t_delivered = self.world.network.send(me.clock, self.rank,
                                                      pe, nbytes)
        me.advance_to(t_free)
        wcost = self._strided_ns(pe, dest, nelems, dt.itemsize, stride,
                                 use_tlb=False)
        done_at = t_delivered + wcost
        self.world.network.note_delivery(done_at)
        dview[:] = sview  # eager data, delayed completion time
        handle = TransferHandle("put", nbytes, done_at)
        self._pending[id(handle)] = handle
        return handle

    def get_nb(self, dest: int, src: int, nelems: int, stride: int, pe: int,
               dtype: str | np.dtype = "long") -> TransferHandle:
        """Non-blocking get: data lands when the handle completes."""
        self._require_active()
        self._check_args(nelems, stride, pe)
        stats = self.world.stats
        stats.gets += 1
        me = self.pe
        if nelems == 0:
            return TransferHandle("get", 0, me.clock, done=True)
        dt = resolve_dtype(dtype)
        nbytes = nelems * dt.itemsize
        stats.bytes_got += nbytes
        sview = self._segment_view(pe, src, dt, nelems, stride)
        dview = self._segment_view(self.rank, dest, dt, nelems, stride)
        self.world.engine.checkpoint()
        me.advance(self.world.cost.loop_overhead_ns(nelems))
        if pe == self.rank:
            me.advance(self._strided_ns(self.rank, src, nelems, dt.itemsize,
                                        stride))
            me.advance(self._strided_ns(self.rank, dest, nelems, dt.itemsize,
                                        stride))
            dview[:] = sview.copy()
            return TransferHandle("get", nbytes, me.clock, done=True)
        stats.remote_gets += 1
        me.advance(OLB_LOOKUP_NS)
        rcost = self._strided_ns(pe, src, nelems, dt.itemsize, stride,
                                 use_tlb=False)
        t_done = self.world.network.fetch(me.clock, self.rank, pe, nbytes)
        wcost = self._strided_ns(self.rank, dest, nelems, dt.itemsize, stride)
        dview[:] = sview  # eager data, delayed completion time
        handle = TransferHandle("get", nbytes, t_done + rcost + wcost)
        self._pending[id(handle)] = handle
        return handle

    def amo(self, addr: int, value: int, pe: int, op: str = "add",
            dtype: str | np.dtype = "uint64") -> int:
        """Remote fetch-and-op (sequenced by the deterministic engine)."""
        self._require_active()
        self._check_args(1, 1, pe)
        dt = resolve_dtype(dtype)
        if dt.itemsize != 8 or dt.kind not in "iu":
            raise CollectiveArgumentError(
                f"AMOs operate on 64-bit integer types, not {dt}"
            )
        if addr < 0 or addr + 8 > self._mem_bytes:
            raise AddressError(
                f"access [{addr:#x}, {addr + 8:#x}) outside memory "
                f"of {self._mem_bytes:#x} bytes"
            )
        self.world.stats.amos += 1
        self.world.engine.checkpoint()
        me = self.pe
        if pe != self.rank:
            me.advance(OLB_LOOKUP_NS)
            rcost = self._strided_ns(pe, addr, 1, 8, 1, use_tlb=False)
            t_done = self.world.network.fetch(me.clock, self.rank, pe, 8)
            me.advance_to(t_done + rcost)
        else:
            me.advance(self._range_ns(self.rank, addr, 8))
        cell = self.world.mem[pe, addr : addr + 8]
        old = int.from_bytes(cell.tobytes(), "little")
        new = amo_apply(op, old, int(value) & MASK64)
        cell[:] = np.frombuffer(new.to_bytes(8, "little"), dtype=np.uint8)
        if dt.kind == "i" and old >> 63:
            return old - (1 << 64)
        return old

    def wait(self, handle: TransferHandle) -> None:
        """Block until one non-blocking transfer has completed."""
        self._require_active()
        if not handle.done:
            self.pe.advance_to(handle.complete_at)
            handle.done = True
        self._pending.pop(id(handle), None)

    def quiet(self) -> None:
        """Block until every outstanding transfer has completed."""
        self._require_active()
        while self._pending:
            _, handle = self._pending.popitem()
            if not handle.done:
                self.pe.advance_to(handle.complete_at)
                handle.done = True

    # -- the batched schedule hook -----------------------------------------

    def schedule_evaluator(self, sched, members: tuple[int, ...], me: int,
                           bindings: dict, dtype: np.dtype) -> None:
        """Rendezvous-and-batch execution of one compiled schedule.

        Called by :func:`~.executor.execute_schedule` in place of the
        step interpreter.  Every participant allocates its scratch and
        private buffers (same declaration order and LIFO release as the
        executor) and parks; the last arrival evaluates the whole group
        with one :func:`evaluate_group` call and resumes each peer at
        its modelled exit clock.
        """
        world = self.world
        engine = world.engine
        engine.checkpoint()
        addrs = dict(bindings)
        allocated: list[tuple[str, int]] = []
        try:
            for buf in sched.buffers:
                if buf.kind == "user" or not buf.held_by(me):
                    continue
                nb = buf.nbytes_on(me)
                if buf.kind == "scratch":
                    addr = self.scratch_alloc(nb)
                else:
                    addr = self.private_malloc(nb)
                addrs[buf.name] = addr
                allocated.append((buf.kind, addr))
            key = tuple(members)
            rec = world.rendezvous.get(key)
            if rec is None:
                rec = world.rendezvous[key] = _Rendezvous(
                    sched, dtype, len(members))
            elif rec.sched is not sched or rec.dtype != dtype:
                raise SimulationError(
                    f"PE {self.rank}: mismatched collective on group "
                    f"{key} ({sched.collective}:{sched.algorithm} vs "
                    f"{rec.sched.collective}:{rec.sched.algorithm})"
                )
            rec.addrs[me] = addrs
            rec.clocks[me] = self.pe.clock
            rec.count += 1
            if rec.count < len(members):
                engine.suspend()  # resumed by the last arrival, below
            else:
                # Pop *before* resuming: peers may immediately enter the
                # next schedule on the same member set.
                del world.rendezvous[key]
                rows = np.asarray(members, dtype=np.int64)
                end = evaluate_group(
                    world.mem, rows, rows, rec.addrs, sched, dtype,
                    rec.clocks, world.network,
                    world.barriers.round_cost_ns(tuple(sorted(members))),
                    world.cost, world.stats,
                )
                for g, rank in enumerate(members):
                    if rank != self.rank:
                        engine.resume(rank, at_time=float(end[g]))
                self.pe.advance_to(float(end[me]))
        finally:
            for kind, addr in reversed(allocated):
                if kind == "scratch":
                    self.scratch_free(addr)
                else:
                    self.private_free(addr)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VecContext(pe={self.rank}/{self.config.n_pes})"


class VecSession(BackendSession):
    """Runs each program on a fresh :class:`VecWorld`."""

    def __init__(self, config: MachineConfig):
        if config.n_pes > MAX_SESSION_PES:
            raise RuntimeStateError(
                f"vec sessions cap at {MAX_SESSION_PES} PEs (one engine "
                f"thread each); evaluate_schedule() handles "
                f"{config.n_pes} PEs without a session"
            )
        self.config = config
        #: The world of the most recent ``run`` (None before the first).
        self.last_world: VecWorld | None = None
        self._closed = False

    def run(self, fn: Callable[..., Any],
            args_per_pe: Sequence[tuple] | None = None) -> list[Any]:
        if self._closed:
            raise RuntimeError("session is closed")
        world = VecWorld(self.config)
        self.last_world = world

        def wrapper(pe: PEProcess, *extra: Any) -> Any:
            ctx = VecContext(world, pe)
            pe.context = ctx
            return fn(ctx, *extra)

        return world.engine.run(wrapper, args_per_pe)

    def close(self) -> None:
        self._closed = True  # nothing OS-level to release


class VecBackend(Backend):
    """The vectorized batch evaluator (``backend="vec"``)."""

    name = "vec"

    def session(self, config: MachineConfig | None = None, *,
                n_pes: int | None = None, **opts: Any) -> VecSession:
        return VecSession(resolve_config(config, n_pes), **opts)


# Install the per-TYPENAME call surface (Table 1) — same wrappers as the
# simulator and multiprocessing contexts.
from ..runtime import typed as _typed  # noqa: E402

_typed.install_typed_api(VecContext)
