"""Shared-memory plumbing for the multiprocessing backend.

Three pieces, all built on ``multiprocessing.shared_memory``:

* :class:`SegmentGroup` — the per-PE memory segments plus one control
  segment, with **unlink-exactly-once** teardown (idempotent ``close``/
  ``unlink`` safe against double-close and interpreter-exit paths, and
  a resource-tracker workaround so attaching workers never unlink what
  the parent owns).
* :class:`ControlBlock` — typed access to the control segment's 8-byte
  cells: the abort flag, the sense-reversing world-barrier state, the
  per-PE progress counters and the pairwise signal table.
* :class:`ShmBarrier` — a *sense-reversing* central barrier for the
  world plus a leader-based signal-counter barrier for teams.  Every
  spin-wait polls the abort flag and a deadline, so a crashed or
  misbehaving peer turns into :class:`~repro.errors.WorkerAbortedError`
  or :class:`~repro.errors.BackendTimeoutError` instead of a hang.

Memory-ordering notes.  Every shared cell has a **single writer** (the
signal table cell ``(src, dst)`` is written only by ``src``; progress
counter ``r`` only by PE ``r``) or is written under the barrier lock
(world-barrier count and sense).  Cells are 8-byte aligned and accessed
through a ``memoryview.cast("Q")``, which CPython performs as one
aligned 8-byte copy; spinners only ever wait for a *monotonic* counter
to reach a target or for the one-bit sense to flip, so a stale read
merely spins once more.
"""

from __future__ import annotations

import os
import secrets
import time
from multiprocessing import resource_tracker, shared_memory
from typing import Callable, Sequence

from ..errors import BackendTimeoutError, WorkerAbortedError

__all__ = [
    "SegmentGroup",
    "ControlBlock",
    "ShmBarrier",
    "spin_until",
    "segment_prefix",
]

#: All segments of one session share this prefix (leak checks grep it).
_PREFIX = "xbgas"


def segment_prefix(token: str) -> str:
    """The ``/dev/shm`` name prefix of a session's segments."""
    return f"{_PREFIX}-{token}"


class SegmentGroup:
    """The shared segments of one session: ``n_pes`` memories + control.

    The creating process (the parent) passes ``create=True`` and becomes
    the owner: only it may ``unlink``, and it does so exactly once no
    matter how many of double ``close()``, explicit ``unlink()`` and the
    interpreter-exit path run.  Workers attach by token and only ever
    ``close`` their mappings.
    """

    def __init__(self, token: str, n_pes: int, seg_bytes: int,
                 ctl_bytes: int, *, create: bool):
        self.token = token
        self.n_pes = n_pes
        self.owner = create
        self._closed = False
        self._unlinked = False
        prefix = segment_prefix(token)
        names = [f"{prefix}-pe{r}" for r in range(n_pes)]
        self._ctl_name = f"{prefix}-ctl"
        self.segments: list[shared_memory.SharedMemory] = []
        self.control: shared_memory.SharedMemory | None = None
        try:
            # Resource-tracker note: on CPython < 3.13 *attaching* also
            # registers with the tracker.  All workers are children of
            # the owner, so they share one tracker process whose cache
            # is a set — duplicate registrations are idempotent and the
            # owner's single ``unlink`` (which unregisters internally)
            # clears the entry.  The entry doubles as the crash backstop:
            # if the owner dies without unlinking, the tracker reaps the
            # segments at exit.
            for name in names:
                self.segments.append(shared_memory.SharedMemory(
                    name=name, create=create, size=seg_bytes))
            self.control = shared_memory.SharedMemory(
                name=self._ctl_name, create=create, size=ctl_bytes)
        except BaseException:
            # Partial construction must not leak /dev/shm entries.
            self._closed = True
            for seg in self.segments:
                seg.close()
                if create:
                    try:
                        seg.unlink()
                    except FileNotFoundError:
                        pass
            raise
        if create:
            # Fresh control state (tmpfs pages are zero-filled already,
            # but an explicit wipe keeps re-created tokens safe).
            self.control.buf[:] = bytes(ctl_bytes)

    @property
    def names(self) -> list[str]:
        return [seg.name for seg in self.segments] + [self.control.name]

    def close(self) -> None:
        """Drop this process's mappings (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for seg in self.segments:
            seg.close()
        if self.control is not None:
            self.control.close()

    def unlink(self) -> None:
        """Remove the segments from the OS — **exactly once**, owner only.

        Safe to call any number of times and from any teardown path
        (explicit close, ``__del__`` of a session, ``atexit``): the
        first call unlinks, every later call is a no-op.  A missing
        segment (e.g. removed by an external cleaner) is tolerated.
        """
        if not self.owner or self._unlinked:
            return
        self._unlinked = True
        for seg in self.segments + ([self.control] if self.control else []):
            try:
                seg.unlink()
            except FileNotFoundError:
                # Externally removed: still drop the tracker entry that
                # SharedMemory.unlink would have cleared.
                try:
                    resource_tracker.unregister(f"/{seg.name}",
                                                "shared_memory")
                except Exception:
                    pass

    @property
    def unlinked(self) -> bool:
        return self._unlinked

    @staticmethod
    def new_token() -> str:
        return f"{os.getpid():x}-{secrets.token_hex(4)}"


# -- control-segment layout (8-byte cells) ----------------------------------
#
# [0]                world-barrier arrival count (lock-protected)
# [1]                world-barrier sense bit (flipped by last arriver)
# [2, 2+n)           per-PE abort cells: the run id PE r must unwind
#                    (0 = clean).  Per-PE rather than a single global
#                    cell so concurrent team-scoped runs fail
#                    independently: aborting tenant A's ranks never
#                    tells tenant B's spinners to unwind.
# [2+n, 2+2n)        per-PE completed-op progress counters
# [2+2n, 2+2n+n*n)   pairwise signal table: cell (src, dst)

_WB_COUNT = 0
_WB_SENSE = 1
_DYN0 = 2


def control_bytes(n_pes: int) -> int:
    return 8 * (_DYN0 + 2 * n_pes + n_pes * n_pes)


def spin_until(pred: Callable[[], bool], *, deadline: float,
               check_abort: Callable[[], None], what: str) -> None:
    """Spin until ``pred()`` — yielding the core, polling abort/deadline.

    The backoff matters on oversubscribed hosts (the paper's own 12-core
    machine ran 12 Spike processes + MPICH): the first iterations only
    yield the timeslice, then the wait parks in short sleeps so waiters
    do not starve the PE they are waiting for.
    """
    i = 0
    while not pred():
        check_abort()
        if time.monotonic() > deadline:
            raise BackendTimeoutError(
                f"timed out waiting for {what} (deadlocked peer?)"
            )
        time.sleep(0 if i < 64 else 2e-4)
        i += 1


class ControlBlock:
    """Typed view of the control segment's 8-byte cell array."""

    def __init__(self, shm: shared_memory.SharedMemory, n_pes: int):
        self.n_pes = n_pes
        self._cells = shm.buf.cast("Q")
        self._abort0 = _DYN0
        self._prog0 = _DYN0 + n_pes
        self._sig0 = _DYN0 + 2 * n_pes

    def release(self) -> None:
        """Drop the exported memoryview (required before shm close)."""
        self._cells.release()

    # -- abort cells (one per PE) -------------------------------------------

    def abort_ranks(self, ranks: Sequence[int] | None, run_id: int) -> None:
        """Tell ``ranks`` (``None`` = everyone) to unwind run ``run_id``.

        Stamping only the failing run's own ranks is what isolates
        concurrent team-scoped runs: PEs serving other runs never see
        their cell change and keep spinning undisturbed.
        """
        for r in (range(self.n_pes) if ranks is None else ranks):
            self._cells[self._abort0 + r] = run_id

    def clear_abort(self, ranks: Sequence[int] | None = None) -> None:
        for r in (range(self.n_pes) if ranks is None else ranks):
            self._cells[self._abort0 + r] = 0

    def aborted_run(self, rank: int) -> int:
        return self._cells[self._abort0 + rank]

    # -- progress counters --------------------------------------------------

    def bump_progress(self, rank: int) -> None:
        """Publish one more completed one-sided op by ``rank``."""
        self._cells[self._prog0 + rank] += 1

    def progress(self, rank: int) -> int:
        return self._cells[self._prog0 + rank]

    # -- world barrier cells (callers hold the barrier lock for RMW) --------

    def wb_count(self) -> int:
        return self._cells[_WB_COUNT]

    def wb_set_count(self, v: int) -> None:
        self._cells[_WB_COUNT] = v

    def wb_sense(self) -> int:
        return self._cells[_WB_SENSE]

    def wb_flip_sense(self) -> None:
        self._cells[_WB_SENSE] ^= 1

    # -- pairwise signal counters ------------------------------------------

    def _sig_idx(self, src: int, dst: int) -> int:
        return self._sig0 + src * self.n_pes + dst

    def signal(self, src: int, dst: int) -> None:
        """One more signal from ``src`` to ``dst`` (single writer: src)."""
        idx = self._sig_idx(src, dst)
        self._cells[idx] += 1

    def signals(self, src: int, dst: int) -> int:
        return self._cells[self._sig_idx(src, dst)]

    def reset_sync_state(self) -> None:
        """Zero barrier counters and the signal table (recovery path).

        Only safe while no worker is inside a barrier — the session
        quiesces all workers before calling this.
        """
        self._cells[_WB_COUNT] = 0
        self._cells[_WB_SENSE] = 0
        for i in range(self._sig0, self._sig0 + self.n_pes * self.n_pes):
            self._cells[i] = 0


class ShmBarrier:
    """Barriers over the control segment, one instance per worker.

    * **World barrier** — the classic sense-reversing central barrier:
      arrivals increment a lock-protected counter; the last arriver
      resets it and flips the shared sense; everyone spins until the
      sense matches their locally-flipped copy.  Counters never leak
      between instances, so back-to-back barriers are safe.
    * **Team barrier** — leader-based over the pairwise signal table:
      members signal the leader (lowest member rank), the leader signals
      back.  Signal counters are monotonic with one writer per cell and
      per-pair consumed counts local to each process, so disjoint teams
      synchronise independently and a slow reader can never observe a
      reused cell (no ABA).
    """

    def __init__(self, ctl: ControlBlock, rank: int, n_pes: int, lock):
        self.ctl = ctl
        self.rank = rank
        self.n_pes = n_pes
        self.lock = lock
        self._sense = 0
        #: (src -> signals consumed) for waits on the signal table.
        self._consumed: dict[int, int] = {}
        #: Current run id (for abort detection); set by the worker loop.
        self.run_id = 0
        #: Per-wait watchdog seconds.
        self.timeout = 60.0

    # -- abort plumbing -----------------------------------------------------

    def _check_abort(self) -> None:
        aborted = self.ctl.aborted_run(self.rank)
        if aborted and aborted == self.run_id:
            raise WorkerAbortedError(
                f"PE {self.rank}: run {self.run_id} aborted by a peer failure"
            )

    def _deadline(self) -> float:
        return time.monotonic() + self.timeout

    # -- world barrier ------------------------------------------------------

    def world(self) -> None:
        if self.n_pes == 1:
            return
        ctl = self.ctl
        with self.lock:
            count = ctl.wb_count() + 1
            if count == self.n_pes:
                ctl.wb_set_count(0)
                ctl.wb_flip_sense()
            else:
                ctl.wb_set_count(count)
        self._sense ^= 1
        target = self._sense
        spin_until(lambda: ctl.wb_sense() == target,
                   deadline=self._deadline(),
                   check_abort=self._check_abort,
                   what=f"world barrier (PE {self.rank})")

    # -- team barrier -------------------------------------------------------

    def _wait_signal(self, src: int) -> None:
        ctl = self.ctl
        have = self._consumed.get(src, 0)
        spin_until(lambda: ctl.signals(src, self.rank) > have,
                   deadline=self._deadline(),
                   check_abort=self._check_abort,
                   what=f"signal {src}->{self.rank}")
        self._consumed[src] = have + 1

    def team(self, members: Sequence[int]) -> None:
        members = tuple(sorted(set(members)))
        if len(members) == self.n_pes:
            return self.world()
        if len(members) <= 1:
            return
        leader = members[0]
        me = self.rank
        if me == leader:
            for m in members[1:]:
                self._wait_signal(m)
            for m in members[1:]:
                self.ctl.signal(me, m)
        else:
            self.ctl.signal(me, leader)
            self._wait_signal(leader)

    # -- recovery -----------------------------------------------------------

    def reset_local(self) -> None:
        """Forget local barrier state (after a session-level reset)."""
        self._sense = 0
        self._consumed.clear()

    def attach_sync(self) -> None:
        """Adopt the *current* shared barrier state as this PE's baseline.

        Two callers: a replacement worker attaching to a live session
        (in-place slot rebuild — shared cells were never zeroed), and a
        survivor of a failed team-scoped run discarding stale signals
        its dead peers left unconsumed.  The invariant restored is the
        idle-PE one: local sense equals the shared sense, and every
        signal currently in the table counts as already consumed.  On a
        freshly zeroed control block this is identical to the default
        constructor state.
        """
        self._sense = self.ctl.wb_sense()
        self._consumed = {
            src: self.ctl.signals(src, self.rank)
            for src in range(self.n_pes)
            if self.ctl.signals(src, self.rank)
        }
