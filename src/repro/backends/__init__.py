"""Execution backends: the same xbrtime programs, two substrates.

* ``"sim"`` — the deterministic cooperative simulator (modelled time).
* ``"mp"`` — true-parallel worker processes over shared memory
  (wall-clock time); alias ``"multiprocessing"``.
* ``"vec"`` — the vectorized batch evaluator: compiled schedules run as
  numpy fan-outs over all ranks at once (modelled time, closed-form
  costs); the large-PE substrate.

Select one by name::

    from repro.backends import get_backend

    results = get_backend("mp").run(program, n_pes=8)

or through the top-level convenience API
(:func:`repro.xbrtime.init` / :func:`repro.xbrtime.run`).
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from .base import Backend, BackendSession, resolve_config
from .mp import MPContext, MPSession, MultiprocessingBackend
from .sim import SimulatorBackend, SimulatorSession
from .vec import VecBackend, VecContext, VecSession

__all__ = [
    "Backend",
    "BackendSession",
    "BACKENDS",
    "get_backend",
    "launch",
    "resolve_config",
    "SimulatorBackend",
    "SimulatorSession",
    "MultiprocessingBackend",
    "MPSession",
    "MPContext",
    "VecBackend",
    "VecSession",
    "VecContext",
]

#: Registry of selectable backends (aliases included).
BACKENDS: dict[str, type[Backend]] = {
    "sim": SimulatorBackend,
    "mp": MultiprocessingBackend,
    "multiprocessing": MultiprocessingBackend,
    "vec": VecBackend,
}


def get_backend(name: str) -> Backend:
    """Instantiate a backend by registry name (``"sim"`` / ``"mp"``)."""
    try:
        cls = BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; choose from "
            f"{sorted(set(BACKENDS))}"
        ) from None
    return cls()


def launch(fn: Callable[..., Any], *, backend: str = "sim",
           n_pes: int | None = None, config=None,
           args_per_pe: Sequence[tuple] | None = None,
           **opts: Any) -> list[Any]:
    """One-shot: run ``fn(ctx, *extra)`` on every PE of ``backend``."""
    return get_backend(backend).run(fn, args_per_pe, config=config,
                                    n_pes=n_pes, **opts)
