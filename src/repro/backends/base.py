"""The backend protocol: one contract, two ways to run PEs.

The paper's runtime executes on real concurrent processing elements (a
12-core Spike cluster bridged by MPICH).  This reproduction has two
interchangeable execution substrates:

* :class:`~repro.backends.sim.SimulatorBackend` — the deterministic
  cooperative simulator (:class:`~repro.runtime.context.Machine`); every
  PE is a greenlet-style thread time-sliced by the PDES engine, and all
  reported times are *modelled* nanoseconds.
* :class:`~repro.backends.mp.MultiprocessingBackend` — true parallel OS
  processes; the symmetric heap lives in ``multiprocessing.shared_memory``
  segments mapped at the same offset on every PE, remote put/get are
  direct cross-segment memcpys, and reported times are wall-clock.

Both run the *same* xbrtime programs: a program receives a per-PE
context object implementing the **PE context protocol** — the surface
:class:`~repro.runtime.context.XBRTime` documents, of which the
collectives layer uses exactly:

======================  ====================================================
member                  used for
======================  ====================================================
``rank``                this PE's world rank (attribute)
``config``              :class:`~repro.params.MachineConfig` (layout, costs)
``world_group``         the all-PEs tuple
``spans``               span recorder (``.enabled`` may be ``False``)
``count_collective``    stats accounting per collective call
``executing_rank()``    misuse detection for shared non-blocking handles
``barrier/barrier_team``synchronisation (+ network quiescence)
``put/get/amo``         one-sided data movement
``put_nb/get_nb/wait/quiet``  non-blocking transfers
``view``                numpy aliasing of local memory
``is_symmetric``        address-segment classification
``malloc/free``         collective symmetric heap
``scratch_alloc/free``  symmetric scratch stack (LIFO)
``private_malloc/free`` private segment
``compute/charge_*``    cost charging (free on wall-clock backends)
======================  ====================================================

Because ``execute_schedule`` and every collective front-end reach shared
state only through that protocol, each compiled
:class:`~repro.collectives.schedule.ir.Schedule` runs unmodified — and
produces byte-identical output buffers — on either backend (proved by
``tests/backends/test_conformance.py``).
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Sequence

from ..params import MachineConfig

__all__ = ["Backend", "BackendSession", "resolve_config"]


def resolve_config(config: MachineConfig | None,
                   n_pes: int | None) -> MachineConfig:
    """Build the effective configuration for a backend run.

    ``n_pes`` (when given) overrides the configuration's PE count; with
    neither argument the default :class:`MachineConfig` applies.
    """
    if config is None:
        config = MachineConfig() if n_pes is None else MachineConfig(n_pes=n_pes)
    elif n_pes is not None and n_pes != config.n_pes:
        config = config.with_(n_pes=n_pes)
    return config


class BackendSession(abc.ABC):
    """A reusable execution environment for one PE count.

    Sessions exist so repeated runs (conformance sweeps, benchmarks)
    amortise backend start-up — the multiprocessing backend keeps its
    worker processes and shared-memory segments alive between runs.
    ``close`` must be idempotent and is also triggered at interpreter
    exit; see the teardown guarantee on :class:`~repro.backends.mp.MPSession`.
    """

    config: MachineConfig

    @property
    def n_pes(self) -> int:
        return self.config.n_pes

    @abc.abstractmethod
    def run(self, fn: Callable[..., Any],
            args_per_pe: Sequence[tuple] | None = None) -> list[Any]:
        """Run ``fn(ctx, *extra)`` on every PE; returns per-rank results."""

    @abc.abstractmethod
    def close(self) -> None:
        """Tear the session down (idempotent)."""

    def __enter__(self) -> "BackendSession":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class Backend(abc.ABC):
    """One execution substrate for xbrtime programs."""

    #: Registry key (``"sim"`` / ``"mp"``).
    name: str

    @abc.abstractmethod
    def session(self, config: MachineConfig | None = None, *,
                n_pes: int | None = None, **opts: Any) -> BackendSession:
        """Open a reusable session (see :class:`BackendSession`)."""

    def run(self, fn: Callable[..., Any],
            args_per_pe: Sequence[tuple] | None = None, *,
            config: MachineConfig | None = None,
            n_pes: int | None = None, **opts: Any) -> list[Any]:
        """One-shot convenience: open a session, run once, close."""
        with self.session(config, n_pes=n_pes, **opts) as session:
            return session.run(fn, args_per_pe)
