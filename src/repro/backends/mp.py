"""True-parallel execution: one OS process per PE over shared memory.

The paper ran xbrtime programs on 12 concurrent Spike processes bridged
by MPICH; this backend is the reproduction's equivalent substrate.  Each
PE is a worker process holding the *same* memory layout as a simulated
PE (private segment, scratch stacks, collective symmetric heap — see
:class:`~repro.runtime.context.Machine`), but the bytes live in
``multiprocessing.shared_memory`` segments mapped into every worker, so

* a symmetric address is the same *offset* in every PE's segment — the
  literal Figure 2 property, enforced by construction;
* a remote ``put``/``get`` is a direct cross-segment memcpy by the
  initiating PE (one-sided: the target's CPU is not involved), made
  visible by bumping the initiator's progress counter;
* ``barrier`` is the sense-reversing shared-memory barrier of
  :class:`~repro.backends.shm.ShmBarrier`.

:class:`MPContext` implements the PE context protocol (see
:mod:`repro.backends.base`), so every compiled schedule and collective
front-end runs unmodified.  Time here is *wall-clock*: ``compute`` and
the ``charge_*`` methods cost nothing, and ``time_ns`` reads the host
clock.

Failure containment.  A worker that raises stamps the shared abort flag
with the current run id before reporting, so peers spinning in barriers
unwind with :class:`~repro.errors.WorkerAbortedError` instead of
hanging; the parent then quiesces every worker, zeroes the shared
synchronisation state and re-raises as
:class:`~repro.errors.WorkerFailedError` — the session stays usable.  A
worker stuck in user code past the watchdog is terminated and the pool
rebuilt.  Teardown closes and unlinks every segment exactly once, from
whichever of explicit ``close``, context-manager exit or ``atexit``
runs first.
"""

from __future__ import annotations

import atexit
import os
import pickle
import queue as queue_mod
import time
import traceback
from collections import Counter
from typing import Any, Callable, Sequence

import multiprocessing as mp

import numpy as np

from ..errors import (
    AddressError,
    BackendTimeoutError,
    CollectiveArgumentError,
    RuntimeStateError,
    WorkerAbortedError,
    WorkerFailedError,
)
from ..isa.cpu import amo_apply
from ..params import MachineConfig
from ..runtime.collective_api import CollectiveAPI, resolve_dtype
from ..runtime.context import CODE_REGION_BYTES
from ..runtime.symmetric_heap import (
    FreeListAllocator,
    ScratchStack,
    SymmetricHeap,
)
from .base import Backend, BackendSession, resolve_config
from .shm import ControlBlock, SegmentGroup, ShmBarrier, control_bytes

__all__ = ["MultiprocessingBackend", "MPSession", "MPContext"]

MASK64 = (1 << 64) - 1

#: Extra seconds past the run watchdog before stuck workers are killed.
_GRACE = 5.0

#: Watchdog floor on memcpy bandwidth: a run moving N payload bytes gets
#: N / this many extra seconds before the deadlock detector fires.  Far
#: below any real shared-memory bandwidth on purpose — the deadline only
#: needs to *not* false-trip on an oversubscribed host where workers of
#: several concurrent jobs share one core.
TIMEOUT_BYTES_PER_S = 4 * 1024 * 1024


def scaled_timeout(base: float, payload_nbytes: int = 0) -> float:
    """Watchdog seconds for a run moving ``payload_nbytes`` of payload.

    A flat deadline false-trips large-payload jobs queued behind other
    tenants on a busy pool (the peers of a PE still memcpying a big
    buffer sit in the entry barrier and hit the constant); scaling the
    deadline with the payload keeps the detector honest for deadlocks
    while never racing legitimate bulk transfers.
    """
    return base + max(0, payload_nbytes) / TIMEOUT_BYTES_PER_S


class _DisabledSpans:
    """Span-recorder stub: tracing is never available on wall-clock runs."""

    enabled = False


_NO_SPANS = _DisabledSpans()


class MPTransferHandle:
    """Completion token of an (eagerly completed) non-blocking transfer.

    Cross-segment memcpys are synchronous, so ``put_nb``/``get_nb``
    finish before returning; the handle only preserves the call shape.
    """

    __slots__ = ("kind", "nbytes", "done")

    def __init__(self, kind: str, nbytes: int):
        self.kind = kind
        self.nbytes = nbytes
        self.done = True


class MPContext(CollectiveAPI):
    """Per-PE runtime context over shared-memory segments.

    One instance per (worker process, run).  The segment mappings and
    barrier are worker-lifetime (passed in); allocator state — heap
    replica, scratch stacks, private free list — is rebuilt fresh each
    run, exactly as a fresh simulated machine would.  Heap replicas stay
    identical across PEs because collective mallocs replay the same call
    log in the same order on every participant.

    ``sync_group`` (a tuple of world ranks, this PE included) makes the
    context **team-scoped**: ``init``/``close``/``barrier`` synchronise
    only the group (over the pairwise signal table, never the world
    barrier), and every collective called without an explicit ``group``
    defaults to it with group-relative roots.  Team-scoped contexts on
    disjoint rank sets share one session concurrently without touching
    each other's synchronisation state — the serving layer
    (:mod:`repro.serve`) is built on exactly this.  Heap replicas still
    agree because only the group's members run the program, and their
    segments are disjoint from every other group's.
    """

    #: Which execution backend this context belongs to.
    backend_name = "mp"

    def __init__(self, rank: int, config: MachineConfig, segs: SegmentGroup,
                 ctl: ControlBlock, barrier: ShmBarrier,
                 amo_locks: Sequence[Any],
                 sync_group: Sequence[int] | None = None):
        self.rank = rank
        self.config = config
        self.world_group = tuple(range(config.n_pes))
        #: Default group for collectives (None = the whole world).
        self.default_group = (
            tuple(sync_group) if sync_group is not None else None
        )
        self._ctl = ctl
        self._barrier = barrier
        self._amo_locks = amo_locks
        self._mem_bytes = config.memory_bytes_per_pe
        # Same layout arithmetic as Machine.__init__ (Figure 2).
        heap_base = config.memory_bytes_per_pe - config.symmetric_heap_bytes
        scratch = config.collective_scratch_bytes
        self._heap_base = heap_base
        self._scratch = ScratchStack(heap_base, scratch)
        self._heap = SymmetricHeap(
            heap_base + scratch, config.symmetric_heap_bytes - scratch,
            config.n_pes,
        )
        self._private = FreeListAllocator(
            CODE_REGION_BYTES, heap_base - CODE_REGION_BYTES
        )
        self._heap_calls = 0
        self._bufs: list[np.ndarray] | None = [
            np.frombuffer(seg.buf, dtype=np.uint8) for seg in segs.segments
        ]
        self.collective_calls: Counter[str] = Counter()
        self._active = False
        self._closed = False
        self._t0 = time.perf_counter()

    # -- protocol accessors ------------------------------------------------------

    @property
    def spans(self) -> _DisabledSpans:
        return _NO_SPANS

    def count_collective(self, stats_key: str) -> None:
        self.collective_calls[stats_key] += 1

    def executing_rank(self) -> int | None:
        # Each process *is* one PE: nothing else ever runs here.
        return self.rank

    # -- lifecycle -------------------------------------------------------------

    def _sync_barrier(self) -> None:
        """The context's own barrier: world, or the sync group's."""
        if self.default_group is None:
            self._barrier.world()
        else:
            self._barrier.team(self.default_group)

    def init(self) -> None:
        """``xbrtime_init``: bring the runtime up; synchronises the group."""
        if self._active:
            raise RuntimeStateError(f"PE {self.rank}: init() called twice")
        if self._closed:
            raise RuntimeStateError(f"PE {self.rank}: init() after close()")
        self._active = True
        self._sync_barrier()

    def close(self) -> None:
        """``xbrtime_close``: tear the runtime down; synchronises the group."""
        self._require_active()
        self._sync_barrier()
        self._active = False
        self._closed = True

    def _require_active(self) -> None:
        if not self._active:
            raise RuntimeStateError(
                f"PE {self.rank}: runtime used outside init()/close()"
            )

    def release(self) -> None:
        """Drop the segment views (required before unmapping segments)."""
        self._bufs = None

    # -- identity ---------------------------------------------------------------

    def my_pe(self) -> int:
        """``xbrtime_mype``."""
        self._require_active()
        return self.rank

    def num_pes(self) -> int:
        """``xbrtime_num_pes``."""
        self._require_active()
        return self.config.n_pes

    def failed_pes(self) -> frozenset[int]:
        """Fault injection does not exist here: nobody is ever dead."""
        return frozenset()

    def live_pes(self) -> tuple[int, ...]:
        return self.world_group

    @property
    def time_ns(self) -> float:
        """Wall-clock nanoseconds since this context was created."""
        return (time.perf_counter() - self._t0) * 1e9

    # -- memory management ---------------------------------------------------------

    def malloc(self, nbytes: int, align: int = 16) -> int:
        """Collective symmetric allocation (same address on every PE)."""
        self._require_active()
        idx = self._heap_calls
        self._heap_calls += 1
        return self._heap.collective_malloc(idx, nbytes, align)

    def free(self, addr: int) -> None:
        """Collective symmetric free."""
        self._require_active()
        idx = self._heap_calls
        self._heap_calls += 1
        self._heap.collective_free(idx, addr)

    def scratch_alloc(self, nbytes: int, align: int = 16) -> int:
        self._require_active()
        return self._scratch.alloc(nbytes, align)

    def scratch_free(self, addr: int) -> None:
        self._require_active()
        self._scratch.free(addr)

    def private_malloc(self, nbytes: int, align: int = 16) -> int:
        self._require_active()
        return self._private.alloc(nbytes, align)

    def private_free(self, addr: int) -> None:
        self._require_active()
        self._private.free(addr)

    def is_symmetric(self, addr: int) -> bool:
        return addr >= self._heap_base

    def _segment_view(self, pe: int, addr: int, dtype: np.dtype,
                      count: int, stride: int) -> np.ndarray:
        """:meth:`repro.isa.memory.Memory.view` over PE ``pe``'s segment."""
        if count < 0:
            raise AddressError("count must be non-negative")
        if stride < 1:
            raise AddressError(f"stride must be >= 1, got {stride}")
        if count == 0:
            return np.empty(0, dtype=dtype)
        span = ((count - 1) * stride + 1) * dtype.itemsize
        if addr < 0 or addr + span > self._mem_bytes:
            raise AddressError(
                f"access [{addr:#x}, {addr + span:#x}) outside memory "
                f"of {self._mem_bytes:#x} bytes"
            )
        dense = self._bufs[pe][addr : addr + span].view(dtype)
        return dense[::stride]

    def view(self, addr: int, dtype: str | np.dtype, count: int,
             stride: int = 1) -> np.ndarray:
        """A numpy view of local memory (aliases the shared segment)."""
        return self._segment_view(self.rank, addr, resolve_dtype(dtype),
                                  count, stride)

    def view_on(self, pe: int, addr: int, dtype: str | np.dtype, count: int,
                stride: int = 1) -> np.ndarray:
        """A view of another PE's segment — tests/verification only."""
        return self._segment_view(pe, addr, resolve_dtype(dtype), count,
                                  stride)

    # -- time charging (free on a wall-clock backend) ----------------------------------

    def compute(self, ns: float) -> None:
        """Modelled compute costs nothing here: real work takes real time."""

    def charge_access(self, addr: int, nbytes: int = 8,
                      write: bool = False) -> float:
        return 0.0

    def charge_stream(self, addr: int, nbytes: int,
                      write: bool = False) -> float:
        return 0.0

    # -- synchronisation -------------------------------------------------------------

    def barrier(self) -> None:
        """``xbrtime_barrier``: the world, or (team-scoped) the group."""
        self._require_active()
        self._sync_barrier()

    def barrier_team(self, members: Sequence[int]) -> None:
        self._require_active()
        self._barrier.team(tuple(members))

    # -- one-sided communication --------------------------------------------------------

    def _check_args(self, nelems: int, stride: int, target: int) -> None:
        if nelems < 0:
            raise CollectiveArgumentError(f"nelems must be >= 0, got {nelems}")
        if stride < 1:
            raise CollectiveArgumentError(f"stride must be >= 1, got {stride}")
        if not 0 <= target < self.config.n_pes:
            raise CollectiveArgumentError(
                f"pe {target} out of range [0, {self.config.n_pes})"
            )

    def put(self, dest: int, src: int, nelems: int, stride: int, pe: int,
            dtype: str | np.dtype = "long") -> None:
        """``xbrtime_TYPE_put`` as a cross-segment memcpy."""
        self._require_active()
        self._check_args(nelems, stride, pe)
        if nelems == 0:
            return
        dt = resolve_dtype(dtype)
        sview = self._segment_view(self.rank, src, dt, nelems, stride)
        dview = self._segment_view(pe, dest, dt, nelems, stride)
        # A local transfer may overlap itself; remote segments never alias.
        dview[:] = sview.copy() if pe == self.rank else sview
        self._ctl.bump_progress(self.rank)

    def get(self, dest: int, src: int, nelems: int, stride: int, pe: int,
            dtype: str | np.dtype = "long") -> None:
        """``xbrtime_TYPE_get`` as a cross-segment memcpy."""
        self._require_active()
        self._check_args(nelems, stride, pe)
        if nelems == 0:
            return
        dt = resolve_dtype(dtype)
        sview = self._segment_view(pe, src, dt, nelems, stride)
        dview = self._segment_view(self.rank, dest, dt, nelems, stride)
        dview[:] = sview.copy() if pe == self.rank else sview
        self._ctl.bump_progress(self.rank)

    def put_nb(self, dest: int, src: int, nelems: int, stride: int, pe: int,
               dtype: str | np.dtype = "long") -> MPTransferHandle:
        """Non-blocking put (eagerly completed — memcpys are synchronous)."""
        self.put(dest, src, nelems, stride, pe, dtype)
        return MPTransferHandle("put", nelems * resolve_dtype(dtype).itemsize)

    def get_nb(self, dest: int, src: int, nelems: int, stride: int, pe: int,
               dtype: str | np.dtype = "long") -> MPTransferHandle:
        """Non-blocking get (eagerly completed)."""
        self.get(dest, src, nelems, stride, pe, dtype)
        return MPTransferHandle("get", nelems * resolve_dtype(dtype).itemsize)

    def amo(self, addr: int, value: int, pe: int, op: str = "add",
            dtype: str | np.dtype = "uint64") -> int:
        """Remote fetch-and-op, serialised by the target PE's AMO lock."""
        self._require_active()
        self._check_args(1, 1, pe)
        dt = resolve_dtype(dtype)
        if dt.itemsize != 8 or dt.kind not in "iu":
            raise CollectiveArgumentError(
                f"AMOs operate on 64-bit integer types, not {dt}"
            )
        if addr < 0 or addr + 8 > self._mem_bytes:
            raise AddressError(
                f"access [{addr:#x}, {addr + 8:#x}) outside memory "
                f"of {self._mem_bytes:#x} bytes"
            )
        cell = self._bufs[pe][addr : addr + 8]
        with self._amo_locks[pe]:
            old = int.from_bytes(cell.tobytes(), "little")
            new = amo_apply(op, old, int(value) & MASK64)
            cell[:] = np.frombuffer(new.to_bytes(8, "little"), dtype=np.uint8)
        self._ctl.bump_progress(self.rank)
        if dt.kind == "i" and old >> 63:
            return old - (1 << 64)
        return old

    def wait(self, handle: MPTransferHandle) -> None:
        """Complete one non-blocking transfer (already complete)."""
        self._require_active()
        handle.done = True

    def quiet(self) -> None:
        """Complete all outstanding transfers (memcpys already landed)."""
        self._require_active()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MPContext(pe={self.rank}/{self.config.n_pes})"


# -- worker process -----------------------------------------------------------


def _worker_main(rank: int, config: MachineConfig, token: str,
                 barrier_lock, amo_locks, task_q, result_q) -> None:
    """The PE worker loop: attach segments, then serve tasks forever.

    Messages on ``task_q``:

    * ``("run", run_id, fn, args, timeout, sync_group)`` — run
      ``fn(ctx, *args)`` against a fresh context (team-scoped when
      ``sync_group`` is a rank tuple); report ``("ok" | "err" |
      "aborted", rank, run_id, payload)``.
    * ``("reset", seq)`` — forget local barrier state (global session
      recovery, shared cells about to be zeroed); acked with
      ``("reset-ok", rank, seq, None)``.
    * ``("resync", seq)`` — adopt the *current* shared barrier state
      (slot-local recovery after a team-scoped failure, shared cells
      kept); acked with ``("resync-ok", rank, seq, None)``.
    * ``None`` — exit cleanly.

    A failing run stamps the abort cells of *its own ranks only* before
    reporting, so peers of the same run unwind promptly while workers
    serving other (team-scoped) runs never notice;
    ``WorkerAbortedError`` unwinds are reported as ``"aborted"`` so the
    parent can tell the primary failure from collateral ones.
    """
    segs = SegmentGroup(token, config.n_pes, config.memory_bytes_per_pe,
                        control_bytes(config.n_pes), create=False)
    ctl = ControlBlock(segs.control, config.n_pes)
    barrier = ShmBarrier(ctl, rank, config.n_pes, barrier_lock)
    # A replacement worker attaching mid-session adopts the live barrier
    # state; on a freshly zeroed control block this is a no-op.
    barrier.attach_sync()
    try:
        while True:
            task = task_q.get()
            if task is None:
                return
            if task[0] == "reset":
                barrier.reset_local()
                result_q.put(("reset-ok", rank, task[1], None))
                continue
            if task[0] == "resync":
                barrier.attach_sync()
                result_q.put(("resync-ok", rank, task[1], None))
                continue
            _, run_id, fn, args, timeout, sync_group = task
            barrier.run_id = run_id
            barrier.timeout = timeout
            ctx = MPContext(rank, config, segs, ctl, barrier, amo_locks,
                            sync_group=sync_group)
            try:
                result = fn(ctx, *args)
                try:
                    pickle.dumps(result)
                except Exception as exc:
                    ctl.abort_ranks(sync_group, run_id)
                    msg = ("err", rank, run_id,
                           f"PE {rank} returned an unpicklable result: "
                           f"{exc!r}")
                else:
                    msg = ("ok", rank, run_id, result)
            except WorkerAbortedError:
                msg = ("aborted", rank, run_id, traceback.format_exc())
            except BaseException:
                ctl.abort_ranks(sync_group, run_id)
                msg = ("err", rank, run_id, traceback.format_exc())
            finally:
                ctx.release()
            result_q.put(msg)
    finally:
        ctl.release()
        segs.close()


# -- the session --------------------------------------------------------------


class MPTicket:
    """One in-flight run on a subset (or all) of the session's PEs.

    Created by :meth:`MPSession.submit`; completed by
    :meth:`MPSession.wait` (or polled via :meth:`MPSession.pump` +
    :attr:`complete`).  Holds per-rank results and failure diagnostics
    while messages trickle in.
    """

    __slots__ = ("run_id", "ranks", "sync_group", "limit", "deadline",
                 "payload_nbytes", "results", "failures", "aborted",
                 "outstanding", "dead", "timed_out")

    def __init__(self, run_id: int, ranks: tuple[int, ...],
                 sync_group: tuple[int, ...] | None, limit: float,
                 deadline: float, payload_nbytes: int):
        self.run_id = run_id
        self.ranks = ranks
        self.sync_group = sync_group
        self.limit = limit
        self.deadline = deadline
        self.payload_nbytes = payload_nbytes
        self.results: dict[int, Any] = {}
        self.failures: dict[int, str] = {}
        self.aborted: dict[int, str] = {}
        self.outstanding: set[int] = set(ranks)
        self.dead: set[int] = set()
        self.timed_out = False

    @property
    def complete(self) -> bool:
        """Every rank accounted for (result, failure or death)."""
        return not self.outstanding

    @property
    def ok(self) -> bool:
        return (self.complete and not self.failures and not self.aborted
                and not self.timed_out)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MPTicket(run={self.run_id}, ranks={self.ranks}, "
                f"outstanding={sorted(self.outstanding)})")


class MPSession(BackendSession):
    """A persistent pool of PE worker processes over shared segments.

    Workers and segments are created once and reused across ``run``
    calls (conformance sweeps and benchmarks amortise the start-up).
    Teardown (explicit ``close``, ``with`` exit or the ``atexit`` hook —
    whichever comes first) terminates every worker and unlinks every
    segment exactly once; ``close`` is idempotent.

    Beyond whole-world ``run``, the session multiplexes **concurrent
    team-scoped runs** over disjoint rank subsets
    (:meth:`submit`/:meth:`wait`): each run gets its own run id, its
    own abort cells and a team-scoped context, so independent jobs
    share the pool without sharing failure domains.  A failed subset
    run is repaired *in place* — dead worker slots are rebuilt one at a
    time against the existing shared-memory segments (the layout is
    keyed only by the immutable config, so nothing is unlinked or
    re-created) and survivors resync their barrier baseline — while
    runs on other ranks proceed undisturbed.
    """

    def __init__(self, config: MachineConfig, *, timeout: float = 60.0,
                 start_method: str | None = None):
        self.config = config
        self.timeout = timeout
        method = (start_method or os.environ.get("XBGAS_MP_START")
                  or "fork")
        self._mp = mp.get_context(method)
        self._run_id = 0
        self._closed = False
        token = SegmentGroup.new_token()
        self.token = token
        self._segs = SegmentGroup(
            token, config.n_pes, config.memory_bytes_per_pe,
            control_bytes(config.n_pes), create=True,
        )
        self._ctl = ControlBlock(self._segs.control, config.n_pes)
        self._barrier_lock = self._mp.Lock()
        self._amo_locks = [self._mp.Lock() for _ in range(config.n_pes)]
        self._result_q = self._mp.Queue()
        self._task_qs: list[Any] = []
        self._workers: list[Any] = []
        self._tickets: dict[int, MPTicket] = {}
        self._busy: set[int] = set()
        self._acks: set[tuple[str, int, int]] = set()
        self._ack_seq = 0
        try:
            for rank in range(config.n_pes):
                self._task_qs.append(self._mp.SimpleQueue())
                self._workers.append(self._spawn(rank))
        except BaseException:
            self._teardown()
            raise
        atexit.register(self.close)

    # -- worker management --------------------------------------------------

    def _spawn(self, rank: int):
        proc = self._mp.Process(
            target=_worker_main,
            args=(rank, self.config, self.token, self._barrier_lock,
                  self._amo_locks, self._task_qs[rank], self._result_q),
            name=f"xbgas-pe{rank}",
            daemon=True,
        )
        proc.start()
        return proc

    def _rebuild_pool(self, kill: bool = True) -> None:
        """Replace every worker and zero the shared sync state.

        The heavyweight recovery path — used when workers are stuck in
        user code (watchdog) or have died: per-worker reset messages
        cannot be trusted to be read.  The shared-memory segments are
        **reused**, never unlinked: their layout depends only on the
        immutable session config, so the replacement workers re-attach
        to the same ``/dev/shm`` entries.
        """
        # Ask live workers to exit on their own before terminating: a
        # worker SIGTERM'd mid result-queue put can die holding the
        # queue's feeder lock, wedging every future reporter.  Idle
        # workers (the common recovery case) read the sentinel and
        # leave cleanly; only ones stuck in user code get terminated.
        if kill:
            for q, proc in zip(self._task_qs, self._workers):
                if proc.is_alive():
                    try:
                        q.put(None)
                    except Exception:
                        pass
        deadline = time.monotonic() + _GRACE
        for proc in self._workers:
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=_GRACE)
        self._drain_results()
        self._tickets.clear()
        self._busy.clear()
        self._acks.clear()
        # Every writer is gone, so swap in a fresh result queue: even a
        # worker that did die holding the old queue's lock cannot
        # poison the replacement pool.
        self._result_q = self._mp.Queue()
        self._ctl.reset_sync_state()
        self._ctl.clear_abort()
        for rank in range(self.config.n_pes):
            self._task_qs[rank] = self._mp.SimpleQueue()
            self._workers[rank] = self._spawn(rank)

    def _rebuild_slot(self, rank: int) -> None:
        """Replace one worker in place; every other slot keeps running.

        Reuses the existing shared segments (layout unchanged — nothing
        is unlinked or re-created) and leaves shared sync state alone:
        the replacement adopts the live barrier baseline via
        ``attach_sync`` on startup.  This is the crash-isolation path of
        team-scoped serving — one tenant's dead worker must not quiesce
        the pool.
        """
        proc = self._workers[rank]
        if proc.is_alive():
            proc.terminate()
        proc.join(timeout=_GRACE)
        self._task_qs[rank] = self._mp.SimpleQueue()
        self._workers[rank] = self._spawn(rank)

    def _drain_results(self) -> None:
        while True:
            try:
                self._result_q.get_nowait()
            except queue_mod.Empty:
                return

    def _await_acks(self, kind: str, ranks: Sequence[int],
                    task: tuple) -> list[int]:
        """Send ``task`` to ``ranks``; collect acks.  Returns laggards."""
        if not ranks:
            return []
        seq = task[1]
        for rank in ranks:
            self._task_qs[rank].put(task)
        pending = set(ranks)
        deadline = time.monotonic() + _GRACE
        while pending and time.monotonic() <= deadline:
            self.pump(0.05)
            for rank in list(pending):
                key = (kind, rank, seq)
                if key in self._acks:
                    self._acks.discard(key)
                    pending.discard(rank)
        return sorted(pending)

    def _recover(self) -> None:
        """Quiesce live workers after a failed world run; reset sync state.

        Every worker has already reported for the failed run (so none is
        inside a barrier); the reset round trips make sure each has also
        forgotten its local barrier sense before the shared counters are
        zeroed.  Only valid with no subset tickets outstanding — world
        runs exclude them by construction.
        """
        dead = [p for p in self._workers if not p.is_alive()]
        if dead:
            self._rebuild_pool()
            return
        self._ack_seq += 1
        laggards = self._await_acks(
            "reset-ok", range(self.config.n_pes), ("reset", self._ack_seq))
        if laggards:
            self._rebuild_pool()
            return
        self._ctl.reset_sync_state()
        self._ctl.clear_abort()

    def _repair_subset(self, ticket: MPTicket) -> None:
        """Slot-level recovery after a failed team-scoped run.

        Dead members' slots are rebuilt in place; survivors (already
        idle — they reported for the failed run) discard the stale
        barrier signals their dead peers left behind.  Shared state of
        every rank outside the ticket is untouched.
        """
        for rank in sorted(ticket.dead):
            self._rebuild_slot(rank)
        survivors = [r for r in ticket.ranks if r not in ticket.dead]
        self._ack_seq += 1
        for rank in self._await_acks("resync-ok", survivors,
                                     ("resync", self._ack_seq)):
            self._rebuild_slot(rank)  # unresponsive survivor: replace too
        self._ctl.clear_abort(ticket.ranks)

    # -- running programs ---------------------------------------------------

    def submit(self, fn: Callable[..., Any],
               args_per_pe: Sequence[tuple] | None = None, *,
               ranks: Sequence[int] | None = None,
               timeout: float | None = None,
               payload_nbytes: int = 0) -> MPTicket:
        """Dispatch ``fn(ctx, *extra)`` without waiting for completion.

        ``ranks=None`` targets every PE (world semantics, identical to
        :meth:`run`); a rank tuple dispatches a **team-scoped** run on
        just those workers — their contexts synchronise only the group,
        and collectives default to it (group-relative roots).  Subset
        runs on disjoint ranks proceed concurrently; overlapping an
        outstanding run's ranks raises :class:`RuntimeStateError`.

        ``payload_nbytes`` (the job's total payload footprint) scales
        the watchdog deadline via :func:`scaled_timeout` so bulk
        transfers on a busy host never false-trip the deadlock detector.
        """
        if self._closed:
            raise RuntimeStateError("MPSession used after close()")
        n = self.config.n_pes
        world = ranks is None
        members = tuple(range(n)) if world else tuple(ranks)
        if not members:
            raise ValueError("cannot submit a run on zero ranks")
        if len(set(members)) != len(members):
            raise ValueError(f"duplicate ranks in {members}")
        for r in members:
            if not 0 <= r < n:
                raise ValueError(f"rank {r} out of range [0, {n})")
        overlap = set(members) & self._busy
        if overlap:
            raise RuntimeStateError(
                f"PEs {sorted(overlap)} are still busy with an outstanding "
                "run; subset runs must use disjoint ranks"
            )
        if world and self._tickets:
            raise RuntimeStateError(
                "cannot start a whole-world run while subset runs are "
                "outstanding"
            )
        if args_per_pe is not None and len(args_per_pe) != len(members):
            raise ValueError(
                f"args_per_pe has {len(args_per_pe)} entries for "
                f"{len(members)} participating PEs"
            )
        limit = scaled_timeout(self.timeout if timeout is None else timeout,
                               payload_nbytes)
        self._run_id += 1
        run_id = self._run_id
        sync_group = None if world else members
        ticket = MPTicket(run_id, members, sync_group, limit,
                          time.monotonic() + limit + _GRACE, payload_nbytes)
        self._tickets[run_id] = ticket
        self._busy |= set(members)
        for i, rank in enumerate(members):
            extra = tuple(args_per_pe[i]) if args_per_pe is not None else ()
            self._task_qs[rank].put(
                ("run", run_id, fn, extra, limit, sync_group))
        return ticket

    def pump(self, block_s: float = 0.0) -> None:
        """Route pending worker messages; police liveness and deadlines.

        Safe to call at any time; :meth:`wait` calls it in a loop.  A
        poll-style driver (the serving layer's dispatcher) calls it
        directly and checks each ticket's :attr:`MPTicket.complete`.
        """
        self._check_tickets()
        first = True
        while True:
            try:
                if first and block_s > 0:
                    msg = self._result_q.get(timeout=block_s)
                else:
                    msg = self._result_q.get_nowait()
            except queue_mod.Empty:
                break
            first = False
            kind, rank, rid, payload = msg
            if kind in ("reset-ok", "resync-ok"):
                self._acks.add((kind, rank, rid))
                continue
            ticket = self._tickets.get(rid)
            if ticket is None or rank not in ticket.outstanding:
                continue  # stale message from an abandoned run
            ticket.outstanding.discard(rank)
            if kind == "ok":
                ticket.results[rank] = payload
            elif kind == "aborted":
                ticket.aborted[rank] = payload
            else:
                ticket.failures[rank] = payload
        self._check_tickets()

    def _check_tickets(self) -> None:
        """Account dead workers and expired deadlines on every ticket."""
        now = time.monotonic()
        for ticket in self._tickets.values():
            for rank in sorted(ticket.outstanding):
                proc = self._workers[rank]
                if not proc.is_alive():
                    # A dead worker sends nothing: notice, abort its
                    # run's peers (only), and account for it.
                    self._ctl.abort_ranks(ticket.ranks, ticket.run_id)
                    ticket.failures[rank] = (
                        f"PE {rank} worker process died "
                        f"(exitcode {proc.exitcode})"
                    )
                    ticket.dead.add(rank)
                    ticket.outstanding.discard(rank)
            if ticket.outstanding and now > ticket.deadline:
                ticket.timed_out = True
                self._ctl.abort_ranks(ticket.ranks, ticket.run_id)
                for rank in sorted(ticket.outstanding):
                    proc = self._workers[rank]
                    if proc.is_alive():
                        proc.terminate()
                        proc.join(timeout=_GRACE)
                    ticket.failures[rank] = (
                        f"PE {rank} never reported within the "
                        f"{ticket.limit:.0f}s watchdog (stuck in user code?)"
                    )
                    ticket.dead.add(rank)
                    ticket.outstanding.discard(rank)

    def wait(self, ticket: MPTicket) -> list[Any]:
        """Block until ``ticket`` completes; return per-rank results.

        Raises :class:`WorkerFailedError` if any participating PE
        raised or died, :class:`BackendTimeoutError` if the run
        outlived its watchdog — in both cases after repairing the pool
        (globally for world runs, slot-by-slot for subset runs).
        """
        while not ticket.complete:
            self.pump(0.2)
        return self.finish(ticket)

    def finish(self, ticket: MPTicket) -> list[Any]:
        """Finalize a *complete* ticket: repair on failure, return results."""
        if not ticket.complete:
            raise RuntimeStateError(
                f"run {ticket.run_id} is still outstanding on PEs "
                f"{sorted(ticket.outstanding)}; wait() or pump() first"
            )
        if self._tickets.pop(ticket.run_id, None) is None:
            raise RuntimeStateError(
                f"run {ticket.run_id} was already finalized"
            )
        try:
            if ticket.ok:
                return [ticket.results[rank] for rank in ticket.ranks]
            if ticket.sync_group is None \
                    or len(ticket.ranks) == self.config.n_pes:
                # World semantics — including full-width team runs: a
                # full-width team synchronises through the world
                # sense-reversing barrier (ShmBarrier.team delegates),
                # so a failure can leave a partial wb_count that
                # slot-level repair cannot clear.  Disjointness means a
                # full-width ticket had no concurrent tenants, so the
                # global reset is safe.
                if ticket.timed_out:
                    self._rebuild_pool()
                    raise BackendTimeoutError(
                        f"run {ticket.run_id} exceeded {ticket.limit:.0f}s; "
                        f"PEs {sorted(ticket.dead)} never reported (stuck "
                        "in user code?) — worker pool rebuilt"
                    )
                self._recover()
                raise WorkerFailedError(ticket.failures or ticket.aborted)
            # Team-scoped: repair only this run's slots.
            self._repair_subset(ticket)
            if ticket.timed_out:
                raise BackendTimeoutError(
                    f"run {ticket.run_id} on PEs {list(ticket.ranks)} "
                    f"exceeded its {ticket.limit:.0f}s watchdog; stuck "
                    f"worker slot(s) {sorted(ticket.dead)} rebuilt in place"
                )
            raise WorkerFailedError(ticket.failures or ticket.aborted)
        finally:
            self._busy -= set(ticket.ranks)

    def run(self, fn: Callable[..., Any],
            args_per_pe: Sequence[tuple] | None = None, *,
            timeout: float | None = None,
            payload_nbytes: int = 0) -> list[Any]:
        """Run ``fn(ctx, *extra)`` on every PE worker; per-rank results.

        ``fn`` and its arguments must be picklable (module-level
        functions — the same restriction real ``multiprocessing`` code
        has).  Raises :class:`WorkerFailedError` if any PE raises,
        :class:`BackendTimeoutError` if the run outlives the watchdog.
        """
        return self.wait(self.submit(fn, args_per_pe, timeout=timeout,
                                     payload_nbytes=payload_nbytes))

    # -- teardown ------------------------------------------------------------

    def _teardown(self) -> None:
        for q, proc in zip(self._task_qs, self._workers):
            if proc.is_alive():
                try:
                    q.put(None)
                except Exception:
                    pass
        for proc in self._workers:
            proc.join(timeout=_GRACE)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=_GRACE)
        self._result_q.close()
        self._result_q.join_thread()
        self._ctl.release()
        self._segs.close()
        self._segs.unlink()

    def close(self) -> None:
        """Stop the workers and unlink the segments (idempotent)."""
        if self._closed:
            return
        self._closed = True
        atexit.unregister(self.close)
        self._teardown()


class MultiprocessingBackend(Backend):
    """True-parallel worker processes over shared memory (``"mp"``).

    Session options: ``timeout`` (per-run watchdog seconds, default 60)
    and ``start_method`` (``"fork"`` default; also via the
    ``XBGAS_MP_START`` environment variable).
    """

    name = "mp"

    def session(self, config: MachineConfig | None = None, *,
                n_pes: int | None = None, **opts: Any) -> MPSession:
        return MPSession(resolve_config(config, n_pes), **opts)


# Install the per-TYPENAME call surface (Table 1) — same wrappers as the
# simulator context, so typed programs are backend-portable too.
from ..runtime import typed as _typed  # noqa: E402

_typed.install_typed_api(MPContext)
