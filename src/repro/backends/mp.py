"""True-parallel execution: one OS process per PE over shared memory.

The paper ran xbrtime programs on 12 concurrent Spike processes bridged
by MPICH; this backend is the reproduction's equivalent substrate.  Each
PE is a worker process holding the *same* memory layout as a simulated
PE (private segment, scratch stacks, collective symmetric heap — see
:class:`~repro.runtime.context.Machine`), but the bytes live in
``multiprocessing.shared_memory`` segments mapped into every worker, so

* a symmetric address is the same *offset* in every PE's segment — the
  literal Figure 2 property, enforced by construction;
* a remote ``put``/``get`` is a direct cross-segment memcpy by the
  initiating PE (one-sided: the target's CPU is not involved), made
  visible by bumping the initiator's progress counter;
* ``barrier`` is the sense-reversing shared-memory barrier of
  :class:`~repro.backends.shm.ShmBarrier`.

:class:`MPContext` implements the PE context protocol (see
:mod:`repro.backends.base`), so every compiled schedule and collective
front-end runs unmodified.  Time here is *wall-clock*: ``compute`` and
the ``charge_*`` methods cost nothing, and ``time_ns`` reads the host
clock.

Failure containment.  A worker that raises stamps the shared abort flag
with the current run id before reporting, so peers spinning in barriers
unwind with :class:`~repro.errors.WorkerAbortedError` instead of
hanging; the parent then quiesces every worker, zeroes the shared
synchronisation state and re-raises as
:class:`~repro.errors.WorkerFailedError` — the session stays usable.  A
worker stuck in user code past the watchdog is terminated and the pool
rebuilt.  Teardown closes and unlinks every segment exactly once, from
whichever of explicit ``close``, context-manager exit or ``atexit``
runs first.
"""

from __future__ import annotations

import atexit
import os
import pickle
import queue as queue_mod
import time
import traceback
from collections import Counter
from typing import Any, Callable, Sequence

import multiprocessing as mp

import numpy as np

from ..errors import (
    AddressError,
    BackendTimeoutError,
    CollectiveArgumentError,
    RuntimeStateError,
    WorkerAbortedError,
    WorkerFailedError,
)
from ..isa.cpu import amo_apply
from ..params import MachineConfig
from ..runtime.collective_api import CollectiveAPI, resolve_dtype
from ..runtime.context import CODE_REGION_BYTES
from ..runtime.symmetric_heap import (
    FreeListAllocator,
    ScratchStack,
    SymmetricHeap,
)
from .base import Backend, BackendSession, resolve_config
from .shm import ControlBlock, SegmentGroup, ShmBarrier, control_bytes

__all__ = ["MultiprocessingBackend", "MPSession", "MPContext"]

MASK64 = (1 << 64) - 1

#: Extra seconds past the run watchdog before stuck workers are killed.
_GRACE = 5.0


class _DisabledSpans:
    """Span-recorder stub: tracing is never available on wall-clock runs."""

    enabled = False


_NO_SPANS = _DisabledSpans()


class MPTransferHandle:
    """Completion token of an (eagerly completed) non-blocking transfer.

    Cross-segment memcpys are synchronous, so ``put_nb``/``get_nb``
    finish before returning; the handle only preserves the call shape.
    """

    __slots__ = ("kind", "nbytes", "done")

    def __init__(self, kind: str, nbytes: int):
        self.kind = kind
        self.nbytes = nbytes
        self.done = True


class MPContext(CollectiveAPI):
    """Per-PE runtime context over shared-memory segments.

    One instance per (worker process, run).  The segment mappings and
    barrier are worker-lifetime (passed in); allocator state — heap
    replica, scratch stacks, private free list — is rebuilt fresh each
    run, exactly as a fresh simulated machine would.  Heap replicas stay
    identical across PEs because collective mallocs replay the same call
    log in the same order on every participant.
    """

    #: Which execution backend this context belongs to.
    backend_name = "mp"

    def __init__(self, rank: int, config: MachineConfig, segs: SegmentGroup,
                 ctl: ControlBlock, barrier: ShmBarrier,
                 amo_locks: Sequence[Any]):
        self.rank = rank
        self.config = config
        self.world_group = tuple(range(config.n_pes))
        self._ctl = ctl
        self._barrier = barrier
        self._amo_locks = amo_locks
        self._mem_bytes = config.memory_bytes_per_pe
        # Same layout arithmetic as Machine.__init__ (Figure 2).
        heap_base = config.memory_bytes_per_pe - config.symmetric_heap_bytes
        scratch = config.collective_scratch_bytes
        self._heap_base = heap_base
        self._scratch = ScratchStack(heap_base, scratch)
        self._heap = SymmetricHeap(
            heap_base + scratch, config.symmetric_heap_bytes - scratch,
            config.n_pes,
        )
        self._private = FreeListAllocator(
            CODE_REGION_BYTES, heap_base - CODE_REGION_BYTES
        )
        self._heap_calls = 0
        self._bufs: list[np.ndarray] | None = [
            np.frombuffer(seg.buf, dtype=np.uint8) for seg in segs.segments
        ]
        self.collective_calls: Counter[str] = Counter()
        self._active = False
        self._closed = False
        self._t0 = time.perf_counter()

    # -- protocol accessors ------------------------------------------------------

    @property
    def spans(self) -> _DisabledSpans:
        return _NO_SPANS

    def count_collective(self, stats_key: str) -> None:
        self.collective_calls[stats_key] += 1

    def executing_rank(self) -> int | None:
        # Each process *is* one PE: nothing else ever runs here.
        return self.rank

    # -- lifecycle -------------------------------------------------------------

    def init(self) -> None:
        """``xbrtime_init``: bring the runtime up; synchronises all PEs."""
        if self._active:
            raise RuntimeStateError(f"PE {self.rank}: init() called twice")
        if self._closed:
            raise RuntimeStateError(f"PE {self.rank}: init() after close()")
        self._active = True
        self._barrier.world()

    def close(self) -> None:
        """``xbrtime_close``: tear the runtime down; synchronises all PEs."""
        self._require_active()
        self._barrier.world()
        self._active = False
        self._closed = True

    def _require_active(self) -> None:
        if not self._active:
            raise RuntimeStateError(
                f"PE {self.rank}: runtime used outside init()/close()"
            )

    def release(self) -> None:
        """Drop the segment views (required before unmapping segments)."""
        self._bufs = None

    # -- identity ---------------------------------------------------------------

    def my_pe(self) -> int:
        """``xbrtime_mype``."""
        self._require_active()
        return self.rank

    def num_pes(self) -> int:
        """``xbrtime_num_pes``."""
        self._require_active()
        return self.config.n_pes

    def failed_pes(self) -> frozenset[int]:
        """Fault injection does not exist here: nobody is ever dead."""
        return frozenset()

    def live_pes(self) -> tuple[int, ...]:
        return self.world_group

    @property
    def time_ns(self) -> float:
        """Wall-clock nanoseconds since this context was created."""
        return (time.perf_counter() - self._t0) * 1e9

    # -- memory management ---------------------------------------------------------

    def malloc(self, nbytes: int, align: int = 16) -> int:
        """Collective symmetric allocation (same address on every PE)."""
        self._require_active()
        idx = self._heap_calls
        self._heap_calls += 1
        return self._heap.collective_malloc(idx, nbytes, align)

    def free(self, addr: int) -> None:
        """Collective symmetric free."""
        self._require_active()
        idx = self._heap_calls
        self._heap_calls += 1
        self._heap.collective_free(idx, addr)

    def scratch_alloc(self, nbytes: int, align: int = 16) -> int:
        self._require_active()
        return self._scratch.alloc(nbytes, align)

    def scratch_free(self, addr: int) -> None:
        self._require_active()
        self._scratch.free(addr)

    def private_malloc(self, nbytes: int, align: int = 16) -> int:
        self._require_active()
        return self._private.alloc(nbytes, align)

    def private_free(self, addr: int) -> None:
        self._require_active()
        self._private.free(addr)

    def is_symmetric(self, addr: int) -> bool:
        return addr >= self._heap_base

    def _segment_view(self, pe: int, addr: int, dtype: np.dtype,
                      count: int, stride: int) -> np.ndarray:
        """:meth:`repro.isa.memory.Memory.view` over PE ``pe``'s segment."""
        if count < 0:
            raise AddressError("count must be non-negative")
        if stride < 1:
            raise AddressError(f"stride must be >= 1, got {stride}")
        if count == 0:
            return np.empty(0, dtype=dtype)
        span = ((count - 1) * stride + 1) * dtype.itemsize
        if addr < 0 or addr + span > self._mem_bytes:
            raise AddressError(
                f"access [{addr:#x}, {addr + span:#x}) outside memory "
                f"of {self._mem_bytes:#x} bytes"
            )
        dense = self._bufs[pe][addr : addr + span].view(dtype)
        return dense[::stride]

    def view(self, addr: int, dtype: str | np.dtype, count: int,
             stride: int = 1) -> np.ndarray:
        """A numpy view of local memory (aliases the shared segment)."""
        return self._segment_view(self.rank, addr, resolve_dtype(dtype),
                                  count, stride)

    def view_on(self, pe: int, addr: int, dtype: str | np.dtype, count: int,
                stride: int = 1) -> np.ndarray:
        """A view of another PE's segment — tests/verification only."""
        return self._segment_view(pe, addr, resolve_dtype(dtype), count,
                                  stride)

    # -- time charging (free on a wall-clock backend) ----------------------------------

    def compute(self, ns: float) -> None:
        """Modelled compute costs nothing here: real work takes real time."""

    def charge_access(self, addr: int, nbytes: int = 8,
                      write: bool = False) -> float:
        return 0.0

    def charge_stream(self, addr: int, nbytes: int,
                      write: bool = False) -> float:
        return 0.0

    # -- synchronisation -------------------------------------------------------------

    def barrier(self) -> None:
        """``xbrtime_barrier`` over the shared-memory sense barrier."""
        self._require_active()
        self._barrier.world()

    def barrier_team(self, members: Sequence[int]) -> None:
        self._require_active()
        self._barrier.team(tuple(members))

    # -- one-sided communication --------------------------------------------------------

    def _check_args(self, nelems: int, stride: int, target: int) -> None:
        if nelems < 0:
            raise CollectiveArgumentError(f"nelems must be >= 0, got {nelems}")
        if stride < 1:
            raise CollectiveArgumentError(f"stride must be >= 1, got {stride}")
        if not 0 <= target < self.config.n_pes:
            raise CollectiveArgumentError(
                f"pe {target} out of range [0, {self.config.n_pes})"
            )

    def put(self, dest: int, src: int, nelems: int, stride: int, pe: int,
            dtype: str | np.dtype = "long") -> None:
        """``xbrtime_TYPE_put`` as a cross-segment memcpy."""
        self._require_active()
        self._check_args(nelems, stride, pe)
        if nelems == 0:
            return
        dt = resolve_dtype(dtype)
        sview = self._segment_view(self.rank, src, dt, nelems, stride)
        dview = self._segment_view(pe, dest, dt, nelems, stride)
        # A local transfer may overlap itself; remote segments never alias.
        dview[:] = sview.copy() if pe == self.rank else sview
        self._ctl.bump_progress(self.rank)

    def get(self, dest: int, src: int, nelems: int, stride: int, pe: int,
            dtype: str | np.dtype = "long") -> None:
        """``xbrtime_TYPE_get`` as a cross-segment memcpy."""
        self._require_active()
        self._check_args(nelems, stride, pe)
        if nelems == 0:
            return
        dt = resolve_dtype(dtype)
        sview = self._segment_view(pe, src, dt, nelems, stride)
        dview = self._segment_view(self.rank, dest, dt, nelems, stride)
        dview[:] = sview.copy() if pe == self.rank else sview
        self._ctl.bump_progress(self.rank)

    def put_nb(self, dest: int, src: int, nelems: int, stride: int, pe: int,
               dtype: str | np.dtype = "long") -> MPTransferHandle:
        """Non-blocking put (eagerly completed — memcpys are synchronous)."""
        self.put(dest, src, nelems, stride, pe, dtype)
        return MPTransferHandle("put", nelems * resolve_dtype(dtype).itemsize)

    def get_nb(self, dest: int, src: int, nelems: int, stride: int, pe: int,
               dtype: str | np.dtype = "long") -> MPTransferHandle:
        """Non-blocking get (eagerly completed)."""
        self.get(dest, src, nelems, stride, pe, dtype)
        return MPTransferHandle("get", nelems * resolve_dtype(dtype).itemsize)

    def amo(self, addr: int, value: int, pe: int, op: str = "add",
            dtype: str | np.dtype = "uint64") -> int:
        """Remote fetch-and-op, serialised by the target PE's AMO lock."""
        self._require_active()
        self._check_args(1, 1, pe)
        dt = resolve_dtype(dtype)
        if dt.itemsize != 8 or dt.kind not in "iu":
            raise CollectiveArgumentError(
                f"AMOs operate on 64-bit integer types, not {dt}"
            )
        if addr < 0 or addr + 8 > self._mem_bytes:
            raise AddressError(
                f"access [{addr:#x}, {addr + 8:#x}) outside memory "
                f"of {self._mem_bytes:#x} bytes"
            )
        cell = self._bufs[pe][addr : addr + 8]
        with self._amo_locks[pe]:
            old = int.from_bytes(cell.tobytes(), "little")
            new = amo_apply(op, old, int(value) & MASK64)
            cell[:] = np.frombuffer(new.to_bytes(8, "little"), dtype=np.uint8)
        self._ctl.bump_progress(self.rank)
        if dt.kind == "i" and old >> 63:
            return old - (1 << 64)
        return old

    def wait(self, handle: MPTransferHandle) -> None:
        """Complete one non-blocking transfer (already complete)."""
        self._require_active()
        handle.done = True

    def quiet(self) -> None:
        """Complete all outstanding transfers (memcpys already landed)."""
        self._require_active()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MPContext(pe={self.rank}/{self.config.n_pes})"


# -- worker process -----------------------------------------------------------


def _worker_main(rank: int, config: MachineConfig, token: str,
                 barrier_lock, amo_locks, task_q, result_q) -> None:
    """The PE worker loop: attach segments, then serve tasks forever.

    Messages on ``task_q``:

    * ``("run", run_id, fn, args, timeout)`` — run ``fn(ctx, *args)``
      against a fresh context; report ``("ok"| "err" | "aborted", rank,
      run_id, payload)``.
    * ``("reset",)`` — forget local barrier state (session recovery);
      acked with ``("reset-ok", rank, 0, None)``.
    * ``None`` — exit cleanly.

    A failing run stamps the shared abort flag *before* reporting so
    peers spinning on this worker unwind promptly; ``WorkerAbortedError``
    unwinds are reported as ``"aborted"`` so the parent can tell the
    primary failure from collateral ones.
    """
    segs = SegmentGroup(token, config.n_pes, config.memory_bytes_per_pe,
                        control_bytes(config.n_pes), create=False)
    ctl = ControlBlock(segs.control, config.n_pes)
    barrier = ShmBarrier(ctl, rank, config.n_pes, barrier_lock)
    try:
        while True:
            task = task_q.get()
            if task is None:
                return
            if task[0] == "reset":
                barrier.reset_local()
                result_q.put(("reset-ok", rank, 0, None))
                continue
            _, run_id, fn, args, timeout = task
            barrier.run_id = run_id
            barrier.timeout = timeout
            ctx = MPContext(rank, config, segs, ctl, barrier, amo_locks)
            try:
                result = fn(ctx, *args)
                try:
                    pickle.dumps(result)
                except Exception as exc:
                    ctl.abort_run(run_id)
                    msg = ("err", rank, run_id,
                           f"PE {rank} returned an unpicklable result: "
                           f"{exc!r}")
                else:
                    msg = ("ok", rank, run_id, result)
            except WorkerAbortedError:
                msg = ("aborted", rank, run_id, traceback.format_exc())
            except BaseException:
                ctl.abort_run(run_id)
                msg = ("err", rank, run_id, traceback.format_exc())
            finally:
                ctx.release()
            result_q.put(msg)
    finally:
        ctl.release()
        segs.close()


# -- the session --------------------------------------------------------------


class MPSession(BackendSession):
    """A persistent pool of PE worker processes over shared segments.

    Workers and segments are created once and reused across ``run``
    calls (conformance sweeps and benchmarks amortise the start-up).
    Teardown (explicit ``close``, ``with`` exit or the ``atexit`` hook —
    whichever comes first) terminates every worker and unlinks every
    segment exactly once; ``close`` is idempotent.
    """

    def __init__(self, config: MachineConfig, *, timeout: float = 60.0,
                 start_method: str | None = None):
        self.config = config
        self.timeout = timeout
        method = (start_method or os.environ.get("XBGAS_MP_START")
                  or "fork")
        self._mp = mp.get_context(method)
        self._run_id = 0
        self._closed = False
        token = SegmentGroup.new_token()
        self.token = token
        self._segs = SegmentGroup(
            token, config.n_pes, config.memory_bytes_per_pe,
            control_bytes(config.n_pes), create=True,
        )
        self._ctl = ControlBlock(self._segs.control, config.n_pes)
        self._barrier_lock = self._mp.Lock()
        self._amo_locks = [self._mp.Lock() for _ in range(config.n_pes)]
        self._result_q = self._mp.Queue()
        self._task_qs: list[Any] = []
        self._workers: list[Any] = []
        try:
            for rank in range(config.n_pes):
                self._task_qs.append(self._mp.SimpleQueue())
                self._workers.append(self._spawn(rank))
        except BaseException:
            self._teardown()
            raise
        atexit.register(self.close)

    # -- worker management --------------------------------------------------

    def _spawn(self, rank: int):
        proc = self._mp.Process(
            target=_worker_main,
            args=(rank, self.config, self.token, self._barrier_lock,
                  self._amo_locks, self._task_qs[rank], self._result_q),
            name=f"xbgas-pe{rank}",
            daemon=True,
        )
        proc.start()
        return proc

    def _rebuild_pool(self, kill: bool = True) -> None:
        """Replace every worker and zero the shared sync state.

        The heavyweight recovery path — used when workers are stuck in
        user code (watchdog) or have died: per-worker reset messages
        cannot be trusted to be read.
        """
        for proc in self._workers:
            if kill and proc.is_alive():
                proc.terminate()
            proc.join(timeout=_GRACE)
        self._drain_results()
        self._ctl.reset_sync_state()
        self._ctl.clear_abort()
        for rank in range(self.config.n_pes):
            self._task_qs[rank] = self._mp.SimpleQueue()
            self._workers[rank] = self._spawn(rank)

    def _drain_results(self) -> None:
        while True:
            try:
                self._result_q.get_nowait()
            except queue_mod.Empty:
                return

    def _recover(self) -> None:
        """Quiesce live workers after a failed run, then reset sync state.

        Every worker has already reported for the failed run (so none is
        inside a barrier); the reset round trips make sure each has also
        forgotten its local barrier sense before the shared counters are
        zeroed.
        """
        dead = [p for p in self._workers if not p.is_alive()]
        if dead:
            self._rebuild_pool()
            return
        for q in self._task_qs:
            q.put(("reset",))
        pending = set(range(self.config.n_pes))
        deadline = time.monotonic() + _GRACE
        while pending:
            try:
                kind, rank, _, _ = self._result_q.get(
                    timeout=max(0.05, deadline - time.monotonic()))
            except queue_mod.Empty:
                self._rebuild_pool()
                return
            if kind == "reset-ok":
                pending.discard(rank)
        self._ctl.reset_sync_state()
        self._ctl.clear_abort()

    # -- running programs ---------------------------------------------------

    def run(self, fn: Callable[..., Any],
            args_per_pe: Sequence[tuple] | None = None, *,
            timeout: float | None = None) -> list[Any]:
        """Run ``fn(ctx, *extra)`` on every PE worker; per-rank results.

        ``fn`` and its arguments must be picklable (module-level
        functions — the same restriction real ``multiprocessing`` code
        has).  Raises :class:`WorkerFailedError` if any PE raises,
        :class:`BackendTimeoutError` if the run outlives the watchdog.
        """
        if self._closed:
            raise RuntimeStateError("MPSession used after close()")
        n = self.config.n_pes
        if args_per_pe is not None and len(args_per_pe) != n:
            raise ValueError(
                f"args_per_pe has {len(args_per_pe)} entries for {n} PEs"
            )
        limit = self.timeout if timeout is None else timeout
        self._run_id += 1
        run_id = self._run_id
        for rank in range(n):
            extra = tuple(args_per_pe[rank]) if args_per_pe is not None else ()
            self._task_qs[rank].put(("run", run_id, fn, extra, limit))

        results: dict[int, Any] = {}
        failures: dict[int, str] = {}
        aborted: dict[int, str] = {}
        outstanding = set(range(n))
        deadline = time.monotonic() + limit + _GRACE
        while outstanding:
            # A dead worker sends nothing: notice, abort its peers, and
            # account for it so collection can finish.
            for rank in list(outstanding):
                proc = self._workers[rank]
                if not proc.is_alive():
                    self._ctl.abort_run(run_id)
                    failures[rank] = (
                        f"PE {rank} worker process died "
                        f"(exitcode {proc.exitcode})"
                    )
                    outstanding.discard(rank)
            if not outstanding:
                break
            if time.monotonic() > deadline:
                self._ctl.abort_run(run_id)
                self._rebuild_pool()
                raise BackendTimeoutError(
                    f"run {run_id} exceeded {limit:.0f}s; PEs "
                    f"{sorted(outstanding)} never reported (stuck in user "
                    "code?) — worker pool rebuilt"
                )
            try:
                kind, rank, rid, payload = self._result_q.get(timeout=0.2)
            except queue_mod.Empty:
                continue
            if rid != run_id:
                continue  # stale message from an abandoned run
            outstanding.discard(rank)
            if kind == "ok":
                results[rank] = payload
            elif kind == "aborted":
                aborted[rank] = payload
            else:
                failures[rank] = payload

        if failures or aborted:
            self._recover()
            raise WorkerFailedError(failures or aborted)
        return [results[rank] for rank in range(n)]

    # -- teardown ------------------------------------------------------------

    def _teardown(self) -> None:
        for q, proc in zip(self._task_qs, self._workers):
            if proc.is_alive():
                try:
                    q.put(None)
                except Exception:
                    pass
        for proc in self._workers:
            proc.join(timeout=_GRACE)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=_GRACE)
        self._result_q.close()
        self._result_q.join_thread()
        self._ctl.release()
        self._segs.close()
        self._segs.unlink()

    def close(self) -> None:
        """Stop the workers and unlink the segments (idempotent)."""
        if self._closed:
            return
        self._closed = True
        atexit.unregister(self.close)
        self._teardown()


class MultiprocessingBackend(Backend):
    """True-parallel worker processes over shared memory (``"mp"``).

    Session options: ``timeout`` (per-run watchdog seconds, default 60)
    and ``start_method`` (``"fork"`` default; also via the
    ``XBGAS_MP_START`` environment variable).
    """

    name = "mp"

    def session(self, config: MachineConfig | None = None, *,
                n_pes: int | None = None, **opts: Any) -> MPSession:
        return MPSession(resolve_config(config, n_pes), **opts)


# Install the per-TYPENAME call surface (Table 1) — same wrappers as the
# simulator context, so typed programs are backend-portable too.
from ..runtime import typed as _typed  # noqa: E402

_typed.install_typed_api(MPContext)
