"""The deterministic simulator, behind the backend protocol.

A thin adapter: each ``run`` builds a fresh
:class:`~repro.runtime.context.Machine` (machines are one-shot — heap
logs, caches and clocks are stateful) and drives it exactly as direct
``Machine(config).run(fn)`` would, so behaviour is bit-identical to
pre-backend code.  The machine of the most recent run stays reachable
via :attr:`SimulatorSession.last_machine` for stats/trace inspection.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from ..params import MachineConfig
from ..runtime.context import Machine
from .base import Backend, BackendSession, resolve_config

__all__ = ["SimulatorBackend", "SimulatorSession"]


class SimulatorSession(BackendSession):
    """Runs each program on a fresh simulated machine."""

    def __init__(self, config: MachineConfig, **machine_kw: Any):
        self.config = config
        self._machine_kw = machine_kw
        #: The machine of the most recent ``run`` (None before the first).
        self.last_machine: Machine | None = None
        self._closed = False

    def run(self, fn: Callable[..., Any],
            args_per_pe: Sequence[tuple] | None = None) -> list[Any]:
        if self._closed:
            raise RuntimeError("session is closed")
        machine = Machine(self.config, **self._machine_kw)
        self.last_machine = machine
        return machine.run(fn, args_per_pe)

    def close(self) -> None:
        self._closed = True  # nothing OS-level to release


class SimulatorBackend(Backend):
    """The cooperative deterministic simulator (``backend="sim"``).

    Extra session options are forwarded to :class:`Machine` —
    ``trace=True``, ``faults=...``, ``retry=...``, ``fast_paths=...``
    all work exactly as on a hand-built machine.
    """

    name = "sim"

    def session(self, config: MachineConfig | None = None, *,
                n_pes: int | None = None, **opts: Any) -> SimulatorSession:
        return SimulatorSession(resolve_config(config, n_pes), **opts)
