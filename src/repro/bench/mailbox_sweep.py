"""Mailbox-transport sweep: two-sided overhead and queue-depth curves.

Two questions the transport PR's acceptance turns on, kept as measured
artifacts rather than claims:

* **Overhead** — for the doubling allreduce at each (PE count,
  payload), the mailbox-lowered schedule's makespan over the one-sided
  original on the batch evaluator.  Headers, postoffice routing and
  match time bound it above (``<= OVERHEAD_MAX``); it is *not* bounded
  below by 1.0, because lowering replaces pull-style gets (whose full
  round trip sits on the getter's critical path) with eager pushes
  that overlap — at 16+ PEs the two-sided form actually wins.
* **Queue depth** — the same collective on the cooperative simulator
  across receive-queue depths from 1 up.  The lowered builtins are
  phase-matched, so receivers drain within the phase and even a
  depth-1 queue completes without exhausting backpressure retries;
  the curve records elapsed time and stall counts so a regression
  (a lowering that suddenly needs deep queues, or a scheduler change
  that starves receivers) shows up as a measured diff.

The committed ``BENCH_mailbox.json`` is the reference copy (regenerate
with ``python -m repro.bench.mailbox_sweep --out BENCH_mailbox.json``).
CI's perf-smoke job runs ``--check BENCH_mailbox.json``: shape checks,
the committed bounds, and one fresh point against the live cost model.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..collectives.allreduce import compile_allreduce
from ..collectives.schedule.evaluate import evaluate_schedule
from ..collectives.schedule.mailbox import lower_to_mailbox, max_fan_in
from ..params import MachineConfig, MailboxParams

__all__ = [
    "PE_COUNTS",
    "SIZES",
    "DEPTHS",
    "OVERHEAD_MAX",
    "sweep_point",
    "depth_point",
    "mailbox_sweep",
    "check_document",
    "main",
]

#: PE counts for the overhead sweep (power-of-two doubling tiers).
PE_COUNTS = (4, 8, 16, 64)

#: Payload sizes in int64 elements (512 B to 64 KiB).
SIZES = (64, 1024, 8192)

#: Receive-queue depths for the simulator curve.
DEPTHS = (1, 2, 4, 8, 64)

#: Acceptance ceiling: the lowered schedule never costs more than 1.5x
#: the one-sided original (measured max across the sweep: ~1.11).
OVERHEAD_MAX = 1.5

#: The depth curve's fixed shape: 8 PEs x 1024 elements.
DEPTH_PES = 8
DEPTH_NELEMS = 1024

_ITEMSIZE = 8
_ALGORITHM = "doubling"


def _sweep_config(n_pes: int, **kw) -> MachineConfig:
    """One PE per node, matching the other schedule sweeps."""
    return MachineConfig(n_pes=n_pes, cores_per_node=1, **kw)


def sweep_point(n_pes: int, nelems: int) -> dict:
    """One-sided vs mailbox-lowered makespan at one point (vec)."""
    cfg = _sweep_config(n_pes)
    sched = compile_allreduce(n_pes, nelems, 1, _ITEMSIZE, "sum",
                              algorithm=_ALGORITHM)
    lowered = lower_to_mailbox(sched)
    base = evaluate_schedule(sched, cfg, dtype=np.dtype(np.int64),
                             collect_data=False)
    two = evaluate_schedule(lowered, cfg, dtype=np.dtype(np.int64),
                            collect_data=False)
    return {
        "n_pes": n_pes,
        "nelems": nelems,
        "nbytes": nelems * _ITEMSIZE,
        "onesided_ns": base.elapsed_ns,
        "mailbox_ns": two.elapsed_ns,
        "overhead": round(two.elapsed_ns / base.elapsed_ns, 3),
        "max_fan_in": max_fan_in(lowered),
        "sends": int(two.stats.sends),
        "wire_bytes": int(two.stats.bytes_sent),
    }


def _depth_workload(ctx):
    ctx.init()
    src = ctx.malloc(_ITEMSIZE * DEPTH_NELEMS)
    dest = ctx.malloc(_ITEMSIZE * DEPTH_NELEMS)
    ctx.view(src, "long", DEPTH_NELEMS)[:] = ctx.my_pe()
    t0 = ctx.time_ns
    ctx.allreduce(dest, src, DEPTH_NELEMS, 1, algorithm=_ALGORITHM)
    dt = ctx.time_ns - t0
    ctx.close()
    return dt


def depth_point(recv_depth: int) -> dict:
    """The depth-curve collective on the simulator at one queue depth."""
    from ..runtime.context import Machine

    cfg = _sweep_config(DEPTH_PES,
                        mailbox=MailboxParams(recv_depth=recv_depth))
    machine = Machine(cfg, transport="mailbox")
    elapsed = max(machine.run(_depth_workload))
    return {
        "recv_depth": recv_depth,
        "elapsed_ns": elapsed,
        "stalls": int(machine.stats.mbx_stalls),
        "sends": int(machine.stats.sends),
    }


def mailbox_sweep(pe_counts: Sequence[int] = PE_COUNTS,
                  sizes: Sequence[int] = SIZES,
                  depths: Sequence[int] = DEPTHS) -> dict:
    """The full sweep, as the ``BENCH_mailbox.json`` document."""
    import platform
    import sys

    points = [sweep_point(n, nelems)
              for n in pe_counts for nelems in sizes]
    curve = [depth_point(d) for d in depths]
    return {
        "bench": "mailbox-transport",
        "backend": "vec+sim",
        "host": {
            "platform": platform.platform(),
            "python": sys.version.split()[0],
        },
        "config": {
            "cores_per_node": 1,
            "topology": "fully-connected",
            "itemsize": _ITEMSIZE,
            "dtype": "int64",
            "algorithm": _ALGORITHM,
            "mailbox_defaults": {
                "recv_depth": MailboxParams().recv_depth,
                "header_bytes": MailboxParams().header_bytes,
                "route_ns_per_hop": MailboxParams().route_ns_per_hop,
                "match_ns": MailboxParams().match_ns,
            },
        },
        "acceptance": {
            "overhead_max": OVERHEAD_MAX,
            "depth_curve_stall_free_at_max": True,
        },
        "pe_counts": list(pe_counts),
        "sizes": list(sizes),
        "depths": list(depths),
        "points": points,
        "depth_curve": curve,
    }


def check_document(doc: dict, *, fresh_point: bool = True) -> list[str]:
    """Validate a ``BENCH_mailbox.json`` document; returns problems."""
    problems: list[str] = []
    if doc.get("bench") != "mailbox-transport":
        problems.append(f"bench key is {doc.get('bench')!r}, expected "
                        "'mailbox-transport'")
    points = doc.get("points")
    if not isinstance(points, list) or not points:
        problems.append("document has no sweep points")
        return problems
    required = {"n_pes", "nelems", "nbytes", "onesided_ns", "mailbox_ns",
                "overhead", "max_fan_in", "sends"}
    for i, p in enumerate(points):
        missing = required - set(p)
        if missing:
            problems.append(f"point {i} missing keys: {sorted(missing)}")
            return problems
    for p in points:
        if p["overhead"] > OVERHEAD_MAX:
            problems.append(
                f"({p['n_pes']} PEs, {p['nbytes']} B): mailbox overhead "
                f"{p['overhead']} exceeds the {OVERHEAD_MAX}x ceiling")
        if p["max_fan_in"] > MailboxParams().recv_depth:
            problems.append(
                f"({p['n_pes']} PEs, {p['nbytes']} B): fan-in "
                f"{p['max_fan_in']} exceeds the default receive depth")
    curve = doc.get("depth_curve")
    if not isinstance(curve, list) or not curve:
        problems.append("document has no depth curve")
        return problems
    # Depth only helps: stalls never increase with a deeper queue, and
    # at the deepest point the run is stall-free.
    stalls = [c["stalls"] for c in curve]
    if any(b > a for a, b in zip(stalls, stalls[1:])):
        problems.append(f"stalls increase with queue depth: {stalls}")
    if stalls[-1] != 0:
        problems.append(
            f"deepest queue ({curve[-1]['recv_depth']}) still stalls "
            f"{stalls[-1]} times")
    elapsed = [c["elapsed_ns"] for c in curve]
    if max(elapsed) > 1.25 * min(elapsed):
        problems.append(
            "depth curve spans more than 1.25x in elapsed time — "
            "backpressure is distorting the phase-matched schedule")

    if fresh_point:
        fresh = sweep_point(8, 1024)  # mid-sweep, cheap on the evaluator
        if fresh["overhead"] > OVERHEAD_MAX:
            problems.append(
                f"fresh measurement at 8 PEs x 8 KiB: overhead "
                f"{fresh['overhead']} > {OVERHEAD_MAX} — the live cost "
                "model no longer meets the ceiling")
    return problems


def _print_sweep(doc: dict) -> None:
    print("mailbox transport: lowered vs one-sided makespan "
          "(doubling allreduce, vec evaluator, 1 PE/node)")
    print(f"{'pes':>5} {'bytes':>8} {'one-sided':>12} {'mailbox':>12} "
          f"{'overhead':>8} {'fan-in':>6} {'sends':>6}")
    for p in doc["points"]:
        print(f"{p['n_pes']:>5} {p['nbytes']:>8} "
              f"{p['onesided_ns']:>12.0f} {p['mailbox_ns']:>12.0f} "
              f"{p['overhead']:>8.3f} {p['max_fan_in']:>6} "
              f"{p['sends']:>6}")
    print(f"\nqueue-depth curve ({DEPTH_PES} PEs x "
          f"{DEPTH_NELEMS * _ITEMSIZE} B, cooperative simulator)")
    print(f"{'depth':>6} {'elapsed_ns':>12} {'stalls':>7}")
    for c in doc["depth_curve"]:
        print(f"{c['recv_depth']:>6} {c['elapsed_ns']:>12.0f} "
              f"{c['stalls']:>7}")


def main(argv: Sequence[str] | None = None) -> int:
    """``python -m repro.bench.mailbox_sweep`` — sweep or check."""
    import argparse
    import json

    parser = argparse.ArgumentParser(
        prog="repro.bench.mailbox_sweep",
        description="Mailbox-transport overhead and queue-depth sweep "
                    "(the BENCH_mailbox.json format).",
    )
    parser.add_argument("--pes", type=int, nargs="+",
                        default=list(PE_COUNTS),
                        help="PE counts for the overhead sweep")
    parser.add_argument("--sizes", type=int, nargs="+", default=list(SIZES),
                        help="payload sizes in int64 elements")
    parser.add_argument("--depths", type=int, nargs="+",
                        default=list(DEPTHS),
                        help="receive-queue depths for the sim curve")
    parser.add_argument("--out", default=None,
                        help="write the sweep as JSON to this path")
    parser.add_argument("--check", metavar="JSON", default=None,
                        help="validate a committed BENCH_mailbox.json "
                             "instead of sweeping")
    args = parser.parse_args(argv)

    if args.check:
        with open(args.check) as fh:
            doc = json.load(fh)
        problems = check_document(doc)
        if problems:
            for problem in problems:
                print(f"FAIL: {problem}")
            return 1
        print(f"{args.check}: ok — {len(doc['points'])} overhead points "
              f"within {OVERHEAD_MAX}x, depth curve stall-free at "
              "maximum depth, fresh 8-PE point still passes")
        return 0

    doc = mailbox_sweep(args.pes, args.sizes, args.depths)
    _print_sweep(doc)
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
