"""Open-loop traffic generator for the serving layer (BENCH_serve).

Drives a :class:`~repro.serve.pool.ServePool` with seeded Poisson
arrivals over a mixed collective/payload profile and reports the
serving metrics the ROADMAP north star turns on: p50/p95/p99 job
latency, goodput (completed jobs per second of wall time), admission
outcomes, and per-tenant PE-seconds.

The generator is **open-loop**: arrival times are drawn up front from
the seed and jobs are submitted when the wall clock passes them,
whether or not earlier jobs have finished — so an overloaded pool shows
up as queue-wait growth and backpressure rejections, exactly like a
service behind real traffic, rather than the generator politely slowing
down.  Everything random — inter-arrival gaps, profile choice, tenant
assignment, fault placement — derives from ``seed`` via the PR 2 fault
machinery's keyed splitmix64 draws, so a sweep is reproducible
arrival-for-arrival.

``python -m repro.bench.serve_sweep --out BENCH_serve.json`` writes the
committed report; ``--check BENCH_serve.json`` is the CI perf-smoke
mode — it validates the committed report's invariants and runs a short
fresh sweep to prove the serving path still completes jobs on this
host.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Sequence

from ..faults.plan import keyed_salt, keyed_u01
from ..errors import QueueFullError
from ..serve import JobSpec, ServePool
from .harness import add_traffic_args, traffic_metadata

__all__ = [
    "TrafficProfile",
    "DEFAULT_MIX",
    "arrival_times",
    "build_jobs",
    "run_serve_sweep",
    "check_report",
    "main",
]

#: Draw-key rule indices (the ``rule_index`` of ``keyed_u01``), so the
#: independent random streams never collide.
_R_ARRIVAL, _R_PROFILE, _R_TENANT, _R_FAULT, _R_SEED = range(5)


@dataclass(frozen=True)
class TrafficProfile:
    """One job template of the traffic mix."""

    name: str
    collective: str
    n_pes: int
    nelems: int
    dtype: str = "long"
    weight: float = 1.0


#: The default mixed collective/payload profile: mostly small latency
#: -sensitive allreduces/broadcasts, some medium fan-outs, occasional
#: wide bandwidth-heavy jobs — the shape of collective traffic a
#: parameter-server-style service sees.
DEFAULT_MIX = (
    TrafficProfile("small-allreduce", "allreduce", 2, 64, weight=4.0),
    TrafficProfile("small-broadcast", "broadcast", 2, 256, weight=3.0),
    TrafficProfile("medium-scan", "scan", 2, 1024, weight=1.5),
    TrafficProfile("medium-allgather", "allgather", 2, 512, weight=1.5),
    TrafficProfile("wide-allreduce", "allreduce", 4, 2048, weight=1.0),
    TrafficProfile("wide-alltoall", "alltoall", 4, 256, weight=0.5),
    TrafficProfile("barrier-ping", "barrier", 2, 8, weight=1.0),
)


def arrival_times(seed: int, duration_s: float,
                  rate_per_s: float) -> list[float]:
    """Seeded Poisson arrival offsets (seconds) within ``duration_s``."""
    import math

    if rate_per_s <= 0:
        raise ValueError(f"arrival rate must be > 0, got {rate_per_s}")
    out: list[float] = []
    t = 0.0
    i = 0
    while True:
        u = keyed_u01(seed, _R_ARRIVAL, i)
        t += -math.log(1.0 - u) / rate_per_s
        if t >= duration_s:
            return out
        out.append(t)
        i += 1


def _pick_profile(seed: int, i: int,
                  mix: Sequence[TrafficProfile]) -> TrafficProfile:
    total = sum(p.weight for p in mix)
    x = keyed_u01(seed, _R_PROFILE, i) * total
    for p in mix:
        x -= p.weight
        if x < 0:
            return p
    return mix[-1]


def build_jobs(seed: int, duration_s: float, rate_per_s: float, *,
               tenants: int = 8, fault_rate: float = 0.0,
               mix: Sequence[TrafficProfile] = DEFAULT_MIX,
               pool_pes: int = 4) -> list[tuple[float, JobSpec]]:
    """The full seeded traffic: ``(arrival_offset_s, spec)`` per job.

    Faults are placed by an independent keyed draw: a faulted job gets
    mode ``"raise"`` or ``"exit"`` (salt-chosen) on a salt-chosen
    member.  The same seed with ``fault_rate=0`` yields the *same* jobs
    minus the faults — the differential the crash-isolation acceptance
    test runs.
    """
    jobs = []
    for i, t in enumerate(arrival_times(seed, duration_s, rate_per_s)):
        prof = _pick_profile(seed, i, mix)
        tenant = f"tenant{int(keyed_u01(seed, _R_TENANT, i) * tenants)}"
        n_pes = min(prof.n_pes, pool_pes)
        fault = None
        fault_rank = 0
        if fault_rate > 0 and keyed_u01(seed, _R_FAULT, i) < fault_rate:
            salt = keyed_salt(seed, _R_FAULT, i)
            fault = "exit" if salt & 1 else "raise"
            fault_rank = (salt >> 1) % n_pes
        jobs.append((t, JobSpec(
            tenant=tenant, collective=prof.collective, n_pes=n_pes,
            nelems=prof.nelems, dtype=prof.dtype,
            seed=keyed_salt(seed, _R_SEED, i) & 0xFFFF,
            fault=fault, fault_rank=fault_rank,
        )))
    return jobs


def run_serve_sweep(*, n_pes: int = 4, backend: str = "auto",
                    duration_s: float = 5.0, rate_per_s: float = 25.0,
                    tenants: int = 8, seed: int = 0,
                    fault_rate: float = 0.0,
                    max_queue_depth: int = 64, max_wait_s: float = 30.0,
                    timeout: float = 60.0,
                    mix: Sequence[TrafficProfile] = DEFAULT_MIX) -> dict:
    """Run one open-loop sweep; returns the report dict."""
    jobs = build_jobs(seed, duration_s, rate_per_s, tenants=tenants,
                      fault_rate=fault_rate, mix=mix, pool_pes=n_pes)
    rejected_backpressure = 0
    wall0 = time.monotonic()
    with ServePool(n_pes=n_pes, backend=backend, timeout=timeout,
                   max_queue_depth=max_queue_depth,
                   max_wait_s=max_wait_s) as pool:
        next_job = 0
        while next_job < len(jobs):
            now = time.monotonic() - wall0
            while next_job < len(jobs) and jobs[next_job][0] <= now:
                _, spec = jobs[next_job]
                next_job += 1
                try:
                    pool.submit(spec)
                except QueueFullError:
                    rejected_backpressure += 1
            if next_job < len(jobs):
                pool.pump(min(0.01, max(0.0,
                                        jobs[next_job][0] - now)))
        results = pool.drain(timeout_s=max(60.0, timeout * 2))
        wall = time.monotonic() - wall0
        snap = pool.snapshot()
        backend_used = pool.backend_name

    completed = [r for r in results if r.ok]
    failed = [r for r in results if not r.ok and not r.rejected]
    timed_out = [r for r in results if r.rejected]
    faulted = sum(1 for _, s in jobs if s.fault is not None)
    lat = snap["totals"]["latency_s"]
    return {
        "bench": "serve_sweep",
        "backend": backend_used,
        "host": _host_metadata(),
        "traffic": {
            **traffic_metadata(seed=seed, duration=duration_s,
                               arrival_rate=rate_per_s),
            "tenants": tenants,
            "fault_rate": fault_rate,
            "offered_jobs": len(jobs),
            "faulted_jobs": faulted,
            "mix": [{"name": p.name, "collective": p.collective,
                     "n_pes": p.n_pes, "nelems": p.nelems,
                     "dtype": p.dtype, "weight": p.weight}
                    for p in mix],
        },
        "pool": snap["pool"],
        "results": {
            "wall_seconds": round(wall, 6),
            "completed": len(completed),
            "failed": len(failed),
            "rejected_backpressure": rejected_backpressure,
            "rejected_admission_timeout": len(timed_out),
            "goodput_jobs_per_s": round(len(completed) / wall, 3)
            if wall > 0 else 0.0,
            "latency_s": lat,
            "pe_seconds_total": snap["totals"]["pe_seconds"],
        },
        "tenants": snap["tenants"],
    }


def _host_metadata() -> dict:
    import os
    import platform
    import sys

    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": sys.version.split()[0],
    }


def check_report(path: str, *, smoke: bool = True) -> list[str]:
    """CI perf-smoke: validate a committed BENCH_serve report.

    Checks the committed file's invariants (the acceptance criteria the
    report exists to witness), then — unless ``smoke=False`` — runs a
    short fresh sweep on this host to prove the serving path still
    completes jobs.  Returns the violations (empty = pass).
    """
    bad: list[str] = []
    with open(path) as fh:
        rep = json.load(fh)
    res = rep.get("results", {})
    lat = res.get("latency_s", {})
    if rep.get("bench") != "serve_sweep":
        bad.append(f"not a serve_sweep report: {rep.get('bench')!r}")
    for q in ("p50", "p95", "p99"):
        if not isinstance(lat.get(q), (int, float)):
            bad.append(f"latency percentile {q} missing")
    if not bad and not lat["p50"] <= lat["p95"] <= lat["p99"]:
        bad.append("latency percentiles not monotonic")
    if res.get("completed", 0) < 200:
        bad.append(f"committed run completed only "
                   f"{res.get('completed')} jobs (acceptance: >= 200)")
    tenants = rep.get("tenants", {})
    if len(tenants) < 8:
        bad.append(f"committed run used only {len(tenants)} tenants "
                   "(acceptance: >= 8)")
    if not all(t.get("pe_seconds", 0) > 0 for t in tenants.values()):
        bad.append("some tenant has no PE-seconds accounted")
    fault_rate = rep.get("traffic", {}).get("fault_rate", 0)
    if fault_rate and res.get("failed", 0) == 0:
        bad.append("faults were injected but no job failed — "
                   "crash accounting suspect")
    if smoke:
        fresh = run_serve_sweep(duration_s=1.0, rate_per_s=10.0,
                                seed=7, backend="auto")
        if fresh["results"]["completed"] < 1:
            bad.append("fresh smoke sweep completed no jobs")
        if fresh["results"]["failed"]:
            bad.append(f"fresh fault-free smoke sweep had "
                       f"{fresh['results']['failed']} failures")
    return bad


def main(argv: Sequence[str] | None = None) -> int:
    """``python -m repro.bench.serve_sweep`` — serving traffic bench."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.bench.serve_sweep",
        description="Open-loop Poisson traffic against a ServePool.",
    )
    parser.add_argument("--pes", type=int, default=4,
                        help="pool width (default 4)")
    parser.add_argument("--backend",
                        choices=("auto", "mp", "sim", "vec"),
                        default="auto", help="serving backend")
    parser.add_argument("--seed", type=int, default=0,
                        help="traffic seed (arrivals, mix, faults)")
    parser.add_argument("--tenants", type=int, default=8,
                        help="number of tenants (default 8)")
    parser.add_argument("--fault-rate", type=float, default=0.0,
                        help="fraction of jobs that get a seeded crash")
    add_traffic_args(parser)
    parser.add_argument("--out", default=None,
                        help="write the report JSON to this path")
    parser.add_argument("--check", default=None, metavar="REPORT",
                        help="CI perf-smoke: validate a committed "
                             "BENCH_serve.json instead of sweeping")
    args = parser.parse_args(argv)

    if args.check:
        bad = check_report(args.check)
        for v in bad:
            print(f"serve perf-smoke violation: {v}")
        if not bad:
            print(f"{args.check}: OK")
        return 1 if bad else 0

    duration = args.duration if args.duration is not None else 5.0
    rate = args.arrival_rate if args.arrival_rate is not None else 25.0
    report = run_serve_sweep(
        n_pes=args.pes, backend=args.backend, duration_s=duration,
        rate_per_s=rate, tenants=args.tenants, seed=args.seed,
        fault_rate=args.fault_rate,
    )
    res = report["results"]
    print(f"serve_sweep: backend={report['backend']} "
          f"offered={report['traffic']['offered_jobs']} "
          f"completed={res['completed']} failed={res['failed']} "
          f"rejected={res['rejected_backpressure']}"
          f"+{res['rejected_admission_timeout']}")
    print(f"  goodput {res['goodput_jobs_per_s']:.1f} jobs/s; latency "
          f"p50 {res['latency_s']['p50'] * 1e3:.1f} ms, "
          f"p95 {res['latency_s']['p95'] * 1e3:.1f} ms, "
          f"p99 {res['latency_s']['p99'] * 1e3:.1f} ms")
    for name, acct in report["tenants"].items():
        print(f"  {name}: {acct['completed']} ok, {acct['failed']} "
              f"failed, {acct['pe_seconds']:.3f} PE-s")
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
