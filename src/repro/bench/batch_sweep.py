"""Superstep batching sweep: K eager small allreduces vs one fused flush.

The superstep tentpole's acceptance bar — flushing K >= 8 same-shape
small (<= 4 KiB) allreduces as **one widened collective** must beat the
K eager executions by >= 2x simulated makespan — lives here as a
measured artifact.  The sweep compares, at each ``(n_pes, nelems, K)``
point,

* **eager**: K sequential executions of the compiled doubling
  allreduce at ``nelems`` elements (K x one-call makespan on the
  schedule evaluator — the calls are fully serialised by their entry
  and exit barriers, so the sum is exact, not pessimistic), against
* **superstep**: one execution of
  :func:`~repro.collectives.schedule.fuse.compile_widened` over the
  same K requests — the schedule the runtime's flush emits for a
  same-shape batch.

Small messages are latency-dominated: each eager call pays the full
⌈log₂N⌉ stage-latency ladder for a few cache lines of payload, while
the widened schedule pays that ladder **once** for the concatenated
payload.  The speedup therefore approaches K at small sizes and decays
toward 1 as the payload grows bandwidth-dominated — which the sweep
records rather than asserts away.

The committed ``BENCH_batch.json`` is the reference copy (regenerate
with ``python -m repro.bench.batch_sweep --out BENCH_batch.json``).
CI's perf-smoke job runs ``--check BENCH_batch.json``: shape checks,
the acceptance bar over the committed points, and one re-measured
point so the gate tracks the live cost model.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..collectives.allreduce import compile_allreduce
from ..collectives.schedule.evaluate import evaluate_schedule
from ..collectives.schedule.fuse import compile_widened
from ..params import MachineConfig

__all__ = [
    "PE_COUNTS",
    "SIZES",
    "BATCH_SIZES",
    "ACCEPT_MIN_BATCH",
    "ACCEPT_MAX_BYTES",
    "ACCEPT_SPEEDUP",
    "sweep_point",
    "batch_sweep",
    "check_document",
    "main",
]

#: PE counts: the serving-pool tier (8-64) plus the vec-evaluator
#: scale tier where the stage-latency ladder is deepest.
PE_COUNTS = (8, 16, 64, 256, 1024)

#: Per-call payload sizes in int64 elements: 64 B, 512 B and 4 KiB —
#: the latency-dominated band the superstep flush targets.
SIZES = (8, 64, 512)

#: Batch widths (requests per flush).
BATCH_SIZES = (8, 32)

#: The acceptance bar: a K >= 8 batch of <= 4 KiB allreduces fused into
#: one superstep beats K eager executions by >= 2x makespan.
ACCEPT_MIN_BATCH = 8
ACCEPT_MAX_BYTES = 4 * 1024
ACCEPT_SPEEDUP = 2.0

_ITEMSIZE = 8


def _sweep_config(n_pes: int) -> MachineConfig:
    """One PE per node, matching the pipeline and vec sweeps."""
    return MachineConfig(n_pes=n_pes, cores_per_node=1)


def sweep_point(n_pes: int, nelems: int, batch: int) -> dict:
    """Eager-vs-superstep makespans for one ``(n_pes, nelems, K)``."""
    cfg = _sweep_config(n_pes)
    one = compile_allreduce(n_pes, nelems, 1, _ITEMSIZE, "sum",
                            algorithm="doubling")
    eager_one = evaluate_schedule(one, cfg, dtype=np.dtype(np.int64),
                                  collect_data=False).elapsed_ns
    widened = compile_widened("allreduce", "doubling", n_pes, 0, "sum",
                              _ITEMSIZE, (nelems,) * batch)
    fused = evaluate_schedule(widened, cfg, dtype=np.dtype(np.int64),
                              collect_data=False).elapsed_ns
    eager = eager_one * batch
    return {
        "n_pes": n_pes,
        "nelems": nelems,
        "nbytes": nelems * _ITEMSIZE,
        "batch": batch,
        "eager_ns": eager,
        "superstep_ns": fused,
        "speedup": round(eager / fused, 3),
    }


def batch_sweep(pe_counts: Sequence[int] = PE_COUNTS,
                sizes: Sequence[int] = SIZES,
                batches: Sequence[int] = BATCH_SIZES) -> dict:
    """The full sweep, as the ``BENCH_batch.json`` document."""
    import platform
    import sys

    points = [sweep_point(n, nelems, k)
              for n in pe_counts for nelems in sizes for k in batches]
    return {
        "bench": "superstep-batch",
        "backend": "vec",
        "host": {
            "platform": platform.platform(),
            "python": sys.version.split()[0],
        },
        "config": {
            "cores_per_node": 1,
            "topology": "fully-connected",
            "itemsize": _ITEMSIZE,
            "dtype": "int64",
            "algorithm": "doubling",
        },
        "acceptance": {
            "min_batch": ACCEPT_MIN_BATCH,
            "max_bytes": ACCEPT_MAX_BYTES,
            "speedup_min": ACCEPT_SPEEDUP,
        },
        "pe_counts": list(pe_counts),
        "sizes": list(sizes),
        "batches": list(batches),
        "points": points,
    }


def _acceptance_points(doc: dict) -> list[dict]:
    """Points that satisfy the superstep acceptance bar."""
    return [
        p for p in doc.get("points", ())
        if p["batch"] >= ACCEPT_MIN_BATCH
        and p["nbytes"] <= ACCEPT_MAX_BYTES
        and p["speedup"] >= ACCEPT_SPEEDUP
    ]


def check_document(doc: dict, *, fresh_point: bool = True) -> list[str]:
    """Validate a ``BENCH_batch.json`` document; returns problems.

    Shape checks first (cheap, catch truncated or hand-edited files),
    then the acceptance bar over the committed points, then — unless
    ``fresh_point=False`` — one re-measured point so the gate tracks
    the live cost model, not just the committed numbers.
    """
    problems: list[str] = []
    if doc.get("bench") != "superstep-batch":
        problems.append(f"bench key is {doc.get('bench')!r}, expected "
                        "'superstep-batch'")
    points = doc.get("points")
    if not isinstance(points, list) or not points:
        problems.append("document has no sweep points")
        return problems
    required = {"n_pes", "nelems", "nbytes", "batch", "eager_ns",
                "superstep_ns", "speedup"}
    for i, p in enumerate(points):
        missing = required - set(p)
        if missing:
            problems.append(f"point {i} missing keys: {sorted(missing)}")
            return problems

    if not _acceptance_points(doc):
        problems.append(
            f"no committed point with batch >= {ACCEPT_MIN_BATCH}, <= "
            f"{ACCEPT_MAX_BYTES} bytes and speedup >= {ACCEPT_SPEEDUP}")

    if fresh_point:
        fresh = sweep_point(16, 64, 8)  # 16 PEs x 512 B x K=8: mid-sweep
        if fresh["speedup"] < ACCEPT_SPEEDUP:
            problems.append(
                "fresh measurement at 16 PEs x 512 B x K=8: speedup = "
                f"{fresh['speedup']} < {ACCEPT_SPEEDUP} — the live cost "
                "model no longer meets the acceptance bar")
    return problems


def _print_sweep(doc: dict) -> None:
    print("superstep batching: K eager allreduces vs one fused flush "
          "(vec evaluator, 1 PE/node)")
    print(f"{'pes':>5} {'B':>6} {'K':>4} "
          f"{'eager ns':>13} {'superstep ns':>13} {'speedup':>8}")
    for p in doc["points"]:
        print(f"{p['n_pes']:>5} {p['nbytes']:>6} {p['batch']:>4} "
              f"{p['eager_ns']:>13.0f} {p['superstep_ns']:>13.0f} "
              f"{p['speedup']:>8.2f}")
    n_ok = len(_acceptance_points(doc))
    print(f"acceptance (speedup >= {ACCEPT_SPEEDUP}x at K >= "
          f"{ACCEPT_MIN_BATCH}, <= {ACCEPT_MAX_BYTES} B): "
          f"{n_ok} qualifying points")


def main(argv: Sequence[str] | None = None) -> int:
    """``python -m repro.bench.batch_sweep`` — sweep or check."""
    import argparse
    import json

    parser = argparse.ArgumentParser(
        prog="repro.bench.batch_sweep",
        description="Superstep-batching speedup sweep on the vec "
                    "evaluator (the BENCH_batch.json format).",
    )
    parser.add_argument("--pes", type=int, nargs="+",
                        default=list(PE_COUNTS),
                        help="PE counts to sweep")
    parser.add_argument("--sizes", type=int, nargs="+", default=list(SIZES),
                        help="per-call payload sizes in int64 elements")
    parser.add_argument("--batches", type=int, nargs="+",
                        default=list(BATCH_SIZES),
                        help="requests per superstep flush")
    parser.add_argument("--out", default=None,
                        help="write the sweep as JSON to this path")
    parser.add_argument("--check", metavar="JSON", default=None,
                        help="validate a committed BENCH_batch.json "
                             "instead of sweeping")
    args = parser.parse_args(argv)

    if args.check:
        with open(args.check) as fh:
            doc = json.load(fh)
        problems = check_document(doc)
        if problems:
            for problem in problems:
                print(f"FAIL: {problem}")
            return 1
        n_ok = len(_acceptance_points(doc))
        print(f"{args.check}: ok — {len(doc['points'])} points, "
              f"{n_ok} meet the >= {ACCEPT_SPEEDUP}x superstep bar, "
              "fresh 16-PE point still passes")
        return 0

    doc = batch_sweep(args.pes, args.sizes, args.batches)
    _print_sweep(doc)
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
