"""OSU/OSB-style point-to-point microbenchmarks.

The ORNL OpenSHMEM benchmark suite the paper adapts (section 5.2) also
carries the classic micro-suite; the paper promises to "continue to
port further benchmarks" (section 5.3).  These are the standard four,
over the xbrtime one-sided API:

* :func:`put_latency` / :func:`get_latency` — round-trip-normalised
  latency vs message size;
* :func:`put_bandwidth` — streaming bandwidth with a window of
  back-to-back non-blocking puts per synchronisation;
* :func:`message_rate` — 8-byte puts issued per second.

Each returns per-size results computed from *simulated* time, so the
numbers characterise the modelled machine (and respond to the transport
presets — compare ``with_transport("mpi")``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..params import MachineConfig
from ..runtime.context import Machine, XBRTime

__all__ = [
    "MicroResult",
    "DEFAULT_SIZES",
    "put_latency",
    "get_latency",
    "put_bandwidth",
    "message_rate",
]

DEFAULT_SIZES = (8, 64, 512, 4096, 32768, 262144)


@dataclass(frozen=True)
class MicroResult:
    """One microbenchmark point."""

    nbytes: int
    iterations: int
    total_ns: float

    @property
    def latency_us(self) -> float:
        """Per-operation simulated latency in microseconds."""
        return self.total_ns / self.iterations / 1e3

    @property
    def bandwidth_mbps(self) -> float:
        """Simulated MB/s moved (1e6 bytes per second)."""
        if self.total_ns == 0:
            return float("inf")
        return self.nbytes * self.iterations / (self.total_ns / 1e9) / 1e6

    @property
    def rate_mops(self) -> float:
        """Operations per simulated second, in millions."""
        return self.iterations / (self.total_ns / 1e9) / 1e6


def _two_pe_machine(config: MachineConfig | None) -> Machine:
    if config is None:
        config = MachineConfig(n_pes=2, cores_per_node=1)
    if config.n_pes < 2:
        raise ValueError("microbenchmarks need at least 2 PEs")
    return Machine(config)


def _run_pairwise(fn, sizes: Sequence[int], iterations: int,
                  config: MachineConfig | None) -> list[MicroResult]:
    machine = _two_pe_machine(config)

    def body(ctx: XBRTime) -> list[tuple[int, float]]:
        ctx.init()
        max_size = max(sizes)
        buf = ctx.malloc(max_size)
        src = ctx.private_malloc(max_size)
        out: list[tuple[int, float]] = []
        for nbytes in sizes:
            ctx.barrier()
            t0 = ctx.time_ns
            if ctx.my_pe() == 0:
                fn(ctx, buf, src, nbytes, iterations)
            ctx.barrier()
            out.append((nbytes, ctx.time_ns - t0))
        ctx.close()
        return out

    results = machine.run(body)
    return [MicroResult(nbytes=n, iterations=iterations, total_ns=t)
            for n, t in results[0]]


def put_latency(sizes: Sequence[int] = DEFAULT_SIZES, iterations: int = 32,
                config: MachineConfig | None = None) -> list[MicroResult]:
    """Blocking put + quiet per iteration (osu_put_latency)."""
    def op(ctx, buf, src, nbytes, iters):
        for _ in range(iters):
            ctx.put(buf, src, nbytes // 8, 1, 1, "long")
            ctx.quiet()

    return _run_pairwise(op, sizes, iterations, config)


def get_latency(sizes: Sequence[int] = DEFAULT_SIZES, iterations: int = 32,
                config: MachineConfig | None = None) -> list[MicroResult]:
    """Blocking get per iteration (osu_get_latency)."""
    def op(ctx, buf, src, nbytes, iters):
        for _ in range(iters):
            ctx.get(src, buf, nbytes // 8, 1, 1, "long")

    return _run_pairwise(op, sizes, iterations, config)


def put_bandwidth(sizes: Sequence[int] = DEFAULT_SIZES, iterations: int = 16,
                  window: int = 8,
                  config: MachineConfig | None = None) -> list[MicroResult]:
    """Windows of non-blocking puts per quiet (osu_put_bw)."""
    def op(ctx, buf, src, nbytes, iters):
        for _ in range(iters):
            handles = [ctx.put_nb(buf, src, nbytes // 8, 1, 1, "long")
                       for _ in range(window)]
            ctx.quiet()

    results = _run_pairwise(op, sizes, iterations, config)
    # Account the windowed transfers in the bandwidth figure.
    return [MicroResult(r.nbytes, r.iterations * window, r.total_ns)
            for r in results]


def message_rate(iterations: int = 256,
                 config: MachineConfig | None = None) -> MicroResult:
    """8-byte non-blocking put issue rate (osu_put_mr)."""
    def op(ctx, buf, src, nbytes, iters):
        for _ in range(iters):
            ctx.put_nb(buf, src, 1, 1, 1, "long")
        ctx.quiet()

    return _run_pairwise(op, (8,), iterations, config)[0]
