"""GUPs (RandomAccess) adapted from the ORNL OpenSHMEM benchmark suite.

Each PE owns a block of a global table of 64-bit words and applies a
stream of XOR updates at pseudo-random global indices (the HPCC
polynomial LCG).  Remote updates use the one-sided get-modify-put idiom
of the OSB SHMEM port; the run brackets with the broadcast (parameters)
and reduction (error count / statistics) collectives, which is why the
paper uses it to exercise the collective library.

Verification follows HPCC (the paper runs "with the verification
features enabled"): the same update stream is applied a second time —
XOR is an involution, so the table must return to its initial state;
any cell that does not is an error.  Because the get-modify-put idiom
is not atomic, concurrent updates of one cell can lose an update;
HPCC accepts a run when errors stay at or below 1 % of the updates,
and so does :attr:`GupsResult.passed`.

The reported metric matches Figure 4: operations (updates) per second,
total and per PE.  The default table is 2^21 words (16 MiB) — larger
than one 8 MB L2, so the per-PE slice *fits* in L2 only once the table
is split 2+ ways; this cache-capacity effect plus the shared-bus
contention at 8 PEs reproduces the figure's shape.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..errors import CollectiveArgumentError
from ..params import MachineConfig
from ..runtime.context import Machine, XBRTime

__all__ = ["POLY", "hpcc_starts", "GupsParams", "GupsResult", "run_gups",
           "run_gups_backend"]

MASK64 = (1 << 64) - 1
#: The HPCC RandomAccess polynomial (x^63 + x^2 + x + 1).
POLY = 0x0000000000000007
PERIOD = 1317624576693539401


def _lcg_step(ran: int) -> int:
    """One step of the HPCC LCG over GF(2)[x]/(POLY)."""
    return ((ran << 1) & MASK64) ^ (POLY if ran >> 63 else 0)


def _mix64(x: int) -> int:
    """MurmurHash3 finalizer, decorrelating the LCG's low bits.

    HPCC masks the raw LCG value with ``TableSize - 1``; at full scale
    (2^30 words, 4N updates) the shift-register correlation in the low
    bits washes out, but at this reproduction's scaled sizes it would
    leave the index stream pathologically local (a few hundred distinct
    pages).  Mixing restores the uniform access pattern the benchmark
    is about while keeping the stream fully reproducible.
    """
    x ^= x >> 33
    x = (x * 0xFF51AFD7ED558CCD) & MASK64
    x ^= x >> 33
    x = (x * 0xC4CEB9FE1A85EC53) & MASK64
    x ^= x >> 33
    return x


def hpcc_starts(n: int) -> int:
    """HPCC ``starts``: the LCG state after ``n`` steps from 1.

    Used to give every PE an independent slice of the single global
    update stream, exactly as HPCC RandomAccess does.
    """
    n = n % PERIOD
    if n == 0:
        return 1
    # m2[i] = x^(2^i) in the field, by repeated squaring steps.
    m2 = []
    temp = 1
    for _ in range(64):
        m2.append(temp)
        temp = _lcg_step(_lcg_step(temp))
    i = 62
    while i >= 0 and not (n >> i) & 1:
        i -= 1
    ran = 2
    while i > 0:
        temp = 0
        for j in range(64):
            if (ran >> j) & 1:
                temp ^= m2[j]
        ran = temp
        i -= 1
        if (n >> i) & 1:
            ran = _lcg_step(ran)
    return ran


@dataclass(frozen=True)
class GupsParams:
    """Workload configuration.

    ``log2_table_size`` is the global table size in words;
    ``updates_per_pe`` scales simulation effort (HPCC's 4×TableSize is
    far beyond what a Python-process simulation needs for a stable
    rate; the rate converges within a few thousand updates).
    """

    log2_table_size: int = 21
    updates_per_pe: int = 2048
    verify: bool = True
    #: Offsets every PE's slice of the HPCC update stream by whole
    #: runs (seed ``s`` starts the machine at stream position
    #: ``(s·n_pes + rank)·updates``), so different seeds exercise
    #: different index sequences while ``seed=0`` reproduces the
    #: benchmark's canonical stream.  Same seed ⇒ same run, exactly.
    seed: int = 0
    #: Use the xBGAS remote atomic (``eamoxor.d``) instead of the OSB
    #: get-modify-put idiom: one network transaction per update and no
    #: lost updates under contention.
    use_amo: bool = False
    #: Per-update runtime-call + RNG + index-arithmetic cost (ns at
    #: 1 GHz — the xbrtime call path runs ~150 instructions per update).
    update_overhead_ns: float = 150.0

    @property
    def table_size(self) -> int:
        return 1 << self.log2_table_size


@dataclass(frozen=True)
class GupsResult:
    """One GUPs run (one row of Figure 4)."""

    n_pes: int
    table_size: int
    total_updates: int
    sim_seconds: float
    errors: int
    verified: bool
    seed: int = 0
    #: Host wall-clock time of the run (simulator cost, not a modeled
    #: quantity) — makes perf regressions visible in saved results.
    wall_seconds: float = 0.0
    #: Simulated nanoseconds produced per wall-clock second.
    sim_ns_per_wall_s: float = 0.0

    @property
    def mops_total(self) -> float:
        """Million updates per second, all PEs."""
        return self.total_updates / self.sim_seconds / 1e6

    @property
    def mops_per_pe(self) -> float:
        return self.mops_total / self.n_pes

    @property
    def gups(self) -> float:
        """Billion updates per second (the benchmark's native unit)."""
        return self.total_updates / self.sim_seconds / 1e9

    @property
    def passed(self) -> bool:
        """HPCC's acceptance criterion: errors within 1 % of updates."""
        if not self.verified:
            return True
        return self.errors <= 0.01 * self.total_updates


def _gups_pe(ctx: XBRTime, params: GupsParams) -> dict:
    me, n = None, None
    ctx.init()
    me, n = ctx.my_pe(), ctx.num_pes()
    table_size = params.table_size
    if table_size % n:
        raise CollectiveArgumentError(
            f"table size {table_size} not divisible by {n} PEs"
        )
    local_size = table_size // n
    table_addr = ctx.malloc(8 * local_size)
    table = ctx.view(table_addr, "uint64", local_size)
    # table[i] = global index i (HPCC initialisation).
    base = me * local_size
    table[:] = np.arange(base, base + local_size, dtype=np.uint64)
    ctx.charge_stream(table_addr, 8 * local_size, write=True)

    # Broadcast run parameters from PE 0 (collective warm-up, and how
    # the OSB harness distributes configuration).
    pbuf = ctx.malloc(8 * 2)
    pv = ctx.view(pbuf, "uint64", 2)
    if me == 0:
        pv[0] = table_size
        pv[1] = params.updates_per_pe
    ctx.uint64_broadcast(pbuf, pbuf, 2, 1, 0)
    assert int(pv[0]) == table_size

    updates = int(pv[1])
    scratch = ctx.private_malloc(8)
    sview = ctx.view(scratch, "uint64", 1)

    def apply_stream(ran: int) -> int:
        """Run this PE's slice of the global update stream once."""
        for _ in range(updates):
            ran = _lcg_step(ran)
            gidx = _mix64(ran) & (table_size - 1)
            owner, off = divmod(gidx, local_size)
            ctx.compute(params.update_overhead_ns)
            if owner == me:
                ctx.charge_access(table_addr + 8 * off, 8, write=False)
                ctx.charge_access(table_addr + 8 * off, 8, write=True)
                table[off] ^= np.uint64(ran)
            elif params.use_amo:
                # xBGAS remote atomic: a single fetch-and-xor transaction.
                ctx.amo(table_addr + 8 * off, ran, owner, "xor", "uint64")
            else:
                # OSB idiom: one-sided get, xor locally, one-sided put.
                ctx.get(scratch, table_addr + 8 * off, 1, 1, owner, "uint64")
                sview[0] ^= np.uint64(ran)
                ctx.put(table_addr + 8 * off, scratch, 1, 1, owner, "uint64")
        return ran

    start_seed = hpcc_starts((params.seed * n + me) * updates)
    ctx.barrier()
    t0 = ctx.time_ns
    apply_stream(start_seed)
    ctx.barrier()
    t1 = ctx.time_ns

    errors = 0
    if params.verify:
        # Apply the identical stream again: XOR twice = identity, so the
        # table must return to table[i] = i.
        apply_stream(start_seed)
        ctx.barrier()
        expect = np.arange(base, base + local_size, dtype=np.uint64)
        errors = int(np.count_nonzero(table != expect))
        ctx.charge_stream(table_addr, 8 * local_size)

    # Reduce total errors to PE 0 (the benchmark's closing collective).
    ebuf = ctx.malloc(8)
    ctx.view(ebuf, "uint64", 1)[0] = errors
    eout = ctx.private_malloc(8)
    ctx.uint64_reduce_sum(eout, ebuf, 1, 1, 0)
    total_errors = int(ctx.view(eout, "uint64", 1)[0]) if me == 0 else -1
    ctx.close()
    return {
        "rank": me,
        "t_update_ns": t1 - t0,
        "updates": updates,
        "errors": total_errors,
    }


def run_gups(config: MachineConfig, params: GupsParams | None = None, *,
             fast_paths: bool = True) -> GupsResult:
    """Run GUPs on a fresh machine built from ``config``.

    ``fast_paths=False`` runs on the reference simulator paths (same
    simulated result, slower wall clock) — used by the perf harness.
    """
    params = params if params is not None else GupsParams()
    machine = Machine(config, fast_paths=fast_paths)
    wall0 = time.perf_counter()
    results = machine.run(_gups_pe, [(params,) for _ in range(config.n_pes)])
    wall = time.perf_counter() - wall0
    t_ns = max(r["t_update_ns"] for r in results)
    total_updates = sum(r["updates"] for r in results)
    errors = results[0]["errors"]
    return GupsResult(
        n_pes=config.n_pes,
        table_size=params.table_size,
        total_updates=total_updates,
        sim_seconds=t_ns / 1e9,
        errors=max(errors, 0),
        verified=params.verify,
        seed=params.seed,
        wall_seconds=wall,
        sim_ns_per_wall_s=(machine.elapsed_ns / wall) if wall > 0 else 0.0,
    )


def run_gups_backend(config: MachineConfig,
                     params: GupsParams | None = None, *,
                     backend: str = "sim", **session_opts) -> GupsResult:
    """Run GUPs on any execution backend (``"sim"`` or ``"mp"``).

    The *same* per-PE program (:func:`_gups_pe`) runs either way — it is
    written against the PE context protocol.  The reported seconds come
    from ``ctx.time_ns``, which means *modelled* time on the simulator
    and *wall-clock* time on the multiprocessing backend; on ``"mp"``
    :attr:`GupsResult.mops_total` is therefore a true host throughput
    and the basis of the cross-PE-count scaling numbers in
    ``BENCH_mp.json``.
    """
    from ..backends import get_backend

    params = params if params is not None else GupsParams()
    wall0 = time.perf_counter()
    results = get_backend(backend).run(
        _gups_pe, [(params,) for _ in range(config.n_pes)],
        config=config, **session_opts,
    )
    wall = time.perf_counter() - wall0
    t_ns = max(r["t_update_ns"] for r in results)
    total_updates = sum(r["updates"] for r in results)
    errors = results[0]["errors"]
    return GupsResult(
        n_pes=config.n_pes,
        table_size=params.table_size,
        total_updates=total_updates,
        sim_seconds=t_ns / 1e9,
        errors=max(errors, 0),
        verified=params.verify,
        seed=params.seed,
        wall_seconds=wall,
        sim_ns_per_wall_s=0.0,
    )
