"""Text rendering of the paper's tables and figures.

Each function returns the rows the paper presents, as plain text, so the
benchmark harness can print a like-for-like artefact next to the
measured numbers (EXPERIMENTS.md records the comparison).
"""

from __future__ import annotations

from typing import Sequence

from ..collectives.binomial import render_tree
from ..collectives.virtual_rank import rank_table
from ..types import TYPE_TABLE
from .harness import SweepPoint

__all__ = [
    "render_table1",
    "render_table2",
    "render_figure3",
    "render_figure",
    "render_sweep_series",
    "sweep_to_csv",
    "render_collective_metrics",
]


def render_table1() -> str:
    """Table 1: xBGAS matched type names & types."""
    w = max(len(t.typename) for t in TYPE_TABLE)
    lines = [f"{'TYPENAME':<{w}}  TYPE", "-" * (w + 24)]
    for t in TYPE_TABLE:
        lines.append(f"{t.typename:<{w}}  {t.ctype}")
    return "\n".join(lines)


def render_table2(root: int = 4, n_pes: int = 7) -> str:
    """Table 2: logical → virtual rank mapping (root 4, 7 PEs)."""
    lines = ["log_rank  vir_rank", "-" * 18]
    for lr, vr in rank_table(root, n_pes):
        lines.append(f"{lr:>8d}  {vr:>8d}")
    return "\n".join(lines)


def render_figure3(n_pes: int = 8) -> str:
    """Figure 3: the binomial tree with recursive halving."""
    return render_tree(n_pes)


def render_figure(points: Sequence[SweepPoint], title: str) -> str:
    """A Figure 4/5-style series: MOPS total and per PE by PE count."""
    lines = [
        title,
        f"{'PEs':>4}  {'MOPS total':>12}  {'MOPS/PE':>10}  verified",
        "-" * 44,
    ]
    for p in points:
        lines.append(
            f"{p.n_pes:>4}  {p.mops_total:>12.3f}  {p.mops_per_pe:>10.3f}  "
            f"{'yes' if p.verified else 'NO'}"
        )
    return "\n".join(lines)


def render_sweep_series(series: dict[str, Sequence[SweepPoint]],
                        title: str) -> str:
    """Several labelled sweeps side by side (ablation output)."""
    out = [title]
    for label, points in series.items():
        out.append("")
        out.append(render_figure(points, f"-- {label} --"))
    return "\n".join(out)


def render_collective_metrics(metrics: Sequence) -> str:
    """Per-collective span metrics as text.

    Takes the :class:`~repro.sim.metrics.CollectiveMetrics` list from
    :meth:`Machine.collective_metrics` (or
    :func:`~repro.bench.harness.profile_collective`) and renders one
    block per logical call: the stage table (messages, bytes, barriers,
    latency) plus the per-PE busy/blocked split and the critical path.
    """
    out: list[str] = []
    for cm in metrics:
        tag = " (nested)" if cm.nested else ""
        out.append(
            f"{cm.name}#{cm.seq} over {len(cm.group)} PEs{tag}: "
            f"{cm.n_stages} stages, {cm.total_messages} messages, "
            f"{cm.total_bytes} bytes, "
            f"critical path {cm.critical_path_ns:.0f} ns"
        )
        if cm.entry_barriers or cm.extra_messages:
            out.append(
                f"  entry barriers: {cm.entry_barriers}, "
                f"out-of-stage messages: {cm.extra_messages} "
                f"({cm.extra_bytes} bytes)"
            )
        if cm.stages:
            out.append(f"  {'stage':>5}  {'msgs':>5}  {'bytes':>8}  "
                       f"{'barriers':>8}  {'latency ns':>10}")
            for s in cm.stages:
                out.append(
                    f"  {s.index:>5}  {s.messages:>5}  {s.bytes:>8}  "
                    f"{s.barriers:>8}  {s.latency_ns:>10.0f}"
                )
        busiest = max(cm.per_pe.values(), key=lambda a: a.busy_ns,
                      default=None)
        if busiest is not None:
            blocked = sum(a.blocked_ns for a in cm.per_pe.values())
            out.append(
                f"  busiest PE {busiest.pe}: {busiest.busy_ns:.0f} ns busy / "
                f"{busiest.blocked_ns:.0f} ns blocked; "
                f"total blocked across PEs: {blocked:.0f} ns"
            )
        out.append("")
    return "\n".join(out).rstrip("\n")


def sweep_to_csv(points: Sequence[SweepPoint]) -> str:
    """A Figure 4/5-style sweep as CSV (for external plotting)."""
    lines = ["n_pes,mops_total,mops_per_pe,verified"]
    for p in points:
        lines.append(
            f"{p.n_pes},{p.mops_total:.6f},{p.mops_per_pe:.6f},"
            f"{int(p.verified)}"
        )
    return "\n".join(lines) + "\n"
