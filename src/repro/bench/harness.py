"""Parameter sweeps regenerating the paper's evaluation.

Figures 4 and 5 report operations per second — total and per PE — for 1,
2, 4 and 8 PEs on the section 5.1 platform.  :func:`sweep_gups` and
:func:`sweep_is` run those sweeps; the shape checks
(:func:`check_figure4_shape` / :func:`check_figure5_shape`) encode the
qualitative claims the reproduction must match:

* total throughput scales near-linearly from 1 to 4 PEs;
* per-PE throughput at 2 and 4 PEs meets or exceeds the 1-PE baseline
  (cache-capacity effect), with the peak at 2 PEs for GUPs;
* per-PE throughput drops at 8 PEs (shared-bus contention), by roughly
  25 % for IS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..params import MachineConfig
from .gups import GupsParams, GupsResult, run_gups
from .nas_is import IsParams, IsResult, generate_keys, run_is

__all__ = [
    "SweepPoint",
    "PE_COUNTS",
    "sweep_gups",
    "sweep_is",
    "check_figure4_shape",
    "check_figure5_shape",
]

#: The PE counts of Figures 4 and 5.
PE_COUNTS = (1, 2, 4, 8)


@dataclass(frozen=True)
class SweepPoint:
    """One (n_pes, metric) point of a figure."""

    n_pes: int
    mops_total: float
    mops_per_pe: float
    verified: bool
    detail: object = None


def sweep_gups(
    pe_counts: Sequence[int] = PE_COUNTS,
    params: GupsParams | None = None,
    base_config: MachineConfig | None = None,
) -> list[SweepPoint]:
    """Figure 4: GUPs at each PE count."""
    params = params if params is not None else GupsParams()
    base = base_config if base_config is not None else MachineConfig()
    points = []
    for n in pe_counts:
        res: GupsResult = run_gups(base.with_(n_pes=n), params)
        points.append(SweepPoint(
            n_pes=n,
            mops_total=res.mops_total,
            mops_per_pe=res.mops_per_pe,
            verified=res.passed,
            detail=res,
        ))
    return points


def sweep_is(
    pe_counts: Sequence[int] = PE_COUNTS,
    params: IsParams | None = None,
    base_config: MachineConfig | None = None,
    keys: np.ndarray | None = None,
) -> list[SweepPoint]:
    """Figure 5: NAS IS at each PE count (one key sequence reused)."""
    params = params if params is not None else IsParams()
    base = base_config if base_config is not None else MachineConfig()
    if keys is None:
        keys = generate_keys(params)
    points = []
    for n in pe_counts:
        res: IsResult = run_is(base.with_(n_pes=n), params, keys)
        points.append(SweepPoint(
            n_pes=n,
            mops_total=res.mops_total,
            mops_per_pe=res.mops_per_pe,
            verified=res.partial_verified and res.full_verified,
            detail=res,
        ))
    return points


def _by_pes(points: Sequence[SweepPoint]) -> dict[int, SweepPoint]:
    return {p.n_pes: p for p in points}


def check_figure4_shape(points: Sequence[SweepPoint]) -> list[str]:
    """Qualitative checks on a GUPs sweep; returns the violations."""
    p = _by_pes(points)
    bad: list[str] = []
    if not all(pt.verified for pt in points):
        bad.append("verification failed")
    if {1, 2, 4} <= p.keys():
        if not p[2].mops_total > 1.5 * p[1].mops_total:
            bad.append("total MOPS not ~linear 1->2 PEs")
        if not p[4].mops_total > 1.5 * p[2].mops_total:
            bad.append("total MOPS not ~linear 2->4 PEs")
        if not p[2].mops_per_pe >= p[1].mops_per_pe:
            bad.append("per-PE MOPS at 2 PEs below the 1-PE baseline")
        if not p[4].mops_per_pe >= p[1].mops_per_pe:
            bad.append("per-PE MOPS at 4 PEs below the 1-PE baseline")
        if not p[2].mops_per_pe >= p[4].mops_per_pe:
            bad.append("per-PE peak not at 2 PEs")
    if {4, 8} <= p.keys():
        if not p[8].mops_per_pe < p[4].mops_per_pe:
            bad.append("no per-PE drop at 8 PEs")
    return bad


def check_figure5_shape(points: Sequence[SweepPoint]) -> list[str]:
    """Qualitative checks on an IS sweep; returns the violations."""
    p = _by_pes(points)
    bad: list[str] = []
    if not all(pt.verified for pt in points):
        bad.append("verification failed")
    if {1, 2, 4} <= p.keys():
        if not p[2].mops_total > 1.4 * p[1].mops_total:
            bad.append("total MOPS not ~linear 1->2 PEs")
        if not p[4].mops_total > 1.4 * p[2].mops_total:
            bad.append("total MOPS not ~linear 2->4 PEs")
        # "The number of operations per PE also remains consistent."
        lo = 0.85 * p[1].mops_per_pe
        if p[2].mops_per_pe < lo or p[4].mops_per_pe < lo:
            bad.append("per-PE MOPS not consistent across 1-4 PEs")
    if {4, 8} <= p.keys():
        drop = 1.0 - p[8].mops_per_pe / p[4].mops_per_pe
        if drop < 0.10:
            bad.append(f"8-PE per-PE drop only {drop:.0%} (paper: ~25%)")
        if drop > 0.60:
            bad.append(f"8-PE per-PE drop {drop:.0%} is far beyond ~25%")
    return bad
