"""Parameter sweeps regenerating the paper's evaluation.

Figures 4 and 5 report operations per second — total and per PE — for 1,
2, 4 and 8 PEs on the section 5.1 platform.  :func:`sweep_gups` and
:func:`sweep_is` run those sweeps; the shape checks
(:func:`check_figure4_shape` / :func:`check_figure5_shape`) encode the
qualitative claims the reproduction must match:

* total throughput scales near-linearly from 1 to 4 PEs;
* per-PE throughput at 2 and 4 PEs meets or exceeds the 1-PE baseline
  (cache-capacity effect), with the peak at 2 PEs for GUPs;
* per-PE throughput drops at 8 PEs (shared-bus contention), by roughly
  25 % for IS.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from ..params import MachineConfig
from .gups import GupsParams, GupsResult, run_gups, run_gups_backend
from .nas_is import IsParams, IsResult, generate_keys, run_is

__all__ = [
    "SweepPoint",
    "add_traffic_args",
    "traffic_metadata",
    "PE_COUNTS",
    "sweep_gups",
    "sweep_gups_backend",
    "sweep_is",
    "check_figure4_shape",
    "check_figure5_shape",
    "CollectiveProfile",
    "profile_collective",
    "oversubscription_gate",
    "bench_report",
    "main",
]

#: The PE counts of Figures 4 and 5.
PE_COUNTS = (1, 2, 4, 8)


@dataclass(frozen=True)
class SweepPoint:
    """One (n_pes, metric) point of a figure."""

    n_pes: int
    mops_total: float
    mops_per_pe: float
    verified: bool
    detail: object = None
    #: Workload seed the point was measured with (0 = canonical stream).
    seed: int = 0
    #: Host wall-clock seconds the point took to simulate.
    wall_seconds: float = 0.0
    #: Simulated nanoseconds produced per wall-clock second — the
    #: simulator-throughput figure perf regressions show up in.
    sim_ns_per_wall_s: float = 0.0


def sweep_gups(
    pe_counts: Sequence[int] = PE_COUNTS,
    params: GupsParams | None = None,
    base_config: MachineConfig | None = None,
    *,
    seed: int | None = None,
) -> list[SweepPoint]:
    """Figure 4: GUPs at each PE count.

    ``seed`` (when given) overrides ``params.seed``, shifting every
    PE's slice of the HPCC update stream; it is recorded on each
    returned point.
    """
    params = params if params is not None else GupsParams()
    if seed is not None:
        params = replace(params, seed=seed)
    base = base_config if base_config is not None else MachineConfig()
    points = []
    for n in pe_counts:
        res: GupsResult = run_gups(base.with_(n_pes=n), params)
        points.append(SweepPoint(
            n_pes=n,
            mops_total=res.mops_total,
            mops_per_pe=res.mops_per_pe,
            verified=res.passed,
            detail=res,
            seed=params.seed,
            wall_seconds=res.wall_seconds,
            sim_ns_per_wall_s=res.sim_ns_per_wall_s,
        ))
    return points


def sweep_gups_backend(
    pe_counts: Sequence[int] = PE_COUNTS,
    params: GupsParams | None = None,
    base_config: MachineConfig | None = None,
    *,
    backend: str = "mp",
    seed: int | None = None,
    **session_opts,
) -> list[SweepPoint]:
    """GUPs at each PE count on an execution backend (wall-clock).

    Unlike :func:`sweep_gups` the reported rates are whatever
    ``ctx.time_ns`` means on the chosen backend — host throughput on
    ``"mp"``.  Shape checks do not apply to wall-clock numbers (they
    depend on the host's core count), so callers record these points
    instead of asserting Figure 4 on them.
    """
    params = params if params is not None else GupsParams()
    if seed is not None:
        params = replace(params, seed=seed)
    base = base_config if base_config is not None else MachineConfig()
    points = []
    for n in pe_counts:
        res: GupsResult = run_gups_backend(
            base.with_(n_pes=n), params, backend=backend, **session_opts)
        points.append(SweepPoint(
            n_pes=n,
            mops_total=res.mops_total,
            mops_per_pe=res.mops_per_pe,
            verified=res.passed,
            detail=res,
            seed=params.seed,
            wall_seconds=res.wall_seconds,
            sim_ns_per_wall_s=res.sim_ns_per_wall_s,
        ))
    return points


def sweep_is(
    pe_counts: Sequence[int] = PE_COUNTS,
    params: IsParams | None = None,
    base_config: MachineConfig | None = None,
    keys: np.ndarray | None = None,
    *,
    seed: int | None = None,
) -> list[SweepPoint]:
    """Figure 5: NAS IS at each PE count (one key sequence reused).

    ``seed`` (when given) perturbs the NPB key-generation LCG by
    ``2·seed`` (keeping the seed odd, as ``randlc`` requires); seed 0
    keeps NPB's canonical 314159265.
    """
    params = params if params is not None else IsParams()
    if seed is not None and seed != 0:
        params = replace(params, seed=params.seed + 2 * seed)
    base = base_config if base_config is not None else MachineConfig()
    if keys is None:
        keys = generate_keys(params)
    points = []
    for n in pe_counts:
        wall0 = time.perf_counter()
        res: IsResult = run_is(base.with_(n_pes=n), params, keys)
        wall = time.perf_counter() - wall0
        sim_ns = res.sim_seconds * 1e9
        points.append(SweepPoint(
            n_pes=n,
            mops_total=res.mops_total,
            mops_per_pe=res.mops_per_pe,
            verified=res.partial_verified and res.full_verified,
            detail=res,
            seed=seed if seed is not None else 0,
            wall_seconds=wall,
            sim_ns_per_wall_s=(sim_ns / wall) if wall > 0 else 0.0,
        ))
    return points


@dataclass
class CollectiveProfile:
    """A traced run of one collective, ready for inspection or export."""

    name: str
    n_pes: int
    nelems: int
    dtype: str
    metrics: list  #: :class:`~repro.sim.metrics.CollectiveMetrics` entries
    elapsed_ns: float
    chrome: dict | None = None  #: Chrome-trace doc when ``chrome_path`` set

    @property
    def call(self):
        """The top-level (non-nested) call that was profiled."""
        for m in self.metrics:
            if not m.nested:
                return m
        raise LookupError(f"no top-level {self.name} call in the trace")


#: Collectives :func:`profile_collective` knows how to drive.
_PROFILABLE = ("broadcast", "reduce", "scatter", "gather", "allreduce",
               "scan", "allgather", "alltoall")


def _even_split(nelems: int, n_pes: int) -> tuple[list[int], list[int]]:
    """Per-PE counts/displacements that sum to ``nelems``."""
    base, rem = divmod(nelems, n_pes)
    msgs = [base + (1 if i < rem else 0) for i in range(n_pes)]
    disp = [0] * n_pes
    for i in range(1, n_pes):
        disp[i] = disp[i - 1] + msgs[i - 1]
    return msgs, disp


def profile_collective(
    name: str,
    *,
    n_pes: int = 8,
    nelems: int = 64,
    root: int = 0,
    op: str = "sum",
    dtype: str | np.dtype = "int64",
    algorithm: str | None = None,
    base_config: MachineConfig | None = None,
    chrome_path: object | None = None,
) -> CollectiveProfile:
    """Run one collective on a traced machine and return its metrics.

    The workhorse behind the observability layer's bench surface: builds
    an ``n_pes`` machine with tracing on, drives ``name`` once with a
    deterministic payload, and aggregates the recorded spans with
    :func:`repro.sim.metrics.collective_metrics`.  ``chrome_path``
    additionally dumps the Chrome-trace JSON (a path or file object).
    """
    from ..runtime.context import Machine, resolve_dtype

    if name not in _PROFILABLE:
        raise ValueError(
            f"unknown collective {name!r}; expected one of {_PROFILABLE}"
        )
    dt = resolve_dtype(dtype)
    base = base_config if base_config is not None else MachineConfig()
    machine = Machine(base.with_(n_pes=n_pes), trace=True)
    eb = dt.itemsize
    nbytes = max(nelems * eb, eb, 16)

    def body(ctx) -> None:
        ctx.init()
        dest = ctx.malloc(nbytes)
        src = ctx.malloc(nbytes)
        ctx.view(src, dt, nelems, 1)[:] = (
            np.arange(nelems, dtype=np.int64) % 7 + ctx.my_pe()
        ) if nelems else ()
        kw = {"algorithm": algorithm} if algorithm else {}
        if name == "broadcast":
            ctx.broadcast(dest, src, nelems, 1, root, dt, **kw)
        elif name == "reduce":
            ctx.reduce(dest, src, nelems, 1, root, op, dt, **kw)
        elif name == "allreduce":
            ctx.allreduce(dest, src, nelems, 1, op, dt, **kw)
        elif name == "scan":
            ctx.scan(dest, src, nelems, 1, op, dt)
        elif name == "alltoall":
            blk = max(nelems // ctx.num_pes(), 1) if nelems else 0
            big = ctx.malloc(max(blk * ctx.num_pes() * eb, 16))
            ctx.alltoall(big, src, blk, dt)
        else:  # scatter / gather / allgather
            msgs, disp = _even_split(nelems, ctx.num_pes())
            if name == "scatter":
                ctx.scatter(dest, src, msgs, disp, nelems, root, dt)
            elif name == "gather":
                ctx.gather(dest, src, msgs, disp, nelems, root, dt)
            else:
                ctx.allgather(dest, src, msgs, disp, nelems, dt)
        ctx.close()

    machine.run(body)
    chrome = None
    if chrome_path is not None:
        chrome = machine.write_chrome_trace(chrome_path)
    return CollectiveProfile(
        name=name,
        n_pes=n_pes,
        nelems=nelems,
        dtype=str(dt),
        metrics=machine.collective_metrics(),
        elapsed_ns=machine.elapsed_ns,
        chrome=chrome,
    )


def _by_pes(points: Sequence[SweepPoint]) -> dict[int, SweepPoint]:
    return {p.n_pes: p for p in points}


def check_figure4_shape(points: Sequence[SweepPoint]) -> list[str]:
    """Qualitative checks on a GUPs sweep; returns the violations."""
    p = _by_pes(points)
    bad: list[str] = []
    if not all(pt.verified for pt in points):
        bad.append("verification failed")
    if {1, 2, 4} <= p.keys():
        if not p[2].mops_total > 1.5 * p[1].mops_total:
            bad.append("total MOPS not ~linear 1->2 PEs")
        if not p[4].mops_total > 1.5 * p[2].mops_total:
            bad.append("total MOPS not ~linear 2->4 PEs")
        if not p[2].mops_per_pe >= p[1].mops_per_pe:
            bad.append("per-PE MOPS at 2 PEs below the 1-PE baseline")
        if not p[4].mops_per_pe >= p[1].mops_per_pe:
            bad.append("per-PE MOPS at 4 PEs below the 1-PE baseline")
        if not p[2].mops_per_pe >= p[4].mops_per_pe:
            bad.append("per-PE peak not at 2 PEs")
    if {4, 8} <= p.keys():
        if not p[8].mops_per_pe < p[4].mops_per_pe:
            bad.append("no per-PE drop at 8 PEs")
    return bad


def check_figure5_shape(points: Sequence[SweepPoint]) -> list[str]:
    """Qualitative checks on an IS sweep; returns the violations."""
    p = _by_pes(points)
    bad: list[str] = []
    if not all(pt.verified for pt in points):
        bad.append("verification failed")
    if {1, 2, 4} <= p.keys():
        if not p[2].mops_total > 1.4 * p[1].mops_total:
            bad.append("total MOPS not ~linear 1->2 PEs")
        if not p[4].mops_total > 1.4 * p[2].mops_total:
            bad.append("total MOPS not ~linear 2->4 PEs")
        # "The number of operations per PE also remains consistent."
        lo = 0.85 * p[1].mops_per_pe
        if p[2].mops_per_pe < lo or p[4].mops_per_pe < lo:
            bad.append("per-PE MOPS not consistent across 1-4 PEs")
    if {4, 8} <= p.keys():
        drop = 1.0 - p[8].mops_per_pe / p[4].mops_per_pe
        if drop < 0.10:
            bad.append(f"8-PE per-PE drop only {drop:.0%} (paper: ~25%)")
        if drop > 0.60:
            bad.append(f"8-PE per-PE drop {drop:.0%} is far beyond ~25%")
    return bad


def _print_points(title: str, points: Sequence[SweepPoint],
                  violations: Sequence[str]) -> None:
    print(title)
    print(f"  {'PEs':>4} {'MOPS total':>12} {'MOPS/PE':>10} "
          f"{'verified':>8} {'seed':>6} {'wall s':>8} {'sim ns/s':>10}")
    for pt in points:
        print(f"  {pt.n_pes:>4} {pt.mops_total:>12.3f} "
              f"{pt.mops_per_pe:>10.3f} {str(pt.verified):>8} {pt.seed:>6} "
              f"{pt.wall_seconds:>8.2f} {pt.sim_ns_per_wall_s:>10.3g}")
    if violations:
        for v in violations:
            print(f"  shape violation: {v}")
    else:
        print("  shape: OK")


def oversubscription_gate(pe_counts: Sequence[int],
                          oversubscribe: bool = False,
                          cpu_count: int | None = None) -> tuple[bool, str]:
    """Decide whether an mp wall-clock sweep over ``pe_counts`` is honest.

    A worker-per-PE backend oversubscribed onto fewer host cores
    measures scheduler contention, not parallel speedup, so the harness
    refuses to record such numbers unless the caller explicitly opts in
    with ``--oversubscribe``.  Returns ``(ok, message)``; when ``ok`` is
    False the message explains the refusal and the remedy.
    """
    cores = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
    widest = max(pe_counts) if pe_counts else 0
    if widest <= cores or oversubscribe:
        return True, ""
    return False, (
        f"refusing --backend mp: the widest sweep point needs {widest} "
        f"worker processes but this host has only {cores} core(s); "
        f"wall-clock 'speedup' would measure scheduler contention, not "
        f"the backend.  Re-run with --pes capped at {cores}, or pass "
        f"--oversubscribe to record the numbers anyway (they will be "
        f"flagged in the JSON report)."
    )


def add_traffic_args(parser) -> None:
    """Install the traffic-shape flags shared by the bench CLIs.

    ``--duration`` and ``--arrival-rate`` parameterise traffic-driven
    benchmarks (``repro.bench.serve_sweep``'s open-loop generator); the
    figure sweeps here accept them so one flag vocabulary drives every
    bench entry point, and record them — set or not — in the report
    JSON next to the seed, following the ``--oversubscribe``
    host-metadata pattern: a committed report always says what traffic
    shape produced it.
    """
    parser.add_argument("--duration", type=float, default=None,
                        help="traffic duration in seconds (open-loop "
                             "generators; recorded in the report JSON)")
    parser.add_argument("--arrival-rate", type=float, default=None,
                        help="mean job arrivals per second (Poisson "
                             "open-loop; recorded in the report JSON)")


def traffic_metadata(*, seed: int, duration: float | None = None,
                     arrival_rate: float | None = None) -> dict:
    """The ``traffic`` block of a report JSON (always carries the seed)."""
    return {
        "seed": seed,
        "duration_s": duration,
        "arrival_rate_per_s": arrival_rate,
    }


def bench_report(bench: str, backend: str,
                 points: Sequence[SweepPoint], *,
                 oversubscribed: bool | None = None,
                 traffic: dict | None = None) -> dict:
    """A JSON-serialisable record of one sweep, with host metadata.

    Wall-clock numbers are only interpretable next to the host they were
    measured on — a 1-core container cannot show parallel speedup no
    matter how good the backend is — so the record carries the CPU
    count, platform and Python version alongside the measurements, and
    (for mp sweeps) whether the host was oversubscribed: True means the
    widest point ran more workers than cores and the scaling headline
    must not be read as parallel speedup.  ``speedup_8v1`` (or the
    widest available ratio) is the scaling headline.
    """
    import platform
    import sys

    p = _by_pes(points)
    widest = max(p) if p else 0
    speedup = (p[widest].mops_total / p[min(p)].mops_total
               if len(p) >= 2 else None)
    return {
        "bench": bench,
        "backend": backend,
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": sys.version.split()[0],
            **({} if oversubscribed is None
               else {"oversubscribed": oversubscribed}),
        },
        **({} if traffic is None else {"traffic": traffic}),
        "points": [
            {
                "n_pes": pt.n_pes,
                "mops_total": pt.mops_total,
                "mops_per_pe": pt.mops_per_pe,
                "verified": pt.verified,
                "seed": pt.seed,
                "wall_seconds": pt.wall_seconds,
            }
            for pt in points
        ],
        "speedup_widest_vs_1": speedup,
        "widest_pes": widest,
    }


def main(argv: Sequence[str] | None = None) -> int:
    """``python -m repro.bench.harness`` — run the figure sweeps.

    ``--seed`` varies the benchmark workloads deterministically (and is
    recorded on every reported point); identical invocations produce
    identical results.  ``--backend mp`` reruns GUPs on the true-parallel
    multiprocessing backend (wall-clock rates, no figure-shape checks);
    ``--out`` writes the sweep as JSON (the ``BENCH_mp.json`` format).
    """
    import argparse
    import json

    parser = argparse.ArgumentParser(
        prog="repro.bench.harness",
        description="Regenerate the paper's Figure 4/5 sweeps.",
    )
    parser.add_argument("--bench", choices=("gups", "is", "both"),
                        default="both", help="which sweep(s) to run")
    parser.add_argument("--backend", choices=("sim", "mp"), default="sim",
                        help="execution backend (mp = wall-clock GUPs)")
    parser.add_argument("--seed", type=int, default=0,
                        help="workload seed (0 = the canonical streams)")
    parser.add_argument("--pes", type=int, nargs="+", default=list(PE_COUNTS),
                        help="PE counts to sweep (default: 1 2 4 8)")
    parser.add_argument("--gups-updates", type=int, default=None,
                        help="GUPs updates per PE (default: 2048)")
    parser.add_argument("--is-class", default=None,
                        help="NAS IS problem class (e.g. B-scaled)")
    parser.add_argument("--oversubscribe", action="store_true",
                        help="allow --backend mp with more PEs than host "
                             "cores (numbers are flagged in the JSON)")
    add_traffic_args(parser)
    parser.add_argument("--out", default=None,
                        help="write the sweep as JSON to this path")
    args = parser.parse_args(argv)
    traffic = traffic_metadata(seed=args.seed, duration=args.duration,
                               arrival_rate=args.arrival_rate)

    status = 0
    report = None
    if args.backend == "mp":
        # Wall-clock sweep: figure-shape checks are about the *simulated*
        # platform and do not apply to host throughput.
        ok, why = oversubscription_gate(args.pes, args.oversubscribe)
        if not ok:
            print(why)
            return 2
        if args.bench in ("is", "both"):
            print("note: --backend mp runs the GUPs sweep only")
        gp = GupsParams()
        if args.gups_updates is not None:
            gp = replace(gp, updates_per_pe=args.gups_updates)
        points = sweep_gups_backend(args.pes, gp, backend="mp",
                                    seed=args.seed)
        _print_points(f"GUPs on mp backend (wall-clock), seed={args.seed}",
                      points, [])
        status |= not all(pt.verified for pt in points)
        report = bench_report(
            "gups", "mp", points,
            oversubscribed=max(args.pes) > (os.cpu_count() or 1),
            traffic=traffic)
    else:
        if args.bench in ("gups", "both"):
            gp = GupsParams()
            if args.gups_updates is not None:
                gp = replace(gp, updates_per_pe=args.gups_updates)
            points = sweep_gups(args.pes, gp, seed=args.seed)
            bad = check_figure4_shape(points)
            _print_points(f"GUPs (Figure 4), seed={args.seed}", points, bad)
            status |= bool(bad)
            report = bench_report("gups", "sim", points,
                                  traffic=traffic)
        if args.bench in ("is", "both"):
            ip = IsParams()
            if args.is_class is not None:
                ip = replace(ip, problem_class=args.is_class)
            points = sweep_is(args.pes, ip, seed=args.seed)
            bad = check_figure5_shape(points)
            _print_points(f"NAS IS (Figure 5), seed={args.seed}", points, bad)
            status |= bool(bad)
    if args.out and report is not None:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out}")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
