"""NAS Integer Sort (IS) adapted from the NPB / ORNL OSB versions.

Bucket sort of ``N`` uniformly-bucketed keys drawn from NPB's Gaussian
approximation (the average of four ``randlc`` uniforms), ranked over
``max_iterations`` timed iterations.  The distributed algorithm follows
the NPB MPI/SHMEM structure:

1. each PE histograms its local keys into ``n_buckets`` buckets;
2. the global bucket counts are obtained with the *reduction* +
   *broadcast* collectives (the two operations the paper highlights IS
   exercising);
3. bucket ownership is split so every PE receives an equal share of
   keys, and the keys are redistributed with one-sided puts
   (all-to-all-v) after an exchange of send counts;
4. each PE sorts/ranks its received key range locally.

Per NPB, iteration ``i`` first mutates two keys (``key[i] = i`` and
``key[i + MAX_ITERATIONS] = max_key - i``) so every iteration ranks a
slightly different sequence; *partial verification* checks the computed
ranks of five tracked test keys each iteration against an oracle, and
*full verification* checks global sortedness at the end (boundary
exchange with the neighbour PE plus an error reduction).

Class sizes follow the NPB table with additional scaled classes sized
for a Python-process simulation; the default ``B-scaled`` keeps class
B's shape (total key volume ≫ one L2) at 1/8 the key count.  Reported
metric: ranked keys per second (Mop/s), total and per PE — Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import CollectiveArgumentError
from ..params import MachineConfig
from ..runtime.context import Machine, XBRTime

__all__ = ["IsParams", "IsResult", "CLASS_PARAMS", "run_is", "generate_keys"]

#: NPB problem classes: (log2 total keys, log2 max key).  The *-scaled
#: classes shrink the key count for simulation speed while keeping the
#: working-set-vs-cache relationship of the full class.
CLASS_PARAMS: dict[str, tuple[int, int]] = {
    "S": (16, 11),
    "W": (20, 16),
    "A": (23, 19),
    "B": (25, 21),
    "S-scaled": (14, 11),
    "A-scaled": (19, 16),
    "B-scaled": (22, 18),
}


@dataclass(frozen=True)
class IsParams:
    """Workload configuration (defaults: scaled class B, NPB's 10
    iterations and 2^10 buckets)."""

    problem_class: str = "B-scaled"
    max_iterations: int = 10
    log2_n_buckets: int = 10
    seed: float = 314159265.0

    @property
    def total_keys(self) -> int:
        return 1 << CLASS_PARAMS[self.problem_class][0]

    @property
    def max_key(self) -> int:
        return 1 << CLASS_PARAMS[self.problem_class][1]

    @property
    def n_buckets(self) -> int:
        return 1 << self.log2_n_buckets

    def __post_init__(self) -> None:
        if self.problem_class not in CLASS_PARAMS:
            raise CollectiveArgumentError(
                f"unknown IS class {self.problem_class!r}; expected one of "
                f"{sorted(CLASS_PARAMS)}"
            )


@dataclass(frozen=True)
class IsResult:
    """One IS run (one row of Figure 5)."""

    n_pes: int
    problem_class: str
    total_keys: int
    iterations: int
    sim_seconds: float
    partial_verified: bool
    full_verified: bool

    @property
    def mops_total(self) -> float:
        """Million keys ranked per second (NPB's Mop/s for IS)."""
        return self.iterations * self.total_keys / self.sim_seconds / 1e6

    @property
    def mops_per_pe(self) -> float:
        return self.mops_total / self.n_pes


# --- NPB pseudorandom key generation -----------------------------------------

#: NPB's randlc is the multiplicative LCG x' = a·x mod 2^46 with
#: a = 5^13; the reference implements it in double precision via 23-bit
#: halves.  The integer form below is the same recurrence exactly.
_LCG_A = 1220703125
_MASK23 = (1 << 23) - 1
_MASK46 = (1 << 46) - 1
_R46 = 2.0 ** -46


def _randlc_int(x: int) -> int:
    """One exact ``randlc`` step (x, result are 46-bit integers)."""
    return (x * _LCG_A) & _MASK46


def _lcg_block(x0: int, apow_lo: np.ndarray, apow_hi: np.ndarray) -> np.ndarray:
    """Vectorised jump: states ``x0·a^j mod 2^46`` for j = 1..len(apow).

    46×46-bit modular multiply in uint64 via 23-bit split halves (the
    high×high partial is ≡ 0 mod 2^46); every intermediate fits 2^47.
    """
    xl, xh = x0 & _MASK23, x0 >> 23
    cross = ((np.uint64(xh) * apow_lo + np.uint64(xl) * apow_hi)
             & np.uint64(_MASK23))
    return (np.uint64(xl) * apow_lo + (cross << np.uint64(23))) & np.uint64(_MASK46)


def generate_keys(params: IsParams) -> np.ndarray:
    """NPB ``create_seq``: keys = max_key/4 × (sum of 4 uniforms)."""
    n = params.total_keys
    k = params.max_key // 4
    total = 4 * n
    chunk = 1 << 14
    apow = np.empty(chunk, dtype=np.uint64)
    p = 1
    for j in range(chunk):
        p = _randlc_int(p)  # a^(j+1) mod 2^46
        apow[j] = p
    apow_lo = apow & np.uint64(_MASK23)
    apow_hi = apow >> np.uint64(23)
    states = np.empty(total, dtype=np.uint64)
    x = int(params.seed)
    for start in range(0, total, chunk):
        m = min(chunk, total - start)
        block = _lcg_block(x, apow_lo[:m], apow_hi[:m])
        states[start:start + m] = block
        x = int(block[-1])
    r = states.reshape(n, 4).astype(np.float64) * _R46
    return (k * r.sum(axis=1)).astype(np.int64)


# --- the distributed benchmark ------------------------------------------------

#: Cost charged per key for histogramming / ranking passes (cycles).
_CYCLES_PER_KEY = 4.0


def _is_pe(ctx: XBRTime, params: IsParams, my_keys: np.ndarray,
           test_keys: np.ndarray, test_ranks_by_iter: np.ndarray) -> dict:
    ctx.init()
    me, n = ctx.my_pe(), ctx.num_pes()
    n_keys = my_keys.size
    total_keys = params.total_keys
    max_key = params.max_key
    n_buckets = params.n_buckets
    shift = max(0, (max_key.bit_length() - 1) - params.log2_n_buckets)
    cyc = ctx.machine.config.cycle_ns

    # Working arrays in simulated memory.
    keys_addr = ctx.malloc(4 * n_keys)
    keys = ctx.view(keys_addr, "int32", n_keys)
    keys[:] = my_keys
    ctx.charge_stream(keys_addr, 4 * n_keys, write=True)

    hist_addr = ctx.malloc(8 * n_buckets)       # local bucket counts
    ghist_addr = ctx.malloc(8 * n_buckets)      # global bucket counts
    send_cnt_addr = ctx.malloc(8 * n)           # keys for each target PE
    recv_cnt_addr = ctx.malloc(8 * n)           # keys from each source PE
    # Receive buffer: the equal share plus slack for bucket-granularity
    # imbalance (a PE can exceed its share by at most the largest bucket,
    # which is ~2x the mean bucket for NPB's Gaussian keys).
    recv_cap = max(
        total_keys // n + total_keys // 32 + 4 * params.max_iterations, 64
    )
    recv_addr = ctx.malloc(4 * recv_cap)
    ready_addr = ctx.malloc(8 * n)              # per-source recv offsets

    hist = ctx.view(hist_addr, "uint64", n_buckets)
    ghist = ctx.view(ghist_addr, "uint64", n_buckets)
    send_cnt = ctx.view(send_cnt_addr, "uint64", n)
    recv_cnt = ctx.view(recv_cnt_addr, "uint64", n)
    recv = ctx.view(recv_addr, "int32", recv_cap)

    partial_ok = True
    base_index = me * n_keys  # global index of my first key

    ctx.barrier()
    t0 = ctx.time_ns
    for it in range(1, params.max_iterations + 1):
        # NPB iteration tweak: two keys change each iteration.
        if base_index <= it < base_index + n_keys:
            keys[it - base_index] = it
        j = it + params.max_iterations
        if base_index <= j < base_index + n_keys:
            keys[j - base_index] = max_key - it

        # 1. Local bucket histogram.
        counts = np.bincount(keys >> shift, minlength=n_buckets)
        hist[:] = counts.astype(np.uint64)
        ctx.charge_stream(keys_addr, 4 * n_keys)
        ctx.charge_stream(hist_addr, 8 * n_buckets, write=True)
        ctx.compute(n_keys * _CYCLES_PER_KEY * cyc)

        # 2. Global bucket counts: reduction + broadcast (the collectives
        #    the paper highlights for IS).
        ctx.uint64_reduce_sum(ghist_addr, hist_addr, n_buckets, 1, 0)
        ctx.uint64_broadcast(ghist_addr, ghist_addr, n_buckets, 1, 0)

        # 3. Split buckets across PEs by equal key share.
        cum = np.cumsum(ghist.astype(np.int64))
        share = cum[-1] / n
        # bucket b goes to PE floor(prefix(b)/share), clamped.
        owner_of_bucket = np.minimum(
            ((cum - 1) / share).astype(np.int64), n - 1
        )
        ctx.compute(n_buckets * 2 * cyc)
        bucket_first = np.searchsorted(owner_of_bucket, np.arange(n), "left")
        bucket_last = np.searchsorted(owner_of_bucket, np.arange(n), "right")

        # 4. Redistribute keys with one-sided puts (all-to-all-v).
        key_bucket = keys >> shift
        key_owner = owner_of_bucket[key_bucket]
        order = np.argsort(key_owner, kind="stable")
        sorted_keys = np.asarray(keys)[order]
        ctx.compute(n_keys * _CYCLES_PER_KEY * cyc)
        send_counts = np.bincount(key_owner, minlength=n).astype(np.uint64)
        send_cnt[:] = send_counts
        # Exchange counts so each PE knows its incoming layout.
        ctx.alltoall(recv_cnt_addr, send_cnt_addr, 1, "uint64")
        recv_offsets = np.concatenate(
            ([0], np.cumsum(recv_cnt.astype(np.int64))[:-1])
        )
        total_recv = int(recv_cnt.astype(np.int64).sum())
        if total_recv > recv_cap:
            raise CollectiveArgumentError(
                f"IS receive buffer overflow: {total_recv} > {recv_cap}"
            )
        # Publish my per-source offsets so senders know where to put.
        ready = ctx.view(ready_addr, "uint64", n)
        ready[:] = recv_offsets.astype(np.uint64)
        ctx.barrier()
        # Stage outgoing keys and deposit each block at the target's
        # published offset for this source.
        stage_addr = ctx.private_malloc(4 * max(n_keys, 1))
        stage = ctx.view(stage_addr, "int32", n_keys)
        stage[:] = sorted_keys
        ctx.charge_stream(stage_addr, 4 * n_keys, write=True)
        send_disp = np.concatenate(
            ([0], np.cumsum(send_counts.astype(np.int64))[:-1])
        )
        off_scratch = ctx.private_malloc(8)
        for step in range(n):
            target = (me + step) % n
            cnt = int(send_counts[target])
            if cnt == 0:
                continue
            # Fetch the target's published offset for source `me`.
            ctx.get(off_scratch, ready_addr + 8 * me, 1, 1, target, "uint64")
            dst_off = int(ctx.view(off_scratch, "uint64", 1)[0])
            ctx.put(recv_addr + 4 * dst_off,
                    stage_addr + 4 * int(send_disp[target]),
                    cnt, 1, target, "int32")
        ctx.private_free(off_scratch)
        ctx.private_free(stage_addr)
        ctx.barrier()

        # 5. Local ranking: sort the received key range.
        got = np.sort(recv[:total_recv])
        recv[:total_recv] = got
        ctx.charge_stream(recv_addr, 4 * total_recv, write=True)
        if total_recv:
            ctx.compute(total_recv * np.log2(max(total_recv, 2))
                        * _CYCLES_PER_KEY * cyc)

        # 6. Partial verification: the rank of each tracked test key,
        #    against the harness oracle for *this* iteration's key state.
        my_first_bucket = int(bucket_first[me])
        rank_before_me = int(cum[my_first_bucket - 1]) if my_first_bucket else 0
        for t in range(test_keys.size):
            tk = int(test_keys[t])
            if not 0 <= tk < max_key:
                continue
            if owner_of_bucket[tk >> shift] == me:
                rank = rank_before_me + int(np.searchsorted(got, tk, "left"))
                if rank != int(test_ranks_by_iter[it][t]):
                    partial_ok = False
    ctx.barrier()
    t1 = ctx.time_ns

    # Full verification: global sortedness across PE boundaries — put my
    # minimum to my left neighbour, then compare with my maximum.
    got_n = total_recv
    bmin_addr = ctx.malloc(8)
    neigh_addr = ctx.malloc(8)
    nv = ctx.view(neigh_addr, "int64", 1)
    nv[0] = np.iinfo(np.int64).max
    ctx.view(bmin_addr, "int64", 1)[0] = int(got[0]) if got_n else np.iinfo(np.int64).max
    ctx.barrier()
    if me > 0:
        ctx.put(neigh_addr, bmin_addr, 1, 1, me - 1, "int64")
    ctx.barrier()
    errors = 0
    if got_n:
        local_sorted = bool(np.all(got[:-1] <= got[1:]))
        if not local_sorted:
            errors += 1
        if me < n - 1 and got_n and int(got[-1]) > int(nv[0]):
            errors += 1
    ebuf = ctx.malloc(8)
    ctx.view(ebuf, "uint64", 1)[0] = errors
    eout = ctx.private_malloc(8)
    ctx.uint64_reduce_sum(eout, ebuf, 1, 1, 0)
    total_errors = int(ctx.view(eout, "uint64", 1)[0]) if me == 0 else -1
    ctx.close()
    return {
        "rank": me,
        "t_ns": t1 - t0,
        "partial_ok": partial_ok,
        "errors": total_errors,
    }


def _oracle_ranks(keys: np.ndarray, test_keys: np.ndarray,
                  params: IsParams) -> np.ndarray:
    """Per-iteration oracle ranks of the test keys.

    Row ``it`` holds each test key's rank (count of strictly smaller
    keys) after the mutations of iterations ``1..it`` — NPB's partial
    verification uses class-specific precomputed tables; scaled classes
    need the oracle recomputed, so we compute it for all classes.
    """
    work = keys.copy()
    out = np.zeros((params.max_iterations + 1, test_keys.size), dtype=np.int64)
    for it in range(1, params.max_iterations + 1):
        work[it] = it
        work[it + params.max_iterations] = params.max_key - it
        s = np.sort(work)
        out[it] = np.searchsorted(s, test_keys, "left")
    return out


def run_is(config: MachineConfig, params: IsParams | None = None,
           keys: np.ndarray | None = None) -> IsResult:
    """Run NAS IS on a fresh machine built from ``config``.

    ``keys`` may be supplied to reuse one generated sequence across a
    PE-count sweep (generation is untimed but slow in pure Python).
    """
    params = params if params is not None else IsParams()
    if keys is None:
        keys = generate_keys(params)
    if keys.size != params.total_keys:
        raise CollectiveArgumentError(
            f"key array has {keys.size} keys, class needs {params.total_keys}"
        )
    n = config.n_pes
    if params.total_keys % n:
        raise CollectiveArgumentError(
            f"total keys {params.total_keys} not divisible by {n} PEs"
        )
    chunk = params.total_keys // n
    rng = np.random.default_rng(5)
    test_keys = rng.integers(params.max_key // 8, 7 * params.max_key // 8,
                             size=5, dtype=np.int64)
    test_ranks = _oracle_ranks(keys, test_keys, params)
    args = [
        (params, keys[r * chunk:(r + 1) * chunk], test_keys, test_ranks)
        for r in range(n)
    ]
    machine = Machine(config)
    results = machine.run(_is_pe, args)
    t_ns = max(r["t_ns"] for r in results)
    return IsResult(
        n_pes=n,
        problem_class=params.problem_class,
        total_keys=params.total_keys,
        iterations=params.max_iterations,
        sim_seconds=t_ns / 1e9,
        partial_verified=all(r["partial_ok"] for r in results),
        full_verified=(results[0]["errors"] == 0),
    )
