"""Benchmark workloads and the figure/table regeneration harness.

The paper evaluates its collective library with the NAS Integer Sort and
GUPs benchmarks adapted from Oak Ridge's OpenSHMEM benchmark suite
(section 5.2), both of which exercise the reduction and broadcast
collectives.  :mod:`~repro.bench.gups` and :mod:`~repro.bench.nas_is`
are faithful ports; :mod:`~repro.bench.harness` sweeps them over PE
counts and :mod:`~repro.bench.reporting` prints the same rows Figures
4-5 plot (operations per second, total and per PE).
"""

from .gups import GupsParams, GupsResult, run_gups
from .nas_is import IsParams, IsResult, run_is, CLASS_PARAMS
from .harness import sweep_gups, sweep_is, SweepPoint
from .micro import (
    MicroResult,
    put_latency,
    get_latency,
    put_bandwidth,
    message_rate,
)
from . import reporting

__all__ = [
    "GupsParams",
    "GupsResult",
    "run_gups",
    "IsParams",
    "IsResult",
    "run_is",
    "CLASS_PARAMS",
    "sweep_gups",
    "sweep_is",
    "SweepPoint",
    "MicroResult",
    "put_latency",
    "get_latency",
    "put_bandwidth",
    "message_rate",
    "reporting",
]
