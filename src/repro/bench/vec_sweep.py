"""Large-PE algorithm-crossover sweeps on the vec evaluator.

The A1 ablation (``benchmarks/bench_ablation_algorithms.py``) measures
the algorithm crossovers the tuning layer encodes, but the cooperative
simulator tops out around tens of PEs per point.  This module re-runs
the same sweeps through
:func:`~repro.collectives.schedule.evaluate.evaluate_schedule` —
cost-only, no data arena — so the curves extend to 64–4096 PEs in
seconds, and records at every point which algorithm
:func:`~repro.collectives.tuning.select_algorithm` would have picked.

The committed ``BENCH_vec.json`` is the reference copy of these curves
(regenerate with ``python -m repro.bench.vec_sweep --out BENCH_vec.json``).

Two families are deliberately capped: ring schedules (broadcast and
allreduce) and the linear scheme emit Θ(N²) / Θ(N) *root-serialised*
step objects, so the sweep stops them at ``RING_MAX_PES`` /
``LINEAR_MAX_PES`` rather than spending minutes compiling schedules the
tuning layer would never select at those sizes.  The caps are recorded
in the JSON so a reader never mistakes a missing point for a
measurement.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from ..collectives.allreduce import compile_allreduce
from ..collectives.broadcast import compile_broadcast
from ..collectives.schedule.evaluate import evaluate_schedule
from ..collectives.tuning import select_algorithm
from ..params import MachineConfig

__all__ = [
    "PE_COUNTS",
    "SIZES",
    "RING_MAX_PES",
    "LINEAR_MAX_PES",
    "sweep_point",
    "crossover_sweep",
    "main",
]

#: PE counts of the large-PE tier (the simulator's A1 sweep covers 6–8).
PE_COUNTS = (64, 256, 1024, 4096)

#: Payload sizes in elements (int64, so ×8 for bytes).
SIZES = (8, 512, 4096, 65536)

#: Ring schedules are Θ(N²) total steps; past this the compile cost
#: dwarfs anything the curve could teach (tuning never picks ring at
#: these PE counts for the capped sizes anyway).
RING_MAX_PES = 512

#: The linear scheme serialises N-1 root sends; one tier further.
LINEAR_MAX_PES = 1024

_ALGOS = {
    "broadcast": ("binomial", "linear", "ring"),
    "allreduce": ("doubling", "rabenseifner", "ring"),
}

_ITEMSIZE = 8


def _sweep_config(n_pes: int) -> MachineConfig:
    """One PE per node, matching the A1 ablation topology."""
    return MachineConfig(n_pes=n_pes, cores_per_node=1)


def _compile(collective: str, algorithm: str, n_pes: int, nelems: int):
    if collective == "broadcast":
        return compile_broadcast(n_pes, 0, nelems, 1, _ITEMSIZE,
                                 algorithm=algorithm)
    return compile_allreduce(n_pes, nelems, 1, _ITEMSIZE, "sum",
                             algorithm=algorithm)


def _capped(algorithm: str, n_pes: int) -> bool:
    if algorithm == "ring" and n_pes > RING_MAX_PES:
        return True
    if algorithm == "linear" and n_pes > LINEAR_MAX_PES:
        return True
    return False


def sweep_point(collective: str, n_pes: int, nelems: int) -> dict:
    """Makespans of every (uncapped) algorithm at one sweep point."""
    makespans: dict[str, float] = {}
    wall: dict[str, float] = {}
    cfg = _sweep_config(n_pes)
    for algorithm in _ALGOS[collective]:
        if _capped(algorithm, n_pes):
            continue
        t0 = time.perf_counter()
        sched = _compile(collective, algorithm, n_pes, nelems)
        ev = evaluate_schedule(sched, cfg, dtype=np.dtype(np.int64),
                               collect_data=False)
        wall[algorithm] = round(time.perf_counter() - t0, 3)
        makespans[algorithm] = ev.elapsed_ns
    winner = min(makespans, key=makespans.get)
    pick = select_algorithm(collective, nelems * _ITEMSIZE, n_pes)
    return {
        "collective": collective,
        "n_pes": n_pes,
        "nelems": nelems,
        "nbytes": nelems * _ITEMSIZE,
        "makespans_ns": makespans,
        "winner": winner,
        "tuning_pick": pick,
        "tuning_pick_measured": pick in makespans,
        "tuning_within_1p25x": (
            makespans[pick] <= 1.25 * makespans[winner]
            if pick in makespans else None
        ),
        "wall_seconds": wall,
    }


def crossover_sweep(pe_counts: Sequence[int] = PE_COUNTS,
                    sizes: Sequence[int] = SIZES) -> dict:
    """The full curve set, as the ``BENCH_vec.json`` document."""
    import platform
    import sys

    points = [
        sweep_point(collective, n, nelems)
        for collective in ("broadcast", "allreduce")
        for n in pe_counts
        for nelems in sizes
    ]
    judged = [p for p in points if p["tuning_within_1p25x"] is not None]
    agreement = (
        sum(p["tuning_within_1p25x"] for p in judged) / len(judged)
        if judged else None
    )
    return {
        "bench": "vec-crossover",
        "backend": "vec",
        "host": {
            "platform": platform.platform(),
            "python": sys.version.split()[0],
        },
        "config": {
            "cores_per_node": 1,
            "topology": "fully-connected",
            "itemsize": _ITEMSIZE,
            "dtype": "int64",
        },
        "caps": {
            "ring_max_pes": RING_MAX_PES,
            "linear_max_pes": LINEAR_MAX_PES,
            "note": "ring/linear schedules are Θ(N²)/Θ(N) root-serialised "
                    "steps; points past the caps are omitted, not slow",
        },
        "pe_counts": list(pe_counts),
        "sizes": list(sizes),
        "points": points,
        "tuning_within_1p25x_fraction": agreement,
    }


def _print_curves(doc: dict) -> None:
    for collective in ("broadcast", "allreduce"):
        algos = _ALGOS[collective]
        print(f"\n{collective}: makespan (ns) by algorithm "
              f"(vec evaluator, 1 PE/node)")
        print(f"{'pes':>6} {'elems':>7} " +
              " ".join(f"{a:>13}" for a in algos) + "  winner / tuning")
        for p in doc["points"]:
            if p["collective"] != collective:
                continue
            cells = " ".join(
                f"{p['makespans_ns'][a]:>13.0f}"
                if a in p["makespans_ns"] else f"{'—':>13}"
                for a in algos
            )
            print(f"{p['n_pes']:>6} {p['nelems']:>7} {cells}"
                  f"  {p['winner']} / {p['tuning_pick']}")
    frac = doc["tuning_within_1p25x_fraction"]
    if frac is not None:
        print(f"\ntuning pick within 1.25x of the measured best at "
              f"{frac:.0%} of judged points")


def main(argv: Sequence[str] | None = None) -> int:
    """``python -m repro.bench.vec_sweep`` — regenerate the curves."""
    import argparse
    import json

    parser = argparse.ArgumentParser(
        prog="repro.bench.vec_sweep",
        description="Large-PE algorithm-crossover curves on the vec "
                    "evaluator (the BENCH_vec.json format).",
    )
    parser.add_argument("--pes", type=int, nargs="+",
                        default=list(PE_COUNTS),
                        help="PE counts to sweep (default: 64 256 1024 4096)")
    parser.add_argument("--sizes", type=int, nargs="+", default=list(SIZES),
                        help="payload sizes in int64 elements")
    parser.add_argument("--out", default=None,
                        help="write the sweep as JSON to this path")
    args = parser.parse_args(argv)

    doc = crossover_sweep(args.pes, args.sizes)
    _print_curves(doc)
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
