"""Pipelined-allreduce sweep: dual-root trees vs ring vs Rabenseifner.

PR 8's acceptance bar — the doubly-pipelined dual-root allreduce must
beat the ring by >= 1.3x makespan at >= 64 KiB payloads on >= 16 PEs —
lives here as a measured artifact rather than a claim.  The sweep runs
the three large-payload allreduce algorithms through
:func:`~repro.collectives.schedule.evaluate.evaluate_schedule` (cost
only, no data arena) from 16 to 4096 PEs, records the ring/dual and
rabenseifner/dual makespan ratios at every point, and notes which
algorithm :func:`~repro.collectives.tuning.select_algorithm` would
have picked so the three-way selection rule (ring small, dual-pipelined
mid-band off power-of-two, Rabenseifner large) stays measured.

The committed ``BENCH_pipeline.json`` is the reference copy
(regenerate with ``python -m repro.bench.pipeline_sweep --out
BENCH_pipeline.json``).  CI's perf-smoke job runs ``--check
BENCH_pipeline.json``, which validates the committed document's shape,
confirms the acceptance point is present, and re-measures one fresh
point to catch cost-model drift the committed file can't.

Like :mod:`repro.bench.vec_sweep`, ring schedules are capped at
``RING_MAX_PES`` — they emit Θ(N²) step objects and the tuning layer
never selects ring at those sizes — and the cap is recorded in the
JSON so a missing point is never mistaken for a measurement.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..collectives.allreduce import auto_segments, compile_allreduce
from ..collectives.schedule.evaluate import evaluate_schedule
from ..collectives.tuning import select_algorithm
from ..params import MachineConfig

__all__ = [
    "PE_COUNTS",
    "SIZES",
    "RING_MAX_PES",
    "ACCEPT_MIN_PES",
    "ACCEPT_MIN_BYTES",
    "ACCEPT_RATIO",
    "sweep_point",
    "pipeline_sweep",
    "check_document",
    "main",
]

#: PE counts: the acceptance tier (16+), the dual-pipelined selection
#: band (33-63 off power-of-two) and the large-PE tier where
#: Rabenseifner takes over.
PE_COUNTS = (16, 24, 33, 48, 64, 100, 256, 1024, 4096)

#: Payload sizes in int64 elements: 64 KiB, 256 KiB and 1 MiB.
SIZES = (8192, 32768, 131072)

#: Ring allreduce emits Θ(N²) steps; see the module docstring.
RING_MAX_PES = 512

#: The PR 8 acceptance bar: dual-pipelined beats ring by >= 1.3x
#: makespan at >= 64 KiB on >= 16 PEs.
ACCEPT_MIN_PES = 16
ACCEPT_MIN_BYTES = 64 * 1024
ACCEPT_RATIO = 1.3

_ALGOS = ("ring", "rabenseifner", "dual-pipelined")
_ITEMSIZE = 8


def _sweep_config(n_pes: int) -> MachineConfig:
    """One PE per node, matching the A1 ablation and the vec sweep."""
    return MachineConfig(n_pes=n_pes, cores_per_node=1)


def sweep_point(n_pes: int, nelems: int) -> dict:
    """Makespans and ratios of the three algorithms at one point."""
    cfg = _sweep_config(n_pes)
    nbytes = nelems * _ITEMSIZE
    makespans: dict[str, float] = {}
    for algorithm in _ALGOS:
        if algorithm == "ring" and n_pes > RING_MAX_PES:
            continue
        sched = compile_allreduce(n_pes, nelems, 1, _ITEMSIZE, "sum",
                                  algorithm=algorithm)
        ev = evaluate_schedule(sched, cfg, dtype=np.dtype(np.int64),
                               collect_data=False)
        makespans[algorithm] = ev.elapsed_ns
    dual = makespans["dual-pipelined"]
    winner = min(makespans, key=makespans.get)
    pick = select_algorithm("allreduce", nbytes, n_pes)
    return {
        "n_pes": n_pes,
        "nelems": nelems,
        "nbytes": nbytes,
        "segments": auto_segments(nbytes),
        "makespans_ns": makespans,
        "ring_over_dual": (
            round(makespans["ring"] / dual, 3) if "ring" in makespans
            else None
        ),
        "rabenseifner_over_dual": round(
            makespans["rabenseifner"] / dual, 3),
        "winner": winner,
        "tuning_pick": pick,
        "tuning_pick_measured": pick in makespans,
        "tuning_within_1p25x": (
            makespans[pick] <= 1.25 * makespans[winner]
            if pick in makespans else None
        ),
    }


def pipeline_sweep(pe_counts: Sequence[int] = PE_COUNTS,
                   sizes: Sequence[int] = SIZES) -> dict:
    """The full sweep, as the ``BENCH_pipeline.json`` document."""
    import platform
    import sys

    points = [sweep_point(n, nelems)
              for n in pe_counts for nelems in sizes]
    judged = [p for p in points if p["tuning_within_1p25x"] is not None]
    agreement = (
        sum(p["tuning_within_1p25x"] for p in judged) / len(judged)
        if judged else None
    )
    return {
        "bench": "pipeline-allreduce",
        "backend": "vec",
        "host": {
            "platform": platform.platform(),
            "python": sys.version.split()[0],
        },
        "config": {
            "cores_per_node": 1,
            "topology": "fully-connected",
            "itemsize": _ITEMSIZE,
            "dtype": "int64",
        },
        "acceptance": {
            "min_pes": ACCEPT_MIN_PES,
            "min_bytes": ACCEPT_MIN_BYTES,
            "ring_over_dual_min": ACCEPT_RATIO,
        },
        "caps": {
            "ring_max_pes": RING_MAX_PES,
            "note": "ring allreduce is Θ(N²) root-serialised steps; "
                    "points past the cap are omitted, not slow",
        },
        "pe_counts": list(pe_counts),
        "sizes": list(sizes),
        "points": points,
        "tuning_within_1p25x_fraction": agreement,
    }


def _acceptance_points(doc: dict) -> list[dict]:
    """Points that satisfy the PR 8 acceptance bar."""
    return [
        p for p in doc.get("points", ())
        if p["n_pes"] >= ACCEPT_MIN_PES
        and p["nbytes"] >= ACCEPT_MIN_BYTES
        and p["ring_over_dual"] is not None
        and p["ring_over_dual"] >= ACCEPT_RATIO
    ]


def check_document(doc: dict, *, fresh_point: bool = True) -> list[str]:
    """Validate a ``BENCH_pipeline.json`` document; returns problems.

    Shape checks come first (cheap, catch truncated or hand-edited
    files), then the acceptance bar over the committed points, then —
    unless ``fresh_point=False`` — one re-measured point so the gate
    tracks the live cost model, not just the committed numbers.
    """
    problems: list[str] = []
    if doc.get("bench") != "pipeline-allreduce":
        problems.append(f"bench key is {doc.get('bench')!r}, expected "
                        "'pipeline-allreduce'")
    points = doc.get("points")
    if not isinstance(points, list) or not points:
        problems.append("document has no sweep points")
        return problems
    required = {"n_pes", "nelems", "nbytes", "segments", "makespans_ns",
                "ring_over_dual", "rabenseifner_over_dual", "winner",
                "tuning_pick"}
    for i, p in enumerate(points):
        missing = required - set(p)
        if missing:
            problems.append(f"point {i} missing keys: {sorted(missing)}")
            return problems

    if not _acceptance_points(doc):
        problems.append(
            f"no committed point with >= {ACCEPT_MIN_PES} PEs, >= "
            f"{ACCEPT_MIN_BYTES} bytes and ring/dual >= {ACCEPT_RATIO}")

    # Tuning honesty, two tiers.  Strict: wherever tuning picks
    # dual-pipelined it must be within 1.25x of that point's measured
    # best — the new algorithm is only selected where measured
    # competitive.  Loose: across all judged points the pick stays
    # within 1.25x of the best at >= 90% (payload-dependent crossovers
    # the byte-count-free policy cannot see account for the slack).
    for p in points:
        if (p["tuning_pick"] == "dual-pipelined"
                and p.get("tuning_within_1p25x") is False):
            problems.append(
                f"tuning picked dual-pipelined at ({p['n_pes']} PEs, "
                f"{p['nbytes']} B) but it is over 1.25x the winner "
                f"({p['winner']})")
    frac = doc.get("tuning_within_1p25x_fraction")
    if frac is not None and frac < 0.9:
        problems.append(
            f"tuning pick within 1.25x of best at only {frac:.0%} of "
            "judged points (floor: 90%)")

    if fresh_point:
        fresh = sweep_point(64, 8192)  # 64 PEs x 64 KiB: mid-sweep
        if fresh["ring_over_dual"] < ACCEPT_RATIO:
            problems.append(
                "fresh measurement at 64 PEs x 64 KiB: ring/dual = "
                f"{fresh['ring_over_dual']} < {ACCEPT_RATIO} — the live "
                "cost model no longer meets the acceptance bar")
    return problems


def _print_sweep(doc: dict) -> None:
    print("pipelined allreduce: makespan (ns) by algorithm "
          "(vec evaluator, 1 PE/node)")
    print(f"{'pes':>5} {'KiB':>5} {'segs':>4} "
          f"{'ring':>13} {'rabenseifner':>13} {'dual-pipe':>13} "
          f"{'ring/dual':>9}  winner / tuning")
    for p in doc["points"]:
        m = p["makespans_ns"]
        ring = f"{m['ring']:>13.0f}" if "ring" in m else f"{'—':>13}"
        ratio = (f"{p['ring_over_dual']:>9.2f}"
                 if p["ring_over_dual"] is not None else f"{'—':>9}")
        print(f"{p['n_pes']:>5} {p['nbytes'] // 1024:>5} "
              f"{p['segments']:>4} {ring} "
              f"{m['rabenseifner']:>13.0f} {m['dual-pipelined']:>13.0f} "
              f"{ratio}  {p['winner']} / {p['tuning_pick']}")
    frac = doc["tuning_within_1p25x_fraction"]
    if frac is not None:
        print(f"\ntuning pick within 1.25x of the measured best at "
              f"{frac:.0%} of judged points")
    n_ok = len(_acceptance_points(doc))
    print(f"acceptance (ring/dual >= {ACCEPT_RATIO} at >= "
          f"{ACCEPT_MIN_PES} PEs, >= {ACCEPT_MIN_BYTES // 1024} KiB): "
          f"{n_ok} qualifying points")


def main(argv: Sequence[str] | None = None) -> int:
    """``python -m repro.bench.pipeline_sweep`` — sweep or check."""
    import argparse
    import json

    parser = argparse.ArgumentParser(
        prog="repro.bench.pipeline_sweep",
        description="Pipelined-allreduce crossover sweep on the vec "
                    "evaluator (the BENCH_pipeline.json format).",
    )
    parser.add_argument("--pes", type=int, nargs="+",
                        default=list(PE_COUNTS),
                        help="PE counts to sweep")
    parser.add_argument("--sizes", type=int, nargs="+", default=list(SIZES),
                        help="payload sizes in int64 elements")
    parser.add_argument("--out", default=None,
                        help="write the sweep as JSON to this path")
    parser.add_argument("--check", metavar="JSON", default=None,
                        help="validate a committed BENCH_pipeline.json "
                             "instead of sweeping")
    args = parser.parse_args(argv)

    if args.check:
        with open(args.check) as fh:
            doc = json.load(fh)
        problems = check_document(doc)
        if problems:
            for problem in problems:
                print(f"FAIL: {problem}")
            return 1
        n_ok = len(_acceptance_points(doc))
        print(f"{args.check}: ok — {len(doc['points'])} points, "
              f"{n_ok} meet the >= {ACCEPT_RATIO}x ring/dual bar, "
              "fresh 64-PE point still passes")
        return 0

    doc = pipeline_sweep(args.pes, args.sizes)
    _print_sweep(doc)
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
