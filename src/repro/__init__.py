"""repro — reproduction of "Collective Communication for the RISC-V
xBGAS ISA Extension" (Williams, Wang, Leidel, Chen — ICPP 2019).

The package simulates the paper's full stack in Python:

* :mod:`repro.isa` — a functional RV64I + xBGAS instruction-set
  simulator (extended registers, remote load/store, OLB);
* :mod:`repro.machine` — the evaluation platform's timing model
  (256-entry TLB, 8-way 16 KB L1 / 8 MB L2, interconnect);
* :mod:`repro.sim` — a deterministic PDES engine running one thread
  per PE;
* :mod:`repro.runtime` — the xbrtime PGAS runtime (symmetric heap,
  typed one-sided get/put, barrier);
* :mod:`repro.collectives` — the paper's binomial-tree broadcast,
  reduction, scatter and gather, plus the future-work extensions;
* :mod:`repro.baselines` — OpenSHMEM-style and MPI-style comparators;
* :mod:`repro.bench` — the GUPs and NAS Integer Sort workloads and the
  harness regenerating every table and figure.

Quickstart::

    from repro import Machine, MachineConfig

    def main(ctx):
        ctx.init()
        buf = ctx.malloc(8)
        v = ctx.view(buf, "long", 1)
        if ctx.my_pe() == 0:
            v[0] = 42
        ctx.long_broadcast(buf, buf, 1, 1, 0)
        assert v[0] == 42
        ctx.close()

    Machine(MachineConfig(n_pes=4)).run(main)
"""

from .params import (
    MachineConfig,
    MemoryParams,
    CacheParams,
    TlbParams,
    TransportParams,
    paper_machine,
    xbgas_transport,
    rdma_transport,
    mpi_transport,
)
from .runtime import Machine, XBRTime
from .types import TYPE_TABLE, TYPENAMES, typeinfo, dtype_of
from .errors import XbgasError

__version__ = "0.1.0"

__all__ = [
    "Machine",
    "XBRTime",
    "MachineConfig",
    "MemoryParams",
    "CacheParams",
    "TlbParams",
    "TransportParams",
    "paper_machine",
    "xbgas_transport",
    "rdma_transport",
    "mpi_transport",
    "TYPE_TABLE",
    "TYPENAMES",
    "typeinfo",
    "dtype_of",
    "XbgasError",
    "__version__",
]
