"""Two-sided point-to-point messaging (the MPI-class baseline substrate).

Unlike xBGAS one-sided put/get, a two-sided transfer involves both CPUs:
the sender stages the payload into a message, the network (configured
with a two-sided transport, e.g. ``mpi_transport()``) charges handshake/
kernel/copy overheads, and the receiver must post a matching ``recv``
before the data lands in its buffer.  Receives block (in simulated time)
until a matching message exists.

Matching is by (source, tag) FIFO order, like MPI with a communicator.
Wildcards (``ANY_SOURCE``/``ANY_TAG``) are supported for completeness.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..errors import CollectiveArgumentError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.context import XBRTime, Machine

__all__ = ["ANY_SOURCE", "ANY_TAG", "MessageLayer", "attach_message_layer"]

ANY_SOURCE = -1
ANY_TAG = -1


@dataclass
class _Message:
    src: int
    tag: int
    data: np.ndarray
    deliver_at: float


class MessageLayer:
    """Shared mailbox state for one machine."""

    def __init__(self, machine: "Machine"):
        self.machine = machine
        #: dst rank -> FIFO of undelivered messages
        self._mailbox: dict[int, deque[_Message]] = {
            r: deque() for r in range(machine.config.n_pes)
        }
        #: dst rank -> (src, tag) the rank is blocked waiting for
        self._waiting: dict[int, tuple[int, int]] = {}

    # -- send ------------------------------------------------------------------

    def send(self, ctx: "XBRTime", dst: int, addr: int, nelems: int,
             dtype: np.dtype, tag: int = 0) -> None:
        """Two-sided send of ``nelems`` elements at local ``addr``."""
        machine = self.machine
        if not 0 <= dst < machine.config.n_pes:
            raise CollectiveArgumentError(f"send to invalid rank {dst}")
        machine.engine.checkpoint()
        pe = ctx.pe
        eb = np.dtype(dtype).itemsize
        nbytes = nelems * eb
        # Sender-side staging copy out of the user buffer.
        pe.advance(machine.hierarchy_of(ctx.rank).access_range(addr, nbytes))
        data = np.array(ctx.view(addr, dtype, max(nelems, 0)), copy=True)
        # The two-sided baseline models MPI over a reliable transport:
        # exempt from raw message-fault injection.
        res = machine.network.send(pe.clock, ctx.rank, dst, nbytes,
                                   faultable=False)
        pe.advance_to(res.t_source_free)
        msg = _Message(src=ctx.rank, tag=tag, data=data,
                       deliver_at=res.t_delivered)
        self._mailbox[dst].append(msg)
        machine.stats.puts += 1
        machine.stats.bytes_put += nbytes
        if dst != ctx.rank:
            machine.stats.remote_puts += 1
        # Wake the receiver if it is blocked on this message.
        want = self._waiting.get(dst)
        if want is not None and self._match(msg, *want):
            del self._waiting[dst]
            machine.engine.resume(dst, at_time=msg.deliver_at)

    @staticmethod
    def _match(msg: _Message, src: int, tag: int) -> bool:
        return (src in (ANY_SOURCE, msg.src)) and (tag in (ANY_TAG, msg.tag))

    def _take(self, rank: int, src: int, tag: int) -> _Message | None:
        box = self._mailbox[rank]
        for i, msg in enumerate(box):
            if self._match(msg, src, tag):
                del box[i]
                return msg
        return None

    # -- recv ----------------------------------------------------------------

    def recv(self, ctx: "XBRTime", src: int, addr: int, nelems: int,
             dtype: np.dtype, tag: int = 0) -> int:
        """Blocking receive into local ``addr``; returns the source rank."""
        machine = self.machine
        engine = machine.engine
        engine.checkpoint()
        pe = ctx.pe
        msg = self._take(ctx.rank, src, tag)
        while msg is None:
            # Block until a sender wakes us, then re-scan the mailbox
            # (the sender may have matched a wildcard differently).
            self._waiting[ctx.rank] = (src, tag)
            engine.suspend()
            msg = self._take(ctx.rank, src, tag)
        pe.advance_to(msg.deliver_at)
        tp = machine.config.transport
        pe.advance(tp.o_recv)
        eb = np.dtype(dtype).itemsize
        nbytes = nelems * eb
        if msg.data.size != nelems or msg.data.dtype != np.dtype(dtype):
            raise CollectiveArgumentError(
                f"recv type/count mismatch: posted {nelems}x{np.dtype(dtype)}"
                f", got {msg.data.size}x{msg.data.dtype}"
            )
        # Receiver-side copy from staging into the user buffer.
        pe.advance(machine.hierarchy_of(ctx.rank).access_range(
            addr, nbytes, write=True))
        machine.stats.gets += 1
        machine.stats.bytes_got += nbytes
        if nelems:
            ctx.view(addr, dtype, nelems)[:] = msg.data
        return msg.src

    def sendrecv(self, ctx: "XBRTime", dst: int, send_addr: int,
                 src: int, recv_addr: int, nelems: int, dtype: np.dtype,
                 tag: int = 0) -> None:
        """Combined send+recv (avoids the head-to-head deadlock)."""
        self.send(ctx, dst, send_addr, nelems, dtype, tag)
        self.recv(ctx, src, recv_addr, nelems, dtype, tag)


def attach_message_layer(machine: "Machine") -> MessageLayer:
    """Get-or-create the machine's shared :class:`MessageLayer`."""
    layer = getattr(machine, "_message_layer", None)
    if layer is None:
        layer = MessageLayer(machine)
        machine._message_layer = layer
    return layer
