"""Baseline communication stacks the paper compares against.

Section 3.1 argues xBGAS one-sided remote load/store beats both MPI-class
two-sided messaging (socket setup, handshaking, kernel crossings, staging
copies) and RDMA-class libraries (expensive per-operation calls);
section 4.7 compares the collective API surface against OpenSHMEM.

* :mod:`~repro.baselines.p2p` — a two-sided send/recv message layer
  (eager + rendezvous) over the same network model.
* :mod:`~repro.baselines.mpi` — MPI-style collectives built on p2p
  (binomial bcast/reduce, recursive-doubling allreduce, scatterv/
  gatherv), intended to run with ``MachineConfig.with_transport("mpi")``.
* :mod:`~repro.baselines.shmem` — an OpenSHMEM-1.4-style API surface
  (size-suffixed calls, ``*_to_all`` reductions, collect/fcollect,
  active-set addressing) for the section 4.7 comparison.
"""

from .p2p import MessageLayer, attach_message_layer
from . import mpi, shmem

__all__ = ["MessageLayer", "attach_message_layer", "mpi", "shmem"]
