"""An OpenSHMEM-1.4-style collective API surface (paper section 4.7).

The paper contrasts its explicit per-type calls against OpenSHMEM's
conventions; this module provides the OpenSHMEM side of that comparison
with faithful semantic differences:

* calls are distinguished by *element size* (``shmem_broadcast32`` /
  ``shmem_broadcast64``) rather than by type name;
* ``shmem_broadcast`` does **not** update ``dest`` on the root PE;
* reductions are ``*_to_all``: every PE of the active set receives the
  result (``shmem_long_sum_to_all`` etc.);
* ``collect``/``fcollect`` concatenate contributions on *all* PEs;
* collectives address PE subsets with the (``PE_start``,
  ``logPE_stride``, ``PE_size``) active-set triple;
* broadcast/reduce have **no stride argument**, and there is **no
  scatter** — exactly the versatility gaps section 4.7 claims for the
  xBGAS library.

The ``pSync``/``pWrk`` work-array arguments of the real API are accepted
for signature fidelity but unused (the runtime's symmetric scratch plays
their role).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..collectives import broadcast as _broadcast
from ..collectives import extra as _extra
from ..errors import CollectiveArgumentError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.context import XBRTime

__all__ = ["ShmemAPI", "active_set"]

#: Types the OpenSHMEM 1.4 reduction interface names explicitly.
_REDUCTION_TYPES: dict[str, np.dtype] = {
    "short": np.dtype(np.int16),
    "int": np.dtype(np.int32),
    "long": np.dtype(np.int64),
    "longlong": np.dtype(np.int64),
    "float": np.dtype(np.float32),
    "double": np.dtype(np.float64),
}
_REDUCTION_OPS = ("sum", "prod", "min", "max", "and", "or", "xor")


def active_set(pe_start: int, log_pe_stride: int, pe_size: int,
               n_pes: int) -> tuple[int, ...]:
    """Expand an OpenSHMEM active-set triple into world ranks."""
    if pe_size <= 0 or pe_start < 0 or log_pe_stride < 0:
        raise CollectiveArgumentError(
            f"bad active set ({pe_start}, {log_pe_stride}, {pe_size})"
        )
    stride = 1 << log_pe_stride
    members = tuple(pe_start + i * stride for i in range(pe_size))
    if members[-1] >= n_pes:
        raise CollectiveArgumentError(
            f"active set ({pe_start}, {log_pe_stride}, {pe_size}) exceeds "
            f"{n_pes} PEs"
        )
    return members


class ShmemAPI:
    """OpenSHMEM-flavoured wrapper around one PE's xbrtime context."""

    def __init__(self, ctx: "XBRTime"):
        self.ctx = ctx

    # -- setup / query (OpenSHMEM names) ------------------------------------

    def my_pe(self) -> int:
        return self.ctx.my_pe()

    def n_pes(self) -> int:
        return self.ctx.num_pes()

    def barrier_all(self) -> None:
        self.ctx.barrier()

    def barrier(self, pe_start: int, log_pe_stride: int, pe_size: int,
                psync: object = None) -> None:
        members = active_set(pe_start, log_pe_stride, pe_size, self.n_pes())
        self.ctx.barrier_team(members)

    # -- broadcast (size-suffixed; root dest NOT updated) ----------------------

    def _bcast(self, elem_bytes: int, dest: int, source: int, nelems: int,
               pe_root: int, pe_start: int, log_pe_stride: int,
               pe_size: int) -> None:
        members = active_set(pe_start, log_pe_stride, pe_size, self.n_pes())
        dtype = np.dtype(f"u{elem_bytes}")
        _broadcast.broadcast(
            self.ctx, dest, source, nelems, 1, pe_root, dtype,
            group=members, copy_to_root_dest=False,
        )

    def broadcast32(self, dest: int, source: int, nelems: int, pe_root: int,
                    pe_start: int = 0, log_pe_stride: int = 0,
                    pe_size: int | None = None, psync: object = None) -> None:
        """``shmem_broadcast32``: 4-byte elements."""
        self._bcast(4, dest, source, nelems, pe_root, pe_start,
                    log_pe_stride, pe_size or self.n_pes())

    def broadcast64(self, dest: int, source: int, nelems: int, pe_root: int,
                    pe_start: int = 0, log_pe_stride: int = 0,
                    pe_size: int | None = None, psync: object = None) -> None:
        """``shmem_broadcast64``: 8-byte elements."""
        self._bcast(8, dest, source, nelems, pe_root, pe_start,
                    log_pe_stride, pe_size or self.n_pes())

    # -- reductions: TYPE_OP_to_all ------------------------------------------------

    def reduce_to_all(self, typename: str, op: str, dest: int, source: int,
                      nreduce: int, pe_start: int = 0, log_pe_stride: int = 0,
                      pe_size: int | None = None, pwrk: object = None,
                      psync: object = None) -> None:
        """``shmem_TYPE_OP_to_all``: reduction whose result lands on
        every PE of the active set."""
        if typename not in _REDUCTION_TYPES:
            raise CollectiveArgumentError(
                f"OpenSHMEM reductions cover {sorted(_REDUCTION_TYPES)}, "
                f"not {typename!r}"
            )
        if op not in _REDUCTION_OPS:
            raise CollectiveArgumentError(f"unknown reduction op {op!r}")
        members = active_set(pe_start, log_pe_stride,
                             pe_size or self.n_pes(), self.n_pes())
        from ..collectives.allreduce import allreduce as _allreduce

        _allreduce(self.ctx, dest, source, nreduce, 1, op,
                   _REDUCTION_TYPES[typename], group=members)

    def __getattr__(self, name: str):
        # shmem_<type>_<op>_to_all convenience: e.g. long_sum_to_all.
        parts = name.split("_")
        if len(parts) >= 4 and parts[-2:] == ["to", "all"]:
            typename, op = parts[0], "_".join(parts[1:-2])
            if typename in _REDUCTION_TYPES and op in _REDUCTION_OPS:
                def call(dest, source, nreduce, pe_start=0, log_pe_stride=0,
                         pe_size=None, pwrk=None, psync=None,
                         _t=typename, _o=op):
                    return self.reduce_to_all(_t, _o, dest, source, nreduce,
                                              pe_start, log_pe_stride,
                                              pe_size, pwrk, psync)
                return call
        raise AttributeError(name)

    # -- collect / fcollect -----------------------------------------------------------

    def fcollect(self, elem_bytes: int, dest: int, source: int, nelems: int,
                 pe_start: int = 0, log_pe_stride: int = 0,
                 pe_size: int | None = None, psync: object = None) -> None:
        """``shmem_fcollect{32,64}``: fixed-size concatenation on all PEs."""
        members = active_set(pe_start, log_pe_stride,
                             pe_size or self.n_pes(), self.n_pes())
        dtype = np.dtype(f"u{elem_bytes}")
        _extra.fcollect(self.ctx, dest, source, nelems, dtype, group=members)

    def fcollect32(self, dest: int, source: int, nelems: int, **kw) -> None:
        self.fcollect(4, dest, source, nelems, **kw)

    def fcollect64(self, dest: int, source: int, nelems: int, **kw) -> None:
        self.fcollect(8, dest, source, nelems, **kw)

    def collect(self, elem_bytes: int, dest: int, source: int, nelems: int,
                pe_start: int = 0, log_pe_stride: int = 0,
                pe_size: int | None = None, psync: object = None) -> None:
        """``shmem_collect{32,64}``: variable-size concatenation on all
        PEs — the per-PE counts are exchanged first (as real
        implementations must)."""
        members = active_set(pe_start, log_pe_stride,
                             pe_size or self.n_pes(), self.n_pes())
        ctx = self.ctx
        n = len(members)
        me = members.index(ctx.rank)
        dtype = np.dtype(f"u{elem_bytes}")
        # Exchange counts with a fixed-size fcollect of one long each.
        cnt_src = ctx.scratch_alloc(8)
        cnt_all = ctx.scratch_alloc(8 * n)
        ctx.view(cnt_src, "long", 1)[0] = nelems
        _extra.fcollect(ctx, cnt_all, cnt_src, 1, np.dtype(np.int64),
                        group=members)
        counts = [int(c) for c in ctx.view(cnt_all, "long", n)]
        disp = [sum(counts[:i]) for i in range(n)]
        _extra.allgather(ctx, dest, source, counts, disp, sum(counts),
                         dtype, group=members)
        ctx.scratch_free(cnt_all)
        ctx.scratch_free(cnt_src)

    def collect32(self, dest: int, source: int, nelems: int, **kw) -> None:
        self.collect(4, dest, source, nelems, **kw)

    def collect64(self, dest: int, source: int, nelems: int, **kw) -> None:
        self.collect(8, dest, source, nelems, **kw)
