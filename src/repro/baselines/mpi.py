"""MPI-style collectives over the two-sided message layer.

These are the algorithms MPICH uses in the small/medium-message regime
(Thakur, Rabenseifner & Gropp 2005): binomial-tree bcast and reduce,
recursive-doubling allreduce, and linear scatterv/gatherv rooted at any
rank.  Functionally they match the xBGAS collectives; the point of the
baseline is the *cost* difference when run on
``MachineConfig.with_transport("mpi")`` — every edge of the tree pays
two-sided overheads (handshake above the eager threshold, kernel
crossings, staging copies at both ends).

All calls take a :class:`~repro.runtime.context.XBRTime` ctx and use the
machine's shared :class:`~repro.baselines.p2p.MessageLayer`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..collectives.ops import apply_op, check_op
from ..errors import CollectiveArgumentError
from .p2p import attach_message_layer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.context import XBRTime

__all__ = ["bcast", "reduce", "allreduce", "scatterv", "gatherv"]

_TAG_BCAST = 101
_TAG_REDUCE = 102
_TAG_ALLRED = 103
_TAG_SCAT = 104
_TAG_GATH = 105


def _vrank(rank: int, root: int, n: int) -> int:
    return (rank - root) % n


def _lrank(vrank: int, root: int, n: int) -> int:
    return (vrank + root) % n


def bcast(ctx: "XBRTime", addr: int, nelems: int, dtype: np.dtype,
          root: int = 0) -> None:
    """Binomial-tree broadcast of the buffer at ``addr`` (MPI_Bcast)."""
    n = ctx.num_pes()
    if not 0 <= root < n:
        raise CollectiveArgumentError(f"root {root} out of range")
    layer = attach_message_layer(ctx.machine)
    me = _vrank(ctx.rank, root, n)
    mask = 1
    # Standard MPICH binomial: receive from the parent, then relay to
    # children at decreasing stride.
    while mask < n:
        if me & mask:
            src = _lrank(me - mask, root, n)
            layer.recv(ctx, src, addr, nelems, dtype, _TAG_BCAST)
            break
        mask <<= 1
    mask >>= 1
    while mask > 0:
        if me + mask < n:
            dst = _lrank(me + mask, root, n)
            layer.send(ctx, dst, addr, nelems, dtype, _TAG_BCAST)
        mask >>= 1


def reduce(ctx: "XBRTime", dest: int, src: int, nelems: int,
           dtype: np.dtype, op: str = "sum", root: int = 0) -> None:
    """Binomial-tree reduction to ``root`` (MPI_Reduce)."""
    n = ctx.num_pes()
    if not 0 <= root < n:
        raise CollectiveArgumentError(f"root {root} out of range")
    check_op(op, dtype)
    layer = attach_message_layer(ctx.machine)
    eb = np.dtype(dtype).itemsize
    acc_addr = ctx.private_malloc(max(nelems, 1) * eb)
    tmp_addr = ctx.private_malloc(max(nelems, 1) * eb)
    acc = ctx.view(acc_addr, dtype, nelems)
    tmp = ctx.view(tmp_addr, dtype, nelems)
    acc[:] = ctx.view(src, dtype, nelems)
    me = _vrank(ctx.rank, root, n)
    mask = 1
    while mask < n:
        if me & mask:
            dst = _lrank(me - mask, root, n)
            layer.send(ctx, dst, acc_addr, nelems, dtype, _TAG_REDUCE)
            break
        partner = me | mask
        if partner < n:
            psrc = _lrank(partner, root, n)
            layer.recv(ctx, psrc, tmp_addr, nelems, dtype, _TAG_REDUCE)
            apply_op(op, acc, tmp)
            ctx.compute(nelems * 2 * ctx.machine.config.cycle_ns)
        mask <<= 1
    if me == 0 and nelems:
        ctx.view(dest, dtype, nelems)[:] = acc
        ctx.charge_stream(dest, nelems * eb, write=True)
    ctx.private_free(tmp_addr)
    ctx.private_free(acc_addr)


def allreduce(ctx: "XBRTime", dest: int, src: int, nelems: int,
              dtype: np.dtype, op: str = "sum") -> None:
    """Recursive-doubling allreduce (MPI_Allreduce, power-of-two path;
    non-power-of-two ranks fold into the nearest lower power of two)."""
    n = ctx.num_pes()
    check_op(op, dtype)
    layer = attach_message_layer(ctx.machine)
    eb = np.dtype(dtype).itemsize
    acc_addr = ctx.private_malloc(max(nelems, 1) * eb)
    tmp_addr = ctx.private_malloc(max(nelems, 1) * eb)
    acc = ctx.view(acc_addr, dtype, nelems)
    tmp = ctx.view(tmp_addr, dtype, nelems)
    acc[:] = ctx.view(src, dtype, nelems)
    me = ctx.rank
    pof2 = 1
    while pof2 * 2 <= n:
        pof2 *= 2
    rem = n - pof2
    # Fold the remainder ranks into [0, pof2).
    if me < 2 * rem:
        if me % 2 == 1:  # odd ranks send and sit out
            layer.send(ctx, me - 1, acc_addr, nelems, dtype, _TAG_ALLRED)
            newrank = -1
        else:
            layer.recv(ctx, me + 1, tmp_addr, nelems, dtype, _TAG_ALLRED)
            apply_op(op, acc, tmp)
            newrank = me // 2
    else:
        newrank = me - rem
    if newrank != -1:
        mask = 1
        while mask < pof2:
            partner_new = newrank ^ mask
            partner = (partner_new * 2 if partner_new < rem
                       else partner_new + rem)
            layer.sendrecv(ctx, partner, acc_addr, partner, tmp_addr,
                           nelems, dtype, _TAG_ALLRED)
            apply_op(op, acc, tmp)
            ctx.compute(nelems * 2 * ctx.machine.config.cycle_ns)
            mask <<= 1
    # Send results back to the folded-out odd ranks.
    if me < 2 * rem:
        if me % 2 == 0:
            layer.send(ctx, me + 1, acc_addr, nelems, dtype, _TAG_ALLRED)
        else:
            layer.recv(ctx, me - 1, acc_addr, nelems, dtype, _TAG_ALLRED)
            acc = ctx.view(acc_addr, dtype, nelems)
    if nelems:
        ctx.view(dest, dtype, nelems)[:] = acc
        ctx.charge_stream(dest, nelems * eb, write=True)
    ctx.private_free(tmp_addr)
    ctx.private_free(acc_addr)


def scatterv(ctx: "XBRTime", dest: int, src: int, counts: list[int],
             displs: list[int], dtype: np.dtype, root: int = 0) -> None:
    """Linear variable scatter (MPI_Scatterv's default small algorithm)."""
    n = ctx.num_pes()
    if len(counts) != n or len(displs) != n:
        raise CollectiveArgumentError("counts/displs must have n_pes entries")
    layer = attach_message_layer(ctx.machine)
    eb = np.dtype(dtype).itemsize
    if ctx.rank == root:
        for pe in range(n):
            if pe == root:
                if counts[pe]:
                    ctx.view(dest, dtype, counts[pe])[:] = ctx.view(
                        src + displs[pe] * eb, dtype, counts[pe])
                    ctx.charge_stream(dest, counts[pe] * eb, write=True)
            else:
                layer.send(ctx, pe, src + displs[pe] * eb, counts[pe],
                           dtype, _TAG_SCAT)
    else:
        layer.recv(ctx, root, dest, counts[ctx.rank], dtype, _TAG_SCAT)


def gatherv(ctx: "XBRTime", dest: int, src: int, counts: list[int],
            displs: list[int], dtype: np.dtype, root: int = 0) -> None:
    """Linear variable gather (MPI_Gatherv)."""
    n = ctx.num_pes()
    if len(counts) != n or len(displs) != n:
        raise CollectiveArgumentError("counts/displs must have n_pes entries")
    layer = attach_message_layer(ctx.machine)
    eb = np.dtype(dtype).itemsize
    if ctx.rank == root:
        for pe in range(n):
            if pe == root:
                if counts[pe]:
                    ctx.view(dest + displs[pe] * eb, dtype, counts[pe])[:] = (
                        ctx.view(src, dtype, counts[pe]))
                    ctx.charge_stream(dest + displs[pe] * eb,
                                      counts[pe] * eb, write=True)
            else:
                layer.recv(ctx, pe, dest + displs[pe] * eb, counts[pe],
                           dtype, _TAG_GATH)
    else:
        layer.send(ctx, root, src, counts[ctx.rank], dtype, _TAG_GATH)
