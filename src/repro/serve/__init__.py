"""Multi-tenant collective serving over a persistent PE pool.

The ROADMAP north star is a runtime that "serves heavy traffic from
millions of users"; this package is the serving layer over the
reproduction's backends.  A :class:`ServePool` keeps one backend
session alive (mp: a pool of worker processes over shared segments)
and multiplexes many tenants' independent collective jobs onto
**disjoint team-scoped PE subsets**, with

* admission control — FIFO queue with a depth limit (backpressure:
  :class:`~repro.errors.QueueFullError`) and bounded-wait rejection
  (:class:`~repro.errors.AdmissionTimeoutError` diagnostics);
* per-tenant accounting — latency / queue-wait percentiles and
  PE-seconds, with optional span-event tracing for Chrome-trace
  timelines (the PR 1 observability layer);
* crash isolation — a tenant's dying worker fails *that job only*
  (:class:`~repro.errors.WorkerFailedError` diagnostics); the worker
  slot is rebuilt in place against the existing shared segments and
  every other tenant's concurrent job completes byte-identically.

Quick start::

    from repro.serve import JobSpec, ServePool

    with ServePool(n_pes=4, backend="mp") as pool:
        pool.submit(JobSpec(tenant="a", collective="allreduce",
                            n_pes=2, nelems=256))
        pool.submit(JobSpec(tenant="b", collective="broadcast",
                            n_pes=2, nelems=512, seed=7))
        for result in pool.drain():
            print(result.tenant, result.ok, result.latency_s)
"""

from __future__ import annotations

from ..errors import (
    AdmissionTimeoutError,
    QueueFullError,
    ServeError,
)
from .job import COLLECTIVES, FAULT_MODES, JobResult, JobSpec
from .pool import ServePool
from .programs import payload_values, run_collective_job
from .scheduler import TeamScheduler
from .stats import ServeStats, TenantAccount, percentile

__all__ = [
    "ServePool",
    "JobSpec",
    "JobResult",
    "TeamScheduler",
    "ServeStats",
    "TenantAccount",
    "percentile",
    "run_collective_job",
    "payload_values",
    "COLLECTIVES",
    "FAULT_MODES",
    "ServeError",
    "QueueFullError",
    "AdmissionTimeoutError",
]
