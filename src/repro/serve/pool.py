"""The serving pool: one long-lived backend, many tenants' jobs.

:class:`ServePool` glues the pieces together:

* the **scheduler** (:class:`~repro.serve.scheduler.TeamScheduler`)
  decides *when* a job runs and *which* PEs it gets;
* an **engine** runs it — :class:`_MPEngine` multiplexes team-scoped
  runs onto one persistent :class:`~repro.backends.mp.MPSession`
  (true concurrency, crash isolation via in-place slot rebuild), while
  :class:`_LocalEngine` is the coreless-CI fallback that executes each
  job on a fresh in-process sim/vec session (serialized execution, but
  the *same* scheduler decisions, accounting and job program);
* **stats** (:class:`~repro.serve.stats.ServeStats`) bill each tenant
  for latency, queue wait and PE-seconds.

The pool is single-threaded and poll-driven: callers ``submit`` specs
and ``pump``/``drain`` to make progress.  That keeps every admission
decision deterministic given the submission order and job durations —
there is no hidden dispatcher thread to race against.

Crash isolation contract (the tentpole property): a job whose worker
dies — seeded ``"raise"``/``"exit"`` faults, or any real bug — produces
a failed :class:`~repro.serve.job.JobResult` carrying the
:class:`~repro.errors.WorkerFailedError` diagnostics for *that job
only*.  Concurrent jobs of other tenants run to completion with
byte-identical digests to a fault-free run, and the pool keeps serving:
dead mp worker slots are rebuilt in place against the existing shared
segments before the job's PEs return to the free set.
"""

from __future__ import annotations

import os
import time
from typing import Any

from ..backends import get_backend
from ..backends.base import resolve_config
from ..backends.mp import MPSession
from ..errors import BackendError, ServeError
from ..params import MachineConfig
from ..sim.trace import EventTrace
from .job import JobResult, JobSpec
from .programs import run_batched_jobs, run_collective_job
from .scheduler import TeamScheduler
from .stats import ServeStats

__all__ = ["ServePool"]


def _fold_digests(members: list[dict]) -> str:
    """One job digest from the members' buffer digests (group order)."""
    import hashlib

    joined = ",".join(m["digest"] for m in
                      sorted(members, key=lambda m: m["member"]))
    return hashlib.sha256(joined.encode()).hexdigest()


class _MPEngine:
    """Team-scoped concurrent execution on one persistent MPSession."""

    concurrent = True

    def __init__(self, config: MachineConfig, timeout: float):
        self.session = MPSession(config, timeout=timeout)
        self._inflight: dict[int, tuple[int, Any]] = {}  # run_id -> (job, ticket)

    def launch(self, job_id: int, spec: JobSpec,
               ranks: tuple[int, ...]) -> None:
        wire = spec.as_wire()
        ticket = self.session.submit(
            run_collective_job, [(wire,)] * len(ranks), ranks=ranks,
            timeout=spec.timeout, payload_nbytes=spec.payload_nbytes,
        )
        self._inflight[ticket.run_id] = (job_id, ticket)

    def launch_batch(self, job_id: int, specs: list[JobSpec],
                     ranks: tuple[int, ...]) -> None:
        wires = [spec.as_wire() for spec in specs]
        ticket = self.session.submit(
            run_batched_jobs, [(wires,)] * len(ranks), ranks=ranks,
            timeout=specs[0].timeout,
            payload_nbytes=sum(s.payload_nbytes for s in specs),
        )
        self._inflight[ticket.run_id] = (job_id, ticket)

    def poll(self, block_s: float = 0.0) -> list[
            tuple[int, bool, list[dict] | None, str | None]]:
        """Advance the session; report ``(job_id, ok, members, error)``
        for every job that finished since the last poll."""
        self.session.pump(block_s)
        done = [rid for rid, (_, t) in self._inflight.items() if t.complete]
        out = []
        for rid in done:
            job_id, ticket = self._inflight.pop(rid)
            try:
                members = self.session.finish(ticket)
            except BackendError as exc:
                out.append((job_id, False, None, str(exc)))
            else:
                out.append((job_id, True, members, None))
        return out

    @property
    def busy(self) -> bool:
        return bool(self._inflight)

    def close(self) -> None:
        self.session.close()


class _LocalEngine:
    """Coreless-CI fallback: each job on a fresh in-process session.

    Execution is serialized (one job runs to completion inside
    ``launch``), but PEs are still *logically* occupied between launch
    and the next ``poll`` — the scheduler, admission policy and
    accounting behave identically to the concurrent engine, which is
    what lets the serving test suite run without OS-level parallelism.
    """

    concurrent = False

    def __init__(self, backend_name: str, config: MachineConfig,
                 timeout: float):
        self.backend = get_backend(backend_name)
        self.config = config
        self.timeout = timeout
        self._done: list[tuple[int, bool, list[dict] | None,
                               str | None]] = []

    def launch(self, job_id: int, spec: JobSpec,
               ranks: tuple[int, ...]) -> None:
        wire = spec.as_wire()
        cfg = self.config.with_(n_pes=len(ranks))
        try:
            members = self.backend.run(
                run_collective_job, [(wire,)] * len(ranks), config=cfg)
        except Exception as exc:  # any PE failure fails this job only
            msg = f"{type(exc).__name__}: {exc}"
            cause = exc.__cause__
            if cause is not None:  # sim wraps the PE's exception; keep it
                msg += f" ({type(cause).__name__}: {cause})"
            self._done.append((job_id, False, None, msg))
        else:
            self._done.append((job_id, True, members, None))

    def launch_batch(self, job_id: int, specs: list[JobSpec],
                     ranks: tuple[int, ...]) -> None:
        wires = [spec.as_wire() for spec in specs]
        cfg = self.config.with_(n_pes=len(ranks))
        try:
            members = self.backend.run(
                run_batched_jobs, [(wires,)] * len(ranks), config=cfg)
        except Exception as exc:
            msg = f"{type(exc).__name__}: {exc}"
            cause = exc.__cause__
            if cause is not None:
                msg += f" ({type(cause).__name__}: {cause})"
            self._done.append((job_id, False, None, msg))
        else:
            self._done.append((job_id, True, members, None))

    def poll(self, block_s: float = 0.0) -> list[
            tuple[int, bool, list[dict] | None, str | None]]:
        out, self._done = self._done, []
        return out

    @property
    def busy(self) -> bool:
        return bool(self._done)

    def close(self) -> None:
        pass


class _Tracked:
    """Pool-side lifecycle record of one admitted job."""

    __slots__ = ("spec", "submitted_at", "dispatched_at", "ranks")

    def __init__(self, spec: JobSpec, submitted_at: float):
        self.spec = spec
        self.submitted_at = submitted_at
        self.dispatched_at = 0.0
        self.ranks: tuple[int, ...] = ()


class ServePool:
    """A multi-tenant collective service over a persistent PE pool.

    Parameters
    ----------
    n_pes:
        Pool width (world size of the underlying backend session).
    backend:
        ``"mp"`` (persistent worker pool, concurrent team-scoped jobs),
        ``"sim"``/``"vec"`` (in-process fallback), or ``"auto"`` — mp
        when the host has more than one core, sim otherwise (or force
        it via the ``XBGAS_SERVE_BACKEND`` environment variable).
    max_queue_depth / max_wait_s:
        Admission policy knobs (see
        :class:`~repro.serve.scheduler.TeamScheduler`).
    timeout:
        Per-job backend watchdog base; each job's effective deadline
        also scales with its payload
        (:func:`repro.backends.mp.scaled_timeout`).
    trace:
        Record every job as a span event for Chrome-trace export
        (:attr:`trace`).
    batch_window:
        Opportunistic batching width (default 1 = off).  When > 1,
        each dispatch may absorb up to ``batch_window - 1`` younger
        queued jobs with a matching
        :attr:`~repro.serve.job.JobSpec.batch_key`; the batch shares
        one team and runs as **one superstep**
        (:func:`~repro.serve.programs.run_batched_jobs`), and each
        job still gets its own demultiplexed :class:`JobResult` with
        per-tenant digests and latency accounting.  Fault-injecting
        jobs never batch; a crash inside a batch fails exactly that
        batch's jobs, and other teams are untouched.
    """

    def __init__(self, n_pes: int = 4, *, backend: str = "auto",
                 config: MachineConfig | None = None,
                 timeout: float = 60.0, max_queue_depth: int = 64,
                 max_wait_s: float = 30.0, trace: bool = False,
                 batch_window: int = 1):
        if batch_window < 1:
            raise ValueError(
                f"batch_window must be >= 1, got {batch_window}"
            )
        config = resolve_config(config, n_pes)
        name = os.environ.get("XBGAS_SERVE_BACKEND") or backend
        if name == "auto":
            name = "mp" if (os.cpu_count() or 1) > 1 else "sim"
        self.backend_name = name
        self.config = config
        if name == "mp":
            self._engine: _MPEngine | _LocalEngine = _MPEngine(
                config, timeout)
        elif name in ("sim", "vec"):
            self._engine = _LocalEngine(name, config, timeout)
        else:
            raise ServeError(
                f"unknown serving backend {name!r}; "
                "one of 'mp', 'sim', 'vec', 'auto'"
            )
        self.scheduler = TeamScheduler(
            config.n_pes, max_queue_depth=max_queue_depth,
            max_wait_s=max_wait_s,
        )
        self.batch_window = batch_window
        self.trace = EventTrace(enabled=trace)
        self.stats = ServeStats(trace=self.trace)
        self._jobs: dict[int, _Tracked] = {}
        self._batches: dict[int, list[int]] = {}  # head id -> batch ids
        self._results: list[JobResult] = []
        self._next_job = 0
        self._closed = False

    # -- submission ---------------------------------------------------------

    def submit(self, spec: JobSpec) -> int:
        """Admit one job; returns its id.

        Raises :class:`~repro.errors.QueueFullError` under backpressure
        (nothing enqueued) and ``ValueError`` for specs wider than the
        pool.  Admission is only the *accept* decision — the job runs
        whenever the scheduler finds it PEs; its terminal
        :class:`JobResult` arrives via :meth:`poll`/:meth:`drain`.
        """
        if self._closed:
            raise ServeError("ServePool used after close()")
        now = time.monotonic()
        job_id = self._next_job
        self.scheduler.offer(job_id, spec, now)  # may raise: id not burned
        self._next_job += 1
        self._jobs[job_id] = _Tracked(spec, now)
        self.stats.record_submit(spec.tenant)
        self._advance(0.0)
        return job_id

    # -- progress -----------------------------------------------------------

    def pump(self, block_s: float = 0.0) -> None:
        """Advance the pool: expire, dispatch, and collect completions."""
        if self._closed:
            raise ServeError("ServePool used after close()")
        self._advance(block_s)

    def _advance(self, block_s: float) -> None:
        now = time.monotonic()
        for qj in self.scheduler.expired(now):
            tracked = self._jobs.pop(qj.job_id)
            self._finish(JobResult(
                job_id=qj.job_id, tenant=tracked.spec.tenant,
                spec=tracked.spec, ok=False, rejected=True,
                error=(f"admission wait exceeded "
                       f"{self.scheduler.max_wait_s:.0f}s "
                       f"(AdmissionTimeoutError)"),
                queue_wait_s=qj.waited(now),
                latency_s=qj.waited(now),
            ))
        for batch, ranks in self.scheduler.dispatch_batches(
                now, self.batch_window):
            started = time.monotonic()
            for qj in batch:
                tracked = self._jobs[qj.job_id]
                tracked.dispatched_at = started
                tracked.ranks = ranks
            head = batch[0]
            if len(batch) == 1:
                self._engine.launch(head.job_id,
                                    self._jobs[head.job_id].spec, ranks)
            else:
                self._batches[head.job_id] = [qj.job_id for qj in batch]
                self._engine.launch_batch(
                    head.job_id,
                    [self._jobs[qj.job_id].spec for qj in batch], ranks)
        for head_id, ok, members, error in self._engine.poll(block_s):
            end = time.monotonic()
            for k, job_id in enumerate(
                    self._batches.pop(head_id, [head_id])):
                tracked = self._jobs.pop(job_id)
                if job_id == head_id:
                    self.scheduler.release(tracked.ranks)
                if ok and "digests" in members[0]:
                    job_members = [{"member": m["member"],
                                    "digest": m["digests"][k]}
                                   for m in members]
                else:
                    job_members = members
                queue_wait = tracked.dispatched_at - tracked.submitted_at
                service = end - tracked.dispatched_at
                self._finish(JobResult(
                    job_id=job_id, tenant=tracked.spec.tenant,
                    spec=tracked.spec, ok=ok, error=error,
                    digest=_fold_digests(job_members) if ok else None,
                    ranks=tracked.ranks, queue_wait_s=queue_wait,
                    service_s=service,
                    latency_s=end - tracked.submitted_at,
                ))

    def _finish(self, result: JobResult) -> None:
        self.stats.record_result(result)
        self._results.append(result)

    # -- collection ---------------------------------------------------------

    def poll(self) -> list[JobResult]:
        """Pop the results that have become terminal since the last poll."""
        out, self._results = self._results, []
        return out

    def drain(self, timeout_s: float | None = None) -> list[JobResult]:
        """Run the pool dry: block until every admitted job is terminal.

        Returns all pending results (including any not yet collected
        via :meth:`poll`).  ``timeout_s`` bounds the wait; on expiry a
        :class:`~repro.errors.ServeError` reports the stuck jobs.
        """
        deadline = None if timeout_s is None \
            else time.monotonic() + timeout_s
        while self._jobs:
            if deadline is not None and time.monotonic() > deadline:
                raise ServeError(
                    f"drain timed out with jobs "
                    f"{sorted(self._jobs)} still pending"
                )
            self._advance(0.05)
        return self.poll()

    # -- introspection ------------------------------------------------------

    @property
    def pending(self) -> int:
        """Admitted jobs not yet terminal (queued + running)."""
        return len(self._jobs)

    def snapshot(self) -> dict:
        """The pool's accounting summary (see ``ServeStats.snapshot``)."""
        snap = self.stats.snapshot()
        snap["pool"] = {
            "backend": self.backend_name,
            "n_pes": self.config.n_pes,
            "free_pes": self.scheduler.free_pes,
            "queue_depth": self.scheduler.depth,
            "max_queue_depth": self.scheduler.max_queue_depth,
            "max_wait_s": self.scheduler.max_wait_s,
            "batch_window": self.batch_window,
        }
        return snap

    # -- teardown -----------------------------------------------------------

    def close(self) -> None:
        """Tear the pool down (idempotent).  Pending jobs are abandoned."""
        if self._closed:
            return
        self._closed = True
        self._engine.close()

    def __enter__(self) -> "ServePool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
