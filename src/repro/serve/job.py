"""Job descriptions and results for the multi-tenant serving layer.

A :class:`JobSpec` is one tenant's request: run one collective of a
given shape on ``n_pes`` PEs carved out of the pool.  Specs are frozen
and validated up front so a malformed request is rejected at ``submit``
time, before it consumes a queue slot.  :class:`JobResult` is the
terminal record the pool hands back — exactly one per submitted job,
whether it completed, failed, or was rejected by admission control.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CollectiveArgumentError
from ..types import typeinfo

__all__ = ["JobSpec", "JobResult", "COLLECTIVES", "FAULT_MODES"]

#: Collectives the job program knows how to drive.
COLLECTIVES = (
    "broadcast",
    "reduce",
    "allreduce",
    "scan",
    "allgather",
    "alltoall",
    "barrier",
)

#: Seeded crash modes: ``"raise"`` = Python exception on the fault rank,
#: ``"exit"`` = hard process death (``os._exit``; degrades to
#: ``"raise"`` on in-process backends, which cannot lose a PE without
#: losing the server).
FAULT_MODES = ("raise", "exit")


@dataclass(frozen=True)
class JobSpec:
    """One collective job as a tenant submits it.

    ``root`` and ``fault_rank`` are **group-relative** — the tenant
    neither knows nor chooses which world ranks the scheduler carves for
    it.  ``seed`` fully determines the payload contents (and the fault
    injection point when ``fault`` is set), so a job rerun with the same
    spec on any rank set produces byte-identical buffers — that is what
    the cross-tenant isolation tests compare.
    """

    tenant: str
    collective: str = "allreduce"
    n_pes: int = 2
    nelems: int = 64
    dtype: str = "long"
    root: int = 0
    seed: int = 0
    fault: str | None = None
    fault_rank: int = 0
    timeout: float | None = None

    def __post_init__(self) -> None:
        if not self.tenant:
            raise CollectiveArgumentError("job tenant must be non-empty")
        if self.collective not in COLLECTIVES:
            raise CollectiveArgumentError(
                f"unknown collective {self.collective!r}; "
                f"one of {COLLECTIVES}"
            )
        if self.n_pes < 1:
            raise CollectiveArgumentError(
                f"job needs at least one PE, got {self.n_pes}"
            )
        if self.nelems < 0:
            raise CollectiveArgumentError(
                f"nelems must be >= 0, got {self.nelems}"
            )
        if not 0 <= self.root < self.n_pes:
            raise CollectiveArgumentError(
                f"root {self.root} out of range [0, {self.n_pes})"
            )
        if self.fault is not None and self.fault not in FAULT_MODES:
            raise CollectiveArgumentError(
                f"unknown fault mode {self.fault!r}; one of {FAULT_MODES}"
            )
        if not 0 <= self.fault_rank < self.n_pes:
            raise CollectiveArgumentError(
                f"fault_rank {self.fault_rank} out of range "
                f"[0, {self.n_pes})"
            )
        typeinfo(self.dtype)  # raises TypeNameError on unknown TYPENAMEs

    @property
    def payload_nbytes(self) -> int:
        """Total payload footprint — scales the backend watchdog.

        All-to-all shaped collectives move an ``n_pes``-fold buffer per
        PE; everything else is bounded by the per-PE element count.
        """
        per_elem = typeinfo(self.dtype).dtype.itemsize
        factor = self.n_pes if self.collective in ("allgather",
                                                   "alltoall") else 1
        return self.nelems * per_elem * factor * self.n_pes

    @property
    def batch_key(self) -> tuple | None:
        """Grouping key for opportunistic batching, or ``None``.

        Jobs whose keys match may ride one superstep on one team:
        same collective, team width, payload shape, dtype, root and
        watchdog budget — the tenant and the seed deliberately do
        *not* participate, since cross-tenant fusion is the point.
        Fault-injecting jobs never batch (``None``): their crash must
        stay confined to their own job.
        """
        if self.fault is not None:
            return None
        return (self.collective, self.n_pes, self.nelems, self.dtype,
                self.root, self.timeout)

    def as_wire(self) -> dict:
        """The picklable dict handed to the per-PE job program."""
        return {
            "collective": self.collective,
            "nelems": self.nelems,
            "dtype": self.dtype,
            "root": self.root,
            "seed": self.seed,
            "fault": self.fault,
            "fault_rank": self.fault_rank,
        }


@dataclass(frozen=True)
class JobResult:
    """The terminal record of one job.

    ``ok`` jobs carry the group leader's payload ``digest`` (identical
    on every member — collectives that scatter distinct bytes per rank
    fold all members' digests into it).  Failed jobs carry the backend's
    diagnostic in ``error``; rejected jobs additionally have
    ``rejected=True`` and never occupied a PE.
    """

    job_id: int
    tenant: str
    spec: JobSpec
    ok: bool
    error: str | None = None
    rejected: bool = False
    digest: str | None = None
    ranks: tuple[int, ...] = ()
    queue_wait_s: float = 0.0
    service_s: float = 0.0
    latency_s: float = 0.0

    @property
    def pe_seconds(self) -> float:
        """PE occupancy this job consumed (its tenant is billed for)."""
        return len(self.ranks) * self.service_s
