"""Per-tenant accounting for the serving pool.

Rides the PR 1 observability layer twice over:

* every job's lifetime is recorded as a span event
  (``serve:<collective>``) into an ordinary
  :class:`~repro.sim.trace.EventTrace` when the pool is constructed
  with ``trace=True`` — so :func:`~repro.sim.spans.build_span_forest`
  and the Chrome-trace exporter render a serving timeline exactly like
  a collective's; and
* the numeric summaries (:meth:`ServeStats.snapshot`) use the same
  latency-percentile conventions as the bench reports.

All times here are **wall-clock seconds**; PE-seconds is the billing
unit (team width x service time).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..sim.trace import EventTrace
from .job import JobResult

__all__ = ["percentile", "TenantAccount", "ServeStats"]


def percentile(values: list[float], q: float) -> float:
    """The ``q``-th percentile (0-100) by linear interpolation.

    Matches ``numpy.percentile`` defaults, but works on plain lists so
    report code paths need no array round trip.  Empty input → 0.0.
    """
    if not values:
        return 0.0
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    vals = sorted(values)
    if len(vals) == 1:
        return vals[0]
    pos = (len(vals) - 1) * q / 100.0
    lo = int(pos)
    hi = min(lo + 1, len(vals) - 1)
    frac = pos - lo
    return vals[lo] * (1.0 - frac) + vals[hi] * frac


@dataclass
class TenantAccount:
    """Everything the pool owes one tenant an answer about."""

    tenant: str
    submitted: int = 0
    completed: int = 0
    failed: int = 0
    rejected: int = 0
    pe_seconds: float = 0.0
    latencies_s: list[float] = field(default_factory=list)
    queue_waits_s: list[float] = field(default_factory=list)

    def summary(self) -> dict:
        return {
            "tenant": self.tenant,
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "rejected": self.rejected,
            "pe_seconds": round(self.pe_seconds, 6),
            "latency_s": {
                "p50": percentile(self.latencies_s, 50),
                "p95": percentile(self.latencies_s, 95),
                "p99": percentile(self.latencies_s, 99),
            },
            "queue_wait_s": {
                "p50": percentile(self.queue_waits_s, 50),
                "p95": percentile(self.queue_waits_s, 95),
                "p99": percentile(self.queue_waits_s, 99),
            },
        }


class ServeStats:
    """Pool-wide accounting: one :class:`TenantAccount` per tenant.

    When ``trace`` is enabled, each finished job additionally lands as
    a span event on the trace — ``pe`` = the team's lead world rank,
    span start/duration = dispatch time/service time — giving the
    Chrome-trace export one track per pool slot with the jobs that ran
    there.
    """

    def __init__(self, trace: EventTrace | None = None):
        self.accounts: dict[str, TenantAccount] = {}
        self.trace = trace
        self._t0 = time.monotonic()
        self._next_span = 1

    def _account(self, tenant: str) -> TenantAccount:
        acct = self.accounts.get(tenant)
        if acct is None:
            acct = self.accounts[tenant] = TenantAccount(tenant)
        return acct

    # -- recording ----------------------------------------------------------

    def record_submit(self, tenant: str) -> None:
        self._account(tenant).submitted += 1

    def record_result(self, result: JobResult) -> None:
        acct = self._account(result.tenant)
        if result.rejected:
            acct.rejected += 1
        elif result.ok:
            acct.completed += 1
        else:
            acct.failed += 1
        if not result.rejected:
            acct.pe_seconds += result.pe_seconds
            acct.latencies_s.append(result.latency_s)
        acct.queue_waits_s.append(result.queue_wait_s)
        if self.trace is not None and self.trace.enabled \
                and not result.rejected:
            end_s = time.monotonic() - self._t0
            start_ns = (end_s - result.service_s) * 1e9
            sid = self._next_span
            self._next_span += 1
            self.trace.record_span(
                start_ns, result.ranks[0] if result.ranks else 0,
                "span", f"collective:serve:{result.spec.collective}",
                sid, 0, result.service_s * 1e9,
                attrs={
                    "tenant": result.tenant,
                    "job_id": result.job_id,
                    "ranks": result.ranks,
                    "ok": result.ok,
                },
            )

    # -- reporting ----------------------------------------------------------

    def snapshot(self) -> dict:
        """A JSON-able pool summary (totals + per-tenant accounts)."""
        tenants = {name: acct.summary()
                   for name, acct in sorted(self.accounts.items())}
        all_lat = [v for a in self.accounts.values()
                   for v in a.latencies_s]
        return {
            "tenants": tenants,
            "totals": {
                "submitted": sum(a.submitted
                                 for a in self.accounts.values()),
                "completed": sum(a.completed
                                 for a in self.accounts.values()),
                "failed": sum(a.failed for a in self.accounts.values()),
                "rejected": sum(a.rejected
                                for a in self.accounts.values()),
                "pe_seconds": round(sum(a.pe_seconds
                                        for a in self.accounts.values()),
                                    6),
                "latency_s": {
                    "p50": percentile(all_lat, 50),
                    "p95": percentile(all_lat, 95),
                    "p99": percentile(all_lat, 99),
                },
            },
        }
