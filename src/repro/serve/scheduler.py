"""Admission control and PE carving for the serving pool.

The scheduler owns two pieces of state: the **free set** (world ranks
of the pool not currently running a job) and the **admission queue**
(accepted-but-waiting jobs, FIFO).  It is deliberately backend-agnostic
and does no I/O — the pool drives it with explicit ``now`` timestamps,
which keeps every policy decision unit-testable without a clock or a
worker pool.

Admission policy, in order of application:

1. **Backpressure** — ``offer`` raises
   :class:`~repro.errors.QueueFullError` when the queue is at
   ``max_queue_depth``; nothing is enqueued and no state changes.  The
   caller sheds load instead of the pool accumulating it.
2. **FIFO dispatch with conservative backfill** — ``dispatchable``
   scans the queue oldest-first and starts every job whose team fits
   the current free set.  A younger job may therefore start on PEs an
   older (wider) job cannot use *yet*; the older job keeps its queue
   position.
3. **Bounded wait** — a queued job whose age exceeds ``max_wait_s`` is
   rejected (``expired``) rather than starving invisibly; backfill can
   then never hold the head hostage forever, because the head's wait is
   bounded by construction.

Teams are carved as the *lowest* free ranks.  That packs jobs toward
rank 0, keeping high ranks contiguously free for wide jobs — a simple
(and deterministic) anti-fragmentation bias.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from ..errors import QueueFullError
from .job import JobSpec

__all__ = ["TeamScheduler", "QueuedJob"]


class QueuedJob:
    """One accepted job waiting for PEs."""

    __slots__ = ("job_id", "spec", "enqueued_at")

    def __init__(self, job_id: int, spec: JobSpec, enqueued_at: float):
        self.job_id = job_id
        self.spec = spec
        self.enqueued_at = enqueued_at

    def waited(self, now: float) -> float:
        return max(0.0, now - self.enqueued_at)


class TeamScheduler:
    """Carves disjoint teams out of ``n_pes`` pool slots (see module doc)."""

    def __init__(self, n_pes: int, *, max_queue_depth: int = 64,
                 max_wait_s: float = 30.0):
        if n_pes < 1:
            raise ValueError(f"pool needs at least one PE, got {n_pes}")
        if max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got {max_queue_depth}"
            )
        if max_wait_s <= 0:
            raise ValueError(f"max_wait_s must be > 0, got {max_wait_s}")
        self.n_pes = n_pes
        self.max_queue_depth = max_queue_depth
        self.max_wait_s = max_wait_s
        self._free: set[int] = set(range(n_pes))
        self._queue: Deque[QueuedJob] = deque()

    # -- introspection ------------------------------------------------------

    @property
    def free_pes(self) -> int:
        return len(self._free)

    @property
    def depth(self) -> int:
        """Jobs accepted but not yet dispatched."""
        return len(self._queue)

    @property
    def idle(self) -> bool:
        """No queued jobs and every PE free."""
        return not self._queue and len(self._free) == self.n_pes

    # -- admission ----------------------------------------------------------

    def offer(self, job_id: int, spec: JobSpec, now: float) -> None:
        """Accept one job into the queue, or push back.

        Raises :class:`~repro.errors.QueueFullError` at the depth limit
        and ``ValueError`` for a team wider than the pool — both before
        any state change.
        """
        if spec.n_pes > self.n_pes:
            raise ValueError(
                f"job wants {spec.n_pes} PEs but the pool has only "
                f"{self.n_pes}"
            )
        if len(self._queue) >= self.max_queue_depth:
            raise QueueFullError(
                f"admission queue is at its depth limit "
                f"({self.max_queue_depth}); retry later"
            )
        self._queue.append(QueuedJob(job_id, spec, now))

    def expired(self, now: float) -> list[QueuedJob]:
        """Remove and return queued jobs that outlived ``max_wait_s``."""
        out = []
        kept: Deque[QueuedJob] = deque()
        for qj in self._queue:
            (out if qj.waited(now) > self.max_wait_s else kept).append(qj)
        self._queue = kept
        return out

    def dispatchable(self, now: float) -> list[
            tuple[QueuedJob, tuple[int, ...]]]:
        """Pop every queued job that fits right now, with its team.

        Jobs are considered oldest-first; each returned job's ranks are
        already removed from the free set (the caller *must* launch it,
        or give the ranks back via :meth:`release`).
        """
        return [(batch[0], ranks)
                for batch, ranks in self.dispatch_batches(now, 1)]

    def dispatch_batches(self, now: float, max_batch: int) -> list[
            tuple[list[QueuedJob], tuple[int, ...]]]:
        """Pop dispatchable jobs, absorbing same-shape queued jobs.

        Like :meth:`dispatchable`, but each dispatched job may carry up
        to ``max_batch - 1`` *younger* queued jobs whose
        :attr:`~repro.serve.job.JobSpec.batch_key` matches — they share
        the head job's team instead of waiting for their own, and the
        pool runs them as one superstep.  Absorption never changes
        which head jobs dispatch (batching is opportunistic, on top of
        the FIFO-with-backfill policy), and fault-injecting jobs never
        join a batch (their key is ``None``).
        """
        queue = list(self._queue)
        taken: set[int] = set()
        out: list[tuple[list[QueuedJob], tuple[int, ...]]] = []
        for i, qj in enumerate(queue):
            if i in taken:
                continue
            if qj.spec.n_pes > len(self._free):
                continue
            ranks = tuple(sorted(self._free)[:qj.spec.n_pes])
            self._free -= set(ranks)
            taken.add(i)
            batch = [qj]
            key = qj.spec.batch_key
            if max_batch > 1 and key is not None:
                for j in range(i + 1, len(queue)):
                    if len(batch) >= max_batch:
                        break
                    if j in taken:
                        continue
                    if queue[j].spec.batch_key == key:
                        taken.add(j)
                        batch.append(queue[j])
            out.append((batch, ranks))
        self._queue = deque(qj for i, qj in enumerate(queue)
                            if i not in taken)
        return out

    def release(self, ranks: tuple[int, ...]) -> None:
        """Return a finished (or failed) job's PEs to the free set."""
        overlap = self._free & set(ranks)
        if overlap:
            raise ValueError(
                f"PEs {sorted(overlap)} released twice"
            )
        self._free |= set(ranks)
