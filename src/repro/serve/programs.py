"""The per-PE program a serving job runs — one function, any backend.

``run_collective_job`` is the module-level (hence picklable) SPMD body
dispatched to every member of a job's team.  It is written entirely
against the PE-context protocol plus the ``default_group`` attribute,
so the same bytes run

* **team-scoped** on the mp backend — the pool submits it on a rank
  subset whose contexts carry ``default_group``, and every collective
  called without an explicit group targets the team; and
* **world-scoped** on the sim/vec fallback engines — a fresh session of
  exactly ``n_pes`` PEs where ``default_group`` is ``None`` and the
  world *is* the team.

Payload contents depend only on ``(seed, group rank)``, never on world
ranks, so the same spec produces byte-identical buffers wherever the
scheduler places it — the property the cross-tenant isolation tests
(and the fault-free/faulted differential runs) rely on.

On a failure path nothing is freed or closed: ``close``/``free`` are
group-synchronising or replicated bookkeeping, and a faulted team's
survivors unwind from *inside* a collective — any cleanup barrier here
would deadlock against peers that never reach it.  The context is
per-run disposable (the backend rebuilds allocator state each run), so
abandoning it is the correct teardown.
"""

from __future__ import annotations

import hashlib
import os

import numpy as np

from ..runtime.collective_api import resolve_dtype

__all__ = ["run_collective_job", "run_batched_jobs", "payload_values"]

#: Modulus for deterministic payload values: exact in every TYPENAME
#: (fits int8; small enough that float sums stay exactly representable).
_VALUE_MOD = 89


def payload_values(seed: int, member: int, nelems: int,
                   dtype: str) -> np.ndarray:
    """The deterministic payload one group member contributes."""
    dt = resolve_dtype(dtype)
    base = (seed * 31 + member * 7) % _VALUE_MOD
    vals = (base + np.arange(nelems, dtype=np.int64)) % _VALUE_MOD
    return vals.astype(dt)


def _inject_fault(spec: dict, me: int, backend: str) -> None:
    """Fire the spec's seeded fault on its (group-relative) victim.

    ``"exit"`` is a hard process death — only meaningful where a PE is
    a process (mp).  In-process backends degrade it to ``"raise"``:
    killing the interpreter would take the server (and every other
    tenant) with it, which is exactly what the serving layer exists to
    prevent.
    """
    mode = spec.get("fault")
    if mode is None or me != spec.get("fault_rank", 0):
        return
    if mode == "exit" and backend == "mp":
        os._exit(23)
    raise RuntimeError(
        f"injected tenant fault (seed={spec.get('seed', 0)})"
    )


class _JobBuffers:
    """One job's allocated payload buffers on this PE."""

    __slots__ = ("spec", "src", "dst", "sview", "dview")

    def __init__(self, ctx, spec: dict, n: int, me: int):
        name = spec["collective"]
        nelems = spec["nelems"]
        dtype = spec["dtype"]
        seed = spec.get("seed", 0)
        itemsize = resolve_dtype(dtype).itemsize
        fanned = name in ("allgather", "alltoall")
        src_elems = nelems * n if name == "alltoall" else nelems
        dst_elems = nelems * n if fanned else nelems
        self.spec = spec
        self.src = ctx.malloc(max(src_elems, 1) * itemsize)
        self.dst = ctx.malloc(max(dst_elems, 1) * itemsize)
        self.sview = ctx.view(self.src, dtype, src_elems)
        self.dview = ctx.view(self.dst, dtype, dst_elems)
        self.sview[:] = payload_values(seed, me, src_elems, dtype)
        self.dview[:] = 0

    def issue(self, ctx, n: int) -> None:
        """Call the job's collective (no surrounding barriers)."""
        spec, src, dst = self.spec, self.src, self.dst
        name = spec["collective"]
        nelems = spec["nelems"]
        dtype = spec["dtype"]
        root = spec.get("root", 0)
        if name == "broadcast":
            ctx.broadcast(dst, src, nelems, 1, root, dtype=dtype)
        elif name == "reduce":
            ctx.reduce(dst, src, nelems, 1, root, op="sum", dtype=dtype)
        elif name == "allreduce":
            ctx.allreduce(dst, src, nelems, 1, op="sum", dtype=dtype)
        elif name == "scan":
            ctx.scan(dst, src, nelems, 1, op="sum", dtype=dtype)
        elif name == "allgather":
            msgs = [nelems] * n
            disp = [i * nelems for i in range(n)]
            ctx.allgather(dst, src, msgs, disp, nelems * n, dtype=dtype)
        elif name == "alltoall":
            ctx.alltoall(dst, src, nelems, dtype=dtype)
        else:  # "barrier" — synchronisation-only job
            ctx.barrier()
            self.dview[:] = self.sview[:len(self.dview)]

    def digest(self) -> str:
        return hashlib.sha256(self.dview.tobytes()).hexdigest()

    def free(self, ctx) -> None:
        ctx.free(self.dst)
        ctx.free(self.src)


def run_collective_job(ctx, spec: dict) -> dict:
    """Run one collective job on this PE; returns the member's digest.

    ``spec`` is :meth:`repro.serve.job.JobSpec.as_wire`.  The digest is
    a SHA-256 over the member's destination buffer bytes; the pool folds
    the members' digests (in group order) into the job digest, so
    collectives whose outputs legitimately differ per rank (scan,
    alltoall) still compare byte-exactly across runs.
    """
    ctx.init()
    group = getattr(ctx, "default_group", None) or ctx.world_group
    n = len(group)
    me = group.index(ctx.rank)
    job = _JobBuffers(ctx, spec, n, me)
    ctx.barrier()

    _inject_fault(spec, me, getattr(ctx, "backend_name", "sim"))

    job.issue(ctx, n)
    ctx.barrier()

    digest = job.digest()
    job.free(ctx)
    ctx.close()
    return {"member": me, "digest": digest}


def run_batched_jobs(ctx, wires: list) -> dict:
    """Run several same-team jobs as **one superstep** on this PE.

    ``wires`` is a list of :meth:`~repro.serve.job.JobSpec.as_wire`
    dicts; the pool only batches fault-free jobs whose specs share a
    batch key (same collective, shape, dtype and root — see
    :meth:`~repro.serve.job.JobSpec.batch_key`).  Every job's payload
    is set up first, then all collectives are issued inside
    ``ctx.superstep()`` so the flush fuses them into (ideally) one
    widened schedule.  Returns ``{"member": me, "digests": [...]}``
    with one digest per job, in ``wires`` order — byte-identical to
    each job's solo :func:`run_collective_job` digest, because the jobs'
    buffers are disjoint and the superstep flush is byte-identical to
    eager execution.
    """
    if len(wires) == 1:
        solo = run_collective_job(ctx, wires[0])
        return {"member": solo["member"], "digests": [solo["digest"]]}
    ctx.init()
    group = getattr(ctx, "default_group", None) or ctx.world_group
    n = len(group)
    me = group.index(ctx.rank)
    jobs = [_JobBuffers(ctx, spec, n, me) for spec in wires]
    ctx.barrier()

    with ctx.superstep():
        for job in jobs:
            job.issue(ctx, n)
    ctx.barrier()

    digests = [job.digest() for job in jobs]
    for job in reversed(jobs):
        job.free(ctx)
    ctx.close()
    return {"member": me, "digests": digests}
