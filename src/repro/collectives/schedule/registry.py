"""Enumeration of every builtin schedule compiler, for the linter.

Each collective front-end compiles calls through a pure, cached
``compile_*`` function; this module knows them all and can instantiate
representative call shapes for each ``(collective, algorithm)`` pair at
a range of PE counts.  ``python -m repro.collectives.schedule`` lints
everything this module yields, which is also what the CI
``schedule-lint`` job and ``tests/collectives/test_schedule_lint.py``
run.

The shapes are chosen to hit the structurally distinct paths of every
compiler: degenerate (one PE, zero elements), power-of-two and
non-power-of-two PE counts, non-zero roots, and — for the vector
collectives — ragged per-PE counts including zero-count PEs.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from .ir import Schedule

__all__ = ["BUILTIN_ALGORITHMS", "builtin_schedules"]

#: Every builtin ``(collective, algorithm)`` pair with a compiler.
BUILTIN_ALGORITHMS: tuple[tuple[str, str], ...] = (
    ("broadcast", "binomial"),
    ("broadcast", "linear"),
    ("broadcast", "ring"),
    ("reduce", "binomial"),
    ("reduce", "linear"),
    ("allreduce", "doubling"),
    ("allreduce", "rabenseifner"),
    ("allreduce", "ring"),
    ("allreduce", "dual-pipelined"),
    ("scan", "hillis-steele"),
    ("scatter", "binomial"),
    ("gather", "binomial"),
    ("allgather", "dissemination"),
    ("allgather", "pat"),
    ("alltoall", "rotated"),
    ("reduce_scatter", "ring"),
    ("reduce_scatter", "pat"),
    ("superstep", "fused"),
)


def _ragged(n_pes: int) -> tuple[tuple[int, ...], tuple[int, ...], int]:
    """A ragged counts/displacements shape with a zero-count PE."""
    counts = tuple(0 if i == n_pes // 2 and n_pes > 1 else (i % 3) + 1
                   for i in range(n_pes))
    disps, off = [], 0
    for c in counts:
        disps.append(off)
        off += c
    return counts, tuple(disps), off


def _shapes_for(collective: str, algorithm: str, n_pes: int,
                nelems: int, itemsize: int) -> Iterator[tuple[str, Schedule]]:
    roots = sorted({0, n_pes - 1, n_pes // 2})
    if collective == "broadcast":
        from ..broadcast import compile_broadcast

        for root in roots:
            for ne in (0, nelems):
                yield (f"root={root} nelems={ne}",
                       compile_broadcast(n_pes, root, ne, 1, itemsize,
                                         algorithm=algorithm))
    elif collective == "reduce":
        from ..reduce import compile_reduce

        for root in roots:
            for ne in (0, nelems):
                yield (f"root={root} nelems={ne}",
                       compile_reduce(n_pes, root, ne, 1, itemsize, "sum",
                                      algorithm=algorithm))
    elif collective == "allreduce":
        from ..allreduce import compile_allreduce

        for ne in (0, nelems):
            yield (f"nelems={ne}",
                   compile_allreduce(n_pes, ne, 1, itemsize, "sum",
                                     algorithm=algorithm))
        if algorithm == "dual-pipelined":
            # Segment counts straddling nelems hit the pipelined
            # wavefront's clamping and idle-round paths.
            for segs in (1, 3, nelems + 1):
                yield (f"nelems={nelems} segments={segs}",
                       compile_allreduce(n_pes, nelems, 1, itemsize, "sum",
                                         algorithm=algorithm,
                                         segments=segs))
    elif collective == "scan":
        from ..scan import compile_scan

        for inclusive in (True, False):
            yield (f"inclusive={inclusive}",
                   compile_scan(n_pes, nelems, 1, itemsize, "sum", inclusive))
    elif collective in ("scatter", "gather"):
        from ..gather import compile_gather
        from ..scatter import compile_scatter

        compiler = compile_scatter if collective == "scatter" else \
            compile_gather
        uniform = tuple([nelems] * n_pes)
        udisp = tuple(i * nelems for i in range(n_pes))
        counts, disps, total = _ragged(n_pes)
        for root in roots:
            yield (f"root={root} uniform",
                   compiler(n_pes, root, uniform, udisp, nelems * n_pes,
                            itemsize))
            yield (f"root={root} ragged",
                   compiler(n_pes, root, counts, disps, total, itemsize))
    elif collective == "allgather":
        from ..extra import compile_allgather, compile_allgather_pat

        uniform = tuple([nelems] * n_pes)
        udisp = tuple(i * nelems for i in range(n_pes))
        counts, disps, total = _ragged(n_pes)
        if algorithm == "pat":
            for segs in (1, 2, 4):
                yield (f"uniform segments={segs}",
                       compile_allgather_pat(n_pes, uniform, udisp,
                                             nelems * n_pes, itemsize, segs))
                yield (f"ragged segments={segs}",
                       compile_allgather_pat(n_pes, counts, disps, total,
                                             itemsize, segs))
        else:
            yield ("uniform", compile_allgather(n_pes, uniform, udisp,
                                                nelems * n_pes, itemsize))
            yield ("ragged", compile_allgather(n_pes, counts, disps, total,
                                               itemsize))
    elif collective == "alltoall":
        from ..extra import compile_alltoall

        for ne in (0, nelems):
            yield (f"nelems_per_pe={ne}",
                   compile_alltoall(n_pes, ne, itemsize))
    elif collective == "reduce_scatter":
        from ..reduce_scatter import compile_reduce_scatter

        uniform = tuple([nelems] * n_pes)
        udisp = tuple(i * nelems for i in range(n_pes))
        counts, disps, total = _ragged(n_pes)
        seg_variants = (1, 2, 4) if algorithm == "pat" else (1,)
        for segs in seg_variants:
            tag = f" segments={segs}" if algorithm == "pat" else ""
            yield (f"uniform{tag}",
                   compile_reduce_scatter(n_pes, uniform, udisp,
                                          nelems * n_pes, itemsize, "sum",
                                          algorithm=algorithm,
                                          segments=segs))
            yield (f"ragged{tag}",
                   compile_reduce_scatter(n_pes, counts, disps, total,
                                          itemsize, "sum",
                                          algorithm=algorithm,
                                          segments=segs))
    elif collective == "superstep":
        from ..allreduce import compile_allreduce
        from ..broadcast import compile_broadcast
        from ..reduce import compile_reduce
        from .fuse import compile_widened, fuse_schedules

        root = n_pes // 2
        # Widened same-shape batches (ragged counts, a zero-count
        # member) for each WIDENABLE algorithm, fused mixed-collective
        # batches, and a widened batch fused with a loose single call —
        # the shapes the superstep flush actually emits.
        widened = compile_widened("allreduce", "doubling", n_pes, 0,
                                  "sum", itemsize, (nelems, 1, 0, nelems))
        yield ("widened allreduce k=4 ragged", widened)
        yield ("widened broadcast k=3",
               compile_widened("broadcast", "binomial", n_pes, root,
                               None, itemsize, (nelems, nelems, 1)))
        yield ("widened reduce k=2",
               compile_widened("reduce", "binomial", n_pes, root, "sum",
                               itemsize, (1, nelems)))
        yield ("fused bcast+reduce+allreduce",
               fuse_schedules((
                   compile_broadcast(n_pes, 0, nelems, 1, itemsize),
                   compile_reduce(n_pes, root, nelems, 1, itemsize,
                                  "sum"),
                   compile_allreduce(n_pes, nelems, 1, itemsize, "sum"),
               )))
        yield ("fused widened+single",
               fuse_schedules((
                   widened,
                   compile_broadcast(n_pes, 0, nelems, 1, itemsize),
               )))
        yield ("fused degenerate+real",
               fuse_schedules((
                   compile_allreduce(n_pes, 0, 1, itemsize, "sum"),
                   compile_allreduce(n_pes, nelems, 1, itemsize, "sum"),
               )))
    else:  # pragma: no cover - registry/compiler drift
        raise ValueError(f"no shape generator for {collective!r}")


def builtin_schedules(
    pe_counts: Sequence[int] = tuple(range(1, 17)),
    nelems: int = 12,
    itemsize: int = 8,
) -> Iterator[tuple[str, Schedule]]:
    """Yield ``(label, schedule)`` for every builtin algorithm and shape.

    Covers every :data:`BUILTIN_ALGORITHMS` pair at each PE count in
    ``pe_counts`` with degenerate, uniform and ragged call shapes.
    """
    for collective, algorithm in BUILTIN_ALGORITHMS:
        for n_pes in pe_counts:
            for desc, sched in _shapes_for(collective, algorithm, n_pes,
                                           nelems, itemsize):
                yield f"{collective}:{algorithm} n_pes={n_pes} {desc}", sched
