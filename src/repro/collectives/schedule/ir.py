"""IR nodes for compiled collective schedules.

A :class:`Schedule` is a pure, immutable description of one collective
call: which buffers it touches and, for every group rank, which
primitive steps it performs in which barrier-delimited stage.  All
nodes are frozen dataclasses built from hashable scalars and tuples, so
schedules can be cached (``lru_cache``), compared and linted without a
runtime context.

Addressing is symbolic: steps name buffers (see :class:`Buffer`) plus a
**byte** offset; the executor binds names to concrete addresses (user
arguments) or allocates them (scratch / private work buffers).  Ranks
are group-relative — the executor maps them through the member tuple,
exactly like the legacy tree walks mapped ``log_part`` through
``members``.

Step semantics (mirroring the legacy inline code they replaced):

* :class:`Put` / :class:`Get` — one-sided strided transfer to/from
  ``peer`` (never self; local movement is :class:`Copy`).
* :class:`Copy` — local strided copy.  ``charged=True`` costs like a
  put-to-self; ``skip_noop=True`` adds the ``local_copy`` guard (no-op
  when empty or src == dst).  ``charged=False`` is the raw
  ``view[:] = view`` used by double-buffered algorithms (simulator
  cost-free by design — the charge is folded into the Reduce that
  follows).
* :class:`Reduce` — fold ``operand`` into ``acc`` with the schedule's
  operator and charge ``charge_elems`` elements of ALU work.
* :class:`Fill` — write the operator identity (exclusive-scan rank 0).
* :class:`Barrier` — team barrier over the whole group.
* :class:`Send` / :class:`Recv` — two-sided mailbox message steps, the
  lowered form :mod:`.mailbox` produces from remote :class:`Put` /
  :class:`Get` steps.  ``Send`` reads ``nelems`` strided elements from
  the local ``src`` buffer and enqueues them for ``peer``; ``Recv``
  blocks until the matching message from ``peer`` arrives and scatters
  it into the local ``dst`` buffer.  Matching is FIFO per (sender,
  receiver) pair with the ``tag`` checked on arrival, so a lowering
  that reorders messages between the same pair is a protocol error the
  linter flags.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator, Union

__all__ = [
    "Buffer",
    "Put",
    "Get",
    "Copy",
    "Reduce",
    "Fill",
    "Send",
    "Recv",
    "Barrier",
    "BARRIER",
    "Step",
    "Stage",
    "Pipeline",
    "RankProgram",
    "Schedule",
    "step_span_bytes",
    "segment_bounds",
]


def segment_bounds(nelems: int, segments: int, k: int) -> tuple[int, int]:
    """Element bounds ``[lo, hi)`` of segment ``k`` of ``segments``.

    The same balanced integer split every compiler uses for payload
    segmentation (mirroring the ``nelems*i//n_pes`` ring/Rabenseifner
    bounds), so pipelined producers and consumers agree on byte ranges
    by construction.
    """
    return nelems * k // segments, nelems * (k + 1) // segments


def step_span_bytes(nelems: int, stride: int, itemsize: int) -> int:
    """Bytes spanned by a strided step access (0 when empty)."""
    if nelems == 0:
        return 0
    return ((nelems - 1) * stride + 1) * itemsize


@dataclass(frozen=True)
class Buffer:
    """One named buffer of a schedule.

    ``kind`` is ``"user"`` (bound to a caller-supplied address),
    ``"scratch"`` (symmetric scratch, allocated by every rank so the
    position-dependent addresses match) or ``"private"`` (local work
    memory).  ``nbytes`` is the extent the schedule may access — an int,
    or a per-rank tuple for user buffers whose contract varies by rank
    (e.g. scatter's ``dest`` holds only that rank's segment).  ``ranks``
    restricts which group ranks hold the buffer (``None`` = all); only
    ``private``/``user`` buffers may be restricted.
    """

    name: str
    kind: str  # "user" | "scratch" | "private"
    nbytes: Union[int, tuple]
    symmetric: bool = False
    ranks: tuple = None  # type: ignore[assignment]

    def nbytes_on(self, rank: int) -> int:
        return self.nbytes[rank] if isinstance(self.nbytes, tuple) else self.nbytes

    def held_by(self, rank: int) -> bool:
        return self.ranks is None or rank in self.ranks


@dataclass(frozen=True)
class Put:
    """One-sided strided put: write ``peer``'s ``dst`` from local ``src``."""

    kind = "put"
    dst: str
    dst_off: int
    src: str
    src_off: int
    nelems: int
    stride: int
    peer: int


@dataclass(frozen=True)
class Get:
    """One-sided strided get: read ``peer``'s ``src`` into local ``dst``."""

    kind = "get"
    dst: str
    dst_off: int
    src: str
    src_off: int
    nelems: int
    stride: int
    peer: int


@dataclass(frozen=True)
class Copy:
    """Local strided copy (see module docstring for the two flags)."""

    kind = "copy"
    dst: str
    dst_off: int
    src: str
    src_off: int
    nelems: int
    stride: int
    charged: bool = True
    skip_noop: bool = True


@dataclass(frozen=True)
class Reduce:
    """``acc = acc OP operand`` elementwise + ``charge_elems`` ALU charge."""

    kind = "reduce"
    acc: str
    acc_off: int
    operand: str
    operand_off: int
    nelems: int
    stride: int
    charge_elems: int


@dataclass(frozen=True)
class Fill:
    """Write the reduction operator's identity element into ``dst``."""

    kind = "fill"
    dst: str
    dst_off: int
    nelems: int
    stride: int


@dataclass(frozen=True)
class Send:
    """Two-sided send: enqueue local ``src`` elements for ``peer``.

    Completes once the message sits in the peer's receive queue (eager
    buffered semantics) — it blocks only on backpressure, never on the
    peer posting its :class:`Recv`.  ``nelems == 0`` sends a payload-free
    control message (the request half of a lowered :class:`Get`).
    """

    kind = "send"
    src: str
    src_off: int
    nelems: int
    stride: int
    peer: int
    tag: int = 0


@dataclass(frozen=True)
class Recv:
    """Two-sided receive: block for ``peer``'s message, scatter to ``dst``.

    Matching is strictly FIFO per (peer, self) pair; ``tag`` is verified
    on arrival.  ``nelems == 0`` consumes a payload-free control message
    without touching ``dst``.
    """

    kind = "recv"
    dst: str
    dst_off: int
    nelems: int
    stride: int
    peer: int
    tag: int = 0


@dataclass(frozen=True)
class Barrier:
    """Team barrier over the full group."""

    kind = "barrier"


#: Shared barrier instance (the node is stateless).
BARRIER = Barrier()

Step = Union[Put, Get, Copy, Reduce, Fill, Send, Recv, Barrier]


@dataclass(frozen=True)
class Stage:
    """One tree stage: its steps run inside a ``stage`` span.

    ``index`` and ``attrs`` feed the span tagging
    (:func:`repro.collectives.common.stage_span`), so metrics fold
    per-stage message counts exactly as they did for the inline walks.
    """

    index: int
    steps: tuple
    attrs: tuple = ()

    def span_attrs(self) -> dict:
        return dict(self.attrs)


@dataclass(frozen=True)
class Pipeline:
    """A software-pipelined stage block: ``segments`` × step groups.

    The payload is split into S = ``segments`` chunks and the work into
    G ordered step ``groups``; ``groups[g][k]`` is the step tuple group
    ``g`` performs on segment ``k``.  Segment ``k`` of group ``g`` may
    proceed as soon as segment ``k`` of group ``g-1`` has delivered, so
    the block lowers to ``G + S - 1`` barrier-separated rounds where
    round ``t`` runs segment ``t - g`` of every group ``g`` with
    ``0 <= t - g < S`` — the classic software-pipeline wavefront.  A
    group that is idle for a rank simply carries empty step tuples; the
    rank still joins every round barrier, which is what keeps the
    lowered schedule deadlock-free.

    Group step tuples must not contain :class:`Barrier` — the lowering
    appends exactly one team barrier per round.  Lowered stages are
    tagged ``("pipeline", index)``, ``("round", t)`` and
    ``("segments", S)`` on top of ``attrs`` so metrics and the span
    tree can fold per-round message counts like any other stage.
    """

    index: int
    segments: int
    groups: tuple  # G entries; groups[g][k] = step tuple for segment k
    attrs: tuple = ()

    @property
    def rounds(self) -> int:
        return len(self.groups) + self.segments - 1 if self.groups else 0

    def lower(self) -> tuple:
        """The equivalent barrier-separated :class:`Stage` tuple."""
        return _lower_pipeline(self)


@lru_cache(maxsize=4096)
def _lower_pipeline(pipe: Pipeline) -> tuple:
    n_groups = len(pipe.groups)
    stages = []
    for t in range(pipe.rounds):
        steps: list = []
        for g in range(max(0, t - pipe.segments + 1),
                       min(t, n_groups - 1) + 1):
            steps.extend(pipe.groups[g][t - g])
        steps.append(BARRIER)
        stages.append(Stage(
            pipe.index + t, tuple(steps),
            attrs=pipe.attrs + (("pipeline", pipe.index), ("round", t),
                                ("segments", pipe.segments))))
    return tuple(stages)


@dataclass(frozen=True)
class RankProgram:
    """Everything one group rank does: prologue, staged steps, epilogue.

    ``stages`` holds :class:`Stage` nodes and/or :class:`Pipeline`
    blocks; consumers that need the flat barrier-separated form
    (executor, evaluator, linter) iterate :meth:`lowered_stages`.

    Prologue/epilogue steps run outside any stage span (entry barriers,
    staging copies, final reorders — the metrics layer counts their
    barriers as ``entry_barriers`` and their remote ops as
    ``extra_messages``, matching the legacy shape).
    """

    rank: int
    prologue: tuple = ()
    stages: tuple = ()
    epilogue: tuple = ()

    def lowered_stages(self) -> Iterator[Stage]:
        """Stages with every :class:`Pipeline` block expanded to rounds."""
        for stage in self.stages:
            if isinstance(stage, Pipeline):
                yield from stage.lower()
            else:
                yield stage

    def all_steps(self) -> Iterator[Step]:
        yield from self.prologue
        for stage in self.lowered_stages():
            yield from stage.steps
        yield from self.epilogue


@dataclass(frozen=True)
class Schedule:
    """A compiled collective: buffers + one :class:`RankProgram` per rank.

    ``deliver`` declares the byte ranges the collective contracts to
    write — tuples ``(rank, buffer, lo, hi)`` — which the linter checks
    are covered by the union of local and incoming remote writes (the
    data-conservation pass).
    """

    collective: str
    algorithm: str
    n_pes: int
    itemsize: int
    root: int = None  # type: ignore[assignment]
    op: str = None  # type: ignore[assignment]
    buffers: tuple = ()
    programs: tuple = ()
    deliver: tuple = ()

    def program(self, rank: int) -> RankProgram:
        prog = self.programs[rank]
        assert prog.rank == rank
        return prog

    def buffer(self, name: str) -> Buffer:
        for buf in self.buffers:
            if buf.name == name:
                return buf
        raise KeyError(name)

    def n_stage_spans(self, rank: int = 0) -> int:
        return sum(1 for _ in self.programs[rank].lowered_stages())

    def describe(self, rank: int = 0) -> str:
        """One-line human summary (used by the lint CLI).

        Pipeline blocks render as ``pipe(G×S→R)`` — ``G`` wavefront
        groups over ``S`` segments lowering to ``R`` rounds — instead
        of disappearing into the flat lowered-stage count.
        """
        parts = []
        for stage in self.programs[rank].stages:
            if isinstance(stage, Pipeline):
                parts.append(f"pipe({len(stage.groups)}x{stage.segments}"
                             f"->{stage.rounds})")
            else:
                parts.append("1")
        shape = "+".join(parts) if parts else "0"
        return (
            f"{self.collective}:{self.algorithm} n_pes={self.n_pes} "
            f"root={self.root} op={self.op} "
            f"stages={self.n_stage_spans(rank)} [{shape}]"
        )
