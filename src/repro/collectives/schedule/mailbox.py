"""Lower one-sided schedules onto the two-sided mailbox transport.

:func:`lower_to_mailbox` rewrites every remote :class:`~.ir.Put` /
:class:`~.ir.Get` step of a compiled schedule into matched
:class:`~.ir.Send` / :class:`~.ir.Recv` pairs, preserving the schedule's
stage/barrier structure (Pipeline blocks are expanded to their lowered
rounds first, keeping the ``("pipeline", i)`` / ``("round", t)`` span
attrs) so the executor, the vec evaluator, the linter and the span
tracer all run the result unmodified.

The rewrite works one *barrier phase* at a time — the steps between two
consecutive barriers, aligned across ranks (barrier counts are
rank-uniform by the linter's deadlock pass).  Within phase ``p``:

* ``Put(peer=q)`` on rank ``r`` becomes ``Send(tag=TAG_PUT)`` in place;
  the matching ``Recv`` is appended to rank ``q``'s phase *tail* (just
  before the phase-ending barrier), ordered by (sender, sender's step
  order) so each (src, dst) pair's FIFO order is consistent by
  construction.
* ``Get(peer=q)`` becomes a request/reply exchange.  All requester
  ranks hoist a payload-free ``Send(tag=TAG_GET_REQ)`` to the phase
  *head*, every rank then joins one extra barrier (inserted only in
  phases containing a Get, and for every rank, so counts stay
  uniform), after which each serving rank runs
  ``Recv(request) + Send(reply)`` pairs ordered by (requester,
  request order) and the requester's in-place ``Recv(tag=TAG_GET_REPLY)``
  collects the payload.

Deadlock freedom follows from the phase ordering: head sends complete
eagerly, the extra barrier guarantees every request is enqueued before
any server blocks on it, serving pairs precede all in-place blocking
receives, and tail receives wait only on in-place sends — a strict
happens-before chain with no cycles.  Zero-element puts/gets are
dropped outright (they move no data on the one-sided path either).

The per-PE receive-queue depth must cover a phase's worst-case fan-in;
:func:`max_fan_in` reports the floor for a schedule so callers can size
:class:`~repro.params.MailboxParams.recv_depth`.
"""

from __future__ import annotations

from functools import lru_cache

from .ir import (
    BARRIER,
    Pipeline,
    RankProgram,
    Recv,
    Schedule,
    Send,
    Stage,
)

__all__ = ["lower_to_mailbox", "max_fan_in",
           "TAG_PUT", "TAG_GET_REQ", "TAG_GET_REPLY"]

#: Message-tag protocol of the lowering (checked at every matched recv).
TAG_PUT = 0
TAG_GET_REQ = 1
TAG_GET_REPLY = 2


def _units(prog: RankProgram) -> list[tuple[str, Stage | None, list]]:
    """The program as editable units: prologue, stages (pipelines
    expanded), epilogue."""
    units: list[tuple[str, Stage | None, list]] = [
        ("prologue", None, list(prog.prologue))
    ]
    for stage in prog.stages:
        if isinstance(stage, Pipeline):
            for lowered in stage.lower():
                units.append(("stage", lowered, list(lowered.steps)))
        else:
            units.append(("stage", stage, list(stage.steps)))
    units.append(("epilogue", None, list(prog.epilogue)))
    return units


@lru_cache(maxsize=256)
def lower_to_mailbox(sched: Schedule) -> Schedule:
    """The mailbox-transport equivalent of ``sched`` (pure, cached)."""
    n = sched.n_pes
    units = [_units(sched.program(r)) for r in range(n)]
    # Flat step positions and barrier positions per rank.
    flat: list[list[tuple[int, int]]] = [[] for _ in range(n)]
    bar_pos: list[list[tuple[int, int]]] = [[] for _ in range(n)]
    for r in range(n):
        for u, (_, _, steps) in enumerate(units[r]):
            for i, step in enumerate(steps):
                flat[r].append((u, i))
                if step.kind == "barrier":
                    bar_pos[r].append((u, i))
    n_bars = len(bar_pos[0])
    if any(len(b) != n_bars for b in bar_pos):
        raise ValueError(
            f"{sched.collective}:{sched.algorithm} has rank-divergent "
            "barrier counts; lint the schedule before lowering"
        )

    # Rewrite maps per rank: steps inserted *before* a position, full
    # replacements for a position, and appends at end of program.
    before: list[dict] = [{} for _ in range(n)]
    replace: list[dict] = [{} for _ in range(n)]
    tail: list[list] = [[] for _ in range(n)]

    def region(r: int, k: int) -> list[tuple[int, int]]:
        lo = flat[r].index(bar_pos[r][k - 1]) + 1 if k else 0
        hi = (flat[r].index(bar_pos[r][k]) if k < n_bars
              else len(flat[r]))
        return flat[r][lo:hi]

    def step_at(r: int, pos: tuple[int, int]):
        u, i = pos
        return units[r][u][2][i]

    for k in range(n_bars + 1):
        regions = [region(r, k) for r in range(n)]
        head: list[list] = [[] for _ in range(n)]   # hoisted requests
        serve: list[list] = [[] for _ in range(n)]  # (requester, get) pairs
        endq: list[list] = [[] for _ in range(n)]   # tail put-receives
        split = False
        for r in range(n):
            for pos in regions[r]:
                step = step_at(r, pos)
                kind = step.kind
                if kind not in ("put", "get"):
                    continue
                assert step.peer != r, "remote step targeting self"
                if step.nelems == 0:
                    replace[r][pos] = []
                    continue
                if kind == "put":
                    replace[r][pos] = [Send(
                        step.src, step.src_off, step.nelems, step.stride,
                        step.peer, TAG_PUT)]
                    endq[step.peer].append(Recv(
                        step.dst, step.dst_off, step.nelems, step.stride,
                        r, TAG_PUT))
                else:
                    split = True
                    replace[r][pos] = [Recv(
                        step.dst, step.dst_off, step.nelems, step.stride,
                        step.peer, TAG_GET_REPLY)]
                    head[r].append(Send(
                        step.dst, step.dst_off, 0, 1, step.peer,
                        TAG_GET_REQ))
                    serve[step.peer].append((r, step))
        if not split and not any(endq):
            continue
        for r in range(n):
            start = list(head[r])
            if split:
                start.append(BARRIER)
                for requester, g in serve[r]:
                    start.append(Recv(g.src, g.src_off, 0, 1, requester,
                                      TAG_GET_REQ))
                    start.append(Send(g.src, g.src_off, g.nelems,
                                      g.stride, requester, TAG_GET_REPLY))
            if regions[r]:
                start_pos = regions[r][0]
            elif k < n_bars:
                start_pos = bar_pos[r][k]
            else:
                start_pos = None
            if start:
                if start_pos is None:
                    tail[r].extend(start)
                else:
                    before[r].setdefault(start_pos, []).extend(start)
            if endq[r]:
                if k < n_bars:
                    before[r].setdefault(bar_pos[r][k], []).extend(endq[r])
                else:
                    tail[r].extend(endq[r])

    programs = []
    for r in range(n):
        rebuilt: list[list] = []
        for u, (_, _, steps) in enumerate(units[r]):
            out: list = []
            for i, step in enumerate(steps):
                out.extend(before[r].get((u, i), ()))
                out.extend(replace[r].get((u, i), (step,)))
            rebuilt.append(out)
        rebuilt[-1].extend(tail[r])
        stages = tuple(
            Stage(stage.index, tuple(rebuilt[u]), attrs=stage.attrs)
            for u, (ukind, stage, _) in enumerate(units[r])
            if ukind == "stage"
        )
        programs.append(RankProgram(
            rank=r,
            prologue=tuple(rebuilt[0]),
            stages=stages,
            epilogue=tuple(rebuilt[-1]),
        ))
    return Schedule(
        collective=sched.collective,
        algorithm=sched.algorithm + "+mailbox",
        n_pes=n,
        itemsize=sched.itemsize,
        root=sched.root,
        op=sched.op,
        buffers=sched.buffers,
        programs=tuple(programs),
        deliver=sched.deliver,
    )


def max_fan_in(sched: Schedule) -> int:
    """Worst-case receive-queue occupancy a lowered ``sched`` can reach.

    Upper bound: a message sent in barrier phase ``p`` is matched in
    phase ``p`` (put payloads, replies) or ``p+1`` (hoisted requests),
    so a rank's queue during phase ``p`` never holds more than the
    messages addressed to it in phases ``p-1`` and ``p`` combined.  The
    mailbox ``recv_depth`` must be at least this bound to guarantee the
    schedule runs without exhausting backpressure retries.
    """
    from collections import Counter

    incoming: Counter = Counter()  # (dst, phase) -> send count
    max_phase = 0
    for r in range(sched.n_pes):
        phase = 0
        for step in sched.program(r).all_steps():
            if step.kind == "barrier":
                phase += 1
            elif step.kind == "send":
                incoming[(step.peer, phase)] += 1
        max_phase = max(max_phase, phase)
    return max(
        (incoming[(d, p)] + incoming[(d, p - 1)]
         for d in range(sched.n_pes) for p in range(max_phase + 1)),
        default=0,
    )
