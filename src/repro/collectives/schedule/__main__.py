"""Lint every builtin schedule: ``python -m repro.collectives.schedule``.

Compiles every ``(collective, algorithm)`` pair in the registry across
1–16 PEs (degenerate, uniform and ragged call shapes) and runs the
static linter over each schedule.  Exits non-zero if any schedule has a
lint issue — CI runs this as the ``schedule-lint`` job.
"""

from __future__ import annotations

import argparse
import sys

from .lint import lint_fused_schedule, lint_schedule
from .registry import builtin_schedules


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.collectives.schedule",
        description="statically lint every builtin collective schedule",
    )
    parser.add_argument("--max-pes", type=int, default=16,
                        help="largest PE count to compile (default 16)")
    parser.add_argument("--nelems", type=int, default=12,
                        help="elements per PE for non-degenerate shapes")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="print every schedule checked, not just totals")
    args = parser.parse_args(argv)

    checked = 0
    failures = 0
    for label, sched in builtin_schedules(
            pe_counts=tuple(range(1, args.max_pes + 1)), nelems=args.nelems):
        fused = sched.collective == "superstep" and \
            sched.algorithm == "fused"
        issues = lint_fused_schedule(sched) if fused else \
            lint_schedule(sched)
        checked += 1
        if issues:
            failures += 1
            print(f"FAIL {label}")
            for issue in issues:
                print(f"  {issue}")
        elif args.verbose:
            print(f"ok   {label}")
    status = "FAILED" if failures else "clean"
    print(f"schedule-lint: {checked} schedules checked, "
          f"{failures} with issues ({status})")
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
