"""Vectorized schedule evaluator: run a compiled :class:`~.ir.Schedule`
over *all* ranks at once with numpy batch operations.

The simulator (:mod:`repro.sim.engine`) interprets one rank per green
thread and costs every memory access through the stateful cache/TLB
models — exact, but linear in PEs *and* in per-rank work, which caps it
around a few hundred PEs.  This module evaluates the same IR as data
parallel batches over a dense per-rank memory matrix, producing both
the collective *outputs* and per-rank *makespans* for 1k-64k PEs in
milliseconds:

* **Data** is exact: every Put/Get/Copy/Reduce/Fill/Send/Recv of a
  barrier segment is grouped by ``(segment, step index, kind, shape)``
  and applied as one fancy-indexed gather/scatter over the rank axis.
  Mailbox-lowered schedules batch too: sends deposit their payloads
  into per-(src, dst) FIFOs (costed through the same LogGP network
  plus the postoffice routing charge), recvs pop and verify tags.
  Gathers materialise before scatters land, so the result is the
  sequentially-consistent value for every schedule the linter accepts
  (no intra-segment write hazards).  The conformance suite asserts the
  outputs byte-identical against the simulator and the multiprocessing
  backend.
* **Time** is modelled: per-lane costs mirror the transfer engine's
  formulas (loop overhead, OLB lookup, LogGP network with injection
  links / fabric channels / node buses) but replace the stateful
  cache/TLB walk with a closed form (:class:`CostModel`) using
  page-granular warmth.  Makespans therefore *track* the simulator's
  ``ns`` within a pinned tolerance rather than matching it exactly.

Entry points:

* :func:`evaluate_schedule` — standalone: lay out a compact arena,
  seed the inputs, evaluate, return a :class:`ScheduleEvaluation`.
  This is the 1k-64k PE path (no threads, no topology graph).
* :func:`evaluate_group` — the shared core, also driven by the ``vec``
  backend's rendezvous hook (:mod:`repro.backends.vec`) so schedules
  compose with the full runtime (teams, nested collectives, raw ops).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from math import ceil, log2
from typing import Mapping, Sequence

import numpy as np

from ...errors import SimulationError
from ...params import MachineConfig
from ...sim.trace import SimStats
from ..ops import apply_op, identity_of
from .ir import Schedule, step_span_bytes

__all__ = [
    "CostModel",
    "LiteNetwork",
    "ScheduleEvaluation",
    "evaluate_group",
    "evaluate_schedule",
    "world_round_cost_ns",
]

#: xBGAS OLB lookup cost charged per remote operation (matches the
#: simulator's :class:`~repro.isa.olb.ObjectLookasideBuffer` default).
OLB_LOOKUP_NS = 2.0

#: Mirrors of the fabric/bus constants in :mod:`repro.machine.network`.
_FABRIC_NS_PER_MSG = 45.0
_FABRIC_CHANNELS = 2
_HOP_LATENCY_FACTOR = 0.15
_NODE_BUS_NS_PER_MSG = 16.0

#: Transfer-loop instruction constants (see :mod:`repro.runtime.transfer`).
_LOOP_INSTRS = 5
_LOOP_OVERHEAD_INSTRS = 3
_SETUP_INSTRS = 12

#: Largest node count for which a non-analytic topology graph is built.
_MAX_TOPOLOGY_NODES = 4096


class LiteNetwork:
    """The :class:`~repro.machine.network.Network` cost formulas without
    fault injection and — for the fully-connected default — without
    building a topology graph, so 64k-PE machines cost nothing to set
    up.  Same per-message arithmetic: injection links, two fabric
    channels, per-node buses, quiescence horizon.
    """

    def __init__(self, config: MachineConfig, stats: SimStats | None = None):
        self.cfg = config
        self.tp = config.transport
        self.stats = stats if stats is not None else SimStats()
        n_nodes = config.n_nodes
        if config.topology == "fully-connected":
            self._topology = None  # analytic: 1 hop between distinct nodes
        else:
            if n_nodes > _MAX_TOPOLOGY_NODES:
                raise SimulationError(
                    f"topology {config.topology!r} with {n_nodes} nodes is too "
                    f"large to build (limit {_MAX_TOPOLOGY_NODES}); use "
                    "topology='fully-connected' for large-PE evaluation"
                )
            from ...machine.topology import build_topology

            self._topology = build_topology(config.topology, n_nodes)
        self._link_free = [0.0] * n_nodes
        self._bus_free = [0.0] * n_nodes
        self._fabric_free = [0.0] * _FABRIC_CHANNELS
        self.max_delivery = 0.0

    # -- helpers (same formulas as Network) --------------------------------

    def node_of(self, pe: int) -> int:
        return self.cfg.node_of(pe)

    def _wire_latency(self, src_node: int, dst_node: int) -> float:
        if self._topology is None:
            hops = 0 if src_node == dst_node else 1
        else:
            hops = self._topology.hops(src_node, dst_node)
        return self.tp.latency_ns * (1.0 + _HOP_LATENCY_FACTOR * max(0, hops - 1))

    def _cross_fabric(self, t_ready: float, nbytes: float) -> float:
        occ = _FABRIC_NS_PER_MSG + nbytes * self.cfg.fabric_gap_ns_per_byte
        free = self._fabric_free
        ch = 0 if free[0] <= free[1] else 1
        t_enter = t_ready if t_ready > free[ch] else free[ch]
        free[ch] = t_enter + occ
        if t_enter > t_ready:
            self.stats.fabric_queued_ns += t_enter - t_ready
        return t_enter

    def _cross_bus(self, node: int, t_ready: float, nbytes: float) -> float:
        occ = _NODE_BUS_NS_PER_MSG + nbytes * self.tp.intra_gap_ns_per_byte
        free = self._bus_free[node]
        t_enter = t_ready if t_ready > free else free
        self._bus_free[node] = t_enter + occ
        if t_enter > t_ready:
            self.stats.fabric_queued_ns += t_enter - t_ready
        return t_enter

    def _sender_side(self, t_now: float, nbytes: int) -> float:
        tp = self.tp
        ns = tp.o_send + tp.kernel_ns + nbytes * tp.copy_ns_per_byte
        if tp.handshake_ns and nbytes > tp.eager_threshold:
            ns += tp.handshake_ns
        return t_now + ns

    # -- one-way message (put) ---------------------------------------------

    def send(self, t_now: float, src_pe: int, dst_pe: int,
             nbytes: int) -> tuple[float, float]:
        """Cost a one-way payload; returns ``(t_source_free, t_delivered)``."""
        tp = self.tp
        self.stats.messages += 1
        self.stats.bytes_on_wire += nbytes
        src_node, dst_node = self.node_of(src_pe), self.node_of(dst_pe)
        if src_node == dst_node:
            t_ready = (t_now + tp.o_send + tp.kernel_ns
                       + nbytes * tp.copy_ns_per_byte)
            if tp.handshake_ns and nbytes > tp.eager_threshold:
                t_ready += tp.handshake_ns
            t_enter = self._cross_bus(src_node, t_ready, nbytes)
            t_del = (t_enter + tp.intra_latency_ns
                     + nbytes * tp.intra_gap_ns_per_byte)
            if tp.two_sided:
                t_del += tp.o_recv + nbytes * tp.copy_ns_per_byte
            if t_del > self.max_delivery:
                self.max_delivery = t_del
            return (max(t_ready, t_enter), t_del)
        t_ready = self._sender_side(t_now, nbytes)
        t_inj_done = (max(t_ready, self._link_free[src_node])
                      + nbytes * tp.inj_ns_per_byte)
        self._link_free[src_node] = t_inj_done
        t_enter = self._cross_fabric(t_inj_done, nbytes)
        t_del = (t_enter + self._wire_latency(src_node, dst_node)
                 + nbytes * tp.gap_ns_per_byte)
        if tp.two_sided:
            t_del += tp.o_recv + nbytes * tp.copy_ns_per_byte
        if t_del > self.max_delivery:
            self.max_delivery = t_del
        return (max(t_ready, t_enter), t_del)

    # -- round trip (get) --------------------------------------------------

    def fetch(self, t_now: float, src_pe: int, dst_pe: int,
              nbytes: int) -> float:
        """Cost a one-sided read; returns ``t_complete``."""
        tp = self.tp
        src_node, dst_node = self.node_of(src_pe), self.node_of(dst_pe)
        self.stats.messages += 2
        self.stats.bytes_on_wire += nbytes + 16
        if src_node == dst_node:
            t_ready = t_now + tp.o_send + tp.kernel_ns
            t_req = self._cross_bus(src_node, t_ready, 16)
            t_arrive = t_req + tp.intra_latency_ns
            if tp.two_sided:
                t_arrive += tp.o_recv + tp.kernel_ns
            t_rsp = self._cross_bus(src_node, t_arrive, nbytes)
            t = (t_rsp + tp.intra_latency_ns
                 + nbytes * tp.intra_gap_ns_per_byte)
            if tp.two_sided:
                t += nbytes * tp.copy_ns_per_byte
            if t > self.max_delivery:
                self.max_delivery = t
            return t
        t_ready = self._sender_side(t_now, 16)
        t_req = (max(t_ready, self._link_free[src_node])
                 + 16 * tp.inj_ns_per_byte)
        self._link_free[src_node] = t_req
        t_enter = self._cross_fabric(t_req, 16)
        t_arrive = t_enter + self._wire_latency(src_node, dst_node)
        if tp.two_sided:
            t_arrive += tp.o_recv + tp.kernel_ns
        t_rsp = (max(t_arrive, self._link_free[dst_node])
                 + nbytes * tp.inj_ns_per_byte)
        self._link_free[dst_node] = t_rsp
        t_enter2 = self._cross_fabric(t_rsp, nbytes)
        t_done = (t_enter2 + self._wire_latency(dst_node, src_node)
                  + nbytes * tp.gap_ns_per_byte)
        if tp.two_sided:
            t_done += nbytes * tp.copy_ns_per_byte
        if t_done > self.max_delivery:
            self.max_delivery = t_done
        return t_done

    # -- mailbox support ---------------------------------------------------

    def route_hops(self, src_node: int, dst_node: int) -> int:
        """Node hop count for the mailbox postoffice routing charge."""
        if src_node == dst_node:
            return 0
        if self._topology is None:
            return 1
        return self._topology.hops(src_node, dst_node)

    # -- barrier support ---------------------------------------------------

    def quiescence_time(self) -> float:
        return self.max_delivery

    def note_delivery(self, t: float) -> None:
        if t > self.max_delivery:
            self.max_delivery = t


class CostModel:
    """Closed-form memory cost with page-granular warmth tracking.

    The simulator walks a stateful L1/L2/TLB per access; that walk is
    the single hottest loop and is inherently sequential.  Here each
    (rank, 4 KiB page) pair carries one "touched" bit: the first access
    whose span starts on an untouched page is costed cold (DRAM stream
    + TLB walks), later accesses are costed by where the span fits in
    the cache hierarchy.  All formulas vectorise over a lane's address
    array, so a 4096-lane stage costs one numpy expression.
    """

    def __init__(self, config: MachineConfig, n_rows: int, mem_bytes: int):
        self.cfg = config
        m = config.mem
        self._line_bytes = m.l1.line_bytes
        self._line_shift = m.l1.line_bytes.bit_length() - 1
        self._page_shift = m.tlb.page_bytes.bit_length() - 1
        self._l1_ns = m.l1.hit_ns
        self._l2_ns = m.l2.hit_ns
        self._dram_ns = m.dram_ns
        self._stream_ns = m.dram_stream_ns
        self._walk_ns = m.tlb.walk_ns
        self._l1_bytes = m.l1.size_bytes
        self._l2_bytes = m.l2.size_bytes
        n_pages = -(-mem_bytes // m.tlb.page_bytes)
        self._touched = np.zeros((n_rows, max(n_pages, 1)), dtype=bool)
        self._loop_ns_cache: dict[int, float] = {}

    def loop_overhead_ns(self, nelems: int) -> float:
        """Same memoized formula as the transfer engine (section 3.3)."""
        ns = self._loop_ns_cache.get(nelems)
        if ns is not None:
            return ns
        if nelems <= 0:
            ns = 0.0
        else:
            cfg = self.cfg
            if nelems > cfg.unroll_threshold:
                per_elem = (_LOOP_INSTRS - _LOOP_OVERHEAD_INSTRS) + (
                    _LOOP_OVERHEAD_INSTRS / cfg.unroll_factor
                )
            else:
                per_elem = float(_LOOP_INSTRS)
            ns = (_SETUP_INSTRS + per_elem * nelems) * cfg.cycle_ns
        self._loop_ns_cache[nelems] = ns
        return ns

    def _mark(self, rows: np.ndarray, first_page: np.ndarray,
              pages: np.ndarray) -> None:
        touched = self._touched
        for k in range(int(pages.max())):
            m = pages > k
            touched[rows[m], first_page[m] + k] = True

    def range_ns(self, rows: np.ndarray, addrs: np.ndarray, span: int,
                 use_tlb: bool = True) -> np.ndarray:
        """Per-lane ns for a dense sweep of ``span`` bytes at ``addrs``."""
        if span <= 0:
            return np.zeros(len(rows))
        last = addrs + (span - 1)
        lines = (last >> self._line_shift) - (addrs >> self._line_shift) + 1
        first_page = addrs >> self._page_shift
        pages = (last >> self._page_shift) - first_page + 1
        warm = self._touched[rows, first_page]
        cold = lines * (self._l1_ns + self._l2_ns + self._stream_ns)
        if use_tlb:
            cold = cold + pages * self._walk_ns
        if span <= self._l1_bytes:
            warm_per_line = self._l1_ns
        elif span <= self._l2_bytes:
            warm_per_line = self._l1_ns + self._l2_ns
        else:
            warm_per_line = self._l1_ns + self._l2_ns + self._stream_ns
        ns = np.where(warm, lines * warm_per_line, cold)
        self._mark(rows, first_page, pages)
        return ns

    def strided_ns(self, rows: np.ndarray, addrs: np.ndarray, nelems: int,
                   elem_bytes: int, stride: int,
                   use_tlb: bool = True) -> np.ndarray:
        """Per-lane ns for a strided access (put/get side cost)."""
        if nelems <= 0:
            return np.zeros(len(rows))
        step = elem_bytes * max(stride, 1)
        span = (nelems - 1) * step + elem_bytes
        if step <= self._line_bytes:
            return self.range_ns(rows, addrs, span, use_tlb)
        # Sparse: one line (and, cold, one DRAM access) per element.
        last = addrs + (span - 1)
        first_page = addrs >> self._page_shift
        pages = (last >> self._page_shift) - first_page + 1
        warm = self._touched[rows, first_page]
        cold = nelems * (self._l1_ns + self._l2_ns + self._dram_ns)
        if use_tlb:
            cold = cold + pages * self._walk_ns
        ns = np.where(warm, nelems * self._l1_ns, cold)
        self._mark(rows, first_page, pages)
        return ns

    def strided_ns_one(self, row: int, addr: int, nelems: int,
                       elem_bytes: int, stride: int,
                       use_tlb: bool = True) -> float:
        """Scalar convenience for the vec backend's raw put/get/amo."""
        return float(self.strided_ns(
            np.array([row]), np.array([addr]), nelems, elem_bytes, stride,
            use_tlb,
        )[0])


def world_round_cost_ns(config: MachineConfig) -> float:
    """One dissemination-barrier round over the full world (the same
    formula as :meth:`~repro.runtime.barrier.BarrierController.round_cost_ns`)."""
    tp = config.transport
    lat = tp.intra_latency_ns if config.n_nodes <= 1 else tp.latency_ns
    return tp.o_send + tp.kernel_ns + lat + 8 * tp.gap_ns_per_byte


# -- batched data movement ----------------------------------------------------


def _gather(mem, mview, rows, addrs, nelems: int, stride: int,
            dtype: np.dtype) -> np.ndarray:
    """Materialise ``(len(rows), nelems)`` strided values (always a copy)."""
    b = dtype.itemsize
    if mview is not None and not np.any(addrs % b):
        idx = ((addrs // b)[:, None]
               + np.arange(nelems, dtype=np.int64)[None, :] * stride)
        return mview[rows[:, None], idx]
    step = b * stride
    bidx = (addrs[:, None, None]
            + np.arange(nelems, dtype=np.int64)[None, :, None] * step
            + np.arange(b, dtype=np.int64)[None, None, :])
    raw = mem[rows[:, None, None], bidx]
    return np.ascontiguousarray(raw).reshape(len(rows), nelems * b).view(dtype)


def _scatter(mem, mview, rows, addrs, nelems: int, stride: int,
             dtype: np.dtype, vals: np.ndarray) -> None:
    """Write ``(len(rows), nelems)`` values at strided addresses."""
    b = dtype.itemsize
    if mview is not None and not np.any(addrs % b):
        idx = ((addrs // b)[:, None]
               + np.arange(nelems, dtype=np.int64)[None, :] * stride)
        mview[rows[:, None], idx] = vals
        return
    step = b * stride
    bidx = (addrs[:, None, None]
            + np.arange(nelems, dtype=np.int64)[None, :, None] * step
            + np.arange(b, dtype=np.int64)[None, None, :])
    mem[rows[:, None, None], bidx] = (
        np.ascontiguousarray(vals).view(np.uint8).reshape(len(rows), nelems, b)
    )


# -- group compilation --------------------------------------------------------


def _collect_groups(sched: Schedule, addrs_per_rank: Sequence[Mapping[str, int]],
                    n_ranks: int) -> tuple[dict, int]:
    """Flatten every rank's program into ``(segment, idx)``-keyed lane
    groups.  A *segment* is the run of steps between two barriers; the
    linter guarantees every rank agrees on the barrier count, which this
    re-checks (it is the property batch evaluation rests on)."""
    groups: dict[tuple, list] = {}
    n_barriers = -1
    for g in range(n_ranks):
        addrs = addrs_per_rank[g]
        seg = 0
        idx = 0
        for step in sched.program(g).all_steps():
            kind = step.kind
            if kind == "barrier":
                seg += 1
                idx = 0
                continue
            if kind == "put" or kind == "get":
                key = (seg, idx, kind, step.nelems, step.stride)
                lane = (g, addrs[step.dst] + step.dst_off,
                        addrs[step.src] + step.src_off, step.peer)
            elif kind == "copy":
                key = (seg, idx, kind, step.nelems, step.stride,
                       step.charged, step.skip_noop)
                lane = (g, addrs[step.dst] + step.dst_off,
                        addrs[step.src] + step.src_off)
            elif kind == "reduce":
                key = (seg, idx, kind, step.nelems, step.stride,
                       step.charge_elems)
                lane = (g, addrs[step.acc] + step.acc_off,
                        addrs[step.operand] + step.operand_off)
            elif kind == "fill":
                key = (seg, idx, kind, step.nelems, step.stride)
                lane = (g, addrs[step.dst] + step.dst_off)
            elif kind == "send":
                key = (seg, idx, kind, step.nelems, step.stride, step.tag)
                lane = (g, addrs[step.src] + step.src_off, step.peer)
            elif kind == "recv":
                key = (seg, idx, kind, step.nelems, step.stride, step.tag)
                lane = (g, addrs[step.dst] + step.dst_off, step.peer)
            else:  # pragma: no cover - compiler bug guard
                raise AssertionError(f"unknown step kind {kind!r}")
            groups.setdefault(key, []).append(lane)
            idx += 1
        if n_barriers < 0:
            n_barriers = seg
        elif seg != n_barriers:
            raise SimulationError(
                f"schedule {sched.collective}:{sched.algorithm} rank {g} has "
                f"{seg} barriers, rank 0 has {n_barriers} — cannot batch"
            )
    return groups, n_barriers


# -- the core evaluator -------------------------------------------------------


def evaluate_group(
    mem: np.ndarray | None,
    rows: np.ndarray,
    world_pes: np.ndarray,
    addrs_per_rank: Sequence[Mapping[str, int]],
    sched: Schedule,
    dtype: np.dtype,
    start: np.ndarray,
    net,
    round_cost_ns: float,
    cost: CostModel,
    stats: SimStats,
) -> np.ndarray:
    """Evaluate ``sched`` for one participant group in a single pass.

    ``mem`` is the dense ``(total_rows, width)`` uint8 matrix (``None``
    skips data movement — makespans only); ``rows[g]`` is group rank
    ``g``'s row, ``world_pes[g]`` its PE id for network/node purposes,
    ``addrs_per_rank[g]`` its buffer-name → absolute-address map and
    ``start[g]`` its entry clock.  Returns the per-group-rank exit
    clocks; ``net``/``cost``/``stats`` are shared, so successive calls
    compose (nested collectives, warm caches, quiescence).
    """
    K = len(rows)
    rows = np.asarray(rows, dtype=np.int64)
    world = np.asarray(world_pes, dtype=np.int64)
    t = np.asarray(start, dtype=np.float64).copy()
    b = dtype.itemsize
    mview = None
    if mem is not None and mem.shape[1] % b == 0:
        mview = mem.view(dtype)
    groups, n_barriers = _collect_groups(sched, addrs_per_rank, K)
    order = sorted(groups)
    cursor = 0
    cycle_ns = sched_cycle = cost.cfg.cycle_ns
    rounds = ceil(log2(K)) if K > 1 else 0
    mbx = cost.cfg.mailbox
    # In-flight mailbox messages: (src, dst) group-rank pair -> FIFO of
    # (tag, nelems, payload, t_avail).  Persists across segments (hoisted
    # get-requests are matched one barrier later).
    pending: dict[tuple[int, int], deque] = {}
    for seg in range(n_barriers + 1):
        seg_keys = []
        while cursor < len(order) and order[cursor][0] == seg:
            seg_keys.append(order[cursor])
            cursor += 1
        # Execute the segment's groups in dataflow order: each rank's
        # groups run in its program (step-index) order — cross-rank
        # hazards are forbidden by the linter, but same-rank
        # write-then-read within a segment (get-into-scratch feeding a
        # reduce, recv feeding a reduce) is real sequencing.  A recv
        # group additionally waits until every lane's (src, dst) FIFO
        # holds its message, which may be deposited by a send group at a
        # *higher* step index on another rank; the fixpoint scan below
        # resolves those forward dependencies exactly as the concurrent
        # per-PE machine does.
        def _run_group(key: tuple) -> None:
            lanes = groups[key]
            kind, e, s = key[2], key[3], key[4]
            if kind == "put" or kind == "get":
                g = np.fromiter((l[0] for l in lanes), np.int64, len(lanes))
                dst = np.fromiter((l[1] for l in lanes), np.int64, len(lanes))
                src = np.fromiter((l[2] for l in lanes), np.int64, len(lanes))
                peer = np.fromiter((l[3] for l in lanes), np.int64, len(lanes))
                L = len(g)
                if np.any(peer == g):  # pragma: no cover - compiler bug guard
                    raise AssertionError("put/get to self in schedule")
                nbytes = e * b
                g_rows = rows[g]
                peer_rows = rows[peer]
                tg = t[g]
                if kind == "put":
                    stats.puts += L
                    if e == 0:
                        return
                    stats.bytes_put += nbytes * L
                    stats.remote_puts += L
                    tg = tg + cost.loop_overhead_ns(e)
                    tg += cost.strided_ns(g_rows, src, e, b, s, use_tlb=True)
                    tg += OLB_LOOKUP_NS
                    wcost = cost.strided_ns(peer_rows, dst, e, b, s,
                                            use_tlb=False)
                    for i in np.lexsort((g, tg)):
                        free, delivered = net.send(
                            tg[i], int(world[g[i]]), int(world[peer[i]]),
                            nbytes)
                        if free > tg[i]:
                            tg[i] = free
                        net.note_delivery(delivered + wcost[i])
                    t[g] = tg
                    if mem is not None:
                        vals = _gather(mem, mview, g_rows, src, e, s, dtype)
                        _scatter(mem, mview, peer_rows, dst, e, s, dtype, vals)
                else:
                    stats.gets += L
                    if e == 0:
                        return
                    stats.bytes_got += nbytes * L
                    stats.remote_gets += L
                    tg = tg + cost.loop_overhead_ns(e)
                    tg += OLB_LOOKUP_NS
                    rcost = cost.strided_ns(peer_rows, src, e, b, s,
                                            use_tlb=False)
                    for i in np.lexsort((g, tg)):
                        done = net.fetch(tg[i], int(world[g[i]]),
                                         int(world[peer[i]]), nbytes)
                        done += rcost[i]
                        if done > tg[i]:
                            tg[i] = done
                    tg += cost.strided_ns(g_rows, dst, e, b, s, use_tlb=True)
                    t[g] = tg
                    if mem is not None:
                        vals = _gather(mem, mview, peer_rows, src, e, s, dtype)
                        _scatter(mem, mview, g_rows, dst, e, s, dtype, vals)
            elif kind == "copy":
                charged, skip_noop = key[5], key[6]
                g = np.fromiter((l[0] for l in lanes), np.int64, len(lanes))
                dst = np.fromiter((l[1] for l in lanes), np.int64, len(lanes))
                src = np.fromiter((l[2] for l in lanes), np.int64, len(lanes))
                if charged and skip_noop:
                    if e == 0:
                        return  # the executor's local_copy guard
                    keep = dst != src
                    g, dst, src = g[keep], dst[keep], src[keep]
                L = len(g)
                if L == 0:
                    return
                g_rows = rows[g]
                if charged:
                    # Costs like a put-to-self in the transfer engine.
                    stats.puts += L
                    if e == 0:
                        return
                    stats.bytes_put += e * b * L
                    tg = t[g] + cost.loop_overhead_ns(e)
                    tg += cost.strided_ns(g_rows, src, e, b, s, use_tlb=True)
                    tg += cost.strided_ns(g_rows, dst, e, b, s, use_tlb=True)
                    t[g] = tg
                if e and mem is not None:
                    vals = _gather(mem, mview, g_rows, src, e, s, dtype)
                    _scatter(mem, mview, g_rows, dst, e, s, dtype, vals)
            elif kind == "reduce":
                charge_elems = key[5]
                g = np.fromiter((l[0] for l in lanes), np.int64, len(lanes))
                acc = np.fromiter((l[1] for l in lanes), np.int64, len(lanes))
                opd = np.fromiter((l[2] for l in lanes), np.int64, len(lanes))
                t[g] += charge_elems * 2.0 * cycle_ns
                if e and mem is not None:
                    g_rows = rows[g]
                    acc_vals = _gather(mem, mview, g_rows, acc, e, s, dtype)
                    opd_vals = _gather(mem, mview, g_rows, opd, e, s, dtype)
                    apply_op(sched.op, acc_vals, opd_vals)
                    _scatter(mem, mview, g_rows, acc, e, s, dtype, acc_vals)
            elif kind == "fill":
                g = np.fromiter((l[0] for l in lanes), np.int64, len(lanes))
                dst = np.fromiter((l[1] for l in lanes), np.int64, len(lanes))
                g_rows = rows[g]
                span = step_span_bytes(e, s, b)
                t[g] += cost.range_ns(g_rows, dst, span, use_tlb=True)
                if e and mem is not None:
                    vals = np.broadcast_to(
                        np.asarray(identity_of(sched.op, dtype)),
                        (len(g), e)).astype(dtype, copy=True)
                    _scatter(mem, mview, g_rows, dst, e, s, dtype, vals)
            elif kind == "send":
                tag = key[5]
                g = np.fromiter((l[0] for l in lanes), np.int64, len(lanes))
                src = np.fromiter((l[1] for l in lanes), np.int64, len(lanes))
                peer = np.fromiter((l[2] for l in lanes), np.int64, len(lanes))
                L = len(g)
                if np.any(peer == g):  # pragma: no cover - compiler bug guard
                    raise AssertionError("send to self in schedule")
                nbytes = e * b
                stats.sends += L
                stats.bytes_sent += nbytes * L
                g_rows = rows[g]
                tg = t[g]
                vals = None
                if e:
                    tg = tg + cost.loop_overhead_ns(e)
                    tg += cost.strided_ns(g_rows, src, e, b, s, use_tlb=True)
                    if mem is not None:
                        vals = _gather(mem, mview, g_rows, src, e, s, dtype)
                wire = nbytes + mbx.header_bytes
                for i in np.lexsort((g, tg)):
                    sp, dp = int(world[g[i]]), int(world[peer[i]])
                    free, delivered = net.send(tg[i], sp, dp, wire)
                    if free > tg[i]:
                        tg[i] = free
                    hops = net.route_hops(net.node_of(sp), net.node_of(dp))
                    t_avail = delivered + mbx.route_ns_per_hop * hops
                    net.note_delivery(t_avail)
                    pending.setdefault(
                        (int(g[i]), int(peer[i])), deque()).append(
                        (tag, e, None if vals is None else vals[i], t_avail))
                t[g] = tg
            elif kind == "recv":
                tag = key[5]
                g = np.fromiter((l[0] for l in lanes), np.int64, len(lanes))
                dst = np.fromiter((l[1] for l in lanes), np.int64, len(lanes))
                peer = np.fromiter((l[2] for l in lanes), np.int64, len(lanes))
                L = len(g)
                stats.recvs += L
                g_rows = rows[g]
                avail = np.empty(L)
                val_rows = []
                for i in range(L):
                    q = pending.get((int(peer[i]), int(g[i])))
                    if not q:
                        raise SimulationError(
                            f"schedule {sched.collective}:{sched.algorithm} "
                            f"rank {int(g[i])} segment {seg}: recv from rank "
                            f"{int(peer[i])} has no matching send — lint "
                            "the schedule's message matching"
                        )
                    mtag, melems, mvals, t_avail = q.popleft()
                    if mtag != tag or melems != e:
                        raise SimulationError(
                            f"schedule {sched.collective}:{sched.algorithm} "
                            f"rank {int(g[i])} segment {seg}: recv(tag={tag},"
                            f" nelems={e}) mismatches the pair-FIFO head "
                            f"(tag={mtag}, nelems={melems})"
                        )
                    avail[i] = t_avail
                    val_rows.append(mvals)
                tg = np.maximum(t[g], avail) + mbx.match_ns
                if e:
                    tg = tg + cost.loop_overhead_ns(e)
                    tg += cost.strided_ns(g_rows, dst, e, b, s, use_tlb=True)
                    if mem is not None:
                        _scatter(mem, mview, g_rows, dst, e, s, dtype,
                                 np.stack(val_rows))
                t[g] = tg
        by_rank: dict[int, list] = {}
        for key in seg_keys:
            for lane in groups[key]:
                by_rank.setdefault(lane[0], []).append(key)
        ptr = dict.fromkeys(by_rank, 0)
        remaining = seg_keys
        while remaining:
            deferred: list = []
            for key in remaining:
                lanes = groups[key]
                ready = all(by_rank[l[0]][ptr[l[0]]] == key for l in lanes)
                if ready and key[2] == "recv":
                    ready = all(pending.get((int(l[2]), int(l[0])))
                                for l in lanes)
                if not ready:
                    deferred.append(key)
                    continue
                _run_group(key)
                for l in groups[key]:
                    ptr[l[0]] += 1
            if len(deferred) == len(remaining):
                raise SimulationError(
                    f"schedule {sched.collective}:{sched.algorithm} "
                    f"segment {seg}: groups {deferred} cannot make "
                    "progress — a recv waits on a send that never "
                    "deposits (batch-evaluation deadlock)"
                )
            remaining = deferred
        if seg < n_barriers:
            stats.barriers += 1
            if K == 1:
                t += round_cost_ns
            else:
                release = max(float(t.max()), net.quiescence_time())
                t[:] = release + rounds * round_cost_ns
    return t


# -- standalone entry ---------------------------------------------------------


def _align64(n: int) -> int:
    return (n + 63) & ~63


@dataclass
class ScheduleEvaluation:
    """Outputs, makespans and counters of one evaluated schedule."""

    schedule: Schedule
    config: MachineConfig
    dtype: np.dtype
    makespans: np.ndarray  # per-rank exit clock, raw model ns
    stats: SimStats
    _mem: np.ndarray | None
    _layout: dict

    @property
    def elapsed_ns(self) -> float:
        """Makespan of the whole collective (max over ranks)."""
        return float(self.makespans.max())

    def buffer(self, name: str, rank: int) -> np.ndarray:
        """The bytes of ``name`` on ``rank``, viewed as the evaluation
        dtype when the extent divides evenly (uint8 otherwise)."""
        if self._mem is None:
            raise SimulationError(
                "evaluate_schedule(collect_data=False) keeps no buffer data"
            )
        base = self._layout[name]
        nb = self.schedule.buffer(name).nbytes_on(rank)
        raw = self._mem[rank, base:base + nb]
        if nb % self.dtype.itemsize == 0:
            return raw.view(self.dtype)
        return raw


def _default_dtype(itemsize: int) -> np.dtype:
    try:
        return np.dtype(f"int{8 * itemsize}")
    except TypeError:
        return np.dtype(np.uint8)


def evaluate_schedule(
    sched: Schedule,
    config: MachineConfig | None = None,
    *,
    dtype: np.dtype | str | None = None,
    inputs: Mapping[str, Sequence] | None = None,
    collect_data: bool = True,
) -> ScheduleEvaluation:
    """Evaluate a compiled schedule for *all* its ranks at once.

    Lays out a compact arena — one 64-byte-aligned slot per schedule
    buffer, identical offsets on every rank (the symmetric-address
    property by construction) — seeds ``inputs`` (mapping buffer name to
    one array per rank, or a 2-D ``(n_pes, k)`` array), evaluates, and
    returns the per-rank outputs and makespans.  ``collect_data=False``
    skips all data movement (cost sweeps at large payloads keep no
    arena).  Rank clocks start at 0, so ``elapsed_ns`` is directly the
    modelled makespan of the collective including its entry barrier.
    """
    n = sched.n_pes
    if config is None:
        config = MachineConfig(n_pes=n)
    elif config.n_pes != n:
        config = config.with_(n_pes=n)
    dt = np.dtype(dtype) if dtype is not None else _default_dtype(sched.itemsize)
    layout: dict[str, int] = {}
    offset = 0
    for buf in sched.buffers:
        layout[buf.name] = offset
        width = max(buf.nbytes_on(r) for r in range(n))
        offset += _align64(max(width, 1))
    width = max(_align64(offset), 64)
    mem = np.zeros((n, width), dtype=np.uint8) if collect_data else None
    if inputs:
        if mem is None:
            raise SimulationError("inputs require collect_data=True")
        for name, per_rank in inputs.items():
            base = layout[name]
            if isinstance(per_rank, np.ndarray) and per_rank.ndim == 2:
                per_rank = list(per_rank)
            for r, row in enumerate(per_rank):
                rb = np.ascontiguousarray(row).reshape(-1).view(np.uint8)
                if base + rb.size > width:  # pragma: no cover - caller bug
                    raise SimulationError(
                        f"input {name!r} rank {r}: {rb.size} bytes exceed "
                        f"the buffer slot"
                    )
                mem[r, base:base + rb.size] = rb
    stats = SimStats()
    net = LiteNetwork(config, stats)
    cost = CostModel(config, n, width)
    addrs = [layout] * n
    ranks = np.arange(n, dtype=np.int64)
    makespans = evaluate_group(
        mem, ranks, ranks, addrs, sched, dt, np.zeros(n), net,
        world_round_cost_ns(config), cost, stats,
    )
    return ScheduleEvaluation(
        schedule=sched, config=config, dtype=dt, makespans=makespans,
        stats=stats, _mem=mem, _layout=layout,
    )
