"""Composing compiled schedules into one fused superstep schedule.

Two transforms turn a superstep's deferred collectives into fewer,
larger executions:

* :func:`compile_widened` merges K same-shape calls of **one**
  collective into a single call over the concatenated payload.  Only
  algorithms whose stage pairings and fold order are independent of
  ``nelems`` are eligible (:data:`WIDENABLE`): binomial broadcast,
  binomial reduce and recursive-doubling allreduce each move/fold the
  *entire* buffer every stage, so running them once at ``sum(counts)``
  elements performs byte-identical arithmetic to K separate runs.
  Segmented algorithms (ring, Rabenseifner, pipelined trees, scan)
  split by total element count and are *not* widenable.
* :func:`fuse_schedules` interleaves N compiled schedules — of
  different collectives, roots or shapes — into one schedule that runs
  them concurrently under **shared barriers**.  Buffers are renamed
  ``r{i}:{name}`` so the address spaces stay disjoint, barrier phases
  are front-aligned (a schedule with fewer phases simply idles through
  the extras), stage slots merge positionally and pipeline blocks of
  identical geometry merge round-for-round.

Both transforms preserve the per-schedule phase mapping monotonically:
two steps that shared a barrier phase still share one, and no two
phases merge, so a fused schedule lints clean whenever its components
do — :func:`~.lint.lint_schedule` plus the fused-specific passes in
``lint_fused_schedule`` verify that mechanically for the registry's
fused family.

Fusion is intentionally strict: any structural surprise (rank-divergent
phase counts, stages not closed by a barrier, mixed reduction
operators) raises :class:`~repro.errors.FusionError`, and the superstep
flush falls back to sequential execution — fusion may only ever be a
performance upgrade, never a semantic change.
"""

from __future__ import annotations

from dataclasses import replace
from functools import lru_cache

from ...errors import FusionError
from .ir import (
    BARRIER,
    Buffer,
    Copy,
    Pipeline,
    RankProgram,
    Schedule,
    Stage,
)

__all__ = ["WIDENABLE", "fuse_schedules", "compile_widened"]

#: ``(collective, algorithm)`` pairs whose fold order does not depend on
#: the element count — the precondition for byte-identical widening.
WIDENABLE = frozenset({
    ("broadcast", "binomial"),
    ("reduce", "binomial"),
    ("allreduce", "doubling"),
})


def _rename_step(step, prefix: str):
    """One step with every buffer reference moved into ``prefix``."""
    kind = step.kind
    if kind == "barrier":
        return step
    if kind == "reduce":
        return replace(step, acc=prefix + step.acc,
                       operand=prefix + step.operand)
    if kind == "fill":
        return replace(step, dst=prefix + step.dst)
    return replace(step, dst=prefix + step.dst, src=prefix + step.src)


def _rename_steps(steps, prefix: str) -> tuple:
    return tuple(_rename_step(s, prefix) for s in steps)


def _split_phases(steps) -> tuple[tuple, tuple]:
    """Barrier-separated ``(chunks, tail)`` of a flat step tuple.

    ``chunks[p]`` holds the steps before the ``p``-th barrier; ``tail``
    is whatever follows the last barrier (possibly everything, when the
    tuple has no barrier at all).
    """
    chunks: list = []
    cur: list = []
    for step in steps:
        if step.kind == "barrier":
            chunks.append(tuple(cur))
            cur = []
        else:
            cur.append(step)
    return tuple(chunks), tuple(cur)


def _slot_signature(slot) -> tuple:
    """Rank-comparable shape of one stage slot."""
    if isinstance(slot, Pipeline):
        return ("pipe", slot.segments, len(slot.groups))
    chunks, tail = _split_phases(slot.steps)
    if tail:
        raise FusionError(
            f"stage {slot.index} does not end with a barrier — cannot "
            "align its phases for fusion")
    return ("stage", len(chunks))


def _structure(sched: Schedule) -> tuple:
    """The schedule's rank-uniform phase structure, or FusionError.

    Fusion interleaves the schedules under shared barriers, so every
    rank of every schedule must agree on how many barrier phases each
    region (prologue, stage slots, epilogue) contributes — otherwise
    some rank would sit at a barrier nobody else reaches.
    """
    ref = None
    for r in range(sched.n_pes):
        prog = sched.programs[r]
        pro_chunks, _ = _split_phases(prog.prologue)
        slots = tuple(_slot_signature(s) for s in prog.stages)
        epi_chunks, _ = _split_phases(prog.epilogue)
        struct = (len(pro_chunks), slots, len(epi_chunks))
        if ref is None:
            ref = struct
        elif struct != ref:
            raise FusionError(
                f"{sched.collective}:{sched.algorithm} rank {r} phase "
                f"structure {struct} differs from rank 0's {ref}")
    assert ref is not None
    return ref


def _merge_phase_region(parts: list, n_phases: int) -> tuple:
    """Front-align the schedules' ``(chunks, tail)`` pairs under shared
    barriers: phase ``p`` holds every schedule's chunk ``p``, and the
    tails (steps after each schedule's own last barrier) run together
    after the final shared barrier."""
    steps: list = []
    for p in range(n_phases):
        for chunks, _tail, prefix in parts:
            if p < len(chunks):
                steps.extend(_rename_steps(chunks[p], prefix))
        steps.append(BARRIER)
    for _chunks, tail, prefix in parts:
        steps.extend(_rename_steps(tail, prefix))
    return tuple(steps)


@lru_cache(maxsize=256)
def fuse_schedules(scheds: tuple) -> Schedule:
    """Interleave compiled schedules into one fused superstep schedule.

    Raises :class:`~repro.errors.FusionError` when the batch cannot be
    fused (the caller then executes sequentially).  The result's
    buffers are renamed ``r{i}:{name}``; bind user buffers with the
    same prefixes.
    """
    if not scheds:
        raise FusionError("nothing to fuse")
    n_pes = scheds[0].n_pes
    itemsize = scheds[0].itemsize
    for s in scheds:
        if s.n_pes != n_pes:
            raise FusionError(
                f"group sizes differ: {s.n_pes} vs {n_pes}")
        if s.itemsize != itemsize:
            raise FusionError(
                f"element sizes differ: {s.itemsize} vs {itemsize}")
    ops = {s.op for s in scheds if s.op is not None}
    if len(ops) > 1:
        raise FusionError(
            f"mixed reduction operators {sorted(ops)} — the executor "
            "applies one operator per schedule")
    structures = [_structure(s) for s in scheds]
    pro_phases = max(st[0] for st in structures)
    epi_phases = max(st[2] for st in structures)
    n_slots = max(len(st[1]) for st in structures)

    # Rank-independent merge plan per fused slot: positional merge when
    # the contributors agree on shape, sequential emission otherwise.
    slot_plans: list = []
    for j in range(n_slots):
        contributors = [(i, structures[i][1][j])
                        for i in range(len(scheds))
                        if j < len(structures[i][1])]
        sigs = {sig for _, sig in contributors}
        if len(sigs) == 1:
            sig = next(iter(sigs))
            slot_plans.append(("merge", sig, [i for i, _ in contributors]))
        else:
            slot_plans.append(("seq", None, contributors))

    buffers = tuple(
        replace(buf, name=f"r{i}:{buf.name}")
        for i, s in enumerate(scheds) for buf in s.buffers
    )
    deliver = tuple(
        (rank, f"r{i}:{name}", lo, hi)
        for i, s in enumerate(scheds) for rank, name, lo, hi in s.deliver
    )

    programs = []
    for r in range(n_pes):
        progs = [s.programs[r] for s in scheds]
        prefixes = [f"r{i}:" for i in range(len(scheds))]
        prologue = _merge_phase_region(
            [(*_split_phases(p.prologue), pre)
             for p, pre in zip(progs, prefixes)], pro_phases)
        built: list = []
        slot_pos = [0] * len(scheds)  # next unconsumed slot per schedule
        idx = 0  # fused stage/pipeline index — advances identically on
        #          every rank, so span structure stays rank-uniform

        def take(i: int):
            slot = progs[i].stages[slot_pos[i]]
            slot_pos[i] += 1
            return slot

        for plan, sig, members in slot_plans:
            if plan == "merge" and sig[0] == "stage":
                n_chunks = sig[1]
                per = [(i, _split_phases(take(i).steps)[0])
                       for i in members]
                steps: list = []
                for c in range(n_chunks):
                    for i, chunks in per:
                        if c < len(chunks):
                            steps.extend(
                                _rename_steps(chunks[c], prefixes[i]))
                    steps.append(BARRIER)
                built.append(Stage(idx, tuple(steps)))
                idx += 1
            elif plan == "merge":
                _, segments, n_groups = sig
                pipes = [(i, take(i)) for i in members]
                groups = []
                for g in range(n_groups):
                    segs = []
                    for k in range(segments):
                        steps = []
                        for i, pipe in pipes:
                            steps.extend(
                                _rename_steps(pipe.groups[g][k],
                                              prefixes[i]))
                        segs.append(tuple(steps))
                    groups.append(tuple(segs))
                built.append(Pipeline(idx, segments, tuple(groups)))
                idx += segments + n_groups - 1
            else:
                for i, _s_sig in members:
                    slot = take(i)
                    if isinstance(slot, Pipeline):
                        groups = tuple(
                            tuple(_rename_steps(steps, prefixes[i])
                                  for steps in group)
                            for group in slot.groups)
                        built.append(replace(slot, index=idx,
                                             groups=groups))
                        idx += slot.rounds
                    else:
                        built.append(Stage(
                            idx, _rename_steps(slot.steps, prefixes[i]),
                            attrs=slot.attrs))
                        idx += 1
        epilogue = _merge_phase_region(
            [(*_split_phases(p.epilogue), pre)
             for p, pre in zip(progs, prefixes)], epi_phases)
        programs.append(RankProgram(r, prologue, tuple(built), epilogue))

    return Schedule(
        collective="superstep", algorithm="fused", n_pes=n_pes,
        itemsize=itemsize, op=ops.pop() if ops else None,
        buffers=buffers, programs=tuple(programs), deliver=deliver,
    )


def _compile_inner(collective: str, algorithm: str, n_pes: int,
                   root: int, op: str, itemsize: int,
                   total: int) -> Schedule:
    if collective == "broadcast":
        from ..broadcast import compile_broadcast

        return compile_broadcast(n_pes, root, total, 1, itemsize,
                                 algorithm=algorithm)
    if collective == "reduce":
        from ..reduce import compile_reduce

        return compile_reduce(n_pes, root, total, 1, itemsize, op,
                              algorithm=algorithm)
    from ..allreduce import compile_allreduce

    return compile_allreduce(n_pes, total, 1, itemsize, op,
                             algorithm=algorithm)


@lru_cache(maxsize=512)
def compile_widened(collective: str, algorithm: str, n_pes: int,
                    root: int, op: str, itemsize: int,
                    counts: tuple) -> Schedule:
    """One schedule that runs K same-shape calls as a single wider call.

    ``counts[j]`` is request ``j``'s element count (stride 1).  The
    inner algorithm runs over the concatenated ``sum(counts)`` elements
    in a staged pair of work buffers: requests copy in at their offsets
    before the entry barrier and copy out after the last one, so the
    per-request ``src{j}``/``dest{j}`` user buffers never constrain the
    core algorithm's layout.  Byte-identity to K separate runs holds
    because every :data:`WIDENABLE` algorithm's pairings and per-element
    fold order are independent of the element count.
    """
    if (collective, algorithm) not in WIDENABLE:
        raise FusionError(
            f"{collective}:{algorithm} is not widenable (its stage "
            "layout depends on the element count)")
    total = sum(counts)
    if total <= 0 or any(c < 0 for c in counts):
        raise FusionError(f"bad widening counts {counts}")
    inner = _compile_inner(collective, algorithm, n_pes, root, op,
                           itemsize, total)
    src_buf = inner.buffer("src")
    dest_buf = inner.buffer("dest")
    receivers = tuple(sorted({rank for rank, name, _lo, _hi
                              in inner.deliver if name == "dest"}))
    rename = {"src": "w:src", "dest": "w:dest"}

    def ren(step):
        kind = step.kind
        if kind == "barrier":
            return step
        if kind == "reduce":
            return replace(step, acc=rename.get(step.acc, step.acc),
                           operand=rename.get(step.operand, step.operand))
        if kind == "fill":
            return replace(step, dst=rename.get(step.dst, step.dst))
        return replace(step, dst=rename.get(step.dst, step.dst),
                       src=rename.get(step.src, step.src))

    def ren_all(steps):
        return tuple(ren(s) for s in steps)

    offsets = []
    off = 0
    for c in counts:
        offsets.append(off * itemsize)
        off += c

    buffers = []
    for j, c in enumerate(counts):
        buffers.append(Buffer(f"src{j}", "user", c * itemsize,
                              ranks=src_buf.ranks))
        buffers.append(Buffer(f"dest{j}", "user", c * itemsize,
                              ranks=dest_buf.ranks))
    # ``w:src`` is only ever read locally by the inner algorithm
    # (every WIDENABLE compiler stages src through scratch or puts from
    # the local copy), so private memory suffices; ``w:dest`` is written
    # remotely by the broadcast tree, hence symmetric scratch.
    buffers.append(Buffer("w:src", "private", total * itemsize,
                          ranks=src_buf.ranks))
    buffers.append(Buffer("w:dest", "scratch", total * itemsize,
                          symmetric=True))
    for buf in inner.buffers:
        if buf.name not in ("src", "dest"):
            buffers.append(buf)

    programs = []
    for r in range(n_pes):
        prog = inner.programs[r]
        staging = tuple(
            Copy("w:src", offsets[j], f"src{j}", 0, c, 1)
            for j, c in enumerate(counts)
            if c and src_buf.held_by(r)
        )
        copyout = tuple(
            Copy(f"dest{j}", 0, "w:dest", offsets[j], c, 1)
            for j, c in enumerate(counts)
            if c and r in receivers
        )
        stages = tuple(
            replace(st, groups=tuple(
                tuple(ren_all(steps) for steps in group)
                for group in st.groups))
            if isinstance(st, Pipeline)
            else replace(st, steps=ren_all(st.steps))
            for st in prog.stages
        )
        programs.append(RankProgram(
            r, staging + ren_all(prog.prologue), stages,
            ren_all(prog.epilogue) + copyout))

    deliver = tuple(
        (r, f"dest{j}", 0, c * itemsize)
        for j, c in enumerate(counts) if c
        for r in receivers
    )
    return Schedule(
        collective=collective, algorithm=f"{algorithm}-widened",
        n_pes=n_pes, itemsize=itemsize, root=inner.root, op=inner.op,
        buffers=tuple(buffers), programs=tuple(programs),
        deliver=deliver,
    )
