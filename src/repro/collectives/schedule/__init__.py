"""Schedule IR for collective communication (the PR 4 refactor).

An *algorithm* no longer walks the binomial tree inline; it **compiles**
``(n_pes, root, counts/displacements, op)`` into a :class:`~.ir.Schedule`
— per-rank lists of stages of primitive steps (:class:`~.ir.Put`,
:class:`~.ir.Get`, :class:`~.ir.Reduce`, :class:`~.ir.Copy`,
:class:`~.ir.Fill`, :class:`~.ir.Barrier`) — and a single executor
(:func:`~.executor.execute_schedule`) runs the schedule over the runtime
context.  Blocking, non-blocking and fault-resilient execution all drive
the same compiled schedule: non-blocking collectives compile at
initiation and execute at ``wait()``; resilient collectives recompile
over the survivor group after a failure.

Compilation is pure and cached (``functools.lru_cache``): every PE of a
call compiles once per argument shape and shares the result.

:mod:`~.lint` provides a static checker over any compiled schedule
(deadlock freedom, matched put/get pairs, buffer-range overlap within a
barrier phase, data conservation); :mod:`~.registry` enumerates every
builtin algorithm so CI can lint them all (``python -m
repro.collectives.schedule``).
"""

from .ir import (
    BARRIER,
    Barrier,
    Buffer,
    Copy,
    Fill,
    Get,
    Put,
    RankProgram,
    Recv,
    Reduce,
    Schedule,
    Send,
    Stage,
)
from .executor import PreparedCollective, execute_schedule
from .lint import LintIssue, lint_schedule
from .mailbox import lower_to_mailbox, max_fan_in

__all__ = [
    "BARRIER",
    "Barrier",
    "Buffer",
    "Copy",
    "Fill",
    "Get",
    "Put",
    "RankProgram",
    "Recv",
    "Reduce",
    "Schedule",
    "Send",
    "Stage",
    "PreparedCollective",
    "execute_schedule",
    "LintIssue",
    "lint_schedule",
    "lower_to_mailbox",
    "max_fan_in",
]
