"""The single executor that runs any compiled :class:`~.ir.Schedule`.

``execute_schedule`` replays one rank's :class:`~.ir.RankProgram` over
the runtime context: it allocates the schedule's scratch/private
buffers (in declaration order, so the position-dependent symmetric
addresses match on every rank), runs the prologue, each stage inside a
``stage`` span, and the epilogue, then frees LIFO — exception-safe, so
a resilient retry restarts from a clean scratch stack exactly as the
legacy ``scratch_buffers`` context managers guaranteed.

:class:`PreparedCollective` is the compiled form of one *call*: the
schedule plus the call's bound addresses, span attributes and stats
key.  Blocking collectives prepare and run immediately; non-blocking
ones prepare at initiation and run at ``wait()``; resilient wrappers
prepare again over each survivor group.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping

import numpy as np

from ..common import charge_elementwise, collective_span, stage_span
from ..ops import apply_op, identity_of
from .ir import Schedule, step_span_bytes

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...runtime.context import XBRTime

__all__ = ["execute_schedule", "PreparedCollective"]


def _run_steps(ctx: "XBRTime", steps, addrs, members, dtype, op, views) -> None:
    """Run a flat step tuple.  Hot path: dispatch on ``step.kind``."""
    rank = ctx.rank
    for step in steps:
        kind = step.kind
        if kind == "barrier":
            ctx.barrier_team(members)
        elif kind == "put":
            ctx.put(addrs[step.dst] + step.dst_off,
                    addrs[step.src] + step.src_off,
                    step.nelems, step.stride, members[step.peer], dtype)
        elif kind == "get":
            ctx.get(addrs[step.dst] + step.dst_off,
                    addrs[step.src] + step.src_off,
                    step.nelems, step.stride, members[step.peer], dtype)
        elif kind == "copy":
            dst = addrs[step.dst] + step.dst_off
            src = addrs[step.src] + step.src_off
            if step.charged:
                if step.skip_noop and (step.nelems == 0 or dst == src):
                    continue
                ctx.put(dst, src, step.nelems, step.stride, rank, dtype)
            else:
                _view(ctx, views, dst, step.nelems, step.stride, dtype)[:] = \
                    _view(ctx, views, src, step.nelems, step.stride, dtype)
        elif kind == "reduce":
            acc = _view(ctx, views, addrs[step.acc] + step.acc_off,
                        step.nelems, step.stride, dtype)
            operand = _view(ctx, views, addrs[step.operand] + step.operand_off,
                            step.nelems, step.stride, dtype)
            apply_op(op, acc, operand)
            charge_elementwise(ctx, step.charge_elems)
        elif kind == "fill":
            dst = addrs[step.dst] + step.dst_off
            _view(ctx, views, dst, step.nelems, step.stride, dtype)[:] = \
                identity_of(op, dtype)
            ctx.charge_stream(dst, step_span_bytes(step.nelems, step.stride,
                                                   dtype.itemsize), write=True)
        elif kind == "send":
            ctx.msg_send(addrs[step.src] + step.src_off,
                         step.nelems, step.stride, members[step.peer],
                         tag=step.tag, dtype=dtype)
        elif kind == "recv":
            ctx.msg_recv(addrs[step.dst] + step.dst_off,
                         step.nelems, step.stride, members[step.peer],
                         tag=step.tag, dtype=dtype)
        else:  # pragma: no cover - compiler bug guard
            raise AssertionError(f"unknown step kind {kind!r}")


def _view(ctx: "XBRTime", views: dict, addr: int, nelems: int, stride: int,
          dtype: np.dtype) -> np.ndarray:
    key = (addr, nelems, stride)
    view = views.get(key)
    if view is None:
        view = views[key] = ctx.view(addr, dtype, nelems, stride)
    return view


def execute_schedule(ctx: "XBRTime", sched: Schedule,
                     members: tuple, me: int,
                     bindings: Mapping[str, int], dtype: np.dtype) -> None:
    """Run ``sched``'s program for group rank ``me`` on this PE.

    ``bindings`` maps the schedule's *user* buffer names to concrete
    addresses; scratch and private buffers are allocated here (zero
    simulated cost, so allocation never perturbs timing) and freed LIFO
    on exit, including on exceptions.

    A context may take over whole-schedule execution by exposing a
    ``schedule_evaluator`` method (the vec backend's batch rendezvous —
    see :mod:`repro.backends.vec`); it assumes full responsibility for
    buffer allocation, data movement and time accounting.

    A context whose ``schedule_transport`` is ``"mailbox"`` gets the
    schedule lowered onto matched send/recv pairs first (see
    :mod:`.mailbox`) — every collective, blocking or resilient or
    fused, inherits the two-sided transport with no per-algorithm code.
    """
    hook = getattr(ctx, "schedule_evaluator", None)
    if hook is not None:
        hook(sched, tuple(members), me, dict(bindings), dtype)
        return
    if getattr(ctx, "schedule_transport", "onesided") == "mailbox":
        from .mailbox import lower_to_mailbox

        sched = lower_to_mailbox(sched)
    prog = sched.program(me)
    addrs: dict[str, int] = dict(bindings)
    allocated: list[tuple[str, int]] = []
    views: dict = {}
    op = sched.op
    try:
        for buf in sched.buffers:
            if buf.kind == "user" or not buf.held_by(me):
                continue
            if buf.kind == "scratch":
                addr = ctx.scratch_alloc(buf.nbytes)
            else:
                addr = ctx.private_malloc(buf.nbytes)
            addrs[buf.name] = addr
            allocated.append((buf.kind, addr))
        _run_steps(ctx, prog.prologue, addrs, members, dtype, op, views)
        # Pipeline blocks lower to their barrier-separated rounds here,
        # so sim and mp replay the exact step order the linter checked.
        for stage in prog.lowered_stages():
            with stage_span(ctx, stage.index, **stage.span_attrs()):
                _run_steps(ctx, stage.steps, addrs, members, dtype, op, views)
        _run_steps(ctx, prog.epilogue, addrs, members, dtype, op, views)
    finally:
        for bkind, addr in reversed(allocated):
            if bkind == "scratch":
                ctx.scratch_free(addr)
            else:
                ctx.private_free(addr)


@dataclass
class PreparedCollective:
    """One compiled collective call, ready to execute.

    ``run`` performs exactly what the legacy blocking front-ends did
    after validation: count the call in ``stats.collective_calls`` (on
    ``stats_rank`` only), open the ``collective`` span, execute.  The
    optional ``body`` escape hatch covers composed collectives
    (hierarchical two-level trees) that orchestrate several schedules
    inside one outer span.
    """

    name: str
    members: tuple
    me: int
    dtype: np.dtype
    attrs: Mapping = field(default_factory=dict)
    schedule: Schedule = None  # type: ignore[assignment]
    bindings: Mapping = field(default_factory=dict)
    stats_key: str = None  # type: ignore[assignment]
    stats_rank: int = None  # type: ignore[assignment]
    body: Callable = None  # type: ignore[assignment]

    def run(self, ctx: "XBRTime") -> None:
        if self.stats_key is not None and self.me == self.stats_rank:
            ctx.count_collective(self.stats_key)
        with collective_span(ctx, self.name, self.members, **self.attrs):
            if self.schedule is not None:
                execute_schedule(ctx, self.schedule, self.members, self.me,
                                 self.bindings, self.dtype)
            else:
                self.body(ctx)
