"""Static checker for compiled collective schedules.

``lint_schedule`` analyses a :class:`~.ir.Schedule` without executing
it and reports :class:`LintIssue`\\ s for the classes of bugs that made
the inline tree walks hard to extend safely:

* **deadlock freedom** — every rank issues the same number of team
  barriers (the simulator matches barriers by arrival ordinal, so a
  mismatch hangs the collective), and every rank has the same stage
  structure.
* **matched put/get pairs** — every remote step names a peer inside the
  group, never itself (local movement must be :class:`~.ir.Copy`), and
  only touches buffers the peer actually holds, remotely accessible
  (symmetric) ones at that.
* **bounds** — every access fits the declared extent of its buffer on
  the rank that owns the memory.
* **overlap within a barrier phase** — steps between consecutive
  barriers run concurrently across ranks; the linter flags any byte
  range that one rank writes remotely while another (or the owner)
  reads or writes it in the same phase.  This is the check that proves
  ring/Rabenseifner-style single-buffer algorithms safe: their per-
  stage read and write intervals must be disjoint.
* **data conservation** — the union of local and incoming remote
  writes covers every byte range the schedule's ``deliver`` contract
  promises (so no rank can end with an undefined output region).
* **message matching** — for mailbox-lowered schedules, every
  (src, dst) pair's ordered send list must agree with the pair's
  ordered recv list on length, tag and element count (FIFO matching is
  per pair), and no recv may precede its matching send's barrier phase
  (that ordering is a guaranteed deadlock).
* **pipelined hazards** — :class:`~.ir.Pipeline` blocks must agree on
  segment/group counts across ranks (deadlock freedom with segment
  counts), carry exactly ``segments`` step tuples per group with no
  nested barriers, and respect **cross-segment ordering**: no remote
  read of bytes any rank writes in a later round of the same pipeline.
  The per-segment byte-range overlap hazards are checked on the
  *lowered* rounds by the phase-overlap pass.

Checks are conservative: strided accesses are widened to their byte
span.  All builtin algorithms lint clean at 1–16 PEs (enforced in CI
via ``python -m repro.collectives.schedule``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from .ir import Pipeline, Schedule, step_span_bytes

__all__ = ["LintIssue", "lint_schedule", "lint_fused_schedule"]


@dataclass(frozen=True)
class LintIssue:
    """One finding: which check fired, where, and why."""

    check: str
    message: str
    rank: int = None  # type: ignore[assignment]
    phase: int = None  # type: ignore[assignment]

    def __str__(self) -> str:
        where = []
        if self.rank is not None:
            where.append(f"rank {self.rank}")
        if self.phase is not None:
            where.append(f"phase {self.phase}")
        loc = f" [{', '.join(where)}]" if where else ""
        return f"{self.check}{loc}: {self.message}"


# One memory access: (phase, pe, buffer, lo, hi, mode, origin_rank)
# mode: "lw" local write, "lr" local read, "rw" remote write,
#       "rr" remote read.
_Access = tuple


def _step_accesses(step, rank: int, itemsize: int) -> Iterator[tuple]:
    """Accesses of one non-barrier step: (pe, buffer, lo, hi, mode)."""
    kind = step.kind
    span = step_span_bytes(step.nelems, step.stride, itemsize)
    if kind == "put":
        yield (rank, step.src, step.src_off, step.src_off + span, "lr")
        yield (step.peer, step.dst, step.dst_off, step.dst_off + span, "rw")
    elif kind == "get":
        yield (step.peer, step.src, step.src_off, step.src_off + span, "rr")
        yield (rank, step.dst, step.dst_off, step.dst_off + span, "lw")
    elif kind == "copy":
        yield (rank, step.src, step.src_off, step.src_off + span, "lr")
        yield (rank, step.dst, step.dst_off, step.dst_off + span, "lw")
    elif kind == "reduce":
        yield (rank, step.operand, step.operand_off,
               step.operand_off + span, "lr")
        yield (rank, step.acc, step.acc_off, step.acc_off + span, "lr")
        yield (rank, step.acc, step.acc_off, step.acc_off + span, "lw")
    elif kind == "fill":
        yield (rank, step.dst, step.dst_off, step.dst_off + span, "lw")
    elif kind == "send":
        # Two-sided: the payload is *copied* at the send, so only the
        # local source buffer is touched here; the matching recv owns
        # the destination write.
        yield (rank, step.src, step.src_off, step.src_off + span, "lr")
    elif kind == "recv":
        yield (rank, step.dst, step.dst_off, step.dst_off + span, "lw")


def _accesses(sched: Schedule, rank: int) -> Iterator[_Access]:
    """Yield every access of ``rank``'s program, tagged by barrier phase."""
    phase = 0
    for step in sched.program(rank).all_steps():
        if step.kind == "barrier":
            phase += 1
            continue
        for pe, name, lo, hi, mode in _step_accesses(step, rank,
                                                     sched.itemsize):
            yield (phase, pe, name, lo, hi, mode, rank)


def _barrier_count(sched: Schedule, rank: int) -> int:
    return sum(1 for s in sched.program(rank).all_steps()
               if s.kind == "barrier")


def _stage_signature(prog) -> list:
    """Per-slot shape: plain stage index, or pipeline (index, S, G).

    Ranks must agree on this signature — a :class:`~.ir.Pipeline` whose
    segment or group count differs between ranks lowers to a different
    number of rounds, so some rank would wait at a barrier nobody else
    reaches (deadlock with segment counts).
    """
    sig = []
    for st in prog.stages:
        if isinstance(st, Pipeline):
            sig.append(("pipeline", st.index, st.segments, len(st.groups)))
        else:
            sig.append(st.index)
    return sig


def _check_structure(sched: Schedule, issues: list) -> None:
    n = sched.n_pes
    if len(sched.programs) != n:
        issues.append(LintIssue(
            "structure", f"{len(sched.programs)} programs for {n} ranks"))
        return
    ref_sig = _stage_signature(sched.programs[0])
    ref_barriers = _barrier_count(sched, 0)
    for r in range(n):
        prog = sched.programs[r]
        if prog.rank != r:
            issues.append(LintIssue(
                "structure", f"program {r} claims rank {prog.rank}", rank=r))
        sig = _stage_signature(prog)
        if sig != ref_sig:
            issues.append(LintIssue(
                "deadlock",
                f"stage structure {sig} differs from rank 0's {ref_sig} "
                "(span structure would diverge)", rank=r))
        got = _barrier_count(sched, r)
        if got != ref_barriers:
            issues.append(LintIssue(
                "deadlock",
                f"{got} barriers vs rank 0's {ref_barriers} — the team "
                "barrier would never complete", rank=r))


def _check_buffers(sched: Schedule, issues: list) -> None:
    seen = set()
    for buf in sched.buffers:
        if buf.name in seen:
            issues.append(LintIssue(
                "buffers", f"duplicate buffer name {buf.name!r}"))
        seen.add(buf.name)
        if buf.kind not in ("user", "scratch", "private"):
            issues.append(LintIssue(
                "buffers", f"{buf.name}: unknown kind {buf.kind!r}"))
        if buf.kind == "scratch":
            if buf.ranks is not None:
                issues.append(LintIssue(
                    "buffers",
                    f"{buf.name}: scratch must be allocated by every rank "
                    "(position-dependent symmetric addresses)"))
            if not isinstance(buf.nbytes, int):
                issues.append(LintIssue(
                    "buffers",
                    f"{buf.name}: scratch extent must be uniform"))
            if not buf.symmetric:
                issues.append(LintIssue(
                    "buffers", f"{buf.name}: scratch is always symmetric"))
        if buf.kind == "private" and buf.symmetric:
            issues.append(LintIssue(
                "buffers", f"{buf.name}: private memory is never symmetric"))


def _check_steps(sched: Schedule, issues: list) -> None:
    """Peer validity, buffer existence/visibility and bounds."""
    n = sched.n_pes
    names = {buf.name: buf for buf in sched.buffers}
    for r in range(n):
        for step in sched.program(r).all_steps():
            kind = step.kind
            if kind == "barrier":
                continue
            if kind not in ("put", "get", "copy", "reduce", "fill",
                            "send", "recv"):
                issues.append(LintIssue(
                    "steps", f"unknown step kind {kind!r} — the executor "
                    "and evaluator would reject it", rank=r))
                continue
            if kind in ("put", "get", "send", "recv"):
                if not 0 <= step.peer < n:
                    issues.append(LintIssue(
                        "peers", f"{kind} peer {step.peer} outside group of "
                        f"{n}", rank=r))
                    continue
                if step.peer == r:
                    issues.append(LintIssue(
                        "peers", f"{kind} targets its own rank — use Copy "
                        "for local movement", rank=r))
                if kind in ("send", "recv"):
                    # Two-sided steps touch only local buffers (covered
                    # by the access checks below); the pairing itself is
                    # the message-matching pass's job.
                    continue
                remote_name = step.dst if kind == "put" else step.src
                buf = names.get(remote_name)
                if buf is not None:
                    if not buf.symmetric:
                        issues.append(LintIssue(
                            "peers",
                            f"{kind} of non-symmetric buffer "
                            f"{remote_name!r} on peer {step.peer}", rank=r))
                    if not buf.held_by(step.peer):
                        issues.append(LintIssue(
                            "peers",
                            f"{kind} touches {remote_name!r} which rank "
                            f"{step.peer} does not hold", rank=r))
    for phase, pe, name, lo, hi, mode, origin in _all_accesses(sched):
        buf = names.get(name)
        if buf is None:
            issues.append(LintIssue(
                "buffers", f"step references unknown buffer {name!r}",
                rank=origin))
            continue
        if not buf.held_by(origin) and pe == origin:
            issues.append(LintIssue(
                "buffers",
                f"rank {origin} uses {name!r} it does not hold",
                rank=origin))
        if lo < 0 or hi > buf.nbytes_on(pe):
            issues.append(LintIssue(
                "bounds",
                f"access [{lo}, {hi}) outside {name!r} "
                f"({buf.nbytes_on(pe)} bytes on rank {pe})", rank=origin,
                phase=phase))


def _all_accesses(sched: Schedule) -> Iterator[_Access]:
    for r in range(sched.n_pes):
        yield from _accesses(sched, r)


def _overlap(a_lo: int, a_hi: int, b_lo: int, b_hi: int) -> bool:
    return a_lo < b_hi and b_lo < a_hi


def _check_phase_overlap(sched: Schedule, issues: list) -> None:
    """Concurrent-access hazards between two consecutive barriers."""
    by_key: dict = {}
    for acc in _all_accesses(sched):
        phase, pe, name = acc[0], acc[1], acc[2]
        by_key.setdefault((phase, pe, name), []).append(acc)
    for (phase, pe, name), accs in sorted(by_key.items()):
        if len(accs) < 2:
            continue
        for i, a in enumerate(accs):
            for b in accs[i + 1:]:
                _, _, _, a_lo, a_hi, a_mode, a_org = a
                _, _, _, b_lo, b_hi, b_mode, b_org = b
                if not _overlap(a_lo, a_hi, b_lo, b_hi):
                    continue
                modes = {a_mode, b_mode}
                hazard = None
                if modes == {"rw"} and a_org != b_org:
                    hazard = "two ranks remotely write the same range"
                elif modes == {"rw", "lw"}:
                    hazard = "remote write races the owner's local write"
                elif modes == {"rw", "lr"}:
                    hazard = "remote write races the owner's local read"
                elif modes == {"rw", "rr"} and a_org != b_org:
                    hazard = "remote write races another rank's remote read"
                elif modes == {"lw", "rr"}:
                    hazard = "owner's local write races a remote read"
                if hazard:
                    issues.append(LintIssue(
                        "overlap",
                        f"{name!r} on rank {pe} bytes "
                        f"[{max(a_lo, b_lo)}, {min(a_hi, b_hi)}): {hazard} "
                        f"(ranks {a_org} and {b_org})", rank=pe,
                        phase=phase))


def _check_pipeline_shape(sched: Schedule, issues: list) -> None:
    """Pipeline well-formedness, checked *before* anything lowers.

    * ``segments >= 1``;
    * every group carries exactly ``segments`` step tuples (a ragged
      group would shift the wavefront — and crash the lowering — so
      this pass short-circuits the rest of the linter);
    * group steps never contain barriers (the lowering owns them).
    """
    for r in range(sched.n_pes):
        if r >= len(sched.programs):
            break
        for pipe in sched.programs[r].stages:
            if not isinstance(pipe, Pipeline):
                continue
            if pipe.segments < 1:
                issues.append(LintIssue(
                    "pipeline", f"pipeline {pipe.index}: segment count "
                    f"{pipe.segments} must be >= 1", rank=r))
                continue
            for g, group in enumerate(pipe.groups):
                if len(group) != pipe.segments:
                    issues.append(LintIssue(
                        "pipeline",
                        f"pipeline {pipe.index} group {g} has "
                        f"{len(group)} segment step tuples, expected "
                        f"{pipe.segments}", rank=r))
                    continue
                for steps in group:
                    if any(s.kind == "barrier" for s in steps):
                        issues.append(LintIssue(
                            "pipeline",
                            f"pipeline {pipe.index} group {g} contains a "
                            "barrier — rounds own their barriers", rank=r))


def _check_pipelines(sched: Schedule, issues: list) -> None:
    """Cross-segment ordering on well-formed pipeline blocks.

    Within one pipeline, a remote read must not target bytes that any
    rank writes in a *later* round: the reader would observe
    pre-pipeline data.  Same-round conflicts are the phase-overlap
    pass's job (the lowered rounds feed it); this pass catches the
    staleness bugs segmentation introduces, e.g. segment boundaries
    that do not match the producing group's.
    """
    # Cross-segment ordering over all ranks' aligned pipeline blocks.
    by_index: dict = {}
    for r in range(sched.n_pes):
        for pipe in sched.program(r).stages:
            if isinstance(pipe, Pipeline):
                by_index.setdefault(pipe.index, []).append((r, pipe))
    for index, pipes in sorted(by_index.items()):
        writes: list = []   # (round, pe, buffer, lo, hi, origin)
        reads: list = []    # remote reads: (round, pe, buffer, lo, hi, origin)
        for r, pipe in pipes:
            for g, group in enumerate(pipe.groups):
                for k, steps in enumerate(group):
                    if k >= pipe.segments:
                        break
                    t = g + k
                    for step in steps:
                        if step.kind == "barrier":
                            continue
                        for pe, name, lo, hi, mode in _step_accesses(
                                step, r, sched.itemsize):
                            if hi <= lo:
                                continue
                            if mode in ("lw", "rw"):
                                writes.append((t, pe, name, lo, hi, r))
                            elif mode == "rr":
                                reads.append((t, pe, name, lo, hi, r))
        by_target: dict = {}
        for t, pe, name, lo, hi, org in writes:
            by_target.setdefault((pe, name), []).append((t, lo, hi, org))
        for t_r, pe, name, lo, hi, org in reads:
            for t_w, w_lo, w_hi, w_org in by_target.get((pe, name), ()):
                if t_w > t_r and _overlap(lo, hi, w_lo, w_hi):
                    issues.append(LintIssue(
                        "pipeline",
                        f"cross-segment ordering: rank {org} reads "
                        f"{name!r} bytes [{max(lo, w_lo)}, {min(hi, w_hi)}) "
                        f"on rank {pe} in round {t_r}, written by rank "
                        f"{w_org} only in round {t_w}", rank=pe,
                        phase=t_r))


def _check_message_matching(sched: Schedule, issues: list) -> None:
    """Two-sided protocol: every (src, dst) pair's send and recv lists
    must agree element-by-element.

    Mailbox matching is FIFO per pair, so the i-th send from ``src`` to
    ``dst`` is consumed by the i-th recv at ``dst`` naming ``src``: the
    lists must have equal length, agree on ``tag`` and ``nelems`` at
    every index (a mismatch is the runtime's
    :class:`~repro.errors.MailboxProtocolError`), and every recv's
    barrier phase must be at or after its send's — a recv whose
    matching send only happens in a *later* phase blocks the barrier
    the sender needs to reach it: guaranteed deadlock.
    """
    n = sched.n_pes
    sends: dict = {}
    recvs: dict = {}
    for r in range(n):
        phase = 0
        for step in sched.program(r).all_steps():
            kind = step.kind
            if kind == "barrier":
                phase += 1
            elif kind == "send" and 0 <= step.peer < n:
                sends.setdefault((r, step.peer), []).append(
                    (phase, step.tag, step.nelems))
            elif kind == "recv" and 0 <= step.peer < n:
                recvs.setdefault((step.peer, r), []).append(
                    (phase, step.tag, step.nelems))
    for src, dst in sorted(set(sends) | set(recvs)):
        ss = sends.get((src, dst), [])
        rr = recvs.get((src, dst), [])
        if len(ss) != len(rr):
            kind, rank = (("send", src) if len(ss) > len(rr)
                          else ("recv", dst))
            issues.append(LintIssue(
                "messages",
                f"pair PE {src} -> PE {dst}: {len(ss)} sends vs "
                f"{len(rr)} recvs — the surplus {kind}s never match",
                rank=rank))
        for i, ((sp, st, sn), (rp, rt, rn)) in enumerate(zip(ss, rr)):
            if st != rt:
                issues.append(LintIssue(
                    "messages",
                    f"pair PE {src} -> PE {dst} message {i}: send tag "
                    f"{st} vs recv tag {rt} (FIFO order disagreement)",
                    rank=dst, phase=rp))
            if sn != rn:
                issues.append(LintIssue(
                    "messages",
                    f"pair PE {src} -> PE {dst} message {i}: send "
                    f"carries {sn} elements but recv expects {rn}",
                    rank=dst, phase=rp))
            if sp > rp:
                issues.append(LintIssue(
                    "messages",
                    f"pair PE {src} -> PE {dst} message {i}: recv in "
                    f"phase {rp} blocks on a send issued only in phase "
                    f"{sp} — the sender can never reach it (deadlock)",
                    rank=dst, phase=rp))


def _check_conservation(sched: Schedule, issues: list) -> None:
    """Every promised ``deliver`` range is covered by some write."""
    written: dict = {}
    for _, pe, name, lo, hi, mode, _ in _all_accesses(sched):
        if mode in ("lw", "rw") and hi > lo:
            written.setdefault((pe, name), []).append((lo, hi))
    for rank, name, lo, hi in sched.deliver:
        if hi <= lo:
            continue
        ivs = sorted(written.get((rank, name), []))
        cover = lo
        for iv_lo, iv_hi in ivs:
            if iv_lo > cover:
                break
            cover = max(cover, iv_hi)
        if cover < hi:
            issues.append(LintIssue(
                "conservation",
                f"deliver contract [{lo}, {hi}) of {name!r} on rank {rank} "
                f"only covered up to byte {cover}", rank=rank))


def lint_schedule(sched: Schedule) -> list:
    """Run every check; returns the (possibly empty) issue list."""
    issues: list = []
    _check_pipeline_shape(sched, issues)
    if any(i.check == "pipeline" for i in issues):
        _check_buffers(sched, issues)
        return issues  # malformed pipelines crash the lowering passes
    _check_structure(sched, issues)
    _check_buffers(sched, issues)
    if any(i.check == "structure" for i in issues):
        return issues  # program list malformed; later passes would crash
    _check_steps(sched, issues)
    _check_pipelines(sched, issues)
    _check_phase_overlap(sched, issues)
    _check_message_matching(sched, issues)
    _check_conservation(sched, issues)
    return issues


def _step_buffer_names(step) -> tuple:
    kind = step.kind
    if kind == "barrier":
        return ()
    if kind == "reduce":
        return (step.acc, step.operand)
    if kind == "fill":
        return (step.dst,)
    if kind == "send":
        return (step.src,)
    if kind == "recv":
        return (step.dst,)
    return (step.dst, step.src)


def _check_fused_prefixes(sched: Schedule, issues: list) -> None:
    """Fused-schedule isolation: every buffer belongs to exactly one
    sub-request (``r{i}:`` prefix) and no step mixes two requests'
    buffers — a cross-request reference would mean the fusion aliased
    one tenant's data into another's schedule."""
    for buf in sched.buffers:
        if ":" not in buf.name:
            issues.append(LintIssue(
                "fused",
                f"buffer {buf.name!r} carries no request prefix — it is "
                "not attributable to any fused sub-request"))
    for r in range(sched.n_pes):
        for step in sched.program(r).all_steps():
            owners = {name.split(":", 1)[0]
                      for name in _step_buffer_names(step)}
            if len(owners) > 1:
                issues.append(LintIssue(
                    "fused",
                    f"step {step!r} mixes buffers of requests "
                    f"{sorted(owners)} (cross-request aliasing)", rank=r))


def _check_fused_conservation(sched: Schedule, issues: list) -> None:
    """Every fused sub-request must still deliver something somewhere:
    a request whose entire ``deliver`` contract vanished in fusion was
    silently dropped (the per-range coverage itself is re-checked by
    the ordinary conservation pass over the prefixed buffers)."""
    promised = {rank_name[1].split(":", 1)[0]
                for rank_name in sched.deliver}
    for buf in sched.buffers:
        if ":" not in buf.name:
            continue  # already reported by the prefix pass
        owner = buf.name.split(":", 1)[0]
        base = buf.name.split(":", 1)[1]
        if base.startswith("dest") and buf.nbytes_on(0) and \
                owner not in promised:
            issues.append(LintIssue(
                "fused",
                f"sub-request {owner!r} has output buffer {buf.name!r} "
                "but no deliver contract — dropped in fusion?"))


def lint_fused_schedule(sched: Schedule) -> list:
    """Lint a fused superstep schedule: every ordinary pass plus the
    fused-specific isolation checks (no cross-request buffer aliasing,
    per-sub-request delivery)."""
    issues = lint_schedule(sched)
    _check_fused_prefixes(sched, issues)
    _check_fused_conservation(sched, issues)
    return issues
